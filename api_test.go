package htd

// Integration tests of the public facade: the end-to-end paths a downstream
// user follows (parse → decompose → plan → execute).

import (
	"errors"
	"math/rand"
	"testing"
)

func triangleCatalog(rng *rand.Rand) *Catalog {
	cat := NewCatalog()
	for _, name := range []string{"r", "s", "t"} {
		rel := NewRelation(name, "x", "y")
		for i := 0; i < 40; i++ {
			rel.MustAppend(int32(rng.Intn(6)), int32(rng.Intn(6)))
		}
		cat.Put(rel)
	}
	if err := cat.AnalyzeAll(); err != nil {
		panic(err)
	}
	return cat
}

func TestFacadeHypergraphPath(t *testing.T) {
	h, err := ParseHypergraph("e1(A,B)\ne2(B,C)\ne3(C,A)")
	if err != nil {
		t.Fatal(err)
	}
	w, d, err := HypertreeWidth(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("hw = %d, want 2", w)
	}
	if err := d.ValidateNF(); err != nil {
		t.Error(err)
	}
	if _, err := Decompose(h, 1); !errors.Is(err, ErrNoDecomposition) {
		t.Errorf("Decompose(triangle, 1) = %v, want ErrNoDecomposition", err)
	}
	d2, err := Decompose(h, 2)
	if err != nil || d2.Width() != 2 {
		t.Fatalf("Decompose: %v %v", d2, err)
	}
}

func TestFacadeMinimalAndThreshold(t *testing.T) {
	h, err := ParseHypergraph("e1(A,B)\ne2(B,C)\ne3(C,A)")
	if err != nil {
		t.Fatal(err)
	}
	d, w, err := Minimal(h, 2, LexTAF(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ValidateNF(); err != nil {
		t.Error(err)
	}
	// Minimal lex decomposition of the triangle: one width-2 node.
	if w[0] != 0 || w[1] != 1 {
		t.Errorf("lex weight = %v, want [0 1]", w)
	}
	ok, err := Threshold(h, 2, WidthTAF(), 2)
	if err != nil || !ok {
		t.Errorf("Threshold(width ≤ 2) = %v, %v", ok, err)
	}
	ok, err = Threshold(h, 2, WidthTAF(), 1)
	if err != nil || ok {
		t.Errorf("Threshold(width ≤ 1) = %v, %v", ok, err)
	}
	// Seeded variant returns a minimal decomposition too.
	d3, w3, err := MinimalSeeded(h, 2, LexTAF(2), 42)
	if err != nil || d3 == nil {
		t.Fatal(err)
	}
	if w3[1] != w[1] {
		t.Errorf("seeded weight %v differs from deterministic %v", w3, w)
	}
}

func TestFacadeQueryPlanningPath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q, err := ParseQuery("ans(A,C) :- r(A,B), s(B,C), t(C,A)")
	if err != nil {
		t.Fatal(err)
	}
	cat := triangleCatalog(rng)
	plan, err := PlanQuery(q, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EstimatedCost <= 0 {
		t.Errorf("estimated cost %v", plan.EstimatedCost)
	}
	res, err := ExecutePlan(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvalNaive(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Error("plan result differs from naive evaluation")
	}
	// Metered execution agrees and reports work.
	var m Metrics
	res2, err := ExecutePlanMetered(plan, cat, &m)
	if err != nil || !res2.Equal(res) {
		t.Fatalf("metered execution: %v", err)
	}
	if m.Joins == 0 && m.Semijoins == 0 {
		t.Error("metrics not collected")
	}
	// Baseline path.
	lp, estCost, err := BaselinePlan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if estCost <= 0 {
		t.Errorf("baseline cost %v", estCost)
	}
	resB, err := ExecuteBaseline(lp, q, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Equal(want) {
		t.Error("baseline result differs from naive evaluation")
	}
}

func TestFacadeBooleanAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q, err := ParseQuery("ans :- r(A,B), s(B,C), t(C,A)")
	if err != nil {
		t.Fatal(err)
	}
	cat := triangleCatalog(rng)
	plan, err := PlanQuery(q, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecutePlan(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EvalNaive(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if Answer(res) != (naive.Card() > 0) {
		t.Error("Boolean answer mismatch")
	}
}
