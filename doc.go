// Package htd is a Go implementation of weighted hypertree decompositions
// and decomposition-based query planning, reproducing
//
//	F. Scarcello, G. Greco, N. Leone,
//	"Weighted hypertree decompositions and optimal query plans",
//	PODS 2004 / Journal of Computer and System Sciences 73 (2007) 475–506.
//
// The package is a facade over the internal implementation:
//
//   - hypergraphs, [V]-components, α-acyclicity, join trees
//     (internal/hypergraph);
//   - hypertree decompositions, the normal form, completeness
//     (internal/hypertree);
//   - semirings, hypertree weighting functions, tree aggregation functions
//     (internal/weights);
//   - the candidate graph and minimal-k-decomp / k-decomp /
//     threshold-k-decomp (internal/core);
//   - conjunctive queries, H(Q), the fresh-variable trick (internal/cq);
//   - relations, statistics, synthetic data (internal/db);
//   - the cost model cost_H(Q) and cost-k-decomp (internal/cost);
//   - Yannakakis evaluation — columnar batched streaming engine plus a
//     left-deep baseline runtime (internal/engine);
//   - a Selinger-style quantitative-only baseline optimizer
//     (internal/optimizer);
//   - the canonical-form plan cache behind the Planner service
//     (internal/cache);
//   - the plan-as-a-service HTTP layer: per-tenant catalogs, request
//     coalescing, Prometheus metrics (internal/server, cmd/planserver);
//   - the distributed tier: a consistent-hash ring over the canonical plan
//     key with a compact peer RPC for cross-replica warm-fill
//     (internal/cluster), and the crash-safe append-only plan store that
//     warm-loads a restarted replica (internal/store);
//   - the experiment harness regenerating the paper's tables and figures
//     (internal/bench).
//
// Quick start:
//
//	h, _ := htd.ParseHypergraph("e1(A,B)\ne2(B,C)\ne3(C,A)\n")
//	w, d, _ := htd.HypertreeWidth(h, 3)      // w == 2
//	fmt.Print(d)                              // an NF decomposition
//
//	q, _ := htd.ParseQuery("ans(X) :- r(X,Y), s(Y,Z), t(Z,X)")
//	plan, _ := htd.PlanQuery(q, cat, 2)       // cost-k-decomp
//	res, _ := htd.ExecutePlan(plan, cat)      // Yannakakis, buffered
//
// Evaluation runs on a columnar engine: relations become dictionary-encoded
// int32 column vectors with one shared hash index per base relation (built
// once across aliases, reusable across queries via NewColStore), and the
// answer is enumerated incrementally in ~BatchSize-row batches. For large
// answers, pull the stream instead of buffering it:
//
//	s, _ := htd.ExecutePlanStream(plan, cat, nil)
//	for row, err := range s.RowsSeq() { … }   // or s.Next() for raw batches
//
// Over HTTP the same stream is POST /v2/execute: chunked NDJSON frames
// (header, row chunks, then a trailer carrying metrics and final status —
// a mid-stream failure ends with an error trailer, never a silently
// truncated 200). Complete answers are result-cached under the canonical
// plan key plus the tenant's catalog version, so a repeat — or a renamed
// variant — of a query replays rows without planning or evaluation, and a
// catalog update invalidates exactly that tenant's cached answers.
//
// Catalogs are live. A wholesale PUT replaces a tenant's catalog and drops
// every derived artifact; PATCH applies a per-relation CatalogDelta —
// relation blocks replace one relation's data, analyze blocks override one
// relation's statistics — to a copy-on-write clone published by
// compare-and-put (optionally pinned with ?ifVersion, answering 409 on a
// lost race), and invalidation is adaptive: a stats-only delta re-keys hot
// plan-cache entries in place and carries cached answers to the new
// version (renamed-variant hits survive with zero new searches), while a
// data delta drops only the answers whose plans reference the changed
// relation and clones the columnar store so untouched relations keep
// their column vectors and shared hash indexes.
//
// Self-joins are written with relation aliases — the alias names the atom
// (hyperedge, fresh variable, bound relation) while the predicate names the
// base relation supplying statistics and tuples; bare duplicate predicates
// auto-alias on parse:
//
//	t, _ := htd.ParseQuery("ans(X,Y,Z) :- e AS e1(X,Y), e AS e2(Y,Z), e AS e3(Z,X)")
//	plan, _ = htd.PlanQuery(t, cat, 2)        // triangles in one edge relation
//
// Services planning a stream of structurally repetitive queries should use
// the Planner entry point instead of PlanQuery: it canonicalizes inputs up
// to variable and alias renaming, caches plans and decompositions in a
// sharded LRU, deduplicates concurrent identical searches, and remaps
// cached plans onto each caller's variable and alias names.
//
// Under the hood, repeated searches over one structure share a
// core.SearchContext: the enumerated k-vertex space, an inverted
// variable → k-vertex index for candidate pruning, and the
// weight-independent structural caches (interned components, per-node χ
// and child subproblems). Contexts are safe for concurrent solves, which
// share those caches — only memo maps and weights are per-solve — so warm
// solves skip structural discovery entirely; cost.PlanSearchFamily extends
// the sharing across a whole k-range (used by cost.Sweep), and the solver
// stamps nodes with integer MemoKeys that the cost model uses to memoize
// estimates without serializing sets. With PlannerOptions.Workers > 1,
// cold misses run the level-parallel solver: structural discovery fans the
// subproblem frontier out breadth-first and weights are evaluated in
// waves, probing the cost model's lock-free memo tables (weights.Memo)
// with no lock and no shared cache-line writes on the read path.
//
//	planner := htd.NewPlanner(htd.PlannerOptions{})
//	plan, _ := planner.Plan(q, cat, 2)        // cold: runs cost-k-decomp
//	plan, _ = planner.Plan(q2, cat, 2)        // renamed copy of q: cache hit
//	fmt.Println(planner.Stats().Plans.Hits)   // 1
//
// To serve planning over HTTP — per-tenant catalogs, cross-tenant request
// coalescing, micro-batching, Prometheus metrics — construct a Server (the
// standalone binary is cmd/planserver):
//
//	srv := htd.NewServer(htd.ServerConfig{})
//	err := srv.ListenAndServe(ctx, ":8080")   // or embed srv.Handler()
//
// Replicas scale horizontally: a static membership consistent-hash shards
// the canonical plan keyspace, each key is replicated to R owners (the
// ring's distinct-successor list), a replica that misses locally fetches
// the plan from the key's owners in preference order over a compact
// persistent-connection RPC before falling back to a cold search, and
// cold results are pushed to every owner so the next replica's fetch
// hits even after one owner dies. Plans travel as canonical records and
// are re-served through the planner's own remapping path, so a
// peer-filled answer is byte-identical to a locally computed one. Peer
// calls carry the request's remaining deadline, retry within a budget
// under decorrelated-jitter backoff, and pass a per-peer circuit breaker
// (error rate over a sliding window, half-open probes after a cooldown);
// with all owners unreachable the replica serves the cold result locally
// and queues it as a bounded on-disk hint, which a background drainer
// replays once the owner is reachable again — a healed partition
// converges without operator action. With a data directory configured,
// every plan and infeasibility verdict also lands in an append-only
// checksummed store that warm-loads the cache on boot; a torn tail from
// a crash is truncated to the last valid record. Per-tenant token-bucket
// budgets with priority shedding (429 + Retry-After) protect the edge
// under overload. Clustering and persistence are configured on the
// serving layer (internal/server's Config.Cluster, Config.Admission, and
// Config.DataDir, or planserver's -node-id/-peers/-replicas/-data-dir/
// -tenant-rate flags) and require the shared-planner mode.
//
// The concurrent layers are threaded with chaos injection points
// (internal/chaos): a seed-deterministic fault schedule can crash or stall
// a parallel-search worker mid-wave, delay or fail a singleflight compute,
// drop cache inserts, inflate handler latency, stall shutdown, partition
// or delay peer RPCs, deny breaker half-open probes, fail hint-drain
// passes, tear store appends mid-write, and delay or fail the streaming
// engine between row batches (mid-stream, after the HTTP 200). Each
// site declares which effects it can absorb, and with no injector
// registered a hook is a single atomic load and branch — the hot path pays
// nothing. The harness in internal/chaos/scenario replays generated
// workloads under these schedules and asserts the standing invariants
// (byte-identical plans, negative-cache soundness, request conservation,
// leak-free drains); failures reproduce from the printed seed + schedule.
//
// See ExampleHypertreeWidth, ExamplePlanQuery, and ExamplePlanner for
// runnable versions of these snippets.
package htd
