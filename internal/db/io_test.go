package db

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCatalogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	cat, err := GenerateCatalog(rng, []Spec{
		{Name: "r", Attrs: []string{"A", "B"}, Card: 25, Distinct: map[string]int{"A": 5, "B": 7}},
		{Name: "s", Attrs: []string{"B", "C", "D"}, Card: 40, Distinct: map[string]int{"B": 7, "C": 3, "D": 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	cat2, err := ReadCatalog(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\ninput:\n%s", err, buf.String())
	}
	for _, name := range cat.Names() {
		a, b := cat.Get(name), cat2.Get(name)
		if b == nil {
			t.Fatalf("relation %s lost", name)
		}
		if !a.Equal(b) {
			t.Errorf("relation %s changed in round trip", name)
		}
	}
	if len(cat2.Names()) != len(cat.Names()) {
		t.Error("relation count changed")
	}
}

func TestReadCatalogNegativeValues(t *testing.T) {
	in := "relation r (A)\n-5\n7\nend\n"
	cat, err := ReadCatalog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := cat.Get("r")
	if r.Card() != 2 || r.Tuples[0][0] != -5 {
		t.Errorf("parsed %v", r.Tuples)
	}
}

func TestReadCatalogCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nrelation r (A,B)\n1,2\n# inline comment\n3,4\nend\n\n"
	cat, err := ReadCatalog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Get("r").Card() != 2 {
		t.Error("comment handling wrong")
	}
}

func TestReadCatalogErrors(t *testing.T) {
	cases := []string{
		"relation r (A)\n1\n",                      // missing end
		"end\n",                                    // stray end
		"1,2\n",                                    // tuple outside relation
		"relation r A\n1\nend\n",                   // malformed header
		"relation r (A)\nx\nend\n",                 // bad value
		"relation r (A)\n1,2\nend\n",               // arity mismatch
		"relation r ()\nend\n",                     // empty attribute
		"relation r (A)\nrelation s (B)\nend\nend", // nested
	}
	for _, in := range cases {
		if _, err := ReadCatalog(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
