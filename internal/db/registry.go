package db

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrVersionConflict is returned by CompareAndPut when the tenant's catalog
// changed (or disappeared) between the caller's read and its publish.
var ErrVersionConflict = errors.New("db: registry: catalog version conflict")

// Registry is a concurrent-safe set of catalogs keyed by tenant — the
// multi-tenant storage layer of the serving subsystem. A Catalog itself is
// not safe for concurrent mutation, so the registry works by replacement:
// Put validates that the catalog is fully analyzed and publishes the
// pointer, after which the stored catalog must be treated as immutable
// (readers — planning and evaluation — only ever read it). Replacing a
// tenant's catalog bumps its version, which callers can fold into cache
// keys or responses to detect staleness.
type Registry struct {
	mu       sync.RWMutex
	catalogs map[string]*Catalog
	versions map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{catalogs: map[string]*Catalog{}, versions: map[string]uint64{}}
}

// Put publishes c as tenant's catalog and returns the new version (1 for a
// first upload). It fails if some relation is not analyzed: analysis is a
// mutation, so it must happen before publication, never on the read path.
func (r *Registry) Put(tenant string, c *Catalog) (uint64, error) {
	if err := validateAnalyzed(tenant, c); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions[tenant]++
	r.catalogs[tenant] = c
	return r.versions[tenant], nil
}

// CompareAndPut publishes c only if the tenant currently has a catalog at
// exactly version base, returning the new version. It fails with
// ErrVersionConflict when another writer (or a Delete) got there first —
// the compare-and-swap that lets catalog deltas be applied to a snapshot
// without a writer lock spanning the whole read-modify-publish sequence.
func (r *Registry) CompareAndPut(tenant string, base uint64, c *Catalog) (uint64, error) {
	if err := validateAnalyzed(tenant, c); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.catalogs[tenant]; !ok || r.versions[tenant] != base {
		return 0, ErrVersionConflict
	}
	r.versions[tenant]++
	r.catalogs[tenant] = c
	return r.versions[tenant], nil
}

// validateAnalyzed enforces the publish contract: analysis is a mutation,
// so every relation must be analyzed before publication, never on the
// read path.
func validateAnalyzed(tenant string, c *Catalog) error {
	for _, name := range c.Names() {
		if c.Stats(name) == nil {
			return fmt.Errorf("db: registry: relation %q of tenant %q not analyzed", name, tenant)
		}
	}
	return nil
}

// Get returns tenant's catalog and version, or ok=false. An absent tenant
// reports version 0 even when an internal version counter survives a
// Delete, so callers that (wrongly) ignore ok never observe a live-looking
// version for a deleted catalog.
func (r *Registry) Get(tenant string) (c *Catalog, version uint64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok = r.catalogs[tenant]
	if !ok {
		return nil, 0, false
	}
	return c, r.versions[tenant], true
}

// Delete removes tenant's catalog, reporting whether one was present. The
// version counter survives, so a re-upload is distinguishable from the
// deleted catalog.
func (r *Registry) Delete(tenant string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.catalogs[tenant]
	delete(r.catalogs, tenant)
	return ok
}

// Tenants lists tenants with a catalog, sorted.
func (r *Registry) Tenants() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.catalogs))
	for t := range r.catalogs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of tenants with a catalog.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.catalogs)
}
