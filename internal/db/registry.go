package db

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is a concurrent-safe set of catalogs keyed by tenant — the
// multi-tenant storage layer of the serving subsystem. A Catalog itself is
// not safe for concurrent mutation, so the registry works by replacement:
// Put validates that the catalog is fully analyzed and publishes the
// pointer, after which the stored catalog must be treated as immutable
// (readers — planning and evaluation — only ever read it). Replacing a
// tenant's catalog bumps its version, which callers can fold into cache
// keys or responses to detect staleness.
type Registry struct {
	mu       sync.RWMutex
	catalogs map[string]*Catalog
	versions map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{catalogs: map[string]*Catalog{}, versions: map[string]uint64{}}
}

// Put publishes c as tenant's catalog and returns the new version (1 for a
// first upload). It fails if some relation is not analyzed: analysis is a
// mutation, so it must happen before publication, never on the read path.
func (r *Registry) Put(tenant string, c *Catalog) (uint64, error) {
	for _, name := range c.Names() {
		if c.Stats(name) == nil {
			return 0, fmt.Errorf("db: registry: relation %q of tenant %q not analyzed", name, tenant)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions[tenant]++
	r.catalogs[tenant] = c
	return r.versions[tenant], nil
}

// Get returns tenant's catalog and version, or ok=false.
func (r *Registry) Get(tenant string) (c *Catalog, version uint64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok = r.catalogs[tenant]
	return c, r.versions[tenant], ok
}

// Delete removes tenant's catalog, reporting whether one was present. The
// version counter survives, so a re-upload is distinguishable from the
// deleted catalog.
func (r *Registry) Delete(tenant string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.catalogs[tenant]
	delete(r.catalogs, tenant)
	return ok
}

// Tenants lists tenants with a catalog, sorted.
func (r *Registry) Tenants() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.catalogs))
	for t := range r.catalogs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of tenants with a catalog.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.catalogs)
}
