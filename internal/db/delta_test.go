package db

import (
	"reflect"
	"strings"
	"testing"
)

// Regression: a name first registered stats-only via SetStats used to get a
// second slot in the insertion order when a real relation was later Put,
// duplicating Names() and StatsTable blocks.
func TestSetStatsThenPutNoDuplicateOrder(t *testing.T) {
	c := NewCatalog()
	c.SetStats("r", &TableStats{Card: 10, Distinct: map[string]int{"a": 5}})
	r := NewRelation("r", "a", "b")
	if err := r.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	c.Put(r)
	if got := c.Names(); !reflect.DeepEqual(got, []string{"r"}) {
		t.Fatalf("Names after SetStats→Put = %v, want [r]", got)
	}
	// Put invalidates the stats-only entry; Analyze recomputes from data.
	if c.Stats("r") != nil {
		t.Fatalf("stats survived Put, want invalidated")
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatalf("AnalyzeAll after dedup: %v", err)
	}
	if n := strings.Count(c.StatsTable(), "atom r,"); n != 1 {
		t.Fatalf("StatsTable has %d blocks for r, want 1", n)
	}
}

func TestUpsertReportsReplacement(t *testing.T) {
	c := NewCatalog()
	r1 := NewRelation("r", "a")
	if replaced := c.Upsert(r1); replaced {
		t.Fatal("first Upsert reported replacement")
	}
	r2 := NewRelation("r", "a")
	if replaced := c.Upsert(r2); !replaced {
		t.Fatal("second Upsert did not report replacement")
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"r"}) {
		t.Fatalf("Names = %v, want [r]", got)
	}
}

func TestCloneCopyOnWrite(t *testing.T) {
	c := NewCatalog()
	r := NewRelation("r", "a")
	if err := r.Append(1); err != nil {
		t.Fatal(err)
	}
	c.Put(r)
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	// Shared pointers before mutation.
	if cl.Get("r") != c.Get("r") || cl.Stats("r") != c.Stats("r") {
		t.Fatal("clone does not share pointers")
	}
	// Mutating the clone leaves the original untouched.
	r2 := NewRelation("r", "a")
	if err := r2.Append(2); err != nil {
		t.Fatal(err)
	}
	cl.Put(r2)
	cl.SetStats("s", &TableStats{Card: 1, Distinct: map[string]int{}})
	if c.Get("r") != r || c.Stats("r") == nil {
		t.Fatal("clone mutation leaked into original")
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"r"}) {
		t.Fatalf("original Names = %v, want [r]", got)
	}
	if got := cl.Names(); !reflect.DeepEqual(got, []string{"r", "s"}) {
		t.Fatalf("clone Names = %v, want [r s]", got)
	}
}

const sampleDelta = `# data replacement for r
relation r (a,b)
1,2
3,4
end

# stats-only override for s
analyze s card 120
b 50
c 60
end
`

func TestReadCatalogDelta(t *testing.T) {
	d, err := ReadCatalogDelta(strings.NewReader(sampleDelta))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.DataNames(), []string{"r"}) {
		t.Fatalf("DataNames = %v", d.DataNames())
	}
	if !reflect.DeepEqual(d.StatsNames(), []string{"s"}) {
		t.Fatalf("StatsNames = %v", d.StatsNames())
	}
	if d.Relations[0].Card() != 2 {
		t.Fatalf("r card = %d, want 2", d.Relations[0].Card())
	}
	st := d.Stats[0].Stats
	if st.Card != 120 || st.Distinct["b"] != 50 || st.Distinct["c"] != 60 {
		t.Fatalf("stats patch = %+v", st)
	}
}

func TestCatalogDeltaRoundTrip(t *testing.T) {
	d, err := ReadCatalogDelta(strings.NewReader(sampleDelta))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCatalogDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCatalogDelta(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-read serialized delta: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(d2.StatsNames(), d.StatsNames()) || !reflect.DeepEqual(d2.DataNames(), d.DataNames()) {
		t.Fatal("round trip changed the delta")
	}
	if !d2.Relations[0].Equal(d.Relations[0]) {
		t.Fatal("round trip changed relation data")
	}
	if !reflect.DeepEqual(d2.Stats[0], d.Stats[0]) {
		t.Fatal("round trip changed stats patch")
	}
}

func TestReadCatalogDeltaErrors(t *testing.T) {
	bad := []string{
		"analyze s card\nend",                   // missing count
		"analyze s card -1\nend",                // negative card
		"analyze s card 5\nb\nend",              // malformed attr line
		"analyze s card 5\nb -2\n",              // negative distinct
		"relation r (a)\n1\n",                   // unterminated block
		"end",                                   // end outside block
		"1,2",                                   // content outside block
		"relation r (a\n1\nend",                 // malformed header
		"relation r ()\nend",                    // empty attribute
		"relation r (a)\n1,2\nend",              // arity mismatch
		"relation r (a)\nx\nend",                // non-integer value
		"relation r (a)\nanalyze s card 5\nend", // nested block start
	}
	for _, in := range bad {
		if _, err := ReadCatalogDelta(strings.NewReader(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestApplyDelta(t *testing.T) {
	c := NewCatalog()
	for _, spec := range []struct {
		name  string
		attrs []string
	}{{"r", []string{"a", "b"}}, {"s", []string{"b", "c"}}, {"t", []string{"c", "a"}}} {
		rel := NewRelation(spec.name, spec.attrs...)
		if err := rel.Append(1, 2); err != nil {
			t.Fatal(err)
		}
		c.Put(rel)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	oldS, oldT := c.Get("s"), c.Stats("t")

	d, err := ReadCatalogDelta(strings.NewReader(sampleDelta))
	if err != nil {
		t.Fatal(err)
	}
	dataChanged, statsChanged, err := c.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dataChanged, []string{"r"}) || !reflect.DeepEqual(statsChanged, []string{"s"}) {
		t.Fatalf("changed = %v / %v, want [r] / [s]", dataChanged, statsChanged)
	}
	// r re-analyzed from its new data.
	if st := c.Stats("r"); st == nil || st.Card != 2 {
		t.Fatalf("r stats = %+v, want card 2", c.Stats("r"))
	}
	// s keeps its data, gets the patched stats.
	if c.Get("s") != oldS {
		t.Fatal("stats-only delta replaced s's data")
	}
	if st := c.Stats("s"); st.Card != 120 || st.Distinct["b"] != 50 {
		t.Fatalf("s stats = %+v, want patched", st)
	}
	// t untouched entirely.
	if c.Stats("t") != oldT {
		t.Fatal("delta touched t's stats")
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"r", "s", "t"}) {
		t.Fatalf("Names = %v", got)
	}
}

func TestApplyDeltaStatsForUnknownRelation(t *testing.T) {
	c := NewCatalog()
	d := &CatalogDelta{Stats: []StatsPatch{{Name: "ghost", Stats: &TableStats{Card: 1, Distinct: map[string]int{}}}}}
	if _, _, err := c.ApplyDelta(d); err == nil {
		t.Fatal("no error for stats-only delta on unknown relation")
	}
	r := NewRelation("r", "a")
	c.Put(r)
	d = &CatalogDelta{Stats: []StatsPatch{{Name: "r", Stats: &TableStats{Card: 1, Distinct: map[string]int{"zz": 3}}}}}
	if _, _, err := c.ApplyDelta(d); err == nil {
		t.Fatal("no error for stats patch naming unknown attribute")
	}
}

func TestRegistryGetAfterDeleteReportsVersionZero(t *testing.T) {
	r := NewRegistry()
	c := NewCatalog()
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("acme", c); err != nil {
		t.Fatal(err)
	}
	if !r.Delete("acme") {
		t.Fatal("Delete reported absent")
	}
	got, v, ok := r.Get("acme")
	if ok || got != nil || v != 0 {
		t.Fatalf("Get after Delete = (%v, %d, %v), want (nil, 0, false)", got, v, ok)
	}
	// The counter still survives internally: re-upload continues from it.
	v2, err := r.Put("acme", c)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("re-upload version = %d, want 2", v2)
	}
}

func TestRegistryCompareAndPut(t *testing.T) {
	r := NewRegistry()
	c := NewCatalog()
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CompareAndPut("acme", 0, c); err != ErrVersionConflict {
		t.Fatalf("CompareAndPut on absent tenant: %v, want conflict", err)
	}
	v1, err := r.Put("acme", c)
	if err != nil {
		t.Fatal(err)
	}
	c2 := c.Clone()
	v2, err := r.CompareAndPut("acme", v1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1+1 {
		t.Fatalf("version = %d, want %d", v2, v1+1)
	}
	if _, err := r.CompareAndPut("acme", v1, c2); err != ErrVersionConflict {
		t.Fatalf("stale CompareAndPut: %v, want conflict", err)
	}
	got, v, _ := r.Get("acme")
	if got != c2 || v != v2 {
		t.Fatalf("Get = (%p, %d), want (%p, %d)", got, v, c2, v2)
	}
}
