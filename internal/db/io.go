package db

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text serialization for relations and catalogs, used by the command-line
// tools. The format is line-oriented:
//
//	relation <name> (<attr1>,<attr2>,...)
//	1,2,3
//	4,5,6
//	end
//
// Blank lines and '#' comments are ignored between relations.

// WriteRelation serializes r.
func WriteRelation(w io.Writer, r *Relation) error {
	if _, err := fmt.Fprintf(w, "relation %s (%s)\n", r.Name, strings.Join(r.Attrs, ",")); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, t := range r.Tuples {
		for i, v := range t {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Itoa(int(v)))
		}
		bw.WriteByte('\n')
	}
	bw.WriteString("end\n")
	return bw.Flush()
}

// WriteCatalog serializes every relation in insertion order.
func WriteCatalog(w io.Writer, c *Catalog) error {
	for _, name := range c.Names() {
		r := c.Get(name)
		if r == nil {
			continue
		}
		if err := WriteRelation(w, r); err != nil {
			return err
		}
	}
	return nil
}

// ReadCatalog parses a stream of serialized relations into a new catalog
// (not analyzed; call AnalyzeAll before using statistics).
func ReadCatalog(r io.Reader) (*Catalog, error) {
	cat := NewCatalog()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *Relation
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "relation "):
			if cur != nil {
				return nil, fmt.Errorf("db: line %d: relation %s not terminated by 'end'", lineNo, cur.Name)
			}
			rest := strings.TrimPrefix(line, "relation ")
			open := strings.IndexByte(rest, '(')
			closeIdx := strings.LastIndexByte(rest, ')')
			if open < 0 || closeIdx < open {
				return nil, fmt.Errorf("db: line %d: malformed relation header", lineNo)
			}
			name := strings.TrimSpace(rest[:open])
			var attrs []string
			for _, a := range strings.Split(rest[open+1:closeIdx], ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					return nil, fmt.Errorf("db: line %d: empty attribute", lineNo)
				}
				attrs = append(attrs, a)
			}
			cur = NewRelation(name, attrs...)
		case line == "end":
			if cur == nil {
				return nil, fmt.Errorf("db: line %d: 'end' outside relation", lineNo)
			}
			cat.Put(cur)
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("db: line %d: tuple outside relation", lineNo)
			}
			fields := strings.Split(line, ",")
			tup := make([]Value, len(fields))
			for i, f := range fields {
				v, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("db: line %d: bad value %q", lineNo, f)
				}
				tup[i] = Value(v)
			}
			if err := cur.Append(tup...); err != nil {
				return nil, fmt.Errorf("db: line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("db: relation %s not terminated by 'end'", cur.Name)
	}
	return cat, nil
}
