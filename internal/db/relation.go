// Package db implements the relational substrate for the query-planning
// experiments of Section 6: in-memory relations over int32-encoded values,
// a catalog with ANALYZE-style statistics (cardinality and per-attribute
// selectivity, Fig 5), and a synthetic data generator that reproduces
// target statistics.
package db

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a dictionary-encoded attribute value. The experiments only need
// equality, so values are opaque integers.
type Value = int32

// Relation is an in-memory relation: a schema of named attributes and a
// slice of rows aligned with it.
type Relation struct {
	Name   string
	Attrs  []string
	Tuples [][]Value
}

// NewRelation returns an empty relation with the given schema.
func NewRelation(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: append([]string(nil), attrs...)}
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Card returns the number of tuples.
func (r *Relation) Card() int { return len(r.Tuples) }

// AttrIndex returns the position of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// HasAttr reports whether the relation has the named attribute.
func (r *Relation) HasAttr(name string) bool { return r.AttrIndex(name) >= 0 }

// Append adds a tuple; its length must match the arity.
func (r *Relation) Append(tuple ...Value) error {
	if len(tuple) != len(r.Attrs) {
		return fmt.Errorf("db: tuple arity %d != schema arity %d of %s",
			len(tuple), len(r.Attrs), r.Name)
	}
	r.Tuples = append(r.Tuples, append([]Value(nil), tuple...))
	return nil
}

// MustAppend is Append but panics on error; intended for fixtures.
func (r *Relation) MustAppend(tuple ...Value) {
	if err := r.Append(tuple...); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Name, r.Attrs...)
	out.Tuples = make([][]Value, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = append([]Value(nil), t...)
	}
	return out
}

// Rename returns a shallow-tuple copy with attributes renamed via the map
// (attributes absent from the map keep their names). Used to map relation
// columns to query variables.
func (r *Relation) Rename(name string, mapping map[string]string) *Relation {
	attrs := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		if n, ok := mapping[a]; ok {
			attrs[i] = n
		} else {
			attrs[i] = a
		}
	}
	return &Relation{Name: name, Attrs: attrs, Tuples: r.Tuples}
}

// WithRowID returns a copy with an extra attribute whose value is the row
// index — the physical realization of the fresh-variable trick (Section 6):
// the fresh variable behaves as a key with selectivity = cardinality.
func (r *Relation) WithRowID(attr string) *Relation {
	out := NewRelation(r.Name, append(append([]string(nil), r.Attrs...), attr)...)
	out.Tuples = make([][]Value, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = append(append([]Value(nil), t...), Value(i))
	}
	return out
}

// DistinctCount returns the number of distinct values of the named
// attribute (the paper's "selectivity", Fig 5), or 0 if absent.
func (r *Relation) DistinctCount(attr string) int {
	i := r.AttrIndex(attr)
	if i < 0 {
		return 0
	}
	seen := make(map[Value]struct{}, len(r.Tuples))
	for _, t := range r.Tuples {
		seen[t[i]] = struct{}{}
	}
	return len(seen)
}

// SortTuples orders tuples lexicographically in place (deterministic
// comparisons in tests and stable output).
func (r *Relation) SortTuples() {
	sort.Slice(r.Tuples, func(i, j int) bool {
		a, b := r.Tuples[i], r.Tuples[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Equal reports whether two relations have identical schema and the same
// multiset of tuples (order-insensitive).
func (r *Relation) Equal(s *Relation) bool {
	if len(r.Attrs) != len(s.Attrs) || len(r.Tuples) != len(s.Tuples) {
		return false
	}
	for i := range r.Attrs {
		if r.Attrs[i] != s.Attrs[i] {
			return false
		}
	}
	count := map[string]int{}
	for _, t := range r.Tuples {
		count[tupleKey(t)]++
	}
	for _, t := range s.Tuples {
		count[tupleKey(t)]--
		if count[tupleKey(t)] < 0 {
			return false
		}
	}
	return true
}

func tupleKey(t []Value) string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

// String renders a short description (not the tuples).
func (r *Relation) String() string {
	return fmt.Sprintf("%s(%s)[%d tuples]", r.Name, strings.Join(r.Attrs, ","), len(r.Tuples))
}
