package db

import (
	"fmt"
	"math/rand"
)

// Spec describes a synthetic relation: its schema, cardinality, and target
// per-attribute distinct-value counts (the paper's selectivities, Fig 5).
type Spec struct {
	Name     string
	Attrs    []string
	Card     int
	Distinct map[string]int // target; must be ≤ Card and ≥ 1
}

// Generate builds a relation matching the spec: attribute i takes values in
// [0, Distinct[i]), and when Card ≥ Distinct every value occurs at least
// once, so ANALYZE reproduces the spec exactly. Values of shared variables
// across relations are drawn from prefixes [0, d) of a common integer
// domain, giving the value-set containment that textbook join estimation
// assumes.
func Generate(rng *rand.Rand, spec Spec) (*Relation, error) {
	r := NewRelation(spec.Name, spec.Attrs...)
	if spec.Card < 0 {
		return nil, fmt.Errorf("db: negative cardinality for %s", spec.Name)
	}
	for _, a := range spec.Attrs {
		d, ok := spec.Distinct[a]
		if !ok {
			return nil, fmt.Errorf("db: no distinct count for %s.%s", spec.Name, a)
		}
		if d < 1 || d > spec.Card {
			return nil, fmt.Errorf("db: distinct %d for %s.%s out of range [1,%d]",
				d, spec.Name, a, spec.Card)
		}
	}
	// Column-wise generation: first d rows get values 0..d-1 (guaranteeing
	// the exact distinct count), remaining rows draw uniformly; each column
	// is then shuffled independently to avoid correlated prefixes.
	cols := make([][]Value, len(spec.Attrs))
	for ai, a := range spec.Attrs {
		d := spec.Distinct[a]
		col := make([]Value, spec.Card)
		for i := 0; i < d; i++ {
			col[i] = Value(i)
		}
		for i := d; i < spec.Card; i++ {
			col[i] = Value(rng.Intn(d))
		}
		rng.Shuffle(len(col), func(i, j int) { col[i], col[j] = col[j], col[i] })
		cols[ai] = col
	}
	r.Tuples = make([][]Value, spec.Card)
	for i := 0; i < spec.Card; i++ {
		t := make([]Value, len(spec.Attrs))
		for ai := range spec.Attrs {
			t[ai] = cols[ai][i]
		}
		r.Tuples[i] = t
	}
	return r, nil
}

// MustGenerate is Generate but panics on error; intended for fixtures.
func MustGenerate(rng *rand.Rand, spec Spec) *Relation {
	r, err := Generate(rng, spec)
	if err != nil {
		panic(err)
	}
	return r
}

// GenerateCatalog generates all specs into a fresh analyzed catalog.
func GenerateCatalog(rng *rand.Rand, specs []Spec) (*Catalog, error) {
	c := NewCatalog()
	for _, s := range specs {
		r, err := Generate(rng, s)
		if err != nil {
			return nil, err
		}
		c.Put(r)
	}
	if err := c.AnalyzeAll(); err != nil {
		return nil, err
	}
	return c, nil
}
