package db

import "testing"

func TestColumnarRoundTrip(t *testing.T) {
	r := NewRelation("r", "a", "b")
	r.MustAppend(1, 2)
	r.MustAppend(3, 4)
	r.MustAppend(5, 6)
	c := Columnar(r)
	if c.Len() != 3 || c.Arity() != 2 {
		t.Fatalf("Len/Arity = %d/%d", c.Len(), c.Arity())
	}
	if c.AttrIndex("b") != 1 || c.AttrIndex("z") != -1 {
		t.Fatal("AttrIndex wrong")
	}
	if c.Cols[0][1] != 3 || c.Cols[1][2] != 6 {
		t.Fatalf("transpose wrong: %v", c.Cols)
	}
	back := c.Rows()
	if !back.Equal(r) {
		t.Fatalf("round trip lost rows: %v vs %v", back.Tuples, r.Tuples)
	}
	// Columnar copies: mutating the source later must not leak through.
	r.Tuples[0][0] = 99
	if c.Cols[0][0] != 1 {
		t.Fatal("columnar form aliases source tuples")
	}
}

func TestColumnarEmpty(t *testing.T) {
	c := Columnar(NewRelation("empty", "x"))
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Rows(); got.Card() != 0 || len(got.Attrs) != 1 {
		t.Fatalf("Rows() = %v", got)
	}
}

func TestColumnarWithRowID(t *testing.T) {
	r := NewRelation("r", "a")
	r.MustAppend(7)
	r.MustAppend(8)
	c := Columnar(r)
	rowid := RowIDColumn(c.Len())
	ext, err := c.WithRowID("__rowid", rowid)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Arity() != 2 || ext.Attrs[1] != "__rowid" {
		t.Fatalf("extended schema %v", ext.Attrs)
	}
	if ext.Cols[1][0] != 0 || ext.Cols[1][1] != 1 {
		t.Fatalf("rowid column %v", ext.Cols[1])
	}
	if &ext.Cols[0][0] != &c.Cols[0][0] {
		t.Fatal("WithRowID should share base columns, not copy them")
	}
	if _, err := c.WithRowID("x", RowIDColumn(5)); err == nil {
		t.Fatal("mismatched rowid length should fail")
	}
}
