package db

import (
	"strconv"
	"sync"
	"testing"
)

func analyzedCatalog(t *testing.T, tuples ...[2]Value) *Catalog {
	t.Helper()
	r := NewRelation("r", "a", "b")
	for _, tp := range tuples {
		r.MustAppend(tp[0], tp[1])
	}
	cat := NewCatalog()
	cat.Put(r)
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestRegistryPutGetVersioning(t *testing.T) {
	reg := NewRegistry()
	if _, _, ok := reg.Get("acme"); ok {
		t.Fatal("Get on empty registry reported a catalog")
	}
	v1, err := reg.Put("acme", analyzedCatalog(t, [2]Value{1, 2}))
	if err != nil || v1 != 1 {
		t.Fatalf("first Put: version=%d err=%v, want 1, nil", v1, err)
	}
	v2, err := reg.Put("acme", analyzedCatalog(t, [2]Value{1, 2}, [2]Value{3, 4}))
	if err != nil || v2 != 2 {
		t.Fatalf("second Put: version=%d err=%v, want 2, nil", v2, err)
	}
	cat, ver, ok := reg.Get("acme")
	if !ok || ver != 2 || cat.Get("r").Card() != 2 {
		t.Fatalf("Get: ok=%v ver=%d, want latest catalog at version 2", ok, ver)
	}
	if got := reg.Tenants(); len(got) != 1 || got[0] != "acme" {
		t.Fatalf("Tenants = %v", got)
	}
	if !reg.Delete("acme") || reg.Delete("acme") {
		t.Fatal("Delete must report presence exactly once")
	}
	// The version counter survives deletion: a re-upload is a new version.
	v3, err := reg.Put("acme", analyzedCatalog(t, [2]Value{5, 6}))
	if err != nil || v3 != 3 {
		t.Fatalf("Put after Delete: version=%d err=%v, want 3, nil", v3, err)
	}
}

func TestRegistryRejectsUnanalyzed(t *testing.T) {
	cat := NewCatalog()
	cat.Put(NewRelation("r", "a"))
	if _, err := NewRegistry().Put("acme", cat); err == nil {
		t.Fatal("Put accepted an unanalyzed catalog")
	}
}

// Concurrent writers and readers over disjoint and shared tenants: run
// under -race.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := "t" + strconv.Itoa(g%3)
			for i := 0; i < 50; i++ {
				if _, err := reg.Put(tenant, analyzedCatalog(t, [2]Value{Value(g), Value(i)})); err != nil {
					panic(err)
				}
				if c, _, ok := reg.Get(tenant); ok && c.Get("r") == nil {
					panic("catalog lost its relation")
				}
				reg.Tenants()
				reg.Len()
			}
		}(g)
	}
	wg.Wait()
	if reg.Len() != 3 {
		t.Fatalf("Len = %d, want 3", reg.Len())
	}
}
