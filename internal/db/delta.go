package db

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Catalog deltas: the wire form of a partial catalog update. Where a full
// catalog upload replaces a tenant wholesale, a delta carries only the
// relations that changed — either with new data (a `relation` block,
// identical to the full-catalog format) or with new statistics alone (an
// `analyze` block, the paper's ANALYZE output in Fig 5 layout). The text
// format stays line-oriented:
//
//	relation r (a,b)
//	1,2
//	end
//	analyze s card 120
//	b 50
//	c 60
//	end
//
// Blank lines and '#' comments are ignored between blocks.

// CatalogDelta is a parsed partial catalog update.
type CatalogDelta struct {
	// Relations are wholesale per-relation data replacements; each is
	// re-analyzed when the delta is applied.
	Relations []*Relation
	// Stats are stats-only overrides: the named relation keeps its data
	// and gets the given ANALYZE output installed verbatim.
	Stats []StatsPatch
}

// StatsPatch is one stats-only entry of a delta.
type StatsPatch struct {
	Name  string
	Stats *TableStats
}

// Empty reports whether the delta carries no change at all.
func (d *CatalogDelta) Empty() bool {
	return d == nil || (len(d.Relations) == 0 && len(d.Stats) == 0)
}

// DataNames lists the relations whose data the delta replaces.
func (d *CatalogDelta) DataNames() []string {
	out := make([]string, 0, len(d.Relations))
	for _, r := range d.Relations {
		out = append(out, r.Name)
	}
	return out
}

// StatsNames lists the relations the delta touches stats-only.
func (d *CatalogDelta) StatsNames() []string {
	out := make([]string, 0, len(d.Stats))
	for _, sp := range d.Stats {
		out = append(out, sp.Name)
	}
	return out
}

// ReadCatalogDelta parses a delta from the line-oriented text format.
func ReadCatalogDelta(r io.Reader) (*CatalogDelta, error) {
	d := &CatalogDelta{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var curRel *Relation
	var curStats *StatsPatch
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "relation "):
			if curRel != nil || curStats != nil {
				return nil, fmt.Errorf("db: line %d: block not terminated by 'end'", lineNo)
			}
			rel, err := parseRelationHeader(line, lineNo)
			if err != nil {
				return nil, err
			}
			curRel = rel
		case strings.HasPrefix(line, "analyze "):
			if curRel != nil || curStats != nil {
				return nil, fmt.Errorf("db: line %d: block not terminated by 'end'", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[2] != "card" {
				return nil, fmt.Errorf("db: line %d: want 'analyze <name> card <N>'", lineNo)
			}
			card, err := strconv.Atoi(fields[3])
			if err != nil || card < 0 {
				return nil, fmt.Errorf("db: line %d: bad cardinality %q", lineNo, fields[3])
			}
			curStats = &StatsPatch{Name: fields[1], Stats: &TableStats{Card: card, Distinct: map[string]int{}}}
		case line == "end":
			switch {
			case curRel != nil:
				d.Relations = append(d.Relations, curRel)
				curRel = nil
			case curStats != nil:
				d.Stats = append(d.Stats, *curStats)
				curStats = nil
			default:
				return nil, fmt.Errorf("db: line %d: 'end' outside block", lineNo)
			}
		default:
			switch {
			case curRel != nil:
				if err := parseTupleLine(curRel, line, lineNo); err != nil {
					return nil, err
				}
			case curStats != nil:
				fields := strings.Fields(line)
				if len(fields) != 2 {
					return nil, fmt.Errorf("db: line %d: want '<attr> <distinct>'", lineNo)
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("db: line %d: bad selectivity %q", lineNo, fields[1])
				}
				curStats.Stats.Distinct[fields[0]] = n
			default:
				return nil, fmt.Errorf("db: line %d: content outside block", lineNo)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if curRel != nil || curStats != nil {
		return nil, fmt.Errorf("db: delta block not terminated by 'end'")
	}
	return d, nil
}

// parseRelationHeader parses a "relation <name> (<attrs>)" line into an
// empty relation (shared with ReadCatalog's grammar).
func parseRelationHeader(line string, lineNo int) (*Relation, error) {
	rest := strings.TrimPrefix(line, "relation ")
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("db: line %d: malformed relation header", lineNo)
	}
	name := strings.TrimSpace(rest[:open])
	var attrs []string
	for _, a := range strings.Split(rest[open+1:closeIdx], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("db: line %d: empty attribute", lineNo)
		}
		attrs = append(attrs, a)
	}
	return NewRelation(name, attrs...), nil
}

// parseTupleLine appends one comma-separated tuple to the relation.
func parseTupleLine(r *Relation, line string, lineNo int) error {
	fields := strings.Split(line, ",")
	tup := make([]Value, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("db: line %d: bad value %q", lineNo, f)
		}
		tup[i] = Value(v)
	}
	if err := r.Append(tup...); err != nil {
		return fmt.Errorf("db: line %d: %w", lineNo, err)
	}
	return nil
}

// WriteCatalogDelta serializes a delta in the format ReadCatalogDelta
// parses (attributes of analyze blocks sorted for determinism).
func WriteCatalogDelta(w io.Writer, d *CatalogDelta) error {
	for _, r := range d.Relations {
		if err := WriteRelation(w, r); err != nil {
			return err
		}
	}
	for _, sp := range d.Stats {
		if _, err := fmt.Fprintf(w, "analyze %s card %d\n", sp.Name, sp.Stats.Card); err != nil {
			return err
		}
		attrs := make([]string, 0, len(sp.Stats.Distinct))
		for a := range sp.Stats.Distinct {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			if _, err := fmt.Fprintf(w, "%s %d\n", a, sp.Stats.Distinct[a]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "end"); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDelta applies d to the catalog in place: data relations are
// upserted and immediately re-analyzed (only the touched relations — the
// point of a delta is that nothing else is re-ANALYZEd), then stats-only
// patches override the named relations' statistics without touching data.
// A name appearing in both halves ends with the patched statistics. It
// returns the relation names whose data changed and those whose statistics
// alone changed (disjoint lists). Apply to a Clone of a published catalog,
// never to the published snapshot itself.
func (c *Catalog) ApplyDelta(d *CatalogDelta) (dataChanged, statsChanged []string, err error) {
	for _, r := range d.Relations {
		c.Upsert(r)
		if _, err := c.Analyze(r.Name); err != nil {
			return nil, nil, err
		}
		dataChanged = append(dataChanged, r.Name)
	}
	inData := make(map[string]bool, len(dataChanged))
	for _, n := range dataChanged {
		inData[n] = true
	}
	for _, sp := range d.Stats {
		r := c.Get(sp.Name)
		if r == nil {
			return nil, nil, fmt.Errorf("db: stats-only delta for unknown relation %q", sp.Name)
		}
		for a := range sp.Stats.Distinct {
			if !r.HasAttr(a) {
				return nil, nil, fmt.Errorf("db: stats-only delta for %s names unknown attribute %q", sp.Name, a)
			}
		}
		c.SetStats(sp.Name, sp.Stats)
		if !inData[sp.Name] {
			statsChanged = append(statsChanged, sp.Name)
		}
	}
	return dataChanged, statsChanged, nil
}
