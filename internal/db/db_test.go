package db

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRelationBasics(t *testing.T) {
	r := NewRelation("r", "A", "B")
	if r.Arity() != 2 || r.Card() != 0 {
		t.Fatal("empty relation wrong shape")
	}
	r.MustAppend(1, 2)
	r.MustAppend(1, 3)
	if r.Card() != 2 {
		t.Fatal("Card wrong")
	}
	if err := r.Append(1); err == nil {
		t.Error("arity mismatch not rejected")
	}
	if r.AttrIndex("B") != 1 || r.AttrIndex("C") != -1 {
		t.Error("AttrIndex wrong")
	}
	if !r.HasAttr("A") || r.HasAttr("Z") {
		t.Error("HasAttr wrong")
	}
	if r.DistinctCount("A") != 1 || r.DistinctCount("B") != 2 {
		t.Error("DistinctCount wrong")
	}
	if r.DistinctCount("Z") != 0 {
		t.Error("DistinctCount of missing attr should be 0")
	}
}

func TestCloneAndEqual(t *testing.T) {
	r := NewRelation("r", "A", "B")
	r.MustAppend(1, 2)
	r.MustAppend(3, 4)
	s := r.Clone()
	if !r.Equal(s) {
		t.Fatal("clone not equal")
	}
	s.Tuples[0][0] = 9
	if r.Tuples[0][0] == 9 {
		t.Fatal("clone aliases tuples")
	}
	if r.Equal(s) {
		t.Fatal("Equal missed difference")
	}
	// Order-insensitivity.
	u := NewRelation("r", "A", "B")
	u.MustAppend(3, 4)
	u.MustAppend(1, 2)
	if !r.Equal(u) {
		t.Error("Equal should be order-insensitive")
	}
	// Multiset semantics.
	v := NewRelation("r", "A", "B")
	v.MustAppend(1, 2)
	v.MustAppend(1, 2)
	w := NewRelation("r", "A", "B")
	w.MustAppend(1, 2)
	w.MustAppend(3, 4)
	if v.Equal(w) {
		t.Error("Equal should respect multiplicity")
	}
}

func TestRename(t *testing.T) {
	r := NewRelation("r", "c1", "c2")
	r.MustAppend(1, 2)
	s := r.Rename("rr", map[string]string{"c1": "X"})
	if s.Attrs[0] != "X" || s.Attrs[1] != "c2" || s.Name != "rr" {
		t.Errorf("Rename wrong: %+v", s.Attrs)
	}
	if r.Attrs[0] != "c1" {
		t.Error("Rename mutated original")
	}
}

func TestWithRowID(t *testing.T) {
	r := NewRelation("r", "A")
	r.MustAppend(7)
	r.MustAppend(7)
	s := r.WithRowID("rid")
	if s.Arity() != 2 || s.DistinctCount("rid") != 2 {
		t.Errorf("WithRowID: %v", s)
	}
	if s.Tuples[0][1] != 0 || s.Tuples[1][1] != 1 {
		t.Error("row ids not sequential")
	}
}

func TestSortTuples(t *testing.T) {
	r := NewRelation("r", "A", "B")
	r.MustAppend(2, 1)
	r.MustAppend(1, 9)
	r.MustAppend(1, 2)
	r.SortTuples()
	if r.Tuples[0][0] != 1 || r.Tuples[0][1] != 2 || r.Tuples[2][0] != 2 {
		t.Errorf("sort wrong: %v", r.Tuples)
	}
}

func TestCatalogAnalyze(t *testing.T) {
	c := NewCatalog()
	r := NewRelation("r", "A", "B")
	r.MustAppend(1, 1)
	r.MustAppend(2, 1)
	c.Put(r)
	st, err := c.Analyze("r")
	if err != nil {
		t.Fatal(err)
	}
	if st.Card != 2 || st.Distinct["A"] != 2 || st.Distinct["B"] != 1 {
		t.Errorf("stats wrong: %+v", st)
	}
	if _, err := c.Analyze("missing"); err == nil {
		t.Error("Analyze of missing relation should fail")
	}
	// Replacing invalidates stats.
	r2 := NewRelation("r", "A", "B")
	r2.MustAppend(5, 5)
	c.Put(r2)
	if c.Stats("r") != nil {
		t.Error("Put should invalidate stats")
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	if c.Stats("r").Card != 1 {
		t.Error("re-analyze wrong")
	}
}

func TestStatsTableRendering(t *testing.T) {
	c := NewCatalog()
	r := NewRelation("a", "S", "X")
	r.MustAppend(1, 2)
	c.Put(r)
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	tbl := c.StatsTable()
	if !strings.Contains(tbl, "atom a, |a| = 1") || !strings.Contains(tbl, "SELECTIVITY S") {
		t.Errorf("StatsTable rendering: %q", tbl)
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	spec := Spec{
		Name:     "a",
		Attrs:    []string{"S", "X", "C"},
		Card:     4606,
		Distinct: map[string]int{"S": 14, "X": 24, "C": 21},
	}
	r, err := Generate(rng, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Card() != 4606 {
		t.Fatalf("card = %d", r.Card())
	}
	for a, want := range spec.Distinct {
		if got := r.DistinctCount(a); got != want {
			t.Errorf("distinct(%s) = %d, want %d", a, got, want)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(rng, Spec{Name: "x", Attrs: []string{"A"}, Card: 5,
		Distinct: map[string]int{}}); err == nil {
		t.Error("missing distinct should fail")
	}
	if _, err := Generate(rng, Spec{Name: "x", Attrs: []string{"A"}, Card: 5,
		Distinct: map[string]int{"A": 9}}); err == nil {
		t.Error("distinct > card should fail")
	}
	if _, err := Generate(rng, Spec{Name: "x", Attrs: []string{"A"}, Card: 5,
		Distinct: map[string]int{"A": 0}}); err == nil {
		t.Error("distinct 0 should fail")
	}
}

// Property: generated relations always match their spec exactly.
func TestGenerateQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(cardRaw, dRaw uint16) bool {
		card := int(cardRaw%500) + 1
		d := int(dRaw)%card + 1
		r, err := Generate(rng, Spec{
			Name: "q", Attrs: []string{"A", "B"}, Card: card,
			Distinct: map[string]int{"A": d, "B": card},
		})
		if err != nil {
			return false
		}
		return r.Card() == card && r.DistinctCount("A") == d && r.DistinctCount("B") == card
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGenerateCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := GenerateCatalog(rng, []Spec{
		{Name: "r", Attrs: []string{"A"}, Card: 10, Distinct: map[string]int{"A": 5}},
		{Name: "s", Attrs: []string{"A", "B"}, Card: 20, Distinct: map[string]int{"A": 5, "B": 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Names()) != 2 || c.Stats("s") == nil {
		t.Error("catalog incomplete")
	}
	if c.Stats("s").Distinct["A"] != 5 {
		t.Error("stats wrong")
	}
}
