package db

import (
	"fmt"
	"sort"
)

// TableStats holds ANALYZE output for one relation: cardinality and
// per-attribute selectivity (number of distinct values), exactly the
// quantitative information of Fig 5.
type TableStats struct {
	Card     int
	Distinct map[string]int
}

// Catalog is a named collection of relations with their statistics.
type Catalog struct {
	rels  map[string]*Relation
	stats map[string]*TableStats
	order []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: map[string]*Relation{}, stats: map[string]*TableStats{}}
}

// Put stores (or replaces) a relation; statistics are invalidated until the
// next Analyze. A name already registered — as a relation or as a
// stats-only entry via SetStats — keeps its single slot in the insertion
// order, so Names never reports duplicates.
func (c *Catalog) Put(r *Relation) {
	if !c.registered(r.Name) {
		c.order = append(c.order, r.Name)
	}
	c.rels[r.Name] = r
	delete(c.stats, r.Name)
}

// Upsert is Put, reporting whether an existing relation was replaced (as
// opposed to a first registration). The delta-application path uses the
// distinction to tell "data changed" from "relation added".
func (c *Catalog) Upsert(r *Relation) (replaced bool) {
	_, replaced = c.rels[r.Name]
	c.Put(r)
	return replaced
}

// registered reports whether the name occupies a slot in the insertion
// order — either as a real relation or as a stats-only entry.
func (c *Catalog) registered(name string) bool {
	if _, ok := c.rels[name]; ok {
		return true
	}
	_, ok := c.stats[name]
	return ok
}

// Get returns the named relation, or nil.
func (c *Catalog) Get(name string) *Relation { return c.rels[name] }

// Names lists relation names in insertion order.
func (c *Catalog) Names() []string { return append([]string(nil), c.order...) }

// Analyze computes statistics for the named relation (the paper's ANALYZE
// TABLE). It is idempotent and cached until the relation is replaced.
func (c *Catalog) Analyze(name string) (*TableStats, error) {
	if st, ok := c.stats[name]; ok {
		return st, nil
	}
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("db: unknown relation %q", name)
	}
	st := &TableStats{Card: r.Card(), Distinct: map[string]int{}}
	for _, a := range r.Attrs {
		st.Distinct[a] = r.DistinctCount(a)
	}
	c.stats[name] = st
	return st, nil
}

// AnalyzeAll runs Analyze on every relation.
func (c *Catalog) AnalyzeAll() error {
	for _, n := range c.order {
		if _, err := c.Analyze(n); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns cached statistics (nil if not analyzed).
func (c *Catalog) Stats(name string) *TableStats { return c.stats[name] }

// SetStats installs statistics directly, bypassing Analyze. Used to run the
// cost model with the paper's published Fig 5 numbers independent of the
// generated data, and by stats-only catalog deltas to override a
// relation's ANALYZE output.
func (c *Catalog) SetStats(name string, st *TableStats) {
	if !c.registered(name) {
		// A stats-only entry still claims a slot in the insertion order.
		c.order = append(c.order, name)
	}
	c.stats[name] = st
}

// Clone returns a copy-on-write snapshot: the maps and the insertion order
// are copied, the *Relation and *TableStats values are shared. Mutating
// the clone (Put, Upsert, SetStats, Analyze) rebinds map entries without
// touching the original, which is what lets a catalog delta be applied to
// a published — and therefore immutable — registry snapshot: untouched
// relations keep the exact pointers the old snapshot serves.
func (c *Catalog) Clone() *Catalog {
	out := &Catalog{
		rels:  make(map[string]*Relation, len(c.rels)),
		stats: make(map[string]*TableStats, len(c.stats)),
		order: append([]string(nil), c.order...),
	}
	for n, r := range c.rels {
		out.rels[n] = r
	}
	for n, st := range c.stats {
		out.stats[n] = st
	}
	return out
}

// StatsTable renders statistics in the layout of Fig 5, one block per
// relation in insertion order: cardinality then attribute selectivities
// (attributes sorted for determinism).
func (c *Catalog) StatsTable() string {
	out := ""
	for _, n := range c.order {
		st := c.stats[n]
		if st == nil {
			continue
		}
		out += fmt.Sprintf("atom %s, |%s| = %d\n", n, n, st.Card)
		attrs := make([]string, 0, len(st.Distinct))
		for a := range st.Distinct {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			out += fmt.Sprintf("  SELECTIVITY %-4s = %d\n", a, st.Distinct[a])
		}
	}
	return out
}
