package db

import "fmt"

// ColRelation is the columnar twin of Relation: the same schema, with the
// tuple data transposed into one dictionary-encoded vector per attribute.
// The vectorized execution engine operates on these — per-column scans,
// batched hash probes, and selection-vector filtering all want contiguous
// value vectors, not row slices. Columns are immutable once built and may
// be shared freely between readers (the engine shares them across aliases
// of one base relation).
type ColRelation struct {
	Name  string
	Attrs []string
	Cols  [][]Value // len(Cols) == len(Attrs); all columns have equal length
}

// Columnar transposes r into its columnar form. The result does not alias
// r's tuple storage; mutating r afterwards does not affect it.
func Columnar(r *Relation) *ColRelation {
	c := &ColRelation{
		Name:  r.Name,
		Attrs: append([]string(nil), r.Attrs...),
		Cols:  make([][]Value, len(r.Attrs)),
	}
	n := len(r.Tuples)
	for i := range c.Cols {
		c.Cols[i] = make([]Value, n)
	}
	for ri, t := range r.Tuples {
		for ci := range c.Cols {
			c.Cols[ci][ri] = t[ci]
		}
	}
	return c
}

// Len returns the number of rows.
func (c *ColRelation) Len() int {
	if len(c.Cols) == 0 {
		return 0
	}
	return len(c.Cols[0])
}

// Arity returns the number of attributes.
func (c *ColRelation) Arity() int { return len(c.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (c *ColRelation) AttrIndex(name string) int {
	for i, a := range c.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// Rows transposes back into row form (tests and the buffered compatibility
// path; the streaming engine never materializes this).
func (c *ColRelation) Rows() *Relation {
	out := NewRelation(c.Name, c.Attrs...)
	n := c.Len()
	out.Tuples = make([][]Value, n)
	for ri := 0; ri < n; ri++ {
		t := make([]Value, len(c.Cols))
		for ci := range c.Cols {
			t[ci] = c.Cols[ci][ri]
		}
		out.Tuples[ri] = t
	}
	return out
}

// WithRowID returns a columnar relation extending c with one extra column
// whose value is the row index — the columnar realization of the
// fresh-variable trick. The base columns are shared, not copied; rowid is
// the caller-supplied vector (built once per base relation and shared
// across aliases by the engine's ColStore).
func (c *ColRelation) WithRowID(attr string, rowid []Value) (*ColRelation, error) {
	if len(rowid) != c.Len() {
		return nil, fmt.Errorf("db: rowid column has %d rows, relation %s has %d", len(rowid), c.Name, c.Len())
	}
	return &ColRelation{
		Name:  c.Name,
		Attrs: append(append([]string(nil), c.Attrs...), attr),
		Cols:  append(append([][]Value(nil), c.Cols...), rowid),
	}, nil
}

// RowIDColumn builds the canonical rowid vector 0..n-1 for an n-row
// relation.
func RowIDColumn(n int) []Value {
	col := make([]Value, n)
	for i := range col {
		col[i] = Value(i)
	}
	return col
}
