package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cq"
)

// Serve on a random port, answer a request, cancel the context: graceful
// shutdown must return nil and free the batcher.
func TestServeGracefulShutdown(t *testing.T) {
	s := New(Config{BatchWindow: time.Millisecond, Log: nil})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, "127.0.0.1:0") }()

	deadline := time.Now().Add(5 * time.Second)
	for s.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server never bound an address")
		}
		time.Sleep(time.Millisecond)
	}
	url := fmt.Sprintf("http://%s/healthz", s.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}

	// The batcher must be stopped: submits fail instead of hanging.
	if s.batcher == nil {
		t.Fatal("batcher expected with BatchWindow > 0")
	}
	select {
	case <-s.batcher.done:
	default:
		t.Fatal("batcher loop still running after shutdown")
	}
}

// The admission limiter rejects excess concurrency with 429 rather than
// queueing without bound.
func TestLimiterRejectsExcess(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	block := make(chan struct{})
	entered := make(chan struct{})
	h := s.instrument("plan", true, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
		w.WriteHeader(http.StatusOK)
	}))

	rec1 := make(chan int, 1)
	go func() {
		w := newRecorder()
		h.ServeHTTP(w, newTestRequest())
		rec1 <- w.code
	}()
	<-entered
	w2 := newRecorder()
	h.ServeHTTP(w2, newTestRequest()) // limiter full → immediate 429
	if w2.code != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", w2.code)
	}
	close(block)
	if code := <-rec1; code != http.StatusOK {
		t.Fatalf("first request status %d, want 200", code)
	}

	// The rejection is counted but not observed into the latency
	// histogram; only the served request is.
	s.metrics.mu.Lock()
	rejected := s.metrics.requests["plan"][http.StatusTooManyRequests]
	s.metrics.mu.Unlock()
	if rejected != 1 {
		t.Fatalf("429 count = %d, want 1", rejected)
	}
	if got := s.metrics.latencies["plan"].total.Load(); got != 1 {
		t.Fatalf("latency observations = %d, want 1 (429s must not skew the histogram)", got)
	}
}

// A request that exceeds RequestTimeout must be recorded with the 503 the
// client received, not the inner handler's late status.
func TestTimeoutRecordedAs503(t *testing.T) {
	s := New(Config{RequestTimeout: 10 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	h := s.route("plan", false, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	w := newRecorder()
	h.ServeHTTP(w, newTestRequest())
	if w.code != http.StatusServiceUnavailable {
		t.Fatalf("client saw status %d, want 503", w.code)
	}
	s.metrics.mu.Lock()
	got := s.metrics.requests["plan"][http.StatusServiceUnavailable]
	s.metrics.mu.Unlock()
	if got != 1 {
		t.Fatalf("recorded 503s = %d, want 1", got)
	}
}

// A request that outlasts ShutdownTimeout: the drain gives up and Serve
// reports the deadline error instead of hanging, while the slow request is
// still allowed to finish on its live connection (graceful shutdown never
// kills active work).
func TestShutdownTimeoutExpiresWithSlowRequest(t *testing.T) {
	unregister := chaos.Register(chaos.NewSchedule(3,
		chaos.Rule{Point: chaos.ServerHandler, Prob: 1, Effect: chaos.Delay, Delay: 600 * time.Millisecond, Limit: 1},
	))
	defer unregister()

	s := New(Config{ShutdownTimeout: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, "127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server never bound an address")
		}
		time.Sleep(time.Millisecond)
	}

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", s.Addr()))
		if err == nil {
			resp.Body.Close()
		}
		reqDone <- err
	}()
	for s.metrics.inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never entered the handler")
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Serve returned %v, want deadline exceeded from the expired drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung past its shutdown timeout")
	}
	select {
	case err := <-reqDone:
		if err != nil {
			t.Fatalf("slow request was killed by shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow request never completed")
	}
}

// Shutdown with requests still in the batcher: a request already inside the
// collect window is dispatched and answered, not dropped; a request
// submitted after close fails fast with the shutdown error instead of
// hanging on a dead loop.
func TestBatcherShutdownDrainsCollectedRequests(t *testing.T) {
	cat := testCatalog(t)
	q := cq.MustParse(triangleQuery)
	planner := cache.NewPlanner(cache.Options{})
	b := newPlanBatcher(150*time.Millisecond, 32)

	mk := func() *batchReq {
		probe, err := planner.ProbePlan(q, cat, 3)
		if err != nil {
			t.Fatal(err)
		}
		return &batchReq{planner: planner, probe: probe, out: make(chan batchOut, 1)}
	}
	out := make(chan batchOut, 1)
	go func() { out <- b.submit(context.Background(), mk()) }()
	// Let the loop pick the request into its window, then close mid-window.
	time.Sleep(20 * time.Millisecond)
	closed := make(chan struct{})
	go func() { b.close(); close(closed) }()

	select {
	case o := <-out:
		if o.err != nil {
			t.Fatalf("collected request dropped by shutdown: %v", o.err)
		}
		if o.plan == nil {
			t.Fatal("collected request answered without a plan")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collected request hung across shutdown")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("batcher close hung")
	}

	if o := b.submit(context.Background(), mk()); !errors.Is(o.err, errBatcherClosed) {
		t.Fatalf("post-close submit: got err %v, want errBatcherClosed", o.err)
	}
}

// Shutdown is idempotent: Serve's own Close plus any number of explicit
// Close calls (concurrently, even) must neither panic nor hang.
func TestDoubleShutdownIsIdempotent(t *testing.T) {
	s := New(Config{BatchWindow: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, "127.0.0.1:0") }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server never bound an address")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("repeated Close hung")
	}
}

type recorder struct {
	header http.Header
	code   int
}

func newRecorder() *recorder { return &recorder{header: http.Header{}} }

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(c int) {
	if r.code == 0 {
		r.code = c
	}
}
func (r *recorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return len(b), nil
}

func newTestRequest() *http.Request {
	req, _ := http.NewRequest(http.MethodPost, "/v1/plan", nil)
	return req
}
