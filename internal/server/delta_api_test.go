package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// Tests for PATCH /v1/catalogs/{tenant}: the per-relation delta endpoint
// and the adaptive invalidation behind it. The contract under test is the
// one the ISSUE pins: a stats-only delta keeps renamed-variant plan hits
// warm with zero new computations, and a data delta invalidates only what
// references the touched relation — unaffected answers keep serving and
// only the touched relation's columnar state rebuilds.

const uvTriangleCatalog = triangleCatalog + `relation u (d,e)
1,10
2,20
end
relation v (e,f)
10,100
20,200
end
`

const uvQuery = "ans(X,Z) :- u(X,Y), v(Y,Z)."

const renamedTriangleQuery = "ans(P,Q) :- r(P,Q), s(Q,R), t(R,P)."

const statsOnlyDelta = `analyze r card 4000
a 4000
b 4000
end
`

// A stats-only delta leaves every cached structure valid, so the server
// re-keys hot plan entries in place: a renamed variant of a pre-delta plan
// must hit the cache at the new catalog version without a single new
// search, and a pre-delta answer must replay from the result cache under
// its restatted key.
func TestCatalogPatchStatsOnlyKeepsRenamedVariantWarm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	// Warm the plan cache and the result cache at version 1.
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	ref := decodeAs[PlanResponse](t, resp, http.StatusOK)
	if ref.CacheHit {
		t.Fatal("first plan reported a cache hit")
	}
	warm := readStream(t, postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 3}))
	if warm.trailer.RowCount != 2 {
		t.Fatalf("warm execute rows = %d, want 2", warm.trailer.RowCount)
	}
	base := getStats(t, ts).Planner.Plans.Computations

	ack := patchCatalog(t, ts, "acme", "", statsOnlyDelta)
	if ack.BaseVersion != 1 || ack.Version != 2 {
		t.Fatalf("delta versions = %d -> %d, want 1 -> 2", ack.BaseVersion, ack.Version)
	}
	if len(ack.DataChanged) != 0 || !reflect.DeepEqual(ack.StatsChanged, []string{"r"}) {
		t.Fatalf("delta change report = data %v stats %v, want stats [r] only", ack.DataChanged, ack.StatsChanged)
	}
	if ack.PlansRekeyed < 1 {
		t.Fatalf("plansRekeyed = %d, want >= 1", ack.PlansRekeyed)
	}

	// Renamed variant, post-delta: a plan-cache hit at the new version.
	resp = postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: renamedTriangleQuery, K: 3})
	rn := decodeAs[PlanResponse](t, resp, http.StatusOK)
	if !rn.CacheHit {
		t.Fatal("renamed variant missed the plan cache after a stats-only delta")
	}
	if rn.CatalogVersion != 2 {
		t.Fatalf("renamed variant served at version %d, want 2", rn.CatalogVersion)
	}
	if got := getStats(t, ts).Planner.Plans.Computations; got != base {
		t.Fatalf("computations went %d -> %d across a stats-only delta; want unchanged", base, got)
	}

	// The cached answer was carried (restatted) too: the renamed execute
	// replays it without planning or evaluating.
	st := readStream(t, postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: renamedTriangleQuery, K: 3}))
	if !st.header.ResultCached {
		t.Fatal("renamed execute missed the result cache after a stats-only delta")
	}
	if st.header.CatalogVersion != 2 {
		t.Fatalf("renamed execute at version %d, want 2", st.header.CatalogVersion)
	}
	if st.trailer.RowCount != 2 {
		t.Fatalf("renamed execute rows = %d, want 2", st.trailer.RowCount)
	}
}

// A data delta invalidates by reference: answers whose plans touch the
// changed relation recompute, everything else keeps serving from cache,
// and the columnar store for the new version carries every untouched
// relation — only the changed one is re-transposed. The tenant must also
// hold exactly one resident store version afterwards (no stranded
// snapshots).
func TestCatalogPatchDataDeltaAdaptiveInvalidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", uvTriangleCatalog)

	tri := readStream(t, postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 3}))
	uv := readStream(t, postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: uvQuery, K: 2}))
	if tri.trailer.RowCount != 2 || uv.trailer.RowCount != 2 {
		t.Fatalf("warm rows = %d / %d, want 2 / 2", tri.trailer.RowCount, uv.trailer.RowCount)
	}
	if got := s.colstores.tenantVersions("acme"); !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("resident store versions before delta = %v, want [1]", got)
	}

	// Replace r's data: the triangle loses a closing tuple, u/v untouched.
	ack := patchCatalog(t, ts, "acme", "", "relation r (a,b)\n1,2\nend\n")
	if !reflect.DeepEqual(ack.DataChanged, []string{"r"}) || len(ack.StatsChanged) != 0 {
		t.Fatalf("delta change report = data %v stats %v, want data [r] only", ack.DataChanged, ack.StatsChanged)
	}
	if ack.Version != 2 {
		t.Fatalf("delta version = %d, want 2", ack.Version)
	}

	// Satellite invariant: the delta advanced the columnar state — old
	// version dropped, exactly the new one resident.
	if got := s.colstores.tenantVersions("acme"); !reflect.DeepEqual(got, []uint64{2}) {
		t.Fatalf("resident store versions after delta = %v, want [2]", got)
	}

	// u/v answer survived the delta: replayed from cache at version 2.
	uv2 := readStream(t, postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: uvQuery, K: 2}))
	if !uv2.header.ResultCached {
		t.Fatal("u/v answer was dropped by a delta that never touched u or v")
	}
	if uv2.header.CatalogVersion != 2 {
		t.Fatalf("u/v replay at version %d, want 2", uv2.header.CatalogVersion)
	}
	if uv2.trailer.RowCount != 2 {
		t.Fatalf("u/v replay rows = %d, want 2", uv2.trailer.RowCount)
	}

	// Triangle answer did not survive — it references r — and the fresh
	// evaluation sees the new data.
	tri2 := readStream(t, postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 3}))
	if tri2.header.ResultCached {
		t.Fatal("triangle answer replayed across a data change to r")
	}
	if tri2.trailer.RowCount != 1 {
		t.Fatalf("triangle rows after delta = %d, want 1", tri2.trailer.RowCount)
	}
	sortRows(tri2.rows)
	if !reflect.DeepEqual(tri2.rows, [][]int32{{1, 2}}) {
		t.Fatalf("triangle rows after delta = %v, want [[1 2]]", tri2.rows)
	}

	// Only r re-transposed: the carried store kept s, t, u, v columnar, so
	// the post-delta evaluation converted exactly one relation. (The u/v
	// replay above never touched the store — it came from the result cache.)
	s.colstores.mu.Lock()
	cs := s.colstores.byKey["acme\x1f2"]
	s.colstores.mu.Unlock()
	if cs == nil {
		t.Fatal("no resident store for version 2")
	}
	if got := cs.Stats().Conversions; got != 1 {
		t.Fatalf("relations re-transposed after delta = %d, want 1 (only r)", got)
	}
}

// ?ifVersion pins the delta's base: a mismatch is a deterministic 409 with
// the shared error envelope and code "conflict" — no retry loop.
func TestCatalogPatchConflictEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	resp := doPatchRaw(t, ts.URL+"/v1/catalogs/acme?ifVersion=7", statsOnlyDelta)
	env := decodeAs[ErrorResponse](t, resp, http.StatusConflict)
	if env.Error.Code != "conflict" {
		t.Fatalf("conflict envelope code = %q, want %q", env.Error.Code, "conflict")
	}
	if env.Error.Message == "" {
		t.Fatal("conflict envelope has no message")
	}

	// Matching pin applies normally.
	ack := patchCatalog(t, ts, "acme", "1", statsOnlyDelta)
	if ack.Version != 2 {
		t.Fatalf("pinned delta version = %d, want 2", ack.Version)
	}
}

func TestCatalogPatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	for _, tc := range []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{name: "unknown tenant", path: "/v1/catalogs/ghost", body: statsOnlyDelta, status: http.StatusNotFound},
		{name: "empty delta", path: "/v1/catalogs/acme", body: "# nothing here\n", status: http.StatusBadRequest},
		{name: "analyze unknown relation", path: "/v1/catalogs/acme", body: "analyze nope card 5\nend\n", status: http.StatusBadRequest},
		{name: "analyze unknown attribute", path: "/v1/catalogs/acme", body: "analyze r card 5\nzz 5\nend\n", status: http.StatusBadRequest},
		{name: "bad ifVersion", path: "/v1/catalogs/acme?ifVersion=soon", body: statsOnlyDelta, status: http.StatusBadRequest},
		{name: "malformed delta", path: "/v1/catalogs/acme", body: "relation r (a,b)\n1\nend\n", status: http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := doPatchRaw(t, ts.URL+tc.path, tc.body)
			env := decodeAs[ErrorResponse](t, resp, tc.status)
			if env.Error.Message == "" {
				t.Fatal("error envelope has no message")
			}
		})
	}

	// None of the rejected deltas may have bumped the version.
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	out := decodeAs[PlanResponse](t, resp, http.StatusOK)
	if out.CatalogVersion != 1 {
		t.Fatalf("catalog version after rejected deltas = %d, want 1", out.CatalogVersion)
	}
}

// patchCatalog issues a PATCH delta and decodes the 200 acknowledgement.
// ifVersion of "" leaves the delta unpinned.
func patchCatalog(t *testing.T, ts *httptest.Server, tenant, ifVersion, delta string) CatalogDeltaResponse {
	t.Helper()
	path := ts.URL + "/v1/catalogs/" + tenant
	if ifVersion != "" {
		path += "?ifVersion=" + ifVersion
	}
	resp := doPatchRaw(t, path, delta)
	return decodeAs[CatalogDeltaResponse](t, resp, http.StatusOK)
}

func doPatchRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
