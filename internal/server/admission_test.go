package server

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestAdmissionBudgetShed: a tenant that exhausts its token bucket gets
// 429 + Retry-After while the shed counters attribute the overage to it.
func TestAdmissionBudgetShed(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Admission: AdmissionConfig{TenantRate: 0.0001, TenantBurst: 2},
	})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
		decodeAs[PlanResponse](t, resp, http.StatusOK)
	}
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	st := getStats(t, ts)
	if st.Admission == nil || st.Admission.ShedBudget != 1 || st.Admission.PerTenant["acme"] != 1 {
		t.Fatalf("admission stats = %+v", st.Admission)
	}

	metrics, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	raw, _ := io.ReadAll(metrics.Body)
	for _, want := range []string{
		`planserver_tenant_shed_total{tenant="acme"} 1`,
		`planserver_shed_total{cause="budget"} 1`,
		`planserver_shed_total{cause="priority"} 0`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestAdmissionPriorityShed: with the limiter saturated by the request
// itself (MaxInFlight 1), a low-priority tenant is shed while a default
// (class 0) tenant is never priority-shed.
func TestAdmissionPriorityShed(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxInFlight: 1,
		Admission:   AdmissionConfig{TenantPriority: map[string]int{"bulk": 8}},
	})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "bulk", Query: triangleQuery, K: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("low-priority request under load: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("priority shed missing Retry-After")
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ok := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	decodeAs[PlanResponse](t, ok, http.StatusOK)

	st := getStats(t, ts)
	if st.Admission == nil || st.Admission.ShedPriority != 1 || st.Admission.ShedBudget != 0 {
		t.Fatalf("admission stats = %+v", st.Admission)
	}
}

// TestAdmissionDisabled: the zero config keeps the admission layer out of
// the path and out of /v1/stats.
func TestAdmissionDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	decodeAs[PlanResponse](t, resp, http.StatusOK)
	if st := getStats(t, ts); st.Admission != nil {
		t.Fatalf("disabled admission still reports stats: %+v", st.Admission)
	}
}

// TestTakeTokenRefill pins the bucket arithmetic with a controlled clock:
// burst spends down to zero, refill is proportional to elapsed time, and
// the retry hint covers the remaining deficit.
func TestTakeTokenRefill(t *testing.T) {
	a := newAdmission(AdmissionConfig{TenantRate: 2, TenantBurst: 2}, nil)
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := a.takeToken("t", now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, wait := a.takeToken("t", now)
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s] at rate 2/s", wait)
	}
	// 500ms refills one token at 2/s.
	if ok, _ := a.takeToken("t", now.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled token refused")
	}
}

// TestReadyz covers the readiness surface: a plain server is ready with
// unconfigured subsystems reported as "none", the /v1/healthz alias is
// live, and a saturated limiter flips readiness to 503 without killing
// liveness.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})

	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready := decodeAs[ReadyzResponse](t, resp, http.StatusOK)
	if !ready.Ready || ready.Checks["store"] != "none" || ready.Checks["cluster"] != "none" || ready.Checks["limiter"] != "ok" {
		t.Fatalf("readyz = %+v", ready)
	}

	// Saturate the limiter: readiness degrades, liveness does not.
	s.limiter <- struct{}{}
	resp, err = ts.Client().Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	notReady := decodeAs[ReadyzResponse](t, resp, http.StatusServiceUnavailable)
	if notReady.Ready || notReady.Checks["limiter"] != "saturated" {
		t.Fatalf("saturated readyz = %+v", notReady)
	}
	live, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("healthz during saturation: status %d", live.StatusCode)
	}
	<-s.limiter
}

// TestReadyzCluster: on a distributed replica the store and cluster checks
// report ok.
func TestReadyzCluster(t *testing.T) {
	nodes, _ := startCluster(t, 2, []string{t.TempDir(), t.TempDir()})
	resp, err := nodes[0].ts.Client().Get(nodes[0].ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready := decodeAs[ReadyzResponse](t, resp, http.StatusOK)
	if !ready.Ready || ready.Checks["store"] != "ok" || ready.Checks["cluster"] != "ok" {
		t.Fatalf("cluster readyz = %+v", ready)
	}
}
