package server

import (
	"strings"
	"sync"

	"repro/internal/store"
)

// Hinted handoff: when a write-through push cannot reach a key's owner —
// the push queue overflowed, the RPC failed, the owner's breaker is open,
// or the server is shutting down — the push is parked here as a *hint*
// instead of being lost. A background drainer replays hints once the owner
// is reachable again (the breaker re-admits traffic via half-open probes),
// so a healed cluster converges to the same warm state as a
// never-partitioned one.
//
// The queue is bounded and deduplicating: one hint per (owner, key), newest
// record wins — replaying a plan twice is harmless (peer Put is
// idempotent), missing one is not. With a data directory configured the
// queue is also backed by an append-only log reusing internal/store's
// framing, so hints survive a restart mid-outage. An append-only log
// cannot delete drained entries, so the log is compacted by store.Reset
// whenever the queue fully drains; entries drained just before a crash are
// replayed and re-sent, which idempotence absorbs.

// hintSep joins owner and plan key into the log key. The plan key is the
// cache's canonical serialization and the unit separator cannot appear in
// a member ID parsed from flags, so the split is unambiguous.
const hintSep = "\x1f"

// hintAddResult classifies an add for the tier's counters.
type hintAddResult int

const (
	hintAdded hintAddResult = iota
	hintDuplicate
	hintDropped
)

// hintQueue is the bounded deduplicating hint buffer. Safe for concurrent
// use.
type hintQueue struct {
	cap int

	mu    sync.Mutex
	log   *store.Store // nil → memory-only hints
	items map[string]pushItem
	order []string // FIFO of map keys; stale entries pruned lazily
}

// openHintQueue builds the queue, replaying the on-disk hint log when dir
// is non-empty. Replayed entries beyond cap are dropped oldest-first by
// construction (the log replays in append order and add refuses past cap).
func openHintQueue(dir string, opts store.Options, capacity int) (*hintQueue, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	q := &hintQueue{cap: capacity, items: make(map[string]pushItem)}
	if dir == "" {
		return q, nil
	}
	log, err := store.Open(dir, opts, func(r store.Record) {
		owner, key, ok := strings.Cut(r.Key, hintSep)
		if !ok {
			return
		}
		q.add(pushItem{owner: owner, key: key, rec: r.Val, negative: r.Kind == store.KindNegative})
	})
	if err != nil {
		return nil, err
	}
	q.log = log
	return q, nil
}

// add parks one undeliverable push. The queue persists the hint when a log
// is configured; log append failures degrade the hint to memory-only
// rather than dropping it.
func (q *hintQueue) add(it pushItem) hintAddResult {
	mk := it.owner + hintSep + it.key
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, dup := q.items[mk]; dup {
		q.items[mk] = it // newest record wins
		q.logLocked(mk, it)
		return hintDuplicate
	}
	if len(q.items) >= q.cap {
		return hintDropped
	}
	q.items[mk] = it
	q.order = append(q.order, mk)
	q.logLocked(mk, it)
	return hintAdded
}

// logLocked appends one hint to the backing log (replay order makes the
// last append for a key win, matching the in-memory newest-wins dedup).
// Callers hold q.mu.
func (q *hintQueue) logLocked(mk string, it pushItem) {
	if q.log == nil {
		return
	}
	kind := store.KindPlan
	if it.negative {
		kind = store.KindNegative
	}
	_ = q.log.Append(kind, mk, it.rec)
}

// remove settles one hint after a successful replay.
func (q *hintQueue) remove(it pushItem) {
	q.mu.Lock()
	delete(q.items, it.owner+hintSep+it.key)
	q.mu.Unlock()
}

// snapshot returns the queued hints in FIFO order, pruning settled entries
// from the order list. The drainer works the snapshot without holding the
// lock, so new hints queue freely during a drain pass.
func (q *hintQueue) snapshot() []pushItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	live := q.order[:0]
	out := make([]pushItem, 0, len(q.items))
	for _, mk := range q.order {
		it, ok := q.items[mk]
		if !ok {
			continue
		}
		live = append(live, mk)
		out = append(out, it)
	}
	q.order = live
	return out
}

// pending reports the queued hint count.
func (q *hintQueue) pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// compact resets the backing log when the queue has fully drained — the
// append-only log's only delete. No-op while hints remain or without a
// log.
func (q *hintQueue) compact() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.log == nil || len(q.items) > 0 {
		return
	}
	_ = q.log.Reset()
}

// close releases the backing log.
func (q *hintQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.log != nil {
		q.log.Close()
		q.log = nil
	}
}
