package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"reflect"
	"sort"
	"testing"
)

// streamFrames decodes a /v2/execute NDJSON body into its typed frames.
type streamFrames struct {
	header  ExecStreamHeader
	rows    [][]int32
	chunks  int
	trailer ExecStreamTrailer
}

func readStream(t *testing.T, resp *http.Response) streamFrames {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	var out streamFrames
	sawHeader, sawTrailer := false, false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		if sawTrailer {
			t.Fatalf("frame after trailer: %s", sc.Text())
		}
		var probe struct {
			Frame string `json:"frame"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		switch probe.Frame {
		case "header":
			if sawHeader {
				t.Fatal("duplicate header frame")
			}
			sawHeader = true
			if err := json.Unmarshal(sc.Bytes(), &out.header); err != nil {
				t.Fatal(err)
			}
		case "rows":
			if !sawHeader {
				t.Fatal("rows before header")
			}
			var rf ExecStreamRows
			if err := json.Unmarshal(sc.Bytes(), &rf); err != nil {
				t.Fatal(err)
			}
			out.chunks++
			out.rows = append(out.rows, rf.Rows...)
		case "trailer":
			sawTrailer = true
			if err := json.Unmarshal(sc.Bytes(), &out.trailer); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown frame kind %q", probe.Frame)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawHeader || !sawTrailer {
		t.Fatalf("incomplete stream: header=%v trailer=%v", sawHeader, sawTrailer)
	}
	return out
}

func sortRows(rows [][]int32) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// The v2 stream and the v1 buffered shim must agree byte-for-byte on the
// answer, and the stream must be properly framed.
func TestExecuteStreamMatchesBuffered(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	req := ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 2}

	// v2 first so it evaluates fresh (the oracle call would otherwise
	// populate the result cache and the stream would replay it).
	st := readStream(t, postJSON(t, ts, "/v2/execute", req))
	v1 := decodeAs[ExecuteResponse](t, postJSON(t, ts, "/v1/execute", req), http.StatusOK)

	if st.header.Tenant != "acme" || st.header.K != 2 || st.header.CatalogVersion != 1 {
		t.Fatalf("header = %+v", st.header)
	}
	if !reflect.DeepEqual(st.header.Columns, []string{"X", "Y"}) {
		t.Fatalf("columns = %v", st.header.Columns)
	}
	if st.header.IsBoolean {
		t.Fatal("non-Boolean query flagged Boolean")
	}
	if st.trailer.Status != "ok" || st.trailer.Error != nil {
		t.Fatalf("trailer = %+v", st.trailer)
	}
	if st.trailer.RowCount != len(st.rows) {
		t.Fatalf("trailer rowCount %d, streamed %d", st.trailer.RowCount, len(st.rows))
	}
	if st.trailer.Metrics == nil || st.trailer.Metrics.Batches == 0 {
		t.Fatalf("trailer metrics = %+v", st.trailer.Metrics)
	}
	sortRows(v1.Rows)
	sortRows(st.rows)
	if !reflect.DeepEqual(v1.Rows, st.rows) {
		t.Fatalf("v2 rows %v != v1 rows %v", st.rows, v1.Rows)
	}
	if len(st.rows) == 0 {
		t.Fatal("triangle query should produce rows")
	}
}

// A repeat execute — and a renamed-but-isomorphic variant — must be served
// from the result cache without re-evaluating, with identical rows.
func TestExecuteResultCacheRepeatAndRename(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	req := ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 2}

	first := readStream(t, postJSON(t, ts, "/v2/execute", req))
	if first.header.ResultCached {
		t.Fatal("first execute claimed a result-cache hit")
	}
	second := readStream(t, postJSON(t, ts, "/v2/execute", req))
	if !second.header.ResultCached {
		t.Fatal("repeat execute missed the result cache")
	}
	sortRows(first.rows)
	sortRows(second.rows)
	if !reflect.DeepEqual(first.rows, second.rows) {
		t.Fatalf("cached rows diverge: %v vs %v", second.rows, first.rows)
	}

	// Renamed variant: same canonical structure, different variable names.
	renamed := ExecuteRequest{Tenant: "acme", K: 2,
		Query: "ans(U,V) :- r(U,V), s(V,W), t(W,U)."}
	rn := readStream(t, postJSON(t, ts, "/v2/execute", renamed))
	if !rn.header.ResultCached {
		t.Fatal("renamed variant missed the result cache")
	}
	if !reflect.DeepEqual(rn.header.Columns, []string{"U", "V"}) {
		t.Fatalf("renamed columns = %v (should use the requesting head)", rn.header.Columns)
	}
	sortRows(rn.rows)
	if !reflect.DeepEqual(rn.rows, first.rows) {
		t.Fatalf("renamed rows %v != original %v", rn.rows, first.rows)
	}

	// The v1 shim shares the same cache.
	v1 := decodeAs[ExecuteResponse](t, postJSON(t, ts, "/v1/execute", req), http.StatusOK)
	if !v1.ResultCached {
		t.Fatal("v1 shim missed the shared result cache")
	}
	stats := getStats(t, ts)
	if stats.Results == nil || stats.Results.Hits < 3 || stats.Results.Inserts == 0 {
		t.Fatalf("result cache stats = %+v", stats.Results)
	}
}

// A catalog PUT bumps the version: the next execute must re-evaluate
// against the new data, never replay the stale answer.
func TestExecuteResultCacheInvalidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	req := ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 2}

	before := readStream(t, postJSON(t, ts, "/v2/execute", req))
	if len(before.rows) != 2 {
		t.Fatalf("seed answer = %v", before.rows)
	}

	// Same schema, one closing edge removed: the (2,3) triangle is gone.
	smaller := `relation r (a,b)
1,2
2,3
end
relation s (b,c)
2,3
3,4
end
relation t (c,a)
3,1
end
`
	uploadCatalog(t, ts, "acme", smaller)
	after := readStream(t, postJSON(t, ts, "/v2/execute", req))
	if after.header.ResultCached {
		t.Fatal("stale answer served after catalog PUT")
	}
	if after.header.CatalogVersion != 2 {
		t.Fatalf("catalog version = %d", after.header.CatalogVersion)
	}
	if len(after.rows) != 1 || after.rows[0][0] != 1 || after.rows[0][1] != 2 {
		t.Fatalf("post-PUT answer = %v, want [[1 2]]", after.rows)
	}
}

// The v1 endpoint survives as a deprecated shim over the streaming engine.
func TestExecuteV1DeprecatedShim(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	resp := postJSON(t, ts, "/v1/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 2})
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); link != `</v2/execute>; rel="successor-version"` {
		t.Fatalf("Link header = %q", link)
	}
	out := decodeAs[ExecuteResponse](t, resp, http.StatusOK)
	if out.RowCount != 2 || out.Metrics.Batches == 0 {
		t.Fatalf("shim response = %+v", out)
	}
}

// Boolean queries stream a header and a trailer carrying the verdict, and
// the verdict is result-cached like any answer.
func TestExecuteStreamBoolean(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	req := ExecuteRequest{Tenant: "acme", K: 2,
		Query: "ans() :- r(X,Y), s(Y,Z), t(Z,X)."}

	st := readStream(t, postJSON(t, ts, "/v2/execute", req))
	if !st.header.IsBoolean || len(st.header.Columns) != 0 {
		t.Fatalf("header = %+v", st.header)
	}
	if st.chunks != 0 || st.trailer.RowCount != 0 {
		t.Fatalf("Boolean stream leaked row frames: %+v", st)
	}
	if st.trailer.Boolean == nil || !*st.trailer.Boolean {
		t.Fatalf("trailer = %+v", st.trailer)
	}
	again := readStream(t, postJSON(t, ts, "/v2/execute", req))
	if !again.header.ResultCached || again.trailer.Boolean == nil || !*again.trailer.Boolean {
		t.Fatalf("cached Boolean replay = %+v / %+v", again.header, again.trailer)
	}
}

// Every endpoint, v1 and v2, shares the structured error envelope.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	// Pre-stream failures on /v2 are plain JSON errors, not NDJSON.
	bad := decodeAs[ErrorResponse](t,
		postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 99}),
		http.StatusBadRequest)
	if bad.Error.Code != "bad_request" || bad.Error.Message == "" {
		t.Fatalf("v2 envelope = %+v", bad.Error)
	}
	missing := decodeAs[ErrorResponse](t,
		postJSON(t, ts, "/v1/execute", ExecuteRequest{Tenant: "ghost", Query: triangleQuery}),
		http.StatusNotFound)
	if missing.Error.Code != "not_found" {
		t.Fatalf("v1 envelope = %+v", missing.Error)
	}
}

// Disabling the result cache must not break the execute paths.
func TestExecuteResultCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{ResultCacheBytes: -1})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	req := ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 2}
	for i := 0; i < 2; i++ {
		st := readStream(t, postJSON(t, ts, "/v2/execute", req))
		if st.header.ResultCached {
			t.Fatal("hit with caching disabled")
		}
	}
	if s.results != nil {
		t.Fatal("negative budget should disable the cache")
	}
	if stats := getStats(t, ts); stats.Results != nil {
		t.Fatalf("stats should omit a disabled result cache: %+v", stats.Results)
	}
}
