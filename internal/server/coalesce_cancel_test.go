package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cq"
	"repro/internal/db"
)

// Audit trail for the coalescing/cancellation interaction: a batch member
// that gives up (its context cancels while the group is planning) must not
// poison its coalesced peers. The design relies on two properties — group
// delivery uses buffered(1) channels so an absent receiver never blocks the
// fan-out, and submit's early return on ctx.Done abandons only that
// member's receive, not the group computation. These tests pin both, with
// an injected delay holding the group's plan mid-flight so the
// cancellation deterministically lands while the computation is running.

func testCatalog(t *testing.T) *db.Catalog {
	t.Helper()
	cat, err := db.ReadCatalog(strings.NewReader(triangleCatalog))
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestBatcherCancelledMemberDoesNotPoisonPeer drives the batcher directly:
// two members coalesce into one group, the group's computation is delayed
// by injection, and one member cancels mid-flight. The survivor must get
// the real plan; the canceller must get its context error; close must not
// deadlock afterwards.
func TestBatcherCancelledMemberDoesNotPoisonPeer(t *testing.T) {
	unregister := chaos.Register(chaos.NewSchedule(1,
		chaos.Rule{Point: chaos.ServerBatch, Prob: 1, Effect: chaos.Delay, Delay: 60 * time.Millisecond},
	))
	defer unregister()

	cat := testCatalog(t)
	q := cq.MustParse(triangleQuery)
	planner := cache.NewPlanner(cache.Options{})
	b := newPlanBatcher(20*time.Millisecond, 32)
	defer b.close()

	mk := func() *batchReq {
		probe, err := planner.ProbePlan(q, cat, 3)
		if err != nil {
			t.Fatal(err)
		}
		return &batchReq{planner: planner, probe: probe, out: make(chan batchOut, 1)}
	}
	cancelCtx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan batchOut, 1)
	survived := make(chan batchOut, 1)
	go func() { cancelled <- b.submit(cancelCtx, mk()) }()
	go func() { survived <- b.submit(context.Background(), mk()) }()
	// Let both members join the batch and the injected delay start, then
	// cancel one mid-computation.
	time.Sleep(30 * time.Millisecond)
	cancel()

	o := <-cancelled
	if !errors.Is(o.err, context.Canceled) {
		t.Fatalf("cancelled member: got err %v, want context.Canceled", o.err)
	}
	o = <-survived
	if o.err != nil {
		t.Fatalf("surviving peer poisoned by cancelled member: %v", o.err)
	}
	if o.plan == nil || o.plan.Decomp == nil {
		t.Fatal("surviving peer got no plan")
	}
	if w := o.plan.Decomp.Width(); w < 1 || w > 3 {
		t.Fatalf("surviving peer plan width %d outside [1,3]", w)
	}
}

// TestCancelledRequestDoesNotPoisonCoalescedPeerHTTP replays the same race
// end to end: two identical /v1/plan requests coalesce in the batch window,
// the singleflight compute is held by injection, one client times out. The
// peer must receive the correct plan, and a later chaos-free request must
// be served the same bytes from cache — proving the cancellation neither
// corrupted nor evicted the shared result.
func TestCancelledRequestDoesNotPoisonCoalescedPeerHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: 25 * time.Millisecond})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	unregister := chaos.Register(chaos.NewSchedule(1,
		chaos.Rule{Point: chaos.CacheFlight, Prob: 1, Effect: chaos.Delay, Delay: 80 * time.Millisecond},
	))
	defer unregister()

	body, _ := json.Marshal(PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	post := func(ctx context.Context) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		return ts.Client().Do(req)
	}

	type result struct {
		resp *http.Response
		err  error
	}
	cancelCh := make(chan result, 1)
	peerCh := make(chan result, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	go func() { r, err := post(ctx); cancelCh <- result{r, err} }()
	go func() { r, err := post(context.Background()); peerCh <- result{r, err} }()

	r := <-cancelCh
	if r.err == nil {
		r.resp.Body.Close()
		t.Fatal("cancelled request unexpectedly completed; race not exercised")
	}
	if !errors.Is(r.err, context.DeadlineExceeded) {
		t.Fatalf("cancelled request: got %v, want deadline exceeded", r.err)
	}

	r = <-peerCh
	if r.err != nil {
		t.Fatalf("peer request failed: %v", r.err)
	}
	peer := decodeAs[PlanResponse](t, r.resp, http.StatusOK)
	if peer.Plan == nil {
		t.Fatal("peer got no plan")
	}
	peerBytes, _ := json.Marshal(peer.Plan)

	// Chaos off: the same request again must hit the cache and return the
	// same bytes — the cancelled member neither failed nor falsified the
	// shared computation.
	unregister()
	resp, err := post(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	after := decodeAs[PlanResponse](t, resp, http.StatusOK)
	if !after.CacheHit {
		t.Error("post-race request missed the cache: shared result was not retained")
	}
	afterBytes, _ := json.Marshal(after.Plan)
	if !bytes.Equal(peerBytes, afterBytes) {
		t.Errorf("plan changed across the race:\n  peer  %s\n  after %s", peerBytes, afterBytes)
	}
	if peer.EstimatedCost != after.EstimatedCost {
		t.Errorf("cost changed across the race: %v vs %v", peer.EstimatedCost, after.EstimatedCost)
	}
}

// TestCancelledSoloRequestLeavesCacheUsable covers the no-batcher path: the
// handler's context cancels while the singleflight compute is held; the
// computation still completes in its own goroutine and later requests are
// served from a healthy cache.
func TestCancelledSoloRequestLeavesCacheUsable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	unregister := chaos.Register(chaos.NewSchedule(1,
		chaos.Rule{Point: chaos.CacheFlight, Prob: 1, Effect: chaos.Delay, Delay: 60 * time.Millisecond, Limit: 1},
	))
	defer unregister()

	body, _ := json.Marshal(PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := ts.Client().Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Skip("request completed before the client deadline; race not exercised")
	}

	unregister()
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	out := decodeAs[PlanResponse](t, resp, http.StatusOK)
	if out.Plan == nil {
		t.Fatal("no plan after cancelled solo request")
	}
}
