package server

import (
	"fmt"
	"net/http"
	"sort"
	"testing"
)

// edgeCatalog is a small directed graph: 1→2, 2→3, 3→1, 2→1.
const edgeCatalog = `relation e (src,dst)
1,2
2,3
3,1
2,1
end
`

// rowSet renders rows order-independently for comparison.
func rowSet(rows [][]int32) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return fmt.Sprint(out)
}

// TestServerSelfJoinEndToEnd: PUT a catalog, plan and execute an aliased
// self-join over HTTP, and verify that an alias+variable-renamed variant of
// the same query is a cache hit.
func TestServerSelfJoinEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", edgeCatalog)

	// Two-step path e1;e2: all (X,Z) with X→Y→Z.
	path := PlanRequest{Tenant: "acme", Query: "ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z).", K: 2}
	plan := decodeAs[PlanResponse](t, postJSON(t, ts, "/v1/plan", path), http.StatusOK)
	if plan.CacheHit {
		t.Fatal("first self-join plan reported a cache hit")
	}
	if plan.Plan == nil || plan.Width < 1 {
		t.Fatalf("degenerate plan response: %+v", plan)
	}

	exec := decodeAs[ExecuteResponse](t, postJSON(t, ts, "/v1/execute",
		ExecuteRequest{Tenant: "acme", Query: path.Query, K: 2}), http.StatusOK)
	if !exec.CacheHit {
		t.Error("execute after plan of the same text should hit the plan cache")
	}
	want := rowSet([][]int32{{1, 3}, {1, 1}, {2, 1}, {2, 2}, {3, 2}})
	if got := rowSet(exec.Rows); got != want || exec.RowCount != 5 {
		t.Fatalf("path rows = %s (count %d), want %s", got, exec.RowCount, want)
	}

	// Alias+variable-renamed variant: same structure, fresh names → hit.
	renamed := PlanRequest{Tenant: "acme", Query: "ans(P,R) :- e AS hop2(Q,R), e AS hop1(P,Q).", K: 2}
	rplan := decodeAs[PlanResponse](t, postJSON(t, ts, "/v1/plan", renamed), http.StatusOK)
	if !rplan.CacheHit {
		t.Fatal("renamed self-join variant missed the plan cache")
	}
	if rplan.EstimatedCost != plan.EstimatedCost {
		t.Fatalf("renamed cost %v != original %v", rplan.EstimatedCost, plan.EstimatedCost)
	}
	rexec := decodeAs[ExecuteResponse](t, postJSON(t, ts, "/v1/execute",
		ExecuteRequest{Tenant: "acme", Query: renamed.Query, K: 2}), http.StatusOK)
	if got := rowSet(rexec.Rows); got != want {
		t.Fatalf("renamed variant rows = %s, want %s", got, want)
	}
}

// TestServerSelfJoinTriangle: the acceptance-criteria triangle — a cyclic
// 3-alias self-join — parses, plans at k=2, and executes over HTTP; its
// renamed variant is a cache hit.
func TestServerSelfJoinTriangle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", edgeCatalog)

	tri := ExecuteRequest{Tenant: "acme", Query: "ans(X,Y,Z) :- e AS e1(X,Y), e AS e2(Y,Z), e AS e3(Z,X).", K: 2}
	exec := decodeAs[ExecuteResponse](t, postJSON(t, ts, "/v1/execute", tri), http.StatusOK)
	if exec.CacheHit {
		t.Fatal("cold triangle reported a cache hit")
	}
	// The only directed triangle is 1→2→3→1, seen from its three rotations.
	want := rowSet([][]int32{{1, 2, 3}, {2, 3, 1}, {3, 1, 2}})
	if got := rowSet(exec.Rows); got != want || exec.RowCount != 3 {
		t.Fatalf("triangle rows = %s (count %d), want %s", got, exec.RowCount, want)
	}

	// Boolean form, bare duplicates: the wire accepts auto-aliased input.
	boolReq := ExecuteRequest{Tenant: "acme", Query: "ans :- e(X,Y), e(Y,Z), e(Z,X).", K: 2}
	bexec := decodeAs[ExecuteResponse](t, postJSON(t, ts, "/v1/execute", boolReq), http.StatusOK)
	if bexec.Boolean == nil || !*bexec.Boolean {
		t.Fatalf("boolean triangle = %+v, want true", bexec.Boolean)
	}

	// Renamed rotation of the output triangle: plan-cache hit.
	renamed := PlanRequest{Tenant: "acme", Query: "ans(U,V,W) :- e AS c(W,U), e AS a(U,V), e AS b(V,W).", K: 2}
	rplan := decodeAs[PlanResponse](t, postJSON(t, ts, "/v1/plan", renamed), http.StatusOK)
	if !rplan.CacheHit {
		t.Fatal("renamed triangle variant missed the plan cache")
	}
}
