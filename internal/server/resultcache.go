package server

import (
	"container/list"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/db"
	"repro/internal/engine"
)

// The result cache closes the loop the plan cache opens: a plan-cache hit
// still pays evaluation, but two executes whose (canonical structure, k,
// statistics) plan key AND catalog version coincide must produce the same
// answer, so the answer itself is cacheable. The key embeds the tenant and
// the catalog version, which makes invalidation structural: a catalog PUT
// bumps the version, new keys stop matching, and the PUT additionally
// purges the tenant's stale entries eagerly so the byte budget is never
// held by unreachable answers.
//
// Rows are stored in head-variable positional order. The plan key embeds
// the canonical head (the "|out:" section of the canonical query key), so
// two queries sharing a key have positionally equivalent heads modulo
// renaming — cached rows replay verbatim for a renamed variant; only the
// column names are re-labeled from the requesting query.

// resultKey builds the cache key. The probe key is tenant-agnostic (it
// canonicalizes structure + statistics); results depend on the data, so
// tenant and catalog version join the key here.
func resultKey(tenant string, version uint64, planKey string) string {
	return tenant + "\x1f" + strconv.FormatUint(version, 10) + "\x1f" + planKey
}

// resultEntry is one cached answer: rows in head positional order, or the
// Boolean verdict. estimatedCost rides along so a result hit can answer
// without re-planning.
type resultEntry struct {
	key           string
	rows          [][]db.Value
	boolean       *bool
	estimatedCost float64
	size          int64
}

func entrySize(rows [][]db.Value, key string) int64 {
	size := int64(len(key)) + 64
	for _, r := range rows {
		size += 24 + 4*int64(len(r))
	}
	return size
}

// resultCache is a byte-budget LRU over complete query answers. Safe for
// concurrent use.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *resultEntry
	byKey  map[string]*list.Element

	hits, misses, inserts, evictions, tooLarge uint64
}

func newResultCache(budget int64) *resultCache {
	if budget <= 0 {
		return nil
	}
	return &resultCache{budget: budget, lru: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached entry, refreshing recency. Nil receiver = miss.
func (c *resultCache) get(key string) (*resultEntry, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*resultEntry), true
}

// put inserts a complete answer, evicting from the cold end to fit the
// budget. Answers above a quarter of the budget are not cached (one giant
// answer must not wipe the working set).
func (c *resultCache) put(key string, rows [][]db.Value, boolean *bool, estimatedCost float64) {
	if c == nil || key == "" {
		return
	}
	size := entrySize(rows, key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget/4 {
		c.tooLarge++
		return
	}
	if el, ok := c.byKey[key]; ok {
		// Same key ⇒ same answer; refresh recency only.
		c.lru.MoveToFront(el)
		return
	}
	for c.used+size > c.budget {
		cold := c.lru.Back()
		if cold == nil {
			break
		}
		c.removeLocked(cold)
		c.evictions++
	}
	e := &resultEntry{key: key, rows: rows, boolean: boolean, estimatedCost: estimatedCost, size: size}
	c.byKey[key] = c.lru.PushFront(e)
	c.used += size
	c.inserts++
}

func (c *resultCache) removeLocked(el *list.Element) {
	e := c.lru.Remove(el).(*resultEntry)
	delete(c.byKey, e.key)
	c.used -= e.size
}

// purgeTenant drops every entry of the tenant (all versions). Called on
// catalog PUT: the version bump already prevents stale serves; the purge
// just returns the bytes immediately.
func (c *resultCache) purgeTenant(tenant string) {
	if c == nil {
		return
	}
	prefix := tenant + "\x1f"
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if strings.HasPrefix(el.Value.(*resultEntry).key, prefix) {
			c.removeLocked(el)
		}
		el = next
	}
}

// applyDelta is the adaptive-invalidation pass after a catalog delta moved
// the tenant from oldVer to newVer. An answer depends on the referenced
// relations' data, never on statistics, so per entry of the tenant:
//
//   - plan references a data-changed relation → dropped (answer invalid);
//   - plan references only stats-changed relations (or none) → carried to
//     newVer, the plan-key component restatted against cat so the next
//     probe's key matches;
//   - entries at versions other than oldVer → dropped (already
//     unreachable; a carried key must never collide with them).
//
// A carried entry that would collide with one already at the target key
// loses — the resident entry was produced at exactly those coordinates.
func (c *resultCache) applyDelta(tenant string, oldVer, newVer uint64, cat *db.Catalog, dataChanged, statsChanged []string) {
	if c == nil {
		return
	}
	dataSet := make(map[string]bool, len(dataChanged))
	for _, r := range dataChanged {
		dataSet[r] = true
	}
	statsSet := make(map[string]bool, len(statsChanged))
	for _, r := range statsChanged {
		statsSet[r] = true
	}
	tenantPrefix := tenant + "\x1f"
	oldPrefix := resultKey(tenant, oldVer, "")
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*resultEntry)
		if !strings.HasPrefix(e.key, tenantPrefix) {
			el = next
			continue
		}
		if newKey, ok := c.deltaTarget(e.key, oldPrefix, tenant, newVer, cat, dataSet, statsSet); ok {
			delete(c.byKey, e.key)
			c.used -= e.size
			e.key = newKey
			e.size = entrySize(e.rows, newKey)
			c.byKey[newKey] = el
			c.used += e.size
		} else {
			c.removeLocked(el)
		}
		el = next
	}
	// Restatted keys can be longer than the originals; shed from the cold
	// end if the carry pushed past the budget.
	for c.used > c.budget {
		cold := c.lru.Back()
		if cold == nil {
			break
		}
		c.removeLocked(cold)
		c.evictions++
	}
}

// deltaTarget decides one entry's fate under applyDelta: the key it should
// carry to, or ok=false to drop it.
func (c *resultCache) deltaTarget(key, oldPrefix, tenant string, newVer uint64, cat *db.Catalog, dataSet, statsSet map[string]bool) (string, bool) {
	planKey, atOldVer := strings.CutPrefix(key, oldPrefix)
	if !atOldVer {
		return "", false
	}
	rels, err := cache.PlanKeyRelations(planKey)
	if err != nil {
		return "", false
	}
	touchesData, touchesStats := false, false
	for _, r := range rels {
		touchesData = touchesData || dataSet[r]
		touchesStats = touchesStats || statsSet[r]
	}
	if touchesData {
		return "", false
	}
	if touchesStats {
		if planKey, err = cache.RestatPlanKey(planKey, cat); err != nil {
			return "", false
		}
	}
	newKey := resultKey(tenant, newVer, planKey)
	if _, exists := c.byKey[newKey]; exists {
		return "", false
	}
	return newKey, true
}

func (c *resultCache) stats() *ResultCacheStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &ResultCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Inserts:   c.inserts,
		Evictions: c.evictions,
		TooLarge:  c.tooLarge,
		Entries:   c.lru.Len(),
		Bytes:     c.used,
	}
}

// writeMetrics renders the result-cache counters in exposition format.
func (c *resultCache) writeMetrics(w io.Writer) {
	if c == nil {
		return
	}
	st := c.stats()
	fmt.Fprintln(w, "# HELP planserver_result_cache_events_total Result cache events by kind.")
	fmt.Fprintln(w, "# TYPE planserver_result_cache_events_total counter")
	for _, kv := range []struct {
		kind string
		v    uint64
	}{
		{"hit", st.Hits}, {"miss", st.Misses}, {"insert", st.Inserts},
		{"eviction", st.Evictions}, {"too_large", st.TooLarge},
	} {
		fmt.Fprintf(w, "planserver_result_cache_events_total{kind=%q} %d\n", kv.kind, kv.v)
	}
	fmt.Fprintln(w, "# HELP planserver_result_cache_bytes Bytes held by cached query answers.")
	fmt.Fprintln(w, "# TYPE planserver_result_cache_bytes gauge")
	fmt.Fprintf(w, "planserver_result_cache_bytes %d\n", st.Bytes)
	fmt.Fprintln(w, "# HELP planserver_result_cache_entries Cached query answers resident.")
	fmt.Fprintln(w, "# TYPE planserver_result_cache_entries gauge")
	fmt.Fprintf(w, "planserver_result_cache_entries %d\n", st.Entries)
}

// colStoreCache keeps one engine.ColStore per (tenant, catalog version) so
// consecutive executes against a catalog snapshot share columnar
// conversions and hash indexes — across requests, not just across aliases
// within one query. A small LRU bounds how many snapshots stay columnar.
type colStoreCache struct {
	mu    sync.Mutex
	cap   int
	order []string // most recent last
	byKey map[string]*engine.ColStore
}

func newColStoreCache(capacity int) *colStoreCache {
	if capacity <= 0 {
		capacity = 8
	}
	return &colStoreCache{cap: capacity, byKey: map[string]*engine.ColStore{}}
}

// storeFor returns the shared ColStore of the tenant's catalog snapshot,
// creating it on first use.
func (c *colStoreCache) storeFor(tenant string, version uint64, cat *db.Catalog) *engine.ColStore {
	key := tenant + "\x1f" + strconv.FormatUint(version, 10)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cs, ok := c.byKey[key]; ok {
		for i, k := range c.order {
			if k == key {
				c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
				break
			}
		}
		return cs
	}
	cs := engine.NewColStore(cat)
	c.byKey[key] = cs
	c.order = append(c.order, key)
	if len(c.order) > c.cap {
		delete(c.byKey, c.order[0])
		c.order = c.order[1:]
	}
	return cs
}

// advance moves the tenant's columnar state to a new catalog version after
// a delta: the most recent resident store is cloned for the new catalog —
// carrying columns, rowid maps, and hash indexes of relations the delta
// left alone — and every older store of the tenant is dropped. Dropping is
// load-bearing, not just tidy: deltas arrive far more often than wholesale
// PUTs, and without it a tenant patching in a loop would hold cap stores of
// its own dead versions and evict every other tenant's warm snapshot.
func (c *colStoreCache) advance(tenant string, newVer uint64, cat *db.Catalog, invalidate []string) {
	prefix := tenant + "\x1f"
	newKey := prefix + strconv.FormatUint(newVer, 10)
	c.mu.Lock()
	defer c.mu.Unlock()
	var carried *engine.ColStore
	for i := len(c.order) - 1; i >= 0 && carried == nil; i-- {
		if strings.HasPrefix(c.order[i], prefix) {
			carried = c.byKey[c.order[i]].CloneFor(cat, invalidate)
		}
	}
	kept := c.order[:0]
	for _, k := range c.order {
		if strings.HasPrefix(k, prefix) {
			delete(c.byKey, k)
		} else {
			kept = append(kept, k)
		}
	}
	c.order = kept
	if carried == nil {
		return // tenant had no columnar state; first execute builds fresh
	}
	c.byKey[newKey] = carried
	c.order = append(c.order, newKey)
	if len(c.order) > c.cap {
		delete(c.byKey, c.order[0])
		c.order = c.order[1:]
	}
}

// tenantVersions reports which catalog versions of the tenant currently
// hold a resident store, oldest first. Test hook for the delta lifecycle's
// no-stranded-versions invariant.
func (c *colStoreCache) tenantVersions(tenant string) []uint64 {
	prefix := tenant + "\x1f"
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []uint64
	for _, k := range c.order {
		if v, ok := strings.CutPrefix(k, prefix); ok {
			n, err := strconv.ParseUint(v, 10, 64)
			if err == nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// purgeTenant drops the tenant's stores (a catalog PUT supersedes them).
func (c *colStoreCache) purgeTenant(tenant string) {
	prefix := tenant + "\x1f"
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.order[:0]
	for _, k := range c.order {
		if strings.HasPrefix(k, prefix) {
			delete(c.byKey, k)
		} else {
			kept = append(kept, k)
		}
	}
	c.order = kept
}
