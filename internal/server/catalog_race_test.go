package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// Race hammer for the catalog registry: concurrent PUT /v1/catalogs/{tenant}
// against in-flight /v1/plan and /v1/execute on the same tenant. Every PUT
// re-uploads the same catalog text, so whatever version a plan snapshots,
// the statistics are identical and the plan bytes must never change; PUT
// acknowledgements must carry strictly increasing versions. Run under -race
// this also proves the registry's reader/writer paths are clean. An
// injected delay inside the PUT handler widens the analyze→publish window
// so readers overlap writers as much as possible.
func TestCatalogPutRacesInFlightPlans(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{name: "direct", cfg: Config{}},
		{name: "batched", cfg: Config{BatchWindow: time.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.cfg)
			uploadCatalog(t, ts, "acme", triangleCatalog)

			unregister := chaos.Register(chaos.NewSchedule(7,
				chaos.Rule{Point: chaos.ServerCatalogPut, Prob: 0.5, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
			))
			defer unregister()

			// Reference plan before the churn starts.
			resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
			ref := decodeAs[PlanResponse](t, resp, http.StatusOK)
			refBytes, _ := json.Marshal(ref.Plan)

			const (
				writers = 3
				readers = 5
				ops     = 15
			)
			var wg sync.WaitGroup
			var lastVersion atomic.Uint64
			lastVersion.Store(ref.CatalogVersion)
			errc := make(chan string, writers*ops+readers*ops)

			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					prev := uint64(0)
					for i := 0; i < ops; i++ {
						resp := doPut(t, ts, "/v1/catalogs/acme", triangleCatalog)
						if resp.StatusCode != http.StatusOK {
							body, _ := io.ReadAll(resp.Body)
							resp.Body.Close()
							errc <- "PUT status " + resp.Status + ": " + string(body)
							return
						}
						var ack CatalogResponse
						err := json.NewDecoder(resp.Body).Decode(&ack)
						resp.Body.Close()
						if err != nil {
							errc <- "PUT decode: " + err.Error()
							return
						}
						// Versions are strictly increasing as observed by any
						// single writer (global order is pinned by the registry's
						// own tests; acks interleave across writers here).
						if ack.Version <= prev {
							errc <- "catalog version not increasing for one writer"
							return
						}
						prev = ack.Version
						// Track a high-water mark for the final monotonicity check.
						for {
							cur := lastVersion.Load()
							if ack.Version <= cur || lastVersion.CompareAndSwap(cur, ack.Version) {
								break
							}
						}
					}
				}()
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						if i%3 == 2 {
							resp := postJSON(t, ts, "/v1/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 3})
							out := decodeAs[ExecuteResponse](t, resp, http.StatusOK)
							if out.RowCount != 2 {
								errc <- "execute row count changed under churn"
							}
							continue
						}
						resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
						out := decodeAs[PlanResponse](t, resp, http.StatusOK)
						got, _ := json.Marshal(out.Plan)
						if !bytes.Equal(got, refBytes) {
							errc <- "plan bytes changed under catalog churn (identical stats)"
						}
						if out.CatalogVersion < ref.CatalogVersion {
							errc <- "plan served against a version older than the pre-churn catalog"
						}
					}
				}(r)
			}
			wg.Wait()
			close(errc)
			for msg := range errc {
				t.Error(msg)
			}

			// Post-churn: the tenant still plans, and the final ack version is
			// the registry's current version.
			resp = postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
			final := decodeAs[PlanResponse](t, resp, http.StatusOK)
			if final.CatalogVersion != lastVersion.Load() {
				t.Errorf("final catalog version %d, want high-water %d", final.CatalogVersion, lastVersion.Load())
			}
			finalBytes, _ := json.Marshal(final.Plan)
			if !bytes.Equal(finalBytes, refBytes) {
				t.Error("plan bytes differ after churn settled")
			}
		})
	}
}
