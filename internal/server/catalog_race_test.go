package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// Race hammer for the catalog registry: concurrent PUT /v1/catalogs/{tenant}
// against in-flight /v1/plan and /v1/execute on the same tenant. Every PUT
// re-uploads the same catalog text, so whatever version a plan snapshots,
// the statistics are identical and the plan bytes must never change; PUT
// acknowledgements must carry strictly increasing versions. Run under -race
// this also proves the registry's reader/writer paths are clean. An
// injected delay inside the PUT handler widens the analyze→publish window
// so readers overlap writers as much as possible.
func TestCatalogPutRacesInFlightPlans(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{name: "direct", cfg: Config{}},
		{name: "batched", cfg: Config{BatchWindow: time.Millisecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.cfg)
			uploadCatalog(t, ts, "acme", triangleCatalog)

			unregister := chaos.Register(chaos.NewSchedule(7,
				chaos.Rule{Point: chaos.ServerCatalogPut, Prob: 0.5, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
			))
			defer unregister()

			// Reference plan before the churn starts.
			resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
			ref := decodeAs[PlanResponse](t, resp, http.StatusOK)
			refBytes, _ := json.Marshal(ref.Plan)

			const (
				writers = 3
				readers = 5
				ops     = 15
			)
			var wg sync.WaitGroup
			var lastVersion atomic.Uint64
			lastVersion.Store(ref.CatalogVersion)
			errc := make(chan string, writers*ops+readers*ops)

			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					prev := uint64(0)
					for i := 0; i < ops; i++ {
						resp := doPut(t, ts, "/v1/catalogs/acme", triangleCatalog)
						if resp.StatusCode != http.StatusOK {
							body, _ := io.ReadAll(resp.Body)
							resp.Body.Close()
							errc <- "PUT status " + resp.Status + ": " + string(body)
							return
						}
						var ack CatalogResponse
						err := json.NewDecoder(resp.Body).Decode(&ack)
						resp.Body.Close()
						if err != nil {
							errc <- "PUT decode: " + err.Error()
							return
						}
						// Versions are strictly increasing as observed by any
						// single writer (global order is pinned by the registry's
						// own tests; acks interleave across writers here).
						if ack.Version <= prev {
							errc <- "catalog version not increasing for one writer"
							return
						}
						prev = ack.Version
						// Track a high-water mark for the final monotonicity check.
						for {
							cur := lastVersion.Load()
							if ack.Version <= cur || lastVersion.CompareAndSwap(cur, ack.Version) {
								break
							}
						}
					}
				}()
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						if i%3 == 2 {
							resp := postJSON(t, ts, "/v1/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 3})
							out := decodeAs[ExecuteResponse](t, resp, http.StatusOK)
							if out.RowCount != 2 {
								errc <- "execute row count changed under churn"
							}
							continue
						}
						resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
						out := decodeAs[PlanResponse](t, resp, http.StatusOK)
						got, _ := json.Marshal(out.Plan)
						if !bytes.Equal(got, refBytes) {
							errc <- "plan bytes changed under catalog churn (identical stats)"
						}
						if out.CatalogVersion < ref.CatalogVersion {
							errc <- "plan served against a version older than the pre-churn catalog"
						}
					}
				}(r)
			}
			wg.Wait()
			close(errc)
			for msg := range errc {
				t.Error(msg)
			}

			// Post-churn: the tenant still plans, and the final ack version is
			// the registry's current version.
			resp = postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
			final := decodeAs[PlanResponse](t, resp, http.StatusOK)
			if final.CatalogVersion != lastVersion.Load() {
				t.Errorf("final catalog version %d, want high-water %d", final.CatalogVersion, lastVersion.Load())
			}
			finalBytes, _ := json.Marshal(final.Plan)
			if !bytes.Equal(finalBytes, refBytes) {
				t.Error("plan bytes differ after churn settled")
			}
		})
	}
}

// Two complete triangle datasets with disjoint answer sets. Every delta
// below replaces all three relations in one atomic PATCH, so every
// published catalog version answers the triangle query with exactly one of
// the two sets — a stream that ever mixes state from two versions would
// produce a partial or empty answer, which the readers reject.
const (
	deltaTriangleA = `relation r (a,b)
1,2
2,3
end
relation s (b,c)
2,3
3,4
end
relation t (c,a)
3,1
4,2
end
`
	deltaTriangleB = `relation r (a,b)
5,6
6,7
end
relation s (b,c)
6,7
7,8
end
relation t (c,a)
7,5
8,6
end
`
)

// TestCatalogDeltaRacesInFlightStreams hammers PATCH /v1/catalogs against
// in-flight /v2/execute streams and /v1/plan requests on the same tenant.
// Writers flip the whole triangle between dataset A and dataset B (each
// flip one atomic delta); readers assert every stream is internally
// consistent — its rows are exactly answer set A or exactly answer set B,
// its trailer is a clean "ok", and its catalog version never regresses for
// that reader. An injected delay inside the PATCH handler widens the
// apply→publish window. Run under -race this also exercises the
// delta-invalidation paths (result-cache carry, plan re-key skip, column
// store advance) against concurrent readers.
func TestCatalogDeltaRacesInFlightStreams(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: time.Millisecond})
	uploadCatalog(t, ts, "acme", deltaTriangleA)

	unregister := chaos.Register(chaos.NewSchedule(11,
		chaos.Rule{Point: chaos.ServerCatalogPut, Prob: 0.5, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
	))
	defer unregister()

	answerA := [][]int32{{1, 2}, {2, 3}}
	answerB := [][]int32{{5, 6}, {6, 7}}

	const (
		writers = 2
		readers = 4
		ops     = 12
	)
	var wg sync.WaitGroup
	errc := make(chan string, (writers+readers)*ops)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				delta := deltaTriangleA
				if (w+i)%2 == 0 {
					delta = deltaTriangleB
				}
				resp := doPatchRaw(t, ts.URL+"/v1/catalogs/acme", delta)
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var ack CatalogDeltaResponse
					if err := json.Unmarshal(body, &ack); err != nil {
						errc <- "PATCH decode: " + err.Error()
						return
					}
					if len(ack.DataChanged) != 3 {
						errc <- "PATCH did not report all three relations as data-changed"
					}
				case http.StatusConflict:
					// An unpinned delta can exhaust its CAS retries under
					// contention; that is a legal outcome, but it must carry
					// the shared envelope.
					var env ErrorResponse
					if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "conflict" {
						errc <- "PATCH 409 without a conflict envelope: " + string(body)
					}
				default:
					errc <- "PATCH status " + resp.Status + ": " + string(body)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastVersion := uint64(0)
			for i := 0; i < ops; i++ {
				if i%3 == 2 {
					resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
					out := decodeAs[PlanResponse](t, resp, http.StatusOK)
					if out.Plan == nil {
						errc <- "plan request returned no plan under delta churn"
					}
					continue
				}
				st := readStream(t, postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 3}))
				if st.trailer.Status != "ok" {
					errc <- "stream trailer status " + st.trailer.Status + " under delta churn"
					continue
				}
				sortRows(st.rows)
				if !reflect.DeepEqual(st.rows, answerA) && !reflect.DeepEqual(st.rows, answerB) {
					errc <- "stream mixed catalog versions: rows neither answer set A nor B"
				}
				if st.header.CatalogVersion < lastVersion {
					errc <- "stream catalog version regressed for one reader"
				}
				lastVersion = st.header.CatalogVersion
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}

	// Churn settled: one more delta pinned to the current version must
	// apply cleanly, and the post-delta answer must be exactly its dataset.
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 3})
	cur := decodeAs[PlanResponse](t, resp, http.StatusOK)
	ack := patchCatalog(t, ts, "acme", "", deltaTriangleB)
	if ack.Version <= cur.CatalogVersion {
		t.Fatalf("settling delta version %d did not advance past %d", ack.Version, cur.CatalogVersion)
	}
	final := readStream(t, postJSON(t, ts, "/v2/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 3}))
	sortRows(final.rows)
	if !reflect.DeepEqual(final.rows, [][]int32{{5, 6}, {6, 7}}) {
		t.Fatalf("post-churn rows = %v, want dataset B", final.rows)
	}
	if final.header.CatalogVersion != ack.Version {
		t.Fatalf("post-churn stream at version %d, want %d", final.header.CatalogVersion, ack.Version)
	}
}
