package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
)

const triangleCatalog = `relation r (a,b)
1,2
2,3
end
relation s (b,c)
2,3
3,4
end
relation t (c,a)
3,1
4,2
end
`

const triangleQuery = "ans(X,Y) :- r(X,Y), s(Y,Z), t(Z,X)."

// newTestServer returns a started server plus its base URL; cleanup is
// registered on t.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func uploadCatalog(t *testing.T, ts *httptest.Server, tenant, text string) CatalogResponse {
	t.Helper()
	resp := doPut(t, ts, "/v1/catalogs/"+tenant, text)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("catalog upload: status %d: %s", resp.StatusCode, body)
	}
	var out CatalogResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func doPut(t *testing.T, ts *httptest.Server, path, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func postJSON(t *testing.T, ts *httptest.Server, path string, payload any) *http.Response {
	t.Helper()
	b, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeAs[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantStatus, body)
	}
	var out T
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode %T from %s: %v", out, body, err)
	}
	return out
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	return decodeAs[StatsResponse](t, resp, http.StatusOK)
}

func TestCatalogRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	up := uploadCatalog(t, ts, "acme", triangleCatalog)
	if up.Relations != 3 || up.Tuples != 6 || up.Version != 1 {
		t.Fatalf("upload ack = %+v", up)
	}
	if up2 := uploadCatalog(t, ts, "acme", triangleCatalog); up2.Version != 2 {
		t.Fatalf("re-upload version = %d, want 2", up2.Version)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/catalogs/acme")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog download: status %d", resp.StatusCode)
	}
	cat, err := db.ReadCatalog(resp.Body)
	if err != nil {
		t.Fatalf("downloaded catalog does not re-parse: %v", err)
	}
	if len(cat.Names()) != 3 || cat.Get("r").Card() != 2 {
		t.Fatalf("round-tripped catalog = %v", cat.Names())
	}

	listResp, err := ts.Client().Get(ts.URL + "/v1/catalogs")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeAs[CatalogListResponse](t, listResp, http.StatusOK)
	if len(list.Tenants) != 1 || list.Tenants[0] != "acme" {
		t.Fatalf("tenant list = %v", list.Tenants)
	}

	missing, err := ts.Client().Get(ts.URL + "/v1/catalogs/ghost")
	if err != nil {
		t.Fatal(err)
	}
	decodeAs[ErrorResponse](t, missing, http.StatusNotFound)
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	first := decodeAs[PlanResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 2}),
		http.StatusOK)
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	if first.Width != 2 || first.EstimatedCost <= 0 || first.Plan == nil || first.CatalogVersion != 1 {
		t.Fatalf("first plan = %+v", first)
	}
	if n := first.Plan.CountNodes(); n < 1 {
		t.Fatalf("plan tree has %d nodes", n)
	}

	second := decodeAs[PlanResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 2}),
		http.StatusOK)
	if !second.CacheHit {
		t.Fatal("identical second request missed the cache")
	}

	renamed := decodeAs[PlanResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{
			Tenant: "acme",
			Query:  "ans(P,Q) :- r(P,Q), s(Q,R), t(R,P).",
			K:      2,
		}),
		http.StatusOK)
	if !renamed.CacheHit {
		t.Fatal("variable-renamed request missed the canonical cache")
	}
	if renamed.EstimatedCost != first.EstimatedCost {
		t.Fatalf("renamed cost %v != original %v", renamed.EstimatedCost, first.EstimatedCost)
	}

	// Default k applies when omitted.
	dflt := decodeAs[PlanResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery}),
		http.StatusOK)
	if dflt.K != 3 {
		t.Fatalf("default k = %d, want 3", dflt.K)
	}
}

func TestPlanErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	// Unparseable query.
	decodeAs[ErrorResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: "not a query", K: 2}),
		http.StatusBadRequest)
	// Unknown tenant.
	decodeAs[ErrorResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "ghost", Query: triangleQuery, K: 2}),
		http.StatusNotFound)
	// k out of range.
	decodeAs[ErrorResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 99}),
		http.StatusBadRequest)
	// Query over relations absent from the catalog.
	decodeAs[ErrorResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: "ans(X) :- nosuch(X,Y).", K: 2}),
		http.StatusBadRequest)

	// Infeasible width: 422, and the second attempt is a negative-cache hit.
	for round := 0; round < 2; round++ {
		decodeAs[ErrorResponse](t,
			postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 1}),
			http.StatusUnprocessableEntity)
	}
	st := getStats(t, ts)
	if st.Planner.Infeasible.Computations != 1 || st.Planner.Infeasible.Hits != 1 {
		t.Fatalf("negative cache counters = %+v, want 1 computation + 1 hit", st.Planner.Infeasible)
	}
}

func TestExecuteEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)

	out := decodeAs[ExecuteResponse](t,
		postJSON(t, ts, "/v1/execute", ExecuteRequest{Tenant: "acme", Query: triangleQuery, K: 2}),
		http.StatusOK)
	if out.Boolean != nil {
		t.Fatal("non-Boolean query answered with a Boolean")
	}
	if len(out.Columns) != 2 || out.Columns[0] != "X" || out.Columns[1] != "Y" {
		t.Fatalf("columns = %v", out.Columns)
	}
	// The triangle closes for (1,2) via Z=3 and (2,3) via Z=4.
	want := map[[2]int32]bool{{1, 2}: true, {2, 3}: true}
	if out.RowCount != 2 || len(out.Rows) != 2 {
		t.Fatalf("rows = %v", out.Rows)
	}
	for _, row := range out.Rows {
		if !want[[2]int32{row[0], row[1]}] {
			t.Fatalf("unexpected row %v", row)
		}
	}
	if out.Metrics.Joins == 0 && out.Metrics.Semijoins == 0 {
		t.Fatalf("metrics = %+v, want some operator counts", out.Metrics)
	}

	boolOut := decodeAs[ExecuteResponse](t,
		postJSON(t, ts, "/v1/execute", ExecuteRequest{
			Tenant: "acme",
			Query:  "ans :- r(X,Y), s(Y,Z), t(Z,X).",
			K:      2,
		}),
		http.StatusOK)
	if boolOut.Boolean == nil || !*boolOut.Boolean {
		t.Fatalf("Boolean triangle answer = %v, want true", boolOut.Boolean)
	}
	if len(boolOut.Rows) != 0 {
		t.Fatal("Boolean query leaked rows")
	}
}

func TestDecomposeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := DecomposeRequest{Hypergraph: "e1(A,B)\ne2(B,C)\ne3(C,A)\n", K: 2}
	first := decodeAs[DecomposeResponse](t, postJSON(t, ts, "/v1/decompose", req), http.StatusOK)
	if first.Width < 1 || first.Width > 2 || first.Decomposition == nil {
		t.Fatalf("decomposition = %+v", first)
	}
	second := decodeAs[DecomposeResponse](t, postJSON(t, ts, "/v1/decompose", req), http.StatusOK)
	if !second.CacheHit {
		t.Fatal("second decomposition missed the cache")
	}
	// Infeasible width.
	decodeAs[ErrorResponse](t,
		postJSON(t, ts, "/v1/decompose", DecomposeRequest{Hypergraph: "e1(A,B)\ne2(B,C)\ne3(C,A)\n", K: 1}),
		http.StatusUnprocessableEntity)
}

// The acceptance criterion: structurally identical queries from different
// tenants produce exactly one planner computation in shared mode, verified
// through /v1/stats.
func TestCrossTenantCoalescing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "alice", triangleCatalog)
	uploadCatalog(t, ts, "bob", triangleCatalog)

	first := decodeAs[PlanResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "alice", Query: triangleQuery, K: 2}),
		http.StatusOK)
	if first.CacheHit {
		t.Fatal("alice's cold request reported a hit")
	}
	second := decodeAs[PlanResponse](t,
		postJSON(t, ts, "/v1/plan", PlanRequest{
			Tenant: "bob",
			Query:  "ans(U,V) :- r(U,V), s(V,W), t(W,U).",
			K:      2,
		}),
		http.StatusOK)
	if !second.CacheHit {
		t.Fatal("bob's structurally identical request missed the cache")
	}
	st := getStats(t, ts)
	if st.Planner.Plans.Computations != 1 {
		t.Fatalf("plan computations = %d, want exactly 1", st.Planner.Plans.Computations)
	}
	if st.Planner.Plans.Hits < 1 {
		t.Fatalf("plan hits = %d, want ≥ 1", st.Planner.Plans.Hits)
	}
}

// N concurrent identical requests on a cold server must coalesce into one
// computation (singleflight below, batcher above — test both paths).
func TestConcurrentPlanCoalescing(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"singleflight", Config{}},
		{"batched", Config{BatchWindow: 2 * time.Millisecond}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			_, ts := newTestServer(t, mode.cfg)
			uploadCatalog(t, ts, "acme", triangleCatalog)
			const n = 16
			var wg sync.WaitGroup
			errs := make(chan error, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp := postJSON(t, ts, "/v1/plan",
						PlanRequest{Tenant: "acme", Query: triangleQuery, K: 2})
					defer resp.Body.Close()
					body, _ := io.ReadAll(resp.Body)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st := getStats(t, ts)
			if st.Planner.Plans.Computations != 1 {
				t.Fatalf("computations = %d for %d concurrent identical requests, want 1",
					st.Planner.Plans.Computations, n)
			}
		})
	}
}

// Tenants uploading catalogs while others plan and execute: correctness is
// "no race, no 5xx" (run under -race).
func TestConcurrentTenantsUploadAndPlan(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: time.Millisecond})
	tenants := []string{"a", "b", "c"}
	for _, tn := range tenants {
		uploadCatalog(t, ts, tn, triangleCatalog)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) { // uploader
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp := doPut(t, ts, "/v1/catalogs/"+tenants[g%len(tenants)], triangleCatalog)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("upload status %d", resp.StatusCode)
				}
			}
		}(g)
		go func(g int) { // planner/executor
			defer wg.Done()
			for i := 0; i < 10; i++ {
				path, payload := "/v1/plan", any(PlanRequest{
					Tenant: tenants[(g+i)%len(tenants)], Query: triangleQuery, K: 2,
				})
				if i%3 == 0 {
					path, payload = "/v1/execute", any(ExecuteRequest{
						Tenant: tenants[(g+i)%len(tenants)], Query: triangleQuery, K: 2,
					})
				}
				resp := postJSON(t, ts, path, payload)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s status %d", path, resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 2})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	st := getStats(t, ts)
	if st.Planner.Plans.Hits != 1 || st.Planner.Plans.Computations != 1 {
		t.Fatalf("planner stats = %+v", st.Planner.Plans)
	}
	if len(st.Catalogs) != 1 || st.Catalogs[0] != "acme" {
		t.Fatalf("catalogs = %v", st.Catalogs)
	}
	if st.UptimeSec <= 0 {
		t.Fatalf("uptime = %v", st.UptimeSec)
	}
	if st.PerTenant != nil {
		t.Fatal("shared mode must not report per-tenant stats")
	}
}

func TestStatsEndpointIsolated(t *testing.T) {
	_, ts := newTestServer(t, Config{IsolateTenants: true})
	uploadCatalog(t, ts, "alice", triangleCatalog)
	uploadCatalog(t, ts, "bob", triangleCatalog)
	for _, tn := range []string{"alice", "bob"} {
		resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: tn, Query: triangleQuery, K: 2})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	st := getStats(t, ts)
	if st.Planner.Plans.Computations != 2 {
		t.Fatalf("isolated aggregate computations = %d, want 2", st.Planner.Plans.Computations)
	}
	if len(st.PerTenant) != 2 || st.PerTenant["alice"].Plans.Computations != 1 {
		t.Fatalf("per-tenant stats = %+v", st.PerTenant)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan status %d, want 405", resp.StatusCode)
	}
}
