package server

import (
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/store"
)

// Wire types of the HTTP/JSON API. Field names are the contract; see the
// README's "Serving" section for curl examples.

// PlanRequest is the body of POST /v1/plan: a conjunctive query in datalog
// rule syntax planned at width bound k over the tenant's catalog.
type PlanRequest struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query"`
	K      int    `json:"k,omitempty"` // 0 = server default
}

// PlanResponse carries the serialized optimal plan. CacheHit reports
// whether the planner served the request without running a new search
// (plan-cache or negative-cache hit, joined singleflight, or a coalesced
// batch member).
type PlanResponse struct {
	Tenant         string           `json:"tenant"`
	K              int              `json:"k"`
	Width          int              `json:"width"`
	EstimatedCost  float64          `json:"estimatedCost"`
	CacheHit       bool             `json:"cacheHit"`
	CatalogVersion uint64           `json:"catalogVersion"`
	Node           string           `json:"node,omitempty"` // serving replica's cluster id
	Plan           *engine.PlanNode `json:"plan"`
}

// DecomposeRequest is the body of POST /v1/decompose: a hypergraph in the
// "name(V1,V2,...)"-per-line format, decomposed at width bound k.
type DecomposeRequest struct {
	Tenant     string `json:"tenant,omitempty"` // planner selection only; no catalog involved
	Hypergraph string `json:"hypergraph"`
	K          int    `json:"k,omitempty"`
}

// DecomposeResponse carries a width-≤k normal-form decomposition.
type DecomposeResponse struct {
	K             int              `json:"k"`
	Width         int              `json:"width"`
	CacheHit      bool             `json:"cacheHit"`
	Decomposition *engine.PlanNode `json:"decomposition"`
}

// ExecuteRequest is the body of POST /v1/execute: plan (through the cache)
// and evaluate a query against the tenant's catalog.
type ExecuteRequest struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query"`
	K      int    `json:"k,omitempty"`
}

// ExecuteMetrics mirrors engine.Metrics on the wire.
type ExecuteMetrics struct {
	Joins              int   `json:"joins"`
	Semijoins          int   `json:"semijoins"`
	IntermediateTuples int64 `json:"intermediateTuples"`
	Batches            int64 `json:"batches,omitempty"` // streaming engine row batches
}

// ExecuteResponse carries the query answer: rows for a non-Boolean query,
// Boolean for a Boolean one. This is the body of the deprecated buffered
// POST /v1/execute; POST /v2/execute streams the same answer as NDJSON
// frames (ExecStreamHeader / ExecStreamRows / ExecStreamTrailer).
type ExecuteResponse struct {
	Tenant        string         `json:"tenant"`
	K             int            `json:"k"`
	EstimatedCost float64        `json:"estimatedCost"`
	CacheHit      bool           `json:"cacheHit"`               // plan served from the plan cache
	ResultCached  bool           `json:"resultCached,omitempty"` // answer served from the result cache
	Node          string         `json:"node,omitempty"`         // serving replica's cluster id
	Columns       []string       `json:"columns,omitempty"`
	Rows          [][]int32      `json:"rows,omitempty"`
	RowCount      int            `json:"rowCount"`
	Boolean       *bool          `json:"boolean,omitempty"`
	Metrics       ExecuteMetrics `json:"metrics"`
}

// ExecStreamHeader is the first NDJSON frame of a POST /v2/execute
// response: everything known before the first row batch. IsBoolean
// distinguishes "Boolean query" (answer arrives in the trailer) from "zero
// columns".
type ExecStreamHeader struct {
	Frame          string   `json:"frame"` // "header"
	Tenant         string   `json:"tenant"`
	K              int      `json:"k"`
	EstimatedCost  float64  `json:"estimatedCost"`
	CacheHit       bool     `json:"cacheHit"`
	ResultCached   bool     `json:"resultCached,omitempty"`
	CatalogVersion uint64   `json:"catalogVersion"`
	Node           string   `json:"node,omitempty"`
	Columns        []string `json:"columns,omitempty"`
	IsBoolean      bool     `json:"isBoolean,omitempty"`
}

// ExecStreamRows is a row-chunk frame: at most the engine's batch size of
// answer rows, in column order of the header frame.
type ExecStreamRows struct {
	Frame string    `json:"frame"` // "rows"
	Rows  [][]int32 `json:"rows"`
}

// ExecStreamTrailer is the final NDJSON frame: terminal status, the row
// count actually streamed, the Boolean answer when applicable, evaluation
// metrics, and — status "error" — the error envelope. A response without a
// trailer (or with status "error") must never be treated as a complete
// answer, whatever rows preceded it.
type ExecStreamTrailer struct {
	Frame    string          `json:"frame"`  // "trailer"
	Status   string          `json:"status"` // "ok" | "error"
	RowCount int             `json:"rowCount"`
	Boolean  *bool           `json:"boolean,omitempty"`
	Metrics  *ExecuteMetrics `json:"metrics,omitempty"`
	Error    *ErrorObject    `json:"error,omitempty"`
}

// CatalogResponse acknowledges PUT /v1/catalogs/{tenant}.
type CatalogResponse struct {
	Tenant    string `json:"tenant"`
	Relations int    `json:"relations"`
	Tuples    int    `json:"tuples"`
	Version   uint64 `json:"version"`
}

// CatalogDeltaResponse acknowledges PATCH /v1/catalogs/{tenant}: the new
// version, the version the delta was applied against, which relations
// changed data vs. statistics only, and how many warm plan-cache entries
// were re-keyed in place rather than invalidated.
type CatalogDeltaResponse struct {
	Tenant       string   `json:"tenant"`
	BaseVersion  uint64   `json:"baseVersion"`
	Version      uint64   `json:"version"`
	DataChanged  []string `json:"dataChanged,omitempty"`
	StatsChanged []string `json:"statsChanged,omitempty"`
	PlansRekeyed int      `json:"plansRekeyed"`
}

// CatalogListResponse is GET /v1/catalogs.
type CatalogListResponse struct {
	Tenants []string `json:"tenants"`
}

// StatsResponse is GET /v1/stats: aggregate planner counters, per-tenant
// counters when tenants are isolated, server-level gauges, and — on a
// distributed replica — the cluster and store sections.
type StatsResponse struct {
	Planner   cache.Stats             `json:"planner"`
	PerTenant map[string]cache.Stats  `json:"perTenant,omitempty"`
	Catalogs  []string                `json:"catalogs"`
	InFlight  int64                   `json:"inFlight"`
	UptimeSec float64                 `json:"uptimeSec"`
	Admission *AdmissionStatsResponse `json:"admission,omitempty"`
	Results   *ResultCacheStats       `json:"results,omitempty"`
	Cluster   *ClusterStatsResponse   `json:"cluster,omitempty"`
	Store     *StoreStatsResponse     `json:"store,omitempty"`
}

// ResultCacheStats is the result-cache section of /v1/stats.
type ResultCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Inserts   uint64 `json:"inserts"`
	Evictions uint64 `json:"evictions"`
	TooLarge  uint64 `json:"tooLarge"` // answers skipped for exceeding the per-entry cap
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// AdmissionStatsResponse is the tenant-admission section of /v1/stats:
// how many plan-serving requests were shed, split by cause, plus the
// per-tenant shed counters behind planserver_tenant_shed_total.
type AdmissionStatsResponse struct {
	ShedBudget   uint64            `json:"shedBudget"`   // tenant token bucket empty
	ShedPriority uint64            `json:"shedPriority"` // priority class shed under load
	PerTenant    map[string]uint64 `json:"perTenant,omitempty"`
}

// ClusterStatsResponse is the cluster section of /v1/stats: this node's
// identity and keyspace share, the ring membership, peer health, and the
// warm-fill/push counters.
type ClusterStatsResponse struct {
	Node            string            `json:"node"`
	PeerAddr        string            `json:"peerAddr"`
	Members         []cluster.Member  `json:"members"`
	Replicas        int               `json:"replicas"` // owners per plan key
	OwnedShare      float64           `json:"ownedShare"`
	PeerHealthy     map[string]bool   `json:"peerHealthy"` // breaker not open
	PeerBreaker     map[string]string `json:"peerBreaker"` // closed | half-open | open
	PeerFills       uint64            `json:"peerFills"`   // plans + negatives served warm from a peer
	PeerFillMisses  uint64            `json:"peerFillMisses"`
	PeerFillErrors  uint64            `json:"peerFillErrors"`
	PeerFillHitRate float64           `json:"peerFillHitRate"` // fills / fetch attempts
	PeerServes      uint64            `json:"peerServes"`      // warm answers served to peers
	PeerImports     uint64            `json:"peerImports"`     // records installed by peer pushes
	PushesSent      uint64            `json:"pushesSent"`
	PushesDropped   uint64            `json:"pushesDropped"`
	PushErrors      uint64            `json:"pushErrors"`
	HintsQueued     uint64            `json:"hintsQueued"`   // pushes parked for handoff
	HintsDropped    uint64            `json:"hintsDropped"`  // hints refused by the queue cap
	HintsReplayed   uint64            `json:"hintsReplayed"` // hints delivered after a heal
	HintErrors      uint64            `json:"hintErrors"`
	HintsPending    int               `json:"hintsPending"`
}

// StoreStatsResponse is the store section of /v1/stats: the on-disk shape
// plus the boot-time warm-load outcome.
type StoreStatsResponse struct {
	store.Stats
	LoadSeconds     float64 `json:"loadSeconds"`
	LoadedPlans     int     `json:"loadedPlans"`
	LoadedNegatives int     `json:"loadedNegatives"`
	AppendErrors    uint64  `json:"appendErrors"`
}

// ReadyzResponse is GET /v1/readyz: overall readiness plus the individual
// checks ("ok", "none" for an unconfigured subsystem, or a failure word).
type ReadyzResponse struct {
	Ready  bool              `json:"ready"`
	Checks map[string]string `json:"checks"`
}

// ErrorObject is the error envelope shared by every endpoint, v1 and v2:
// a stable machine-readable code, a human-readable message, and — for
// rate-limited requests — the advised backoff in whole seconds (mirroring
// the Retry-After header).
//
// Codes: bad_request, not_found, conflict, infeasible, rate_limited,
// timeout, unavailable, internal.
type ErrorObject struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	RetryAfter int    `json:"retryAfter,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON reply; on /v2/execute
// the same envelope rides inside the error trailer frame instead.
type ErrorResponse struct {
	Error ErrorObject `json:"error"`
}
