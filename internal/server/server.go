// Package server is the plan-as-a-service HTTP layer: the paper's premise
// is that a decomposition-based plan is expensive enough to compute once
// and reuse, and this subsystem is where the reuse happens at scale — a
// JSON API over the canonical-form Planner with per-tenant catalogs,
// request coalescing (micro-batching above the cache's singleflight),
// admission control, request timeouts, graceful shutdown, and Prometheus
// metrics export.
//
// Endpoints:
//
//	POST /v1/plan               query text + k → serialized optimal plan
//	POST /v1/decompose          hypergraph text + k → NF decomposition
//	POST /v1/execute            buffered execute (deprecated; drains /v2)
//	POST /v2/execute            streaming execute (NDJSON header/rows/trailer)
//	PUT  /v1/catalogs/{tenant}  upload a catalog wholesale (db wire format)
//	PATCH /v1/catalogs/{tenant} apply a per-relation delta (data and/or
//	                            stats-only blocks; adaptive invalidation)
//	GET  /v1/catalogs/{tenant}  download the catalog (db wire format)
//	GET  /v1/catalogs           list tenants
//	GET  /v1/stats              planner + server counters (JSON)
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               liveness probe (alias /v1/healthz)
//	GET  /v1/readyz             readiness probe (store, ring, limiter)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/store"
)

// Config tunes a Server. The zero value selects sensible defaults.
type Config struct {
	// Planner tunes the Planner(s) behind the service (capacity, shards,
	// workers, Ψ guard). A zero MaxKVertices is replaced by DefaultMaxPsi:
	// a public endpoint must bound the candidate space.
	Planner cache.Options
	// IsolateTenants gives each tenant a private Planner. The default
	// (false) shares one Planner across tenants, so structurally identical
	// queries coalesce service-wide; plans are still keyed by statistics,
	// so tenants never see each other's data.
	IsolateTenants bool
	// DefaultK is the width bound applied when a request omits k (default 3).
	DefaultK int
	// MaxK rejects requests with k above the bound (default 8).
	MaxK int
	// RequestTimeout bounds end-to-end request handling (default 30s;
	// negative disables).
	RequestTimeout time.Duration
	// ShutdownTimeout bounds graceful shutdown (default 5s).
	ShutdownTimeout time.Duration
	// MaxInFlight bounds concurrently served requests; excess requests are
	// rejected with 429 (default 256; negative disables).
	MaxInFlight int
	// Admission layers per-tenant token-bucket budgets and priority
	// shedding on top of the global limiter. The zero value disables both.
	Admission AdmissionConfig
	// BatchWindow, when > 0, enables micro-batching of /v1/plan: concurrent
	// requests are collected for the window and identical ones planned once.
	BatchWindow time.Duration
	// MaxBatch bounds requests per batch (default 32).
	MaxBatch int
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// ResultCacheBytes bounds the result cache: complete query answers
	// keyed by (tenant, catalog version, plan key), so a repeat — or
	// renamed-variant — execute skips planning and evaluation entirely.
	// 0 selects the 64 MiB default; negative disables result caching.
	ResultCacheBytes int64
	// Cluster, when non-nil, joins this server to a static-membership
	// cluster: plan keys are sharded over the members by consistent
	// hashing, and misses try the owning replica's warm cache before a
	// cold search. Requires the default shared-planner mode (plan records
	// are tenant-agnostic; the key already embeds statistics).
	Cluster *ClusterConfig
	// DataDir, when non-empty, persists plan and negative-cache records
	// to an append-only store there and warm-loads the cache from it at
	// construction. Also requires shared-planner mode.
	DataDir string
	// StoreOptions tunes the persistent store (segment size, retention).
	StoreOptions store.Options
	// Log receives lifecycle messages; nil disables logging.
	Log *log.Logger
}

// DefaultMaxPsi is the default candidate-space guard for served searches.
const DefaultMaxPsi = 1 << 20

func (c Config) withDefaults() Config {
	if c.Planner.MaxKVertices == 0 {
		c.Planner.MaxKVertices = DefaultMaxPsi
	}
	if c.DefaultK == 0 {
		c.DefaultK = 3
	}
	if c.MaxK == 0 {
		c.MaxK = 8
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ShutdownTimeout == 0 {
		c.ShutdownTimeout = 5 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.ResultCacheBytes == 0 {
		c.ResultCacheBytes = 64 << 20
	}
	return c
}

// Server serves the planner and engine over HTTP. Construct with New; all
// methods are safe for concurrent use.
type Server struct {
	cfg       Config
	planners  *cache.PlannerSet
	catalogs  *db.Registry
	metrics   *metricsRegistry
	batcher   *planBatcher
	limiter   chan struct{}
	admit     *admission     // nil unless Config.Admission enables it
	dist      *distTier      // nil unless Cluster or DataDir is configured
	results   *resultCache   // nil when ResultCacheBytes < 0
	colstores *colStoreCache // shared columnar snapshots per (tenant, version)

	addr      atomic.Value // net.Addr, set by Serve
	closeOnce sync.Once
}

// New returns a Server with the given configuration. It panics if the
// distributed tier (Cluster/DataDir) is configured but cannot start; use
// Open to handle those errors. Configurations without a distributed tier
// never fail.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open returns a Server with the given configuration, starting the
// distributed tier (persistent store warm-load, peer RPC listener, health
// prober) when one is configured.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		planners: cache.NewPlannerSet(cfg.Planner, cfg.IsolateTenants),
		catalogs: db.NewRegistry(),
		metrics: newMetricsRegistry([]string{
			"plan", "decompose", "execute", "execute_stream", "catalogs", "stats", "metrics", "healthz", "readyz",
		}),
		results:   newResultCache(cfg.ResultCacheBytes),
		colstores: newColStoreCache(0),
	}
	if cfg.MaxInFlight > 0 {
		s.limiter = make(chan struct{}, cfg.MaxInFlight)
	}
	s.admit = newAdmission(cfg.Admission, s.limiter)
	if cfg.BatchWindow > 0 {
		s.batcher = newPlanBatcher(cfg.BatchWindow, cfg.MaxBatch)
	}
	if cfg.Cluster != nil || cfg.DataDir != "" {
		if cfg.IsolateTenants {
			s.Close()
			return nil, errors.New("server: clustering/persistence requires the shared-planner mode (IsolateTenants=false)")
		}
		dist, err := newDistTier(cfg, s.planners.For(""))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.dist = dist
	}
	return s, nil
}

// NodeID returns this replica's cluster identity, or "" outside a cluster.
func (s *Server) NodeID() string { return s.dist.nodeID() }

// PeerAddr returns the bound peer RPC address, or "" outside a cluster.
func (s *Server) PeerAddr() string {
	if s.dist == nil || s.dist.peerLn == nil {
		return ""
	}
	return s.dist.peerLn.Addr().String()
}

// PlannerStats snapshots the aggregate planner counters (summed over
// tenants in isolated mode).
func (s *Server) PlannerStats() cache.Stats { return s.planners.Aggregate() }

// LimiterInUse reports the number of admission slots currently held (0 when
// the limiter is disabled). The chaos harness asserts it returns to zero
// after load: accepted + rejected must equal offered with no leaked slots.
func (s *Server) LimiterInUse() int {
	if s.limiter == nil {
		return 0
	}
	return len(s.limiter)
}

// Handler returns the fully wired HTTP handler (for embedding or tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/plan", s.route("plan", true, s.handlePlan))
	mux.Handle("POST /v1/decompose", s.route("decompose", true, s.handleDecompose))
	mux.Handle("POST /v1/execute", s.route("execute", true, s.handleExecute))
	// /v2/execute streams: it must not run under http.TimeoutHandler, which
	// buffers the whole response and hides http.Flusher. A context-deadline
	// wrapper bounds it instead, checked between row batches.
	mux.Handle("POST /v2/execute", s.instrument("execute_stream", true,
		s.streamDeadline(http.HandlerFunc(s.handleExecuteStream))))
	mux.Handle("PUT /v1/catalogs/{tenant}", s.route("catalogs", true, s.handleCatalogPut))
	mux.Handle("PATCH /v1/catalogs/{tenant}", s.route("catalogs", true, s.handleCatalogPatch))
	mux.Handle("GET /v1/catalogs/{tenant}", s.route("catalogs", true, s.handleCatalogGet))
	mux.Handle("GET /v1/catalogs", s.route("catalogs", true, s.handleCatalogList))
	mux.Handle("GET /v1/stats", s.route("stats", false, s.handleStats))
	mux.Handle("GET /metrics", s.route("metrics", false, s.handleMetrics))
	mux.Handle("GET /healthz", s.route("healthz", false, s.handleHealthz))
	mux.Handle("GET /v1/healthz", s.route("healthz", false, s.handleHealthz))
	mux.Handle("GET /v1/readyz", s.route("readyz", false, s.handleReadyz))
	return mux
}

// route applies the request timeout inside the instrumentation, so metrics
// record the status the client actually received (503 on timeout, not the
// late inner write).
func (s *Server) route(endpoint string, limited bool, h http.HandlerFunc) http.Handler {
	return s.routeHandler(endpoint, limited, h)
}

func (s *Server) routeHandler(endpoint string, limited bool, h http.Handler) http.Handler {
	if s.cfg.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, s.cfg.RequestTimeout,
			`{"error":{"code":"timeout","message":"request timed out"}}`)
	}
	return s.instrument(endpoint, limited, h)
}

// ListenAndServe serves on addr until ctx is canceled, then shuts down
// gracefully. addr may use port 0; the bound address is available from
// Addr and the log line.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, l)
}

// Serve serves on l until ctx is canceled, then drains in-flight requests
// (bounded by ShutdownTimeout) and releases the batcher.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	s.addr.Store(l.Addr())
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("listening on http://%s", l.Addr())
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case <-ctx.Done():
		// Chaos: stall between the shutdown signal and the drain — requests
		// keep arriving at a server that has already decided to die.
		chaos.Hit(chaos.ServerShutdown, chaos.Delay)
		sc, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
		defer cancel()
		err := hs.Shutdown(sc)
		<-errc
		s.Close()
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("shut down")
		}
		return err
	case err := <-errc:
		s.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// Addr returns the bound address once Serve has been called, else nil.
func (s *Server) Addr() net.Addr {
	a, _ := s.addr.Load().(net.Addr)
	return a
}

// Close releases background resources — the batcher, the push queue, the
// peer RPC server and client, and the persistent store (idempotent; Serve
// calls it).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.batcher != nil {
			s.batcher.close()
		}
		if s.dist != nil {
			s.dist.teardown()
		}
	})
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush passes through so streaming handlers can push NDJSON frames as
// they are produced (http.ResponseWriter's Flusher would otherwise be
// hidden by the wrapper).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with admission control (when limited) and
// request metrics.
func (s *Server) instrument(endpoint string, limited bool, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if limited && s.limiter != nil {
			select {
			case s.limiter <- struct{}{}:
				defer func() { <-s.limiter }()
			default:
				// Counted, but kept out of the latency histogram: a burst
				// of instant 429s would drag the percentiles toward zero
				// exactly when the latency of served requests matters.
				s.metrics.count(endpoint, http.StatusTooManyRequests)
				w.Header().Set("Retry-After", "1")
				writeErrorRetry(w, http.StatusTooManyRequests, 1, "server at capacity (%d in flight)", s.cfg.MaxInFlight)
				return
			}
		}
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		// Chaos: handler latency after admission — the injected sleep holds
		// an admission slot, so sustained injection starves the limiter and
		// forces 429s on the offered load behind it.
		chaos.Hit(chaos.ServerHandler, chaos.Delay)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.record(endpoint, code, time.Since(start))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// errorCode maps an HTTP status onto the envelope's stable machine code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusUnprocessableEntity:
		return "infeasible"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

func errorObject(status int, format string, args ...any) ErrorObject {
	return ErrorObject{Code: errorCode(status), Message: fmt.Sprintf(format, args...)}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: errorObject(code, format, args...)})
}

// writeErrorRetry is writeError plus the advised backoff, mirrored in the
// envelope and (by the callers) the Retry-After header.
func writeErrorRetry(w http.ResponseWriter, code, retrySecs int, format string, args ...any) {
	obj := errorObject(code, format, args...)
	obj.RetryAfter = retrySecs
	writeJSON(w, code, ErrorResponse{Error: obj})
}

// decode reads a JSON body into v, reporting (and writing) failures.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// widthBound resolves and validates the request's k.
func (s *Server) widthBound(w http.ResponseWriter, k int) (int, bool) {
	if k == 0 {
		k = s.cfg.DefaultK
	}
	if k < 1 || k > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1, %d], got %d", s.cfg.MaxK, k)
		return 0, false
	}
	return k, true
}

// tenantCatalog resolves the tenant's catalog, writing a 404 when absent.
func (s *Server) tenantCatalog(w http.ResponseWriter, tenant string) (*db.Catalog, uint64, bool) {
	cat, ver, ok := s.catalogs.Get(tenant)
	if !ok {
		writeError(w, http.StatusNotFound, "no catalog for tenant %q", tenant)
		return nil, 0, false
	}
	return cat, ver, true
}

// planError maps planning failures onto status codes.
func planError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrNoDecomposition):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, errBatcherClosed), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// plan runs the planning path shared by /v1/plan and /v1/execute: the
// request is canonicalized exactly once into a PlanProbe, and every later
// stage — warm lookup, peer warm-fill, the micro-batcher, the cold search
// — works from that probe. Uncacheable queries (unaliased self-joins)
// bypass probe, batcher, and ring on the planner's direct path.
func (s *Server) plan(ctx context.Context, tenant string, q *cq.Query, cat *db.Catalog, k int) (*cost.Plan, bool, error) {
	planner := s.planners.For(tenant)
	probe, err := planner.ProbePlan(q, cat, k)
	if err != nil {
		if errors.Is(err, cache.ErrUncacheable) {
			return planner.PlanCached(q, cat, k)
		}
		return nil, false, err
	}
	return s.planProbed(ctx, planner, probe)
}

// planProbed serves an already-canonicalized request: warm-local → peer
// warm-fill → cold (micro-batched when enabled), with the distributed
// tier's write-through persistence and owner push after a cold result.
func (s *Server) planProbed(ctx context.Context, planner *cache.Planner, probe *cache.PlanProbe) (*cost.Plan, bool, error) {
	if plan, ok, err := planner.LookupPlan(probe); ok {
		return plan, true, err
	}
	if s.dist != nil {
		if hit, plan, herr := s.dist.peerFill(ctx, probe); hit {
			return plan, true, herr
		}
	}
	plan, hit, err := s.planCold(ctx, planner, probe)
	if s.dist != nil {
		s.dist.afterCold(probe, err)
	}
	return plan, hit, err
}

// planCold runs the cold half: through the micro-batcher when enabled —
// which groups concurrent requests by canonical plan key, so renamed and
// alias-renamed variants of one structure coalesce into a single batch
// slot — else straight into the Planner's singleflight.
func (s *Server) planCold(ctx context.Context, planner *cache.Planner, probe *cache.PlanProbe) (*cost.Plan, bool, error) {
	if s.batcher != nil {
		o := s.batcher.submit(ctx, &batchReq{
			planner: planner,
			probe:   probe,
			out:     make(chan batchOut, 1),
		})
		return o.plan, o.hit, o.err
	}
	return planner.ComputePlan(probe)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.decode(w, r, &req) {
		return
	}
	if ok, reason, retry := s.admit.admit(req.Tenant); !ok {
		shed(w, req.Tenant, reason, retry)
		return
	}
	q, err := cq.Parse(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, ok := s.widthBound(w, req.K)
	if !ok {
		return
	}
	cat, ver, ok := s.tenantCatalog(w, req.Tenant)
	if !ok {
		return
	}
	s.nodeHeader(w)
	plan, hit, err := s.plan(r.Context(), req.Tenant, q, cat, k)
	if err != nil {
		planError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{
		Tenant:         req.Tenant,
		K:              k,
		Width:          plan.Decomp.Width(),
		EstimatedCost:  plan.EstimatedCost,
		CacheHit:       hit,
		CatalogVersion: ver,
		Node:           s.dist.nodeID(),
		Plan:           engine.SerializeDecomposition(plan.Decomp, plan.NodeCosts),
	})
}

// nodeHeader stamps the serving replica's identity on the response, so
// load-balanced clients can tell which node answered (and assert peer
// fills in the cluster smoke tests).
func (s *Server) nodeHeader(w http.ResponseWriter) {
	if id := s.dist.nodeID(); id != "" {
		w.Header().Set("X-Planserver-Node", id)
	}
}

func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req DecomposeRequest
	if !s.decode(w, r, &req) {
		return
	}
	h, err := hypergraph.Parse(req.Hypergraph)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, ok := s.widthBound(w, req.K)
	if !ok {
		return
	}
	d, hit, err := s.planners.For(req.Tenant).DecomposeCached(h, k)
	if err != nil {
		planError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DecomposeResponse{
		K:             k,
		Width:         d.Width(),
		CacheHit:      hit,
		Decomposition: engine.SerializeDecomposition(d, nil),
	})
}

// handleExecute is the deprecated buffered POST /v1/execute, kept as a
// shim over the streaming engine: it drains the same pipeline /v2/execute
// streams, buffers the rows, and answers in the old body shape. New
// clients should follow the Link header to /v2/execute.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v2/execute>; rel="successor-version"`)
	p, ok := s.prepareExecute(w, r)
	if !ok {
		return
	}
	resp := ExecuteResponse{
		Tenant: p.req.Tenant,
		K:      p.k,
		Node:   s.dist.nodeID(),
	}
	if p.cached != nil {
		resp.EstimatedCost = p.cached.estimatedCost
		resp.CacheHit = true
		resp.ResultCached = true
		resp.RowCount = len(p.cached.rows)
		resp.Boolean = p.cached.boolean
		if !p.q.IsBoolean() {
			resp.Columns = p.q.Out
			resp.Rows = p.cached.rows
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var m engine.Metrics
	st, err := s.openStream(p, &m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	res, err := engine.Drain(st)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp.EstimatedCost = p.plan.EstimatedCost
	resp.CacheHit = p.planHit
	resp.Metrics = ExecuteMetrics{
		Joins:              m.Joins,
		Semijoins:          m.Semijoins,
		IntermediateTuples: m.IntermediateTuples,
		Batches:            m.Batches,
	}
	if p.q.IsBoolean() {
		ans := engine.Answer(res)
		resp.Boolean = &ans
		s.cacheResult(p, nil, &ans, p.plan.EstimatedCost)
	} else {
		resp.Columns = res.Attrs
		resp.Rows = res.Tuples
		resp.RowCount = res.Card()
		s.cacheResult(p, res.Tuples, nil, p.plan.EstimatedCost)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCatalogPut(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if tenant == "" {
		writeError(w, http.StatusBadRequest, "empty tenant")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	cat, err := db.ReadCatalog(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(cat.Names()) == 0 {
		writeError(w, http.StatusBadRequest, "catalog has no relations")
		return
	}
	if err := cat.AnalyzeAll(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Chaos: widen the window between analysis and publication, so catalog
	// PUTs race in-flight plans on the same tenant for as long as possible.
	chaos.Hit(chaos.ServerCatalogPut, chaos.Delay)
	version, err := s.catalogs.Put(tenant, cat)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// The version bump already keeps new executes from matching old result
	// keys; purge eagerly so stale answers and columnar snapshots stop
	// holding memory the moment they become unreachable.
	s.results.purgeTenant(tenant)
	s.colstores.purgeTenant(tenant)
	tuples := 0
	for _, n := range cat.Names() {
		tuples += cat.Get(n).Card()
	}
	writeJSON(w, http.StatusOK, CatalogResponse{
		Tenant:    tenant,
		Relations: len(cat.Names()),
		Tuples:    tuples,
		Version:   version,
	})
}

// handleCatalogPatch is PATCH /v1/catalogs/{tenant}: a per-relation delta
// in the db wire format — `relation` blocks replace one relation's data,
// `analyze` blocks override one relation's statistics. Only the touched
// relations are re-ANALYZEd; the delta is applied to a copy-on-write clone
// of the published snapshot and swapped in by compare-and-put, so the
// Registry's publish-immutable contract holds and concurrent readers keep
// a consistent view. An optional ?ifVersion=N pins the base version:
// a mismatch answers 409 with the "conflict" envelope instead of
// retrying. Invalidation is adaptive, not scorched-earth — see
// applyDeltaInvalidation.
func (s *Server) handleCatalogPatch(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if tenant == "" {
		writeError(w, http.StatusBadRequest, "empty tenant")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	delta, err := db.ReadCatalogDelta(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if delta.Empty() {
		writeError(w, http.StatusBadRequest, "delta has no relation or analyze blocks")
		return
	}
	var ifVersion uint64
	pinned := false
	if v := r.URL.Query().Get("ifVersion"); v != "" {
		ifVersion, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad ifVersion %q", v)
			return
		}
		pinned = true
	}
	// Unpinned deltas retry the read-apply-publish sequence on CAS losses;
	// a bounded number of attempts keeps a PATCH storm from spinning.
	for attempt := 0; attempt < 8; attempt++ {
		cat, base, ok := s.catalogs.Get(tenant)
		if !ok {
			writeError(w, http.StatusNotFound, "no catalog for tenant %q", tenant)
			return
		}
		if pinned && base != ifVersion {
			writeError(w, http.StatusConflict, "catalog at version %d, delta pinned to %d", base, ifVersion)
			return
		}
		next := cat.Clone()
		dataChanged, statsChanged, err := next.ApplyDelta(delta)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Chaos: widen the window between applying the delta and publishing
		// it, so concurrent PATCHes and PUTs race the compare-and-put.
		chaos.Hit(chaos.ServerCatalogPut, chaos.Delay)
		version, err := s.catalogs.CompareAndPut(tenant, base, next)
		if errors.Is(err, db.ErrVersionConflict) {
			if pinned {
				writeError(w, http.StatusConflict, "catalog changed while applying delta (base version %d)", base)
				return
			}
			continue
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		rekeyed := s.applyDeltaInvalidation(tenant, base, version, next, dataChanged, statsChanged)
		writeJSON(w, http.StatusOK, CatalogDeltaResponse{
			Tenant:       tenant,
			BaseVersion:  base,
			Version:      version,
			DataChanged:  dataChanged,
			StatsChanged: statsChanged,
			PlansRekeyed: rekeyed,
		})
		return
	}
	writeError(w, http.StatusConflict, "catalog for tenant %q kept changing; delta not applied", tenant)
}

// applyDeltaInvalidation is the adaptive-invalidation half of a delta,
// run after the new catalog version is published. Where a wholesale PUT
// nukes every derived artifact, a delta invalidates by relation class:
//
//   - Plan cache: stats-only changes leave cached structures valid, so hot
//     entries are re-keyed in place (renamed-variant hits survive with zero
//     new computations); entries referencing a data-changed relation age
//     out and recompute.
//   - Result cache: answers for plans referencing a data-changed relation
//     are dropped; every other entry is carried to the new catalog version
//     (stats-referencing keys are restatted), so unaffected answers keep
//     serving.
//   - Column store: the warm store is cloned for the new version carrying
//     the columnar state and shared hash indexes of untouched relations —
//     only the touched relation's artifacts rebuild — and every
//     superseded version of the tenant is dropped so old stores never
//     strand columnar snapshots.
func (s *Server) applyDeltaInvalidation(tenant string, base, version uint64, cat *db.Catalog, dataChanged, statsChanged []string) int {
	rekeyed := s.planners.For(tenant).RekeyPlans(cat, statsChanged, dataChanged)
	s.results.applyDelta(tenant, base, version, cat, dataChanged, statsChanged)
	s.colstores.advance(tenant, version, cat, dataChanged)
	return rekeyed
}

func (s *Server) handleCatalogGet(w http.ResponseWriter, r *http.Request) {
	cat, _, ok := s.tenantCatalog(w, r.PathValue("tenant"))
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := db.WriteCatalog(w, cat); err != nil && s.cfg.Log != nil {
		s.cfg.Log.Printf("catalog download: %v", err)
	}
}

func (s *Server) handleCatalogList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CatalogListResponse{Tenants: s.catalogs.Tenants()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Planner:   s.planners.Aggregate(),
		Catalogs:  s.catalogs.Tenants(),
		InFlight:  s.metrics.inFlight.Load(),
		UptimeSec: time.Since(s.metrics.start).Seconds(),
	}
	if s.planners.Isolated() {
		resp.PerTenant = s.planners.StatsByTenant()
	}
	resp.Admission = s.admit.stats()
	resp.Results = s.results.stats()
	if s.dist != nil {
		resp.Cluster = s.dist.clusterStats()
		resp.Store = s.dist.storeStats()
	}
	s.nodeHeader(w)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, s.planners.Aggregate(), s.catalogs.Len())
	s.admit.writeMetrics(w)
	s.results.writeMetrics(w)
	if s.dist != nil {
		s.dist.writeMetrics(w)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe for load-balancer integration.
// Liveness (healthz) answers "is the process up"; readiness answers "should
// this replica receive traffic": the persistent store warm-loaded, the
// ring membership resolved (both settled at construction — a Server that
// failed either never came up), and the admission limiter not saturated.
// A saturated replica stays alive but asks the balancer to route around it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]string{"store": "none", "cluster": "none", "limiter": "ok"}
	if s.dist != nil && s.dist.store != nil {
		checks["store"] = "ok"
	}
	if s.dist != nil && s.dist.ring != nil {
		checks["cluster"] = "ok"
	}
	ready := true
	if s.limiter != nil && len(s.limiter) >= cap(s.limiter) {
		checks["limiter"] = "saturated"
		ready = false
	}
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, ReadyzResponse{Ready: ready, Checks: checks})
}
