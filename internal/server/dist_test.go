package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/store"
)

const chainQuery = "ans(W) :- r(X,Y), s(Y,Z), t(Z,W)."
const pathQuery = "ans(X,Z) :- r(X,Y), s(Y,Z)."

// clusterNode is one replica of an in-process test cluster.
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
	id  string
}

// startCluster boots n replicas with pre-bound peer listeners (so the
// membership table exists before any node does) and, when dataDirs is
// non-nil, a persistent store each. Health probing is disabled: tests
// drive every transition explicitly.
func startCluster(t *testing.T, n int, dataDirs []string) ([]clusterNode, []cluster.Member) {
	return startClusterOpts(t, n, dataDirs, nil)
}

// startClusterOpts is startCluster with a per-node config hook (fast
// breakers, hint-drain tuning).
func startClusterOpts(t *testing.T, n int, dataDirs []string, tune func(*Config)) ([]clusterNode, []cluster.Member) {
	t.Helper()
	listeners := make([]net.Listener, n)
	members := make([]cluster.Member, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		members[i] = cluster.Member{ID: fmt.Sprintf("node-%d", i), Addr: ln.Addr().String()}
	}
	nodes := make([]clusterNode, n)
	for i := 0; i < n; i++ {
		cfg := Config{Cluster: &ClusterConfig{
			NodeID:       members[i].ID,
			Members:      members,
			PeerListener: listeners[i],
			Client:       cluster.ClientOptions{PingInterval: -1},
		}}
		if dataDirs != nil {
			cfg.DataDir = dataDirs[i]
		}
		if tune != nil {
			tune(&cfg)
		}
		srv, err := Open(cfg)
		if err != nil {
			t.Fatalf("Open node %d: %v", i, err)
		}
		ts := httptest.NewServer(srv.Handler())
		nodes[i] = clusterNode{srv: srv, ts: ts, id: members[i].ID}
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
	}
	return nodes, members
}

// planOn plans query on one node and returns the response.
func planOn(t *testing.T, ts *httptest.Server, query string, k int) PlanResponse {
	t.Helper()
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: query, K: k})
	return decodeAs[PlanResponse](t, resp, http.StatusOK)
}

// planBytes marshals the plan tree of a response — the byte-identity
// oracle of the distributed tier.
func planBytes(t *testing.T, r PlanResponse) string {
	t.Helper()
	b, err := json.Marshal(r.Plan)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// ownerOf resolves which member owns a query's plan key, by recomputing
// the probe exactly as the replicas do (same catalog text, same analysis,
// same canonicalization).
func ownerOf(t *testing.T, members []cluster.Member, query string, k int) (string, string, string) {
	t.Helper()
	cat, err := db.ReadCatalog(strings.NewReader(triangleCatalog))
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	q, err := cq.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := cache.NewPlanner(cache.Options{}).ProbePlan(q, cat, k)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ring.Owner(probe.Key).ID, probe.Key, probe.NegKey
}

// ownersOf resolves the full replica set (preference order) of a query's
// plan key.
func ownersOf(t *testing.T, members []cluster.Member, query string, k, replicas int) []string {
	t.Helper()
	_, key, _ := ownerOf(t, members, query, k)
	ring, err := cluster.NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, replicas)
	for _, m := range ring.Owners(key, replicas) {
		ids = append(ids, m.ID)
	}
	return ids
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterPeerFill is the tentpole acceptance path: a plan computed
// cold on one replica is served warm (cacheHit) from the others via the
// owning replica, byte-identical everywhere.
func TestClusterPeerFill(t *testing.T) {
	nodes, members := startCluster(t, 3, nil)
	for _, n := range nodes {
		uploadCatalog(t, n.ts, "acme", triangleCatalog)
	}
	ownerID, _, _ := ownerOf(t, members, triangleQuery, 3)

	first := planOn(t, nodes[0].ts, triangleQuery, 3)
	if first.CacheHit {
		t.Fatal("first plan was warm on a cold cluster")
	}
	if first.Node != nodes[0].id {
		t.Fatalf("response node = %q, want %q", first.Node, nodes[0].id)
	}
	want := planBytes(t, first)

	// Every other replica eventually answers warm: directly (it is the
	// owner and received the push) or via a peer fill from the owner.
	for i := 1; i < 3; i++ {
		var got PlanResponse
		waitFor(t, fmt.Sprintf("warm answer from node %d", i), func() bool {
			got = planOn(t, nodes[i].ts, triangleQuery, 3)
			return got.CacheHit
		})
		if pb := planBytes(t, got); pb != want {
			t.Fatalf("node %d plan deviates:\n  got  %s\n  want %s", i, pb, want)
		}
		if got.Node != nodes[i].id {
			t.Fatalf("node %d response carries node %q", i, got.Node)
		}
	}

	// At least one non-owner answered via an actual peer fetch, and the
	// counters saw it.
	var fills, serves uint64
	for _, n := range nodes {
		st := getStats(t, n.ts)
		if st.Cluster == nil {
			t.Fatal("stats missing cluster section")
		}
		fills += st.Cluster.PeerFills
		serves += st.Cluster.PeerServes
		if n.id == ownerID && st.Cluster.OwnedShare <= 0 {
			t.Fatalf("owner %s reports share %f", n.id, st.Cluster.OwnedShare)
		}
	}
	if fills == 0 || serves == 0 {
		t.Fatalf("no peer fill observed: fills=%d serves=%d", fills, serves)
	}
}

// TestClusterNegativePeerFill: an infeasibility verdict learned on one
// replica spreads the same way and is served without a local search.
func TestClusterNegativePeerFill(t *testing.T) {
	nodes, members := startCluster(t, 2, nil)
	for _, n := range nodes {
		uploadCatalog(t, n.ts, "acme", triangleCatalog)
	}
	ownerID, _, _ := ownerOf(t, members, triangleQuery, 1)
	// Learn infeasibility on the owner so the other node's fill is
	// deterministic (no async push to wait for).
	ownerIdx := 0
	if nodes[1].id == ownerID {
		ownerIdx = 1
	}
	resp := postJSON(t, nodes[ownerIdx].ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 1})
	decodeAs[ErrorResponse](t, resp, http.StatusUnprocessableEntity)

	other := 1 - ownerIdx
	resp = postJSON(t, nodes[other].ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 1})
	decodeAs[ErrorResponse](t, resp, http.StatusUnprocessableEntity)
	st := getStats(t, nodes[other].ts)
	if st.Planner.Infeasible.Computations != 0 {
		t.Fatalf("non-owner ran its own infeasibility search: %+v", st.Planner.Infeasible)
	}
	// With two nodes and R=2 both are owners: the verdict reaches the other
	// node either by its own peer fill or by the owner's replication push —
	// both count, as long as no local search ran (asserted above).
	if st.Cluster.PeerFills == 0 && st.Cluster.PeerImports == 0 {
		t.Fatal("negative verdict neither peer-filled nor replicated")
	}
}

// TestStoreWarmLoadAcrossRestart: a restarted replica answers warm from
// its persistent store — plans byte-identical, negative verdicts intact,
// zero searches.
func TestStoreWarmLoadAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	uploadCatalog(t, ts, "acme", triangleCatalog)
	wantTri := planBytes(t, planOn(t, ts, triangleQuery, 3))
	wantPath := planBytes(t, planOn(t, ts, pathQuery, 3))
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 1})
	decodeAs[ErrorResponse](t, resp, http.StatusUnprocessableEntity)
	ts.Close()
	srv.Close()

	srv2, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	uploadCatalog(t, ts2, "acme", triangleCatalog)

	st := getStats(t, ts2)
	if st.Store == nil || st.Store.LoadedPlans != 2 || st.Store.LoadedNegatives != 1 {
		t.Fatalf("warm-load stats = %+v", st.Store)
	}
	tri := planOn(t, ts2, triangleQuery, 3)
	if !tri.CacheHit || planBytes(t, tri) != wantTri {
		t.Fatalf("restarted triangle plan: hit=%v identical=%v", tri.CacheHit, planBytes(t, tri) == wantTri)
	}
	path := planOn(t, ts2, pathQuery, 3)
	if !path.CacheHit || planBytes(t, path) != wantPath {
		t.Fatalf("restarted path plan: hit=%v identical=%v", path.CacheHit, planBytes(t, path) == wantPath)
	}
	resp = postJSON(t, ts2, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 1})
	decodeAs[ErrorResponse](t, resp, http.StatusUnprocessableEntity)
	st = getStats(t, ts2)
	if c := st.Planner.Plans.Computations + st.Planner.Infeasible.Computations; c != 0 {
		t.Fatalf("restarted replica ran %d searches for warm-loaded answers", c)
	}
}

// TestClusterOwnerKillRestart: the owner of a key dies and comes back with
// its store; a replica that never saw the plan then gets it warm from the
// restarted owner.
func TestClusterOwnerKillRestart(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	nodes, members := startCluster(t, 3, dirs)
	for _, n := range nodes {
		uploadCatalog(t, n.ts, "acme", triangleCatalog)
	}
	ownerID, _, _ := ownerOf(t, members, triangleQuery, 3)
	ownerIdx := 0
	for i, n := range nodes {
		if n.id == ownerID {
			ownerIdx = i
		}
	}
	// Compute on the owner itself so its store holds the record without
	// waiting on an async push.
	want := planBytes(t, planOn(t, nodes[ownerIdx].ts, triangleQuery, 3))

	// Kill the owner, then restart it on the same peer address with the
	// same data dir.
	nodes[ownerIdx].ts.Close()
	nodes[ownerIdx].srv.Close()
	var ln net.Listener
	waitFor(t, "peer address rebind", func() bool {
		var err error
		ln, err = net.Listen("tcp", members[ownerIdx].Addr)
		return err == nil
	})
	srv, err := Open(Config{
		DataDir: dirs[ownerIdx],
		Cluster: &ClusterConfig{
			NodeID:       ownerID,
			Members:      members,
			PeerListener: ln,
			Client:       cluster.ClientOptions{PingInterval: -1},
		},
	})
	if err != nil {
		t.Fatalf("restart owner: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	uploadCatalog(t, ts, "acme", triangleCatalog)
	back := planOn(t, ts, triangleQuery, 3)
	if !back.CacheHit || planBytes(t, back) != want {
		t.Fatalf("restarted owner not warm: hit=%v identical=%v", back.CacheHit, planBytes(t, back) == want)
	}

	// A replica that never planned this query fills from the restarted
	// owner — the full kill-and-restart survival path. Pick a node outside
	// the replica set: owners may hold the record already via the
	// replication push, which would mask the fill.
	owners := ownersOf(t, members, triangleQuery, 3, 2)
	fresh := -1
	for i, n := range nodes {
		inSet := false
		for _, id := range owners {
			if n.id == id {
				inSet = true
			}
		}
		if !inSet {
			fresh = i
		}
	}
	if fresh < 0 {
		t.Fatalf("no node outside replica set %v", owners)
	}
	got := planOn(t, nodes[fresh].ts, triangleQuery, 3)
	if !got.CacheHit || planBytes(t, got) != want {
		t.Fatalf("peer fill from restarted owner: hit=%v identical=%v", got.CacheHit, planBytes(t, got) == want)
	}
	if st := getStats(t, nodes[fresh].ts); st.Cluster.PeerFills == 0 {
		t.Fatal("fresh replica did not peer-fill")
	}
}

// fastFailover is the config hook for failure-path tests: tight dial and
// call budgets, no retries, a breaker that trips on the first refused
// connection and re-probes after 25ms, and an aggressive hint drainer.
func fastFailover(cfg *Config) {
	cfg.Cluster.Client = cluster.ClientOptions{
		PingInterval: -1,
		DialTimeout:  200 * time.Millisecond,
		CallTimeout:  500 * time.Millisecond,
		Retries:      -1,
		Breaker: cluster.BreakerOptions{
			Window:     4,
			MinSamples: 1,
			ErrorRate:  0.5,
			Cooldown:   25 * time.Millisecond,
		},
	}
	cfg.Cluster.HintDrainInterval = 25 * time.Millisecond
}

// TestClusterKillOneOwnerServesWarmAndConverges is the PR's acceptance
// e2e: with R=2, killing one owner of a replicated key costs nothing —
// every survivor keeps answering warm, byte-identical, zero 5xx — and
// writes that would have landed on the dead owner park as hints and
// replay after the heal until the cluster converges.
func TestClusterKillOneOwnerServesWarmAndConverges(t *testing.T) {
	nodes, members := startClusterOpts(t, 3, nil, fastFailover)
	for _, n := range nodes {
		uploadCatalog(t, n.ts, "acme", triangleCatalog)
	}
	owners := ownersOf(t, members, triangleQuery, 3, 2)
	idxOf := func(id string) int {
		for i, n := range nodes {
			if n.id == id {
				return i
			}
		}
		t.Fatalf("unknown node %s", id)
		return -1
	}
	primary, secondary := idxOf(owners[0]), idxOf(owners[1])

	// Cold-compute on the primary owner; replication pushes the record to
	// the secondary owner. Wait until it has actually landed.
	want := planBytes(t, planOn(t, nodes[primary].ts, triangleQuery, 3))
	waitFor(t, "replication push to reach the secondary owner", func() bool {
		return getStats(t, nodes[secondary].ts).Cluster.PeerImports >= 1
	})

	// Kill the primary. Every survivor must keep serving the key warm and
	// byte-identical — the secondary from its replica, the non-owner via a
	// peer fill that fails over past the dead primary. planOn fails the
	// test on any non-200, so this loop is also the zero-5xx assertion.
	nodes[primary].ts.Close()
	nodes[primary].srv.Close()
	for round := 0; round < 3; round++ {
		for i, n := range nodes {
			if i == primary {
				continue
			}
			got := planOn(t, n.ts, triangleQuery, 3)
			if !got.CacheHit {
				t.Fatalf("round %d: node %s answered cold with one owner down", round, n.id)
			}
			if pb := planBytes(t, got); pb != want {
				t.Fatalf("round %d: node %s plan deviates:\n  got  %s\n  want %s", round, n.id, pb, want)
			}
		}
	}

	// Now a write the dead node should have received: find a feasible
	// query whose replica set includes the dead primary, compute it cold
	// on a survivor, and watch the push park as a hint.
	deadID := nodes[primary].id
	var hintQuery string
	var hintK int
	for _, cand := range []struct {
		q string
		k int
	}{{pathQuery, 3}, {chainQuery, 3}, {pathQuery, 2}, {chainQuery, 2}, {pathQuery, 4}, {chainQuery, 4}} {
		for _, id := range ownersOf(t, members, cand.q, cand.k, 2) {
			if id == deadID {
				hintQuery, hintK = cand.q, cand.k
			}
		}
		if hintQuery != "" {
			break
		}
	}
	if hintQuery == "" {
		t.Fatalf("no candidate query owned by dead node %s", deadID)
	}
	writer := secondary
	if writer == primary {
		writer = (primary + 1) % 3
	}
	wantHint := planBytes(t, planOn(t, nodes[writer].ts, hintQuery, hintK))
	waitFor(t, "push to dead owner parked as hint", func() bool {
		return getStats(t, nodes[writer].ts).Cluster.HintsQueued >= 1
	})

	// Heal: bring the node back cold (no store) on the same address. The
	// writer's drainer re-probes the breaker, replays the hint, and the
	// healed node ends up warm without ever searching.
	var ln net.Listener
	waitFor(t, "peer address rebind", func() bool {
		var err error
		ln, err = net.Listen("tcp", members[primary].Addr)
		return err == nil
	})
	cfg := Config{Cluster: &ClusterConfig{
		NodeID:       deadID,
		Members:      members,
		PeerListener: ln,
		Client:       cluster.ClientOptions{PingInterval: -1},
	}}
	fastFailover(&cfg)
	srv, err := Open(cfg)
	if err != nil {
		t.Fatalf("heal primary: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	uploadCatalog(t, ts, "acme", triangleCatalog)

	waitFor(t, "hint replay to drain", func() bool {
		st := getStats(t, nodes[writer].ts).Cluster
		return st.HintsReplayed >= 1 && st.HintsPending == 0
	})
	waitFor(t, "healed node to import the replayed record", func() bool {
		return getStats(t, ts).Cluster.PeerImports >= 1
	})
	healed := planOn(t, ts, hintQuery, hintK)
	if !healed.CacheHit || planBytes(t, healed) != wantHint {
		t.Fatalf("healed node after hint replay: hit=%v identical=%v", healed.CacheHit, planBytes(t, healed) == wantHint)
	}
	if st := getStats(t, ts); st.Planner.Plans.Computations != 0 {
		t.Fatalf("healed node ran %d searches despite hint replay", st.Planner.Plans.Computations)
	}
}

// TestHintQueuePersistDedupCap pins the hint queue's contract: one hint
// per (owner, key) with the newest record winning, a hard capacity bound,
// and durability across reopen via the store-backed log.
func TestHintQueuePersistDedupCap(t *testing.T) {
	dir := t.TempDir()
	q, err := openHintQueue(dir, store.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.add(pushItem{owner: "n1", key: "k1", rec: []byte("a")}); got != hintAdded {
		t.Fatalf("first add = %v", got)
	}
	if got := q.add(pushItem{owner: "n1", key: "k1", rec: []byte("b")}); got != hintDuplicate {
		t.Fatalf("dup add = %v", got)
	}
	if got := q.add(pushItem{owner: "n2", key: "k1", rec: []byte("a")}); got != hintAdded {
		t.Fatalf("second owner add = %v", got)
	}
	if got := q.add(pushItem{owner: "n3", key: "k1", rec: []byte("a")}); got != hintDropped {
		t.Fatalf("over-cap add = %v", got)
	}
	if q.pending() != 2 {
		t.Fatalf("pending = %d, want 2", q.pending())
	}
	q.close()

	// Reopen: both hints survive, and the dedup kept the newest record.
	q2, err := openHintQueue(dir, store.Options{}, 2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.close()
	items := q2.snapshot()
	if len(items) != 2 {
		t.Fatalf("reopened pending = %d, want 2", len(items))
	}
	found := false
	for _, it := range items {
		if it.owner == "n1" && it.key == "k1" {
			found = true
			if string(it.rec) != "b" {
				t.Fatalf("dedup kept %q, want newest \"b\"", it.rec)
			}
		}
	}
	if !found {
		t.Fatal("hint for n1/k1 lost across reopen")
	}
	// Draining everything compacts the log.
	for _, it := range items {
		q2.remove(it)
	}
	q2.compact()
	if q2.pending() != 0 {
		t.Fatalf("pending after drain = %d", q2.pending())
	}
}

// tearNthAppend tears the nth StoreAppend it sees.
type tearNthAppend struct{ n, hits int }

func (ti *tearNthAppend) Act(p chaos.Point, allowed chaos.Effect) chaos.Effect {
	if p != chaos.StoreAppend {
		return 0
	}
	ti.hits++
	if ti.hits == ti.n {
		return chaos.Drop & allowed
	}
	return 0
}

// TestStoreTornWriteCrashRecovery is the crash-restart recovery check: a
// chaos-injected torn record mid-write must not corrupt serving, and a
// restart must recover to the last valid record — warm hits stay correct,
// the negative cache stays sound, and only the torn record is cold again.
func TestStoreTornWriteCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	uploadCatalog(t, ts, "acme", triangleCatalog)

	wantTri := planBytes(t, planOn(t, ts, triangleQuery, 3))
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 1})
	decodeAs[ErrorResponse](t, resp, http.StatusUnprocessableEntity)

	// Tear the next store append mid-write — the chain plan's record only
	// half-reaches disk. Serving must not notice.
	unregister := chaos.Register(&tearNthAppend{n: 1})
	torn := planOn(t, ts, chainQuery, 3)
	unregister()
	if torn.CacheHit {
		t.Fatal("cold plan reported as hit")
	}
	wantChain := planBytes(t, torn)
	st := getStats(t, ts)
	if st.Store.AppendErrors == 0 {
		t.Fatalf("torn append not counted: %+v", st.Store)
	}
	// The plan is still served warm from memory after the tear.
	if again := planOn(t, ts, chainQuery, 3); !again.CacheHit {
		t.Fatal("in-memory entry lost after store tear")
	}
	ts.Close()
	srv.Close()

	// "Crash" and restart: recovery truncates the torn tail and replays
	// everything before it.
	srv2, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	uploadCatalog(t, ts2, "acme", triangleCatalog)

	st = getStats(t, ts2)
	if st.Store.LoadedPlans != 1 || st.Store.LoadedNegatives != 1 {
		t.Fatalf("recovery replayed %+v, want the 1 plan + 1 negative before the tear", st.Store)
	}
	if st.Store.TruncatedBytes == 0 {
		t.Fatal("recovery truncated nothing")
	}
	tri := planOn(t, ts2, triangleQuery, 3)
	if !tri.CacheHit || planBytes(t, tri) != wantTri {
		t.Fatalf("recovered plan: hit=%v identical=%v", tri.CacheHit, planBytes(t, tri) == wantTri)
	}
	resp = postJSON(t, ts2, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 1})
	decodeAs[ErrorResponse](t, resp, http.StatusUnprocessableEntity)
	if st := getStats(t, ts2); st.Planner.Infeasible.Computations != 0 {
		t.Fatal("negative verdict lost by recovery")
	}
	// The torn record is the only casualty: cold again, same plan bytes.
	chain := planOn(t, ts2, chainQuery, 3)
	if chain.CacheHit {
		t.Fatal("torn record survived as a warm entry")
	}
	if planBytes(t, chain) != wantChain {
		t.Fatal("recomputed chain plan deviates from pre-crash plan")
	}
	// And its recomputation persisted cleanly on the recovered store.
	if st := getStats(t, ts2); st.Store.AppendErrors != 0 {
		t.Fatalf("recovered store still failing appends: %+v", st.Store)
	}
}

func TestDistConfigValidation(t *testing.T) {
	if _, err := Open(Config{DataDir: t.TempDir(), IsolateTenants: true}); err == nil {
		t.Fatal("store with isolated tenants accepted")
	}
	if _, err := Open(Config{Cluster: &ClusterConfig{
		NodeID:  "ghost",
		Members: []cluster.Member{{ID: "a", Addr: "127.0.0.1:1"}},
	}}); err == nil {
		t.Fatal("node id outside membership accepted")
	}
	if _, err := Open(Config{Cluster: &ClusterConfig{
		NodeID:  "a",
		Members: []cluster.Member{{ID: "a", Addr: "127.0.0.1:1"}},
	}}); err == nil {
		t.Fatal("cluster without a peer listener accepted")
	}
}

// TestClusterMetricsExposition: the Prometheus exposition carries the
// tier's series on a distributed replica.
func TestClusterMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	nodes, _ := startCluster(t, 2, []string{dir, t.TempDir()})
	uploadCatalog(t, nodes[0].ts, "acme", triangleCatalog)
	planOn(t, nodes[0].ts, triangleQuery, 3)
	resp, err := nodes[0].ts.Client().Get(nodes[0].ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"planserver_cluster_owned_share",
		"planserver_peer_fetches_total",
		"planserver_peer_pushes_total",
		"planserver_store_segments",
		"planserver_store_load_seconds",
		"planserver_store_loaded_records",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %s", want)
		}
	}
	// The store actually recorded the plan.
	if st := getStats(t, nodes[0].ts); st.Store.Records == 0 {
		t.Fatalf("store empty after a cold plan: %+v", st.Store)
	}
	_ = store.Options{} // keep the import honest if assertions above change
}
