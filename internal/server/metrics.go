package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
)

// In-process metrics in Prometheus text exposition format (version 0.0.4),
// implemented on atomics — the module stays dependency-free. The registry
// tracks per-endpoint request counts (by status code) and latency
// histograms; planner cache counters are snapshotted at scrape time.

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// histogram is a lock-free fixed-bucket latency histogram. counts[i] is the
// number of observations in bucket i (non-cumulative; the +Inf bucket is
// counts[len(buckets)]); sums are kept in nanoseconds to stay integral.
type histogram struct {
	counts   []atomic.Uint64
	sumNanos atomic.Uint64
	total    atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && sec > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(uint64(d.Nanoseconds()))
	h.total.Add(1)
}

// metricsRegistry aggregates the server-side counters.
type metricsRegistry struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]map[int]uint64 // endpoint -> status code -> count

	latencies map[string]*histogram // endpoint -> histogram (fixed at construction)
	inFlight  atomic.Int64
}

func newMetricsRegistry(endpoints []string) *metricsRegistry {
	m := &metricsRegistry{
		start:     time.Now(),
		requests:  map[string]map[int]uint64{},
		latencies: map[string]*histogram{},
	}
	for _, e := range endpoints {
		m.requests[e] = map[int]uint64{}
		m.latencies[e] = newHistogram()
	}
	return m
}

// count notes a request's status without a latency observation (used for
// admission rejections, which would skew the histogram toward zero).
func (m *metricsRegistry) count(endpoint string, code int) {
	m.mu.Lock()
	if codes, ok := m.requests[endpoint]; ok {
		codes[code]++
	}
	m.mu.Unlock()
}

// record notes one served request: status plus latency.
func (m *metricsRegistry) record(endpoint string, code int, d time.Duration) {
	m.count(endpoint, code)
	if h, ok := m.latencies[endpoint]; ok {
		h.observe(d)
	}
}

// write renders the full exposition: request counters and latency
// histograms, the planner cache counters in st, and server gauges.
func (m *metricsRegistry) write(w io.Writer, st cache.Stats, catalogs int) {
	fmt.Fprintln(w, "# HELP planserver_requests_total Completed HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE planserver_requests_total counter")
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for e := range m.requests {
		endpoints = append(endpoints, e)
	}
	sort.Strings(endpoints)
	for _, e := range endpoints {
		codes := make([]int, 0, len(m.requests[e]))
		for c := range m.requests[e] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "planserver_requests_total{endpoint=%q,code=%q} %d\n", e, strconv.Itoa(c), m.requests[e][c])
		}
	}
	m.mu.Unlock()

	fmt.Fprintln(w, "# HELP planserver_request_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE planserver_request_seconds histogram")
	for _, e := range endpoints {
		h := m.latencies[e]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "planserver_request_seconds_bucket{endpoint=%q,le=%q} %d\n",
				e, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		total := h.total.Load()
		fmt.Fprintf(w, "planserver_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", e, total)
		fmt.Fprintf(w, "planserver_request_seconds_sum{endpoint=%q} %g\n", e, float64(h.sumNanos.Load())/1e9)
		fmt.Fprintf(w, "planserver_request_seconds_count{endpoint=%q} %d\n", e, total)
	}

	caches := []struct {
		name string
		st   cache.CacheStats
	}{
		{"plans", st.Plans},
		{"decompositions", st.Decompositions},
		{"searches", st.Searches},
		{"infeasible", st.Infeasible},
	}
	counter := func(name, help string, pick func(cache.CacheStats) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, c := range caches {
			fmt.Fprintf(w, "%s{cache=%q} %d\n", name, c.name, pick(c.st))
		}
	}
	counter("planner_cache_hits_total", "Planner cache lookups answered from the cache.",
		func(s cache.CacheStats) uint64 { return s.Hits })
	counter("planner_cache_misses_total", "Planner cache lookups that required (or joined) a computation.",
		func(s cache.CacheStats) uint64 { return s.Misses })
	counter("planner_cache_evictions_total", "Planner cache entries dropped by the LRU policy.",
		func(s cache.CacheStats) uint64 { return s.Evictions })
	counter("planner_cache_computations_total", "Searches actually executed (misses minus singleflight dedup).",
		func(s cache.CacheStats) uint64 { return s.Computations })
	fmt.Fprintln(w, "# HELP planner_cache_entries Entries currently resident per planner cache.")
	fmt.Fprintln(w, "# TYPE planner_cache_entries gauge")
	for _, c := range caches {
		fmt.Fprintf(w, "planner_cache_entries{cache=%q} %d\n", c.name, c.st.Entries)
	}

	fmt.Fprintln(w, "# HELP planserver_in_flight_requests Requests currently being served.")
	fmt.Fprintln(w, "# TYPE planserver_in_flight_requests gauge")
	fmt.Fprintf(w, "planserver_in_flight_requests %d\n", m.inFlight.Load())
	fmt.Fprintln(w, "# HELP planserver_catalogs Tenants with an uploaded catalog.")
	fmt.Fprintln(w, "# TYPE planserver_catalogs gauge")
	fmt.Fprintf(w, "planserver_catalogs %d\n", catalogs)
	fmt.Fprintln(w, "# HELP planserver_uptime_seconds Seconds since the server was constructed.")
	fmt.Fprintln(w, "# TYPE planserver_uptime_seconds gauge")
	fmt.Fprintf(w, "planserver_uptime_seconds %g\n", time.Since(m.start).Seconds())
}
