package server

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// metricLine matches one Prometheus text-format sample:
// name{labels} value  |  name value
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+0-9.eEInf]+$`)

// scrape fetches /metrics and returns the body plus a map from
// name{labels} to value for exact-sample assertions.
func scrape(t *testing.T, url string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return string(body), samples
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	uploadCatalog(t, ts, "acme", triangleCatalog)
	for i := 0; i < 3; i++ { // 1 computation + 2 hits
		resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 2})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// One infeasible request to populate the negative cache counters.
	resp := postJSON(t, ts, "/v1/plan", PlanRequest{Tenant: "acme", Query: triangleQuery, K: 1})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	body, samples := scrape(t, ts.URL)
	for _, want := range []struct {
		sample string
		value  float64
	}{
		// 3 feasible requests: 1 miss + computation, 2 hits. The cold
		// infeasible request also probes and searches the plan cache once
		// before its failure is recorded in the negative cache.
		{`planner_cache_hits_total{cache="plans"} `, 2},
		{`planner_cache_misses_total{cache="plans"} `, 2},
		{`planner_cache_computations_total{cache="plans"} `, 2},
		{`planner_cache_evictions_total{cache="plans"} `, 0},
		{`planner_cache_computations_total{cache="infeasible"} `, 1},
		{`planserver_requests_total{endpoint="plan",code="200"} `, 3},
		{`planserver_requests_total{endpoint="plan",code="422"} `, 1},
		{`planserver_requests_total{endpoint="catalogs",code="200"} `, 1},
		{`planserver_catalogs `, 1},
	} {
		key := strings.TrimSuffix(want.sample, " ")
		got, ok := samples[key]
		if !ok {
			t.Fatalf("missing sample %q in:\n%s", key, body)
		}
		if got != want.value {
			t.Fatalf("%s = %v, want %v", key, got, want.value)
		}
	}
	// Latency histogram: count equals the 4 plan requests, sum positive,
	// +Inf bucket consistent, buckets cumulative.
	if got := samples[`planserver_request_seconds_count{endpoint="plan"}`]; got != 4 {
		t.Fatalf("plan latency count = %v, want 4", got)
	}
	if got := samples[`planserver_request_seconds_bucket{endpoint="plan",le="+Inf"}`]; got != 4 {
		t.Fatalf("plan +Inf bucket = %v, want 4", got)
	}
	if got := samples[`planserver_request_seconds_sum{endpoint="plan"}`]; got <= 0 {
		t.Fatalf("plan latency sum = %v, want > 0", got)
	}
	var prev float64
	for _, ub := range latencyBuckets {
		key := fmt.Sprintf(`planserver_request_seconds_bucket{endpoint="plan",le="%s"}`,
			strconv.FormatFloat(ub, 'g', -1, 64))
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket %s = %v not cumulative (prev %v)", key, v, prev)
		}
		prev = v
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram()
	h.observe(700 * time.Microsecond) // bucket le=0.001
	h.observe(700 * time.Microsecond)
	h.observe(30 * time.Second) // +Inf
	if got := h.total.Load(); got != 3 {
		t.Fatalf("total = %d", got)
	}
	if got := h.counts[1].Load(); got != 2 {
		t.Fatalf("0.001 bucket = %d, want 2", got)
	}
	if got := h.counts[len(latencyBuckets)].Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
	wantSum := (2*700*time.Microsecond + 30*time.Second).Nanoseconds()
	if got := h.sumNanos.Load(); got != uint64(wantSum) {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
}
