package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tenant-aware overload protection, layered on the global in-flight
// limiter. Two independent mechanisms decide a shed, both answering with
// 429 + Retry-After so well-behaved clients back off instead of retrying
// hot:
//
//   - Budgets: a token bucket per tenant (rate + burst) bounds how much
//     plan-serving work one tenant can demand, whatever the cluster's
//     spare capacity — the noisy neighbor pays, not the fleet.
//   - Priority shedding: when the global limiter nears saturation, lower
//     priority classes are shed first. A class-p request (p=0 highest)
//     needs a free-capacity fraction of at least p/8 (capped at 1/2), so
//     as load climbs the classes brown out in strict priority order and
//     class 0 only ever sees the global limit itself.
//
// The decision happens in the plan-serving handlers, after the body is
// decoded — the tenant is in the body — so a shed request has already
// held an admission slot briefly; the slot is released with the 429.

// AdmissionConfig tunes per-tenant admission. The zero value disables
// budgets and priority shedding.
type AdmissionConfig struct {
	// TenantRate is the sustained plan-serving requests/sec each tenant
	// may issue (<= 0 disables tenant budgets).
	TenantRate float64
	// TenantBurst is the token-bucket capacity (default 2×TenantRate,
	// minimum 1): short bursts above the sustained rate are fine.
	TenantBurst float64
	// TenantPriority maps tenant → priority class (0 = highest). Tenants
	// not listed get DefaultPriority.
	TenantPriority map[string]int
	// DefaultPriority is the class of unlisted tenants (default 0).
	DefaultPriority int
	// MaxTenants bounds the tracked token buckets (default 4096). At the
	// bound, requests from untracked new tenants are admitted rather than
	// shed — an unbounded attacker can at worst opt out of budgets for
	// tenants beyond the bound, not evict existing ones.
	MaxTenants int
}

func (c AdmissionConfig) enabled() bool {
	return c.TenantRate > 0 || len(c.TenantPriority) > 0 || c.DefaultPriority > 0
}

// tenantBucket is one tenant's token bucket. Guarded by admission.mu.
type tenantBucket struct {
	tokens float64
	last   time.Time
}

// admission is the server's tenant-admission state.
type admission struct {
	cfg     AdmissionConfig
	limiter chan struct{} // the global limiter, for free-capacity reads

	mu      sync.Mutex
	buckets map[string]*tenantBucket

	shedBudget   atomic.Uint64
	shedPriority atomic.Uint64

	shedMu       sync.Mutex
	shedByTenant map[string]uint64
}

func newAdmission(cfg AdmissionConfig, limiter chan struct{}) *admission {
	if !cfg.enabled() {
		return nil
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 2 * cfg.TenantRate
	}
	if cfg.TenantBurst < 1 {
		cfg.TenantBurst = 1
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 4096
	}
	return &admission{
		cfg:          cfg,
		limiter:      limiter,
		buckets:      make(map[string]*tenantBucket),
		shedByTenant: make(map[string]uint64),
	}
}

// priority resolves a tenant's class.
func (a *admission) priority(tenant string) int {
	if p, ok := a.cfg.TenantPriority[tenant]; ok {
		return p
	}
	return a.cfg.DefaultPriority
}

// admit decides one plan-serving request. retryAfter is meaningful only
// when ok is false: for a budget shed it is the time until the bucket
// refills one token; for a priority shed a flat second — the saturation
// that caused it has no schedule.
func (a *admission) admit(tenant string) (ok bool, reason string, retryAfter time.Duration) {
	if a == nil {
		return true, "", 0
	}
	if a.cfg.TenantRate > 0 {
		if ok, retryAfter = a.takeToken(tenant, time.Now()); !ok {
			a.noteShed(tenant)
			a.shedBudget.Add(1)
			return false, "budget", retryAfter
		}
	}
	if p := a.priority(tenant); p > 0 && a.limiter != nil {
		capacity := cap(a.limiter)
		free := float64(capacity-len(a.limiter)) / float64(capacity)
		if need := math.Min(float64(p)/8, 0.5); free < need {
			a.noteShed(tenant)
			a.shedPriority.Add(1)
			return false, "priority", time.Second
		}
	}
	return true, "", 0
}

// takeToken draws one token from the tenant's bucket, refilling by wall
// clock first. now is a parameter for the tests.
func (a *admission) takeToken(tenant string, now time.Time) (bool, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenant]
	if !ok {
		if len(a.buckets) >= a.cfg.MaxTenants {
			return true, 0 // untracked overflow tenant: admit, don't evict
		}
		b = &tenantBucket{tokens: a.cfg.TenantBurst, last: now}
		a.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(a.cfg.TenantBurst, b.tokens+dt*a.cfg.TenantRate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / a.cfg.TenantRate * float64(time.Second))
	return false, wait
}

func (a *admission) noteShed(tenant string) {
	a.shedMu.Lock()
	a.shedByTenant[tenant]++
	a.shedMu.Unlock()
}

// stats assembles the /v1/stats admission section.
func (a *admission) stats() *AdmissionStatsResponse {
	if a == nil {
		return nil
	}
	resp := &AdmissionStatsResponse{
		ShedBudget:   a.shedBudget.Load(),
		ShedPriority: a.shedPriority.Load(),
		PerTenant:    map[string]uint64{},
	}
	a.shedMu.Lock()
	for t, n := range a.shedByTenant {
		resp.PerTenant[t] = n
	}
	a.shedMu.Unlock()
	return resp
}

// writeMetrics appends the admission series to the Prometheus exposition.
func (a *admission) writeMetrics(w io.Writer) {
	if a == nil {
		return
	}
	fmt.Fprintln(w, "# HELP planserver_tenant_shed_total Plan-serving requests shed per tenant by cause.")
	fmt.Fprintln(w, "# TYPE planserver_tenant_shed_total counter")
	a.shedMu.Lock()
	tenants := make([]string, 0, len(a.shedByTenant))
	for t := range a.shedByTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		fmt.Fprintf(w, "planserver_tenant_shed_total{tenant=%q} %d\n", t, a.shedByTenant[t])
	}
	a.shedMu.Unlock()
	fmt.Fprintln(w, "# HELP planserver_shed_total Requests shed by cause across tenants.")
	fmt.Fprintln(w, "# TYPE planserver_shed_total counter")
	fmt.Fprintf(w, "planserver_shed_total{cause=\"budget\"} %d\n", a.shedBudget.Load())
	fmt.Fprintf(w, "planserver_shed_total{cause=\"priority\"} %d\n", a.shedPriority.Load())
}

// shed writes the 429, stamping Retry-After in whole seconds (minimum 1 —
// the header has no sub-second form).
func shed(w http.ResponseWriter, tenant, reason string, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeErrorRetry(w, http.StatusTooManyRequests, secs, "tenant %q shed (%s); retry after %ds", tenant, reason, secs)
}
