package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cost"
)

// Micro-batching for /v1/plan. Concurrent plan requests arrive already
// canonicalized (the server probes once per request) and are collected for
// a short window (or until the batch fills), then grouped by (planner,
// canonical plan key): each distinct group runs one search and every
// member remaps the cached canonical entry onto its own variable names. A
// renamed or alias-renamed variant of a structure in flight therefore
// coalesces into the same batch slot, not just the same singleflight —
// coalescing happens before any per-request work beyond the probe.

var errBatcherClosed = errors.New("server: shutting down")

type batchReq struct {
	planner *cache.Planner
	probe   *cache.PlanProbe
	out     chan batchOut // buffered(1): the batch loop never blocks on delivery
}

type batchOut struct {
	plan *cost.Plan
	hit  bool
	err  error
}

type planBatcher struct {
	window   time.Duration
	maxBatch int
	reqs     chan *batchReq

	groups   sync.WaitGroup // in-flight dispatch group goroutines
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newPlanBatcher(window time.Duration, maxBatch int) *planBatcher {
	if maxBatch < 1 {
		maxBatch = 32
	}
	b := &planBatcher{
		window:   window,
		maxBatch: maxBatch,
		reqs:     make(chan *batchReq, maxBatch),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit enqueues a request and waits for its result.
func (b *planBatcher) submit(ctx context.Context, r *batchReq) batchOut {
	select {
	case b.reqs <- r:
	case <-b.stop:
		return batchOut{err: errBatcherClosed}
	case <-ctx.Done():
		return batchOut{err: ctx.Err()}
	}
	select {
	case o := <-r.out:
		return o
	case <-ctx.Done():
		return batchOut{err: ctx.Err()}
	case <-b.done:
		// The enqueue can race with close(): the loop may have drained and
		// exited without seeing this request, in which case nothing will
		// ever deliver to r.out. A result dispatched just before (or still
		// in flight from a group goroutine) takes precedence.
		select {
		case o := <-r.out:
			return o
		default:
			return batchOut{err: errBatcherClosed}
		}
	}
}

// close stops the batch loop. Requests already collected into a batch are
// answered (their group computations are waited for); requests still queued
// are failed, not dropped.
func (b *planBatcher) close() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
}

func (b *planBatcher) loop() {
	// done must not close before every dispatched group has delivered:
	// submit treats done as "no result is coming", so closing it with a
	// group still planning would spuriously fail members whose answer is
	// moments away (their out channels are buffered, so late delivery by
	// the group goroutine never blocks).
	defer func() {
		b.groups.Wait()
		close(b.done)
	}()
	for {
		var first *batchReq
		select {
		case first = <-b.reqs:
		case <-b.stop:
			b.drain()
			return
		}
		batch := []*batchReq{first}
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			case <-b.stop:
				break collect
			}
		}
		timer.Stop()
		b.dispatch(batch)
	}
}

// dispatch groups the batch by (planner, canonical plan key) and plans
// each group once, concurrently across groups. It does not wait for the
// groups: the loop goes straight back to collecting, so slow searches
// never stall the next batch.
func (b *planBatcher) dispatch(batch []*batchReq) {
	type groupKey struct {
		planner *cache.Planner
		key     string
	}
	groups := map[groupKey][]*batchReq{}
	for _, r := range batch {
		gk := groupKey{r.planner, r.probe.Key}
		groups[gk] = append(groups[gk], r)
	}
	for _, g := range groups {
		b.groups.Add(1)
		go func(g []*batchReq) {
			defer b.groups.Done()
			// Chaos: delay the group's planning so members' cancellations
			// race the in-flight computation; delivery below must still
			// reach every member (buffered channels, no member blocks it).
			chaos.Hit(chaos.ServerBatch, chaos.Delay)
			// Warm re-check first: another group (or a peer push) may have
			// landed the entry between the server's probe and this dispatch.
			lead := g[0]
			plan, hit, err := lead.planner.LookupPlan(lead.probe)
			if !hit {
				plan, hit, err = lead.planner.ComputePlan(lead.probe)
			}
			lead.out <- batchOut{plan: plan, hit: hit, err: err}
			// Followers share the group's canonical entry but need their own
			// remap: a renamed variant coalesces here, so the leader's plan
			// speaks the wrong variable names for it. LookupPlan remaps the
			// cached entry; if a chaos drop evicted the insert, ComputePlan's
			// singleflight recomputes once for all of them.
			for _, r := range g[1:] {
				fplan, fok, ferr := r.planner.LookupPlan(r.probe)
				if !fok && err == nil {
					fplan, _, ferr = r.planner.ComputePlan(r.probe)
				} else if !fok {
					ferr = err
				}
				r.out <- batchOut{plan: fplan, hit: true, err: ferr}
			}
		}(g)
	}
}

// drain fails every queued request after stop.
func (b *planBatcher) drain() {
	for {
		select {
		case r := <-b.reqs:
			r.out <- batchOut{err: errBatcherClosed}
		default:
			return
		}
	}
}
