package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
)

// The execute paths. POST /v2/execute streams the answer as NDJSON frames —
// header, row chunks, trailer — so a large answer never has to exist in
// server memory at once; POST /v1/execute is kept as a deprecated shim that
// drains the same pipeline into the old buffered body. Both consult the
// result cache before planning: a repeat (or renamed-variant) execute on an
// unchanged catalog replays the cached rows without planning or evaluating.

// execPrep is the state shared by the execute handlers once the request has
// cleared decoding, admission, parsing, width validation, catalog lookup,
// and the result-cache probe. Exactly one of cached/plan is set.
type execPrep struct {
	req     ExecuteRequest
	q       *cq.Query
	k       int
	cat     *db.Catalog
	version uint64
	resKey  string       // "" when the result cache cannot key this request
	cached  *resultEntry // non-nil: answer served from the result cache
	plan    *cost.Plan   // non-nil: evaluate this plan
	planHit bool         // plan served from the plan cache
}

// prepareExecute runs everything up to (but not including) evaluation. On
// any failure it has already written the error response and returns ok =
// false. On a result-cache hit planning is skipped entirely — the probe
// (cheap canonicalization, no search) is all it costs to find out.
func (s *Server) prepareExecute(w http.ResponseWriter, r *http.Request) (*execPrep, bool) {
	p := &execPrep{}
	if !s.decode(w, r, &p.req) {
		return nil, false
	}
	if ok, reason, retry := s.admit.admit(p.req.Tenant); !ok {
		shed(w, p.req.Tenant, reason, retry)
		return nil, false
	}
	q, err := cq.Parse(p.req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	p.q = q
	k, ok := s.widthBound(w, p.req.K)
	if !ok {
		return nil, false
	}
	p.k = k
	p.cat, p.version, ok = s.tenantCatalog(w, p.req.Tenant)
	if !ok {
		return nil, false
	}
	s.nodeHeader(w)
	// One probe serves the whole request: the result-cache key (same key ⇒
	// same canonical structure, statistics, width bound, and catalog
	// version ⇒ same answer, positionally) and — on a result miss — the
	// plan path, which never re-canonicalizes. A probe error other than
	// ErrUncacheable (unaliased self-joins, which fall to the planner's
	// direct path with no result caching) fails the request.
	planner := s.planners.For(p.req.Tenant)
	probe, perr := planner.ProbePlan(q, p.cat, k)
	if perr == nil {
		p.resKey = resultKey(p.req.Tenant, p.version, probe.Key)
		if e, hit := s.results.get(p.resKey); hit {
			p.cached = e
			return p, true
		}
	}
	var plan *cost.Plan
	var hit bool
	switch {
	case perr == nil:
		plan, hit, err = s.planProbed(r.Context(), planner, probe)
	case errors.Is(perr, cache.ErrUncacheable):
		plan, hit, err = planner.PlanCached(q, p.cat, k)
	default:
		err = perr
	}
	if err != nil {
		planError(w, err)
		return nil, false
	}
	p.plan, p.planHit = plan, hit
	return p, true
}

// openStream builds the streaming evaluator for a prepared request, reusing
// the catalog snapshot's shared column store so hash indexes built for one
// request serve the next.
func (s *Server) openStream(p *execPrep, m *engine.Metrics) (*engine.Stream, error) {
	cs := s.colstores.storeFor(p.req.Tenant, p.version, p.cat)
	return engine.EvalDecompositionStreamWith(cs, p.plan.Decomp, p.plan.Query, m)
}

// cacheResult inserts a completed answer. rows must be in head positional
// order (they are: the engine emits q.Out order, and the plan key pins the
// canonical head order across renamed variants).
func (s *Server) cacheResult(p *execPrep, rows [][]db.Value, boolean *bool, estimatedCost float64) {
	s.results.put(p.resKey, rows, boolean, estimatedCost)
}

// streamDeadline bounds a streaming handler with a request-context deadline
// instead of http.TimeoutHandler (which buffers the response and hides
// http.Flusher). The handler checks the context between row batches and
// converts expiry into a well-formed error trailer.
func (s *Server) streamDeadline(h http.Handler) http.Handler {
	if s.cfg.RequestTimeout <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// handleExecuteStream is POST /v2/execute: NDJSON frames
// header → rows* → trailer, flushed as produced. The trailer is the source
// of truth for completion — a mid-stream fault yields status "error" with
// the shared envelope, never a silently truncated 200.
func (s *Server) handleExecuteStream(w http.ResponseWriter, r *http.Request) {
	p, ok := s.prepareExecute(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	emit := func(frame any) {
		_ = enc.Encode(frame)
		if flusher != nil {
			flusher.Flush()
		}
	}

	head := ExecStreamHeader{
		Frame:          "header",
		Tenant:         p.req.Tenant,
		K:              p.k,
		CacheHit:       true,
		CatalogVersion: p.version,
		Node:           s.dist.nodeID(),
		IsBoolean:      p.q.IsBoolean(),
	}
	if !p.q.IsBoolean() {
		head.Columns = p.q.Out
	}

	// Result-cache hit: replay the cached rows as row chunks. Only the
	// column labels come from this request; the row data is shared.
	if p.cached != nil {
		head.EstimatedCost = p.cached.estimatedCost
		head.ResultCached = true
		emit(head)
		n := 0
		for n < len(p.cached.rows) {
			end := min(n+engine.BatchSize, len(p.cached.rows))
			emit(ExecStreamRows{Frame: "rows", Rows: p.cached.rows[n:end]})
			n = end
		}
		emit(ExecStreamTrailer{
			Frame: "trailer", Status: "ok",
			RowCount: len(p.cached.rows), Boolean: p.cached.boolean,
		})
		return
	}

	head.EstimatedCost = p.plan.EstimatedCost
	head.CacheHit = p.planHit
	var m engine.Metrics
	st, err := s.openStream(p, &m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer st.Close()
	emit(head)

	// From here on the 200 header is on the wire; failures must surface in
	// the trailer, not a status code.
	fail := func(status int, format string, args ...any) {
		obj := errorObject(status, format, args...)
		emit(ExecStreamTrailer{Frame: "trailer", Status: "error", Error: &obj})
	}

	// Collect rows for the result cache only while under the per-entry cap;
	// past it the answer was never cacheable, so stop holding it.
	collect := p.resKey != ""
	var rows [][]db.Value
	var collected int64
	maxBytes := s.cfg.ResultCacheBytes / 4

	rowCount := 0
	for {
		if err := r.Context().Err(); err != nil {
			fail(http.StatusGatewayTimeout, "request timed out mid-stream: %v", err)
			return
		}
		batch, err := st.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fail(http.StatusInternalServerError, "%v", err)
			return
		}
		rowCount += len(batch)
		if !p.q.IsBoolean() && len(batch) > 0 {
			emit(ExecStreamRows{Frame: "rows", Rows: batch})
		}
		if collect {
			for _, row := range batch {
				collected += 24 + 4*int64(len(row))
			}
			if collected > maxBytes {
				collect, rows = false, nil
			} else {
				rows = append(rows, batch...)
			}
		}
	}

	trailer := ExecStreamTrailer{
		Frame: "trailer", Status: "ok", RowCount: rowCount,
		Metrics: &ExecuteMetrics{
			Joins:              m.Joins,
			Semijoins:          m.Semijoins,
			IntermediateTuples: m.IntermediateTuples,
			Batches:            m.Batches,
		},
	}
	var boolAns *bool
	if val, isBool := st.Boolean(); isBool {
		boolAns = &val
		trailer.Boolean = boolAns
		trailer.RowCount = 0
		rowCount = 0
		rows = nil
	}
	if collect || (boolAns != nil && p.resKey != "") {
		s.cacheResult(p, rows, boolAns, p.plan.EstimatedCost)
	}
	emit(trailer)
}
