package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/store"
)

// This file is the distributed plan tier of the server: consistent-hash
// routing over the canonical plan key, peer warm-fill over the cluster
// RPC, write-through pushes to the owning replica, and the crash-safe
// persistent store that warm-loads the cache on boot. The tier is
// strictly additive — with no ClusterConfig and no DataDir, the server
// behaves exactly as before, and every distributed step degrades to the
// local cold path on failure.

// ClusterConfig wires a Server into a static-membership cluster.
type ClusterConfig struct {
	// NodeID is this replica's identity; it must appear in Members.
	NodeID string
	// Members is the full cluster membership, including this node. Every
	// replica must be configured with the same set (order is irrelevant —
	// the ring sorts by ID).
	Members []cluster.Member
	// PeerListen is the address the peer RPC listener binds ("host:port";
	// port 0 picks a free port). Ignored when PeerListener is set.
	PeerListen string
	// PeerListener, when non-nil, is a pre-bound listener for the peer
	// RPC — in-process clusters and tests bind first so the membership
	// table can be built before any node boots.
	PeerListener net.Listener
	// Vnodes is the virtual-node count per member (default
	// cluster.DefaultVnodes).
	Vnodes int
	// Replicas is the number of distinct owners per plan key (default 2,
	// clamped to the member count). Warm-fills try owners in preference
	// order; cold results are pushed to every owner, so a key's plan
	// survives any single node loss.
	Replicas int
	// Client tunes the peer RPC client (timeouts, retries, breakers).
	Client cluster.ClientOptions
	// HintQueueCap bounds the hinted-handoff queue (default 1024). Hints
	// beyond the cap are dropped — the owner recomputes on demand.
	HintQueueCap int
	// HintDrainInterval is the period of the background hint drainer
	// (default 200ms; negative disables it — tests drain explicitly).
	HintDrainInterval time.Duration
}

// pushItem is one write-through destined for the owning replica.
type pushItem struct {
	owner    string
	key      string
	rec      []byte // nil for a negative verdict
	negative bool
}

// distTier holds the distribution state of one Server.
type distTier struct {
	planner *cache.Planner // the shared planner (distribution requires shared mode)
	log     *log.Logger

	// Cluster half (nil/zero when not clustered).
	self     cluster.Member
	ring     *cluster.Ring
	replicas int
	client   *cluster.Client
	peerSrv  *cluster.PeerServer
	peerLn   net.Listener

	// Hinted handoff (nil when not clustered).
	hints     *hintQueue
	closing   atomic.Bool
	drainStop chan struct{}
	drainWG   sync.WaitGroup

	// Store half (nil when no DataDir).
	store       *store.Store
	loadSeconds float64
	loadedPlans int
	loadedNegs  int

	// Write-through push queue toward owners.
	pushq      chan pushItem
	pushMu     sync.Mutex
	pushClosed bool
	pushWG     sync.WaitGroup

	// Counters (Prometheus + /v1/stats).
	peerFillHits   atomic.Uint64 // plans imported from the owner and served warm
	peerFillNegs   atomic.Uint64 // infeasibility verdicts imported from the owner
	peerFillMisses atomic.Uint64 // owner asked, had nothing
	peerFillErrors atomic.Uint64 // RPC or record failure; fell back to cold
	peerServes     atomic.Uint64 // gets answered for peers
	peerImports    atomic.Uint64 // records installed by peer pushes
	pushSent       atomic.Uint64
	pushDropped    atomic.Uint64
	pushErrors     atomic.Uint64
	appendErrors   atomic.Uint64
	hintsQueued    atomic.Uint64 // pushes parked as hints
	hintsDropped   atomic.Uint64 // hints refused by the queue cap
	hintsReplayed  atomic.Uint64 // hints delivered by the drainer
	hintErrors     atomic.Uint64 // drain attempts that failed (hint kept)
}

// newDistTier builds the tier: opens and replays the store, then boots the
// peer server, client, and push queue. Partial failures tear down what was
// already started.
func newDistTier(cfg Config, planner *cache.Planner) (*distTier, error) {
	d := &distTier{planner: planner, log: cfg.Log}
	if cfg.DataDir != "" {
		start := time.Now()
		st, err := store.Open(cfg.DataDir, cfg.StoreOptions, func(r store.Record) {
			switch r.Kind {
			case store.KindPlan:
				var rec cache.PlanRecord
				if json.Unmarshal(r.Val, &rec) == nil && planner.ImportPlan(r.Key, &rec) == nil {
					d.loadedPlans++
				}
			case store.KindNegative:
				planner.ImportInfeasible(r.Key)
				d.loadedNegs++
			}
		})
		if err != nil {
			return nil, fmt.Errorf("server: opening plan store: %w", err)
		}
		d.store = st
		d.loadSeconds = time.Since(start).Seconds()
		if d.log != nil {
			d.log.Printf("plan store %s: %d plans, %d negatives warm-loaded in %.3fs",
				cfg.DataDir, d.loadedPlans, d.loadedNegs, d.loadSeconds)
		}
	}
	if cc := cfg.Cluster; cc != nil {
		ring, err := cluster.NewRing(cc.Members, cc.Vnodes)
		if err != nil {
			d.teardown()
			return nil, err
		}
		var self *cluster.Member
		var peers []cluster.Member
		for _, m := range ring.Members() {
			if m.ID == cc.NodeID {
				mm := m
				self = &mm
			} else {
				peers = append(peers, m)
			}
		}
		if self == nil {
			d.teardown()
			return nil, fmt.Errorf("server: node id %q not in cluster membership", cc.NodeID)
		}
		ln := cc.PeerListener
		if ln == nil {
			if cc.PeerListen == "" {
				d.teardown()
				return nil, errors.New("server: cluster config needs PeerListen or PeerListener")
			}
			ln, err = net.Listen("tcp", cc.PeerListen)
			if err != nil {
				d.teardown()
				return nil, fmt.Errorf("server: binding peer listener: %w", err)
			}
		}
		d.self = *self
		d.ring = ring
		d.replicas = cc.Replicas
		if d.replicas <= 0 {
			d.replicas = 2
		}
		if n := len(ring.Members()); d.replicas > n {
			d.replicas = n
		}
		hintDir := ""
		if cfg.DataDir != "" {
			hintDir = filepath.Join(cfg.DataDir, "hints")
		}
		hints, err := openHintQueue(hintDir, cfg.StoreOptions, cc.HintQueueCap)
		if err != nil {
			d.teardown()
			return nil, fmt.Errorf("server: opening hint log: %w", err)
		}
		d.hints = hints
		d.client = cluster.NewClient(peers, cc.Client)
		d.peerSrv = cluster.NewPeerServer(peerBackend{d})
		d.peerLn = ln
		go d.peerSrv.Serve(ln)
		d.pushq = make(chan pushItem, 256)
		d.pushWG.Add(1)
		go d.drainPushes()
		if cc.HintDrainInterval >= 0 {
			interval := cc.HintDrainInterval
			if interval == 0 {
				interval = 200 * time.Millisecond
			}
			d.drainStop = make(chan struct{})
			d.drainWG.Add(1)
			go d.hintDrainLoop(interval)
		}
		if d.log != nil {
			d.log.Printf("cluster node %s: peer rpc on %s, %d peers, %d replicas, owned share %.3f",
				d.self.ID, ln.Addr(), len(peers), d.replicas, ring.Share(d.self.ID))
		}
	}
	return d, nil
}

// nodeID returns this replica's identity, or "" outside a cluster.
func (d *distTier) nodeID() string {
	if d == nil || d.ring == nil {
		return ""
	}
	return d.self.ID
}

// afterCold runs the write-through half of the distributed tier after a
// cold local computation for probe: an infeasibility verdict is persisted
// and pushed to the key's owners; a successful plan is exported from the
// cache, persisted, and pushed. The warm flow (local lookup, peer
// warm-fill) lives in Server.planProbed — the tier only sees probes the
// server already canonicalized once.
func (d *distTier) afterCold(probe *cache.PlanProbe, err error) {
	if err != nil {
		if errors.Is(err, core.ErrNoDecomposition) {
			// The cold compute recorded the verdict locally; persist it and
			// teach the owners.
			d.persist(store.KindNegative, probe.NegKey, nil)
			d.pushToOwners(probe, nil, true)
		}
		return
	}
	if rec, ok := d.planner.ExportPlan(probe.Key); ok {
		if raw, jerr := json.Marshal(rec); jerr == nil {
			d.persist(store.KindPlan, probe.Key, raw)
			d.pushToOwners(probe, raw, false)
		}
	}
}

// peerFill tries the key's owners — in ring preference order — before any
// local search. The first owner that answers wins; an owner that errors or
// misses (including a breaker-open fast failure) just advances to the
// next, and exhausting the replica set falls back to the cold path: peer
// trouble degrades latency, never availability. hit reports whether the
// request was answered (herr is core.ErrNoDecomposition for an imported
// infeasibility verdict).
func (d *distTier) peerFill(ctx context.Context, probe *cache.PlanProbe) (hit bool, plan *cost.Plan, herr error) {
	if d.ring == nil {
		return false, nil, nil
	}
	for _, owner := range d.ring.Owners(probe.Key, d.replicas) {
		if owner.ID == d.self.ID {
			continue
		}
		raw, negative, ok, err := d.client.Get(ctx, owner.ID, probe.Key, probe.NegKey)
		switch {
		case err != nil:
			d.peerFillErrors.Add(1)
		case negative:
			d.peerFillNegs.Add(1)
			d.planner.ImportInfeasible(probe.NegKey)
			d.persist(store.KindNegative, probe.NegKey, nil)
			return true, nil, core.ErrNoDecomposition
		case ok:
			var rec cache.PlanRecord
			if uerr := json.Unmarshal(raw, &rec); uerr == nil {
				if ierr := d.planner.ImportPlan(probe.Key, &rec); ierr == nil {
					// Serve through the exact remapping path a local hit takes,
					// so the peer-filled plan is byte-identical to a local one.
					if plan, lok, lerr := d.planner.LookupPlan(probe); lok {
						d.peerFillHits.Add(1)
						d.persist(store.KindPlan, probe.Key, raw)
						return true, plan, lerr
					}
				}
			}
			d.peerFillErrors.Add(1)
		default:
			d.peerFillMisses.Add(1)
		}
	}
	return false, nil, nil
}

// persist appends one record to the store, if one is configured. Store
// failures (including injected torn writes) never fail serving — the
// store is a warm-boot accelerator, not the source of truth.
func (d *distTier) persist(kind store.Kind, key string, val []byte) {
	if d.store == nil {
		return
	}
	if err := d.store.Append(kind, key, val); err != nil {
		d.appendErrors.Add(1)
	}
}

// pushToOwners enqueues an async write-through to every owner of the key
// so a result this replica computed cold lands on the whole replica set.
// A full queue parks the push as a hint instead of dropping it.
func (d *distTier) pushToOwners(probe *cache.PlanProbe, raw []byte, negative bool) {
	if d.ring == nil {
		return
	}
	for _, owner := range d.ring.Owners(probe.Key, d.replicas) {
		if owner.ID == d.self.ID {
			continue
		}
		it := pushItem{owner: owner.ID, negative: negative}
		if negative {
			it.key = probe.NegKey
		} else {
			it.key = probe.Key
			it.rec = raw
		}
		d.pushMu.Lock()
		if d.pushClosed {
			d.pushMu.Unlock()
			d.hint(it)
			continue
		}
		select {
		case d.pushq <- it:
		default:
			d.pushDropped.Add(1)
			d.hint(it)
		}
		d.pushMu.Unlock()
	}
}

func (d *distTier) drainPushes() {
	defer d.pushWG.Done()
	for it := range d.pushq {
		if d.closing.Load() {
			// Teardown: don't burn dial timeouts on a dying process — park
			// the remainder as hints; a persistent hint log carries them
			// across the restart.
			d.hint(it)
			continue
		}
		var err error
		if it.negative {
			err = d.client.PutNegative(context.Background(), it.owner, it.key)
		} else {
			err = d.client.Put(context.Background(), it.owner, it.key, it.rec)
		}
		if err != nil {
			d.pushErrors.Add(1)
			d.hint(it)
		} else {
			d.pushSent.Add(1)
		}
	}
}

// hint parks one undeliverable push in the handoff queue.
func (d *distTier) hint(it pushItem) {
	if d.hints == nil {
		return
	}
	switch d.hints.add(it) {
	case hintAdded:
		d.hintsQueued.Add(1)
	case hintDropped:
		d.hintsDropped.Add(1)
	}
}

// hintDrainLoop periodically replays parked hints toward their owners.
func (d *distTier) hintDrainLoop(interval time.Duration) {
	defer d.drainWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.drainStop:
			return
		case <-t.C:
			d.drainHints()
		}
	}
}

// drainHints attempts one replay pass over the queued hints. An owner
// whose breaker is open (or whose first replay fails) is skipped for the
// rest of the pass — its hints wait for the breaker's half-open probe to
// readmit traffic. The pass tolerates loss: a failed replay keeps the
// hint, and the backing log is compacted only when the queue fully drains.
func (d *distTier) drainHints() {
	if d.hints == nil || d.closing.Load() {
		return
	}
	skip := make(map[string]bool)
	for _, it := range d.hints.snapshot() {
		if skip[it.owner] {
			continue
		}
		// Chaos: a lossy drain path — Fail keeps the hint queued for the
		// next pass, Delay stalls the drainer mid-pass.
		if chaos.Hit(chaos.ServerHintDrain, chaos.Delay|chaos.Fail)&chaos.Fail != 0 {
			d.hintErrors.Add(1)
			continue
		}
		var err error
		if it.negative {
			err = d.client.PutNegative(context.Background(), it.owner, it.key)
		} else {
			err = d.client.Put(context.Background(), it.owner, it.key, it.rec)
		}
		switch {
		case err == nil:
			d.hintsReplayed.Add(1)
			d.hints.remove(it)
		case errors.Is(err, cluster.ErrBreakerOpen):
			// Expected while the owner is dark; not an error, just not yet.
			skip[it.owner] = true
		default:
			d.hintErrors.Add(1)
			skip[it.owner] = true
		}
	}
	if d.hints.pending() == 0 {
		d.hints.compact()
	}
}

// teardown releases everything the tier started. Idempotent enough for
// both the construction error path and Close.
func (d *distTier) teardown() {
	d.closing.Store(true)
	if d.drainStop != nil {
		close(d.drainStop)
		d.drainWG.Wait()
		d.drainStop = nil
	}
	if d.pushq != nil {
		d.pushMu.Lock()
		if !d.pushClosed {
			d.pushClosed = true
			close(d.pushq)
		}
		d.pushMu.Unlock()
		d.pushWG.Wait()
	}
	if d.client != nil {
		d.client.Close()
	}
	if d.peerSrv != nil {
		d.peerSrv.Close()
	}
	if d.hints != nil {
		d.hints.close()
	}
	if d.store != nil {
		d.store.Close()
	}
}

// peerBackend exposes the planner's warm tier to peers over the cluster
// RPC.
type peerBackend struct{ d *distTier }

func (b peerBackend) GetRecord(key, negKey string) ([]byte, bool, bool) {
	d := b.d
	if negKey != "" && d.planner.ExportInfeasible(negKey) {
		d.peerServes.Add(1)
		return nil, true, true
	}
	rec, ok := d.planner.ExportPlan(key)
	if !ok {
		return nil, false, false
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, false, false
	}
	d.peerServes.Add(1)
	return raw, false, true
}

func (b peerBackend) PutRecord(key string, raw []byte) error {
	var rec cache.PlanRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return fmt.Errorf("server: peer push: %w", err)
	}
	if err := b.d.planner.ImportPlan(key, &rec); err != nil {
		return err
	}
	b.d.peerImports.Add(1)
	b.d.persist(store.KindPlan, key, raw)
	return nil
}

func (b peerBackend) PutNegative(key string) error {
	b.d.planner.ImportInfeasible(key)
	b.d.peerImports.Add(1)
	b.d.persist(store.KindNegative, key, nil)
	return nil
}

// clusterStats assembles the /v1/stats cluster section.
func (d *distTier) clusterStats() *ClusterStatsResponse {
	if d == nil || d.ring == nil {
		return nil
	}
	hits := d.peerFillHits.Load()
	negs := d.peerFillNegs.Load()
	misses := d.peerFillMisses.Load()
	errs := d.peerFillErrors.Load()
	resp := &ClusterStatsResponse{
		Node:           d.self.ID,
		PeerAddr:       d.peerLn.Addr().String(),
		Members:        d.ring.Members(),
		Replicas:       d.replicas,
		OwnedShare:     d.ring.Share(d.self.ID),
		PeerHealthy:    map[string]bool{},
		PeerBreaker:    map[string]string{},
		PeerFills:      hits + negs,
		PeerFillMisses: misses,
		PeerFillErrors: errs,
		PeerServes:     d.peerServes.Load(),
		PeerImports:    d.peerImports.Load(),
		PushesSent:     d.pushSent.Load(),
		PushesDropped:  d.pushDropped.Load(),
		PushErrors:     d.pushErrors.Load(),
		HintsQueued:    d.hintsQueued.Load(),
		HintsDropped:   d.hintsDropped.Load(),
		HintsReplayed:  d.hintsReplayed.Load(),
		HintErrors:     d.hintErrors.Load(),
		HintsPending:   d.hints.pending(),
	}
	if attempts := hits + negs + misses + errs; attempts > 0 {
		resp.PeerFillHitRate = float64(hits+negs) / float64(attempts)
	}
	for id, st := range d.client.BreakerStates() {
		resp.PeerHealthy[id] = st != cluster.BreakerOpen
		resp.PeerBreaker[id] = st.String()
	}
	return resp
}

// storeStats assembles the /v1/stats store section.
func (d *distTier) storeStats() *StoreStatsResponse {
	if d == nil || d.store == nil {
		return nil
	}
	return &StoreStatsResponse{
		Stats:           d.store.Stats(),
		LoadSeconds:     d.loadSeconds,
		LoadedPlans:     d.loadedPlans,
		LoadedNegatives: d.loadedNegs,
		AppendErrors:    d.appendErrors.Load(),
	}
}

// writeMetrics appends the tier's Prometheus series to the exposition.
func (d *distTier) writeMetrics(w io.Writer) {
	if d.ring != nil {
		fmt.Fprintln(w, "# HELP planserver_cluster_owned_share Fraction of the plan keyspace this node owns.")
		fmt.Fprintln(w, "# TYPE planserver_cluster_owned_share gauge")
		fmt.Fprintf(w, "planserver_cluster_owned_share{node=%q} %g\n", d.self.ID, d.ring.Share(d.self.ID))
		fmt.Fprintln(w, "# HELP planserver_peer_fetches_total Peer warm-fill attempts by outcome.")
		fmt.Fprintln(w, "# TYPE planserver_peer_fetches_total counter")
		fmt.Fprintf(w, "planserver_peer_fetches_total{outcome=\"hit\"} %d\n", d.peerFillHits.Load())
		fmt.Fprintf(w, "planserver_peer_fetches_total{outcome=\"negative\"} %d\n", d.peerFillNegs.Load())
		fmt.Fprintf(w, "planserver_peer_fetches_total{outcome=\"miss\"} %d\n", d.peerFillMisses.Load())
		fmt.Fprintf(w, "planserver_peer_fetches_total{outcome=\"error\"} %d\n", d.peerFillErrors.Load())
		fmt.Fprintln(w, "# HELP planserver_peer_serves_total Warm answers served to peers.")
		fmt.Fprintln(w, "# TYPE planserver_peer_serves_total counter")
		fmt.Fprintf(w, "planserver_peer_serves_total %d\n", d.peerServes.Load())
		fmt.Fprintln(w, "# HELP planserver_peer_imports_total Records installed by peer pushes.")
		fmt.Fprintln(w, "# TYPE planserver_peer_imports_total counter")
		fmt.Fprintf(w, "planserver_peer_imports_total %d\n", d.peerImports.Load())
		fmt.Fprintln(w, "# HELP planserver_peer_pushes_total Write-through pushes toward owners by outcome.")
		fmt.Fprintln(w, "# TYPE planserver_peer_pushes_total counter")
		fmt.Fprintf(w, "planserver_peer_pushes_total{outcome=\"sent\"} %d\n", d.pushSent.Load())
		fmt.Fprintf(w, "planserver_peer_pushes_total{outcome=\"dropped\"} %d\n", d.pushDropped.Load())
		fmt.Fprintf(w, "planserver_peer_pushes_total{outcome=\"error\"} %d\n", d.pushErrors.Load())
		fmt.Fprintln(w, "# HELP planserver_peer_breaker_state Per-peer circuit breaker state (0=closed, 1=half-open, 2=open).")
		fmt.Fprintln(w, "# TYPE planserver_peer_breaker_state gauge")
		states := d.client.BreakerStates()
		for _, m := range d.ring.Members() {
			if m.ID != d.self.ID {
				fmt.Fprintf(w, "planserver_peer_breaker_state{peer=%q} %d\n", m.ID, int(states[m.ID]))
			}
		}
		fmt.Fprintln(w, "# HELP planserver_hints_total Hinted-handoff events by kind.")
		fmt.Fprintln(w, "# TYPE planserver_hints_total counter")
		fmt.Fprintf(w, "planserver_hints_total{event=\"queued\"} %d\n", d.hintsQueued.Load())
		fmt.Fprintf(w, "planserver_hints_total{event=\"dropped\"} %d\n", d.hintsDropped.Load())
		fmt.Fprintf(w, "planserver_hints_total{event=\"replayed\"} %d\n", d.hintsReplayed.Load())
		fmt.Fprintf(w, "planserver_hints_total{event=\"error\"} %d\n", d.hintErrors.Load())
		fmt.Fprintln(w, "# HELP planserver_hints_pending Hints currently queued for handoff.")
		fmt.Fprintln(w, "# TYPE planserver_hints_pending gauge")
		fmt.Fprintf(w, "planserver_hints_pending %d\n", d.hints.pending())
	}
	if d.store != nil {
		st := d.store.Stats()
		fmt.Fprintln(w, "# HELP planserver_store_segments Plan store segment count.")
		fmt.Fprintln(w, "# TYPE planserver_store_segments gauge")
		fmt.Fprintf(w, "planserver_store_segments %d\n", st.Segments)
		fmt.Fprintln(w, "# HELP planserver_store_bytes Plan store size in bytes.")
		fmt.Fprintln(w, "# TYPE planserver_store_bytes gauge")
		fmt.Fprintf(w, "planserver_store_bytes %d\n", st.Bytes)
		fmt.Fprintln(w, "# HELP planserver_store_records Records replayed at open plus appended since.")
		fmt.Fprintln(w, "# TYPE planserver_store_records gauge")
		fmt.Fprintf(w, "planserver_store_records %d\n", st.Records)
		fmt.Fprintln(w, "# HELP planserver_store_load_seconds Time spent warm-loading the store at boot.")
		fmt.Fprintln(w, "# TYPE planserver_store_load_seconds gauge")
		fmt.Fprintf(w, "planserver_store_load_seconds %g\n", d.loadSeconds)
		fmt.Fprintln(w, "# HELP planserver_store_loaded_records Records imported at boot by kind.")
		fmt.Fprintln(w, "# TYPE planserver_store_loaded_records gauge")
		fmt.Fprintf(w, "planserver_store_loaded_records{kind=\"plan\"} %d\n", d.loadedPlans)
		fmt.Fprintf(w, "planserver_store_loaded_records{kind=\"negative\"} %d\n", d.loadedNegs)
		fmt.Fprintln(w, "# HELP planserver_store_append_errors_total Store appends that failed (serving continued).")
		fmt.Fprintln(w, "# TYPE planserver_store_append_errors_total counter")
		fmt.Fprintf(w, "planserver_store_append_errors_total %d\n", d.appendErrors.Load())
	}
}
