// Package optimizer implements the quantitative-only baseline of the
// paper's experiments ("CommDB"): a Selinger/System-R dynamic program over
// left-deep join orders driven by the same statistics and estimation module
// as cost-k-decomp, but blind to query structure — no semijoin reduction,
// no projection pushing (Section 1.2's description of commercial
// optimizers).
package optimizer

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
)

// Plan searches all left-deep join orders (avoiding cross products unless
// unavoidable) and returns the cheapest under the textbook cost model,
// together with its estimated cost.
func Plan(q *cq.Query, cat *db.Catalog) (engine.LeftDeepPlan, float64, error) {
	n := len(q.Atoms)
	if n == 0 {
		return engine.LeftDeepPlan{}, 0, fmt.Errorf("optimizer: empty query")
	}
	if n > 20 {
		return engine.LeftDeepPlan{}, 0, fmt.Errorf("optimizer: %d atoms exceeds the 20-atom DP limit", n)
	}
	ests := make([]cost.Est, n)
	for i, a := range q.Atoms {
		st := cat.Stats(a.Predicate)
		if st == nil {
			return engine.LeftDeepPlan{}, 0, fmt.Errorf("optimizer: relation %s not analyzed", a.Predicate)
		}
		rel := cat.Get(a.Predicate)
		mapping := map[string]string{}
		attrs := a.Vars
		if rel != nil && len(rel.Attrs) == len(a.Vars) {
			attrs = rel.Attrs
			for i2, col := range rel.Attrs {
				mapping[col] = a.Vars[i2]
			}
		}
		ests[i] = cost.FromStats(st, attrs, mapping)
	}
	// connected[i][j]: atoms i and j share a variable.
	connected := make([][]bool, n)
	for i := range connected {
		connected[i] = make([]bool, n)
		for j := range connected[i] {
			connected[i][j] = i != j && sharesVar(q.Atoms[i], q.Atoms[j])
		}
	}
	type state struct {
		cost  float64
		est   cost.Est
		order []int
	}
	best := make(map[uint32]*state, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = &state{cost: ests[i].Card, est: ests[i], order: []int{i}}
	}
	// Enumerate masks in increasing popcount order by plain numeric order
	// (any submask is numerically smaller, so predecessors are ready).
	full := uint32(1)<<uint(n) - 1
	for mask := uint32(1); mask <= full; mask++ {
		st, ok := best[mask]
		if !ok {
			continue
		}
		// Does any unjoined atom connect to the current prefix?
		anyConnected := false
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) != 0 {
				continue
			}
			for _, i := range st.order {
				if connected[i][j] {
					anyConnected = true
				}
			}
		}
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) != 0 {
				continue
			}
			if anyConnected && !connectsTo(connected, st.order, j) {
				continue // defer cross products while joins are available
			}
			nm := mask | 1<<uint(j)
			nc := st.cost + cost.JoinCost(st.est, ests[j])
			if prev, ok := best[nm]; !ok || nc < prev.cost {
				order := make([]int, len(st.order)+1)
				copy(order, st.order)
				order[len(st.order)] = j
				best[nm] = &state{cost: nc, est: cost.Join(st.est, ests[j]), order: order}
			}
		}
	}
	final, ok := best[full]
	if !ok || math.IsInf(final.cost, 0) {
		return engine.LeftDeepPlan{}, 0, fmt.Errorf("optimizer: no plan found")
	}
	return engine.LeftDeepPlan{Order: final.order}, final.cost, nil
}

func sharesVar(a, b cq.Atom) bool {
	for _, v := range a.Vars {
		for _, w := range b.Vars {
			if v == w {
				return true
			}
		}
	}
	return false
}

func connectsTo(connected [][]bool, order []int, j int) bool {
	for _, i := range order {
		if connected[i][j] {
			return true
		}
	}
	return false
}
