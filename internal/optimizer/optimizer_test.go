package optimizer

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
)

func analyzedCatalog(t *testing.T, rng *rand.Rand, q *cq.Query, card int) *db.Catalog {
	t.Helper()
	cat := db.NewCatalog()
	for _, a := range q.Atoms {
		attrs := make([]string, len(a.Vars))
		dist := map[string]int{}
		for i := range attrs {
			attrs[i] = "c" + string(rune('0'+i))
			dist[attrs[i]] = 1 + rng.Intn(8)
		}
		cat.Put(db.MustGenerate(rng, db.Spec{Name: a.Predicate, Attrs: attrs, Card: card, Distinct: dist}))
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestPlanCoversAllAtomsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	q := cq.Q1()
	cat := analyzedCatalog(t, rng, q, 50)
	plan, c, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != len(q.Atoms) {
		t.Fatalf("plan length %d, want %d", len(plan.Order), len(q.Atoms))
	}
	seen := map[int]bool{}
	for _, i := range plan.Order {
		if seen[i] {
			t.Fatalf("atom %d repeated", i)
		}
		seen[i] = true
	}
	if c <= 0 {
		t.Errorf("cost = %v, want positive", c)
	}
}

func TestPlanAvoidsCrossProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := cq.MustParse("ans :- r(A,B), s(B,C), t(C,D), u(D,E)")
	cat := analyzedCatalog(t, rng, q, 40)
	plan, _, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Every prefix after the first atom must connect to the prefix vars.
	have := map[string]bool{}
	for pos, ai := range plan.Order {
		a := q.Atoms[ai]
		if pos > 0 {
			connected := false
			for _, v := range a.Vars {
				if have[v] {
					connected = true
				}
			}
			if !connected {
				t.Fatalf("cross product at position %d of %v", pos, plan.Order)
			}
		}
		for _, v := range a.Vars {
			have[v] = true
		}
	}
}

func TestPlanExecutesCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	q := cq.MustParse("ans(A,C) :- r(A,B), s(B,C), t(C,A)")
	cat := analyzedCatalog(t, rng, q, 30)
	plan, _, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := engine.EvalLeftDeep(plan, q, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvalNaive(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("optimized plan result differs from naive")
	}
}

// The DP must pick a better-or-equal order than the worst order, and for a
// chain query with one huge relation it should not start with it.
func TestPlanPrefersSelectiveStart(t *testing.T) {
	q := cq.MustParse("ans :- small(A,B), huge(B,C)")
	cat := db.NewCatalog()
	rng := rand.New(rand.NewSource(44))
	cat.Put(db.MustGenerate(rng, db.Spec{Name: "small", Attrs: []string{"x", "y"}, Card: 5,
		Distinct: map[string]int{"x": 5, "y": 3}}))
	cat.Put(db.MustGenerate(rng, db.Spec{Name: "huge", Attrs: []string{"x", "y"}, Card: 5000,
		Distinct: map[string]int{"x": 3, "y": 50}}))
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	plan, _, err := Plan(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[plan.Order[0]].Predicate != "small" {
		t.Errorf("plan starts with %s, want small", q.Atoms[plan.Order[0]].Predicate)
	}
}

func TestPlanErrors(t *testing.T) {
	q := cq.MustParse("ans :- r(A,B)")
	cat := db.NewCatalog()
	r := db.NewRelation("r", "x", "y")
	cat.Put(r) // not analyzed
	if _, _, err := Plan(q, cat); err == nil {
		t.Error("unanalyzed catalog should fail")
	}
}
