package engine

import (
	"testing"

	"repro/internal/db"
)

func rel(name string, attrs []string, rows ...[]db.Value) *db.Relation {
	r := db.NewRelation(name, attrs...)
	for _, row := range rows {
		r.MustAppend(row...)
	}
	return r
}

func TestNaturalJoinBasic(t *testing.T) {
	r := rel("r", []string{"A", "B"}, []db.Value{1, 2}, []db.Value{1, 3}, []db.Value{2, 4})
	s := rel("s", []string{"B", "C"}, []db.Value{2, 10}, []db.Value{3, 11}, []db.Value{9, 12})
	j := NaturalJoin(r, s)
	want := rel("w", []string{"A", "B", "C"},
		[]db.Value{1, 2, 10}, []db.Value{1, 3, 11})
	if !j.Equal(want) {
		t.Errorf("join = %v %v, want %v", j.Attrs, j.Tuples, want.Tuples)
	}
}

func TestNaturalJoinBuildSideSwap(t *testing.T) {
	// Exercise both build-side choices: r smaller, then s smaller.
	small := rel("small", []string{"A"}, []db.Value{1})
	big := rel("big", []string{"A", "B"}, []db.Value{1, 1}, []db.Value{1, 2}, []db.Value{2, 3})
	j1 := NaturalJoin(small, big)
	j2 := NaturalJoin(big, small)
	if j1.Card() != 2 || j2.Card() != 2 {
		t.Errorf("cards: %d, %d, want 2, 2", j1.Card(), j2.Card())
	}
	// Schema order differs but the A/B values must agree as sets.
	p1, _ := Project(j1, []string{"A", "B"})
	p2, _ := Project(j2, []string{"A", "B"})
	if !p1.Equal(p2) {
		t.Error("join results disagree across build sides")
	}
}

func TestNaturalJoinCrossProduct(t *testing.T) {
	r := rel("r", []string{"A"}, []db.Value{1}, []db.Value{2})
	s := rel("s", []string{"B"}, []db.Value{7}, []db.Value{8}, []db.Value{9})
	j := NaturalJoin(r, s)
	if j.Card() != 6 {
		t.Errorf("cross product card = %d, want 6", j.Card())
	}
}

func TestNaturalJoinMultiAttr(t *testing.T) {
	r := rel("r", []string{"A", "B", "C"}, []db.Value{1, 2, 3}, []db.Value{1, 2, 4})
	s := rel("s", []string{"B", "A", "D"}, []db.Value{2, 1, 9}, []db.Value{2, 5, 9})
	j := NaturalJoin(r, s)
	if j.Card() != 2 { // both r tuples match (2,1,9) on A=1,B=2
		t.Errorf("card = %d, want 2", j.Card())
	}
	for _, tup := range j.Tuples {
		if tup[j.AttrIndex("D")] != 9 {
			t.Error("D should be 9")
		}
	}
}

func TestSemijoin(t *testing.T) {
	r := rel("r", []string{"A", "B"}, []db.Value{1, 2}, []db.Value{3, 4}, []db.Value{5, 6})
	s := rel("s", []string{"B"}, []db.Value{2}, []db.Value{6})
	sj := Semijoin(r, s)
	want := rel("w", []string{"A", "B"}, []db.Value{1, 2}, []db.Value{5, 6})
	if !sj.Equal(want) {
		t.Errorf("semijoin = %v, want %v", sj.Tuples, want.Tuples)
	}
}

func TestSemijoinNoSharedAttrs(t *testing.T) {
	r := rel("r", []string{"A"}, []db.Value{1}, []db.Value{2})
	sEmpty := rel("s", []string{"B"})
	sFull := rel("s", []string{"B"}, []db.Value{9})
	if got := Semijoin(r, sEmpty); got.Card() != 0 {
		t.Error("semijoin with empty unrelated relation should be empty")
	}
	if got := Semijoin(r, sFull); got.Card() != 2 {
		t.Error("semijoin with non-empty unrelated relation should be r")
	}
}

func TestProject(t *testing.T) {
	r := rel("r", []string{"A", "B", "C"},
		[]db.Value{1, 2, 3}, []db.Value{1, 2, 4}, []db.Value{5, 2, 3})
	p, err := Project(r, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	want := rel("w", []string{"A", "B"}, []db.Value{1, 2}, []db.Value{5, 2})
	if !p.Equal(want) {
		t.Errorf("project = %v, want %v", p.Tuples, want.Tuples)
	}
	if _, err := Project(r, []string{"Z"}); err == nil {
		t.Error("projection onto missing attr should fail")
	}
	// Projection onto zero attributes: Boolean semantics.
	b, err := Project(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Card() != 1 || b.Arity() != 0 {
		t.Errorf("empty projection: card %d arity %d", b.Card(), b.Arity())
	}
	empty := rel("e", []string{"A"})
	b2, _ := Project(empty, nil)
	if b2.Card() != 0 {
		t.Error("empty projection of empty relation should be empty")
	}
}

func TestDistinct(t *testing.T) {
	r := rel("r", []string{"A"}, []db.Value{1}, []db.Value{1}, []db.Value{2})
	d := Distinct(r)
	if d.Card() != 2 || d.Name != "r" {
		t.Errorf("distinct = %v", d)
	}
}

// Join with negative-looking values exercises the byte-packing in joinKey.
func TestJoinKeyValueRanges(t *testing.T) {
	big := db.Value(1<<30 + 12345)
	r := rel("r", []string{"A"}, []db.Value{big}, []db.Value{-big})
	s := rel("s", []string{"A"}, []db.Value{big})
	j := NaturalJoin(r, s)
	if j.Card() != 1 {
		t.Errorf("card = %d, want 1", j.Card())
	}
}
