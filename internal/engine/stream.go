package engine

import (
	"fmt"
	"io"
	"iter"

	"repro/internal/chaos"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/hypertree"
)

// Streaming, vectorized Yannakakis. EvalDecomposition materializes the
// whole answer on the calling goroutine; this file is its pull-based twin.
// Construction (phase A) is eager: atoms bind to columnar base storage
// through a ColStore, each decomposition vertex computes E(p) =
// π_χ(p)(⋈_{h∈λ(p)} rel(h)) with vectorized hash joins whose build side is
// always the base atom (so the ColStore's one-index-per-base-relation is
// shared across aliases — the self-join follow-up from the alias-cache PR),
// and the bottom-up + top-down semijoin passes fully reduce every vertex.
// Enumeration (phase B) is lazy: Next() walks a backtracking cursor over
// the reduced vertices in preorder and yields output rows in batches of
// BatchSize, deduplicating through a compact packed-row set. Full reduction
// guarantees the walk never dead-ends, so the per-row cost is a handful of
// hash lookups — and the only answer-proportional memory is the dedup
// fingerprint arena, never the materialized answer.

// valueSource locates an output variable: preorder vertex index + column.
type valueSource struct{ node, col int }

// vertexState is the per-decomposition-vertex runtime state of a stream.
type vertexState struct {
	node   *hypertree.Node
	parent int // preorder index of the parent; -1 for the root
	rel    *colRel
	// Enumeration wiring: candidates for this vertex, given the parent's
	// chosen row, are idx.lookup(key packed from the parent's columns at
	// parentKey). By the connectedness condition the separator with the
	// parent is the full join condition against every earlier vertex.
	parentKey []int
	idx       *keyIndex
}

// colAtom is an atom bound to columnar base storage: column vectors named
// by the atom's variables. Columns alias the base relation's vectors (and
// the shared rowid vector for a fresh final variable) — binding is
// zero-copy, so k aliases of one relation scan one copy of the data.
type colAtom struct {
	base      string // catalog name of the base relation
	baseArity int    // columns < baseArity map 1:1 onto base columns
	rel       *colRel
}

// bindColAtoms is the columnar BindAtoms: every atom of q, keyed by atom
// name, bound to its base relation's column vectors through cs.
func bindColAtoms(q *cq.Query, cs *ColStore) (map[string]*colAtom, error) {
	out := make(map[string]*colAtom, len(q.Atoms))
	for _, a := range q.Atoms {
		c, err := cs.Relation(a.Predicate)
		if err != nil {
			return nil, fmt.Errorf("engine: no relation for atom %s", a.Name())
		}
		cols := c.Cols
		vars := a.Vars
		if n := len(vars); n > 0 && cq.IsFreshVariable(vars[n-1]) {
			rowid, err := cs.RowIDs(a.Predicate)
			if err != nil {
				return nil, err
			}
			cols = append(append([][]db.Value(nil), cols...), rowid)
		}
		if len(cols) != len(vars) {
			return nil, fmt.Errorf("engine: atom %s has arity %d but relation has %d columns",
				a.Name(), len(vars), len(cols))
		}
		out[a.Name()] = &colAtom{
			base:      a.Predicate,
			baseArity: c.Arity(),
			rel:       &colRel{attrs: vars, cols: cols, n: c.Len()},
		}
	}
	return out, nil
}

// atomIndex returns b's hash index on key positions si: the shared
// per-base-relation index from the ColStore when every key column is a
// base column (atom column positions equal base positions by construction),
// a local build otherwise (a key touching the appended rowid column).
func atomIndex(b *colAtom, si []int, cs *ColStore) (*keyIndex, error) {
	for _, j := range si {
		if j >= b.baseArity {
			return buildKeyIndex(b.rel.cols, b.rel.length(), si), nil
		}
	}
	return cs.Index(b.base, si)
}

// vecJoin hash-joins cur with the bound atom b, probing cur's rows against
// b's index — built through the ColStore so aliases of one base relation
// share one hash table.
func vecJoin(cur *colRel, b *colAtom, cs *ColStore, m *Metrics) (*colRel, error) {
	ri, si := sharedCols(cur, b.rel)
	idx, err := atomIndex(b, si, cs)
	if err != nil {
		return nil, err
	}
	shared := make([]bool, len(b.rel.attrs))
	for _, j := range si {
		shared[j] = true
	}
	attrs := append([]string(nil), cur.attrs...)
	var bKeep []int
	for j, a := range b.rel.attrs {
		if !shared[j] {
			attrs = append(attrs, a)
			bKeep = append(bKeep, j)
		}
	}
	outCols := make([][]db.Value, len(attrs))
	outN := 0
	key := make([]byte, 0, 4*len(ri))
	for row := 0; row < cur.length(); row++ {
		key = appendRowKey(key[:0], cur.cols, ri, row)
		for _, match := range idx.lookup(key) {
			for ci := range cur.cols {
				outCols[ci] = append(outCols[ci], cur.cols[ci][row])
			}
			for k, j := range bKeep {
				outCols[len(cur.cols)+k] = append(outCols[len(cur.cols)+k], b.rel.cols[j][match])
			}
			outN++
		}
	}
	if m != nil {
		m.Joins++
		m.IntermediateTuples += int64(outN)
	}
	return &colRel{attrs: attrs, cols: outCols, n: outN}, nil
}

// projectDistinct projects cur onto the named attributes with duplicate
// elimination — the π of E(p).
func projectDistinct(cur *colRel, names []string, m *Metrics) (*colRel, error) {
	pos := make([]int, len(names))
	for i, a := range names {
		p := cur.attrIndex(a)
		if p < 0 {
			return nil, fmt.Errorf("engine: projection attribute %s not in relation", a)
		}
		pos[i] = p
	}
	seen := newRowSet(len(pos))
	outCols := make([][]db.Value, len(pos))
	kept := 0
	key := make([]byte, 0, 4*len(pos))
	for row := 0; row < cur.length(); row++ {
		key = appendRowKey(key[:0], cur.cols, pos, row)
		if !seen.insert(key) {
			continue
		}
		for i, p := range pos {
			outCols[i] = append(outCols[i], cur.cols[p][row])
		}
		kept++
	}
	if m != nil {
		m.IntermediateTuples += int64(kept)
	}
	return &colRel{attrs: append([]string(nil), names...), cols: outCols, n: kept}, nil
}

// vecSemijoin filters left to the rows whose key on the shared attributes
// appears in right (⋉). With no shared attributes this degenerates
// correctly: left survives unchanged iff right is non-empty.
func vecSemijoin(left, right *colRel, m *Metrics) *colRel {
	ri, si := sharedCols(left, right)
	idx := buildKeyIndex(right.cols, right.length(), si)
	outCols := make([][]db.Value, len(left.cols))
	kept := 0
	key := make([]byte, 0, 4*len(ri))
	for row := 0; row < left.length(); row++ {
		key = appendRowKey(key[:0], left.cols, ri, row)
		if !idx.contains(key) {
			continue
		}
		for ci := range left.cols {
			outCols[ci] = append(outCols[ci], left.cols[ci][row])
		}
		kept++
	}
	if m != nil {
		m.Semijoins++
		m.IntermediateTuples += int64(kept)
	}
	return &colRel{attrs: left.attrs, cols: outCols, n: kept}
}

// Stream is an incrementally-evaluated query answer: a pull cursor over the
// fully reduced decomposition. It is not safe for concurrent use. Streams
// hold no goroutines or file handles — Close just drops references.
type Stream struct {
	m      *Metrics
	cols   []string // output column names (the query's head variables)
	outSrc []valueSource
	states []*vertexState

	boolean bool
	boolVal bool

	started bool
	done    bool
	cands   [][]int32
	cur     []int
	rows    []int32
	keyBuf  []byte
	dedup   *rowSet
	err     error
}

// EvalDecompositionStream is the streaming, vectorized counterpart of
// EvalDecomposition: same complete-decomposition contract, same answer row
// set, but the answer is yielded in batches through the returned Stream
// instead of materialized. A fresh ColStore is built over cat; servers that
// execute many queries against one catalog snapshot should share a store
// via EvalDecompositionStreamWith.
func EvalDecompositionStream(d *hypertree.Decomposition, q *cq.Query, cat *db.Catalog, m *Metrics) (*Stream, error) {
	return EvalDecompositionStreamWith(NewColStore(cat), d, q, m)
}

// EvalDecompositionStreamWith evaluates over an existing ColStore (which
// fixes the catalog snapshot), sharing columnar conversions and hash
// indexes with every other evaluation on the same store.
func EvalDecompositionStreamWith(cs *ColStore, d *hypertree.Decomposition, q *cq.Query, m *Metrics) (*Stream, error) {
	if !d.IsComplete() {
		return nil, fmt.Errorf("engine: decomposition is not complete")
	}
	bound, err := bindColAtoms(q, cs)
	if err != nil {
		return nil, err
	}
	h := d.H
	chiNames := func(n *hypertree.Node) []string {
		var names []string
		n.Chi.ForEach(func(v int) { names = append(names, h.VarName(v)) })
		return names
	}

	// Preorder vertex list with parent indices.
	var states []*vertexState
	parentIdx := map[*hypertree.Node]int{}
	d.Walk(func(n, p *hypertree.Node) {
		pi := -1
		if p != nil {
			pi = parentIdx[p]
		}
		parentIdx[n] = len(states)
		states = append(states, &vertexState{node: n, parent: pi})
	})

	// Per-vertex expressions E(p), joined vectorized with the hash side
	// always on the base atom so the ColStore's shared indexes serve every
	// alias of a relation.
	for _, st := range states {
		var cur *colRel
		for _, e := range st.node.Lambda {
			b, ok := bound[h.EdgeName(e)]
			if !ok {
				return nil, fmt.Errorf("engine: edge %s has no bound relation", h.EdgeName(e))
			}
			if cur == nil {
				cur = b.rel
				continue
			}
			if cur, err = vecJoin(cur, b, cs, m); err != nil {
				return nil, err
			}
		}
		if st.rel, err = projectDistinct(cur, chiNames(st.node), m); err != nil {
			return nil, err
		}
	}

	// Bottom-up semijoin pass. Children follow their parent in preorder, so
	// a reverse sweep reduces every child before its parent absorbs it.
	for i := len(states) - 1; i >= 1; i-- {
		st := states[i]
		p := states[st.parent]
		p.rel = vecSemijoin(p.rel, st.rel, m)
	}

	if q.IsBoolean() {
		return &Stream{m: m, boolean: true, boolVal: states[0].rel.length() > 0}, nil
	}

	// Top-down semijoin pass: full reduction. A forward sweep visits every
	// parent (already reduced from above) before its children.
	for i := 1; i < len(states); i++ {
		st := states[i]
		st.rel = vecSemijoin(st.rel, states[st.parent].rel, m)
	}

	// Enumeration wiring: each non-root vertex indexed on its separator
	// with the parent.
	for i := 1; i < len(states); i++ {
		st := states[i]
		ri, si := sharedCols(states[st.parent].rel, st.rel)
		st.parentKey = ri
		st.idx = buildKeyIndex(st.rel.cols, st.rel.length(), si)
	}

	// Output sources: the first preorder vertex carrying each head variable.
	outSrc := make([]valueSource, len(q.Out))
	for oi, v := range q.Out {
		found := false
		for ni, st := range states {
			if ci := st.rel.attrIndex(v); ci >= 0 {
				outSrc[oi] = valueSource{node: ni, col: ci}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("engine: output variable %s not covered by the decomposition", v)
		}
	}

	return &Stream{
		m:      m,
		cols:   append([]string(nil), q.Out...),
		outSrc: outSrc,
		states: states,
		cands:  make([][]int32, len(states)),
		cur:    make([]int, len(states)),
		rows:   make([]int32, len(states)),
		dedup:  newRowSet(len(q.Out)),
	}, nil
}

// Columns returns the output column names (nil for a Boolean query).
func (s *Stream) Columns() []string { return s.cols }

// Boolean reports whether the stream answers a Boolean query and, if so,
// the answer. A true Boolean stream still yields one empty row, so Drain
// reconstructs the buffered evaluator's relation shape exactly.
func (s *Stream) Boolean() (val, isBoolean bool) { return s.boolVal, s.boolean }

// nextAssignment advances the backtracking cursor to the next complete
// choice of one row per vertex. Full reduction means no branch dead-ends.
func (s *Stream) nextAssignment() bool {
	if s.done {
		return false
	}
	L := len(s.states)
	var l int
	if !s.started {
		s.started = true
		l = 0
		root := s.states[0].rel
		all := make([]int32, root.length())
		for i := range all {
			all[i] = int32(i)
		}
		s.cands[0] = all
		s.cur[0] = -1
	} else {
		l = L - 1
	}
	for {
		s.cur[l]++
		if s.cur[l] >= len(s.cands[l]) {
			l--
			if l < 0 {
				s.done = true
				return false
			}
			continue
		}
		s.rows[l] = s.cands[l][s.cur[l]]
		if l == L-1 {
			return true
		}
		l++
		st := s.states[l]
		p := s.states[st.parent]
		s.keyBuf = appendRowKey(s.keyBuf[:0], p.rel.cols, st.parentKey, int(s.rows[st.parent]))
		s.cands[l] = st.idx.lookup(s.keyBuf)
		s.cur[l] = -1
	}
}

// Next returns the next batch of at most BatchSize output rows; io.EOF
// signals a completed stream. Returned rows are freshly allocated and owned
// by the caller. Every pull consults the EngineBatch chaos point
// (Delay|Fail), so injected mid-stream faults surface here as errors the
// serving layer must turn into an error trailer.
func (s *Stream) Next() ([][]db.Value, error) {
	if s.err != nil {
		return nil, s.err
	}
	if eff := chaos.Hit(chaos.EngineBatch, chaos.Delay|chaos.Fail); eff&chaos.Fail != 0 {
		s.err = fmt.Errorf("engine: batch pull: %w", chaos.ErrInjected)
		return nil, s.err
	}
	if s.boolean {
		if s.done {
			return nil, io.EOF
		}
		s.done = true
		if !s.boolVal {
			return nil, io.EOF
		}
		if s.m != nil {
			s.m.Batches++
		}
		return [][]db.Value{{}}, nil
	}
	var batch [][]db.Value
	for len(batch) < BatchSize {
		if !s.nextAssignment() {
			break
		}
		s.keyBuf = s.keyBuf[:0]
		for _, src := range s.outSrc {
			v := s.states[src.node].rel.cols[src.col][s.rows[src.node]]
			s.keyBuf = append(s.keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		if !s.dedup.insert(s.keyBuf) {
			continue
		}
		row := make([]db.Value, len(s.outSrc))
		for i, src := range s.outSrc {
			row[i] = s.states[src.node].rel.cols[src.col][s.rows[src.node]]
		}
		batch = append(batch, row)
	}
	if len(batch) == 0 {
		return nil, io.EOF
	}
	if s.m != nil {
		s.m.Batches++
	}
	return batch, nil
}

// Close releases the stream's state. Streams are pull-based — no goroutines
// to stop — so Close only drops references; further Next calls return
// io.EOF. Always safe to call, including after an error.
func (s *Stream) Close() error {
	s.done = true
	if s.err == nil {
		s.err = io.EOF
	}
	s.states = nil
	s.cands = nil
	s.dedup = nil
	return nil
}

// RowsSeq adapts the stream to a range-over-func iterator yielding one row
// at a time. A stream error (never io.EOF) is yielded once as (nil, err)
// and terminates the sequence.
func (s *Stream) RowsSeq() iter.Seq2[[]db.Value, error] {
	return func(yield func([]db.Value, error) bool) {
		for {
			batch, err := s.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(nil, err)
				return
			}
			for _, row := range batch {
				if !yield(row, nil) {
					return
				}
			}
		}
	}
}

// Drain pulls the stream to completion and materializes the relation the
// buffered evaluator would have returned — the v1 compatibility path and
// the differential-test bridge. The stream is closed either way.
func Drain(s *Stream) (*db.Relation, error) {
	defer s.Close()
	out := db.NewRelation("ans", s.cols...)
	for {
		batch, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Tuples = append(out.Tuples, batch...)
	}
}
