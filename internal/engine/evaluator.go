package engine

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/hypertree"
)

// Metrics instruments an evaluation: operator counts and the total number
// of intermediate tuples materialized (a machine-independent work measure
// reported alongside wall-clock times in the experiments).
type Metrics struct {
	Joins              int
	Semijoins          int
	IntermediateTuples int64
	Batches            int64 // row batches emitted by the streaming evaluator
}

func (m *Metrics) note(r *db.Relation) *db.Relation {
	if m != nil {
		m.IntermediateTuples += int64(r.Card())
	}
	return r
}

func (m *Metrics) join(r, s *db.Relation) *db.Relation {
	if m != nil {
		m.Joins++
	}
	return m.note(NaturalJoin(r, s))
}

func (m *Metrics) semijoin(r, s *db.Relation) *db.Relation {
	if m != nil {
		m.Semijoins++
	}
	return m.note(Semijoin(r, s))
}

// BindAtoms maps every atom of q — keyed by atom name (alias, or predicate
// when unaliased) — to its catalog base relation with columns renamed to the
// atom's variables (positional correspondence). Two aliases of one base
// relation bind to two independent renamings of the same stored tuples,
// which is how self-joins execute: the relation is scanned once per alias.
// Atoms whose final variable is fresh (cq.WithFreshVariables) bind to the
// relation extended with a row-id column realizing the fresh variable.
func BindAtoms(q *cq.Query, cat *db.Catalog) (map[string]*db.Relation, error) {
	out := make(map[string]*db.Relation, len(q.Atoms))
	for _, a := range q.Atoms {
		rel := cat.Get(a.Predicate)
		if rel == nil {
			return nil, fmt.Errorf("engine: no relation for atom %s", a.Name())
		}
		vars := a.Vars
		if n := len(vars); n > 0 && cq.IsFreshVariable(vars[n-1]) {
			rel = rel.WithRowID("__rowid")
		}
		if len(rel.Attrs) != len(vars) {
			return nil, fmt.Errorf("engine: atom %s has arity %d but relation has %d columns",
				a.Name(), len(vars), len(rel.Attrs))
		}
		mapping := make(map[string]string, len(vars))
		for i, attr := range rel.Attrs {
			mapping[attr] = vars[i]
		}
		out[a.Name()] = rel.Rename(a.Name(), mapping)
	}
	return out, nil
}

// EvalNaive evaluates q by joining all atoms left to right and projecting
// onto the output variables — the brute-force oracle.
func EvalNaive(q *cq.Query, cat *db.Catalog) (*db.Relation, error) {
	bound, err := BindAtoms(q, cat)
	if err != nil {
		return nil, err
	}
	cur := bound[q.Atoms[0].Name()]
	for _, a := range q.Atoms[1:] {
		cur = NaturalJoin(cur, bound[a.Name()])
	}
	return Project(cur, q.Out)
}

// LeftDeepPlan is a join order over atom indices of a query — the plan
// shape commercial optimizers search (Section 1.2).
type LeftDeepPlan struct {
	Order []int
}

// EvalLeftDeep executes a left-deep plan: hash joins in order, keeping all
// columns (no projection pushing, no semijoin reduction — the structural
// information the baseline does not use), with a final projection.
func EvalLeftDeep(plan LeftDeepPlan, q *cq.Query, cat *db.Catalog, m *Metrics) (*db.Relation, error) {
	if len(plan.Order) != len(q.Atoms) {
		return nil, fmt.Errorf("engine: plan covers %d of %d atoms", len(plan.Order), len(q.Atoms))
	}
	bound, err := BindAtoms(q, cat)
	if err != nil {
		return nil, err
	}
	seen := make([]bool, len(q.Atoms))
	var cur *db.Relation
	for _, ai := range plan.Order {
		if ai < 0 || ai >= len(q.Atoms) || seen[ai] {
			return nil, fmt.Errorf("engine: invalid or duplicate atom index %d in plan", ai)
		}
		seen[ai] = true
		r := bound[q.Atoms[ai].Name()]
		if cur == nil {
			cur = m.note(r)
			continue
		}
		cur = m.join(cur, r)
	}
	return Project(cur, q.Out)
}

// EvalDecomposition runs Yannakakis's algorithm over a complete hypertree
// decomposition of (the hypergraph of) q: per-vertex joins E(p) =
// π_χ(p)(⋈_{h∈λ(p)} rel(h)), a bottom-up semijoin pass, a top-down semijoin
// pass (full reduction), and a final bottom-up join projected onto the
// output variables. For Boolean queries the top-down pass and final join
// are skipped: the answer is "root non-empty after reduction".
//
// The decomposition must be complete (every atom strongly covered); use
// Decomposition.Complete or the fresh-variable trick to ensure this.
func EvalDecomposition(d *hypertree.Decomposition, q *cq.Query, cat *db.Catalog, m *Metrics) (*db.Relation, error) {
	if !d.IsComplete() {
		return nil, fmt.Errorf("engine: decomposition is not complete")
	}
	bound, err := BindAtoms(q, cat)
	if err != nil {
		return nil, err
	}
	h := d.H
	chiNames := func(n *hypertree.Node) []string {
		var names []string
		n.Chi.ForEach(func(v int) { names = append(names, h.VarName(v)) })
		return names
	}

	// Per-vertex expressions E(p).
	expr := map[*hypertree.Node]*db.Relation{}
	var evalErr error
	d.Walk(func(n, _ *hypertree.Node) {
		if evalErr != nil {
			return
		}
		var cur *db.Relation
		for _, e := range n.Lambda {
			rel, ok := bound[h.EdgeName(e)]
			if !ok {
				evalErr = fmt.Errorf("engine: edge %s has no bound relation", h.EdgeName(e))
				return
			}
			if cur == nil {
				cur = rel
			} else {
				cur = m.join(cur, rel)
			}
		}
		p, err := Project(cur, chiNames(n))
		if err != nil {
			evalErr = err
			return
		}
		expr[n] = m.note(p)
	})
	if evalErr != nil {
		return nil, evalErr
	}

	// Bottom-up semijoin pass (the Boolean half of Yannakakis).
	var up func(n *hypertree.Node)
	up = func(n *hypertree.Node) {
		for _, c := range n.Children {
			up(c)
			expr[n] = m.semijoin(expr[n], expr[c])
		}
	}
	up(d.Root)

	if q.IsBoolean() {
		out := db.NewRelation("ans")
		if expr[d.Root].Card() > 0 {
			out.Tuples = append(out.Tuples, []db.Value{})
		}
		return out, nil
	}

	// Top-down semijoin pass: full reduction.
	var down func(n *hypertree.Node)
	down = func(n *hypertree.Node) {
		for _, c := range n.Children {
			expr[c] = m.semijoin(expr[c], expr[n])
			down(c)
		}
	}
	down(d.Root)

	// Final bottom-up join, projecting each intermediate onto χ(p) plus the
	// output variables already collected in the subtree.
	outSet := map[string]bool{}
	for _, v := range q.Out {
		outSet[v] = true
	}
	var collect func(n *hypertree.Node) (*db.Relation, error)
	collect = func(n *hypertree.Node) (*db.Relation, error) {
		cur := expr[n]
		for _, c := range n.Children {
			sub, err := collect(c)
			if err != nil {
				return nil, err
			}
			cur = m.join(cur, sub)
		}
		keep := chiNames(n)
		for _, a := range cur.Attrs {
			if outSet[a] && !containsStr(keep, a) {
				keep = append(keep, a)
			}
		}
		return Project(cur, intersectAttrs(keep, cur))
	}
	res, err := collect(d.Root)
	if err != nil {
		return nil, err
	}
	return Project(res, q.Out)
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func intersectAttrs(names []string, r *db.Relation) []string {
	var out []string
	for _, n := range names {
		if r.HasAttr(n) {
			out = append(out, n)
		}
	}
	return out
}

// Answer interprets a Boolean query result.
func Answer(r *db.Relation) bool { return r.Card() > 0 }
