package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/db"
)

// ColStore is the columnar view of a catalog: lazily transposed column
// vectors, rowid columns for the fresh-variable trick, and — the PR 5
// follow-up — ONE shared hash index per (base relation, key columns)
// instead of one hash table per alias. Two aliases of a relation joining
// on the same column positions probe the same index; so do two requests
// against the same catalog when the serving layer caches the store per
// catalog version. All methods are safe for concurrent use.
//
// A ColStore is bound to one immutable catalog snapshot. The serving
// layer keys stores by (tenant, catalog version), so a catalog PUT simply
// strands the old store for the collector.
type ColStore struct {
	cat *db.Catalog

	mu      sync.Mutex
	cols    map[string]*db.ColRelation
	rowids  map[string][]db.Value
	indexes map[string]*keyIndex

	// Counters for the stats surface: conversions is the number of
	// relations transposed, builds the number of indexes built, shares the
	// number of Index calls answered by an already-built index — the
	// measure of cross-alias (and cross-request) hash-table sharing.
	conversions int
	builds      int
	shares      int
	indexBytes  int
}

// NewColStore returns an empty columnar view over cat.
func NewColStore(cat *db.Catalog) *ColStore {
	return &ColStore{
		cat:     cat,
		cols:    make(map[string]*db.ColRelation),
		rowids:  make(map[string][]db.Value),
		indexes: make(map[string]*keyIndex),
	}
}

// ColStoreStats snapshots a store's sharing counters.
type ColStoreStats struct {
	Conversions int `json:"conversions"`
	IndexBuilds int `json:"indexBuilds"`
	IndexShares int `json:"indexShares"`
	IndexBytes  int `json:"indexBytes"`
}

// Stats snapshots the store's counters.
func (cs *ColStore) Stats() ColStoreStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return ColStoreStats{
		Conversions: cs.conversions,
		IndexBuilds: cs.builds,
		IndexShares: cs.shares,
		IndexBytes:  cs.indexBytes,
	}
}

// Relation returns the columnar form of the named base relation,
// transposing it on first use.
func (cs *ColStore) Relation(name string) (*db.ColRelation, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if c, ok := cs.cols[name]; ok {
		return c, nil
	}
	r := cs.cat.Get(name)
	if r == nil {
		return nil, fmt.Errorf("engine: no relation %q in catalog", name)
	}
	c := db.Columnar(r)
	cs.cols[name] = c
	cs.conversions++
	return c, nil
}

// RowIDs returns the shared rowid vector for the named base relation (the
// fresh-variable column), building it on first use.
func (cs *ColStore) RowIDs(name string) ([]db.Value, error) {
	c, err := cs.Relation(name)
	if err != nil {
		return nil, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if col, ok := cs.rowids[name]; ok {
		return col, nil
	}
	col := db.RowIDColumn(c.Len())
	cs.rowids[name] = col
	return col, nil
}

// Index returns the shared hash index of the named base relation on the
// given column positions (positions into the base relation's own schema),
// building it on first use. Every alias of the relation that joins on the
// same positions gets the same index back.
func (cs *ColStore) Index(name string, pos []int) (*keyIndex, error) {
	c, err := cs.Relation(name)
	if err != nil {
		return nil, err
	}
	for _, p := range pos {
		if p < 0 || p >= len(c.Cols) {
			return nil, fmt.Errorf("engine: index position %d out of range for %s", p, name)
		}
	}
	key := indexKey(name, pos)
	cs.mu.Lock()
	if idx, ok := cs.indexes[key]; ok {
		cs.shares++
		cs.mu.Unlock()
		return idx, nil
	}
	cs.mu.Unlock()
	// Build outside the lock: index construction is the expensive part and
	// two concurrent builders of the same index are rare and harmless (the
	// second store wins are idempotent).
	idx := buildKeyIndex(c.Cols, c.Len(), pos)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if prior, ok := cs.indexes[key]; ok {
		cs.shares++
		return prior, nil
	}
	cs.indexes[key] = idx
	cs.builds++
	cs.indexBytes += idx.sizeHint()
	return idx, nil
}

// CloneFor returns a new store bound to cat, carrying over the columnar
// transpositions, rowid vectors, and hash indexes of every relation that
// is unchanged between the two catalogs — pointer-identical *Relation, the
// exact sharing contract of db.Catalog.Clone — and not named in
// invalidate. This is the delta path of the serving layer's store cache: a
// data change to one relation builds a store where only that relation's
// artifacts are rebuilt on demand, instead of stranding the whole warm
// store. The receiver is left untouched — in-flight evaluations holding it
// keep a consistent single-version view. The clone's counters start at
// zero except indexBytes, which accounts the carried indexes; a carried
// index served by the clone counts as a share, not a build.
func (cs *ColStore) CloneFor(cat *db.Catalog, invalidate []string) *ColStore {
	bad := make(map[string]bool, len(invalidate))
	for _, n := range invalidate {
		bad[n] = true
	}
	out := NewColStore(cat)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	keep := func(name string) bool {
		if bad[name] {
			return false
		}
		r := cat.Get(name)
		return r != nil && r == cs.cat.Get(name)
	}
	for name, c := range cs.cols {
		if keep(name) {
			out.cols[name] = c
		}
	}
	for name, col := range cs.rowids {
		if keep(name) {
			out.rowids[name] = col
		}
	}
	for key, idx := range cs.indexes {
		name, _, _ := strings.Cut(key, "\x00")
		if keep(name) {
			out.indexes[key] = idx
			out.indexBytes += idx.sizeHint()
		}
	}
	return out
}

func indexKey(name string, pos []int) string {
	k := name
	for _, p := range pos {
		k += "\x00" + strconv.Itoa(p)
	}
	return k
}
