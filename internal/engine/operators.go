// Package engine implements physical query evaluation: hash joins,
// semijoins, deduplicating projections, Yannakakis's algorithm over
// complete hypertree decompositions (the structural plan of Section 6), a
// left-deep plan executor (the quantitative baseline's runtime), and a
// naive evaluator used as a test oracle.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/db"
)

// sharedAttrs returns the positions of the attributes r and s have in
// common: pairs (ri, si).
func sharedAttrs(r, s *db.Relation) (ri, si []int) {
	for i, a := range r.Attrs {
		if j := s.AttrIndex(a); j >= 0 {
			ri = append(ri, i)
			si = append(si, j)
		}
	}
	return ri, si
}

// joinKey serializes the values of a tuple at the given positions.
func joinKey(t []db.Value, pos []int) string {
	var b strings.Builder
	b.Grow(len(pos) * 8)
	for _, p := range pos {
		v := t[p]
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}

// NaturalJoin computes r ⋈ s with a hash join (build on the smaller input).
// The output schema is r.Attrs followed by s's non-shared attributes. With
// no shared attributes it degenerates to the cross product.
func NaturalJoin(r, s *db.Relation) *db.Relation {
	ri, si := sharedAttrs(r, s)
	// Output schema.
	outAttrs := append([]string(nil), r.Attrs...)
	var sExtra []int
	for j, a := range s.Attrs {
		if r.AttrIndex(a) < 0 {
			outAttrs = append(outAttrs, a)
			sExtra = append(sExtra, j)
		}
	}
	out := db.NewRelation(fmt.Sprintf("(%s⋈%s)", r.Name, s.Name), outAttrs...)
	// Build side: smaller relation.
	build, probe := s, r
	bPos, pPos := si, ri
	swapped := false
	if r.Card() < s.Card() {
		build, probe = r, s
		bPos, pPos = ri, si
		swapped = true
	}
	ht := make(map[string][][]db.Value, build.Card())
	for _, t := range build.Tuples {
		k := joinKey(t, bPos)
		ht[k] = append(ht[k], t)
	}
	emit := func(rt, st []db.Value) {
		tup := make([]db.Value, 0, len(outAttrs))
		tup = append(tup, rt...)
		for _, j := range sExtra {
			tup = append(tup, st[j])
		}
		out.Tuples = append(out.Tuples, tup)
	}
	for _, pt := range probe.Tuples {
		for _, bt := range ht[joinKey(pt, pPos)] {
			if swapped {
				emit(bt, pt) // build side is r
			} else {
				emit(pt, bt)
			}
		}
	}
	return out
}

// Semijoin computes r ⋉ s: the tuples of r that join with some tuple of s.
// The schema is r's.
func Semijoin(r, s *db.Relation) *db.Relation {
	ri, si := sharedAttrs(r, s)
	out := db.NewRelation(fmt.Sprintf("(%s⋉%s)", r.Name, s.Name), r.Attrs...)
	if len(ri) == 0 {
		// No shared attributes: r ⋉ s is r if s non-empty, else empty.
		if s.Card() > 0 {
			out.Tuples = append(out.Tuples, r.Tuples...)
		}
		return out
	}
	keys := make(map[string]struct{}, s.Card())
	for _, t := range s.Tuples {
		keys[joinKey(t, si)] = struct{}{}
	}
	for _, t := range r.Tuples {
		if _, ok := keys[joinKey(t, ri)]; ok {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Project computes π_attrs(r) with duplicate elimination. Attributes absent
// from r are rejected.
func Project(r *db.Relation, attrs []string) (*db.Relation, error) {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p := r.AttrIndex(a)
		if p < 0 {
			return nil, fmt.Errorf("engine: projection attribute %q not in %s", a, r.Name)
		}
		pos[i] = p
	}
	out := db.NewRelation(fmt.Sprintf("π(%s)", r.Name), attrs...)
	seen := make(map[string]struct{}, r.Card())
	for _, t := range r.Tuples {
		tup := make([]db.Value, len(pos))
		for i, p := range pos {
			tup[i] = t[p]
		}
		k := joinKey(tup, idPositions(len(tup)))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Tuples = append(out.Tuples, tup)
	}
	return out, nil
}

func idPositions(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	return pos
}

// Distinct removes duplicate tuples, keeping first occurrences.
func Distinct(r *db.Relation) *db.Relation {
	out, _ := Project(r, r.Attrs)
	out.Name = r.Name
	return out
}
