package engine

import (
	"fmt"
	"strings"

	"repro/internal/hypertree"
)

// FormatLogicalPlan renders a complete decomposition as the logical query
// plan it denotes (Section 6's "translation in terms of views"): one view
// definition E(p) per vertex, the semijoin reduction program in execution
// order, and the final join program for non-Boolean queries. Variable and
// relation names come from the decomposition's hypergraph.
func FormatLogicalPlan(d *hypertree.Decomposition, boolean bool) string {
	h := d.H
	var b strings.Builder
	names := map[*hypertree.Node]string{}
	i := 0
	d.Walk(func(n, _ *hypertree.Node) {
		names[n] = fmt.Sprintf("E%d", i)
		i++
	})

	b.WriteString("-- views (one per decomposition vertex)\n")
	d.Walk(func(n, _ *hypertree.Node) {
		var rels []string
		for _, e := range n.Lambda {
			rels = append(rels, h.EdgeName(e))
		}
		fmt.Fprintf(&b, "%s := π_%s(%s)\n", names[n], h.VarsetNames(n.Chi),
			strings.Join(rels, " ⋈ "))
	})

	b.WriteString("-- bottom-up semijoin reduction\n")
	var up func(n *hypertree.Node)
	up = func(n *hypertree.Node) {
		for _, c := range n.Children {
			up(c)
			fmt.Fprintf(&b, "%s := %s ⋉ %s\n", names[n], names[n], names[c])
		}
	}
	up(d.Root)

	if boolean {
		fmt.Fprintf(&b, "-- answer: %s ≠ ∅\n", names[d.Root])
		return b.String()
	}

	b.WriteString("-- top-down semijoin reduction\n")
	var down func(n *hypertree.Node)
	down = func(n *hypertree.Node) {
		for _, c := range n.Children {
			fmt.Fprintf(&b, "%s := %s ⋉ %s\n", names[c], names[c], names[n])
			down(c)
		}
	}
	down(d.Root)

	b.WriteString("-- bottom-up join (project onto output variables as they complete)\n")
	var join func(n *hypertree.Node)
	join = func(n *hypertree.Node) {
		for _, c := range n.Children {
			join(c)
			fmt.Fprintf(&b, "%s := %s ⋈ %s\n", names[n], names[n], names[c])
		}
	}
	join(d.Root)
	fmt.Fprintf(&b, "-- answer: π_out(%s)\n", names[d.Root])
	return b.String()
}
