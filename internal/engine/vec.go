package engine

import "repro/internal/db"

// Vectorized execution primitives: fixed-size row batches, packed join
// keys over column vectors, and a compact row set for streaming duplicate
// elimination. Everything here operates on db.ColRelation column vectors —
// the engine's unit of work is a batch of row indices, not a tuple.

// BatchSize is the number of rows a streaming operator hands downstream at
// a time. 1024 keeps a batch of typical arity inside the L2 cache while
// amortizing per-batch overhead (chaos hook, flush, JSON framing) over a
// thousand rows.
const BatchSize = 1024

// colRel is a run-time columnar relation: column vectors named by query
// variables. Instances are immutable after construction; columns may alias
// base-relation storage (zero-copy scans) or be engine-materialized.
type colRel struct {
	attrs []string
	cols  [][]db.Value
	n     int // explicit row count: a zero-attribute relation can still hold rows
}

func (r *colRel) length() int { return r.n }

func (r *colRel) attrIndex(name string) int {
	for i, a := range r.attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// sharedCols returns the positions of the attributes r and s have in
// common, as aligned position pairs.
func sharedCols(r, s *colRel) (ri, si []int) {
	for i, a := range r.attrs {
		if j := s.attrIndex(a); j >= 0 {
			ri = append(ri, i)
			si = append(si, j)
		}
	}
	return ri, si
}

// appendRowKey packs the values of row `row` at column positions `pos`
// into dst (4 bytes per value, little-endian). The packing is injective,
// so byte-equal keys mean value-equal tuples.
func appendRowKey(dst []byte, cols [][]db.Value, pos []int, row int) []byte {
	for _, p := range pos {
		v := cols[p][row]
		dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return dst
}

// hashKey is a 64-bit mix of a packed key (FNV-1a folded through a final
// avalanche), used to bucket rows before exact byte comparison.
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	// splitmix64-style finalizer: FNV alone clusters short integer keys.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// rowSet is a compact set of packed rows for streaming duplicate
// elimination: a hash bucketing 64-bit fingerprints over an append-only
// byte arena holding the exact packed rows. Compared to map[string]struct{}
// it stores one arena offset per row instead of one string header plus
// allocation, so a million distinct emitted rows of arity 3 cost ~12 MB of
// arena plus the bucket table — the only answer-set-proportional state the
// streaming evaluator keeps.
type rowSet struct {
	width   int // packed bytes per row (4 × arity)
	arena   []byte
	buckets map[uint64][]uint32 // hash → arena offsets of rows with that hash
}

func newRowSet(arity int) *rowSet {
	return &rowSet{width: 4 * arity, buckets: make(map[uint64][]uint32)}
}

// insert adds the packed row if absent and reports whether it was added.
// Zero-arity rows (Boolean answers) collapse onto one sentinel entry.
func (s *rowSet) insert(key []byte) bool {
	h := hashKey(key)
	offs := s.buckets[h]
	for _, off := range offs {
		if bytesEqual(s.arena[off:off+uint32(s.width)], key) {
			return false
		}
	}
	off := uint32(len(s.arena))
	s.arena = append(s.arena, key...)
	s.buckets[h] = append(offs, off)
	return true
}

func (s *rowSet) len() int {
	n := 0
	for _, offs := range s.buckets {
		n += len(offs)
	}
	return n
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// keyIndex is a hash index from packed keys to the row ids bearing them —
// the build side of the vectorized hash join and the probe set of the
// vectorized semijoin. Built once per (relation, key columns); the
// ColStore shares instances across aliases and requests.
type keyIndex struct {
	width   int
	arena   []byte              // packed keys, one per distinct key
	buckets map[uint64][]uint32 // hash → offsets into entries
	entries []keyEntry
	rows    []int32 // concatenated row-id lists; entries slice into it
}

type keyEntry struct {
	keyOff     uint32 // offset of the packed key in arena
	start, end uint32 // rows[start:end] are the row ids with this key
}

// buildKeyIndex indexes the rows of cols (all columns equal length) on the
// key column positions pos.
func buildKeyIndex(cols [][]db.Value, n int, pos []int) *keyIndex {
	idx := &keyIndex{
		width:   4 * len(pos),
		buckets: make(map[uint64][]uint32, 1+n/2),
	}
	// First pass: group row ids per distinct key using a temporary map of
	// per-entry row lists; sized with a power-of-two hint to limit rehashing.
	type group struct {
		keyOff uint32
		rows   []int32
	}
	var groups []group
	key := make([]byte, 0, idx.width)
	for row := 0; row < n; row++ {
		key = appendRowKey(key[:0], cols, pos, row)
		h := hashKey(key)
		found := false
		for _, gi := range idx.buckets[h] {
			g := &groups[gi]
			if bytesEqual(idx.arena[g.keyOff:g.keyOff+uint32(idx.width)], key) {
				g.rows = append(g.rows, int32(row))
				found = true
				break
			}
		}
		if !found {
			off := uint32(len(idx.arena))
			idx.arena = append(idx.arena, key...)
			idx.buckets[h] = append(idx.buckets[h], uint32(len(groups)))
			groups = append(groups, group{keyOff: off, rows: []int32{int32(row)}})
		}
	}
	// Second pass: flatten into the compact entries/rows layout.
	idx.entries = make([]keyEntry, len(groups))
	total := 0
	for _, g := range groups {
		total += len(g.rows)
	}
	idx.rows = make([]int32, 0, total)
	for i, g := range groups {
		start := uint32(len(idx.rows))
		idx.rows = append(idx.rows, g.rows...)
		idx.entries[i] = keyEntry{keyOff: g.keyOff, start: start, end: uint32(len(idx.rows))}
	}
	return idx
}

// lookup returns the row ids matching the packed key (nil when absent).
func (idx *keyIndex) lookup(key []byte) []int32 {
	h := hashKey(key)
	for _, gi := range idx.buckets[h] {
		e := idx.entries[gi]
		if bytesEqual(idx.arena[e.keyOff:e.keyOff+uint32(idx.width)], key) {
			return idx.rows[e.start:e.end]
		}
	}
	return nil
}

// contains reports whether any row bears the packed key (semijoin probe).
func (idx *keyIndex) contains(key []byte) bool { return idx.lookup(key) != nil }

// distinctKeys returns the number of distinct keys indexed.
func (idx *keyIndex) distinctKeys() int { return len(idx.entries) }

// sizeHint reports the approximate retained bytes of the index, for the
// ColStore accounting surface.
func (idx *keyIndex) sizeHint() int {
	return len(idx.arena) + 16*len(idx.entries) + 4*len(idx.rows) + 16*len(idx.buckets)
}
