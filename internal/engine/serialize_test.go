package engine

import (
	"encoding/json"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
)

func TestSerializeDecomposition(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.MustEdge("r", "A", "B")
	b.MustEdge("s", "B", "C")
	h := b.MustBuild()

	rootChi := h.NewVarset()
	rootChi.Set(h.VarByName("A"))
	rootChi.Set(h.VarByName("B"))
	root := hypertree.NewNode(rootChi, []int{h.EdgeByName("r")})
	childChi := h.NewVarset()
	childChi.Set(h.VarByName("B"))
	childChi.Set(h.VarByName("C"))
	child := hypertree.NewNode(childChi, []int{h.EdgeByName("s")})
	root.AddChild(child)
	d := &hypertree.Decomposition{H: h, Root: root}

	costs := map[*hypertree.Node]float64{root: 12, child: 5}
	got := SerializeDecomposition(d, costs)
	if got.CountNodes() != 2 {
		t.Fatalf("CountNodes = %d, want 2", got.CountNodes())
	}
	if len(got.Lambda) != 1 || got.Lambda[0] != "r" {
		t.Fatalf("root lambda = %v", got.Lambda)
	}
	if len(got.Chi) != 2 {
		t.Fatalf("root chi = %v", got.Chi)
	}
	if got.Cost == nil || *got.Cost != 12 {
		t.Fatalf("root cost = %v", got.Cost)
	}
	c := got.Children[0]
	if c.Lambda[0] != "s" || c.Cost == nil || *c.Cost != 5 || len(c.Children) != 0 {
		t.Fatalf("child = %+v", c)
	}

	// nil costs omit the field on the wire.
	raw, err := json.Marshal(SerializeDecomposition(d, nil))
	if err != nil {
		t.Fatal(err)
	}
	var back PlanNode
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cost != nil || back.Children[0].Cost != nil {
		t.Fatalf("costs leaked into %s", raw)
	}

	if SerializeDecomposition(nil, nil) != nil {
		t.Fatal("nil decomposition must serialize to nil")
	}
}
