package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
)

func TestFormatLogicalPlan(t *testing.T) {
	q := cq.MustParse("ans(A) :- r(A,B), s(B,C), t(C,A)")
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.DecomposeK(h, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cd := d.Complete()

	plan := FormatLogicalPlan(cd, false)
	for _, frag := range []string{"-- views", "⋉", "⋈", "π_out", "-- top-down"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
	boolPlan := FormatLogicalPlan(cd, true)
	if !strings.Contains(boolPlan, "≠ ∅") {
		t.Errorf("boolean plan missing emptiness check:\n%s", boolPlan)
	}
	if strings.Contains(boolPlan, "top-down") {
		t.Error("boolean plan should stop after the bottom-up pass")
	}
	// One view per decomposition vertex.
	if got := strings.Count(plan, ":= π_"); got != cd.NumNodes() {
		t.Errorf("views = %d, want %d", got, cd.NumNodes())
	}
}
