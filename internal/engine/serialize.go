package engine

import (
	"repro/internal/hypertree"
)

// PlanNode is the wire form of a decomposition vertex: λ as edge (atom)
// names, χ as variable names, the estimated subtree cost where known (the
// "$" annotations of the paper's Figs 6/7), and the children. It is what
// the serving layer returns for /v1/plan and /v1/decompose.
type PlanNode struct {
	Lambda   []string    `json:"lambda"`
	Chi      []string    `json:"chi"`
	Cost     *float64    `json:"cost,omitempty"`
	Children []*PlanNode `json:"children,omitempty"`
}

// SerializeDecomposition renders d as a PlanNode tree. costs may be nil;
// where present, per-node subtree costs are attached.
func SerializeDecomposition(d *hypertree.Decomposition, costs map[*hypertree.Node]float64) *PlanNode {
	if d == nil || d.Root == nil {
		return nil
	}
	h := d.H
	var rec func(n *hypertree.Node) *PlanNode
	rec = func(n *hypertree.Node) *PlanNode {
		out := &PlanNode{
			Lambda: make([]string, 0, len(n.Lambda)),
			Chi:    make([]string, 0, n.Chi.Count()),
		}
		for _, e := range n.Lambda {
			out.Lambda = append(out.Lambda, h.EdgeName(e))
		}
		n.Chi.ForEach(func(v int) { out.Chi = append(out.Chi, h.VarName(v)) })
		if c, ok := costs[n]; ok {
			cc := c
			out.Cost = &cc
		}
		for _, c := range n.Children {
			out.Children = append(out.Children, rec(c))
		}
		return out
	}
	return rec(d.Root)
}

// CountNodes returns the number of vertices in a serialized plan tree.
func (n *PlanNode) CountNodes() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}
