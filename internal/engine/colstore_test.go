package engine

import (
	"testing"

	"repro/internal/db"
)

// CloneFor carries warm artifacts for unchanged relations into a store
// bound to the new catalog snapshot, rebuilding only what a delta touched.
func TestColStoreCloneForCarriesUnchanged(t *testing.T) {
	cat := smallCatalog()
	cs := NewColStore(cat)
	for _, name := range []string{"r", "s", "t"} {
		if _, err := cs.Index(name, []int{0}); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.RowIDs(name); err != nil {
			t.Fatal(err)
		}
	}
	before := cs.Stats()
	if before.IndexBuilds != 3 || before.Conversions != 3 {
		t.Fatalf("warmup stats = %+v", before)
	}

	// Delta: replace r's data on a copy-on-write clone; s and t keep their
	// exact *Relation pointers.
	cat2 := cat.Clone()
	r2 := db.NewRelation("r", "c0", "c1")
	r2.MustAppend(8, 9)
	cat2.Put(r2)

	cs2 := cs.CloneFor(cat2, []string{"r"})

	// Unchanged relations are served from carried state: shares, no builds.
	if _, err := cs2.Index("s", []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := cs2.Index("t", []int{0}); err != nil {
		t.Fatal(err)
	}
	st := cs2.Stats()
	if st.IndexBuilds != 0 || st.IndexShares != 2 || st.Conversions != 0 {
		t.Fatalf("unchanged relations not carried: %+v", st)
	}
	if st.IndexBytes == 0 {
		t.Fatal("carried indexes not accounted in IndexBytes")
	}

	// The invalidated relation rebuilds — against the *new* data.
	rc, err := cs2.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	if rc.Len() != 1 {
		t.Fatalf("clone serves stale r: len %d, want 1", rc.Len())
	}
	if _, err := cs2.Index("r", []int{0}); err != nil {
		t.Fatal(err)
	}
	st = cs2.Stats()
	if st.IndexBuilds != 1 || st.Conversions != 1 {
		t.Fatalf("invalidated relation did not rebuild exactly once: %+v", st)
	}

	// The old store is untouched: in-flight evaluations keep the old view.
	rOld, err := cs.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	if rOld.Len() != 3 {
		t.Fatalf("old store mutated: r len %d, want 3", rOld.Len())
	}
	if after := cs.Stats(); after != before {
		t.Fatalf("old store counters moved: %+v -> %+v", before, after)
	}
}

// Pointer identity is the carry-over test: a relation rebound on the new
// catalog — even outside the invalidate list — must not be carried.
func TestColStoreCloneForDropsRebound(t *testing.T) {
	cat := smallCatalog()
	cs := NewColStore(cat)
	if _, err := cs.Index("s", []int{0}); err != nil {
		t.Fatal(err)
	}
	cat2 := cat.Clone()
	s2 := db.NewRelation("s", "c0", "c1")
	s2.MustAppend(5, 6)
	cat2.Put(s2)
	cs2 := cs.CloneFor(cat2, nil) // caller forgot to invalidate s
	rc, err := cs2.Relation("s")
	if err != nil {
		t.Fatal(err)
	}
	if rc.Len() != 1 {
		t.Fatalf("rebound relation carried stale columns: len %d, want 1", rc.Len())
	}
}
