package engine

import (
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/cq/cqgen"
	"repro/internal/db"
)

// The streaming vectorized evaluator agrees with the naive oracle on the
// same fixture family the buffered evaluator is pinned on.
func TestStreamAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []string{
		"ans(A,B,C) :- r(A,B), s(B,C), t(C,A)",
		"ans :- r(A,B), s(B,C), t(C,A)",
		"ans(A,D) :- r(A,B), s(B,C), t(C,D), u(D,A)",
		"ans(B) :- r(A,B), s(B,C), t(C,D), u(D,A), v(A,C)",
		"ans :- r(A,B), s(B,C), t(C,D), u(B,D)",
	}
	for _, qs := range queries {
		q := cq.MustParse(qs)
		for trial := 0; trial < 8; trial++ {
			cat := db.NewCatalog()
			for _, a := range q.Atoms {
				attrs := make([]string, len(a.Vars))
				dist := map[string]int{}
				card := 5 + rng.Intn(25)
				for i := range attrs {
					attrs[i] = "c" + string(rune('0'+i))
					dist[attrs[i]] = 1 + rng.Intn(4)
				}
				cat.Put(db.MustGenerate(rng, db.Spec{
					Name: a.Predicate, Attrs: attrs, Card: card, Distinct: dist,
				}))
			}
			h, err := q.Hypergraph()
			if err != nil {
				t.Fatal(err)
			}
			_, d, err := core.HypertreeWidth(h, 3, core.Options{Rand: rng})
			if err != nil {
				t.Fatal(err)
			}
			cd := d.Complete()
			var m Metrics
			st, err := EvalDecompositionStream(cd, q, cat, &m)
			if err != nil {
				t.Fatalf("%s: %v", qs, err)
			}
			got, err := Drain(st)
			if err != nil {
				t.Fatalf("%s: %v", qs, err)
			}
			want, err := EvalNaive(q, cat)
			if err != nil {
				t.Fatal(err)
			}
			if q.IsBoolean() {
				if Answer(got) != (want.Card() > 0) {
					t.Fatalf("%s: boolean answer %v, want %v", qs, Answer(got), want.Card() > 0)
				}
			} else if !got.Equal(want) {
				t.Fatalf("%s: stream eval %v != naive %v", qs, got.Tuples, want.Tuples)
			}
			if !q.IsBoolean() && got.Card() > 0 && m.Batches == 0 {
				t.Fatalf("%s: %d rows emitted but zero batches recorded", qs, got.Card())
			}
		}
	}
}

// 200-query cqgen differential corpus, self-joins and cycles included: the
// streaming evaluator over the fresh-augmented decomposition must agree
// with the naive oracle on the original query, row-set-identically.
func TestStreamCqgenCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	configs := []cqgen.Config{
		{},
		{Atoms: 3, SelfJoin: 0.6},
		{Atoms: 5, Cyclic: true, SelfJoin: 0.3},
		{Atoms: 4, MaxArity: 4, MaxOut: 3},
	}
	evaluated := 0
	for i := 0; i < 200; i++ {
		inst := cqgen.MustGenerate(rng, configs[i%len(configs)])
		q, cat := inst.Query, inst.Catalog
		fq := q.WithFreshVariables()
		h, err := fq.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		_, d, err := core.HypertreeWidth(h, 4, core.Options{Rand: rng})
		if errors.Is(err, core.ErrNoDecomposition) {
			continue // width > 4: out of scope for this corpus
		}
		if err != nil {
			t.Fatal(err)
		}
		var m Metrics
		st, err := EvalDecompositionStream(d, fq, cat, &m)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		got, err := Drain(st)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q, err)
		}
		want, err := EvalNaive(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		if q.IsBoolean() {
			if Answer(got) != (want.Card() > 0) {
				t.Fatalf("query %d (%s): boolean %v, want %v", i, q, Answer(got), want.Card() > 0)
			}
		} else if !got.Equal(want) {
			t.Fatalf("query %d (%s): stream %v != naive %v", i, q, got.Tuples, want.Tuples)
		}
		evaluated++
	}
	if evaluated < 150 {
		t.Fatalf("only %d/200 corpus queries were decomposable at k ≤ 4; corpus too thin", evaluated)
	}
}

// A ColStore builds each (relation, key columns) hash index once and then
// serves it shared — across aliases within a query and across queries on
// the same store.
func TestColStoreSharesIndexes(t *testing.T) {
	cat := smallCatalog()
	cs := NewColStore(cat)
	if _, err := cs.Index("r", []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Index("r", []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Index("r", []int{1}); err != nil {
		t.Fatal(err)
	}
	st := cs.Stats()
	if st.IndexBuilds != 2 || st.IndexShares != 1 {
		t.Fatalf("stats = %+v, want 2 builds and 1 share", st)
	}
	if _, err := cs.Index("r", []int{7}); err == nil {
		t.Fatal("out-of-range index position should fail")
	}
	if _, err := cs.Relation("missing"); err == nil {
		t.Fatal("missing relation should fail")
	}
}

// Two evaluations of renamed-variant self-join queries on one shared
// ColStore: the second run converts no relations and builds no indexes —
// every hash table is served shared.
func TestStreamSharedStoreAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cat := db.NewCatalog()
	cat.Put(db.MustGenerate(rng, db.Spec{
		Name: "e", Attrs: []string{"c0", "c1"}, Card: 40,
		Distinct: map[string]int{"c0": 6, "c1": 6},
	}))
	run := func(cs *ColStore, qs string) *db.Relation {
		t.Helper()
		q := cq.MustParse(qs)
		h, err := q.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic search: renamed-isomorphic queries decompose into
		// isomorphic trees, so both runs want the same (relation, positions)
		// indexes. The triangle needs width 2, so some vertex joins two
		// aliases — the ColStore index path.
		_, d, err := core.HypertreeWidth(h, 3, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := EvalDecompositionStreamWith(cs, d.Complete(), q, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Drain(st)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cs := NewColStore(cat)
	got1 := run(cs, "ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z), e AS e3(X,Z)")
	after1 := cs.Stats()
	if after1.Conversions != 1 {
		t.Fatalf("self-join over one base relation converted %d relations, want 1", after1.Conversions)
	}
	if after1.IndexBuilds == 0 {
		t.Fatalf("width-2 self-join built no shared indexes: %+v", after1)
	}
	got2 := run(cs, "ans(A,C) :- e AS f1(A,B), e AS f2(B,C), e AS f3(A,C)")
	after2 := cs.Stats()
	if after2.Conversions != after1.Conversions || after2.IndexBuilds != after1.IndexBuilds {
		t.Fatalf("renamed re-run built new state: %+v then %+v", after1, after2)
	}
	if after2.IndexShares <= after1.IndexShares {
		t.Fatalf("renamed re-run did not share indexes: %+v then %+v", after1, after2)
	}
	q := cq.MustParse("ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z), e AS e3(X,Z)")
	want, err := EvalNaive(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !got1.Equal(want) {
		t.Fatalf("shared-store eval differs from naive: %v vs %v", got1.Tuples, want.Tuples)
	}
	got2.Attrs = got1.Attrs // renamed head, same rows
	if !got2.Equal(got1) {
		t.Fatalf("renamed variant differs: %v vs %v", got2.Tuples, got1.Tuples)
	}
}

// Streams batch: a >BatchSize answer arrives in ≤BatchSize chunks whose
// concatenation is the full answer, with Metrics.Batches counting them.
func TestStreamBatching(t *testing.T) {
	cat := db.NewCatalog()
	r := db.NewRelation("r", "c0", "c1")
	s := db.NewRelation("s", "c0", "c1")
	for i := 0; i < 64; i++ {
		r.MustAppend(db.Value(i), 1)
		s.MustAppend(1, db.Value(i))
	}
	cat.Put(r)
	cat.Put(s)
	q := cq.MustParse("ans(A,B,C) :- r(A,B), s(B,C)")
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	_, d, err := core.HypertreeWidth(h, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	st, err := EvalDecompositionStream(d.Complete(), q, cat, &m)
	if err != nil {
		t.Fatal(err)
	}
	total, batches := 0, 0
	for {
		batch, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 || len(batch) > BatchSize {
			t.Fatalf("batch of %d rows (BatchSize %d)", len(batch), BatchSize)
		}
		total += len(batch)
		batches++
	}
	if total != 64*64 {
		t.Fatalf("streamed %d rows, want %d", total, 64*64)
	}
	if batches < 2 {
		t.Fatalf("a %d-row answer should take multiple batches, got %d", total, batches)
	}
	if m.Batches != int64(batches) {
		t.Fatalf("Metrics.Batches = %d, want %d", m.Batches, batches)
	}
	// Exhausted streams stay exhausted.
	if _, err := st.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

func TestStreamBooleanAndClose(t *testing.T) {
	cat := smallCatalog()
	eval := func(qs string) *Stream {
		t.Helper()
		q := cq.MustParse(qs)
		h, err := q.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		_, d, err := core.HypertreeWidth(h, 3, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := EvalDecompositionStream(d.Complete(), q, cat, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := eval("ans :- r(A,B), s(B,C), t(C,A)")
	if val, isBool := st.Boolean(); !isBool || !val {
		t.Fatalf("Boolean() = (%v,%v), want (true,true)", val, isBool)
	}
	got, err := Drain(st)
	if err != nil {
		t.Fatal(err)
	}
	if !Answer(got) || len(got.Attrs) != 0 {
		t.Fatalf("boolean drain = %v attrs %v", got.Tuples, got.Attrs)
	}

	// Empty non-Boolean answer: immediate EOF, zero batches.
	stEmpty := eval("ans(A) :- r(A,B), s(B,A)")
	if _, err := stEmpty.Next(); err != io.EOF {
		t.Fatalf("empty stream Next = %v, want io.EOF", err)
	}

	// Close mid-stream: later pulls report EOF, Drain-after-Close is empty.
	stc := eval("ans(A,B) :- r(A,B)")
	if err := stc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := stc.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}

func TestStreamRowsSeq(t *testing.T) {
	cat := smallCatalog()
	q := cq.MustParse("ans(A,B) :- r(A,B)")
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	_, d, err := core.HypertreeWidth(h, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := EvalDecompositionStream(d.Complete(), q, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for row, err := range st.RowsSeq() {
		if err != nil {
			t.Fatal(err)
		}
		if len(row) != 2 {
			t.Fatalf("row arity %d", len(row))
		}
		rows++
	}
	if rows != 3 {
		t.Fatalf("iterated %d rows, want 3", rows)
	}
}

type failBatchInjector struct{}

func (failBatchInjector) Act(p chaos.Point, allowed chaos.Effect) chaos.Effect {
	if p == chaos.EngineBatch {
		return chaos.Fail
	}
	return 0
}

// A chaos Fail at engine.batch surfaces as a stream error wrapping
// ErrInjected, and the error is sticky.
func TestStreamChaosBatchFail(t *testing.T) {
	cat := smallCatalog()
	q := cq.MustParse("ans(A,B) :- r(A,B)")
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	_, d, err := core.HypertreeWidth(h, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := EvalDecompositionStream(d.Complete(), q, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	unregister := chaos.Register(failBatchInjector{})
	_, err = st.Next()
	unregister()
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Next under injection = %v, want ErrInjected", err)
	}
	if _, err2 := st.Next(); !errors.Is(err2, chaos.ErrInjected) {
		t.Fatalf("stream error not sticky: %v", err2)
	}
}
