package engine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
)

// smallCatalog builds relations for a triangle query r(A,B), s(B,C), t(C,A).
func smallCatalog() *db.Catalog {
	cat := db.NewCatalog()
	r := db.NewRelation("r", "c0", "c1")
	r.MustAppend(1, 2)
	r.MustAppend(1, 3)
	r.MustAppend(4, 5)
	s := db.NewRelation("s", "c0", "c1")
	s.MustAppend(2, 7)
	s.MustAppend(3, 8)
	tt := db.NewRelation("t", "c0", "c1")
	tt.MustAppend(7, 1)
	tt.MustAppend(9, 4)
	cat.Put(r)
	cat.Put(s)
	cat.Put(tt)
	return cat
}

func TestEvalNaiveTriangle(t *testing.T) {
	q := cq.MustParse("ans(A,B,C) :- r(A,B), s(B,C), t(C,A)")
	res, err := EvalNaive(q, smallCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// Only A=1,B=2,C=7 closes the triangle.
	if res.Card() != 1 || res.Tuples[0][0] != 1 || res.Tuples[0][1] != 2 || res.Tuples[0][2] != 7 {
		t.Errorf("result = %v", res.Tuples)
	}
}

func TestBindAtomsErrors(t *testing.T) {
	q := cq.MustParse("ans :- missing(A,B)")
	if _, err := BindAtoms(q, smallCatalog()); err == nil {
		t.Error("missing relation should fail")
	}
	q2 := cq.MustParse("ans :- r(A,B,C)") // arity mismatch
	if _, err := BindAtoms(q2, smallCatalog()); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestEvalLeftDeep(t *testing.T) {
	q := cq.MustParse("ans(A,B,C) :- r(A,B), s(B,C), t(C,A)")
	cat := smallCatalog()
	var m Metrics
	res, err := EvalLeftDeep(LeftDeepPlan{Order: []int{2, 0, 1}}, q, cat, &m)
	if err != nil {
		t.Fatal(err)
	}
	naive, _ := EvalNaive(q, cat)
	if !res.Equal(naive) {
		t.Errorf("left-deep disagrees with naive: %v vs %v", res.Tuples, naive.Tuples)
	}
	if m.Joins != 2 || m.IntermediateTuples == 0 {
		t.Errorf("metrics wrong: %+v", m)
	}
	// Bad plans rejected.
	if _, err := EvalLeftDeep(LeftDeepPlan{Order: []int{0, 0, 1}}, q, cat, nil); err == nil {
		t.Error("duplicate index should fail")
	}
	if _, err := EvalLeftDeep(LeftDeepPlan{Order: []int{0}}, q, cat, nil); err == nil {
		t.Error("short plan should fail")
	}
}

// Decomposition-based evaluation agrees with naive evaluation, Boolean and
// non-Boolean, across random queries, databases, and decompositions.
func TestEvalDecompositionAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []string{
		"ans(A,B,C) :- r(A,B), s(B,C), t(C,A)",
		"ans :- r(A,B), s(B,C), t(C,A)",
		"ans(A,D) :- r(A,B), s(B,C), t(C,D), u(D,A)",
		"ans(B) :- r(A,B), s(B,C), t(C,D), u(D,A), v(A,C)",
		"ans :- r(A,B), s(B,C), t(C,D), u(B,D)",
	}
	for _, qs := range queries {
		q := cq.MustParse(qs)
		for trial := 0; trial < 8; trial++ {
			cat := db.NewCatalog()
			for _, a := range q.Atoms {
				attrs := make([]string, len(a.Vars))
				dist := map[string]int{}
				card := 5 + rng.Intn(25)
				for i := range attrs {
					attrs[i] = "c" + string(rune('0'+i))
					dist[attrs[i]] = 1 + rng.Intn(4)
				}
				cat.Put(db.MustGenerate(rng, db.Spec{
					Name: a.Predicate, Attrs: attrs, Card: card, Distinct: dist,
				}))
			}
			h, err := q.Hypergraph()
			if err != nil {
				t.Fatal(err)
			}
			_, d, err := core.HypertreeWidth(h, 3, core.Options{Rand: rng})
			if err != nil {
				t.Fatal(err)
			}
			cd := d.Complete()
			var m Metrics
			got, err := EvalDecomposition(cd, q, cat, &m)
			if err != nil {
				t.Fatalf("%s: %v", qs, err)
			}
			want, err := EvalNaive(q, cat)
			if err != nil {
				t.Fatal(err)
			}
			if q.IsBoolean() {
				if Answer(got) != (want.Card() > 0) {
					t.Fatalf("%s: boolean answer %v, want %v", qs, Answer(got), want.Card() > 0)
				}
			} else if !got.Equal(want) {
				t.Fatalf("%s: decomposition eval %v != naive %v", qs, got.Tuples, want.Tuples)
			}
		}
	}
}

func TestEvalDecompositionRequiresComplete(t *testing.T) {
	q := cq.MustParse("ans :- r(A,B), s(B,C), t(C,A)")
	h, _ := q.Hypergraph()
	d, err := core.DecomposeK(h, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.IsComplete() {
		t.Skip("decomposition happens to be complete; nothing to test")
	}
	if _, err := EvalDecomposition(d, q, smallCatalog(), nil); err == nil {
		t.Error("incomplete decomposition should be rejected")
	}
}

// The fresh-variable route: augment the query, decompose (always complete),
// evaluate, and compare with the naive answer on the original query.
func TestEvalWithFreshVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := cq.MustParse("ans(A,C) :- r(A,B), s(B,C), t(C,A)")
	cat := db.NewCatalog()
	for _, a := range q.Atoms {
		cat.Put(db.MustGenerate(rng, db.Spec{
			Name: a.Predicate, Attrs: []string{"x", "y"}, Card: 30,
			Distinct: map[string]int{"x": 4, "y": 4},
		}))
	}
	fq := q.WithFreshVariables()
	h, err := fq.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.DecomposeK(h, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsComplete() {
		t.Fatal("fresh-augmented decomposition should be complete")
	}
	got, err := EvalDecomposition(d, fq, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvalNaive(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("fresh-variable eval %v != naive %v", got.Tuples, want.Tuples)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	q := cq.MustParse("ans(A,B,C) :- r(A,B), s(B,C), t(C,A)")
	if _, err := EvalLeftDeep(LeftDeepPlan{Order: []int{0, 1, 2}}, q, smallCatalog(), nil); err != nil {
		t.Fatal(err)
	}
}
