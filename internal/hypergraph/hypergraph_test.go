package hypergraph

import (
	"strings"
	"testing"
)

func TestBuilderAndAccessors(t *testing.T) {
	h := buildQ0()
	if h.NumEdges() != 8 {
		t.Fatalf("NumEdges = %d, want 8", h.NumEdges())
	}
	if h.NumVars() != 10 { // A..J
		t.Fatalf("NumVars = %d, want 10", h.NumVars())
	}
	e := h.EdgeByName("s5")
	if e < 0 {
		t.Fatal("s5 not found")
	}
	vs := h.EdgeVars(e)
	for _, name := range []string{"E", "F", "G"} {
		if v := h.VarByName(name); v < 0 || !vs.Has(v) {
			t.Errorf("s5 should contain %s", name)
		}
	}
	if h.EdgeByName("nope") != -1 || h.VarByName("nope") != -1 {
		t.Error("lookup of missing name should return -1")
	}
	b := h.VarByName("B")
	es := h.VarEdges(b)
	if len(es) != 3 { // s1, s2, s3
		t.Errorf("B occurs in %d edges, want 3", len(es))
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if err := b.Edge("e", "X"); err != nil {
		t.Fatal(err)
	}
	if err := b.Edge("e", "Y"); err == nil {
		t.Error("duplicate edge name not rejected")
	}
	if err := b.Edge("f"); err == nil {
		t.Error("empty edge not rejected")
	}
	empty := NewBuilder()
	if _, err := empty.Build(); err == nil {
		t.Error("empty hypergraph not rejected")
	}
}

func TestBuilderDedupsVarsWithinEdge(t *testing.T) {
	b := NewBuilder()
	b.MustEdge("e", "X", "X", "Y")
	h := b.MustBuild()
	if h.EdgeVars(0).Count() != 2 {
		t.Errorf("edge vars = %v, want 2 distinct", h.EdgeVars(0).Elements())
	}
}

func TestVarsOfEdgeSet(t *testing.T) {
	h := buildQ0()
	s1, s2 := h.EdgeByName("s1"), h.EdgeByName("s2")
	vars := h.Vars([]int{s1, s2})
	want := []string{"A", "B", "C", "D"}
	if vars.Count() != len(want) {
		t.Fatalf("var(s1,s2) has %d vars, want %d", vars.Count(), len(want))
	}
	for _, n := range want {
		if !vars.Has(h.VarByName(n)) {
			t.Errorf("missing %s", n)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	h := buildQ0()
	h2, err := Parse(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumEdges() != h.NumEdges() || h2.NumVars() != h.NumVars() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			h2.NumEdges(), h2.NumVars(), h.NumEdges(), h.NumVars())
	}
	for e := 0; e < h.NumEdges(); e++ {
		name := h.EdgeName(e)
		e2 := h2.EdgeByName(name)
		if e2 < 0 {
			t.Fatalf("edge %s lost", name)
		}
		v1 := h.EdgeVars(e).Elements()
		v2 := h2.EdgeVars(e2).Elements()
		if len(v1) != len(v2) {
			t.Fatalf("edge %s arity changed", name)
		}
		for i := range v1 {
			if h.VarName(v1[i]) != h2.VarName(v2[i]) {
				t.Fatalf("edge %s vars changed", name)
			}
		}
	}
}

func TestParseErrorsAndComments(t *testing.T) {
	if _, err := Parse("foo"); err == nil {
		t.Error("missing parens not rejected")
	}
	if _, err := Parse("e(,)"); err == nil {
		t.Error("empty variable not rejected")
	}
	h, err := Parse("# comment\n\n% other comment\n(A,B)\n(B,C)\n")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", h.NumEdges())
	}
	if h.EdgeByName("e0") < 0 || h.EdgeByName("e1") < 0 {
		t.Error("auto-naming failed")
	}
}

func TestStringFormat(t *testing.T) {
	h := buildTriangle()
	s := h.String()
	if !strings.Contains(s, "e1(X,Y)") && !strings.Contains(s, "e1(Y,X)") {
		t.Errorf("String missing e1: %q", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 3 {
		t.Errorf("String should have 3 lines: %q", s)
	}
}

func TestInducedByVars(t *testing.T) {
	h := buildQ0()
	// W = {E,F,G,H,I,J} contains s5,s6,s7,s8 entirely.
	w := h.NewVarset()
	for _, n := range []string{"E", "F", "G", "H", "I", "J"} {
		w.Set(h.VarByName(n))
	}
	sub, orig := h.InducedByVars(w)
	if sub.NumEdges() != 4 {
		t.Fatalf("induced has %d edges, want 4", sub.NumEdges())
	}
	for i, oe := range orig {
		if sub.EdgeName(i) != h.EdgeName(oe) {
			t.Errorf("edge mapping wrong at %d", i)
		}
	}
	if sub.EdgeByName("s1") != -1 {
		t.Error("s1 should not survive induction")
	}
}

func TestIsConnected(t *testing.T) {
	if !buildQ0().IsConnected() {
		t.Error("Q0 should be connected")
	}
	b := NewBuilder()
	b.MustEdge("e1", "A", "B")
	b.MustEdge("e2", "C", "D")
	if b.MustBuild().IsConnected() {
		t.Error("disjoint edges reported connected")
	}
}

func TestPrimalGraph(t *testing.T) {
	h := buildTriangle()
	adj := h.PrimalGraph()
	for v := 0; v < 3; v++ {
		if len(adj[v]) != 2 {
			t.Errorf("triangle primal degree of %s = %d, want 2", h.VarName(v), len(adj[v]))
		}
	}
	q0 := buildQ0()
	adj = q0.PrimalGraph()
	bIdx := q0.VarByName("B")
	// B co-occurs with A, D (s1), C (s2), E (s3).
	if len(adj[bIdx]) != 4 {
		t.Errorf("B primal degree = %d, want 4", len(adj[bIdx]))
	}
}

func TestDegreeMaxArity(t *testing.T) {
	h := buildQ0()
	if h.Degree(h.VarByName("E")) != 3 { // s3, s5, s6
		t.Errorf("deg(E) = %d, want 3", h.Degree(h.VarByName("E")))
	}
	if h.MaxArity() != 3 {
		t.Errorf("MaxArity = %d, want 3", h.MaxArity())
	}
}
