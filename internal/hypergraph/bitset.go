package hypergraph

import (
	"math/bits"
	"strconv"
	"strings"
)

// Varset is a fixed-capacity bitset over variable indices. The zero value is
// an empty set of capacity zero; use NewVarset to allocate capacity. All
// binary operations require operands created with the same capacity.
type Varset struct {
	words []uint64
}

// NewVarset returns an empty Varset able to hold variables 0..n-1.
func NewVarset(n int) Varset {
	return Varset{words: make([]uint64, (n+63)/64)}
}

// Clone returns an independent copy of s.
func (s Varset) Clone() Varset {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Varset{words: w}
}

// Set adds variable v to the set.
func (s Varset) Set(v int) { s.words[v/64] |= 1 << (uint(v) % 64) }

// Clear removes variable v from the set.
func (s Varset) Clear(v int) { s.words[v/64] &^= 1 << (uint(v) % 64) }

// Has reports whether v is in the set.
func (s Varset) Has(v int) bool {
	w := v / 64
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(v)%64)) != 0
}

// Empty reports whether the set has no elements.
func (s Varset) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of elements.
func (s Varset) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// UnionWith adds all elements of t to s in place.
func (s Varset) UnionWith(t Varset) {
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectWith removes from s all elements not in t, in place.
func (s Varset) IntersectWith(t Varset) {
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// SubtractWith removes all elements of t from s in place.
func (s Varset) SubtractWith(t Varset) {
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Union returns s ∪ t as a new set.
func (s Varset) Union(t Varset) Varset {
	r := s.Clone()
	r.UnionWith(t)
	return r
}

// Intersect returns s ∩ t as a new set.
func (s Varset) Intersect(t Varset) Varset {
	r := s.Clone()
	r.IntersectWith(t)
	return r
}

// Subtract returns s − t as a new set.
func (s Varset) Subtract(t Varset) Varset {
	r := s.Clone()
	r.SubtractWith(t)
	return r
}

// SubsetOf reports whether every element of s is in t.
func (s Varset) SubsetOf(t Varset) bool {
	if len(s.words) == 1 { // one-word fast path: typical query-sized sets
		return s.words[0]&^t.words[0] == 0
	}
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one element.
func (s Varset) Intersects(t Varset) bool {
	if len(s.words) == 1 { // one-word fast path
		return s.words[0]&t.words[0] != 0
	}
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same elements.
func (s Varset) Equal(t Varset) bool {
	if len(s.words) != len(t.words) {
		return s.Count() == 0 && t.Count() == 0
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Reset removes every element, keeping capacity.
func (s Varset) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CopyFrom overwrites s with the contents of t (same capacity), in place.
func (s Varset) CopyFrom(t Varset) { copy(s.words, t.words) }

// IntersectInto writes s ∩ t into dst (same capacity) and returns dst. It
// allocates nothing: the scratch-buffer counterpart of Intersect for hot
// paths.
func (s Varset) IntersectInto(t, dst Varset) Varset {
	for i := range dst.words {
		dst.words[i] = s.words[i] & t.words[i]
	}
	return dst
}

// UnionWithAndNot adds t − u to s in place (s |= t &^ u), the inner step of
// component growth: absorb an edge's variables minus the separator without
// materializing the difference.
func (s Varset) UnionWithAndNot(t, u Varset) {
	for i := range s.words {
		s.words[i] |= t.words[i] &^ u.words[i]
	}
}

// NextSet returns the smallest element ≥ from, or -1 if none. It is the
// closure-free iteration primitive:
//
//	for v := s.NextSet(0); v >= 0; v = s.NextSet(v + 1) { ... }
func (s Varset) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	i := from / 64
	if i >= len(s.words) {
		return -1
	}
	w := s.words[i] >> (uint(from) % 64)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i++; i < len(s.words); i++ {
		if s.words[i] != 0 {
			return i*64 + bits.TrailingZeros64(s.words[i])
		}
	}
	return -1
}

// NextNotIn returns the smallest element of s − t that is ≥ from, or -1.
func (s Varset) NextNotIn(t Varset, from int) int {
	if from < 0 {
		from = 0
	}
	i := from / 64
	if i >= len(s.words) {
		return -1
	}
	w := (s.words[i] &^ t.words[i]) >> (uint(from) % 64)
	if w != 0 {
		return from + bits.TrailingZeros64(w)
	}
	for i++; i < len(s.words); i++ {
		if w := s.words[i] &^ t.words[i]; w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Hash returns a 64-bit FNV-1a hash of the set's words. Equal sets of equal
// capacity hash equally; used by Interner to key sets without building
// strings.
func (s Varset) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range s.words {
		for b := 0; b < 8; b++ {
			h ^= w & 0xff
			h *= prime64
			w >>= 8
		}
	}
	return h
}

// Elements returns the members of s in increasing order.
func (s Varset) Elements() []int {
	out := make([]int, 0, s.Count())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls f for each member of s in increasing order.
func (s Varset) ForEach(f func(v int)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(i*64 + b)
			w &= w - 1
		}
	}
}

// Key returns a canonical string key for use in maps. Two sets with equal
// elements and capacity have equal keys.
func (s Varset) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 17)
	for _, w := range s.words {
		b.WriteString(strconv.FormatUint(w, 16))
		b.WriteByte('.')
	}
	return b.String()
}

// String renders the set as {0,3,7} using raw indices (for debugging;
// hypergraphs render with names).
func (s Varset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(v int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(v))
	})
	b.WriteByte('}')
	return b.String()
}
