// Package hypergraph implements hypergraphs as used by (weighted) hypertree
// decompositions: variables, hyperedges, [V]-components and [V]-paths,
// induced sub-hypergraphs, the primal (Gaifman) graph, GYO reduction and
// α-acyclicity, join trees, generators, and a small text format.
//
// Terminology follows Scarcello, Greco, Leone, "Weighted hypertree
// decompositions and optimal query plans" (JCSS 73, 2007), Section 2:
// a hypergraph H is a pair (V, H) of variables and hyperedges; var(S)
// denotes the variables occurring in a set S of hyperedges.
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Hypergraph is an immutable hypergraph. Variables and edges are identified
// by dense indices; names are kept for rendering and parsing. Construct with
// a Builder or with Parse; after construction treat as read-only.
type Hypergraph struct {
	varNames  []string
	edgeNames []string
	varIndex  map[string]int
	edgeIndex map[string]int

	edgeVars []Varset // per edge: its set of variables
	varEdges [][]int  // per variable: edges containing it (sorted)

	allVars Varset // cached set of all variables
}

// Builder incrementally assembles a Hypergraph.
type Builder struct {
	varNames  []string
	varIndex  map[string]int
	edgeNames []string
	edgeIndex map[string]int
	edges     [][]int // variable indices per edge
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		varIndex:  make(map[string]int),
		edgeIndex: make(map[string]int),
	}
}

// Var interns a variable name and returns its index.
func (b *Builder) Var(name string) int {
	if i, ok := b.varIndex[name]; ok {
		return i
	}
	i := len(b.varNames)
	b.varNames = append(b.varNames, name)
	b.varIndex[name] = i
	return i
}

// Edge adds a hyperedge with the given name over the given variable names.
// Duplicate variables within an edge are collapsed. Adding a second edge
// with an existing name is an error.
func (b *Builder) Edge(name string, vars ...string) error {
	if _, dup := b.edgeIndex[name]; dup {
		return fmt.Errorf("hypergraph: duplicate edge name %q", name)
	}
	if len(vars) == 0 {
		return fmt.Errorf("hypergraph: edge %q has no variables", name)
	}
	seen := make(map[int]bool, len(vars))
	var vs []int
	for _, v := range vars {
		i := b.Var(v)
		if !seen[i] {
			seen[i] = true
			vs = append(vs, i)
		}
	}
	sort.Ints(vs)
	b.edgeIndex[name] = len(b.edgeNames)
	b.edgeNames = append(b.edgeNames, name)
	b.edges = append(b.edges, vs)
	return nil
}

// MustEdge is Edge but panics on error; intended for tests and fixtures.
func (b *Builder) MustEdge(name string, vars ...string) {
	if err := b.Edge(name, vars...); err != nil {
		panic(err)
	}
}

// Build finalizes the hypergraph.
func (b *Builder) Build() (*Hypergraph, error) {
	if len(b.edges) == 0 {
		return nil, fmt.Errorf("hypergraph: no edges")
	}
	h := &Hypergraph{
		varNames:  append([]string(nil), b.varNames...),
		edgeNames: append([]string(nil), b.edgeNames...),
		varIndex:  make(map[string]int, len(b.varNames)),
		edgeIndex: make(map[string]int, len(b.edgeNames)),
		varEdges:  make([][]int, len(b.varNames)),
	}
	for i, n := range h.varNames {
		h.varIndex[n] = i
	}
	for i, n := range h.edgeNames {
		h.edgeIndex[n] = i
	}
	h.allVars = NewVarset(len(h.varNames))
	h.edgeVars = make([]Varset, len(b.edges))
	for e, vs := range b.edges {
		set := NewVarset(len(h.varNames))
		for _, v := range vs {
			set.Set(v)
			h.varEdges[v] = append(h.varEdges[v], e)
			h.allVars.Set(v)
		}
		h.edgeVars[e] = set
	}
	return h, nil
}

// MustBuild is Build but panics on error; intended for tests and fixtures.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// NumVars returns |var(H)|.
func (h *Hypergraph) NumVars() int { return len(h.varNames) }

// NumEdges returns |edges(H)|.
func (h *Hypergraph) NumEdges() int { return len(h.edgeNames) }

// VarName returns the name of variable v.
func (h *Hypergraph) VarName(v int) string { return h.varNames[v] }

// EdgeName returns the name of edge e.
func (h *Hypergraph) EdgeName(e int) string { return h.edgeNames[e] }

// VarByName returns the index of the named variable, or -1.
func (h *Hypergraph) VarByName(name string) int {
	if i, ok := h.varIndex[name]; ok {
		return i
	}
	return -1
}

// EdgeByName returns the index of the named edge, or -1.
func (h *Hypergraph) EdgeByName(name string) int {
	if i, ok := h.edgeIndex[name]; ok {
		return i
	}
	return -1
}

// EdgeVars returns the variable set of edge e. The result is shared; do not
// mutate it.
func (h *Hypergraph) EdgeVars(e int) Varset { return h.edgeVars[e] }

// VarEdges returns the indices of edges containing variable v, ascending.
// The result is shared; do not mutate it.
func (h *Hypergraph) VarEdges(v int) []int { return h.varEdges[v] }

// AllVars returns var(H). The result is shared; do not mutate it.
func (h *Hypergraph) AllVars() Varset { return h.allVars }

// NewVarset returns an empty variable set sized for this hypergraph.
func (h *Hypergraph) NewVarset() Varset { return NewVarset(len(h.varNames)) }

// Vars returns var(S) = ∪_{e∈S} e for a set S of edge indices.
func (h *Hypergraph) Vars(edges []int) Varset {
	s := h.NewVarset()
	for _, e := range edges {
		s.UnionWith(h.edgeVars[e])
	}
	return s
}

// VarsetNames renders a variable set with variable names, sorted by name.
func (h *Hypergraph) VarsetNames(s Varset) string {
	names := make([]string, 0, s.Count())
	s.ForEach(func(v int) { names = append(names, h.varNames[v]) })
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}

// EdgesNames renders a set of edge indices with edge names, in given order.
func (h *Hypergraph) EdgesNames(edges []int) string {
	names := make([]string, len(edges))
	for i, e := range edges {
		names[i] = h.edgeNames[e]
	}
	return "{" + strings.Join(names, ",") + "}"
}

// String renders the hypergraph in the text format accepted by Parse.
func (h *Hypergraph) String() string {
	var b strings.Builder
	for e := range h.edgeNames {
		b.WriteString(h.edgeNames[e])
		b.WriteByte('(')
		vs := h.edgeVars[e].Elements()
		for i, v := range vs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(h.varNames[v])
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// IsConnected reports whether the hypergraph is [∅]-connected, i.e., has a
// single [∅]-component covering all variables.
func (h *Hypergraph) IsConnected() bool {
	comps := h.Components(h.NewVarset())
	return len(comps) == 1 && comps[0].Equal(h.allVars)
}

// InducedByVars returns the sub-hypergraph H[W] containing exactly the edges
// all of whose variables lie in W, together with the mapping from new edge
// indices to original ones. Variables keep their original indices and names
// so varsets remain compatible; edges are renumbered.
func (h *Hypergraph) InducedByVars(w Varset) (*Hypergraph, []int) {
	sub := &Hypergraph{
		varNames:  h.varNames,
		varIndex:  h.varIndex,
		edgeIndex: make(map[string]int),
		varEdges:  make([][]int, len(h.varNames)),
		allVars:   NewVarset(len(h.varNames)),
	}
	var origIdx []int
	for e := range h.edgeNames {
		if h.edgeVars[e].SubsetOf(w) {
			ne := len(sub.edgeNames)
			sub.edgeNames = append(sub.edgeNames, h.edgeNames[e])
			sub.edgeIndex[h.edgeNames[e]] = ne
			sub.edgeVars = append(sub.edgeVars, h.edgeVars[e])
			origIdx = append(origIdx, e)
			h.edgeVars[e].ForEach(func(v int) {
				sub.varEdges[v] = append(sub.varEdges[v], ne)
				sub.allVars.Set(v)
			})
		}
	}
	return sub, origIdx
}
