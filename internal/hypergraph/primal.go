package hypergraph

// PrimalGraph returns the primal (Gaifman) graph of the hypergraph as an
// adjacency list over variable indices: two variables are adjacent iff they
// occur together in some hyperedge. Self-loops are omitted.
func (h *Hypergraph) PrimalGraph() [][]int {
	adjSet := make([]Varset, h.NumVars())
	for v := range adjSet {
		adjSet[v] = h.NewVarset()
	}
	for e := 0; e < h.NumEdges(); e++ {
		vs := h.edgeVars[e].Elements()
		for _, x := range vs {
			for _, y := range vs {
				if x != y {
					adjSet[x].Set(y)
				}
			}
		}
	}
	adj := make([][]int, h.NumVars())
	for v := range adj {
		adj[v] = adjSet[v].Elements()
	}
	return adj
}

// Degree returns the number of edges containing variable v.
func (h *Hypergraph) Degree(v int) int { return len(h.varEdges[v]) }

// MaxArity returns the size of the largest hyperedge.
func (h *Hypergraph) MaxArity() int {
	m := 0
	for e := 0; e < h.NumEdges(); e++ {
		if c := h.edgeVars[e].Count(); c > m {
			m = c
		}
	}
	return m
}
