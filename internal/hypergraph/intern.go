package hypergraph

import "sync"

// Interner assigns dense integer IDs to varsets, so that structures keyed on
// sets (component tables, subproblem memos) can use integer map keys instead
// of serialized strings. Lookups hash the set's words directly — no
// allocation on a hit — and the table is striped by hash so concurrent
// solver runs sharing one interner do not serialize on a single lock.
//
// IDs are dense (0, 1, 2, ... in interning order) but the order itself
// depends on call interleaving under concurrency; callers must treat IDs as
// opaque equality witnesses, not as a deterministic enumeration.
type Interner struct {
	shards [internShards]internShard
	nextMu sync.Mutex
	next   int
}

const internShards = 16

type internShard struct {
	mu sync.RWMutex
	m  map[uint64][]internEntry
}

type internEntry struct {
	set Varset
	id  int
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	it := &Interner{}
	for i := range it.shards {
		it.shards[i].m = make(map[uint64][]internEntry)
	}
	return it
}

// ID returns the dense ID of set, interning a private copy on first sight.
// Two sets with equal elements (and capacity) always map to the same ID.
// Safe for concurrent use.
func (it *Interner) ID(set Varset) int {
	h := set.Hash()
	sh := &it.shards[h%internShards]
	sh.mu.RLock()
	for _, e := range sh.m[h] {
		if e.set.Equal(set) {
			sh.mu.RUnlock()
			return e.id
		}
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, e := range sh.m[h] {
		if e.set.Equal(set) {
			return e.id
		}
	}
	it.nextMu.Lock()
	id := it.next
	it.next++
	it.nextMu.Unlock()
	sh.m[h] = append(sh.m[h], internEntry{set: set.Clone(), id: id})
	return id
}

// Len returns the number of distinct sets interned so far.
func (it *Interner) Len() int {
	it.nextMu.Lock()
	defer it.nextMu.Unlock()
	return it.next
}
