package hypergraph

// This file implements [V]-connectivity (Section 2.2 of the paper):
//
//   X is [V]-adjacent to Y if some edge h has {X,Y} ⊆ h−V.
//   A [V]-component is a maximal [V]-connected non-empty subset of var(H)−V.
//   For a component C, edges(C) = {h ∈ edges(H) | h ∩ C ≠ ∅}.

// Components returns the [V]-components of the hypergraph, each as a Varset,
// in a deterministic order (by smallest contained variable index).
func (h *Hypergraph) Components(v Varset) []Varset {
	seen := h.NewVarset()
	seen.UnionWith(v)
	done := h.NewVarset()
	var comps []Varset
	for start := h.allVars.NextNotIn(seen, 0); start >= 0; start = h.allVars.NextNotIn(seen, start+1) {
		comp := h.componentFrom(start, v, done)
		seen.UnionWith(comp)
		comps = append(comps, comp)
	}
	return comps
}

// componentFrom grows the [v]-component containing start (start ∉ v) by a
// bitset-frontier search: a member X is processed by absorbing, for every
// edge containing X, the edge's variables minus v. done is caller-provided
// scratch (reset here) marking processed variables, so growth needs no
// queue, no per-step allocation, and no closures.
func (h *Hypergraph) componentFrom(start int, v, done Varset) Varset {
	comp := h.NewVarset()
	comp.Set(start)
	done.Reset()
	for x := comp.NextNotIn(done, 0); x >= 0; x = comp.NextNotIn(done, 0) {
		done.Set(x)
		for _, e := range h.varEdges[x] {
			comp.UnionWithAndNot(h.edgeVars[e], v)
		}
	}
	return comp
}

// ComponentsWithin returns the [V]-components that are subsets of the set
// within. This is the restriction used by the candidate graph: for a
// solution node (S, C), the subproblems are the [var(S)]-components C′ ⊆ C.
// Only components touching within are grown (seeds outside within cannot
// yield a subset of it), so the cost is proportional to the neighbourhood
// of within rather than to the whole hypergraph.
func (h *Hypergraph) ComponentsWithin(v, within Varset) []Varset {
	seen := h.NewVarset()
	seen.UnionWith(v)
	done := h.NewVarset()
	var out []Varset
	for start := within.NextNotIn(seen, 0); start >= 0; start = within.NextNotIn(seen, start+1) {
		comp := h.componentFrom(start, v, done)
		seen.UnionWith(comp)
		if comp.SubsetOf(within) {
			out = append(out, comp)
		}
	}
	return out
}

// EdgesOf returns edges(C) = {h | h ∩ C ≠ ∅}, ascending.
func (h *Hypergraph) EdgesOf(c Varset) []int {
	var out []int
	for e := range h.edgeNames {
		if h.edgeVars[e].Intersects(c) {
			out = append(out, e)
		}
	}
	return out
}

// VarsOfEdgesOf returns var(edges(C)), the variables of all edges meeting C.
func (h *Hypergraph) VarsOfEdgesOf(c Varset) Varset {
	s := h.NewVarset()
	for e := range h.edgeNames {
		if h.edgeVars[e].Intersects(c) {
			s.UnionWith(h.edgeVars[e])
		}
	}
	return s
}

// HasVPath reports whether there is a [V]-path from x to y (both ∉ V).
func (h *Hypergraph) HasVPath(x, y int, v Varset) bool {
	if v.Has(x) || v.Has(y) {
		return false
	}
	if x == y {
		return true
	}
	return h.componentFrom(x, v, h.NewVarset()).Has(y)
}
