package hypergraph

// This file implements [V]-connectivity (Section 2.2 of the paper):
//
//   X is [V]-adjacent to Y if some edge h has {X,Y} ⊆ h−V.
//   A [V]-component is a maximal [V]-connected non-empty subset of var(H)−V.
//   For a component C, edges(C) = {h ∈ edges(H) | h ∩ C ≠ ∅}.

// Components returns the [V]-components of the hypergraph, each as a Varset,
// in a deterministic order (by smallest contained variable index).
func (h *Hypergraph) Components(v Varset) []Varset {
	seen := h.NewVarset()
	seen.UnionWith(v)
	var comps []Varset
	for start := 0; start < len(h.varNames); start++ {
		if seen.Has(start) || !h.allVars.Has(start) {
			continue
		}
		comp := h.componentFrom(start, v)
		seen.UnionWith(comp)
		comps = append(comps, comp)
	}
	return comps
}

// componentFrom grows the [v]-component containing start (start ∉ v) by BFS
// over edges: from a variable X, all variables of every edge containing X,
// minus v, are [v]-reachable.
func (h *Hypergraph) componentFrom(start int, v Varset) Varset {
	comp := h.NewVarset()
	comp.Set(start)
	queue := []int{start}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, e := range h.varEdges[x] {
			h.edgeVars[e].ForEach(func(y int) {
				if !v.Has(y) && !comp.Has(y) {
					comp.Set(y)
					queue = append(queue, y)
				}
			})
		}
	}
	return comp
}

// ComponentsWithin returns the [V]-components that are subsets of the set
// within. This is the restriction used by the candidate graph: for a
// solution node (S, C), the subproblems are the [var(S)]-components C′ ⊆ C.
func (h *Hypergraph) ComponentsWithin(v, within Varset) []Varset {
	all := h.Components(v)
	var out []Varset
	for _, c := range all {
		if c.SubsetOf(within) {
			out = append(out, c)
		}
	}
	return out
}

// EdgesOf returns edges(C) = {h | h ∩ C ≠ ∅}, ascending.
func (h *Hypergraph) EdgesOf(c Varset) []int {
	var out []int
	for e := range h.edgeNames {
		if h.edgeVars[e].Intersects(c) {
			out = append(out, e)
		}
	}
	return out
}

// VarsOfEdgesOf returns var(edges(C)), the variables of all edges meeting C.
func (h *Hypergraph) VarsOfEdgesOf(c Varset) Varset {
	s := h.NewVarset()
	for e := range h.edgeNames {
		if h.edgeVars[e].Intersects(c) {
			s.UnionWith(h.edgeVars[e])
		}
	}
	return s
}

// HasVPath reports whether there is a [V]-path from x to y (both ∉ V).
func (h *Hypergraph) HasVPath(x, y int, v Varset) bool {
	if v.Has(x) || v.Has(y) {
		return false
	}
	if x == y {
		return true
	}
	return h.componentFrom(x, v).Has(y)
}
