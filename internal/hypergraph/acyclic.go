package hypergraph

// α-acyclicity via GYO (Graham / Yu–Özsoyoğlu) reduction, and join-tree
// construction. A hypergraph is α-acyclic iff repeated application of
//   (1) remove a variable that occurs in exactly one edge ("ear variable"),
//   (2) remove an edge contained in another edge,
// empties the hypergraph; equivalently iff it has a join tree (Beeri, Fagin,
// Maier, Yannakakis 1983).

// JoinTree is a tree over edge indices of the source hypergraph. Parent[e]
// is the parent edge of e, or -1 for the root. Edges absorbed during GYO are
// attached below an edge containing them, so every original edge appears.
type JoinTree struct {
	Root   int
	Parent []int   // per edge
	Kids   [][]int // per edge, children
}

// IsAcyclic reports whether the hypergraph is α-acyclic.
func (h *Hypergraph) IsAcyclic() bool {
	_, ok := h.JoinTree()
	return ok
}

// JoinTree returns a join tree of the hypergraph and true if it is
// α-acyclic, or a zero JoinTree and false otherwise.
//
// The construction runs GYO reduction, recording for each absorbed edge the
// surviving edge that contained it; absorbed edges become children of their
// absorbers. If reduction ends with a single edge, that edge is the root.
func (h *Hypergraph) JoinTree() (JoinTree, bool) {
	n := h.NumEdges()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// Working copies of edge variable sets (GYO removes variables).
	work := make([]Varset, n)
	for e := 0; e < n; e++ {
		work[e] = h.edgeVars[e].Clone()
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	// varCount[v] = number of alive edges whose working set contains v.
	varCount := make([]int, h.NumVars())
	for e := 0; e < n; e++ {
		work[e].ForEach(func(v int) { varCount[v]++ })
	}
	aliveCount := n
	for {
		changed := false
		// Rule 1: drop ear variables (occur in exactly one alive edge).
		for e := 0; e < n; e++ {
			if !alive[e] {
				continue
			}
			var drop []int
			work[e].ForEach(func(v int) {
				if varCount[v] == 1 {
					drop = append(drop, v)
				}
			})
			for _, v := range drop {
				work[e].Clear(v)
				varCount[v]--
				changed = true
			}
		}
		// Rule 2: absorb edges contained in another alive edge.
		for e := 0; e < n && aliveCount > 1; e++ {
			if !alive[e] {
				continue
			}
			for f := 0; f < n; f++ {
				if f == e || !alive[f] {
					continue
				}
				if work[e].SubsetOf(work[f]) {
					// e is absorbed into f.
					alive[e] = false
					aliveCount--
					parent[e] = f
					work[e].ForEach(func(v int) { varCount[v]-- })
					changed = true
					break
				}
			}
		}
		if aliveCount == 1 {
			break
		}
		if !changed {
			return JoinTree{}, false
		}
	}
	root := -1
	for e := 0; e < n; e++ {
		if alive[e] {
			root = e
			break
		}
	}
	// Path-compress: parents may themselves have been absorbed later; the
	// recorded parent is always an edge absorbed no earlier, so the chain
	// terminates at root. Parents recorded during GYO are valid join-tree
	// parents because absorption happens into an edge whose *current* working
	// set contains the absorbed working set; shared original variables were
	// only removed when they had become private (ear variables), so the
	// connectedness condition holds along the chain.
	kids := make([][]int, n)
	for e := 0; e < n; e++ {
		if e != root && parent[e] >= 0 {
			kids[parent[e]] = append(kids[parent[e]], e)
		}
	}
	jt := JoinTree{Root: root, Parent: parent, Kids: kids}
	if !h.checkJoinTree(jt) {
		// GYO certified acyclicity, but the recorded absorption tree can in
		// rare interleavings violate connectedness; rebuild via maximum
		// spanning tree on shared-variable counts (classic construction).
		jt = h.joinTreeMST()
		if !h.checkJoinTree(jt) {
			return JoinTree{}, false
		}
	}
	return jt, true
}

// joinTreeMST builds a join-tree candidate as a maximum-weight spanning tree
// of the intersection graph of edges, weighted by |h_i ∩ h_j|. For α-acyclic
// hypergraphs this is a join tree (Maier 1983).
func (h *Hypergraph) joinTreeMST() JoinTree {
	n := h.NumEdges()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	inTree := make([]bool, n)
	inTree[0] = true
	for added := 1; added < n; added++ {
		bestW, bestE, bestP := -1, -1, -1
		for e := 0; e < n; e++ {
			if inTree[e] {
				continue
			}
			for p := 0; p < n; p++ {
				if !inTree[p] {
					continue
				}
				w := h.edgeVars[e].Intersect(h.edgeVars[p]).Count()
				if w > bestW {
					bestW, bestE, bestP = w, e, p
				}
			}
		}
		inTree[bestE] = true
		parent[bestE] = bestP
	}
	kids := make([][]int, n)
	for e := 0; e < n; e++ {
		if parent[e] >= 0 {
			kids[parent[e]] = append(kids[parent[e]], e)
		}
	}
	return JoinTree{Root: 0, Parent: parent, Kids: kids}
}

// checkJoinTree verifies the connectedness condition: for every variable,
// the edges containing it induce a connected subtree.
func (h *Hypergraph) checkJoinTree(jt JoinTree) bool {
	n := h.NumEdges()
	if jt.Root < 0 || len(jt.Parent) != n {
		return false
	}
	// depth for LCA-free check: walk up from each edge containing v and
	// count how many have their parent also containing v; connected subtree
	// with m nodes has exactly m-1 such "internal" links... simpler: for each
	// variable, the subgraph induced on the tree must be connected. Do BFS.
	for v := 0; v < h.NumVars(); v++ {
		es := h.varEdges[v]
		if len(es) <= 1 {
			continue
		}
		in := make(map[int]bool, len(es))
		for _, e := range es {
			in[e] = true
		}
		// BFS within the induced subgraph starting from es[0].
		visited := map[int]bool{es[0]: true}
		queue := []int{es[0]}
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			var nbrs []int
			if p := jt.Parent[e]; p >= 0 {
				nbrs = append(nbrs, p)
			}
			nbrs = append(nbrs, jt.Kids[e]...)
			for _, f := range nbrs {
				if in[f] && !visited[f] {
					visited[f] = true
					queue = append(queue, f)
				}
			}
		}
		if len(visited) != len(es) {
			return false
		}
	}
	return true
}
