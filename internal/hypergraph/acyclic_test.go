package hypergraph

import (
	"math/rand"
	"testing"
)

func TestAcyclicBasics(t *testing.T) {
	cases := []struct {
		name string
		h    *Hypergraph
		want bool
	}{
		{"path5", Path(5), true},
		{"triangle", buildTriangle(), false},
		{"cycle4", Cycle(4), false},
		{"cycle7", Cycle(7), false},
		{"grid3x3", Grid(3, 3), false},
		{"Q0", buildQ0(), false},
	}
	for _, c := range cases {
		if got := c.h.IsAcyclic(); got != c.want {
			t.Errorf("%s: IsAcyclic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAcyclicBigEdgeAbsorbsCycle(t *testing.T) {
	// Triangle plus an edge covering all three vertices is α-acyclic
	// (α-acyclicity is not closed under subhypergraphs — the classic quirk).
	b := NewBuilder()
	b.MustEdge("e1", "X", "Y")
	b.MustEdge("e2", "Y", "Z")
	b.MustEdge("e3", "Z", "X")
	b.MustEdge("big", "X", "Y", "Z")
	if !b.MustBuild().IsAcyclic() {
		t.Error("triangle+cover should be α-acyclic")
	}
}

func TestJoinTreeStructure(t *testing.T) {
	h := Path(6) // 5 edges, acyclic
	jt, ok := h.JoinTree()
	if !ok {
		t.Fatal("path should have a join tree")
	}
	if len(jt.Parent) != h.NumEdges() {
		t.Fatalf("parent array size %d, want %d", len(jt.Parent), h.NumEdges())
	}
	// Exactly one root; every edge reaches the root.
	roots := 0
	for e := 0; e < h.NumEdges(); e++ {
		if jt.Parent[e] == -1 {
			roots++
			if e != jt.Root {
				t.Error("root mismatch")
			}
		}
		seen := map[int]bool{}
		for cur := e; cur != -1; cur = jt.Parent[cur] {
			if seen[cur] {
				t.Fatal("parent cycle")
			}
			seen[cur] = true
		}
		if !seen[jt.Root] {
			t.Errorf("edge %d does not reach root", e)
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots, want 1", roots)
	}
	if !h.checkJoinTree(jt) {
		t.Error("join tree violates connectedness")
	}
}

func TestRandomAcyclicAreAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		h := RandomAcyclic(rng, 2+rng.Intn(12), 2+rng.Intn(4))
		jt, ok := h.JoinTree()
		if !ok {
			t.Fatalf("RandomAcyclic produced cyclic hypergraph:\n%s", h)
		}
		if !h.checkJoinTree(jt) {
			t.Fatalf("join tree fails connectedness:\n%s", h)
		}
		if !h.IsConnected() {
			t.Fatal("RandomAcyclic produced disconnected hypergraph")
		}
	}
}

func TestGeneratorsShape(t *testing.T) {
	if Cycle(5).NumEdges() != 5 || Cycle(5).NumVars() != 5 {
		t.Error("Cycle shape wrong")
	}
	if Path(5).NumEdges() != 4 || Path(5).NumVars() != 5 {
		t.Error("Path shape wrong")
	}
	g := Grid(2, 3)
	if g.NumVars() != 6 || g.NumEdges() != 7 { // 2*2 horizontals + 3 verticals
		t.Errorf("Grid(2,3): %d vars %d edges", g.NumVars(), g.NumEdges())
	}
	c := Clique(5)
	if c.NumEdges() != 10 || c.NumVars() != 5 {
		t.Error("Clique shape wrong")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		h := Random(rng, 5, 8, 4)
		if !h.IsConnected() {
			t.Fatal("Random produced disconnected hypergraph")
		}
	}
}
