package hypergraph

import (
	"math/rand"
	"sync"
	"testing"
)

func TestInternerIDsAreDenseAndStable(t *testing.T) {
	it := NewInterner()
	a := NewVarset(100)
	a.Set(3)
	a.Set(77)
	b := NewVarset(100)
	b.Set(3)
	idA := it.ID(a)
	idB := it.ID(b)
	if idA == idB {
		t.Fatalf("distinct sets share ID %d", idA)
	}
	copyA := NewVarset(100)
	copyA.Set(3)
	copyA.Set(77)
	if got := it.ID(copyA); got != idA {
		t.Errorf("equal set re-interned as %d, want %d", got, idA)
	}
	// The interner must have cloned: mutating the original does not corrupt
	// the table, and the mutated set is a new entry.
	a.Set(50)
	if got := it.ID(copyA); got != idA {
		t.Errorf("mutating a caller's set changed the table: %d != %d", got, idA)
	}
	if got := it.ID(a); got == idA {
		t.Errorf("mutated set still maps to old ID %d", got)
	}
	if it.Len() != 3 { // a, b, and the mutated a
		t.Errorf("Len = %d, want 3", it.Len())
	}
}

func TestInternerConcurrent(t *testing.T) {
	it := NewInterner()
	const sets = 64
	ids := make([][]int, 8)
	var wg sync.WaitGroup
	for g := 0; g < len(ids); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]int, sets)
			for i := 0; i < sets; i++ {
				s := NewVarset(256)
				s.Set(i)
				s.Set((i * 7) % 256)
				ids[g][i] = it.ID(s)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(ids); g++ {
		for i := range ids[g] {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got ID %d for set %d, goroutine 0 got %d", g, ids[g][i], i, ids[0][i])
			}
		}
	}
	if it.Len() != sets {
		t.Errorf("Len = %d, want %d", it.Len(), sets)
	}
}

func TestVarsetScratchOps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		a, b := NewVarset(n), NewVarset(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		dst := NewVarset(n)
		a.IntersectInto(b, dst)
		if !dst.Equal(a.Intersect(b)) {
			t.Fatalf("IntersectInto disagrees with Intersect")
		}
		u := a.Clone()
		u.UnionWithAndNot(b, dst) // u |= b − (a∩b)
		want := a.Union(b.Subtract(dst))
		if !u.Equal(want) {
			t.Fatalf("UnionWithAndNot disagrees with Union/Subtract")
		}
		// NextSet walks exactly Elements.
		var walked []int
		for v := a.NextSet(0); v >= 0; v = a.NextSet(v + 1) {
			walked = append(walked, v)
		}
		els := a.Elements()
		if len(walked) != len(els) {
			t.Fatalf("NextSet walked %d elements, want %d", len(walked), len(els))
		}
		for i := range els {
			if walked[i] != els[i] {
				t.Fatalf("NextSet order diverges at %d", i)
			}
		}
		// NextNotIn(b) walks a − b.
		walked = walked[:0]
		for v := a.NextNotIn(b, 0); v >= 0; v = a.NextNotIn(b, v+1) {
			walked = append(walked, v)
		}
		diff := a.Subtract(b).Elements()
		if len(walked) != len(diff) {
			t.Fatalf("NextNotIn walked %d elements, want %d", len(walked), len(diff))
		}
		for i := range diff {
			if walked[i] != diff[i] {
				t.Fatalf("NextNotIn order diverges at %d", i)
			}
		}
		// Hash equality for equal sets; Reset/CopyFrom round-trip.
		c := a.Clone()
		if c.Hash() != a.Hash() {
			t.Fatal("equal sets hash differently")
		}
		c.Reset()
		if !c.Empty() {
			t.Fatal("Reset left elements behind")
		}
		c.CopyFrom(a)
		if !c.Equal(a) {
			t.Fatal("CopyFrom did not copy")
		}
	}
}
