package hypergraph

import (
	"math/rand"
	"testing"
)

func TestComponentsEmptySeparator(t *testing.T) {
	h := buildQ0()
	comps := h.Components(h.NewVarset())
	if len(comps) != 1 {
		t.Fatalf("connected hypergraph has %d [∅]-components, want 1", len(comps))
	}
	if !comps[0].Equal(h.AllVars()) {
		t.Error("[∅]-component should equal var(H)")
	}
}

// Paper example: removing var({s1,s5}) = {A,B,D,E,F,G} from Q0 leaves
// components {C}, {H}, {I}, {J}.
func TestComponentsQ0Separator(t *testing.T) {
	h := buildQ0()
	v := h.Vars([]int{h.EdgeByName("s1"), h.EdgeByName("s5")})
	comps := h.Components(v)
	if len(comps) != 4 {
		t.Fatalf("got %d components, want 4", len(comps))
	}
	singletons := map[string]bool{}
	for _, c := range comps {
		if c.Count() != 1 {
			t.Fatalf("component %s not a singleton", h.VarsetNames(c))
		}
		singletons[h.VarsetNames(c)] = true
	}
	for _, w := range []string{"{C}", "{H}", "{I}", "{J}"} {
		if !singletons[w] {
			t.Errorf("missing component %s", w)
		}
	}
}

func TestComponentsTriangle(t *testing.T) {
	h := buildTriangle()
	// Removing {Y} leaves {X,Z} connected via edge e3.
	v := h.NewVarset()
	v.Set(h.VarByName("Y"))
	comps := h.Components(v)
	if len(comps) != 1 || comps[0].Count() != 2 {
		t.Fatalf("[Y]-components wrong: %d comps", len(comps))
	}
}

func TestEdgesOfAndBoundary(t *testing.T) {
	h := buildQ0()
	v := h.Vars([]int{h.EdgeByName("s1"), h.EdgeByName("s5")})
	comps := h.Components(v)
	for _, c := range comps {
		es := h.EdgesOf(c)
		if len(es) != 1 {
			t.Errorf("edges(%s) has %d edges, want 1", h.VarsetNames(c), len(es))
		}
		vc := h.VarsOfEdgesOf(c)
		if !c.SubsetOf(vc) {
			t.Error("C should be a subset of var(edges(C))")
		}
	}
}

func TestHasVPath(t *testing.T) {
	h := buildQ0()
	sep := h.NewVarset()
	sep.Set(h.VarByName("E"))
	sep.Set(h.VarByName("G"))
	// With {E,G} removed, H is cut off from F? H-E are adjacent only via s6
	// which contains E; F connects to I via s7. H should not reach F.
	hIdx, fIdx := h.VarByName("H"), h.VarByName("F")
	if h.HasVPath(hIdx, fIdx, sep) {
		t.Error("H should not reach F with {E,G} removed")
	}
	// A reaches C with {E,G} removed (via s1, s2).
	if !h.HasVPath(h.VarByName("A"), h.VarByName("C"), sep) {
		t.Error("A should reach C with {E,G} removed")
	}
	// Separator members have no paths.
	if h.HasVPath(h.VarByName("E"), fIdx, sep) {
		t.Error("path from separator member should be false")
	}
	if !h.HasVPath(fIdx, fIdx, sep) {
		t.Error("trivial path x→x should hold")
	}
}

func TestComponentsWithin(t *testing.T) {
	h := buildQ0()
	sepOuter := h.Vars([]int{h.EdgeByName("s1")}) // {A,B,D}
	compsOuter := h.Components(sepOuter)
	if len(compsOuter) != 2 { // {C} and {E,F,G,H,I,J}
		t.Fatalf("[s1]-components = %d, want 2", len(compsOuter))
	}
	var big Varset
	for _, c := range compsOuter {
		if c.Count() > 1 {
			big = c
		}
	}
	// Inner separator var({s5}) = {E,F,G}: components within big.
	sepInner := h.Vars([]int{h.EdgeByName("s5")})
	inner := h.ComponentsWithin(sepInner, big)
	for _, c := range inner {
		if !c.SubsetOf(big) {
			t.Error("ComponentsWithin returned component outside region")
		}
	}
	// {H},{I},{J} are inside big; {C} is not.
	if len(inner) != 3 {
		t.Fatalf("inner components = %d, want 3", len(inner))
	}
}

// Property: components partition var(H)−V, and are pairwise [V]-disconnected.
func TestComponentsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		h := Random(rng, 3+rng.Intn(8), 4+rng.Intn(10), 4)
		v := h.NewVarset()
		for i := 0; i < h.NumVars()/3; i++ {
			v.Set(rng.Intn(h.NumVars()))
		}
		comps := h.Components(v)
		union := h.NewVarset()
		for i, c := range comps {
			if c.Empty() {
				t.Fatal("empty component")
			}
			if c.Intersects(v) {
				t.Fatal("component intersects separator")
			}
			if c.Intersects(union) {
				t.Fatal("components overlap")
			}
			union.UnionWith(c)
			// Maximality: every element of c is [V]-reachable from the first.
			els := c.Elements()
			for _, y := range els[1:] {
				if !h.HasVPath(els[0], y, v) {
					t.Fatal("component not connected")
				}
			}
			// Disconnected from other components.
			for j := 0; j < i; j++ {
				if h.HasVPath(els[0], comps[j].Elements()[0], v) {
					t.Fatal("distinct components connected")
				}
			}
		}
		rest := h.AllVars().Subtract(v)
		if !union.Equal(rest) {
			t.Fatalf("components cover %v, want %v", union.Elements(), rest.Elements())
		}
	}
}
