package hypergraph

// Shared fixtures. Q0 is the running example of the paper's introduction:
//
//	ans ← s1(A,B,D) ∧ s2(B,C,D) ∧ s3(B,E) ∧ s4(D,G) ∧ s5(E,F,G)
//	      ∧ s6(E,H) ∧ s7(F,I) ∧ s8(G,J)
func buildQ0() *Hypergraph {
	b := NewBuilder()
	b.MustEdge("s1", "A", "B", "D")
	b.MustEdge("s2", "B", "C", "D")
	b.MustEdge("s3", "B", "E")
	b.MustEdge("s4", "D", "G")
	b.MustEdge("s5", "E", "F", "G")
	b.MustEdge("s6", "E", "H")
	b.MustEdge("s7", "F", "I")
	b.MustEdge("s8", "G", "J")
	return b.MustBuild()
}

// triangle is the 3-cycle, the smallest cyclic graph (hypertree width 2).
func buildTriangle() *Hypergraph {
	b := NewBuilder()
	b.MustEdge("e1", "X", "Y")
	b.MustEdge("e2", "Y", "Z")
	b.MustEdge("e3", "Z", "X")
	return b.MustBuild()
}
