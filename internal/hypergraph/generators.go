package hypergraph

import (
	"fmt"
	"math/rand"
)

// Generators of structured and random hypergraphs, used by tests, property
// tests, and ablation benchmarks.

// Cycle returns the n-cycle graph as a hypergraph: edges {X_i, X_{i+1 mod n}}.
// For n ≥ 4 it has hypertree width 2.
func Cycle(n int) *Hypergraph {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.MustEdge(fmt.Sprintf("e%d", i), fmt.Sprintf("X%d", i), fmt.Sprintf("X%d", (i+1)%n))
	}
	return b.MustBuild()
}

// Path returns the n-vertex path graph (acyclic, width 1).
func Path(n int) *Hypergraph {
	b := NewBuilder()
	for i := 0; i+1 < n; i++ {
		b.MustEdge(fmt.Sprintf("e%d", i), fmt.Sprintf("X%d", i), fmt.Sprintf("X%d", i+1))
	}
	return b.MustBuild()
}

// Grid returns the r×c grid graph as binary edges; grids have hypertree
// width that grows with min(r,c).
func Grid(r, c int) *Hypergraph {
	b := NewBuilder()
	name := func(i, j int) string { return fmt.Sprintf("X%d_%d", i, j) }
	k := 0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.MustEdge(fmt.Sprintf("h%d", k), name(i, j), name(i, j+1))
				k++
			}
			if i+1 < r {
				b.MustEdge(fmt.Sprintf("v%d", k), name(i, j), name(i+1, j))
				k++
			}
		}
	}
	return b.MustBuild()
}

// Clique returns the n-clique as binary edges (width ⌈n/2⌉ hypertree width
// for the graph version is Θ(n); used as a hard instance).
func Clique(n int) *Hypergraph {
	b := NewBuilder()
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustEdge(fmt.Sprintf("e%d", k), fmt.Sprintf("X%d", i), fmt.Sprintf("X%d", j))
			k++
		}
	}
	return b.MustBuild()
}

// RandomAcyclic returns a connected α-acyclic hypergraph with n edges of
// arity up to maxArity, built top-down from a random tree so that a join
// tree exists by construction.
func RandomAcyclic(rng *rand.Rand, n, maxArity int) *Hypergraph {
	if maxArity < 2 {
		maxArity = 2
	}
	b := NewBuilder()
	nextVar := 0
	fresh := func() string { v := fmt.Sprintf("V%d", nextVar); nextVar++; return v }
	edgeVars := make([][]string, n)
	for e := 0; e < n; e++ {
		arity := 2 + rng.Intn(maxArity-1)
		var vs []string
		if e == 0 {
			for i := 0; i < arity; i++ {
				vs = append(vs, fresh())
			}
		} else {
			// Share a random non-empty subset of a random earlier edge
			// (tree parent), then add fresh variables.
			p := edgeVars[rng.Intn(e)]
			share := 1 + rng.Intn(len(p))
			perm := rng.Perm(len(p))
			for i := 0; i < share && len(vs) < arity; i++ {
				vs = append(vs, p[perm[i]])
			}
			for len(vs) < arity {
				vs = append(vs, fresh())
			}
		}
		edgeVars[e] = vs
		b.MustEdge(fmt.Sprintf("e%d", e), vs...)
	}
	return b.MustBuild()
}

// Random returns a connected random hypergraph with n edges of arity in
// [2,maxArity] over a pool of nv variables. Connectivity is forced by making
// each edge after the first share at least one variable with an earlier edge.
func Random(rng *rand.Rand, n, nv, maxArity int) *Hypergraph {
	if maxArity < 2 {
		maxArity = 2
	}
	if nv < maxArity {
		nv = maxArity
	}
	b := NewBuilder()
	used := []string{}
	pool := make([]string, nv)
	for i := range pool {
		pool[i] = fmt.Sprintf("V%d", i)
	}
	for e := 0; e < n; e++ {
		arity := 2 + rng.Intn(maxArity-1)
		seen := map[string]bool{}
		var vs []string
		if e > 0 {
			anchor := used[rng.Intn(len(used))]
			vs = append(vs, anchor)
			seen[anchor] = true
		}
		for len(vs) < arity {
			v := pool[rng.Intn(nv)]
			if !seen[v] {
				seen[v] = true
				vs = append(vs, v)
			}
		}
		for _, v := range vs {
			if !contains(used, v) {
				used = append(used, v)
			}
		}
		b.MustEdge(fmt.Sprintf("e%d", e), vs...)
	}
	return b.MustBuild()
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
