package hypergraph

import (
	"fmt"
	"strings"
)

// Parse reads a hypergraph from a simple text format: one edge per line,
//
//	name(V1,V2,...)
//
// Blank lines and lines starting with '#' or '%' are ignored. Edge names may
// be omitted ("(A,B)"), in which case edges are named e0, e1, ...
func Parse(text string) (*Hypergraph, error) {
	b := NewBuilder()
	lineNo := 0
	auto := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		open := strings.IndexByte(line, '(')
		closeIdx := strings.LastIndexByte(line, ')')
		if open < 0 || closeIdx < open {
			return nil, fmt.Errorf("hypergraph: line %d: expected name(vars...)", lineNo)
		}
		name := strings.TrimSpace(line[:open])
		if name == "" {
			name = fmt.Sprintf("e%d", auto)
			auto++
		}
		var vars []string
		for _, f := range strings.Split(line[open+1:closeIdx], ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				return nil, fmt.Errorf("hypergraph: line %d: empty variable", lineNo)
			}
			vars = append(vars, f)
		}
		if err := b.Edge(name, vars...); err != nil {
			return nil, fmt.Errorf("hypergraph: line %d: %w", lineNo, err)
		}
	}
	return b.Build()
}

// MustParse is Parse but panics on error; intended for fixtures.
func MustParse(text string) *Hypergraph {
	h, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return h
}
