package hypergraph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func setOf(n int, elems ...int) Varset {
	s := NewVarset(n)
	for _, e := range elems {
		s.Set(e)
	}
	return s
}

func TestVarsetBasics(t *testing.T) {
	s := NewVarset(130)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, v := range []int{0, 64, 129} {
		if !s.Has(v) {
			t.Errorf("Has(%d) = false", v)
		}
	}
	if s.Has(1) || s.Has(63) || s.Has(128) {
		t.Error("Has reports absent element")
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Clear failed")
	}
	got := s.Elements()
	want := []int{0, 129}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Elements = %v, want %v", got, want)
	}
}

func TestVarsetHasOutOfRange(t *testing.T) {
	s := NewVarset(10)
	if s.Has(1000) {
		t.Error("Has(1000) on capacity-10 set should be false")
	}
}

func TestVarsetOps(t *testing.T) {
	a := setOf(100, 1, 2, 3, 70)
	b := setOf(100, 3, 70, 99)
	u := a.Union(b)
	if u.Count() != 5 || !u.Has(1) || !u.Has(99) {
		t.Errorf("Union wrong: %v", u.Elements())
	}
	i := a.Intersect(b)
	if i.Count() != 2 || !i.Has(3) || !i.Has(70) {
		t.Errorf("Intersect wrong: %v", i.Elements())
	}
	d := a.Subtract(b)
	if d.Count() != 2 || !d.Has(1) || !d.Has(2) {
		t.Errorf("Subtract wrong: %v", d.Elements())
	}
	if !i.SubsetOf(a) || !i.SubsetOf(b) || a.SubsetOf(b) {
		t.Error("SubsetOf wrong")
	}
	if !a.Intersects(b) {
		t.Error("Intersects wrong")
	}
	if a.Intersects(setOf(100, 50)) {
		t.Error("Intersects false positive")
	}
	// Originals untouched by the non-destructive ops.
	if a.Count() != 4 || b.Count() != 3 {
		t.Error("operands mutated")
	}
}

func TestVarsetEqualKey(t *testing.T) {
	a := setOf(100, 5, 50)
	b := setOf(100, 50, 5)
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("equal sets differ in Equal/Key")
	}
	c := setOf(100, 5, 51)
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("distinct sets compare equal")
	}
}

func TestVarsetCloneIndependent(t *testing.T) {
	a := setOf(64, 1, 2)
	b := a.Clone()
	b.Set(3)
	if a.Has(3) {
		t.Error("Clone aliases storage")
	}
}

// Property: Union/Intersect/Subtract agree with map-based model.
func TestVarsetQuickModel(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := NewVarset(n), NewVarset(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			ma[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			mb[int(y)] = true
		}
		union := map[int]bool{}
		inter := map[int]bool{}
		diff := map[int]bool{}
		for k := range ma {
			union[k] = true
			if mb[k] {
				inter[k] = true
			} else {
				diff[k] = true
			}
		}
		for k := range mb {
			union[k] = true
		}
		eq := func(s Varset, m map[int]bool) bool {
			if s.Count() != len(m) {
				return false
			}
			for k := range m {
				if !s.Has(k) {
					return false
				}
			}
			return true
		}
		return eq(a.Union(b), union) && eq(a.Intersect(b), inter) && eq(a.Subtract(b), diff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Elements is sorted and consistent with ForEach and Count.
func TestVarsetElementsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := NewVarset(300)
		for i := 0; i < 40; i++ {
			s.Set(rng.Intn(300))
		}
		els := s.Elements()
		if !sort.IntsAreSorted(els) {
			t.Fatalf("Elements not sorted: %v", els)
		}
		if len(els) != s.Count() {
			t.Fatalf("len(Elements)=%d Count=%d", len(els), s.Count())
		}
		var fe []int
		s.ForEach(func(v int) { fe = append(fe, v) })
		if len(fe) != len(els) {
			t.Fatal("ForEach disagrees with Elements")
		}
		for i := range fe {
			if fe[i] != els[i] {
				t.Fatal("ForEach order differs from Elements")
			}
		}
	}
}
