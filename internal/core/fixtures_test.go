package core

import "repro/internal/hypergraph"

// Q0 from the paper's introduction (hypertree width 2).
func buildQ0() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.MustEdge("s1", "A", "B", "D")
	b.MustEdge("s2", "B", "C", "D")
	b.MustEdge("s3", "B", "E")
	b.MustEdge("s4", "D", "G")
	b.MustEdge("s5", "E", "F", "G")
	b.MustEdge("s6", "E", "H")
	b.MustEdge("s7", "F", "I")
	b.MustEdge("s8", "G", "J")
	return b.MustBuild()
}

// Q1 of Section 6 (hypertree width 2, 9 atoms):
//
//	ans ← a(S,X,X′,C,F) ∧ b(S,Y,Y′,C′,F′) ∧ c(C,C′,Z) ∧ d(X,Z)
//	    ∧ e(Y,Z) ∧ f(F,F′,Z′) ∧ g(X′,Z′) ∧ h(Y′,Z′) ∧ j(J,X,Y,X′,Y′)
func buildQ1() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.MustEdge("a", "S", "X", "X1", "C", "F")
	b.MustEdge("b", "S", "Y", "Y1", "C1", "F1")
	b.MustEdge("c", "C", "C1", "Z")
	b.MustEdge("d", "X", "Z")
	b.MustEdge("e", "Y", "Z")
	b.MustEdge("f", "F", "F1", "Z1")
	b.MustEdge("g", "X1", "Z1")
	b.MustEdge("h", "Y1", "Z1")
	b.MustEdge("j", "J", "X", "Y", "X1", "Y1")
	return b.MustBuild()
}
