package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// The parallel solver computes exactly the sequential minimum on random
// hypergraphs across TAF shapes and worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tafs := map[string]weights.TAF[float64]{
		"count": weights.CountVerticesTAF(),
		"mixed": {
			Semiring: weights.SumFloat{},
			Vertex: func(p weights.NodeInfo) float64 {
				return float64(2*len(p.Lambda) + p.Chi.Count())
			},
			Edge: func(parent, child weights.NodeInfo) float64 {
				return float64(parent.Chi.Intersect(child.Chi).Count())
			},
		},
	}
	for trial := 0; trial < 20; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(5), 4+rng.Intn(6), 3)
		for name, taf := range tafs {
			for _, workers := range []int{1, 4} {
				seq, errS := MinimalK(h, 2, taf, Options{})
				par, errP := ParallelMinimalK(h, 2, taf, ParallelOptions{Workers: workers})
				if (errS == nil) != (errP == nil) {
					t.Fatalf("%s workers=%d: feasibility disagrees: %v vs %v\n%s",
						name, workers, errS, errP, h)
				}
				if errS != nil {
					if !errors.Is(errS, ErrNoDecomposition) {
						t.Fatal(errS)
					}
					continue
				}
				if seq.Weight != par.Weight {
					t.Fatalf("%s workers=%d: weights differ: %v vs %v\n%s",
						name, workers, seq.Weight, par.Weight, h)
				}
				if err := par.Decomp.ValidateNF(); err != nil {
					t.Fatalf("%s: parallel output invalid: %v", name, err)
				}
				if got := taf.Evaluate(par.Decomp); got != par.Weight {
					t.Fatalf("%s: parallel weight %v != evaluated %v", name, par.Weight, got)
				}
			}
		}
	}
}

// With deterministic tie-breaking the parallel solver returns the identical
// decomposition, not merely an equally-weighted one.
func TestParallelDeterministic(t *testing.T) {
	h := buildQ1()
	taf := weights.LexTAF(3)
	seq, err := MinimalK(h, 3, taf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelMinimalK(h, 3, taf, ParallelOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Decomp.String() != par.Decomp.String() {
		t.Errorf("decompositions differ:\nseq:\n%s\npar:\n%s", seq.Decomp, par.Decomp)
	}
}

func TestParallelInfeasible(t *testing.T) {
	_, err := ParallelMinimalK(hypergraph.Cycle(5), 1, weights.CountVerticesTAF(),
		ParallelOptions{Workers: 4})
	if !errors.Is(err, ErrNoDecomposition) {
		t.Errorf("expected ErrNoDecomposition, got %v", err)
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	h := hypergraph.Cycle(4)
	res, err := ParallelMinimalK(h, 2, weights.CountVerticesTAF(), ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Decomp.ValidateNF(); err != nil {
		t.Error(err)
	}
}

// ParallelMinimalKCtx over a shared SearchContext must agree with the
// one-shot entry point, and the context must survive concurrent solves.
func TestParallelMinimalKCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	taf := weights.CountVerticesTAF()
	for trial := 0; trial < 10; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(5), 4+rng.Intn(6), 3)
		sc, err := NewSearchContext(h, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		oneShot, errO := ParallelMinimalK(h, 2, taf, ParallelOptions{Workers: 4})
		ctxRes, errC := ParallelMinimalKCtx(sc, taf, ParallelOptions{Workers: 4})
		if (errO == nil) != (errC == nil) {
			t.Fatalf("feasibility disagrees: %v vs %v\n%s", errO, errC, h)
		}
		if errO != nil {
			if !errors.Is(errO, ErrNoDecomposition) {
				t.Fatal(errO)
			}
			continue
		}
		if oneShot.Weight != ctxRes.Weight {
			t.Fatalf("weights differ: %v vs %v\n%s", oneShot.Weight, ctxRes.Weight, h)
		}
		// Re-solving the same context must not corrupt shared state.
		again, err := ParallelMinimalKCtx(sc, taf, ParallelOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if again.Weight != ctxRes.Weight {
			t.Fatalf("context reuse changed the weight: %v vs %v", again.Weight, ctxRes.Weight)
		}
	}
}
