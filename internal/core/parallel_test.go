package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// The parallel solver computes exactly the sequential minimum on random
// hypergraphs across TAF shapes and worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tafs := map[string]weights.TAF[float64]{
		"count": weights.CountVerticesTAF(),
		"mixed": {
			Semiring: weights.SumFloat{},
			Vertex: func(p weights.NodeInfo) float64 {
				return float64(2*len(p.Lambda) + p.Chi.Count())
			},
			Edge: func(parent, child weights.NodeInfo) float64 {
				return float64(parent.Chi.Intersect(child.Chi).Count())
			},
		},
	}
	for trial := 0; trial < 20; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(5), 4+rng.Intn(6), 3)
		for name, taf := range tafs {
			for _, workers := range []int{1, 4} {
				seq, errS := MinimalK(h, 2, taf, Options{})
				par, errP := ParallelMinimalK(h, 2, taf, ParallelOptions{Workers: workers})
				if (errS == nil) != (errP == nil) {
					t.Fatalf("%s workers=%d: feasibility disagrees: %v vs %v\n%s",
						name, workers, errS, errP, h)
				}
				if errS != nil {
					if !errors.Is(errS, ErrNoDecomposition) {
						t.Fatal(errS)
					}
					continue
				}
				if seq.Weight != par.Weight {
					t.Fatalf("%s workers=%d: weights differ: %v vs %v\n%s",
						name, workers, seq.Weight, par.Weight, h)
				}
				if err := par.Decomp.ValidateNF(); err != nil {
					t.Fatalf("%s: parallel output invalid: %v", name, err)
				}
				if got := taf.Evaluate(par.Decomp); got != par.Weight {
					t.Fatalf("%s: parallel weight %v != evaluated %v", name, par.Weight, got)
				}
			}
		}
	}
}

// With deterministic tie-breaking the parallel solver returns the identical
// decomposition, not merely an equally-weighted one.
func TestParallelDeterministic(t *testing.T) {
	h := buildQ1()
	taf := weights.LexTAF(3)
	seq, err := MinimalK(h, 3, taf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelMinimalK(h, 3, taf, ParallelOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Decomp.String() != par.Decomp.String() {
		t.Errorf("decompositions differ:\nseq:\n%s\npar:\n%s", seq.Decomp, par.Decomp)
	}
}

func TestParallelInfeasible(t *testing.T) {
	_, err := ParallelMinimalK(hypergraph.Cycle(5), 1, weights.CountVerticesTAF(),
		ParallelOptions{Workers: 4})
	if !errors.Is(err, ErrNoDecomposition) {
		t.Errorf("expected ErrNoDecomposition, got %v", err)
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	h := hypergraph.Cycle(4)
	res, err := ParallelMinimalK(h, 2, weights.CountVerticesTAF(), ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Decomp.ValidateNF(); err != nil {
		t.Error(err)
	}
}
