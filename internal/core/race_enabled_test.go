//go:build race

package core

// raceEnabled gates allocation-count assertions: the race detector changes
// allocation behaviour, so AllocsPerRun pins only hold without it.
const raceEnabled = true
