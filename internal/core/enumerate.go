package core

import (
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// EnumerateNF enumerates (up to limit > 0) all hypertree decompositions in
// kNFD_H, calling visit for each; visit returning false stops enumeration
// early. The enumeration realizes the full non-deterministic choice space of
// k-decomp (Theorems 7.3 and 7.6: runs of k-decomp ↔ kNFD_H), so it is
// exponential and intended as a brute-force test oracle on small inputs.
// It returns the number of decompositions visited.
func EnumerateNF(h *hypergraph.Hypergraph, k int, limit int, visit func(*hypertree.Decomposition) bool) (int, error) {
	sc, err := NewSearchContext(h, k, Options{})
	if err != nil {
		return 0, err
	}
	count := 0
	emit := func(root *hypertree.Node) bool {
		d := &hypertree.Decomposition{H: h, Root: root}
		d.Nodes()
		count++
		return visit(d) && (limit <= 0 || count < limit)
	}
	var enumSub func(c *compEntry, iface hypergraph.Varset, yield func(*hypertree.Node) bool) bool
	enumSub = func(c *compEntry, iface hypergraph.Varset, yield func(*hypertree.Node) bool) bool {
		// The oracle deliberately scans all Ψ k-vertices (no index pruning).
		for _, s := range sc.kverts {
			if !sc.candidateOK(s, c, iface) {
				continue
			}
			st := sc.structOf(s, c)
			// Enumerate the cartesian product of child subtree choices.
			subtrees := make([]*hypertree.Node, len(st.children))
			var product func(i int) bool
			product = func(i int) bool {
				if i == len(st.children) {
					n := hypertree.NewNode(st.chi.Clone(), s.edges)
					for _, t := range subtrees {
						n.AddChild(cloneNode(t))
					}
					return yield(n)
				}
				cr := &st.children[i]
				return enumSub(cr.comp, cr.iface, func(t *hypertree.Node) bool {
					subtrees[i] = t
					return product(i + 1)
				})
			}
			if !product(0) {
				return false
			}
		}
		return true
	}
	enumSub(sc.rootComp(), sc.empty, emit)
	return count, nil
}

func cloneNode(n *hypertree.Node) *hypertree.Node {
	m := &hypertree.Node{Chi: n.Chi.Clone(), Lambda: append([]int(nil), n.Lambda...)}
	for _, c := range n.Children {
		m.Children = append(m.Children, cloneNode(c))
	}
	return m
}

// MinWeightExhaustive computes min taf over kNFD_H by brute force; a test
// oracle for MinimalK and MinWeight on small hypergraphs. ok is false when
// kNFD_H is empty. limit caps the number of decompositions inspected
// (0 = unlimited).
func MinWeightExhaustive[W any](h *hypergraph.Hypergraph, k, limit int, taf weights.TAF[W]) (w W, ok bool, err error) {
	var best W
	found := false
	_, err = EnumerateNF(h, k, limit, func(d *hypertree.Decomposition) bool {
		v := taf.Evaluate(d)
		if !found || taf.Semiring.Less(v, best) {
			best, found = v, true
		}
		return true
	})
	return best, found, err
}
