package core

import (
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// EnumerateNF enumerates (up to limit > 0) all hypertree decompositions in
// kNFD_H, calling visit for each; visit returning false stops enumeration
// early. The enumeration realizes the full non-deterministic choice space of
// k-decomp (Theorems 7.3 and 7.6: runs of k-decomp ↔ kNFD_H), so it is
// exponential and intended as a brute-force test oracle on small inputs.
// It returns the number of decompositions visited.
func EnumerateNF(h *hypergraph.Hypergraph, k int, limit int, visit func(*hypertree.Decomposition) bool) (int, error) {
	g, err := newGraph(h, k, 0)
	if err != nil {
		return 0, err
	}
	count := 0
	emit := func(root *hypertree.Node) bool {
		d := &hypertree.Decomposition{H: h, Root: root}
		d.Nodes()
		count++
		return visit(d) && (limit <= 0 || count < limit)
	}
	var enumSub func(c *compEntry, iface hypergraph.Varset, yield func(*hypertree.Node) bool) bool
	enumSub = func(c *compEntry, iface hypergraph.Varset, yield func(*hypertree.Node) bool) bool {
		for _, s := range g.kverts {
			if !g.candidateOK(s, c, iface) {
				continue
			}
			children := g.childComps(s, c)
			// Enumerate the cartesian product of child subtree choices.
			subtrees := make([]*hypertree.Node, len(children))
			var product func(i int) bool
			product = func(i int) bool {
				if i == len(children) {
					n := hypertree.NewNode(g.chiOf(s, c), s.edges)
					for _, st := range subtrees {
						n.AddChild(cloneNode(st))
					}
					return yield(n)
				}
				cc := children[i]
				return enumSub(cc, g.ifaceFor(s, cc), func(st *hypertree.Node) bool {
					subtrees[i] = st
					return product(i + 1)
				})
			}
			if !product(0) {
				return false
			}
		}
		return true
	}
	enumSub(g.rootComp(), h.NewVarset(), emit)
	return count, nil
}

func cloneNode(n *hypertree.Node) *hypertree.Node {
	m := &hypertree.Node{Chi: n.Chi.Clone(), Lambda: append([]int(nil), n.Lambda...)}
	for _, c := range n.Children {
		m.Children = append(m.Children, cloneNode(c))
	}
	return m
}

// MinWeightExhaustive computes min taf over kNFD_H by brute force; a test
// oracle for MinimalK and MinWeight on small hypergraphs. ok is false when
// kNFD_H is empty. limit caps the number of decompositions inspected
// (0 = unlimited).
func MinWeightExhaustive[W any](h *hypergraph.Hypergraph, k, limit int, taf weights.TAF[W]) (w W, ok bool, err error) {
	var best W
	found := false
	_, err = EnumerateNF(h, k, limit, func(d *hypertree.Decomposition) bool {
		v := taf.Evaluate(d)
		if !found || taf.Semiring.Less(v, best) {
			best, found = v, true
		}
		return true
	})
	return best, found, err
}
