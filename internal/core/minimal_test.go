package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

func TestHypertreeWidthKnownValues(t *testing.T) {
	cases := []struct {
		name string
		h    *hypergraph.Hypergraph
		want int
	}{
		{"path5", hypergraph.Path(5), 1},
		{"triangle", hypergraph.Cycle(3), 2},
		{"cycle4", hypergraph.Cycle(4), 2},
		{"cycle8", hypergraph.Cycle(8), 2},
		{"Q0", buildQ0(), 2},
		{"Q1", buildQ1(), 2},
		{"grid3x3", hypergraph.Grid(3, 3), 2},
	}
	for _, c := range cases {
		w, d, err := HypertreeWidth(c.h, 4, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if w != c.want {
			t.Errorf("%s: hw = %d, want %d", c.name, w, c.want)
		}
		if err := d.ValidateNF(); err != nil {
			t.Errorf("%s: output not a valid NF decomposition: %v", c.name, err)
		}
		if d.Width() > w {
			t.Errorf("%s: output width %d exceeds hw %d", c.name, d.Width(), w)
		}
	}
}

func TestAcyclicHasWidthOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		h := hypergraph.RandomAcyclic(rng, 2+rng.Intn(8), 4)
		ok, err := HasWidthK(h, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("acyclic hypergraph reported hw > 1:\n%s", h)
		}
	}
}

func TestDecomposeKFailsBelowWidth(t *testing.T) {
	_, err := DecomposeK(hypergraph.Cycle(5), 1, Options{})
	if !errors.Is(err, ErrNoDecomposition) {
		t.Errorf("cycle with k=1 should fail, got %v", err)
	}
	ok, err := HasWidthK(hypergraph.Cycle(5), 1, Options{})
	if err != nil || ok {
		t.Errorf("HasWidthK(cycle,1) = %v, %v", ok, err)
	}
}

func TestMinimalOutputsAreValidNF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(5), 4+rng.Intn(6), 3)
		for k := 1; k <= 3; k++ {
			res, err := MinimalK(h, k, weights.CountVerticesTAF(), Options{})
			if errors.Is(err, ErrNoDecomposition) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Decomp.ValidateNF(); err != nil {
				t.Fatalf("k=%d output invalid: %v\n%s\n%s", k, err, h, res.Decomp)
			}
			if res.Decomp.Width() > k {
				t.Fatalf("width %d > k %d", res.Decomp.Width(), k)
			}
		}
	}
}

// Thm 4.4 soundness: the weight reported by MinimalK equals the TAF
// evaluated on the returned decomposition, and equals the exhaustive
// minimum over kNFD_H.
func TestMinimalMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tafs := map[string]weights.TAF[float64]{
		"count":  weights.CountVerticesTAF(),
		"width":  weights.WidthTAF(),
		"maxsep": weights.MaxSeparatorTAF(),
		"mixed": {
			Semiring: weights.SumFloat{},
			Vertex: func(p weights.NodeInfo) float64 {
				return float64(3*len(p.Lambda) + p.Chi.Count())
			},
			Edge: func(parent, child weights.NodeInfo) float64 {
				return float64(parent.Chi.Intersect(child.Chi).Count() * 2)
			},
		},
	}
	for trial := 0; trial < 12; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(3), 4+rng.Intn(4), 3)
		for name, taf := range tafs {
			k := 2
			res, err := MinimalK(h, k, taf, Options{})
			noDecomp := errors.Is(err, ErrNoDecomposition)
			if err != nil && !noDecomp {
				t.Fatal(err)
			}
			exW, exOK, err := MinWeightExhaustive(h, k, 0, taf)
			if err != nil {
				t.Fatal(err)
			}
			if noDecomp != !exOK {
				t.Fatalf("%s: feasibility disagrees (minimal=%v exhaustive=%v)\n%s",
					name, !noDecomp, exOK, h)
			}
			if noDecomp {
				continue
			}
			if res.Weight != exW {
				t.Fatalf("%s: MinimalK weight %v != exhaustive %v\n%s\n%s",
					name, res.Weight, exW, h, res.Decomp)
			}
			if got := taf.Evaluate(res.Decomp); got != res.Weight {
				t.Fatalf("%s: Evaluate(decomp) = %v != reported %v", name, got, res.Weight)
			}
		}
	}
}

// Cross-check: the independent threshold-style recursion agrees with the
// candidate-graph solver on minimal weights.
func TestMinWeightAgreesWithMinimalK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	taf := weights.TAF[float64]{
		Semiring: weights.SumFloat{},
		Vertex:   func(p weights.NodeInfo) float64 { return float64(len(p.Lambda)*5 + p.Chi.Count()) },
		Edge: func(parent, child weights.NodeInfo) float64 {
			return float64(parent.Chi.Intersect(child.Chi).Count())
		},
	}
	for trial := 0; trial < 25; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(5), 4+rng.Intn(6), 3)
		for k := 1; k <= 3; k++ {
			res, err := MinimalK(h, k, taf, Options{})
			noDecomp := errors.Is(err, ErrNoDecomposition)
			if err != nil && !noDecomp {
				t.Fatal(err)
			}
			mw, ok, err := MinWeight(h, k, taf, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ok == noDecomp {
				t.Fatalf("k=%d feasibility disagrees\n%s", k, h)
			}
			if !ok {
				continue
			}
			if mw != res.Weight {
				t.Fatalf("k=%d: MinWeight %v != MinimalK %v\n%s", k, mw, res.Weight, h)
			}
		}
	}
}

func TestThresholdDecision(t *testing.T) {
	h := buildQ0()
	taf := weights.CountVerticesTAF()
	res, err := MinimalK(h, 2, taf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	min := res.Weight
	for _, tc := range []struct {
		t    float64
		want bool
	}{{min, true}, {min + 1, true}, {min - 0.5, false}, {0, false}} {
		got, err := Threshold(h, 2, taf, tc.t, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Threshold(t=%v) = %v, want %v (min=%v)", tc.t, got, tc.want, min)
		}
	}
	// Infeasible class: k = 1 for a cyclic hypergraph.
	got, err := Threshold(h, 1, taf, 1e18, Options{})
	if err != nil || got {
		t.Errorf("Threshold with empty kNFD should be false, got %v, %v", got, err)
	}
}

// Lexicographically minimal decompositions of Q0 (Example 3.1). The paper
// presents HD″ (profile 6×w1 + 1×w2, ω_lex = 15) as minimal among the
// complete decompositions of Fig 1; over the full class kNFD the minimum is
// in fact the 5-vertex decomposition rooted at {s1,s5} with profile
// 4×w1 + 1×w2 (ω_lex = 13), which is not complete. We assert the exhaustive
// kNFD minimum and that it beats both Fig 1 profiles.
func TestQ0LexMinimal(t *testing.T) {
	h := buildQ0()
	taf := weights.LexTAF(2)
	res, err := MinimalK(h, 2, taf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Decomp.ValidateNF(); err != nil {
		t.Fatal(err)
	}
	if res.Weight[0] != 4 || res.Weight[1] != 1 {
		t.Errorf("lex-minimal profile = %v, want [4 1]", res.Weight)
	}
	got := res.Weight.Radix(int64(h.NumEdges()) + 1)
	if got != 13 {
		t.Errorf("ω_lex = %d, want 13", got)
	}
	if got >= 15 {
		t.Errorf("minimal ω_lex %d should beat HD″'s 15", got)
	}
	exW, ok, err := MinWeightExhaustive(h, 2, 0, taf)
	if err != nil || !ok {
		t.Fatalf("exhaustive failed: %v %v", ok, err)
	}
	if taf.Semiring.Less(exW, res.Weight) || taf.Semiring.Less(res.Weight, exW) {
		t.Errorf("exhaustive minimum %v != algorithm %v", exW, res.Weight)
	}
}

// Thm 4.4 completeness (E12): with random tie-breaking, the algorithm can
// output every minimal decomposition. On the triangle with the trivial
// count TAF, enumerate the distinct minimal outputs over many seeded runs
// and compare with the exhaustive minima.
func TestRandomTieBreakingReachesAllMinima(t *testing.T) {
	h := hypergraph.Cycle(3)
	taf := weights.CountVerticesTAF()
	res, err := MinimalK(h, 2, taf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	minW := res.Weight
	want := map[string]bool{}
	_, err = EnumerateNF(h, 2, 0, func(d *hypertree.Decomposition) bool {
		if taf.Evaluate(d) == minW {
			want[d.String()] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 2 {
		t.Fatalf("test needs ≥ 2 minima to be meaningful, found %d", len(want))
	}
	got := map[string]bool{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 400 && len(got) < len(want); i++ {
		r, err := MinimalK(h, 2, taf, Options{Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		if r.Weight != minW {
			t.Fatalf("random run returned non-minimal weight %v", r.Weight)
		}
		s := r.Decomp.String()
		if !want[s] {
			t.Fatalf("random run produced a non-minimal or unknown decomposition:\n%s", s)
		}
		got[s] = true
	}
	if len(got) != len(want) {
		t.Errorf("random tie-breaking reached %d of %d minimal decompositions", len(got), len(want))
	}
}

func TestEnumerateCountsTriangle(t *testing.T) {
	h := hypergraph.Cycle(3)
	n, err := EnumerateNF(h, 2, 0, func(*hypertree.Decomposition) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("triangle should have width-2 NF decompositions")
	}
	// Every enumerated decomposition is a valid NF decomposition.
	valid := 0
	_, err = EnumerateNF(h, 2, 0, func(d *hypertree.Decomposition) bool {
		if err := d.ValidateNF(); err != nil {
			t.Fatalf("enumerated decomposition invalid: %v\n%s", err, d)
		}
		valid++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if valid != n {
		t.Errorf("second enumeration count %d != first %d", valid, n)
	}
	// Limit is honored.
	m, err := EnumerateNF(h, 2, 3, func(*hypertree.Decomposition) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Errorf("limit=3 visited %d", m)
	}
}

func TestPsiValues(t *testing.T) {
	// Theorem 4.5 remark: k=3, n=5 → Ψ=25; k=4, n=10 → Ψ=385.
	if got := Psi(5, 3); got != 25 {
		t.Errorf("Ψ(5,3) = %d, want 25", got)
	}
	if got := Psi(10, 4); got != 385 {
		t.Errorf("Ψ(10,4) = %d, want 385", got)
	}
	if got := Psi(3, 5); got != 7 { // k > n: all non-empty subsets
		t.Errorf("Ψ(3,5) = %d, want 7", got)
	}
}

func TestMaxKVerticesGuard(t *testing.T) {
	h := hypergraph.Clique(6) // 15 edges
	_, err := MinimalK(h, 3, weights.CountVerticesTAF(), Options{MaxKVertices: 10})
	if err == nil || errors.Is(err, ErrNoDecomposition) {
		t.Errorf("expected guard error, got %v", err)
	}
}

func TestBadInputs(t *testing.T) {
	h := buildQ0()
	if _, err := MinimalK(h, 0, weights.CountVerticesTAF(), Options{}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := MinimalK(h, 2, weights.TAF[float64]{}, Options{}); err == nil {
		t.Error("nil semiring should error")
	}
}

func TestStatsReported(t *testing.T) {
	h := buildQ0()
	res, st, err := MinimalKWithStats(h, 2, weights.CountVerticesTAF(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || st.KVertices != int(Psi(8, 2)) {
		t.Errorf("stats KVertices = %d, want Ψ(8,2) = %d", st.KVertices, Psi(8, 2))
	}
	if st.Solutions == 0 || st.Subproblems == 0 || st.Components == 0 {
		t.Errorf("stats should be nonzero: %+v", st)
	}
}

// The edge-independent cache must not change results (ablation E13 safety).
func TestEdgeIndependentCacheConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vertex := func(p weights.NodeInfo) float64 { return float64(len(p.Lambda)*7 + p.Chi.Count()) }
	edge := func(_, child weights.NodeInfo) float64 { return float64(child.Chi.Count()) }
	withCache := weights.TAF[float64]{Semiring: weights.SumFloat{}, Vertex: vertex, Edge: edge, EdgeParentIndependent: true}
	without := weights.TAF[float64]{Semiring: weights.SumFloat{}, Vertex: vertex, Edge: edge}
	for trial := 0; trial < 20; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(5), 5+rng.Intn(5), 3)
		a, errA := MinimalK(h, 2, withCache, Options{})
		b, errB := MinimalK(h, 2, without, Options{})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("feasibility differs with cache\n%s", h)
		}
		if errA != nil {
			continue
		}
		if a.Weight != b.Weight {
			t.Fatalf("cache changed weight: %v vs %v\n%s", a.Weight, b.Weight, h)
		}
	}
}
