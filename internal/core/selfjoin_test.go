package core

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// Self-join hypergraphs: two hyperedges sharing a base relation carry
// distinct alias labels but may have *identical variable sets* (parallel
// edges, e.g. "e AS e1(X,Y), e AS e2(X,Y)"). The audit: everything in the
// candidate machinery must key on edge indices and k-vertex indices, never
// on variable sets alone — parallel edges are distinct k-vertices with
// distinct interned λ IDs, posting lists list both, and the indexed solver
// matches the full-scan oracle exactly.

// parallelEdgeCorpus builds hypergraphs containing edges with identical
// varsets, as produced by aliased self-joins (pre-augmentation).
func parallelEdgeCorpus() map[string]*hypergraph.Hypergraph {
	build := func(edges [][]string) *hypergraph.Hypergraph {
		b := hypergraph.NewBuilder()
		for _, e := range edges {
			b.MustEdge(e[0], e[1:]...)
		}
		return b.MustBuild()
	}
	return map[string]*hypergraph.Hypergraph{
		"parallel-pair": build([][]string{
			{"e1", "X", "Y"}, {"e2", "X", "Y"}, {"r", "Y", "Z"},
		}),
		"parallel-triple": build([][]string{
			{"e1", "X", "Y"}, {"e2", "X", "Y"}, {"e3", "X", "Y"},
		}),
		"two-parallel-groups": build([][]string{
			{"e1", "X", "Y"}, {"e2", "X", "Y"},
			{"f1", "Y", "Z"}, {"f2", "Y", "Z"},
			{"g", "Z", "W", "X"},
		}),
		"self-join-triangle": build([][]string{
			{"e1", "X", "Y"}, {"e2", "Y", "Z"}, {"e3", "Z", "X"},
		}),
	}
}

func TestParallelEdgesAreDistinctKVertices(t *testing.T) {
	h := parallelEdgeCorpus()["parallel-pair"]
	for k := 1; k <= 3; k++ {
		sc, err := NewSearchContext(h, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := int64(sc.NumKVertices()), Psi(3, k); got != want {
			t.Fatalf("k=%d: %d k-vertices, want Ψ(3,%d)=%d — parallel edges conflated?", k, got, k, want)
		}
		// Singleton k-vertices of the two parallel edges: identical vars,
		// distinct interned λ IDs (the cost model memoizes per λ ID).
		var lamE1, lamE2 int32 = -1, -1
		e1, e2 := h.EdgeByName("e1"), h.EdgeByName("e2")
		for _, kv := range sc.kverts {
			if len(kv.edges) != 1 {
				continue
			}
			switch kv.edges[0] {
			case e1:
				lamE1 = kv.lamID
			case e2:
				lamE2 = kv.lamID
			}
		}
		if lamE1 < 0 || lamE2 < 0 {
			t.Fatalf("k=%d: singleton k-vertices for parallel edges missing", k)
		}
		if lamE1 == lamE2 {
			t.Fatalf("k=%d: parallel edges share interned λ ID %d", k, lamE1)
		}
		// Both appear in the posting lists of their variables.
		for _, vn := range []string{"X", "Y"} {
			v := h.VarByName(vn)
			found := map[int]bool{}
			for _, idx := range sc.postings[v] {
				for _, e := range sc.kverts[idx].edges {
					found[e] = true
				}
			}
			if !found[e1] || !found[e2] {
				t.Fatalf("k=%d: posting list of %s misses a parallel edge", k, vn)
			}
		}
	}
}

// TestParallelEdgesIndexedMatchesScanOracle runs the indexed solver against
// the full-scan reference on hypergraphs with duplicate varsets, under a
// TAF that distinguishes edges by index — so any conflation of parallel
// edges (in postings, memo keys, or solStructs) changes a weight or a tree
// and fails the byte-comparison.
func TestParallelEdgesIndexedMatchesScanOracle(t *testing.T) {
	vertex := func(p weights.NodeInfo) float64 {
		w := float64(p.Chi.Count())
		for _, e := range p.Lambda {
			w += float64((e + 1) * (e + 2)) // asymmetric in the edge index
		}
		return w
	}
	edge := func(parent, child weights.NodeInfo) float64 {
		return float64(parent.Chi.Count() + 2*child.Chi.Count())
	}
	taf := weights.TAF[float64]{Semiring: weights.SumFloat{}, Vertex: vertex, Edge: edge}

	for name, h := range parallelEdgeCorpus() {
		for k := 1; k <= 3; k++ {
			sc, err := NewSearchContext(h, k, Options{})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			idx, errIdx := MinimalKCtx(sc, taf, Options{})
			scan, errScan := minimalKScan(sc, taf, Options{})
			if (errIdx == nil) != (errScan == nil) {
				t.Fatalf("%s k=%d: indexed err=%v scan err=%v", name, k, errIdx, errScan)
			}
			if errIdx != nil {
				continue
			}
			if idx.Weight != scan.Weight {
				t.Fatalf("%s k=%d: weight %v != scan %v", name, k, idx.Weight, scan.Weight)
			}
			if idx.Decomp.String() != scan.Decomp.String() {
				t.Fatalf("%s k=%d: decomposition differs from scan oracle\n%s\nvs\n%s",
					name, k, idx.Decomp, scan.Decomp)
			}
			if err := idx.Decomp.ValidateNF(); err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
		}
	}
}

// TestParallelEdgesDecompose: plain decomposition over duplicate-varset
// hypergraphs works and the parallel solver agrees with the sequential one.
func TestParallelEdgesDecompose(t *testing.T) {
	for name, h := range parallelEdgeCorpus() {
		for k := 1; k <= 2; k++ {
			d, err := DecomposeK(h, k, Options{})
			if err == ErrNoDecomposition {
				continue
			}
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%s k=%d: invalid decomposition: %v", name, k, err)
			}
			sc, err := NewSearchContext(h, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			pd, err := ParallelDecomposeKCtx(sc, ParallelOptions{Workers: 4})
			if err != nil {
				t.Fatalf("%s k=%d parallel: %v", name, k, err)
			}
			if pd.String() != d.String() {
				t.Fatalf("%s k=%d: parallel decomposition differs\n%s\nvs\n%s", name, k, pd, d)
			}
		}
	}
}
