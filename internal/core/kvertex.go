// Package core implements the paper's primary contribution: computation of
// minimal weighted hypertree decompositions over the class kNFD_H of
// normal-form decompositions of width at most k.
//
// It contains the candidate graph and the algorithm minimal-k-decomp
// (Fig 2), its unweighted specialization k-decomp, hypertree-width search,
// the decision procedure threshold-k-decomp (Fig 4), an exhaustive
// enumerator of kNFD_H used as a test oracle, and the constructions behind
// the NP-hardness results (Theorems 3.3 and 3.4) and the LOGCFL-hardness
// reduction (Theorem 5.1).
package core

import (
	"fmt"

	"repro/internal/hypergraph"
)

// kvert is a k-vertex: a non-empty set of at most k hyperedges (paper §4.2).
// lamID is the interned ID of the edge set in the owning SearchContext's
// StructIndex — stable across contexts sharing one index (a k-sweep) — used
// to stamp MemoKeys.
type kvert struct {
	idx   int
	lamID int32
	edges []int // sorted
	vars  hypergraph.Varset
}

// Psi returns Ψ = Σ_{i=1..k} C(n,i), the number of k-vertices of a
// hypergraph with n edges (Theorem 4.5). It saturates at math.MaxInt64 / 2
// to avoid overflow on adversarial inputs.
func Psi(n, k int) int64 {
	const cap = int64(1) << 62
	var total int64
	for i := 1; i <= k && i <= n; i++ {
		c := int64(1)
		for j := 0; j < i; j++ {
			c = c * int64(n-j) / int64(j+1)
			if c > cap {
				return cap
			}
		}
		total += c
		if total > cap {
			return cap
		}
	}
	return total
}

// enumerateKVertices lists all k-vertices of h in a deterministic order:
// lexicographic by the sorted edge-index sequence, prefixes first — {0},
// {0,1}, {0,1,2}, {0,2}, {1}, ... — so sizes interleave rather than
// grouping small sets first. Every SearchContext, posting list, and
// tie-break in the solvers is defined relative to this order; the contract
// is determinism of the sequence, not any size ordering. It fails if the
// count would exceed limit (0 means no limit).
func enumerateKVertices(h *hypergraph.Hypergraph, k int, limit int) ([]kvert, error) {
	n := h.NumEdges()
	if k < 1 {
		return nil, fmt.Errorf("core: k must be ≥ 1, got %d", k)
	}
	count := Psi(n, k)
	if limit > 0 && count > int64(limit) {
		return nil, fmt.Errorf("core: Ψ(%d,%d) = %d k-vertices exceeds limit %d", n, k, count, limit)
	}
	var out []kvert
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) > 0 {
			edges := append([]int(nil), cur...)
			out = append(out, kvert{idx: len(out), edges: edges, vars: h.Vars(edges)})
		}
		if len(cur) == k {
			return
		}
		for e := start; e < n; e++ {
			cur = append(cur, e)
			rec(e + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out, nil
}
