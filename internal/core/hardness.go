package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
)

// Constructions behind the paper's hardness results. They are exercised by
// tests (experiments E9, E10) to validate the reductions' correspondence on
// concrete instances; they are not needed by the tractable algorithms.

// ---------------------------------------------------------------------------
// Theorem 3.3: minimizing a general HWF over join trees is NP-hard
// (reduction from 3-colorability).
// ---------------------------------------------------------------------------

// Graph is a simple undirected graph for the 3-coloring reduction.
type Graph struct {
	N     int      // vertices 0..N-1
	Edges [][2]int // undirected
}

// ThreeColoringInstance is the output of the Theorem 3.3 reduction: an
// acyclic hypergraph H(G) and an HWF ω over its join trees such that the
// minimal weight is 0 iff G is 3-colorable.
type ThreeColoringInstance struct {
	G Graph
	H *hypergraph.Hypergraph

	big    int   // index of the big hyperedge g = V̄ ∪ {C}
	primed []int // primed[i] = index of hyperedge {V′_i, C}
}

// NewThreeColoringInstance builds H(G): variables V̄ ∪ V̄′ ∪ {C}; hyperedges
// g = V̄ ∪ {C}, {V′_i, C} for every vertex, and {V_j, V_t} for every edge
// of G.
func NewThreeColoringInstance(g Graph) (*ThreeColoringInstance, error) {
	b := hypergraph.NewBuilder()
	vn := func(i int) string { return fmt.Sprintf("V%d", i) }
	pn := func(i int) string { return fmt.Sprintf("V%d'", i) }
	bigVars := make([]string, 0, g.N+1)
	for i := 0; i < g.N; i++ {
		bigVars = append(bigVars, vn(i))
	}
	bigVars = append(bigVars, "C")
	if err := b.Edge("g", bigVars...); err != nil {
		return nil, err
	}
	for i := 0; i < g.N; i++ {
		if err := b.Edge(fmt.Sprintf("p%d", i), pn(i), "C"); err != nil {
			return nil, err
		}
	}
	for idx, e := range g.Edges {
		if err := b.Edge(fmt.Sprintf("e%d", idx), vn(e[0]), vn(e[1])); err != nil {
			return nil, err
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst := &ThreeColoringInstance{G: g, H: h, big: h.EdgeByName("g")}
	inst.primed = make([]int, g.N)
	for i := 0; i < g.N; i++ {
		inst.primed[i] = h.EdgeByName(fmt.Sprintf("p%d", i))
	}
	return inst, nil
}

// Weight is the HWF ω_{H(G)} of the reduction: 0 if the join tree groups
// the primed hyperedges {V′_i,C} into at most 3 subtrees under the vertex
// covering g, with no subtree containing two primed hyperedges whose
// G-vertices are adjacent; 1 otherwise. Only decompositions in J T_H (width
// 1, complete) should be passed; anything else weighs 1.
func (inst *ThreeColoringInstance) Weight(d *hypertree.Decomposition) float64 {
	if d.Width() != 1 || !d.IsComplete() || d.Validate() != nil {
		return 1
	}
	h := inst.H
	// Locate the vertex r with χ(r) = V̄ ∪ {C} (covering g).
	var r *hypertree.Node
	d.Walk(func(n, _ *hypertree.Node) {
		if len(n.Lambda) == 1 && n.Lambda[0] == inst.big && n.Chi.Equal(h.EdgeVars(inst.big)) {
			r = n
		}
	})
	if r == nil {
		return 1
	}
	// Group primed hyperedges by the child subtree of r they appear in. The
	// root side (above or at r) counts as an extra group which must be empty.
	group := make(map[int]int) // vertex i of G -> child index of r
	assigned := make([]bool, inst.G.N)
	ok := true
	for ci, c := range r.Children {
		var mark func(n *hypertree.Node)
		mark = func(n *hypertree.Node) {
			for i, pe := range inst.primed {
				if len(n.Lambda) == 1 && n.Lambda[0] == pe && h.EdgeVars(pe).SubsetOf(n.Chi) {
					if assigned[i] && group[i] != ci {
						ok = false
					}
					assigned[i] = true
					group[i] = ci
				}
			}
			for _, k := range n.Children {
				mark(k)
			}
		}
		mark(c)
	}
	if !ok {
		return 1
	}
	for i := range assigned {
		if !assigned[i] {
			return 1 // some {V′_i,C} not inside a child subtree of r
		}
	}
	// Condition (1): at most 3 distinct groups.
	distinct := map[int]bool{}
	for i := 0; i < inst.G.N; i++ {
		distinct[group[i]] = true
	}
	if len(distinct) > 3 {
		return 1
	}
	// Condition (2): no group contains two adjacent vertices of G.
	for _, e := range inst.G.Edges {
		if group[e[0]] == group[e[1]] {
			return 1
		}
	}
	return 0
}

// WitnessJoinTree builds, from a legal 3-coloring col (values 0..2), the
// weight-0 join tree of the "only if" direction of the proof: the root
// covers g; up to three children collect the primed hyperedges by color;
// the G-edge hyperedges {V_j,V_t} hang below the root.
func (inst *ThreeColoringInstance) WitnessJoinTree(col []int) (*hypertree.Decomposition, error) {
	if len(col) != inst.G.N {
		return nil, fmt.Errorf("core: coloring has %d entries, want %d", len(col), inst.G.N)
	}
	for _, e := range inst.G.Edges {
		if col[e[0]] == col[e[1]] {
			return nil, fmt.Errorf("core: coloring is not legal on edge %v", e)
		}
	}
	h := inst.H
	root := hypertree.NewNode(h.EdgeVars(inst.big).Clone(), []int{inst.big})
	// One chain per used color: primed hyperedges of that color share {C},
	// so a chain satisfies connectedness.
	var colorHead [3]*hypertree.Node
	for i := 0; i < inst.G.N; i++ {
		c := col[i]
		if c < 0 || c > 2 {
			return nil, fmt.Errorf("core: color %d out of range", c)
		}
		node := hypertree.NewNode(h.EdgeVars(inst.primed[i]).Clone(), []int{inst.primed[i]})
		if colorHead[c] == nil {
			root.AddChild(node)
		} else {
			colorHead[c].AddChild(node)
		}
		colorHead[c] = node
	}
	// Edge hyperedges of G hang directly below the root (their variables
	// are all in χ(root)).
	for idx := range inst.G.Edges {
		e := h.EdgeByName(fmt.Sprintf("e%d", idx))
		root.AddChild(hypertree.NewNode(h.EdgeVars(e).Clone(), []int{e}))
	}
	d := &hypertree.Decomposition{H: h, Root: root}
	d.Nodes()
	return d, nil
}

// ExtractColoring decodes a 3-coloring from a weight-0 join tree (the "if"
// direction): vertices are colored by the subtree of the g-vertex their
// primed hyperedge lies in.
func (inst *ThreeColoringInstance) ExtractColoring(d *hypertree.Decomposition) ([]int, error) {
	if inst.Weight(d) != 0 {
		return nil, fmt.Errorf("core: decomposition has weight 1; no coloring encoded")
	}
	var r *hypertree.Node
	d.Walk(func(n, _ *hypertree.Node) {
		if len(n.Lambda) == 1 && n.Lambda[0] == inst.big {
			r = n
		}
	})
	col := make([]int, inst.G.N)
	groupOf := map[int]int{} // child index -> color
	next := 0
	for ci, c := range r.Children {
		var mark func(n *hypertree.Node)
		mark = func(n *hypertree.Node) {
			for i, pe := range inst.primed {
				if len(n.Lambda) == 1 && n.Lambda[0] == pe {
					g, ok := groupOf[ci]
					if !ok {
						g = next
						next++
						groupOf[ci] = g
					}
					col[i] = g
				}
			}
			for _, k := range n.Children {
				mark(k)
			}
		}
		mark(c)
	}
	return col, nil
}
