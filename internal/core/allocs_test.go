package core

import (
	"testing"

	"repro/internal/weights"
)

// Allocation regression pins for the hot path. A warm solve — a prepared
// SearchContext whose structural caches (components, solStructs, interned
// interfaces) are already populated — should allocate only per-solve state:
// memo maps, sol/sub nodes, candidate slices, and the extracted tree. On
// Q1 at k=3 that is ≈4k allocations (down from ≈30k before indexed pruning
// and integer keys); the ceilings below have ~50% headroom so they catch a
// regression to string keys or per-solve component discovery (both multiply
// the count), not normal noise.
func TestWarmSolveAllocationCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under the race detector")
	}
	h := buildQ1()
	sc, err := NewSearchContext(h, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pin := func(name string, ceiling float64, solve func()) {
		solve() // warm the shared caches
		if n := testing.AllocsPerRun(10, solve); n > ceiling {
			t.Errorf("%s: %.0f allocs/run on a warm context, ceiling %.0f", name, n, ceiling)
		}
	}
	unit := unitTAF()
	pin("unit TAF (k-decomp)", 6000, func() {
		if _, err := MinimalKCtx(sc, unit, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	width := weights.WidthTAF()
	pin("width TAF", 6000, func() {
		if _, err := MinimalKCtx(sc, width, Options{}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCandidateSpaceNoAllocs pins the per-probe cost of the candidate
// index: selecting a posting list and testing candidateOK must allocate
// nothing.
func TestCandidateSpaceNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under the race detector")
	}
	h := buildQ1()
	sc, err := NewSearchContext(h, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	root := sc.rootComp()
	iface := sc.kverts[0].vars
	n := testing.AllocsPerRun(100, func() {
		for _, si := range sc.candidateSpace(iface) {
			sc.candidateOK(sc.kverts[si], root, iface)
		}
	})
	if n != 0 {
		t.Errorf("candidate probe allocates %.0f per run, want 0", n)
	}
}
