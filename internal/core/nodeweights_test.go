package core

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// NodeWeights invariants: the root carries the total weight, every node
// carries the TAF value of its own subtree, and leaves carry exactly their
// vertex weight.
func TestNodeWeightsSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	taf := weights.TAF[float64]{
		Semiring: weights.SumFloat{},
		Vertex:   func(p weights.NodeInfo) float64 { return float64(len(p.Lambda)*3 + p.Chi.Count()) },
		Edge: func(parent, child weights.NodeInfo) float64 {
			return float64(parent.Chi.Intersect(child.Chi).Count())
		},
	}
	for trial := 0; trial < 15; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(4), 5+rng.Intn(5), 3)
		res, err := MinimalK(h, 2, taf, Options{})
		if err != nil {
			continue
		}
		if got := res.NodeWeights[res.Decomp.Root]; got != res.Weight {
			t.Fatalf("root node weight %v != total %v", got, res.Weight)
		}
		res.Decomp.Walk(func(n, _ *hypertree.Node) {
			w, ok := res.NodeWeights[n]
			if !ok {
				t.Fatalf("node %d missing from NodeWeights", n.ID)
			}
			// Re-evaluate the TAF on the subtree rooted at n.
			sub := &hypertree.Decomposition{H: h, Root: n}
			if got := taf.Evaluate(sub); got != w {
				t.Fatalf("node %d: recorded %v, subtree evaluates to %v", n.ID, w, got)
			}
			if len(n.Children) == 0 {
				info := weights.NodeInfo{H: h, Lambda: n.Lambda, Chi: n.Chi}
				if w != taf.Vertex(info) {
					t.Fatalf("leaf weight %v != vertex weight %v", w, taf.Vertex(info))
				}
			}
		})
	}
}

// Decompositions produced by the algorithms are winning marshal strategies
// (the game characterization of reference [19]).
func TestOutputsAreWinningStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 15; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(5), 5+rng.Intn(5), 3)
		d, err := DecomposeK(h, 3, Options{})
		if err != nil {
			continue
		}
		if !d.MarshalsWin() {
			t.Fatalf("algorithm output is not a winning strategy:\n%s\n%s", h, d)
		}
		steps, err := d.PlayGame(nil)
		if err != nil {
			t.Fatalf("game failed: %v", err)
		}
		if !steps[len(steps)-1].Component.Empty() {
			t.Fatal("robber not captured")
		}
	}
}
