package core

import (
	"sync"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// SearchContext holds the weight-independent part of the candidate-graph
// search for one (hypergraph, k): the Ψ enumerated k-vertices, an inverted
// index variable → k-vertices containing it (the posting lists behind
// indexed candidate pruning), and shared structural caches — the component
// table of its StructIndex and the per-(k-vertex, component) solStruct
// cache (χ, child components, interned interfaces). Building one is the
// dominant fixed cost of a solver run; callers that search the same
// structure repeatedly (different TAFs, different catalogs, plan caches,
// k-sweeps) should build one SearchContext and reuse it.
//
// A SearchContext is safe for concurrent use. The k-vertex slice and
// posting lists are immutable after construction; the structural caches
// grow monotonically behind locks and are shared by every solve, so a solve
// that follows another over the same context performs no component
// discovery at all. Per-solve state (memo maps, weights) is always private
// to the solve, so shared caches never leak weight-dependent data between
// TAFs.
type SearchContext struct {
	h      *hypergraph.Hypergraph
	k      int
	kverts []kvert
	idx    *StructIndex

	postings [][]int32 // variable → ascending k-vertex indices containing it
	allIdx   []int32   // every k-vertex index (full-scan fallback)
	root     *compEntry
	empty    hypergraph.Varset // interned empty interface of the root
	emptyID  int

	// structs maps (kvert idx, comp id) → shared node data behind a
	// read-mostly lock; the hit path — every solution node of every warm
	// solve — is one RLock'd integer-keyed probe. Racing cold computations
	// are deterministic, so whichever publishes first wins.
	mu      sync.RWMutex
	structs map[[2]int]*solStruct
}

// NewSearchContext enumerates the k-vertices of h once, honouring
// opts.MaxKVertices like the one-shot entry points, with a private
// StructIndex.
func NewSearchContext(h *hypergraph.Hypergraph, k int, opts Options) (*SearchContext, error) {
	return NewSearchContextShared(NewStructIndex(h), k, opts)
}

// NewSearchContextShared is NewSearchContext over a caller-provided
// StructIndex, so contexts for different width bounds over the same
// hypergraph (e.g. a cost sweep over k) share one component-interning
// table: components are a property of the hypergraph alone, not of k.
func NewSearchContextShared(ix *StructIndex, k int, opts Options) (*SearchContext, error) {
	h := ix.Hypergraph()
	kv, err := enumerateKVertices(h, k, opts.MaxKVertices)
	if err != nil {
		return nil, err
	}
	postings := make([][]int32, h.NumVars())
	lamBuf := hypergraph.NewVarset(h.NumEdges())
	for i := range kv {
		vs := kv[i].vars
		for v := vs.NextSet(0); v >= 0; v = vs.NextSet(v + 1) {
			postings[v] = append(postings[v], int32(i))
		}
		lamBuf.Reset()
		for _, e := range kv[i].edges {
			lamBuf.Set(e)
		}
		kv[i].lamID = int32(ix.interner.ID(lamBuf))
	}
	allIdx := make([]int32, len(kv))
	for i := range allIdx {
		allIdx[i] = int32(i)
	}
	empty := h.NewVarset()
	return &SearchContext{
		h:        h,
		k:        k,
		kverts:   kv,
		idx:      ix,
		postings: postings,
		allIdx:   allIdx,
		root:     ix.comp(h.AllVars().Clone()),
		empty:    empty,
		emptyID:  ix.interner.ID(empty),
		structs:  make(map[[2]int]*solStruct),
	}, nil
}

// Hypergraph returns the hypergraph the context was built for.
func (sc *SearchContext) Hypergraph() *hypergraph.Hypergraph { return sc.h }

// K returns the width bound the context was built for.
func (sc *SearchContext) K() int { return sc.k }

// NumKVertices returns Ψ, the size of the enumerated candidate space.
func (sc *SearchContext) NumKVertices() int { return len(sc.kverts) }

// Index returns the context's StructIndex, for sharing with sibling
// contexts at other width bounds (NewSearchContextShared).
func (sc *SearchContext) Index() *StructIndex { return sc.idx }

// rootComp returns the whole-problem component var(H).
func (sc *SearchContext) rootComp() *compEntry { return sc.root }

// MinimalKCtx is MinimalK evaluated against a prepared SearchContext,
// skipping the per-call k-vertex enumeration and reusing the context's
// shared structural caches.
func MinimalKCtx[W any](sc *SearchContext, taf weights.TAF[W], opts Options) (*Result[W], error) {
	sv, err := newSolver(sc, taf, opts)
	if err != nil {
		return nil, err
	}
	return sv.run()
}

// DecomposeKCtx is DecomposeK evaluated against a prepared SearchContext.
func DecomposeKCtx(sc *SearchContext, opts Options) (*hypertree.Decomposition, error) {
	res, err := MinimalKCtx(sc, unitTAF(), opts)
	if err != nil {
		return nil, err
	}
	return res.Decomp, nil
}
