package core

import (
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// SearchContext holds the weight-independent part of the candidate-graph
// search for one (hypergraph, k): the Ψ enumerated k-vertices. Enumerating
// them is the dominant fixed cost of a solver run, so callers that search
// the same structure repeatedly (different TAFs, different catalogs, plan
// caches) should build one SearchContext and reuse it.
//
// A SearchContext is immutable after construction and safe for concurrent
// use: every solve gets a fresh component-interning table and memo maps,
// sharing only the k-vertex slice.
type SearchContext struct {
	h      *hypergraph.Hypergraph
	k      int
	kverts []kvert
}

// NewSearchContext enumerates the k-vertices of h once, honouring
// opts.MaxKVertices like the one-shot entry points.
func NewSearchContext(h *hypergraph.Hypergraph, k int, opts Options) (*SearchContext, error) {
	kv, err := enumerateKVertices(h, k, opts.MaxKVertices)
	if err != nil {
		return nil, err
	}
	return &SearchContext{h: h, k: k, kverts: kv}, nil
}

// Hypergraph returns the hypergraph the context was built for.
func (sc *SearchContext) Hypergraph() *hypergraph.Hypergraph { return sc.h }

// K returns the width bound the context was built for.
func (sc *SearchContext) K() int { return sc.k }

// NumKVertices returns Ψ, the size of the enumerated candidate space.
func (sc *SearchContext) NumKVertices() int { return len(sc.kverts) }

// newGraph starts a fresh candidate graph over the shared k-vertices.
func (sc *SearchContext) newGraph() *graph {
	return &graph{h: sc.h, k: sc.k, kverts: sc.kverts, comps: map[string]*compEntry{}}
}

// MinimalKCtx is MinimalK evaluated against a prepared SearchContext,
// skipping the per-call k-vertex enumeration.
func MinimalKCtx[W any](sc *SearchContext, taf weights.TAF[W], opts Options) (*Result[W], error) {
	sv, err := newSolver(sc.newGraph(), taf, opts)
	if err != nil {
		return nil, err
	}
	return sv.run()
}

// DecomposeKCtx is DecomposeK evaluated against a prepared SearchContext.
func DecomposeKCtx(sc *SearchContext, opts Options) (*hypertree.Decomposition, error) {
	res, err := MinimalKCtx(sc, unitTAF(), opts)
	if err != nil {
		return nil, err
	}
	return res.Decomp, nil
}
