package core

import (
	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// threshold-k-decomp (Fig 4). The paper's algorithm guesses k-vertices and
// per-component budgets on an alternating logspace Turing machine; the
// deterministic simulation below replaces the budget guesses by computing
// the minimum weight of each subproblem bottom-up — an existentially
// quantified budget split is satisfiable iff the minima fit. The recursion
// mirrors Fig 4's decomposable_k (conditions C1 and C2) and is implemented
// independently of the candidate-graph solver so the two can cross-check
// each other; it shares only the structural primitives (candidate index,
// component table).

type thresholdSolver[W any] struct {
	sc   *SearchContext
	taf  weights.TAF[W]
	memo map[[2]int]*thresholdEntry[W] // (kvert idx, comp id)
}

type thresholdEntry[W any] struct {
	ok bool
	w  W
}

// Threshold decides whether some HD ∈ kNFD_H has taf(HD) ≤ t
// (Theorem 5.1's decision problem; LOGCFL for smooth TAFs).
func Threshold[W any](h *hypergraph.Hypergraph, k int, taf weights.TAF[W], t W, opts Options) (bool, error) {
	w, ok, err := MinWeight(h, k, taf, opts)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	return !taf.Semiring.Less(t, w), nil
}

// MinWeight computes min_{HD ∈ kNFD_H} taf(HD) via the Fig 4 recursion.
// ok is false when kNFD_H = ∅.
func MinWeight[W any](h *hypergraph.Hypergraph, k int, taf weights.TAF[W], opts Options) (w W, ok bool, err error) {
	sc, err := NewSearchContext(h, k, opts)
	if err != nil {
		return w, false, err
	}
	ts := &thresholdSolver[W]{sc: sc, taf: taf, memo: map[[2]int]*thresholdEntry[W]{}}
	root := sc.rootComp()
	var best W
	found := false
	// Root level: no incoming edge weight; minimize over root k-vertices.
	for _, s := range sc.kverts {
		if !sc.candidateOK(s, root, sc.empty) {
			continue
		}
		sw, sOK := ts.subtree(s, root)
		if !sOK {
			continue
		}
		if !found || taf.Semiring.Less(sw, best) {
			best, found = sw, true
		}
	}
	return best, found, nil
}

// subtree returns the minimal weight of an NF subtree rooted at solution
// node (S, C): v(S,C) ⊕ Σ over child components of min over child choices
// of (child subtree weight ⊕ e((S,C), child)).
func (ts *thresholdSolver[W]) subtree(s kvert, c *compEntry) (W, bool) {
	key := [2]int{s.idx, c.id}
	if e, hit := ts.memo[key]; hit {
		return e.w, e.ok
	}
	// Mark in-progress entries as failures to be safe; the recursion cannot
	// cycle (components strictly shrink), so this is never observed.
	entry := &thresholdEntry[W]{}
	ts.memo[key] = entry

	st := ts.sc.structOf(s, c)
	info := ts.sc.nodeInfo(s, st, c)
	w := ts.taf.VertexWeight(info)
	ok := true
	for i := range st.children {
		cr := &st.children[i]
		var best W
		found := false
		for _, si := range ts.sc.candidateSpace(cr.iface) {
			s2 := ts.sc.kverts[si]
			if !ts.sc.candidateOK(s2, cr.comp, cr.iface) {
				continue
			}
			sw, sOK := ts.subtree(s2, cr.comp)
			if !sOK {
				continue
			}
			st2 := ts.sc.structOf(s2, cr.comp)
			cw := ts.taf.Semiring.Combine(sw, ts.taf.EdgeWeight(info, ts.sc.nodeInfo(s2, st2, cr.comp)))
			if !found || ts.taf.Semiring.Less(cw, best) {
				best, found = cw, true
			}
		}
		if !found {
			ok = false
			break
		}
		w = ts.taf.Semiring.Combine(w, best)
	}
	entry.w, entry.ok = w, ok
	return w, ok
}
