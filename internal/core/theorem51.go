package core

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// Theorem 5.1's LOGCFL-hardness reduction: from an acyclic Boolean
// conjunctive query Q over a database DB, build a hypergraph H and a smooth
// TAF F(+,v,e) such that the answer of Q on DB is true iff some
// HD ∈ kNFD_H has F(HD) = 0. Exercised by tests (experiment E10) by
// comparing against naive query evaluation.

// ACQAtom is one atom of an acyclic Boolean conjunctive query together with
// its relation: Vars are the atom's variables (the paper assumes distinct
// variable sets per atom), Tuples the relation's rows (values aligned with
// Vars, duplicates not allowed).
type ACQAtom struct {
	Name   string
	Vars   []string
	Tuples [][]int
}

// Theorem51Instance is the reduction output.
type Theorem51Instance struct {
	Atoms []ACQAtom
	H     *hypergraph.Hypergraph
	TAF   weights.TAF[float64]

	// edgeKind[e]: atom index i for h_i edges; tupleOf[e] ≥ 0 with atomOf[e]
	// for h_ij edges (tuple j of atom i); -1 otherwise.
	atomOf  []int
	tupleOf []int
}

// NewTheorem51Instance builds H = (X̄ ∪ T̄, {h_i} ∪ {h_ij}) with
// h_i = X̄_i ∪ R_i (all tuple variables of atom i's relation) and
// h_ij = X̄_i ∪ {T_j} for each tuple, plus the smooth TAF of the proof:
//
//	v(p) = max(|λ(p)|−1, |var(λ(p)) − χ(p)|)
//	e(r,s) = 0 if r is an h_ij node and s is an h_ab node with matching
//	         tuples, or r is an h_ij node and s is the h_i node; else 1.
func NewTheorem51Instance(atoms []ACQAtom) (*Theorem51Instance, error) {
	b := hypergraph.NewBuilder()
	tupleName := func(i, j int) string { return fmt.Sprintf("T_%s_%d", atoms[i].Name, j) }
	// h_i edges first, then h_ij edges, so indices are computable.
	for i, a := range atoms {
		vars := append([]string(nil), a.Vars...)
		for j := range a.Tuples {
			vars = append(vars, tupleName(i, j))
		}
		if err := b.Edge("h_"+a.Name, vars...); err != nil {
			return nil, err
		}
	}
	inst := &Theorem51Instance{Atoms: atoms}
	for i, a := range atoms {
		for j, tup := range a.Tuples {
			if len(tup) != len(a.Vars) {
				return nil, fmt.Errorf("core: atom %s tuple %d has arity %d, want %d",
					a.Name, j, len(tup), len(a.Vars))
			}
			vars := append(append([]string(nil), a.Vars...), tupleName(i, j))
			if err := b.Edge(fmt.Sprintf("h_%s_%d", a.Name, j), vars...); err != nil {
				return nil, err
			}
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.H = h
	inst.atomOf = make([]int, h.NumEdges())
	inst.tupleOf = make([]int, h.NumEdges())
	for e := range inst.atomOf {
		inst.atomOf[e], inst.tupleOf[e] = -1, -1
	}
	for i, a := range atoms {
		inst.atomOf[h.EdgeByName("h_"+a.Name)] = i
		for j := range a.Tuples {
			e := h.EdgeByName(fmt.Sprintf("h_%s_%d", a.Name, j))
			inst.atomOf[e] = i
			inst.tupleOf[e] = j
		}
	}
	inst.TAF = weights.TAF[float64]{
		Semiring: weights.SumFloat{},
		Vertex: func(p weights.NodeInfo) float64 {
			excess := float64(len(p.Lambda) - 1)
			hidden := float64(p.LambdaVars().Subtract(p.Chi).Count())
			if hidden > excess {
				return hidden
			}
			return excess
		},
		Edge: inst.edgeWeight,
	}
	return inst, nil
}

// kind reports the reduction role of a decomposition node: an h_ij node
// (atom i, tuple j), an h_i node (atom i, tuple -1), or neither (-1, -1).
// A node qualifies only when its λ is the single corresponding hyperedge
// and its χ equals the hyperedge (the proof's weight-0 shape).
func (inst *Theorem51Instance) kind(p weights.NodeInfo) (atom, tuple int) {
	if len(p.Lambda) != 1 {
		return -1, -1
	}
	e := p.Lambda[0]
	if !p.Chi.Equal(inst.H.EdgeVars(e)) {
		return -1, -1
	}
	return inst.atomOf[e], inst.tupleOf[e]
}

// matches reports whether tuple j of atom i agrees with tuple b of atom a
// on the variables the two atoms share.
func (inst *Theorem51Instance) matches(i, j, a, b int) bool {
	ai, aa := inst.Atoms[i], inst.Atoms[a]
	for vi, v := range ai.Vars {
		for va, w := range aa.Vars {
			if v == w && ai.Tuples[j][vi] != aa.Tuples[b][va] {
				return false
			}
		}
	}
	return true
}

func (inst *Theorem51Instance) edgeWeight(r, s weights.NodeInfo) float64 {
	ri, rj := inst.kind(r)
	si, sj := inst.kind(s)
	if ri >= 0 && rj >= 0 { // r is an h_ij node
		if si >= 0 && sj >= 0 && inst.matches(ri, rj, si, sj) {
			return 0
		}
		if si == ri && sj == -1 { // s is the h_i node of the same atom
			return 0
		}
	}
	return 1
}

// Answer evaluates the Boolean conjunctive query naively (backtracking over
// tuple assignments), the oracle for the reduction tests.
func (inst *Theorem51Instance) Answer() bool {
	assign := make(map[string]int)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(inst.Atoms) {
			return true
		}
		a := inst.Atoms[i]
	tuples:
		for _, tup := range a.Tuples {
			bound := map[string]int{}
			for vi, v := range a.Vars {
				if prev, ok := assign[v]; ok {
					if prev != tup[vi] {
						continue tuples
					}
				} else if b, ok := bound[v]; ok {
					if b != tup[vi] {
						continue tuples
					}
				} else {
					bound[v] = tup[vi]
				}
			}
			for v, val := range bound {
				assign[v] = val
			}
			if rec(i + 1) {
				return true
			}
			for v := range bound {
				delete(assign, v)
			}
		}
		return false
	}
	return rec(0)
}

// HoldsWithZeroWeight decides whether some HD ∈ kNFD_H has F(HD) ≤ 0 using
// the threshold machinery with k = 1 (the reduction's target problem).
func (inst *Theorem51Instance) HoldsWithZeroWeight() (bool, error) {
	return Threshold(inst.H, 1, inst.TAF, 0, Options{})
}
