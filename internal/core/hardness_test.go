package core

import (
	"math/rand"
	"testing"
)

// --- Theorem 3.3 (experiment E9) ---------------------------------------

func TestTheorem33Construction(t *testing.T) {
	g := Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}} // triangle
	inst, err := NewThreeColoringInstance(g)
	if err != nil {
		t.Fatal(err)
	}
	// H(G) is acyclic: the big hyperedge absorbs the cycles.
	if !inst.H.IsAcyclic() {
		t.Error("H(G) should be α-acyclic")
	}
	// |H| = 1 + N + |E|.
	if inst.H.NumEdges() != 1+3+3 {
		t.Errorf("H(G) has %d edges, want 7", inst.H.NumEdges())
	}
}

func TestTheorem33WitnessDirection(t *testing.T) {
	// Graphs with known legal 3-colorings.
	cases := []struct {
		name string
		g    Graph
		col  []int
	}{
		{"triangle", Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}, []int{0, 1, 2}},
		{"path4", Graph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}}, []int{0, 1, 0, 1}},
		{"cycle5", Graph{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}}, []int{0, 1, 0, 1, 2}},
	}
	for _, c := range cases {
		inst, err := NewThreeColoringInstance(c.g)
		if err != nil {
			t.Fatal(err)
		}
		d, err := inst.WitnessJoinTree(c.col)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: witness invalid: %v", c.name, err)
		}
		if d.Width() != 1 || !d.IsComplete() {
			t.Fatalf("%s: witness not a join tree (width %d, complete %v)",
				c.name, d.Width(), d.IsComplete())
		}
		if w := inst.Weight(d); w != 0 {
			t.Errorf("%s: witness weight = %v, want 0", c.name, w)
		}
		// Decode and re-verify the coloring.
		col, err := inst.ExtractColoring(d)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, e := range c.g.Edges {
			if col[e[0]] == col[e[1]] {
				t.Errorf("%s: extracted coloring illegal on %v", c.name, e)
			}
		}
	}
}

func TestTheorem33IllegalColoringRejected(t *testing.T) {
	g := Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	inst, err := NewThreeColoringInstance(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.WitnessJoinTree([]int{0, 0, 1}); err == nil {
		t.Error("illegal coloring should be rejected")
	}
	// A join tree built from an *illegal* grouping weighs 1: group all
	// primed edges under one child.
	d, err := inst.WitnessJoinTree([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: re-hang every primed subtree under the first child to force
	// adjacent vertices into one group. Simpler: weight of a non-join-tree
	// is 1 by definition.
	d.Root.Children = d.Root.Children[:1]
	if w := inst.Weight(d); w != 1 {
		t.Errorf("broken tree weight = %v, want 1", w)
	}
}

func TestTheorem33RandomColorableGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		// Generate a random 3-partite (hence 3-colorable) graph.
		n := 4 + rng.Intn(5)
		col := make([]int, n)
		for i := range col {
			col[i] = rng.Intn(3)
		}
		var g Graph
		g.N = n
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if col[i] != col[j] && rng.Intn(2) == 0 {
					g.Edges = append(g.Edges, [2]int{i, j})
				}
			}
		}
		if len(g.Edges) == 0 {
			continue
		}
		inst, err := NewThreeColoringInstance(g)
		if err != nil {
			t.Fatal(err)
		}
		d, err := inst.WitnessJoinTree(col)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Weight(d) != 0 {
			t.Fatalf("witness weight nonzero for colorable graph %+v", g)
		}
		got, err := inst.ExtractColoring(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges {
			if got[e[0]] == got[e[1]] {
				t.Fatalf("extracted coloring illegal")
			}
		}
	}
}

// --- Theorem 5.1 (experiment E10) ---------------------------------------

func TestTheorem51PaperExample(t *testing.T) {
	// The query of Fig 3: Q: ans ← s1(A,B) ∧ s2(A,C) ∧ s3(B,D) ∧ s4(B,E).
	atoms := []ACQAtom{
		{Name: "s1", Vars: []string{"A", "B"}, Tuples: [][]int{{1, 1}, {1, 2}, {2, 2}}},
		{Name: "s2", Vars: []string{"A", "C"}, Tuples: [][]int{{1, 5}, {3, 6}}},
		{Name: "s3", Vars: []string{"B", "D"}, Tuples: [][]int{{2, 7}, {9, 8}}},
		{Name: "s4", Vars: []string{"B", "E"}, Tuples: [][]int{{4, 1}, {2, 3}}},
	}
	inst, err := NewTheorem51Instance(atoms)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.H.IsAcyclic() {
		t.Error("reduction hypergraph should be acyclic")
	}
	// |H| = m + |DB| = 4 + 9 = 13.
	if inst.H.NumEdges() != 13 {
		t.Errorf("|H| = %d, want 13", inst.H.NumEdges())
	}
	// ρ(s1)=T2=(1,2), ρ(s2)=(1,5), ρ(s3)=(2,7), ρ(s4)=(2,3) satisfies Q.
	if !inst.Answer() {
		t.Fatal("query should be true")
	}
	ok, err := inst.HoldsWithZeroWeight()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("reduction: true query should admit weight-0 NF decomposition")
	}
}

func TestTheorem51FalseQuery(t *testing.T) {
	// No tuple of s2 matches any tuple of s1 on A.
	atoms := []ACQAtom{
		{Name: "s1", Vars: []string{"A", "B"}, Tuples: [][]int{{1, 1}, {2, 2}}},
		{Name: "s2", Vars: []string{"A", "C"}, Tuples: [][]int{{3, 5}, {4, 6}}},
	}
	inst, err := NewTheorem51Instance(atoms)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Answer() {
		t.Fatal("query should be false")
	}
	ok, err := inst.HoldsWithZeroWeight()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("reduction: false query should have no weight-0 NF decomposition")
	}
}

// Property: on random acyclic star queries with random small relations, the
// reduction's zero-weight test agrees with naive evaluation.
func TestTheorem51Reduction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		// Star query: center atom s0(X1..Xc), leaves si(Xi, Yi) — acyclic
		// and connected by construction.
		c := 2 + rng.Intn(2)
		atoms := make([]ACQAtom, 0, c+1)
		centerVars := make([]string, c)
		for i := range centerVars {
			centerVars[i] = vstr(i)
		}
		dom := 2 + rng.Intn(2)
		atoms = append(atoms, ACQAtom{Name: "s0", Vars: centerVars,
			Tuples: randomTuples(rng, c, 1+rng.Intn(3), dom)})
		for i := 0; i < c; i++ {
			atoms = append(atoms, ACQAtom{
				Name:   "s" + string(rune('a'+i)),
				Vars:   []string{vstr(i), "Y" + string(rune('a'+i))},
				Tuples: randomTuples(rng, 2, 1+rng.Intn(3), dom),
			})
		}
		inst, err := NewTheorem51Instance(atoms)
		if err != nil {
			t.Fatal(err)
		}
		want := inst.Answer()
		got, err := inst.HoldsWithZeroWeight()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: reduction says %v, naive evaluation says %v\natoms: %+v",
				trial, got, want, atoms)
		}
	}
}

func vstr(i int) string { return "X" + string(rune('0'+i)) }

// randomTuples generates count distinct tuples of the given arity with
// values in [0, dom).
func randomTuples(rng *rand.Rand, arity, count, dom int) [][]int {
	seen := map[string]bool{}
	var out [][]int
	for len(out) < count {
		tup := make([]int, arity)
		key := ""
		for i := range tup {
			tup[i] = rng.Intn(dom)
			key += string(rune('0' + tup[i]))
		}
		if seen[key] {
			// Domain may be too small for `count` distinct tuples; give up
			// politely after the space is exhausted.
			if len(seen) >= pow(dom, arity) {
				break
			}
			continue
		}
		seen[key] = true
		out = append(out, tup)
	}
	return out
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
