package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// ErrNoDecomposition is returned when kNFD_H is empty, i.e. the hypergraph
// has no normal-form hypertree decomposition of width at most k (the
// algorithm's "failure" output).
var ErrNoDecomposition = errors.New("core: no width-k hypertree decomposition exists")

// Options tunes the decomposition algorithms.
type Options struct {
	// Rand, when non-nil, breaks ties among equally minimal choices
	// randomly, realizing the non-deterministic (* select *) steps of the
	// paper's algorithm; nil selects the first minimum deterministically.
	Rand *rand.Rand
	// MaxKVertices aborts with an error if Ψ = Σ C(n,i) exceeds the bound
	// (0 = unlimited). A guard against accidentally exponential calls.
	MaxKVertices int
}

// Result carries a minimal decomposition and its weight. NodeWeights maps
// every node of Decomp to the weight of its subtree (the paper's Figs 6/7
// annotate decomposition vertices with exactly these "$" values: for a
// leaf, the cost of E(p); for the root, the whole plan cost).
type Result[W any] struct {
	Decomp      *hypertree.Decomposition
	Weight      W
	NodeWeights map[*hypertree.Node]W
}

// solNode is a candidate-graph solution node (S, C) with its memoized
// subtree weight. Its structural half (χ, child components, interfaces)
// lives in the SearchContext's shared cache.
type solNode[W any] struct {
	s        kvert
	comp     *compEntry
	st       *solStruct
	info     weights.NodeInfo
	children []*subNode[W] // one per [var(S)]-component inside C
	weight   W
	feasible bool
	state    uint8 // 0 = unsolved, 1 = solving, 2 = solved
}

// subNode is a subproblem node (C, I) with its surviving candidates.
type subNode[W any] struct {
	comp   *compEntry
	iface  hypergraph.Varset
	cands  []*solNode[W] // feasible candidates after solving
	solved bool
	// bestCached holds min over cands of weight ⊕ e(·, cand) when the TAF's
	// edge function is parent-independent (ablation E13).
	bestCached     []*solNode[W]
	bestCachedW    W
	bestCacheValid bool
}

// solver runs minimal-k-decomp for one TAF. All memo maps are keyed on
// interned integers — (k-vertex index, component ID) for solutions,
// (component ID, interface ID) for subproblems — so a memo probe costs a
// couple of word hashes, not a string build.
type solver[W any] struct {
	sc   *SearchContext
	taf  weights.TAF[W]
	opts Options
	sols map[[2]int]*solNode[W] // (kvert idx, comp id)
	subs map[[2]int]*subNode[W] // (comp id, interned iface id)
	// scanAll bypasses the candidate index and tests every Ψ k-vertex per
	// subproblem — the pre-index reference path, retained for the oracle
	// equivalence tests.
	scanAll bool
}

// MinimalK computes an [F,kNFD_H]-minimal hypertree decomposition of h
// (Theorem 4.4). It returns ErrNoDecomposition if kNFD_H = ∅. The returned
// decomposition is in normal form, has width ≤ k, and minimizes taf over
// kNFD_H; its weight is returned alongside.
func MinimalK[W any](h *hypergraph.Hypergraph, k int, taf weights.TAF[W], opts Options) (*Result[W], error) {
	sc, err := NewSearchContext(h, k, opts)
	if err != nil {
		return nil, err
	}
	return MinimalKCtx(sc, taf, opts)
}

func newSolver[W any](sc *SearchContext, taf weights.TAF[W], opts Options) (*solver[W], error) {
	if taf.Semiring == nil {
		return nil, fmt.Errorf("core: TAF has nil semiring")
	}
	return &solver[W]{
		sc:   sc,
		taf:  taf,
		opts: opts,
		sols: map[[2]int]*solNode[W]{},
		subs: map[[2]int]*subNode[W]{},
	}, nil
}

func (sv *solver[W]) run() (*Result[W], error) {
	root := sv.subproblem(sv.sc.rootComp(), sv.sc.empty, sv.sc.emptyID)
	sv.solveSub(root)
	if len(root.cands) == 0 {
		return nil, ErrNoDecomposition
	}
	// Pick a minimum-weighted root candidate; there is no parent, so the
	// edge function does not apply at the top level.
	var best []*solNode[W]
	var bestW W
	for _, cand := range root.cands {
		switch {
		case len(best) == 0, sv.taf.Semiring.Less(cand.weight, bestW):
			best = []*solNode[W]{cand}
			bestW = cand.weight
		case !sv.taf.Semiring.Less(bestW, cand.weight):
			best = append(best, cand)
		}
	}
	chosen := sv.pick(best)
	nodeWeights := map[*hypertree.Node]W{}
	d := &hypertree.Decomposition{H: sv.sc.h, Root: sv.extract(chosen, nodeWeights)}
	d.Nodes()
	return &Result[W]{Decomp: d, Weight: chosen.weight, NodeWeights: nodeWeights}, nil
}

// subproblem interns the (C, I) subproblem node on integer keys.
func (sv *solver[W]) subproblem(c *compEntry, iface hypergraph.Varset, ifaceID int) *subNode[W] {
	key := [2]int{c.id, ifaceID}
	if q, ok := sv.subs[key]; ok {
		return q
	}
	q := &subNode[W]{comp: c, iface: iface}
	sv.subs[key] = q
	return q
}

// solution interns the (S, C) solution node.
func (sv *solver[W]) solution(s kvert, c *compEntry) *solNode[W] {
	key := [2]int{s.idx, c.id}
	if p, ok := sv.sols[key]; ok {
		return p
	}
	st := sv.sc.structOf(s, c)
	p := &solNode[W]{s: s, comp: c, st: st, info: sv.sc.nodeInfo(s, st, c)}
	sv.sols[key] = p
	return p
}

// candidateIdx returns the k-vertex indices to test for subproblem
// interface iface: the pruned posting list, or all Ψ k-vertices on the
// reference path.
func (sv *solver[W]) candidateIdx(iface hypergraph.Varset) []int32 {
	if sv.scanAll {
		return sv.sc.allIdx
	}
	return sv.sc.candidateSpace(iface)
}

// solveSub fills q.cands with the feasible candidate solutions of q, each
// with its memoized subtree weight. Components strictly shrink along the
// recursion (var(S) ∩ C ≠ ∅), so it terminates. Candidates are drawn from
// the interface's posting list instead of scanning all Ψ k-vertices; the
// list is in enumeration order, so the candidate order — and therefore
// deterministic tie-breaking — matches the full scan exactly.
func (sv *solver[W]) solveSub(q *subNode[W]) {
	if q.solved {
		return
	}
	q.solved = true
	for _, si := range sv.candidateIdx(q.iface) {
		s := sv.sc.kverts[si]
		if !sv.sc.candidateOK(s, q.comp, q.iface) {
			continue
		}
		p := sv.solution(s, q.comp)
		sv.solveSol(p)
		if p.feasible {
			q.cands = append(q.cands, p)
		}
	}
}

// solveSol computes the minimal subtree weight of solution node p = (S, C):
//
//	weight(p) = v(p) ⊕ ⊕_{q child subproblem} min_{p′ ∈ cands(q)} (weight(p′) ⊕ e(p, p′))
//
// (Lemma 7.7). p is infeasible iff some child subproblem has no feasible
// candidate.
func (sv *solver[W]) solveSol(p *solNode[W]) {
	if p.state == 2 {
		return
	}
	// state 1 (solving) is impossible: children have strictly smaller
	// components, so the recursion cannot revisit p. Assert anyway.
	if p.state == 1 {
		panic("core: cyclic candidate-graph recursion")
	}
	p.state = 1
	w := sv.taf.VertexWeight(p.info)
	feasible := true
	for i := range p.st.children {
		cr := &p.st.children[i]
		q := sv.subproblem(cr.comp, cr.iface, cr.ifaceID)
		sv.solveSub(q)
		if len(q.cands) == 0 {
			feasible = false
			break
		}
		p.children = append(p.children, q)
		_, bw := sv.bestChoice(p, q)
		w = sv.taf.Semiring.Combine(w, bw)
	}
	p.weight = w
	p.feasible = feasible
	p.state = 2
}

// bestChoice returns the argmin set and min value of
// weight(p′) ⊕ e(parent, p′) over p′ ∈ cands(q). When the TAF's edge
// function is parent-independent the result is cached on q.
func (sv *solver[W]) bestChoice(parent *solNode[W], q *subNode[W]) ([]*solNode[W], W) {
	if sv.taf.EdgeParentIndependent && q.bestCacheValid {
		return q.bestCached, q.bestCachedW
	}
	var best []*solNode[W]
	var bestW W
	for _, cand := range q.cands {
		w := sv.taf.Semiring.Combine(cand.weight, sv.taf.EdgeWeight(parent.info, cand.info))
		switch {
		case len(best) == 0, sv.taf.Semiring.Less(w, bestW):
			best = []*solNode[W]{cand}
			bestW = w
		case !sv.taf.Semiring.Less(bestW, w):
			best = append(best, cand)
		}
	}
	if sv.taf.EdgeParentIndependent {
		q.bestCached, q.bestCachedW, q.bestCacheValid = best, bestW, true
	}
	return best, bestW
}

// pick implements the (* select *) steps: deterministic first minimum, or a
// uniformly random minimum when Options.Rand is set.
func (sv *solver[W]) pick(best []*solNode[W]) *solNode[W] {
	if sv.opts.Rand != nil && len(best) > 1 {
		return best[sv.opts.Rand.Intn(len(best))]
	}
	return best[0]
}

// extract materializes the hypertree below the chosen solution node
// (procedure Select-hypertree), recording subtree weights. χ is cloned out
// of the shared structural cache so returned decompositions alias nothing
// mutable across solves.
func (sv *solver[W]) extract(p *solNode[W], nodeWeights map[*hypertree.Node]W) *hypertree.Node {
	n := hypertree.NewNode(p.st.chi.Clone(), p.s.edges)
	nodeWeights[n] = p.weight
	for _, q := range p.children {
		cands, _ := sv.bestChoice(p, q)
		child := sv.pick(cands)
		n.AddChild(sv.extract(child, nodeWeights))
	}
	return n
}

// Stats reports the size of the candidate graph explored by a solver run,
// for the complexity experiments (Theorem 4.5, experiment E3).
type Stats struct {
	KVertices   int // Ψ, number of k-vertices enumerated
	Components  int // distinct components interned
	Solutions   int // solution nodes materialized
	Subproblems int // subproblem nodes materialized
}

// MinimalKWithStats is MinimalK but also reports candidate-graph statistics.
func MinimalKWithStats[W any](h *hypergraph.Hypergraph, k int, taf weights.TAF[W], opts Options) (*Result[W], Stats, error) {
	sc, err := NewSearchContext(h, k, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	sv, err := newSolver(sc, taf, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	res, err := sv.run()
	return res, sv.stats(), err
}

// stats snapshots the candidate-graph counters of a finished solve.
func (sv *solver[W]) stats() Stats {
	return Stats{
		KVertices:   len(sv.sc.kverts),
		Components:  sv.sc.idx.size(),
		Solutions:   len(sv.sols),
		Subproblems: len(sv.subs),
	}
}
