package core

import (
	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// The candidate graph (paper §4.2). Nodes in Nsub are subproblems: a
// component C to decompose plus the interface I = var(edges(C)) ∩ var(R)
// inherited from the parent's k-vertex R. Two subproblems with equal (C, I)
// have identical candidate sets, so the graph is keyed on (C, I) — a
// sound compression of the paper's (R, C) keying. Nodes in Nsol are
// candidate solutions (S, C).
//
// Only nodes reachable from the root subproblem (var(H), ∅) are
// materialized; unreachable nodes cannot occur in any decomposition
// (Theorem 7.3 builds the tree top-down from the root), so this preserves
// the algorithm's output space while keeping the graph small.

// compEntry caches per-component data: the component C, edges(C), and
// var(edges(C)).
type compEntry struct {
	id       int
	vars     hypergraph.Varset // C
	edgesOf  []int             // edges(C)
	boundary hypergraph.Varset // var(edges(C))
}

// graph holds the shared (weight-independent) part of the candidate graph.
type graph struct {
	h      *hypergraph.Hypergraph
	k      int
	kverts []kvert
	comps  map[string]*compEntry // keyed by C.Key()
	nComps int
}

func newGraph(h *hypergraph.Hypergraph, k, limit int) (*graph, error) {
	kv, err := enumerateKVertices(h, k, limit)
	if err != nil {
		return nil, err
	}
	return &graph{h: h, k: k, kverts: kv, comps: map[string]*compEntry{}}, nil
}

// comp interns a component varset.
func (g *graph) comp(c hypergraph.Varset) *compEntry {
	key := c.Key()
	if e, ok := g.comps[key]; ok {
		return e
	}
	e := &compEntry{
		id:       g.nComps,
		vars:     c,
		edgesOf:  g.h.EdgesOf(c),
		boundary: g.h.VarsOfEdgesOf(c),
	}
	g.nComps++
	g.comps[key] = e
	return e
}

// rootComp returns the whole-problem component var(H).
func (g *graph) rootComp() *compEntry { return g.comp(g.h.AllVars().Clone()) }

// candidateOK reports whether k-vertex s is a candidate solution for the
// subproblem (c, iface): conditions C1 and C2 of Fig 4 —
//
//	C1: var(S) ∩ C ≠ ∅ and every h ∈ S meets var(edges(C));
//	C2: var(edges(C)) ∩ var(R) ⊆ var(S), i.e. iface ⊆ var(S).
func (g *graph) candidateOK(s kvert, c *compEntry, iface hypergraph.Varset) bool {
	if !iface.SubsetOf(s.vars) {
		return false
	}
	if !s.vars.Intersects(c.vars) {
		return false
	}
	for _, e := range s.edges {
		if !g.h.EdgeVars(e).Intersects(c.boundary) {
			return false
		}
	}
	return true
}

// chiOf returns χ(p) = var(edges(C)) ∩ var(S) for solution node (S, C).
func (g *graph) chiOf(s kvert, c *compEntry) hypergraph.Varset {
	return c.boundary.Intersect(s.vars)
}

// nodeInfo builds the weighting view of solution node (S, C).
func (g *graph) nodeInfo(s kvert, c *compEntry) weights.NodeInfo {
	return weights.NodeInfo{H: g.h, Lambda: s.edges, Chi: g.chiOf(s, c), Component: c.vars}
}

// childComps returns the [var(S)]-components contained in C — the
// subproblems a solution (S, C) must solve — with their interfaces.
func (g *graph) childComps(s kvert, c *compEntry) []*compEntry {
	comps := g.h.ComponentsWithin(s.vars, c.vars)
	out := make([]*compEntry, len(comps))
	for i, cc := range comps {
		out[i] = g.comp(cc)
	}
	return out
}

// ifaceFor returns the interface a child subproblem inherits from parent
// k-vertex s: var(edges(C′)) ∩ var(S).
func (g *graph) ifaceFor(s kvert, child *compEntry) hypergraph.Varset {
	return child.boundary.Intersect(s.vars)
}
