package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// The candidate graph (paper §4.2). Nodes in Nsub are subproblems: a
// component C to decompose plus the interface I = var(edges(C)) ∩ var(R)
// inherited from the parent's k-vertex R. Two subproblems with equal (C, I)
// have identical candidate sets, so the graph is keyed on (C, I) — a
// sound compression of the paper's (R, C) keying. Nodes in Nsol are
// candidate solutions (S, C).
//
// Only nodes reachable from the root subproblem (var(H), ∅) are
// materialized; unreachable nodes cannot occur in any decomposition
// (Theorem 7.3 builds the tree top-down from the root), so this preserves
// the algorithm's output space while keeping the graph small.
//
// Everything weight-independent — component entries, the χ of a solution
// node, its child components with their interfaces — lives in shared,
// concurrency-safe tables (StructIndex and the SearchContext's solStruct
// cache) keyed on interned integers, so repeated solves over one structure
// pay the structural discovery once and per-solve state shrinks to memo
// maps plus TAF evaluation.

// compEntry caches per-component data: the component C, edges(C), and
// var(edges(C)). Entries are interned in a StructIndex and immutable once
// published.
type compEntry struct {
	id       int               // dense per-StructIndex component ID
	vars     hypergraph.Varset // C
	edgesOf  []int             // edges(C)
	boundary hypergraph.Varset // var(edges(C))
}

// solStruct is the weight-independent part of solution node (S, C): its
// χ = var(edges(C)) ∩ var(S) (with its interned ID, for MemoKey stamping)
// and the child subproblems — the [var(S)]-components inside C — each with
// its interned interface.
type solStruct struct {
	chi      hypergraph.Varset
	chiID    int32
	children []childRef
}

// childRef is one child subproblem (C′, I) of a solution node, with the
// interface I = var(edges(C′)) ∩ var(S) interned to an integer ID so
// subproblem memo keys are [2]int, not concatenated strings.
type childRef struct {
	comp    *compEntry
	iface   hypergraph.Varset
	ifaceID int
}

// StructIndex is the shared weight-independent structural table of one
// hypergraph: a varset interner plus the component table. It is independent
// of the width bound k, so SearchContexts for different k over the same
// hypergraph (a Sweep family) can share one index, and every solve against
// any of those contexts reuses the same interned components. Safe for
// concurrent use; the interner is striped by word-hash and the component
// table sits behind a read-mostly lock.
type StructIndex struct {
	h        *hypergraph.Hypergraph
	gen      int32 // globally unique; names this index in MemoKeys
	interner *hypergraph.Interner
	mu       sync.RWMutex
	comps    map[int]*compEntry // varset ID → entry
}

// structGen numbers StructIndexes so MemoKeys from different indexes never
// collide in a shared evaluator cache.
var structGen atomic.Int32

// NewStructIndex returns an empty structural index for h.
func NewStructIndex(h *hypergraph.Hypergraph) *StructIndex {
	return &StructIndex{
		h:        h,
		gen:      structGen.Add(1),
		interner: hypergraph.NewInterner(),
		comps:    make(map[int]*compEntry),
	}
}

// Hypergraph returns the hypergraph the index was built for.
func (ix *StructIndex) Hypergraph() *hypergraph.Hypergraph { return ix.h }

// comp interns a component varset, taking ownership of c (callers pass
// freshly computed sets). The entry — including its dense ID — is shared by
// every solve and SearchContext using this index.
func (ix *StructIndex) comp(c hypergraph.Varset) *compEntry {
	vid := ix.interner.ID(c)
	ix.mu.RLock()
	e, ok := ix.comps[vid]
	ix.mu.RUnlock()
	if ok {
		return e
	}
	// Compute outside the write lock; the derivations are deterministic, so
	// a racing duplicate is identical and simply discarded.
	e = &compEntry{
		vars:     c,
		edgesOf:  ix.h.EdgesOf(c),
		boundary: ix.h.VarsOfEdgesOf(c),
	}
	ix.mu.Lock()
	if prev, ok := ix.comps[vid]; ok {
		ix.mu.Unlock()
		return prev
	}
	e.id = len(ix.comps)
	ix.comps[vid] = e
	ix.mu.Unlock()
	return e
}

// size returns the number of components interned so far.
func (ix *StructIndex) size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.comps)
}

// candidateOK reports whether k-vertex s is a candidate solution for the
// subproblem (c, iface): conditions C1 and C2 of Fig 4 —
//
//	C1: var(S) ∩ C ≠ ∅ and every h ∈ S meets var(edges(C));
//	C2: var(edges(C)) ∩ var(R) ⊆ var(S), i.e. iface ⊆ var(S).
//
// The indexed solvers only call it on k-vertices drawn from a posting list
// (candidateSpace); a full scan over all Ψ k-vertices with this predicate
// is the reference semantics the index must preserve.
func (sc *SearchContext) candidateOK(s kvert, c *compEntry, iface hypergraph.Varset) bool {
	if !iface.SubsetOf(s.vars) {
		return false
	}
	if !s.vars.Intersects(c.vars) {
		return false
	}
	for _, e := range s.edges {
		if !sc.h.EdgeVars(e).Intersects(c.boundary) {
			return false
		}
	}
	return true
}

// candidateSpace returns the ascending list of k-vertex indices worth
// testing for a subproblem with the given interface: condition C2 requires
// iface ⊆ var(S), so every candidate appears in the posting list of each
// interface variable, and the shortest such list suffices. An empty
// interface (the root subproblem, or a component detached from its parent)
// falls back to the full space. The order equals enumeration order, so the
// deterministic tie-breaking of the full scan is preserved exactly.
func (sc *SearchContext) candidateSpace(iface hypergraph.Varset) []int32 {
	best := -1
	bestLen := int(^uint(0) >> 1)
	for v := iface.NextSet(0); v >= 0; v = iface.NextSet(v + 1) {
		if l := len(sc.postings[v]); l < bestLen {
			best, bestLen = v, l
		}
	}
	if best < 0 {
		return sc.allIdx
	}
	return sc.postings[best]
}

// structOf returns the shared weight-independent data of solution node
// (S, C), computing and publishing it on first use. Warm solves hit the
// cache and allocate nothing here.
func (sc *SearchContext) structOf(s kvert, c *compEntry) *solStruct {
	key := [2]int{s.idx, c.id}
	sc.mu.RLock()
	st, ok := sc.structs[key]
	sc.mu.RUnlock()
	if ok {
		return st
	}
	comps := sc.h.ComponentsWithin(s.vars, c.vars)
	children := make([]childRef, len(comps))
	for i, cc := range comps {
		ce := sc.idx.comp(cc)
		iface := ce.boundary.Intersect(s.vars)
		children[i] = childRef{comp: ce, iface: iface, ifaceID: sc.idx.interner.ID(iface)}
	}
	chi := c.boundary.Intersect(s.vars)
	st = &solStruct{chi: chi, chiID: int32(sc.idx.interner.ID(chi)), children: children}
	sc.mu.Lock()
	if prev, ok := sc.structs[key]; ok {
		st = prev
	} else {
		sc.structs[key] = st
	}
	sc.mu.Unlock()
	return st
}

// nodeInfo builds the weighting view of solution node (S, C), stamped with
// the integer MemoKey (index generation, interned λ ID, interned χ ID) so
// cost models memoize per-node estimates without serializing the sets.
func (sc *SearchContext) nodeInfo(s kvert, st *solStruct, c *compEntry) weights.NodeInfo {
	return weights.NodeInfo{
		H:         sc.h,
		Lambda:    s.edges,
		Chi:       st.chi,
		Component: c.vars,
		Memo:      weights.MemoKey{Gen: sc.idx.gen, Lambda: s.lamID, Chi: st.chiID},
	}
}
