package core

import (
	"errors"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// Unweighted decomposition (the paper's k-decomp, Definition 7.2): the
// minimal-k-decomp machinery run with a trivial weight, so that any feasible
// selection is minimal.

// unit is the trivial weight: a one-element semiring.
type unit struct{}

type unitSemiring struct{}

func (unitSemiring) Combine(unit, unit) unit { return unit{} }
func (unitSemiring) Less(unit, unit) bool    { return false }
func (unitSemiring) Zero() unit              { return unit{} }

// unitTAF is the trivial TAF; every decomposition weighs the same.
func unitTAF() weights.TAF[unit] {
	return weights.TAF[unit]{Semiring: unitSemiring{}, EdgeParentIndependent: true}
}

// DecomposeK returns some width-≤k normal-form hypertree decomposition of
// h, or ErrNoDecomposition. With Options.Rand set, ties are broken randomly
// over the whole of kNFD_H (Theorem 7.3: every NF decomposition is a
// possible output).
func DecomposeK(h *hypergraph.Hypergraph, k int, opts Options) (*hypertree.Decomposition, error) {
	res, err := MinimalK(h, k, unitTAF(), opts)
	if err != nil {
		return nil, err
	}
	return res.Decomp, nil
}

// HasWidthK decides whether hw(h) ≤ k (LOGCFL in the paper; here the
// deterministic polynomial simulation).
func HasWidthK(h *hypergraph.Hypergraph, k int, opts Options) (bool, error) {
	_, err := DecomposeK(h, k, opts)
	if errors.Is(err, ErrNoDecomposition) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// HypertreeWidth computes hw(h) by searching k = 1, 2, ..., maxK, returning
// the smallest k admitting a decomposition together with an optimal (i.e.
// minimum-width) decomposition. If hw(h) > maxK it returns
// ErrNoDecomposition.
func HypertreeWidth(h *hypergraph.Hypergraph, maxK int, opts Options) (int, *hypertree.Decomposition, error) {
	for k := 1; k <= maxK; k++ {
		d, err := DecomposeK(h, k, opts)
		if errors.Is(err, ErrNoDecomposition) {
			continue
		}
		if err != nil {
			return 0, nil, err
		}
		return k, d, nil
	}
	return 0, nil, ErrNoDecomposition
}
