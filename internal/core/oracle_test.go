package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// Oracle equivalence for indexed candidate pruning: the solver drawing
// candidates from posting lists must return byte-identical decompositions
// and weights to the reference path that scans all Ψ k-vertices with
// candidateOK per subproblem (the pre-index behaviour, kept alive via the
// solver's scanAll switch). Deterministic tie-breaking (Options.Rand == nil)
// makes "identical" well-defined.

// minimalKScan is MinimalKCtx forced onto the full-scan reference path.
func minimalKScan[W any](sc *SearchContext, taf weights.TAF[W], opts Options) (*Result[W], error) {
	sv, err := newSolver(sc, taf, opts)
	if err != nil {
		return nil, err
	}
	sv.scanAll = true
	return sv.run()
}

// oracleCorpus returns the fixture hypergraphs the equivalence suite runs
// over: the paper's Q0 and Q1 plus seeded random hypergraphs of mixed
// shapes.
func oracleCorpus() map[string]*hypergraph.Hypergraph {
	corpus := map[string]*hypergraph.Hypergraph{
		"Q0": buildQ0(),
		"Q1": buildQ1(),
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		corpus[fmt.Sprintf("rand-%d", i)] = hypergraph.Random(rng, 7+i, 9+i, 3)
	}
	corpus["acyclic"] = hypergraph.RandomAcyclic(rand.New(rand.NewSource(5)), 8, 3)
	return corpus
}

func TestIndexedPruningMatchesScanOracle(t *testing.T) {
	vertex := func(p weights.NodeInfo) float64 {
		return float64(len(p.Lambda)*10 + p.Chi.Count())
	}
	edge := func(parent, child weights.NodeInfo) float64 {
		return float64(parent.Chi.Count() + 2*child.Chi.Count())
	}
	taf := weights.TAF[float64]{Semiring: weights.SumFloat{}, Vertex: vertex, Edge: edge}

	for name, h := range oracleCorpus() {
		for k := 1; k <= 3; k++ {
			sc, err := NewSearchContext(h, k, Options{})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			want, wantErr := minimalKScan(sc, taf, Options{})
			got, gotErr := MinimalKCtx(sc, taf, Options{})
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s k=%d: indexed err %v, reference err %v", name, k, gotErr, wantErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrNoDecomposition) || !errors.Is(wantErr, ErrNoDecomposition) {
					t.Fatalf("%s k=%d: unexpected errors %v / %v", name, k, gotErr, wantErr)
				}
				continue
			}
			if got.Weight != want.Weight {
				t.Errorf("%s k=%d: weight %v != reference %v", name, k, got.Weight, want.Weight)
			}
			if g, w := got.Decomp.String(), want.Decomp.String(); g != w {
				t.Errorf("%s k=%d: decomposition differs from reference\nindexed:\n%s\nreference:\n%s", name, k, g, w)
			}
		}
	}
}

// TestIndexedPruningSameCandidateSets checks the stronger property behind
// the equivalence: for every subproblem reached, the pruned candidate list
// filtered by candidateOK equals the full-scan list, in the same order.
func TestIndexedPruningSameCandidateSets(t *testing.T) {
	for name, h := range oracleCorpus() {
		for k := 1; k <= 3; k++ {
			sc, err := NewSearchContext(h, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sv, err := newSolver(sc, unitTAF(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			root := sv.subproblem(sc.rootComp(), sc.empty, sc.emptyID)
			sv.solveSub(root)
			for key, q := range sv.subs {
				var scan []int
				for _, s := range sc.kverts {
					if sc.candidateOK(s, q.comp, q.iface) {
						scan = append(scan, s.idx)
					}
				}
				var pruned []int
				for _, si := range sc.candidateSpace(q.iface) {
					s := sc.kverts[si]
					if sc.candidateOK(s, q.comp, q.iface) {
						pruned = append(pruned, s.idx)
					}
				}
				if len(scan) != len(pruned) {
					t.Fatalf("%s k=%d sub %v: %d pruned candidates != %d scanned", name, k, key, len(pruned), len(scan))
				}
				for i := range scan {
					if scan[i] != pruned[i] {
						t.Fatalf("%s k=%d sub %v: candidate order diverges at %d (%d != %d)",
							name, k, key, i, pruned[i], scan[i])
					}
				}
			}
		}
	}
}

// TestSharedContextSolvesAgree re-solves one SearchContext with different
// TAFs and checks the shared structural caches leak nothing
// weight-dependent: each TAF's result equals a fresh-context solve.
func TestSharedContextSolvesAgree(t *testing.T) {
	h := buildQ1()
	sc, err := NewSearchContext(h, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tafs := []weights.TAF[float64]{
		weights.WidthTAF(),
		weights.MaxSeparatorTAF(),
		{Semiring: weights.SumFloat{}, Vertex: func(p weights.NodeInfo) float64 {
			return float64(p.Chi.Count())
		}},
	}
	for i, taf := range tafs {
		shared, err := MinimalKCtx(sc, taf, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := MinimalK(h, 2, taf, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if shared.Weight != fresh.Weight {
			t.Errorf("taf %d: shared-context weight %v != fresh %v", i, shared.Weight, fresh.Weight)
		}
		if shared.Decomp.String() != fresh.Decomp.String() {
			t.Errorf("taf %d: shared-context decomposition differs from fresh solve", i)
		}
	}
}

// TestParallelDecomposeKCtx checks the weightless parallel entry point
// agrees with the sequential decomposition.
func TestParallelDecomposeKCtx(t *testing.T) {
	h := buildQ1()
	sc, err := NewSearchContext(h, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := DecomposeKCtx(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelDecomposeKCtx(sc, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel decomposition differs from sequential:\n%s\nvs\n%s", par, seq)
	}
}
