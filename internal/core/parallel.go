package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// Parallel minimal-k-decomp. Section 5 shows that for smooth TAFs the
// decision problem is LOGCFL-complete and hence highly parallelizable; this
// is the practical counterpart: a level-synchronized parallel evaluation of
// the candidate graph. Solution-node weights at component size s depend
// only on nodes with strictly smaller components, so nodes are processed in
// waves of equal component size, each wave fanned out over a worker pool.
//
// The vertex and edge functions of the TAF must be safe for concurrent use
// (the cost model in internal/cost is; pure functions trivially are).

// ParallelOptions tunes ParallelMinimalK.
type ParallelOptions struct {
	Options
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
}

// ParallelMinimalK computes the same result as MinimalK (identical weight;
// with deterministic tie-breaking, the identical decomposition) using a
// level-parallel evaluation of the candidate graph.
func ParallelMinimalK[W any](h *hypergraph.Hypergraph, k int, taf weights.TAF[W], opts ParallelOptions) (*Result[W], error) {
	sc, err := NewSearchContext(h, k, opts.Options)
	if err != nil {
		return nil, err
	}
	return ParallelMinimalKCtx(sc, taf, opts)
}

// ParallelMinimalKCtx is ParallelMinimalK evaluated against a prepared
// SearchContext, skipping the per-call k-vertex enumeration — the parallel
// counterpart of MinimalKCtx, for plan caches whose cold misses are large
// enough to be worth fanning out.
func ParallelMinimalKCtx[W any](sc *SearchContext, taf weights.TAF[W], opts ParallelOptions) (*Result[W], error) {
	return parallelSolve(sc, taf, opts)
}

// ParallelDecomposeKCtx is DecomposeKCtx evaluated with the level-parallel
// solver: the weightless entry point that lets services apply a worker pool
// to plain decomposition requests too.
func ParallelDecomposeKCtx(sc *SearchContext, opts ParallelOptions) (*hypertree.Decomposition, error) {
	res, err := ParallelMinimalKCtx(sc, unitTAF(), opts)
	if err != nil {
		return nil, err
	}
	return res.Decomp, nil
}

// parallelSolve runs the three phases of the level-parallel evaluation over
// a prepared search context.
func parallelSolve[W any](sc *SearchContext, taf weights.TAF[W], opts ParallelOptions) (*Result[W], error) {
	sv, err := newSolver(sc, taf, opts.Options)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Phase 1: sequential structural discovery of all reachable nodes
	// (no TAF evaluation), recording candidates and children.
	root := sv.subproblem(sv.sc.rootComp(), sv.sc.empty, sv.sc.emptyID)
	sv.discover(root)

	// Phase 2: level-parallel weight evaluation, ascending component size.
	var sols []*solNode[W]
	for _, p := range sv.sols {
		sols = append(sols, p)
	}
	sort.Slice(sols, func(i, j int) bool {
		a, b := sols[i], sols[j]
		if ca, cb := a.comp.vars.Count(), b.comp.vars.Count(); ca != cb {
			return ca < cb
		}
		// Stable total order inside a level for determinism of iteration.
		if a.comp.id != b.comp.id {
			return a.comp.id < b.comp.id
		}
		return a.s.idx < b.s.idx
	})
	for lo := 0; lo < len(sols); {
		hi := lo
		size := sols[lo].comp.vars.Count()
		for hi < len(sols) && sols[hi].comp.vars.Count() == size {
			hi++
		}
		level := sols[lo:hi]
		if len(level) < 2*workers {
			// Small wave: goroutine fan-out costs more than it saves.
			for _, p := range level {
				sv.weigh(p)
			}
		} else {
			// One goroutine per worker, each weighing a contiguous chunk —
			// not one per node, whose spawn overhead dominates now that a
			// single weigh is cheap.
			var wg sync.WaitGroup
			chunk := (len(level) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				start := w * chunk
				if start >= len(level) {
					break
				}
				end := min(start+chunk, len(level))
				wg.Add(1)
				go func(part []*solNode[W]) {
					defer wg.Done()
					for _, p := range part {
						sv.weigh(p)
					}
				}(level[start:end])
			}
			wg.Wait()
		}
		lo = hi
	}

	// Phase 3: sequential feasibility filter + extraction (cheap).
	for _, q := range sv.subs {
		var feas []*solNode[W]
		for _, cand := range q.cands {
			if cand.feasible {
				feas = append(feas, cand)
			}
		}
		q.cands = feas
	}
	if len(root.cands) == 0 {
		return nil, ErrNoDecomposition
	}
	var best []*solNode[W]
	var bestW W
	for _, cand := range root.cands {
		switch {
		case len(best) == 0, sv.taf.Semiring.Less(cand.weight, bestW):
			best = []*solNode[W]{cand}
			bestW = cand.weight
		case !sv.taf.Semiring.Less(bestW, cand.weight):
			best = append(best, cand)
		}
	}
	chosen := sv.pick(best)
	nodeWeights := map[*hypertree.Node]W{}
	d := &hypertree.Decomposition{H: sv.sc.h, Root: sv.extract(chosen, nodeWeights)}
	d.Nodes()
	return &Result[W]{Decomp: d, Weight: chosen.weight, NodeWeights: nodeWeights}, nil
}

// discover walks the reachable candidate graph without evaluating the TAF:
// it fills q.cands with all structural candidates (feasibility is decided
// later) and p.children with the child subproblems. Like solveSub it draws
// candidates from the interface's posting list.
func (sv *solver[W]) discover(q *subNode[W]) {
	if q.solved {
		return
	}
	q.solved = true
	for _, si := range sv.candidateIdx(q.iface) {
		s := sv.sc.kverts[si]
		if !sv.sc.candidateOK(s, q.comp, q.iface) {
			continue
		}
		p := sv.solution(s, q.comp)
		if p.state == 0 {
			p.state = 1
			for i := range p.st.children {
				cr := &p.st.children[i]
				child := sv.subproblem(cr.comp, cr.iface, cr.ifaceID)
				p.children = append(p.children, child)
				sv.discover(child)
			}
		}
		q.cands = append(q.cands, p)
	}
}

// weigh computes p's weight assuming all strictly-smaller nodes are done.
// It mirrors solveSol's weight recurrence, filtering for feasibility
// inline (children's cands still contain infeasible entries at this point).
func (sv *solver[W]) weigh(p *solNode[W]) {
	w := sv.taf.VertexWeight(p.info)
	feasible := true
	for _, q := range p.children {
		var best W
		found := false
		for _, cand := range q.cands {
			if !cand.feasible {
				continue
			}
			cw := sv.taf.Semiring.Combine(cand.weight, sv.taf.EdgeWeight(p.info, cand.info))
			if !found || sv.taf.Semiring.Less(cw, best) {
				best, found = cw, true
			}
		}
		if !found {
			feasible = false
			break
		}
		w = sv.taf.Semiring.Combine(w, best)
	}
	p.weight = w
	p.feasible = feasible
	p.state = 2
}
