package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/chaos"
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
	"repro/internal/weights"
)

// Parallel minimal-k-decomp. Section 5 shows that for smooth TAFs the
// decision problem is LOGCFL-complete and hence highly parallelizable; this
// is the practical counterpart: a level-synchronized parallel evaluation of
// the candidate graph. Solution-node weights at component size s depend
// only on nodes with strictly smaller components, so nodes are processed in
// waves of equal component size, each wave fanned out over a worker pool.
// Phase-1 structural discovery is fanned out too: the frontier of
// unexplored subproblems is expanded breadth-first over the same pool,
// with solution and subproblem nodes interned in striped-lock tables and
// the weight-independent structure (components, solStructs, interfaces)
// drawn from the SearchContext's shared concurrency-safe caches.
//
// The vertex and edge functions of the TAF must be safe for concurrent use
// (the cost model in internal/cost is — its memos are lock-free-read
// weights.Memo tables; pure functions trivially are).

// ParallelOptions tunes ParallelMinimalK.
type ParallelOptions struct {
	Options
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
}

// ParallelMinimalK computes the same result as MinimalK (identical weight;
// with deterministic tie-breaking, the identical decomposition) using a
// level-parallel evaluation of the candidate graph.
func ParallelMinimalK[W any](h *hypergraph.Hypergraph, k int, taf weights.TAF[W], opts ParallelOptions) (*Result[W], error) {
	sc, err := NewSearchContext(h, k, opts.Options)
	if err != nil {
		return nil, err
	}
	return ParallelMinimalKCtx(sc, taf, opts)
}

// ParallelMinimalKCtx is ParallelMinimalK evaluated against a prepared
// SearchContext, skipping the per-call k-vertex enumeration — the parallel
// counterpart of MinimalKCtx, for plan caches whose cold misses are large
// enough to be worth fanning out.
func ParallelMinimalKCtx[W any](sc *SearchContext, taf weights.TAF[W], opts ParallelOptions) (*Result[W], error) {
	return parallelSolve(sc, taf, opts)
}

// ParallelDecomposeKCtx is DecomposeKCtx evaluated with the level-parallel
// solver: the weightless entry point that lets services apply a worker pool
// to plain decomposition requests too.
func ParallelDecomposeKCtx(sc *SearchContext, opts ParallelOptions) (*hypertree.Decomposition, error) {
	res, err := ParallelMinimalKCtx(sc, unitTAF(), opts)
	if err != nil {
		return nil, err
	}
	return res.Decomp, nil
}

// parallelSolve runs the three phases of the level-parallel evaluation over
// a prepared search context.
func parallelSolve[W any](sc *SearchContext, taf weights.TAF[W], opts ParallelOptions) (*Result[W], error) {
	sv, err := newSolver(sc, taf, opts.Options)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Phase 1: structural discovery of all reachable nodes (no TAF
	// evaluation), recording candidates and children — breadth-first over
	// the worker pool.
	root, sols, subs := sv.discoverAll(workers)

	// Phase 2: level-parallel weight evaluation, ascending component size.
	sort.Slice(sols, func(i, j int) bool {
		a, b := sols[i], sols[j]
		if ca, cb := a.comp.vars.Count(), b.comp.vars.Count(); ca != cb {
			return ca < cb
		}
		// Stable total order inside a level for determinism of iteration.
		if a.comp.id != b.comp.id {
			return a.comp.id < b.comp.id
		}
		return a.s.idx < b.s.idx
	})
	for lo := 0; lo < len(sols); {
		hi := lo
		size := sols[lo].comp.vars.Count()
		for hi < len(sols) && sols[hi].comp.vars.Count() == size {
			hi++
		}
		level := sols[lo:hi]
		if len(level) < 2*workers {
			// Small wave: goroutine fan-out costs more than it saves.
			sv.weighChunk(level)
		} else {
			// One goroutine per worker, each weighing a contiguous chunk —
			// not one per node, whose spawn overhead dominates now that a
			// single weigh is cheap.
			var wg sync.WaitGroup
			chunk := (len(level) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				start := w * chunk
				if start >= len(level) {
					break
				}
				end := min(start+chunk, len(level))
				wg.Add(1)
				go func(part []*solNode[W]) {
					defer wg.Done()
					sv.weighChunk(part)
				}(level[start:end])
			}
			wg.Wait()
		}
		lo = hi
	}

	// Phase 3: sequential feasibility filter + extraction (cheap).
	for _, q := range subs {
		var feas []*solNode[W]
		for _, cand := range q.cands {
			if cand.feasible {
				feas = append(feas, cand)
			}
		}
		q.cands = feas
	}
	if len(root.cands) == 0 {
		return nil, ErrNoDecomposition
	}
	var best []*solNode[W]
	var bestW W
	for _, cand := range root.cands {
		switch {
		case len(best) == 0, sv.taf.Semiring.Less(cand.weight, bestW):
			best = []*solNode[W]{cand}
			bestW = cand.weight
		case !sv.taf.Semiring.Less(bestW, cand.weight):
			best = append(best, cand)
		}
	}
	chosen := sv.pick(best)
	nodeWeights := map[*hypertree.Node]W{}
	d := &hypertree.Decomposition{H: sv.sc.h, Root: sv.extract(chosen, nodeWeights)}
	d.Nodes()
	return &Result[W]{Decomp: d, Weight: chosen.weight, NodeWeights: nodeWeights}, nil
}

// discoverAll runs phase 1 and returns the root subproblem plus flat slices
// of every discovered solution and subproblem node. With one worker it is
// the sequential recursive walk; otherwise the frontier of unexplored
// subproblems is expanded wave by wave across the pool.
func (sv *solver[W]) discoverAll(workers int) (*subNode[W], []*solNode[W], []*subNode[W]) {
	if workers <= 1 {
		root := sv.subproblem(sv.sc.rootComp(), sv.sc.empty, sv.sc.emptyID)
		sv.discover(root)
		sols := make([]*solNode[W], 0, len(sv.sols))
		for _, p := range sv.sols {
			sols = append(sols, p)
		}
		subs := make([]*subNode[W], 0, len(sv.subs))
		for _, q := range sv.subs {
			subs = append(subs, q)
		}
		return root, sols, subs
	}
	return sv.discoverParallel(workers)
}

// discShards stripes the parallel discovery's intern tables; 32 keeps the
// probability of two workers colliding on one lock low at typical pool
// sizes without bloating the per-solve footprint.
const discShards = 32

// discTables interns solution and subproblem nodes during parallel
// discovery. Each shard is a plain map behind its own mutex; claiming a key
// (first insert) makes the claimant the node's owner, responsible for
// filling its structure and expanding its children — so every node is
// expanded exactly once, and candidate/child orders stay deterministic
// because each list is appended by a single goroutine in index order.
type discTables[W any] struct {
	sols [discShards]struct {
		mu sync.Mutex
		m  map[[2]int]*solNode[W]
	}
	subs [discShards]struct {
		mu sync.Mutex
		m  map[[2]int]*subNode[W]
	}
}

func newDiscTables[W any]() *discTables[W] {
	t := &discTables[W]{}
	for i := range t.sols {
		t.sols[i].m = map[[2]int]*solNode[W]{}
		t.subs[i].m = map[[2]int]*subNode[W]{}
	}
	return t
}

func discShard(key [2]int) int {
	return int((uint(key[0])*0x9e3779b9 ^ uint(key[1])*0x85ebca6b) % discShards)
}

// internSol claims or fetches solution node (S, C). The claimant receives
// created == true and must fill st/info/children before the discovery
// barrier completes; other goroutines may hold the pointer meanwhile but
// nothing reads those fields until phase 2.
func (t *discTables[W]) internSol(s kvert, c *compEntry) (*solNode[W], bool) {
	key := [2]int{s.idx, c.id}
	sh := &t.sols[discShard(key)]
	sh.mu.Lock()
	if p, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return p, false
	}
	p := &solNode[W]{s: s, comp: c}
	sh.m[key] = p
	sh.mu.Unlock()
	return p, true
}

// internSub claims or fetches subproblem node (C, I); the claimant enqueues
// it on the next discovery frontier.
func (t *discTables[W]) internSub(c *compEntry, iface hypergraph.Varset, ifaceID int) (*subNode[W], bool) {
	key := [2]int{c.id, ifaceID}
	sh := &t.subs[discShard(key)]
	sh.mu.Lock()
	if q, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return q, false
	}
	q := &subNode[W]{comp: c, iface: iface}
	sh.m[key] = q
	sh.mu.Unlock()
	return q, true
}

// discoverSub expands one claimed subproblem: fills q.cands from the
// interface's posting list and, for every solution node claimed here,
// resolves its structure and child subproblems, appending newly claimed
// children to next.
func (sv *solver[W]) discoverSub(q *subNode[W], tabs *discTables[W], next *[]*subNode[W]) {
	q.solved = true
	for _, si := range sv.candidateIdx(q.iface) {
		s := sv.sc.kverts[si]
		if !sv.sc.candidateOK(s, q.comp, q.iface) {
			continue
		}
		p, created := tabs.internSol(s, q.comp)
		if created {
			p.state = 1
			p.st = sv.sc.structOf(s, q.comp)
			p.info = sv.sc.nodeInfo(s, p.st, q.comp)
			for i := range p.st.children {
				cr := &p.st.children[i]
				child, fresh := tabs.internSub(cr.comp, cr.iface, cr.ifaceID)
				p.children = append(p.children, child)
				if fresh {
					*next = append(*next, child)
				}
			}
		}
		q.cands = append(q.cands, p)
	}
}

// discoverParallel is breadth-first structural discovery over the worker
// pool: each wave expands the current frontier of unexplored subproblems in
// parallel chunks, collecting the children claimed by each worker into the
// next frontier. The shared structural caches (StructIndex components,
// solStructs, interned interfaces) absorb the heavy lifting, so a warm
// context's discovery is pure traversal.
func (sv *solver[W]) discoverParallel(workers int) (*subNode[W], []*solNode[W], []*subNode[W]) {
	tabs := newDiscTables[W]()
	root, _ := tabs.internSub(sv.sc.rootComp(), sv.sc.empty, sv.sc.emptyID)
	frontier := []*subNode[W]{root}
	for len(frontier) > 0 {
		if len(frontier) < 2 {
			var next []*subNode[W]
			for _, q := range frontier {
				sv.discoverSub(q, tabs, &next)
			}
			frontier = next
			continue
		}
		n := min(workers, len(frontier))
		parts := make([][]*subNode[W], n)
		chunk := (len(frontier) + n - 1) / n
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			start := w * chunk
			if start >= len(frontier) {
				break
			}
			end := min(start+chunk, len(frontier))
			wg.Add(1)
			go func(part []*subNode[W], slot int) {
				defer wg.Done()
				// Delay only: intern-table appends are not idempotent, so
				// this site never offers Panic to the injector.
				chaos.Hit(chaos.CoreDiscoverWave, chaos.Delay)
				var local []*subNode[W]
				for _, q := range part {
					sv.discoverSub(q, tabs, &local)
				}
				parts[slot] = local
			}(frontier[start:end], w)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, part := range parts {
			frontier = append(frontier, part...)
		}
	}
	var sols []*solNode[W]
	for i := range tabs.sols {
		for _, p := range tabs.sols[i].m {
			sols = append(sols, p)
		}
	}
	var subs []*subNode[W]
	for i := range tabs.subs {
		for _, q := range tabs.subs[i].m {
			subs = append(subs, q)
		}
	}
	return root, sols, subs
}

// discover walks the reachable candidate graph without evaluating the TAF:
// it fills q.cands with all structural candidates (feasibility is decided
// later) and p.children with the child subproblems. Like solveSub it draws
// candidates from the interface's posting list.
func (sv *solver[W]) discover(q *subNode[W]) {
	if q.solved {
		return
	}
	q.solved = true
	for _, si := range sv.candidateIdx(q.iface) {
		s := sv.sc.kverts[si]
		if !sv.sc.candidateOK(s, q.comp, q.iface) {
			continue
		}
		p := sv.solution(s, q.comp)
		if p.state == 0 {
			p.state = 1
			for i := range p.st.children {
				cr := &p.st.children[i]
				child := sv.subproblem(cr.comp, cr.iface, cr.ifaceID)
				p.children = append(p.children, child)
				sv.discover(child)
			}
		}
		q.cands = append(q.cands, p)
	}
}

// weighChunk weighs a contiguous slice of one wave. With an injector
// registered it routes through the chaos-tolerant variant; otherwise it is
// the plain loop (the Active check is one atomic load per chunk).
func (sv *solver[W]) weighChunk(part []*solNode[W]) {
	if chaos.Active() {
		sv.weighChunkChaos(part)
		return
	}
	for _, p := range part {
		sv.weigh(p)
	}
}

// weighChunkChaos is weighChunk under fault injection: chaos may delay the
// worker or crash it mid-wave. An injected panic is absorbed by re-weighing
// the whole chunk — weigh is deterministic and idempotent (it rewrites
// weight/feasible/state from strictly-smaller nodes, which are finalized by
// the wave barrier), so a crashed worker's chunk is simply redone and the
// result stays byte-identical. Genuine panics re-panic untouched.
func (sv *solver[W]) weighChunkChaos(part []*solNode[W]) {
	defer func() {
		if r := recover(); r != nil {
			if !chaos.IsInjected(r) {
				panic(r)
			}
			for _, p := range part {
				sv.weigh(p)
			}
		}
	}()
	chaos.Hit(chaos.CoreWeighWave, chaos.Delay|chaos.Panic)
	for i, p := range part {
		if i == len(part)/2 && i > 0 {
			chaos.Hit(chaos.CoreWeighWave, chaos.Delay|chaos.Panic)
		}
		sv.weigh(p)
	}
}

// weigh computes p's weight assuming all strictly-smaller nodes are done.
// It mirrors solveSol's weight recurrence, filtering for feasibility
// inline (children's cands still contain infeasible entries at this point).
func (sv *solver[W]) weigh(p *solNode[W]) {
	w := sv.taf.VertexWeight(p.info)
	feasible := true
	for _, q := range p.children {
		var best W
		found := false
		for _, cand := range q.cands {
			if !cand.feasible {
				continue
			}
			cw := sv.taf.Semiring.Combine(cand.weight, sv.taf.EdgeWeight(p.info, cand.info))
			if !found || sv.taf.Semiring.Less(cw, best) {
				best, found = cw, true
			}
		}
		if !found {
			feasible = false
			break
		}
		w = sv.taf.Semiring.Combine(w, best)
	}
	p.weight = w
	p.feasible = feasible
	p.state = 2
}
