package core
