package csp

import (
	"fmt"
	"math/rand"
)

// Generators of CSP families used in tests and the CSP example.

// GraphColoring builds the coloring CSP of a graph: one disequality
// constraint per edge over a palette of colors colors.
func GraphColoring(edges [][2]int, colors int) *Problem {
	p := &Problem{}
	for idx, e := range edges {
		c := Constraint{
			Name:  fmt.Sprintf("ne%d", idx),
			Scope: []string{fmt.Sprintf("X%d", e[0]), fmt.Sprintf("X%d", e[1])},
		}
		for a := int32(0); a < int32(colors); a++ {
			for b := int32(0); b < int32(colors); b++ {
				if a != b {
					c.Allowed = append(c.Allowed, []int32{a, b})
				}
			}
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// RandomBinary generates a random binary CSP in the classic (n, d, p2)
// model restricted to a given constraint graph: for each edge, each value
// pair is allowed with probability keep. Each constraint keeps at least one
// tuple so domains stay non-empty.
func RandomBinary(rng *rand.Rand, edges [][2]int, domain int, keep float64) *Problem {
	p := &Problem{}
	for idx, e := range edges {
		c := Constraint{
			Name:  fmt.Sprintf("c%d", idx),
			Scope: []string{fmt.Sprintf("X%d", e[0]), fmt.Sprintf("X%d", e[1])},
		}
		for a := int32(0); a < int32(domain); a++ {
			for b := int32(0); b < int32(domain); b++ {
				if rng.Float64() < keep {
					c.Allowed = append(c.Allowed, []int32{a, b})
				}
			}
		}
		if len(c.Allowed) == 0 {
			c.Allowed = append(c.Allowed, []int32{0, 0})
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// CycleEdges returns the edges of an n-cycle.
func CycleEdges(n int) [][2]int {
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		out[i] = [2]int{i, (i + 1) % n}
	}
	return out
}

// GridEdges returns the edges of an r×c grid.
func GridEdges(r, c int) [][2]int {
	var out [][2]int
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				out = append(out, [2]int{id(i, j), id(i, j+1)})
			}
			if i+1 < r {
				out = append(out, [2]int{id(i, j), id(i+1, j)})
			}
		}
	}
	return out
}
