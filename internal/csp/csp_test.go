package csp

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
)

func TestValidate(t *testing.T) {
	if err := (&Problem{}).Validate(); err == nil {
		t.Error("empty problem should fail")
	}
	p := &Problem{Constraints: []Constraint{
		{Name: "c", Scope: []string{"X"}, Allowed: [][]int32{{1, 2}}},
	}}
	if err := p.Validate(); err == nil {
		t.Error("arity mismatch should fail")
	}
	p2 := &Problem{Constraints: []Constraint{
		{Name: "c", Scope: []string{"X"}, Allowed: [][]int32{{1}}},
		{Name: "c", Scope: []string{"Y"}, Allowed: [][]int32{{1}}},
	}}
	if err := p2.Validate(); err == nil {
		t.Error("duplicate names should fail")
	}
}

func TestGraphColoringTriangle(t *testing.T) {
	p := GraphColoring([][2]int{{0, 1}, {1, 2}, {2, 0}}, 3)
	sol := p.SolveBacktracking(nil)
	if sol == nil {
		t.Fatal("triangle is 3-colorable")
	}
	if !p.Check(sol) {
		t.Fatal("solution does not check")
	}
	// 2 colors are not enough.
	p2 := GraphColoring([][2]int{{0, 1}, {1, 2}, {2, 0}}, 2)
	if p2.SolveBacktracking(nil) != nil {
		t.Error("triangle should not be 2-colorable")
	}
}

func TestCheckRejectsBad(t *testing.T) {
	p := GraphColoring([][2]int{{0, 1}}, 3)
	if p.Check(Solution{"X0": 1, "X1": 1}) {
		t.Error("same colors on an edge should fail Check")
	}
	if !p.Check(Solution{"X0": 1, "X1": 2}) {
		t.Error("different colors should pass Check")
	}
}

func TestAsQueryShapes(t *testing.T) {
	p := GraphColoring(CycleEdges(5), 3)
	q, cat, err := p.AsQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 5 || len(q.Out) != 5 {
		t.Fatalf("query shape: %d atoms %d out", len(q.Atoms), len(q.Out))
	}
	if cat.Get("ne0") == nil || cat.Stats("ne0") == nil {
		t.Fatal("catalog incomplete")
	}
	// Satisfiability projection.
	qb, _, err := p.AsQuery([]string{})
	if err != nil {
		t.Fatal(err)
	}
	if !qb.IsBoolean() {
		t.Error("empty projection should give a Boolean query")
	}
}

// Decomposition-based solving agrees with backtracking on satisfiability,
// across random bounded-width CSPs.
func TestStructuralAgreesWithBacktracking(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		edges := CycleEdges(4 + rng.Intn(4))
		p := RandomBinary(rng, edges, 3, 0.25+rng.Float64()*0.3)
		q, cat, err := p.AsQuery([]string{})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := cost.CostKDecomp(q, cat, 2, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.EvalDecomposition(plan.Decomp, plan.Query, cat, nil)
		if err != nil {
			t.Fatal(err)
		}
		structural := engine.Answer(res)
		search := p.SolveBacktracking(nil) != nil
		if structural != search {
			t.Fatalf("trial %d: structural=%v backtracking=%v", trial, structural, search)
		}
	}
}

// Solutions found by backtracking always check, and every solution
// enumerated structurally checks too.
func TestSolutionEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	p := RandomBinary(rng, GridEdges(2, 3), 3, 0.5)
	q, cat, err := p.AsQuery(nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cost.CostKDecomp(q, cat, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.EvalDecomposition(plan.Decomp, plan.Query, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range res.Tuples {
		s := Solution{}
		for i, v := range res.Attrs {
			s[v] = tup[i]
		}
		if !p.Check(s) {
			t.Fatalf("structural solution %v fails Check", s)
		}
	}
	// Count agrees with naive evaluation.
	naive, err := engine.EvalNaive(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Card() != naive.Card() {
		t.Errorf("structural found %d solutions, naive %d", res.Card(), naive.Card())
	}
	if sol := p.SolveBacktracking(nil); (sol != nil) != (res.Card() > 0) {
		t.Error("backtracking disagrees on satisfiability")
	}
}

func TestBacktrackStats(t *testing.T) {
	p := GraphColoring(CycleEdges(6), 3)
	var st BacktrackStats
	if sol := p.SolveBacktracking(&st); sol == nil {
		t.Fatal("even cycle is 3-colorable")
	}
	if st.Assignments == 0 || st.Checks == 0 {
		t.Errorf("stats not collected: %+v", st)
	}
}

func TestGenerators(t *testing.T) {
	if len(CycleEdges(5)) != 5 {
		t.Error("CycleEdges wrong")
	}
	if len(GridEdges(2, 3)) != 7 {
		t.Error("GridEdges wrong")
	}
	rng := rand.New(rand.NewSource(1))
	p := RandomBinary(rng, CycleEdges(4), 3, 0.0)
	for _, c := range p.Constraints {
		if len(c.Allowed) == 0 {
			t.Error("RandomBinary left an empty constraint")
		}
	}
}
