// Package csp implements constraint satisfaction over extensional
// constraints — the paper's second framing of the same problem (Section
// 1.1: "conjunctive query evaluation is essentially the same problem as
// constraint satisfaction"). It provides the CSP representation, a
// conversion to conjunctive queries over a relational catalog (so bounded
// hypertree width instances solve polynomially through the decomposition
// engine), and a classical backtracking solver with forward checking as
// the search-based baseline.
package csp

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/db"
)

// Constraint is an extensional constraint: a scope of variables and the
// list of allowed value combinations.
type Constraint struct {
	Name    string
	Scope   []string
	Allowed [][]int32
}

// Problem is a CSP instance. Variable domains are implicit: the values
// occurring for the variable in its constraints.
type Problem struct {
	Constraints []Constraint
}

// Validate checks basic well-formedness.
func (p *Problem) Validate() error {
	if len(p.Constraints) == 0 {
		return fmt.Errorf("csp: no constraints")
	}
	seen := map[string]bool{}
	for _, c := range p.Constraints {
		if len(c.Scope) == 0 {
			return fmt.Errorf("csp: constraint %s has empty scope", c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("csp: duplicate constraint name %s", c.Name)
		}
		seen[c.Name] = true
		for _, t := range c.Allowed {
			if len(t) != len(c.Scope) {
				return fmt.Errorf("csp: constraint %s has tuple of arity %d, want %d",
					c.Name, len(t), len(c.Scope))
			}
		}
	}
	return nil
}

// Variables returns all variables in first-appearance order.
func (p *Problem) Variables() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range p.Constraints {
		for _, v := range c.Scope {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// AsQuery converts the CSP into a conjunctive query plus the catalog of
// constraint relations: solutions of the CSP = answers of the query. If
// project is nil all variables are output (enumerate all solutions); pass
// an empty non-nil slice for satisfiability only.
func (p *Problem) AsQuery(project []string) (*cq.Query, *db.Catalog, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	out := project
	if out == nil {
		out = p.Variables()
	}
	q := &cq.Query{Head: "sol", Out: out}
	cat := db.NewCatalog()
	for _, c := range p.Constraints {
		q.Atoms = append(q.Atoms, cq.Atom{Predicate: c.Name, Vars: c.Scope})
		attrs := make([]string, len(c.Scope))
		for i := range attrs {
			attrs[i] = fmt.Sprintf("c%d", i)
		}
		r := db.NewRelation(c.Name, attrs...)
		for _, t := range c.Allowed {
			if err := r.Append(t...); err != nil {
				return nil, nil, err
			}
		}
		cat.Put(r)
	}
	if err := cat.AnalyzeAll(); err != nil {
		return nil, nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	return q, cat, nil
}

// Solution maps variables to values.
type Solution map[string]int32

// Check reports whether the assignment satisfies every constraint (total
// assignments only).
func (p *Problem) Check(s Solution) bool {
	for _, c := range p.Constraints {
		ok := false
		for _, t := range c.Allowed {
			match := true
			for i, v := range c.Scope {
				val, bound := s[v]
				if !bound || val != t[i] {
					match = false
					break
				}
			}
			if match {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// domains computes the candidate values per variable: the intersection of
// the value sets the variable takes in each constraint containing it.
func (p *Problem) domains() map[string][]int32 {
	dom := map[string]map[int32]bool{}
	for _, c := range p.Constraints {
		for i, v := range c.Scope {
			vals := map[int32]bool{}
			for _, t := range c.Allowed {
				vals[t[i]] = true
			}
			if cur, ok := dom[v]; !ok {
				dom[v] = vals
			} else {
				for x := range cur {
					if !vals[x] {
						delete(cur, x)
					}
				}
			}
		}
	}
	out := map[string][]int32{}
	for v, vals := range dom {
		var list []int32
		for x := range vals {
			list = append(list, x)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		out[v] = list
	}
	return out
}

// BacktrackStats instruments the search baseline.
type BacktrackStats struct {
	Assignments int64 // variable-value assignments tried
	Checks      int64 // constraint consistency checks
}

// SolveBacktracking is the search baseline: chronological backtracking with
// minimum-remaining-values ordering and constraint checking on every
// partial assignment. Returns one solution or nil. Exponential in general —
// that is the point of the comparison.
func (p *Problem) SolveBacktracking(stats *BacktrackStats) Solution {
	if err := p.Validate(); err != nil {
		return nil
	}
	vars := p.Variables()
	dom := p.domains()
	// MRV static ordering.
	sort.SliceStable(vars, func(i, j int) bool { return len(dom[vars[i]]) < len(dom[vars[j]]) })
	assign := Solution{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return true
		}
		v := vars[i]
		for _, val := range dom[v] {
			assign[v] = val
			if stats != nil {
				stats.Assignments++
			}
			if p.consistent(assign, stats) && rec(i+1) {
				return true
			}
			delete(assign, v)
		}
		return false
	}
	if rec(0) {
		out := Solution{}
		for k, v := range assign {
			out[k] = v
		}
		return out
	}
	return nil
}

// consistent reports whether the partial assignment can still satisfy
// every constraint: each constraint must have an allowed tuple compatible
// with the bound variables of its scope.
func (p *Problem) consistent(s Solution, stats *BacktrackStats) bool {
	for _, c := range p.Constraints {
		if stats != nil {
			stats.Checks++
		}
		ok := false
		for _, t := range c.Allowed {
			match := true
			for i, v := range c.Scope {
				if val, bound := s[v]; bound && val != t[i] {
					match = false
					break
				}
			}
			if match {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
