package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

func threeMembers() []Member {
	return []Member{
		{ID: "a", Addr: "127.0.0.1:1"},
		{ID: "b", Addr: "127.0.0.1:2"},
		{ID: "c", Addr: "127.0.0.1:3"},
	}
}

func TestRingDeterministicAndOrderInvariant(t *testing.T) {
	ms := threeMembers()
	r1, err := NewRing(ms, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same members, reversed configuration order.
	rev := []Member{ms[2], ms[0], ms[1]}
	r2, err := NewRing(rev, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("plan-key-%d-%d", i, rng.Int63())
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("owner differs across configuration orders: %v vs %v for %q", o1, o2, key)
		}
	}
}

func TestRingDistributionAndShare(t *testing.T) {
	r, err := NewRing(threeMembers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i)).ID]++
	}
	var shareSum float64
	for _, m := range r.Members() {
		share := r.Share(m.ID)
		shareSum += share
		got := float64(counts[m.ID]) / n
		if share < 0.10 || share > 0.60 {
			t.Fatalf("member %s owns a degenerate share %.3f", m.ID, share)
		}
		if diff := got - share; diff < -0.05 || diff > 0.05 {
			t.Fatalf("member %s: empirical share %.3f far from ring share %.3f", m.ID, got, share)
		}
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("shares do not cover the circle: %f", shareSum)
	}
	if s := r.Share("nobody"); s != 0 {
		t.Fatalf("unknown member owns %f", s)
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := NewRing([]Member{{ID: "solo", Addr: "x"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Share("solo"); s != 1 {
		t.Fatalf("single member share = %f, want 1", s)
	}
	if o := r.Owner("anything"); o.ID != "solo" {
		t.Fatalf("owner = %v", o)
	}
}

// TestRingConsistency pins the property the construction exists for:
// removing one member only remaps that member's keys.
func TestRingConsistency(t *testing.T) {
	full, err := NewRing(threeMembers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(threeMembers()[:2], 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before.ID != "c" && before.ID != after.ID {
			t.Fatalf("key %q moved from surviving member %s to %s", key, before.ID, after.ID)
		}
		if before.ID == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned nothing; test is vacuous")
	}
}

func TestRingConfigErrors(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]Member{{ID: "a"}, {ID: "a"}}, 8); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := NewRing([]Member{{ID: ""}}, 8); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("a=127.0.0.1:7001, b=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != "a" || ms[1].Addr != "127.0.0.1:7002" {
		t.Fatalf("parsed %+v", ms)
	}
	for _, bad := range []string{"", "a=", "=x", "a=1,,b=2", "justanid"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
}

// memBackend is an in-memory Backend for RPC tests.
type memBackend struct {
	mu   sync.Mutex
	recs map[string][]byte
	negs map[string]bool
	err  error // forced PutRecord failure
}

func newMemBackend() *memBackend {
	return &memBackend{recs: map[string][]byte{}, negs: map[string]bool{}}
}

func (b *memBackend) GetRecord(key, negKey string) ([]byte, bool, bool) {
	if negKey != "" && func() bool { b.mu.Lock(); defer b.mu.Unlock(); return b.negs[negKey] }() {
		return nil, true, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.negs[key] {
		return nil, true, true
	}
	if rec, ok := b.recs[key]; ok {
		return rec, false, true
	}
	return nil, false, false
}

func (b *memBackend) PutRecord(key string, rec []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	b.recs[key] = append([]byte(nil), rec...)
	return nil
}

func (b *memBackend) PutNegative(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.negs[key] = true
	return nil
}

// startPeer boots a PeerServer on a loopback listener and returns its
// address plus a stop function.
func startPeer(t *testing.T, b Backend) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewPeerServer(b)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	return ln.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

func TestRPCRoundTrip(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	defer stop()

	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{PingInterval: -1})
	defer c.Close()

	if err := c.Ping("p"); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, _, ok, err := c.Get("p", "nothing", ""); ok || err != nil {
		t.Fatalf("cold get: ok=%v err=%v", ok, err)
	}
	rec := bytes.Repeat([]byte(`{"plan":true}`), 100)
	if err := c.Put("p", "k1", rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, negative, ok, err := c.Get("p", "k1", "")
	if err != nil || !ok || negative || !bytes.Equal(got, rec) {
		t.Fatalf("get after put: ok=%v neg=%v err=%v bytes-equal=%v", ok, negative, err, bytes.Equal(got, rec))
	}
	if err := c.PutNegative("p", "dead"); err != nil {
		t.Fatalf("putneg: %v", err)
	}
	if _, negative, ok, err := c.Get("p", "dead", ""); !ok || !negative || err != nil {
		t.Fatalf("negative get: ok=%v neg=%v err=%v", ok, negative, err)
	}
	// Server-side failures surface as errors, not silent acks.
	backend.mu.Lock()
	backend.err = errors.New("backend refused")
	backend.mu.Unlock()
	if err := c.Put("p", "k2", rec); err == nil {
		t.Fatal("failed put acked")
	}
	if _, err := c.peer("ghost"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
}

func TestRPCConcurrentCalls(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	defer stop()
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{PingInterval: -1})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			val := []byte(fmt.Sprintf("v%d", i))
			if err := c.Put("p", key, val); err != nil {
				errs <- err
				return
			}
			got, _, ok, err := c.Get("p", key, "")
			if err != nil || !ok || !bytes.Equal(got, val) {
				errs <- fmt.Errorf("get %s: ok=%v err=%v", key, ok, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHealthTransitions(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)

	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{
		PingInterval:  -1,
		FailThreshold: 2,
		DialTimeout:   200 * time.Millisecond,
		CallTimeout:   200 * time.Millisecond,
	})
	defer c.Close()

	if !c.Healthy("p") {
		t.Fatal("peer not optimistically healthy at boot")
	}
	if err := c.Ping("p"); err != nil {
		t.Fatal(err)
	}

	// Partition: server goes away; below the threshold the peer is still
	// considered healthy, at the threshold it flips.
	stop()
	if err := c.Ping("p"); err == nil {
		t.Fatal("ping succeeded against a stopped server")
	}
	if !c.Healthy("p") {
		t.Fatal("one failure below threshold flipped health")
	}
	c.Ping("p")
	if c.Healthy("p") {
		t.Fatal("threshold failures left peer healthy")
	}

	// Heal: a new server on the same address; one success re-admits.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := NewPeerServer(backend)
	go srv.Serve(ln)
	defer srv.Close()
	if err := c.Ping("p"); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
	if !c.Healthy("p") {
		t.Fatal("success did not restore health")
	}
	if c.Healthy("ghost") {
		t.Fatal("unknown peer reported healthy")
	}
}

// partitionInjector fails every ClusterPeerRPC hit.
type partitionInjector struct{ hits int }

func (pi *partitionInjector) Act(p chaos.Point, allowed chaos.Effect) chaos.Effect {
	if p == chaos.ClusterPeerRPC {
		pi.hits++
		return chaos.Fail & allowed
	}
	return 0
}

func TestChaosPartitionNeverTouchesWire(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	defer stop()
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{PingInterval: -1, FailThreshold: 1})
	defer c.Close()

	inj := &partitionInjector{}
	unregister := chaos.Register(inj)
	err := c.Put("p", "k", []byte("v"))
	unregister()
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("partitioned put: %v", err)
	}
	if inj.hits != 1 {
		t.Fatalf("injector hits = %d", inj.hits)
	}
	backend.mu.Lock()
	stored := len(backend.recs)
	backend.mu.Unlock()
	if stored != 0 {
		t.Fatal("partitioned call reached the backend")
	}
	if c.Healthy("p") {
		t.Fatal("injected partition not reflected in health")
	}
	// Without the injector the same call lands and heals the peer.
	if err := c.Put("p", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !c.Healthy("p") {
		t.Fatal("peer not healed")
	}
}

func TestPooledConnectionReuseSurvivesServerRestart(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{
		PingInterval: -1,
		DialTimeout:  200 * time.Millisecond,
		CallTimeout:  200 * time.Millisecond,
	})
	defer c.Close()
	if err := c.Ping("p"); err != nil {
		t.Fatal(err)
	}
	// Restart the server: the pooled connection is now dead, and the call
	// path must retry on a fresh dial rather than fail.
	stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := NewPeerServer(backend)
	go srv.Serve(ln)
	defer srv.Close()
	if err := c.Ping("p"); err != nil {
		t.Fatalf("ping over stale pooled conn did not retry: %v", err)
	}
}
