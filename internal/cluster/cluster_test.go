package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

func threeMembers() []Member {
	return []Member{
		{ID: "a", Addr: "127.0.0.1:1"},
		{ID: "b", Addr: "127.0.0.1:2"},
		{ID: "c", Addr: "127.0.0.1:3"},
	}
}

func TestRingDeterministicAndOrderInvariant(t *testing.T) {
	ms := threeMembers()
	r1, err := NewRing(ms, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same members, reversed configuration order.
	rev := []Member{ms[2], ms[0], ms[1]}
	r2, err := NewRing(rev, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("plan-key-%d-%d", i, rng.Int63())
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("owner differs across configuration orders: %v vs %v for %q", o1, o2, key)
		}
	}
}

func TestRingDistributionAndShare(t *testing.T) {
	r, err := NewRing(threeMembers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i)).ID]++
	}
	var shareSum float64
	for _, m := range r.Members() {
		share := r.Share(m.ID)
		shareSum += share
		got := float64(counts[m.ID]) / n
		if share < 0.10 || share > 0.60 {
			t.Fatalf("member %s owns a degenerate share %.3f", m.ID, share)
		}
		if diff := got - share; diff < -0.05 || diff > 0.05 {
			t.Fatalf("member %s: empirical share %.3f far from ring share %.3f", m.ID, got, share)
		}
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("shares do not cover the circle: %f", shareSum)
	}
	if s := r.Share("nobody"); s != 0 {
		t.Fatalf("unknown member owns %f", s)
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := NewRing([]Member{{ID: "solo", Addr: "x"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Share("solo"); s != 1 {
		t.Fatalf("single member share = %f, want 1", s)
	}
	if o := r.Owner("anything"); o.ID != "solo" {
		t.Fatalf("owner = %v", o)
	}
}

// TestRingConsistency pins the property the construction exists for:
// removing one member only remaps that member's keys.
func TestRingConsistency(t *testing.T) {
	full, err := NewRing(threeMembers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(threeMembers()[:2], 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before.ID != "c" && before.ID != after.ID {
			t.Fatalf("key %q moved from surviving member %s to %s", key, before.ID, after.ID)
		}
		if before.ID == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned nothing; test is vacuous")
	}
}

func TestRingOwnersDistinctPrefixAndClamp(t *testing.T) {
	r, err := NewRing(threeMembers(), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) returned %d members", key, len(owners))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %v, Owner = %v", key, owners[0], r.Owner(key))
		}
		if owners[0].ID == owners[1].ID {
			t.Fatalf("Owners(%q, 2) repeated member %s", key, owners[0].ID)
		}
	}
	// n beyond the membership clamps; n <= 0 yields the primary alone.
	if got := r.Owners("k", 99); len(got) != 3 {
		t.Fatalf("Owners(k, 99) returned %d members, want all 3", len(got))
	}
	if got := r.Owners("k", 0); len(got) != 1 || got[0] != r.Owner("k") {
		t.Fatalf("Owners(k, 0) = %v", got)
	}
	seen := map[string]bool{}
	for _, m := range r.Owners("k", 3) {
		if seen[m.ID] {
			t.Fatalf("full replica set repeats member %s", m.ID)
		}
		seen[m.ID] = true
	}
}

// TestRingRebalanceShare pins the rebalance property the consistent hash
// exists for: adding one member to an n-member ring moves only about a
// 1/(n+1) share of the keyspace, and every move lands on the new member.
func TestRingRebalanceShare(t *testing.T) {
	base := []Member{
		{ID: "a", Addr: "x"}, {ID: "b", Addr: "x"},
		{ID: "c", Addr: "x"}, {ID: "d", Addr: "x"},
	}
	before, err := NewRing(base, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(append(base[:4:4], Member{ID: "e", Addr: "x"}), DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("rebalance-key-%d", i)
		b, a := before.Owner(key), after.Owner(key)
		if b.ID != a.ID {
			if a.ID != "e" {
				t.Fatalf("key %q moved between surviving members %s -> %s", key, b.ID, a.ID)
			}
			moved++
		}
	}
	movedFrac := float64(moved) / n
	share := after.Share("e")
	// The moved fraction is exactly the new member's ring share; both sit
	// near 1/5 with vnode-level noise.
	if diff := movedFrac - share; diff < -0.03 || diff > 0.03 {
		t.Fatalf("moved fraction %.3f far from new member's share %.3f", movedFrac, share)
	}
	if movedFrac < 0.08 || movedFrac > 0.35 {
		t.Fatalf("adding 1 of 5 members moved %.1f%% of keys, want ~20%%", 100*movedFrac)
	}
}

func TestRingConfigErrors(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]Member{{ID: "a"}, {ID: "a"}}, 8); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := NewRing([]Member{{ID: ""}}, 8); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestParseMembers(t *testing.T) {
	ms, err := ParseMembers("a=127.0.0.1:7001, b=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != "a" || ms[1].Addr != "127.0.0.1:7002" {
		t.Fatalf("parsed %+v", ms)
	}
	for _, bad := range []string{"", "a=", "=x", "a=1,,b=2", "justanid"} {
		if _, err := ParseMembers(bad); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
}

// memBackend is an in-memory Backend for RPC tests.
type memBackend struct {
	mu   sync.Mutex
	recs map[string][]byte
	negs map[string]bool
	err  error // forced PutRecord failure
}

func newMemBackend() *memBackend {
	return &memBackend{recs: map[string][]byte{}, negs: map[string]bool{}}
}

func (b *memBackend) GetRecord(key, negKey string) ([]byte, bool, bool) {
	if negKey != "" && func() bool { b.mu.Lock(); defer b.mu.Unlock(); return b.negs[negKey] }() {
		return nil, true, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.negs[key] {
		return nil, true, true
	}
	if rec, ok := b.recs[key]; ok {
		return rec, false, true
	}
	return nil, false, false
}

func (b *memBackend) PutRecord(key string, rec []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	b.recs[key] = append([]byte(nil), rec...)
	return nil
}

func (b *memBackend) PutNegative(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.negs[key] = true
	return nil
}

// startPeer boots a PeerServer on a loopback listener and returns its
// address plus a stop function.
func startPeer(t *testing.T, b Backend) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewPeerServer(b)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	return ln.Addr().String(), func() {
		srv.Close()
		<-done
	}
}

func TestRPCRoundTrip(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	defer stop()

	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{PingInterval: -1})
	defer c.Close()
	ctx := context.Background()

	if err := c.Ping(ctx, "p"); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, _, ok, err := c.Get(ctx, "p", "nothing", ""); ok || err != nil {
		t.Fatalf("cold get: ok=%v err=%v", ok, err)
	}
	rec := bytes.Repeat([]byte(`{"plan":true}`), 100)
	if err := c.Put(ctx, "p", "k1", rec); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, negative, ok, err := c.Get(ctx, "p", "k1", "")
	if err != nil || !ok || negative || !bytes.Equal(got, rec) {
		t.Fatalf("get after put: ok=%v neg=%v err=%v bytes-equal=%v", ok, negative, err, bytes.Equal(got, rec))
	}
	if err := c.PutNegative(ctx, "p", "dead"); err != nil {
		t.Fatalf("putneg: %v", err)
	}
	if _, negative, ok, err := c.Get(ctx, "p", "dead", ""); !ok || !negative || err != nil {
		t.Fatalf("negative get: ok=%v neg=%v err=%v", ok, negative, err)
	}
	// Server-side failures surface as errors, not silent acks.
	backend.mu.Lock()
	backend.err = errors.New("backend refused")
	backend.mu.Unlock()
	if err := c.Put(ctx, "p", "k2", rec); err == nil {
		t.Fatal("failed put acked")
	}
	if _, err := c.peer("ghost"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown peer: %v", err)
	}
}

func TestRPCConcurrentCalls(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	defer stop()
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{PingInterval: -1})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			val := []byte(fmt.Sprintf("v%d", i))
			if err := c.Put(context.Background(), "p", key, val); err != nil {
				errs <- err
				return
			}
			got, _, ok, err := c.Get(context.Background(), "p", key, "")
			if err != nil || !ok || !bytes.Equal(got, val) {
				errs <- fmt.Errorf("get %s: ok=%v err=%v", key, ok, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBreakerTransitions(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	ctx := context.Background()

	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{
		PingInterval: -1,
		Retries:      -1, // deterministic outcome counting
		DialTimeout:  200 * time.Millisecond,
		CallTimeout:  200 * time.Millisecond,
		Breaker: BreakerOptions{
			Window:     4,
			MinSamples: 2,
			ErrorRate:  0.5,
			Cooldown:   30 * time.Millisecond,
		},
	})
	defer c.Close()

	if !c.Healthy("p") {
		t.Fatal("peer breaker not closed at boot")
	}
	if err := c.Ping(ctx, "p"); err != nil {
		t.Fatal(err)
	}

	// Partition: the server goes away. MinSamples failures trip the
	// breaker; subsequent calls fast-fail without touching the wire.
	stop()
	for i := 0; i < 2; i++ {
		if err := c.Ping(ctx, "p"); err == nil {
			t.Fatal("ping succeeded against a stopped server")
		}
	}
	if c.Healthy("p") {
		t.Fatal("error-rate window did not trip the breaker")
	}
	if st := c.BreakerStates()["p"]; st != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	start := time.Now()
	if err := c.Ping(ctx, "p"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("breaker denial touched the wire")
	}

	// Heal: rebind the address, wait out the cooldown; the half-open probe
	// succeeds and closes the breaker.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := NewPeerServer(backend)
	go srv.Serve(ln)
	defer srv.Close()
	time.Sleep(40 * time.Millisecond)
	if err := c.Ping(ctx, "p"); err != nil {
		t.Fatalf("half-open probe after heal: %v", err)
	}
	if st := c.BreakerStates()["p"]; st != BreakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", st)
	}
	if c.Healthy("ghost") {
		t.Fatal("unknown peer reported healthy")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	ctx := context.Background()
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{
		PingInterval: -1,
		Retries:      -1,
		DialTimeout:  100 * time.Millisecond,
		CallTimeout:  100 * time.Millisecond,
		Breaker:      BreakerOptions{Window: 2, MinSamples: 1, ErrorRate: 0.5, Cooldown: 20 * time.Millisecond},
	})
	defer c.Close()
	if err := c.Ping(ctx, "p"); err != nil {
		t.Fatal(err)
	}
	stop()
	if err := c.Ping(ctx, "p"); err == nil {
		t.Fatal("ping succeeded against a stopped server")
	}
	if st := c.BreakerStates()["p"]; st != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	// Cooldown elapses but the peer is still dead: the probe fails and the
	// breaker reopens for another cooldown.
	time.Sleep(30 * time.Millisecond)
	if err := c.Ping(ctx, "p"); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open probe err = %v, want a wire failure", err)
	}
	if st := c.BreakerStates()["p"]; st != BreakerOpen {
		t.Fatalf("breaker state after failed probe = %v, want open", st)
	}
}

func TestCallDeadlineBudget(t *testing.T) {
	// A listener that accepts and never answers: the peer is a black hole.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c := NewClient([]Member{{ID: "p", Addr: ln.Addr().String()}}, ClientOptions{
		PingInterval: -1,
		CallTimeout:  5 * time.Second, // would dominate without the ctx budget
		Retries:      3,
	})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := c.Ping(ctx, "p"); err == nil {
		t.Fatal("ping of a black hole succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("call outlived its deadline budget: %v", elapsed)
	}
}

// flakyInjector fails the first n ClusterPeerRPC hits, then passes.
type flakyInjector struct {
	mu   sync.Mutex
	n    int
	hits int
}

func (fi *flakyInjector) Act(p chaos.Point, allowed chaos.Effect) chaos.Effect {
	if p != chaos.ClusterPeerRPC {
		return 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.hits++
	if fi.hits <= fi.n {
		return chaos.Fail & allowed
	}
	return 0
}

func TestRetriesRideOutTransientFailures(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	defer stop()
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{
		PingInterval: -1,
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	defer c.Close()

	inj := &flakyInjector{n: 2}
	unregister := chaos.Register(inj)
	err := c.Put(context.Background(), "p", "k", []byte("v"))
	unregister()
	if err != nil {
		t.Fatalf("put with 2 transient failures and 2 retries: %v", err)
	}
	if inj.hits != 3 {
		t.Fatalf("injector hits = %d, want 3 (2 failures + 1 success)", inj.hits)
	}
	// One logical call, one breaker outcome: the transient flaps must not
	// have tripped anything.
	if st := c.BreakerStates()["p"]; st != BreakerClosed {
		t.Fatalf("breaker state = %v, want closed", st)
	}
}

// partitionInjector fails every ClusterPeerRPC hit.
type partitionInjector struct{ hits int }

func (pi *partitionInjector) Act(p chaos.Point, allowed chaos.Effect) chaos.Effect {
	if p == chaos.ClusterPeerRPC {
		pi.hits++
		return chaos.Fail & allowed
	}
	return 0
}

func TestChaosPartitionNeverTouchesWire(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	defer stop()
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{
		PingInterval: -1,
		Retries:      -1,
		Breaker:      BreakerOptions{Window: 2, MinSamples: 1, ErrorRate: 0.5, Cooldown: 20 * time.Millisecond},
	})
	defer c.Close()

	inj := &partitionInjector{}
	unregister := chaos.Register(inj)
	err := c.Put(context.Background(), "p", "k", []byte("v"))
	unregister()
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("partitioned put: %v", err)
	}
	if inj.hits != 1 {
		t.Fatalf("injector hits = %d", inj.hits)
	}
	backend.mu.Lock()
	stored := len(backend.recs)
	backend.mu.Unlock()
	if stored != 0 {
		t.Fatal("partitioned call reached the backend")
	}
	if c.Healthy("p") {
		t.Fatal("injected partition not reflected in breaker state")
	}
	// Without the injector — and past the cooldown — the half-open probe
	// lands and heals the peer.
	time.Sleep(30 * time.Millisecond)
	if err := c.Put(context.Background(), "p", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !c.Healthy("p") {
		t.Fatal("peer not healed")
	}
}

// probeDenier fails every ClusterPeerBreaker hit: the flapping-link model
// where half-open probes keep being denied admission.
type probeDenier struct {
	mu   sync.Mutex
	hits int
}

func (pd *probeDenier) Act(p chaos.Point, allowed chaos.Effect) chaos.Effect {
	if p == chaos.ClusterPeerBreaker {
		pd.mu.Lock()
		pd.hits++
		pd.mu.Unlock()
		return chaos.Fail & allowed
	}
	return 0
}

func TestChaosBreakerProbeDenialKeepsPeerDark(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	defer stop()
	ctx := context.Background()
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{
		PingInterval: -1,
		Retries:      -1,
		Breaker:      BreakerOptions{Window: 2, MinSamples: 1, ErrorRate: 0.5, Cooldown: 5 * time.Millisecond},
	})
	defer c.Close()

	// Trip the breaker with one injected partition.
	part := chaos.Register(&partitionInjector{})
	_ = c.Put(ctx, "p", "k", []byte("v"))
	part()
	if c.Healthy("p") {
		t.Fatal("breaker did not trip")
	}

	// With probes denied, the cooldown elapsing never re-admits traffic —
	// every call keeps fast-failing even though the server is fine.
	inj := &probeDenier{}
	unregister := chaos.Register(inj)
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := c.Ping(ctx, "p"); !errors.Is(err, ErrBreakerOpen) {
			unregister()
			t.Fatalf("denied probe admitted a call: %v", err)
		}
	}
	unregister()
	if inj.hits == 0 {
		t.Fatal("probe-denial site never fired")
	}
	// Once the flap stops, the next probe closes the breaker.
	time.Sleep(10 * time.Millisecond)
	if err := c.Ping(ctx, "p"); err != nil {
		t.Fatalf("probe after flap: %v", err)
	}
	if !c.Healthy("p") {
		t.Fatal("peer not healed after flap ended")
	}
}

func TestPooledConnectionReuseSurvivesServerRestart(t *testing.T) {
	backend := newMemBackend()
	addr, stop := startPeer(t, backend)
	c := NewClient([]Member{{ID: "p", Addr: addr}}, ClientOptions{
		PingInterval: -1,
		DialTimeout:  200 * time.Millisecond,
		CallTimeout:  200 * time.Millisecond,
	})
	defer c.Close()
	if err := c.Ping(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	// Restart the server: the pooled connection is now dead, and the call
	// path must retry on a fresh dial rather than fail.
	stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := NewPeerServer(backend)
	go srv.Serve(ln)
	defer srv.Close()
	if err := c.Ping(context.Background(), "p"); err != nil {
		t.Fatalf("ping over stale pooled conn did not retry: %v", err)
	}
}
