// Package cluster is the distribution layer of the plan tier: a
// consistent-hash ring with virtual nodes over the canonical plan-cache
// key (the stable byte serialization the cache layer produces — two
// replicas probing isomorphic queries over equal statistics compute equal
// keys, so the ring agrees on ownership without coordination), plus a
// compact persistent-connection RPC the replicas use to exchange plan
// records, and a health-checked peer client that routes around partitions.
//
// Membership is static: the member set comes from flags/config at boot and
// every replica is configured with the same set, so all rings agree. The
// wire format for plan values is the cache layer's PlanRecord JSON — the
// same representation the HTTP edge serves — framed in a minimal binary
// envelope (one op byte, uvarint-length key and value) over raw TCP.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Member is one replica of the plan tier: a stable identifier and the
// address its peer RPC listener is reachable at.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring: each member is hashed onto
// the circle at vnodes points, and a key belongs to the member owning the
// first point at or clockwise after the key's hash. Immutability is the
// concurrency story — replicas build the ring once at boot and only read.
type Ring struct {
	members []Member
	points  []ringPoint
}

// DefaultVnodes is the virtual-node count used when a configuration does
// not specify one. 64 points per member keeps the ownership imbalance of
// small static clusters within a few percent.
const DefaultVnodes = 64

// NewRing builds a ring over the given members. The member list is
// defensively copied and sorted by ID, so rings built from differently
// ordered configurations are identical. Duplicate IDs, empty IDs, and an
// empty member set are configuration errors.
func NewRing(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, errors.New("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for i, m := range ms {
		if m.ID == "" {
			return nil, errors.New("cluster: member with empty id")
		}
		if i > 0 && ms[i-1].ID == m.ID {
			return nil, fmt.Errorf("cluster: duplicate member id %q", m.ID)
		}
	}
	r := &Ring{members: ms, points: make([]ringPoint, 0, len(ms)*vnodes)}
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			h := hash64(fmt.Sprintf("%s#%d", m.ID, v))
			r.points = append(r.points, ringPoint{hash: h, member: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties broken by member index (itself ID-sorted) so the ring is a
		// pure function of the configuration.
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Owner returns the member owning key: the one whose virtual node is first
// at or clockwise after hash(key).
func (r *Ring) Owner(key string) Member {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point the circle restarts
	}
	return r.members[r.points[i].member]
}

// Owners returns the n distinct members forming key's replica set: the
// owner plus the next distinct members walking clockwise from the key's
// point. The list is in preference order — Owners(key, n)[0] == Owner(key)
// — and every member agrees on it, so readers try replicas in the same
// order writers populated them. n is clamped to the member count; n <= 0
// yields the primary owner alone.
func (r *Ring) Owners(key string, n int) []Member {
	if n <= 0 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]Member, 0, n)
	seen := make(map[int]bool, n)
	for scanned := 0; scanned < len(r.points) && len(owners) < n; scanned++ {
		pt := r.points[(i+scanned)%len(r.points)]
		if seen[pt.member] {
			continue
		}
		seen[pt.member] = true
		owners = append(owners, r.members[pt.member])
	}
	return owners
}

// Members returns the ID-sorted member set (a copy).
func (r *Ring) Members() []Member {
	ms := make([]Member, len(r.members))
	copy(ms, r.members)
	return ms
}

// Share returns the fraction of the hash circle owned by the member with
// the given ID — the expected share of uniformly hashed keys it serves.
// Unknown IDs own nothing.
func (r *Ring) Share(id string) float64 {
	if len(r.points) == 0 {
		return 0
	}
	if len(r.points) == 1 {
		if r.members[r.points[0].member].ID == id {
			return 1
		}
		return 0
	}
	// Each point owns the arc back to its predecessor; the first point's
	// arc wraps around zero. Arcs are accumulated in float64 — the full
	// circle is 2^64, which a uint64 accumulator cannot hold.
	var owned float64
	prev := r.points[len(r.points)-1].hash
	for _, pt := range r.points {
		arc := pt.hash - prev // uint64 wraparound handles the zero crossing
		if r.members[pt.member].ID == id {
			owned += float64(arc)
		}
		prev = pt.hash
	}
	return owned / (1 << 63) / 2
}

// hash64 is FNV-1a run through a splitmix64-style finalizer. Raw FNV on
// short, similar strings (vnode labels like "a#0".."a#63") lands points
// unevenly on the circle; the finalizer's avalanche restores balance. The
// ring needs a stable, well-mixed 64-bit hash, not a cryptographic one —
// ownership is an optimization, never a trust boundary.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ParseMembers parses a static membership string of the form
// "id=host:port,id=host:port". Whitespace around entries is ignored;
// empty entries are rejected so typos fail loudly at boot.
func ParseMembers(s string) ([]Member, error) {
	var ms []Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("cluster: empty member entry in %q", s)
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: malformed member entry %q (want id=addr)", part)
		}
		ms = append(ms, Member{ID: id, Addr: addr})
	}
	return ms, nil
}
