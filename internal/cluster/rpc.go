package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The peer RPC is a minimal length-prefixed binary protocol over
// persistent TCP connections. A request is one op byte followed by a
// uvarint-length key and a uvarint-length value; a response is one status
// byte followed by a uvarint-length payload. There is no pipelining —
// each connection carries one request/response exchange at a time, and
// the client pools connections for concurrency instead.

// Request ops.
const (
	opPing   byte = 1 // liveness probe; empty key and value
	opGet    byte = 2 // fetch the plan record for a full plan key
	opPut    byte = 3 // install a plan record under a full plan key
	opPutNeg byte = 4 // install an infeasibility verdict for a negative key
	maxOp         = opPutNeg
)

// Response statuses.
const (
	statusOK       byte = 0 // ack (ping, put, putneg); empty payload
	statusPlan     byte = 1 // get hit; payload is the PlanRecord JSON
	statusNegative byte = 2 // get hit on the negative cache; empty payload
	statusMiss     byte = 3 // get miss; empty payload
	statusErr      byte = 4 // server-side failure; payload is the message
)

// Wire limits. Keys are canonical plan keys (well under a kilobyte for
// realistic queries); values are PlanRecord JSON. Frames beyond these
// bounds indicate a corrupt or hostile peer and poison the connection.
const (
	maxKeyLen = 1 << 16
	maxValLen = 16 << 20
)

var errFrame = errors.New("cluster: malformed rpc frame")

// appendString appends a uvarint-length-prefixed byte string.
func appendString(buf []byte, s []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readString reads a uvarint-length-prefixed byte string bounded by max.
func readString(r *bufio.Reader, max int) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(max) {
		return nil, fmt.Errorf("%w: length %d exceeds %d", errFrame, n, max)
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// writeRequest frames one request onto w.
func writeRequest(w io.Writer, op byte, key string, val []byte) error {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64*2+len(key)+len(val))
	buf = append(buf, op)
	buf = appendString(buf, []byte(key))
	buf = appendString(buf, val)
	_, err := w.Write(buf)
	return err
}

// readRequest parses one request off r. io.EOF before the op byte is a
// clean connection close.
func readRequest(r *bufio.Reader) (op byte, key string, val []byte, err error) {
	op, err = r.ReadByte()
	if err != nil {
		return 0, "", nil, err
	}
	if op == 0 || op > maxOp {
		return 0, "", nil, fmt.Errorf("%w: unknown op %d", errFrame, op)
	}
	k, err := readString(r, maxKeyLen)
	if err != nil {
		return 0, "", nil, err
	}
	val, err = readString(r, maxValLen)
	if err != nil {
		return 0, "", nil, err
	}
	return op, string(k), val, nil
}

// writeResponse frames one response onto w.
func writeResponse(w io.Writer, status byte, payload []byte) error {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(payload))
	buf = append(buf, status)
	buf = appendString(buf, payload)
	_, err := w.Write(buf)
	return err
}

// readResponse parses one response off r.
func readResponse(r *bufio.Reader) (status byte, payload []byte, err error) {
	status, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	if status > statusErr {
		return 0, nil, fmt.Errorf("%w: unknown status %d", errFrame, status)
	}
	payload, err = readString(r, maxValLen)
	if err != nil {
		return 0, nil, err
	}
	return status, payload, nil
}

// Backend is what a replica exposes to its peers: the byte-level view of
// its warm tier. Implementations must be safe for concurrent use; values
// are PlanRecord JSON, opaque at this layer.
type Backend interface {
	// GetRecord fetches the resident answer for a full plan key:
	// (record, false, true) for a cached plan, (nil, true, true) for a
	// recorded infeasibility verdict, ok=false for a miss. negKey is the
	// plan key's negative-cache key (infeasibility is keyed by structure
	// and width, not statistics); it rides the request's value slot.
	GetRecord(key, negKey string) (rec []byte, negative bool, ok bool)
	// PutRecord installs a plan record computed by a peer.
	PutRecord(key string, rec []byte) error
	// PutNegative installs an infeasibility verdict learned by a peer.
	PutNegative(key string) error
}

// PeerServer serves the peer RPC protocol over a listener, dispatching to
// a Backend. One goroutine per connection; connections are persistent and
// processed one request at a time.
type PeerServer struct {
	backend Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewPeerServer returns a server dispatching to b.
func NewPeerServer(b Backend) *PeerServer {
	return &PeerServer{backend: b, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on ln until Close. It blocks; run it in a
// goroutine. After Close it returns nil.
func (s *PeerServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("cluster: peer server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *PeerServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	r := bufio.NewReader(conn)
	for {
		op, key, val, err := readRequest(r)
		if err != nil {
			return // EOF, poisoned frame, or closed conn — drop it either way
		}
		status, payload := s.dispatch(op, key, val)
		if err := writeResponse(conn, status, payload); err != nil {
			return
		}
	}
}

func (s *PeerServer) dispatch(op byte, key string, val []byte) (byte, []byte) {
	switch op {
	case opPing:
		return statusOK, nil
	case opGet:
		rec, negative, ok := s.backend.GetRecord(key, string(val))
		switch {
		case !ok:
			return statusMiss, nil
		case negative:
			return statusNegative, nil
		default:
			return statusPlan, rec
		}
	case opPut:
		if err := s.backend.PutRecord(key, val); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	case opPutNeg:
		if err := s.backend.PutNegative(key); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	}
	return statusErr, []byte("unknown op")
}

// Close stops accepting, closes every live connection, and waits for the
// per-connection goroutines to exit. Idempotent.
func (s *PeerServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}
