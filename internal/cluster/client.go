package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/chaos"
)

// ClientOptions tunes the peer client. Zero values select the defaults.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds one request/response exchange (default 5s).
	CallTimeout time.Duration
	// PingInterval is the health-probe period (default 1s). Negative
	// disables the background prober entirely — health then tracks only
	// the outcomes of real calls, which some tests rely on for
	// determinism.
	PingInterval time.Duration
	// FailThreshold is the number of consecutive failures after which a
	// peer is considered unhealthy (default 3). Any success resets it.
	FailThreshold int
	// MaxIdleConns bounds the pooled persistent connections per peer
	// (default 4); excess connections close after their exchange.
	MaxIdleConns int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.PingInterval == 0 {
		o.PingInterval = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.MaxIdleConns <= 0 {
		o.MaxIdleConns = 4
	}
	return o
}

// ErrUnknownPeer is returned for calls addressed to an ID outside the
// configured membership.
var ErrUnknownPeer = errors.New("cluster: unknown peer")

// peer is the client-side state for one remote replica: a free list of
// persistent connections and a health counter.
type peer struct {
	member Member

	mu      sync.Mutex
	idle    []net.Conn
	fails   int  // consecutive failures
	healthy bool // hysteresis state reported by Healthy
}

// Client maintains pooled persistent connections and health state for
// every peer of one replica. It is safe for concurrent use.
type Client struct {
	opts  ClientOptions
	peers map[string]*peer

	stop chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
}

// NewClient builds a client for the given peers (the local member, if
// present in the list, must be excluded by the caller). Peers start
// healthy — optimism costs one failed call at worst, pessimism costs a
// cold boot where every replica ignores every other.
func NewClient(peers []Member, opts ClientOptions) *Client {
	c := &Client{
		opts:  opts.withDefaults(),
		peers: make(map[string]*peer, len(peers)),
		stop:  make(chan struct{}),
	}
	for _, m := range peers {
		c.peers[m.ID] = &peer{member: m, healthy: true}
	}
	if c.opts.PingInterval > 0 {
		c.wg.Add(1)
		go c.pingLoop()
	}
	return c
}

// pingLoop probes every peer each interval so partitions are noticed (and
// healed peers re-admitted) even when no plan traffic flows toward them.
func (c *Client) pingLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, p := range c.peers {
				_, _, err := c.call(p, opPing, "", nil)
				_ = err // call already updated the health counter
			}
		}
	}
}

// Healthy reports whether the peer is currently considered reachable.
// Unknown IDs are unhealthy.
func (c *Client) Healthy(id string) bool {
	p, ok := c.peers[id]
	if !ok {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy
}

// Get fetches the answer for a full plan key from the peer's warm tier:
// (record, false, true, nil) for a plan, (nil, true, true, nil) for an
// infeasibility verdict, ok=false for a miss. negKey rides along so the
// peer can also answer from its negative cache.
func (c *Client) Get(id, key, negKey string) (rec []byte, negative bool, ok bool, err error) {
	p, perr := c.peer(id)
	if perr != nil {
		return nil, false, false, perr
	}
	status, payload, err := c.call(p, opGet, key, []byte(negKey))
	if err != nil {
		return nil, false, false, err
	}
	switch status {
	case statusPlan:
		return payload, false, true, nil
	case statusNegative:
		return nil, true, true, nil
	case statusMiss:
		return nil, false, false, nil
	case statusErr:
		return nil, false, false, fmt.Errorf("cluster: peer %s: %s", id, payload)
	}
	return nil, false, false, fmt.Errorf("%w: status %d for get", errFrame, status)
}

// Put installs a plan record on the peer (the write-through push a
// non-owner sends the owner after a cold computation).
func (c *Client) Put(id, key string, rec []byte) error {
	return c.ack(id, opPut, key, rec)
}

// PutNegative installs an infeasibility verdict on the peer.
func (c *Client) PutNegative(id, key string) error {
	return c.ack(id, opPutNeg, key, nil)
}

// Ping performs one explicit liveness probe.
func (c *Client) Ping(id string) error {
	return c.ack(id, opPing, "", nil)
}

func (c *Client) ack(id string, op byte, key string, val []byte) error {
	p, err := c.peer(id)
	if err != nil {
		return err
	}
	status, payload, err := c.call(p, op, key, val)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("cluster: peer %s: %s", id, payload)
	}
	return nil
}

func (c *Client) peer(id string) (*peer, error) {
	p, ok := c.peers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, id)
	}
	return p, nil
}

// call performs one request/response exchange with the peer, reusing a
// pooled connection when one is idle. A pooled connection that fails is
// retried once on a fresh dial — the common benign failure is the peer
// having closed an idle connection. Every outcome feeds the health
// counter. The chaos site fires before the wire is touched: Fail models a
// partition (the peer never sees the request), Delay models inter-node
// latency.
func (c *Client) call(p *peer, op byte, key string, val []byte) (status byte, payload []byte, err error) {
	if chaos.Hit(chaos.ClusterPeerRPC, chaos.Delay|chaos.Fail)&chaos.Fail != 0 {
		p.noteFailure(c.opts.FailThreshold)
		return 0, nil, chaos.ErrInjected
	}
	for attempt := 0; attempt < 2; attempt++ {
		var conn net.Conn
		pooled := false
		if attempt == 0 {
			conn, pooled = p.takeIdle()
		}
		if conn == nil {
			conn, err = net.DialTimeout("tcp", p.member.Addr, c.opts.DialTimeout)
			if err != nil {
				p.noteFailure(c.opts.FailThreshold)
				return 0, nil, err
			}
		}
		status, payload, err = c.exchange(conn, op, key, val)
		if err == nil {
			p.putIdle(conn, c.opts.MaxIdleConns)
			p.noteSuccess()
			return status, payload, nil
		}
		conn.Close()
		if !pooled {
			break // fresh connection failed: the peer is genuinely unwell
		}
	}
	p.noteFailure(c.opts.FailThreshold)
	return 0, nil, err
}

func (c *Client) exchange(conn net.Conn, op byte, key string, val []byte) (byte, []byte, error) {
	if err := conn.SetDeadline(time.Now().Add(c.opts.CallTimeout)); err != nil {
		return 0, nil, err
	}
	if err := writeRequest(conn, op, key, val); err != nil {
		return 0, nil, err
	}
	return readResponse(bufio.NewReader(conn))
}

func (p *peer) takeIdle() (net.Conn, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.idle); n > 0 {
		conn := p.idle[n-1]
		p.idle = p.idle[:n-1]
		return conn, true
	}
	return nil, false
}

func (p *peer) putIdle(conn net.Conn, max int) {
	p.mu.Lock()
	if len(p.idle) < max {
		p.idle = append(p.idle, conn)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	conn.Close()
}

func (p *peer) noteFailure(threshold int) {
	p.mu.Lock()
	p.fails++
	if p.fails >= threshold {
		p.healthy = false
	}
	p.mu.Unlock()
}

func (p *peer) noteSuccess() {
	p.mu.Lock()
	p.fails = 0
	p.healthy = true
	p.mu.Unlock()
}

// Close stops the health prober and closes every pooled connection.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
	})
	c.wg.Wait()
	for _, p := range c.peers {
		p.mu.Lock()
		for _, conn := range p.idle {
			conn.Close()
		}
		p.idle = nil
		p.mu.Unlock()
	}
}
