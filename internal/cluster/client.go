package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"repro/internal/chaos"
)

// ClientOptions tunes the peer client. Zero values select the defaults.
type ClientOptions struct {
	// DialTimeout bounds connection establishment (default 2s). The
	// effective dial timeout is further capped by the caller's remaining
	// context budget.
	DialTimeout time.Duration
	// CallTimeout bounds one request/response attempt (default 5s). The
	// effective attempt deadline is min(now+CallTimeout, ctx deadline) —
	// a peer call never outlives the request it serves.
	CallTimeout time.Duration
	// PingInterval is the health-probe period (default 1s). Negative
	// disables the background prober entirely — breaker state then tracks
	// only the outcomes of real calls, which some tests rely on for
	// determinism.
	PingInterval time.Duration
	// Retries is the retry budget per call beyond the first attempt
	// (default 2; negative disables retries). Retries never extend past
	// the context deadline and are skipped entirely when the breaker
	// denied the call.
	Retries int
	// RetryBackoff is the base of the decorrelated-jitter backoff between
	// attempts (default 25ms). Successive sleeps are drawn uniformly from
	// [base, 3·prev], capped at 20× base, so concurrent retriers against
	// one struggling peer spread out instead of stampeding in lockstep.
	RetryBackoff time.Duration
	// Breaker tunes the per-peer circuit breaker.
	Breaker BreakerOptions
	// MaxIdleConns bounds the pooled persistent connections per peer
	// (default 4); excess connections close after their exchange.
	MaxIdleConns int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 5 * time.Second
	}
	if o.PingInterval == 0 {
		o.PingInterval = time.Second
	}
	switch {
	case o.Retries == 0:
		o.Retries = 2
	case o.Retries < 0:
		o.Retries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.MaxIdleConns <= 0 {
		o.MaxIdleConns = 4
	}
	return o
}

// ErrUnknownPeer is returned for calls addressed to an ID outside the
// configured membership.
var ErrUnknownPeer = errors.New("cluster: unknown peer")

// ErrBreakerOpen is returned when a call is denied locally because the
// peer's circuit breaker is open: the wire is never touched and the error
// returns in microseconds, so callers can move on to the next replica
// without burning their deadline budget on a peer known to be dark.
var ErrBreakerOpen = errors.New("cluster: peer breaker open")

// peer is the client-side state for one remote replica: a free list of
// persistent connections and a circuit breaker.
type peer struct {
	member Member
	brk    *breaker

	mu   sync.Mutex
	idle []net.Conn
}

// Client maintains pooled persistent connections and breaker state for
// every peer of one replica. It is safe for concurrent use.
type Client struct {
	opts  ClientOptions
	peers map[string]*peer

	stop chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
}

// NewClient builds a client for the given peers (the local member, if
// present in the list, must be excluded by the caller). Breakers start
// closed — optimism costs one failed call at worst, pessimism costs a
// cold boot where every replica ignores every other.
func NewClient(peers []Member, opts ClientOptions) *Client {
	c := &Client{
		opts:  opts.withDefaults(),
		peers: make(map[string]*peer, len(peers)),
		stop:  make(chan struct{}),
	}
	for _, m := range peers {
		c.peers[m.ID] = &peer{member: m, brk: newBreaker(c.opts.Breaker)}
	}
	if c.opts.PingInterval > 0 {
		c.wg.Add(1)
		go c.pingLoop()
	}
	return c
}

// pingLoop probes every peer each interval so partitions are noticed (and
// healed peers re-admitted via half-open probes) even when no plan traffic
// flows toward them.
func (c *Client) pingLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for _, p := range c.peers {
				ctx, cancel := context.WithTimeout(context.Background(), c.opts.CallTimeout)
				_, _, _ = c.call(ctx, p, opPing, "", nil)
				cancel()
			}
		}
	}
}

// Healthy reports whether the peer's breaker currently admits calls (it is
// not open). Unknown IDs are unhealthy.
func (c *Client) Healthy(id string) bool {
	p, ok := c.peers[id]
	if !ok {
		return false
	}
	return p.brk.currentState() != BreakerOpen
}

// BreakerStates snapshots every peer's breaker state, keyed by member ID —
// the stats/metrics view of the client's routing decisions.
func (c *Client) BreakerStates() map[string]BreakerState {
	states := make(map[string]BreakerState, len(c.peers))
	for id, p := range c.peers {
		states[id] = p.brk.currentState()
	}
	return states
}

// Get fetches the answer for a full plan key from the peer's warm tier:
// (record, false, true, nil) for a plan, (nil, true, true, nil) for an
// infeasibility verdict, ok=false for a miss. negKey rides along so the
// peer can also answer from its negative cache.
func (c *Client) Get(ctx context.Context, id, key, negKey string) (rec []byte, negative bool, ok bool, err error) {
	p, perr := c.peer(id)
	if perr != nil {
		return nil, false, false, perr
	}
	status, payload, err := c.call(ctx, p, opGet, key, []byte(negKey))
	if err != nil {
		return nil, false, false, err
	}
	switch status {
	case statusPlan:
		return payload, false, true, nil
	case statusNegative:
		return nil, true, true, nil
	case statusMiss:
		return nil, false, false, nil
	case statusErr:
		return nil, false, false, fmt.Errorf("cluster: peer %s: %s", id, payload)
	}
	return nil, false, false, fmt.Errorf("%w: status %d for get", errFrame, status)
}

// Put installs a plan record on the peer (the write-through push a
// non-owner sends the owner after a cold computation).
func (c *Client) Put(ctx context.Context, id, key string, rec []byte) error {
	return c.ack(ctx, id, opPut, key, rec)
}

// PutNegative installs an infeasibility verdict on the peer.
func (c *Client) PutNegative(ctx context.Context, id, key string) error {
	return c.ack(ctx, id, opPutNeg, key, nil)
}

// Ping performs one explicit liveness probe.
func (c *Client) Ping(ctx context.Context, id string) error {
	return c.ack(ctx, id, opPing, "", nil)
}

func (c *Client) ack(ctx context.Context, id string, op byte, key string, val []byte) error {
	p, err := c.peer(id)
	if err != nil {
		return err
	}
	status, payload, err := c.call(ctx, p, op, key, val)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("cluster: peer %s: %s", id, payload)
	}
	return nil
}

func (c *Client) peer(id string) (*peer, error) {
	p, ok := c.peers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, id)
	}
	return p, nil
}

// call performs one logical exchange with the peer: breaker admission,
// then up to 1+Retries attempts under the context's deadline budget with
// decorrelated-jitter backoff between them. One logical call feeds the
// breaker one outcome, however many attempts it took — retries are an
// implementation detail of the call, not independent evidence against the
// peer. A call denied budget before its first attempt records nothing:
// that is evidence about the caller's deadline, not the peer.
func (c *Client) call(ctx context.Context, p *peer, op byte, key string, val []byte) (status byte, payload []byte, err error) {
	allowed, probe := p.brk.allow()
	if !allowed {
		return 0, nil, fmt.Errorf("%w: %s", ErrBreakerOpen, p.member.ID)
	}
	backoff := c.opts.RetryBackoff
	attempts := 1 + c.opts.Retries
	if probe {
		// A half-open probe is a question, not a workload: one attempt,
		// and its outcome decides the breaker.
		attempts = 1
	}
	attempted := false
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			var ok bool
			if backoff, ok = c.sleepBackoff(ctx, backoff); !ok {
				break
			}
		}
		if ctx.Err() != nil {
			break
		}
		attempted = true
		status, payload, err = c.attempt(ctx, p, op, key, val)
		if err == nil {
			p.brk.record(false, probe)
			return status, payload, nil
		}
	}
	if !attempted {
		p.brk.release(probe)
		return 0, nil, context.Cause(ctx)
	}
	p.brk.record(true, probe)
	return 0, nil, err
}

// sleepBackoff sleeps for the current decorrelated-jitter interval and
// returns the next one; ok is false if the context expired first. The
// sleep never extends past the context deadline: a retry that cannot
// finish is not worth starting, but the final slice of budget still gets
// its attempt.
func (c *Client) sleepBackoff(ctx context.Context, prev time.Duration) (next time.Duration, ok bool) {
	base := c.opts.RetryBackoff
	next = base + time.Duration(rand.Int64N(int64(3*prev)))
	if maxSleep := 20 * base; next > maxSleep {
		next = maxSleep
	}
	sleep := next
	if dl, dok := ctx.Deadline(); dok {
		if remaining := time.Until(dl); remaining < sleep {
			sleep = remaining
		}
	}
	if sleep > 0 {
		t := time.NewTimer(sleep)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return next, false
		case <-t.C:
		}
	}
	return next, ctx.Err() == nil
}

// attempt performs one wire attempt, reusing a pooled connection when one
// is idle. A pooled connection that fails is retried once on a fresh dial
// within the same attempt — the common benign failure is the peer having
// closed an idle connection, which says nothing about its health. The
// chaos site fires before the wire is touched: Fail models a partition
// (the peer never sees the request), Delay models inter-node latency.
func (c *Client) attempt(ctx context.Context, p *peer, op byte, key string, val []byte) (status byte, payload []byte, err error) {
	if chaos.Hit(chaos.ClusterPeerRPC, chaos.Delay|chaos.Fail)&chaos.Fail != 0 {
		return 0, nil, chaos.ErrInjected
	}
	deadline := time.Now().Add(c.opts.CallTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	for reuse := 0; reuse < 2; reuse++ {
		var conn net.Conn
		pooled := false
		if reuse == 0 {
			conn, pooled = p.takeIdle()
		}
		if conn == nil {
			d := net.Dialer{Timeout: c.opts.DialTimeout, Deadline: deadline}
			conn, err = d.DialContext(ctx, "tcp", p.member.Addr)
			if err != nil {
				return 0, nil, err
			}
		}
		status, payload, err = c.exchange(conn, deadline, op, key, val)
		if err == nil {
			p.putIdle(conn, c.opts.MaxIdleConns)
			return status, payload, nil
		}
		conn.Close()
		if !pooled {
			break // fresh connection failed: the peer is genuinely unwell
		}
	}
	return 0, nil, err
}

func (c *Client) exchange(conn net.Conn, deadline time.Time, op byte, key string, val []byte) (byte, []byte, error) {
	if err := conn.SetDeadline(deadline); err != nil {
		return 0, nil, err
	}
	if err := writeRequest(conn, op, key, val); err != nil {
		return 0, nil, err
	}
	return readResponse(bufio.NewReader(conn))
}

func (p *peer) takeIdle() (net.Conn, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.idle); n > 0 {
		conn := p.idle[n-1]
		p.idle = p.idle[:n-1]
		return conn, true
	}
	return nil, false
}

func (p *peer) putIdle(conn net.Conn, max int) {
	p.mu.Lock()
	if len(p.idle) < max {
		p.idle = append(p.idle, conn)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	conn.Close()
}

// Close stops the health prober and closes every pooled connection.
func (c *Client) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
	})
	c.wg.Wait()
	for _, p := range c.peers {
		p.mu.Lock()
		for _, conn := range p.idle {
			conn.Close()
		}
		p.idle = nil
		p.mu.Unlock()
	}
}
