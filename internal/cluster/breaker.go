package cluster

import (
	"sync"
	"time"

	"repro/internal/chaos"
)

// The per-peer circuit breaker replaces the old consecutive-failure health
// bit. The old bit had two failure modes this design removes: a single
// slow success amid a storm of failures reset the counter (so a flapping
// peer was never quarantined), and once unhealthy a peer was only
// re-admitted by the background prober (so with probing disabled a healed
// peer stayed dark forever). The breaker instead trips on the error *rate*
// over a sliding window of recent call outcomes, and re-admits itself:
// after a cooldown it lets a bounded number of half-open probes through,
// and one probe outcome decides — success closes the breaker, failure
// reopens it for another cooldown.

// BreakerState is a peer breaker's position.
type BreakerState int32

const (
	// BreakerClosed: calls flow normally; outcomes feed the error window.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; a bounded number of probe
	// calls are admitted to test the peer.
	BreakerHalfOpen
	// BreakerOpen: the error rate tripped the breaker; calls fast-fail
	// without touching the wire until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerOptions tunes a peer circuit breaker. Zero values select the
// defaults.
type BreakerOptions struct {
	// Window is the number of most recent call outcomes the error rate is
	// computed over (count-based, so tests are time-independent; default 16).
	Window int
	// MinSamples is the minimum outcomes in the window before the breaker
	// may trip (default 4) — a cold window never trips on its first error.
	MinSamples int
	// ErrorRate is the failure fraction at or above which the breaker
	// opens (default 0.5).
	ErrorRate float64
	// Cooldown is how long an open breaker waits before admitting
	// half-open probes (default 1s).
	Cooldown time.Duration
	// HalfOpenProbes bounds the probe calls admitted concurrently while
	// half-open (default 1).
	HalfOpenProbes int
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 16
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 4
	}
	if o.MinSamples > o.Window {
		o.MinSamples = o.Window
	}
	if o.ErrorRate <= 0 {
		o.ErrorRate = 0.5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	return o
}

// breaker is one peer's circuit breaker. Safe for concurrent use.
type breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	outcomes []bool // ring buffer of recent call outcomes (true = failure)
	next     int    // ring write cursor
	filled   int    // outcomes recorded, capped at len(outcomes)
	failures int    // failures currently in the window
	openedAt time.Time
	probes   int // half-open probes currently in flight
}

func newBreaker(opts BreakerOptions) *breaker {
	opts = opts.withDefaults()
	return &breaker{opts: opts, outcomes: make([]bool, opts.Window)}
}

// allow reports whether a call may proceed, and whether it counts as a
// half-open probe (the caller must report the outcome either way; probe
// outcomes drive the half-open → closed/open transition). An open breaker
// whose cooldown has elapsed transitions to half-open here — allow is the
// transition driver, so breakers re-admit healed peers even with the
// background prober disabled. The chaos site fires on the half-open
// admission: Fail denies the probe, modelling a flapping link.
func (b *breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true, false
	case BreakerOpen:
		if time.Since(b.openedAt) < b.opts.Cooldown {
			b.mu.Unlock()
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probes = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probes >= b.opts.HalfOpenProbes {
			b.mu.Unlock()
			return false, false
		}
		b.probes++
		b.mu.Unlock()
		// The chaos decision happens outside the lock: an injected Delay
		// must not serialize every other call against this peer.
		if chaos.Hit(chaos.ClusterPeerBreaker, chaos.Delay|chaos.Fail)&chaos.Fail != 0 {
			b.mu.Lock()
			b.probes--
			b.mu.Unlock()
			return false, false
		}
		return true, true
	}
}

// record feeds one call outcome. Half-open probes resolve the probe state:
// success closes the breaker (window reset — history from before the
// outage is meaningless), failure reopens it for a fresh cooldown. Closed
// outcomes maintain the sliding window and trip on the error rate.
func (b *breaker) record(failed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		if b.probes > 0 {
			b.probes--
		}
		if !probe {
			// A non-probe call that straddled the transition; its outcome
			// is stale by construction. Ignore it.
			return
		}
		if failed {
			b.state = BreakerOpen
			b.openedAt = time.Now()
		} else {
			b.state = BreakerClosed
			b.reset()
		}
		return
	}
	if b.state == BreakerOpen {
		// Outcomes of calls admitted before the trip; the breaker already
		// decided.
		return
	}
	if b.outcomes[b.next] && b.filled == len(b.outcomes) {
		b.failures--
	}
	b.outcomes[b.next] = failed
	b.next = (b.next + 1) % len(b.outcomes)
	if b.filled < len(b.outcomes) {
		b.filled++
	}
	if failed {
		b.failures++
	}
	if b.filled >= b.opts.MinSamples &&
		float64(b.failures)/float64(b.filled) >= b.opts.ErrorRate {
		b.state = BreakerOpen
		b.openedAt = time.Now()
	}
}

// release returns an admitted slot without deciding an outcome — used when
// an admitted call never reached the wire (the caller's budget expired
// first), which is evidence about the caller, not the peer.
func (b *breaker) release(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
	b.mu.Unlock()
}

// reset clears the outcome window. Caller holds b.mu.
func (b *breaker) reset() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.next, b.filled, b.failures = 0, 0, 0
}

// currentState snapshots the state, performing the open → half-open
// transition if the cooldown has elapsed (so stats surfaces report
// "half-open" as soon as probes would be admitted).
func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.opts.Cooldown {
		b.state = BreakerHalfOpen
		b.probes = 0
	}
	return b.state
}
