package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a conjunctive query in datalog rule syntax:
//
//	ans(X,Y) :- r(X,Z), s(Z,Y).
//
// Accepted variations: "<-" for ":-", "∧" or "," between atoms, an optional
// trailing period, and a variable-free head "ans" or "ans()" for Boolean
// queries. Identifiers are letters, digits, underscores, and apostrophes;
// variables and predicates are distinguished by position, not case.
//
// Self-joins are written with relation aliases ("AS" is case-insensitive):
//
//	ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z).
//
// Bare duplicate predicates are auto-aliased (Query.AutoAlias), so
// "ans :- e(X,Y), e(Y,Z)" parses to "e AS e_1(X,Y), e AS e_2(Y,Z)".
func Parse(text string) (*Query, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	q.AutoAlias()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; intended for fixtures.
func MustParse(text string) *Query {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokLParen
	tokRParen
	tokComma
	tokArrow // :- or <-
	tokDot
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(text string) ([]token, error) {
	var toks []token
	i := 0
	rs := []rune(text)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case r == ',' || r == '∧':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case r == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case r == ':' || r == '<':
			if i+1 < len(rs) && rs[i+1] == '-' {
				toks = append(toks, token{tokArrow, string(rs[i : i+2]), i})
				i += 2
			} else {
				return nil, fmt.Errorf("cq: position %d: expected '-' after %q", i, r)
			}
		case r == '←':
			toks = append(toks, token{tokArrow, "←", i})
			i++
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_' || rs[j] == '\'') {
				j++
			}
			toks = append(toks, token{tokIdent, string(rs[i:j]), i})
			i = j
		default:
			return nil, fmt.Errorf("cq: position %d: unexpected character %q", i, r)
		}
	}
	toks = append(toks, token{tokEOF, "", len(rs)})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("cq: position %d: expected %s, got %q", t.pos, what, t.text)
	}
	return t, nil
}

// query := ident [ '(' vars ')' ] arrow atom (',' atom)* ['.']
func (p *parser) query() (*Query, error) {
	head, err := p.expect(tokIdent, "head predicate")
	if err != nil {
		return nil, err
	}
	q := &Query{Head: head.text}
	if p.peek().kind == tokLParen {
		p.next()
		vars, err := p.varList()
		if err != nil {
			return nil, err
		}
		q.Out = vars
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokArrow, "':-' or '<-'"); err != nil {
		return nil, err
	}
	for {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, a)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.peek().kind == tokDot {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("cq: position %d: trailing input %q", t.pos, t.text)
	}
	return q, nil
}

// atom := ident [ 'AS' ident ] '(' vars ')'
func (p *parser) atom() (Atom, error) {
	name, err := p.expect(tokIdent, "predicate")
	if err != nil {
		return Atom{}, err
	}
	alias := ""
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "as") {
		p.next()
		at, err := p.expect(tokIdent, "alias")
		if err != nil {
			return Atom{}, err
		}
		alias = at.text
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return Atom{}, err
	}
	vars, err := p.varList()
	if err != nil {
		return Atom{}, err
	}
	if len(vars) == 0 {
		return Atom{}, fmt.Errorf("cq: atom %s has no variables", name.text)
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return Atom{}, err
	}
	return Atom{Predicate: name.text, Alias: alias, Vars: vars}, nil
}

// varList := [ ident (',' ident)* ]
func (p *parser) varList() ([]string, error) {
	var out []string
	if p.peek().kind != tokIdent {
		return out, nil
	}
	for {
		v, err := p.expect(tokIdent, "variable")
		if err != nil {
			return nil, err
		}
		out = append(out, v.text)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		return out, nil
	}
}
