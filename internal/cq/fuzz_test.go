package cq

import (
	"testing"
)

// FuzzParse fuzzes the query parser. Invariants, for every input:
//
//   - Parse never panics (the fuzz engine catches panics itself);
//   - an accepted query validates (Parse guarantees it) and builds a
//     hypergraph — aliasing and auto-aliasing must leave edge names unique;
//   - rendering an accepted query re-parses to the same rendering
//     (String/Parse round trip), so aliased and auto-aliased forms survive
//     serialization.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Fixture corpus (the paper's benchmark queries).
		Q0().String(),
		Q1().String(),
		Q2().String(),
		Q3().String(),
		// Plain forms and accepted syntax variations.
		"ans(X,Y) :- r(X,Z), s(Z,Y).",
		"ans :- r(X,Z), s(Z,Y)",
		"ans() <- r(X,Z), s(Z,Y).",
		"ans ← r(X,Z) ∧ s(Z,Y)",
		"ans :- a(X,X'), b(X',Y)",
		// Aliased self-joins and auto-aliased duplicates.
		"ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z).",
		"ans :- e AS e1(X,Y), e AS e2(Y,Z), e AS e3(Z,X).",
		"ans :- e(X,Y), e(Y,Z).",
		"ans :- e as lower(X,Y), e AS UPPER(Y,X)",
		"ans :- as(X), e AS as2(X)",
		// Near-miss malformed inputs steer mutation to the edges.
		"ans :- e AS (X)",
		"ans :- e AS AS AS(X)",
		"ans :- r(X), r(X)",
		"ans(W) :- r(X)",
		"ans :- r(,)",
		"ans :- ",
		":- r(X)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Parse accepted %q but Validate rejects it: %v", text, err)
		}
		if _, err := q.Hypergraph(); err != nil {
			t.Fatalf("Parse accepted %q but Hypergraph fails: %v", text, err)
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round trip of %q: rendering %q does not re-parse: %v", text, rendered, err)
		}
		if got := q2.String(); got != rendered {
			t.Fatalf("round trip of %q changed rendering: %q vs %q", text, got, rendered)
		}
		// The fresh-variable augmentation must stay well-formed too: it is
		// what every plan search actually runs on.
		if _, err := q.WithFreshVariables().Hypergraph(); err != nil {
			t.Fatalf("augmented hypergraph of %q fails: %v", text, err)
		}
	})
}
