// Package cqgen generates seeded random conjunctive queries together with
// matching synthetic catalogs — the fuel of the property-based differential
// suites that pin self-join planning, parallel-plan determinism, and cache
// canonicalization. Generation is deterministic per (seed, Config): equal
// inputs produce byte-identical instances, so failures reproduce from the
// seed alone.
package cqgen

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/db"
)

// Config controls the shape of generated queries. The zero value is
// normalized by withDefaults to a small, connected, mixed workload.
type Config struct {
	// Atoms is the number of body atoms. Default 4.
	Atoms int
	// MaxArity bounds relation width (arity drawn uniformly from
	// [1, MaxArity]). Default 3.
	MaxArity int
	// VarReuse is the probability that a non-linking position reuses an
	// existing variable (cyclic mode only). Default 0.35.
	VarReuse float64
	// SelfJoin is the probability that an atom reuses an already-referenced
	// relation instead of introducing a new one — the knob that produces
	// self-joins. Default 0.
	SelfJoin float64
	// Cyclic selects the shape: false grows a join tree (each atom shares
	// variables with exactly one earlier atom — α-acyclic by construction);
	// true links each atom into the existing variable pool, which freely
	// creates cycles (triangles, theta-cycles, ...). Default false.
	Cyclic bool
	// MaxCard bounds relation cardinality (drawn from [4, MaxCard]).
	// Default 16 — small enough for naive-evaluation oracles.
	MaxCard int
	// MaxOut bounds the number of output variables (drawn from
	// [0, MaxOut]). Default 2; negative forces Boolean queries.
	MaxOut int
}

func (c Config) withDefaults() Config {
	if c.Atoms <= 0 {
		c.Atoms = 4
	}
	if c.MaxArity <= 0 {
		c.MaxArity = 3
	}
	if c.VarReuse <= 0 {
		c.VarReuse = 0.35
	}
	if c.MaxCard < 4 {
		c.MaxCard = 16
	}
	if c.MaxOut == 0 {
		c.MaxOut = 2
	} else if c.MaxOut < 0 {
		c.MaxOut = 0
	}
	return c
}

// Instance is one generated (query, catalog) pair. The catalog is analyzed
// and holds one base relation per distinct predicate; self-join atoms are
// aliased (cq.AutoAlias naming), so the query always validates.
type Instance struct {
	Query   *cq.Query
	Catalog *db.Catalog
}

// Generate builds a random valid instance. Queries are connected, atoms
// never repeat a variable within themselves (so positional binding is a
// bijection), and every relation of the catalog carries exact ANALYZE
// statistics.
func Generate(rng *rand.Rand, cfg Config) (*Instance, error) {
	cfg = cfg.withDefaults()

	type relInfo struct {
		name  string
		arity int
	}
	var rels []relInfo
	newVar := func(vars *[]string) string {
		v := fmt.Sprintf("V%d", len(*vars))
		*vars = append(*vars, v)
		return v
	}
	var pool []string // every variable in first-use order
	var atoms []cq.Atom

	for i := 0; i < cfg.Atoms; i++ {
		var rel relInfo
		if len(rels) > 0 && rng.Float64() < cfg.SelfJoin {
			rel = rels[rng.Intn(len(rels))]
		} else {
			rel = relInfo{name: fmt.Sprintf("r%d", len(rels)), arity: 1 + rng.Intn(cfg.MaxArity)}
			rels = append(rels, rel)
		}
		used := map[string]bool{}
		vars := make([]string, 0, rel.arity)
		take := func(v string) {
			vars = append(vars, v)
			used[v] = true
		}
		if i == 0 {
			for len(vars) < rel.arity {
				take(newVar(&pool))
			}
		} else if cfg.Cyclic {
			// Link through the pool; every later position may reuse too.
			take(pool[rng.Intn(len(pool))])
			for len(vars) < rel.arity {
				if rng.Float64() < cfg.VarReuse {
					v := pool[rng.Intn(len(pool))]
					if !used[v] {
						take(v)
						continue
					}
				}
				take(newVar(&pool))
			}
		} else {
			// Join-tree growth: share a nonempty subset of one earlier
			// atom's variables, everything else fresh — α-acyclic shape.
			prev := atoms[rng.Intn(len(atoms))]
			shared := 1
			if m := min(rel.arity, len(prev.Vars)); m > 1 {
				shared += rng.Intn(m)
			}
			perm := rng.Perm(len(prev.Vars))
			for _, pi := range perm {
				if len(vars) == shared {
					break
				}
				if v := prev.Vars[pi]; !used[v] {
					take(v)
				}
			}
			for len(vars) < rel.arity {
				take(newVar(&pool))
			}
			rng.Shuffle(len(vars), func(a, b int) { vars[a], vars[b] = vars[b], vars[a] })
		}
		atoms = append(atoms, cq.Atom{Predicate: rel.name, Vars: vars})
	}

	q := &cq.Query{Head: "ans", Atoms: atoms}
	if cfg.MaxOut > 0 {
		nOut := rng.Intn(cfg.MaxOut + 1)
		perm := rng.Perm(len(pool))
		for _, pi := range perm[:min(nOut, len(pool))] {
			q.Out = append(q.Out, pool[pi])
		}
	}
	q.AutoAlias()
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("cqgen: generated invalid query %s: %w", q, err)
	}

	specs := make([]db.Spec, 0, len(rels))
	for _, rel := range rels {
		card := 4 + rng.Intn(cfg.MaxCard-3)
		attrs := make([]string, rel.arity)
		distinct := make(map[string]int, rel.arity)
		for a := 0; a < rel.arity; a++ {
			attrs[a] = fmt.Sprintf("c%d", a)
			distinct[attrs[a]] = 1 + rng.Intn(card)
		}
		specs = append(specs, db.Spec{Name: rel.name, Attrs: attrs, Card: card, Distinct: distinct})
	}
	cat, err := db.GenerateCatalog(rng, specs)
	if err != nil {
		return nil, fmt.Errorf("cqgen: %w", err)
	}
	if err := cat.AnalyzeAll(); err != nil {
		return nil, fmt.Errorf("cqgen: %w", err)
	}
	return &Instance{Query: q, Catalog: cat}, nil
}

// MustGenerate is Generate but panics on error; generation errors are
// always cqgen bugs, so tests use this form.
func MustGenerate(rng *rand.Rand, cfg Config) *Instance {
	inst, err := Generate(rng, cfg)
	if err != nil {
		panic(err)
	}
	return inst
}

// HasSelfJoin reports whether the instance's query uses some base relation
// more than once.
func (inst *Instance) HasSelfJoin() bool {
	seen := map[string]bool{}
	for _, a := range inst.Query.Atoms {
		if seen[a.Predicate] {
			return true
		}
		seen[a.Predicate] = true
	}
	return false
}

// CopyOracle returns the self-join oracle of the instance: a structurally
// identical query in which every atom's predicate is its atom name (aliases
// cleared), over a catalog that physically stores one copy of the base
// relation per alias. Planning and evaluating the oracle must agree
// bit-for-bit with the aliased original — same hypergraph (edge names and
// fresh variables coincide), same statistics (copies ANALYZE identically),
// hence the same search and the same plan.
func (inst *Instance) CopyOracle() (*cq.Query, *db.Catalog, error) {
	oq := &cq.Query{Head: inst.Query.Head, Out: append([]string(nil), inst.Query.Out...)}
	ocat := db.NewCatalog()
	for _, a := range inst.Query.Atoms {
		rel := inst.Catalog.Get(a.Predicate)
		if rel == nil {
			return nil, nil, fmt.Errorf("cqgen: no relation %s in catalog", a.Predicate)
		}
		copyRel := rel.Clone()
		copyRel.Name = a.Name()
		ocat.Put(copyRel)
		oq.Atoms = append(oq.Atoms, cq.Atom{Predicate: a.Name(), Vars: append([]string(nil), a.Vars...)})
	}
	if err := ocat.AnalyzeAll(); err != nil {
		return nil, nil, err
	}
	return oq, ocat, nil
}

// Renamed returns a copy of the query with every variable and every alias
// suffixed by "_"+tag, and the atom order reversed — a structurally
// identical query that shares no variable or alias names with the original
// (the suffixing is injective, so distinct names stay distinct). Cache
// canonicalization must map it onto the same entry. The tag must be chosen
// so no suffixed alias collides with a bare atom name of the query.
func Renamed(q *cq.Query, tag string) *cq.Query {
	out := &cq.Query{Head: q.Head}
	for i := len(q.Atoms) - 1; i >= 0; i-- {
		a := q.Atoms[i]
		vars := make([]string, len(a.Vars))
		for j, v := range a.Vars {
			vars[j] = v + "_" + tag
		}
		alias := ""
		if a.Alias != "" {
			alias = a.Alias + "_" + tag
		}
		out.Atoms = append(out.Atoms, cq.Atom{Predicate: a.Predicate, Alias: alias, Vars: vars})
	}
	for _, v := range q.Out {
		out.Out = append(out.Out, v+"_"+tag)
	}
	return out
}
