package cqgen

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
)

// testConfigs is the mixed workload the property suites draw from: acyclic
// and cyclic shapes, with and without self-joins.
var testConfigs = []Config{
	{Atoms: 3, SelfJoin: 0.0},
	{Atoms: 4, SelfJoin: 0.5},
	{Atoms: 4, SelfJoin: 0.8, Cyclic: true},
	{Atoms: 5, SelfJoin: 0.6, Cyclic: true, VarReuse: 0.5},
	{Atoms: 5, SelfJoin: 0.9, MaxArity: 2, Cyclic: true, VarReuse: 0.6, MaxOut: -1},
}

// instances deterministically generates n instances cycling through
// testConfigs.
func instances(t *testing.T, seed int64, n int) []*Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Instance, 0, n)
	for i := 0; i < n; i++ {
		inst, err := Generate(rng, testConfigs[i%len(testConfigs)])
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		out = append(out, inst)
	}
	return out
}

func TestGeneratorProducesValidConnectedQueries(t *testing.T) {
	selfJoins := 0
	for i, inst := range instances(t, 1, 100) {
		q := inst.Query
		if err := q.Validate(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		h, err := q.Hypergraph()
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		// [∅]-components are plain connected components.
		if got := len(h.Components(h.NewVarset())); got != 1 {
			t.Errorf("instance %d: %d connected components, want 1 (%s)", i, got, q)
		}
		// Every atom binds: positional bijection against its base relation.
		if _, err := engine.BindAtoms(q, inst.Catalog); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
		if inst.HasSelfJoin() {
			selfJoins++
		}
	}
	if selfJoins < 20 {
		t.Errorf("only %d/100 instances contain self-joins; generator knob broken?", selfJoins)
	}
}

// TestSelfJoinCopyOracle is differential property (a): an aliased self-join
// must plan — decomposition, node costs, total cost — and evaluate exactly
// like the oracle that physically copies the base relation under each alias
// name. Infeasibility must agree too.
func TestSelfJoinCopyOracle(t *testing.T) {
	checked := 0
	for i, inst := range instances(t, 2, 120) {
		if !inst.HasSelfJoin() {
			continue
		}
		oq, ocat, err := inst.CopyOracle()
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		for k := 2; k <= 3; k++ {
			plan, err := cost.CostKDecomp(inst.Query, inst.Catalog, k, core.Options{})
			oplan, oerr := cost.CostKDecomp(oq, ocat, k, core.Options{})
			if (err == nil) != (oerr == nil) {
				t.Fatalf("instance %d k=%d: aliased err=%v, oracle err=%v (%s)", i, k, err, oerr, inst.Query)
			}
			if err != nil {
				if !errors.Is(err, core.ErrNoDecomposition) {
					t.Fatalf("instance %d k=%d: %v", i, k, err)
				}
				continue
			}
			if plan.EstimatedCost != oplan.EstimatedCost {
				t.Fatalf("instance %d k=%d: cost %v != oracle %v (%s)",
					i, k, plan.EstimatedCost, oplan.EstimatedCost, inst.Query)
			}
			if got, want := plan.FormatAnnotated(), oplan.FormatAnnotated(); got != want {
				t.Fatalf("instance %d k=%d: decomposition differs from oracle\naliased:\n%s\noracle:\n%s",
					i, k, got, want)
			}
			rows, err := engine.EvalDecomposition(plan.Decomp, plan.Query, inst.Catalog, nil)
			if err != nil {
				t.Fatalf("instance %d k=%d: eval: %v", i, k, err)
			}
			orows, err := engine.EvalDecomposition(oplan.Decomp, oplan.Query, ocat, nil)
			if err != nil {
				t.Fatalf("instance %d k=%d: oracle eval: %v", i, k, err)
			}
			if !rows.Equal(orows) {
				t.Fatalf("instance %d k=%d: rows differ from copy oracle (%s)", i, k, inst.Query)
			}
			naive, err := engine.EvalNaive(inst.Query, inst.Catalog)
			if err != nil {
				t.Fatalf("instance %d k=%d: naive: %v", i, k, err)
			}
			if !rows.Equal(naive) {
				t.Fatalf("instance %d k=%d: self-join plan disagrees with naive evaluation (%s)", i, k, inst.Query)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Errorf("only %d (instance, k) pairs checked; corpus too infeasible?", checked)
	}
}

// TestGeneratedParallelPlanDeterminism is differential property (b): over
// 200 generated queries, the level-parallel solver with Workers ∈ {1, 4}
// returns byte-identical decompositions and bit-identical costs.
func TestGeneratedParallelPlanDeterminism(t *testing.T) {
	const k = 2
	planned := 0
	for i, inst := range instances(t, 3, 200) {
		seq, err := cost.CostKDecomp(inst.Query, inst.Catalog, k, core.Options{})
		if errors.Is(err, core.ErrNoDecomposition) {
			continue
		}
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		for _, workers := range []int{1, 4} {
			par, err := cost.CostKDecompParallel(inst.Query, inst.Catalog, k,
				core.ParallelOptions{Workers: workers})
			if err != nil {
				t.Fatalf("instance %d workers=%d: %v", i, workers, err)
			}
			if par.EstimatedCost != seq.EstimatedCost {
				t.Fatalf("instance %d workers=%d: cost %v != sequential %v (%s)",
					i, workers, par.EstimatedCost, seq.EstimatedCost, inst.Query)
			}
			if got, want := par.FormatAnnotated(), seq.FormatAnnotated(); got != want {
				t.Fatalf("instance %d workers=%d: plan differs from sequential\n%s\nvs\n%s",
					i, workers, got, want)
			}
		}
		planned++
	}
	if planned < 100 {
		t.Errorf("only %d/200 queries planned at k=%d; corpus too infeasible?", planned, k)
	}
}

// TestGeneratedCanonicalizationHit is differential property (c): every
// generated query, re-planned under fresh variable and alias names (and
// reversed atom order), is a plan-cache hit.
func TestGeneratedCanonicalizationHit(t *testing.T) {
	p := cache.NewPlanner(cache.Options{Capacity: 4096})
	const k = 2
	hits := 0
	for i, inst := range instances(t, 4, 200) {
		base, _, err := p.PlanCached(inst.Query, inst.Catalog, k)
		if errors.Is(err, core.ErrNoDecomposition) {
			continue
		}
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		renamed := Renamed(inst.Query, fmt.Sprintf("x%d", i))
		if err := renamed.Validate(); err != nil {
			t.Fatalf("instance %d: renamed query invalid: %v", i, err)
		}
		plan, hit, err := p.PlanCached(renamed, inst.Catalog, k)
		if err != nil {
			t.Fatalf("instance %d: renamed: %v", i, err)
		}
		if !hit {
			t.Fatalf("instance %d: renamed variant missed the cache\nbase:    %s\nrenamed: %s",
				i, inst.Query, renamed)
		}
		if plan.EstimatedCost != base.EstimatedCost {
			t.Fatalf("instance %d: remapped cost %v != base %v", i, plan.EstimatedCost, base.EstimatedCost)
		}
		// The remapped plan must evaluate correctly under the renamed names.
		rows, err := engine.EvalDecomposition(plan.Decomp, plan.Query, inst.Catalog, nil)
		if err != nil {
			t.Fatalf("instance %d: eval remapped: %v", i, err)
		}
		naive, err := engine.EvalNaive(renamed, inst.Catalog)
		if err != nil {
			t.Fatalf("instance %d: naive: %v", i, err)
		}
		if !rows.Equal(naive) {
			t.Fatalf("instance %d: remapped plan wrong answer (%s)", i, renamed)
		}
		hits++
	}
	if hits < 100 {
		t.Errorf("only %d/200 renamed variants verified; corpus too infeasible?", hits)
	}
}
