package cq

// The paper's benchmark queries. Primed variables (X′ etc.) are written
// with a trailing apostrophe, which the lexer accepts in identifiers.

// Q0 is the Introduction's running example (hypertree width 2, 8 atoms).
func Q0() *Query {
	return MustParse(`ans :- s1(A,B,D), s2(B,C,D), s3(B,E), s4(D,G),
		s5(E,F,G), s6(E,H), s7(F,I), s8(G,J).`)
}

// Q1 is the Section 6 query used for Figs 5–8(A) (hypertree width 2,
// 9 atoms, 12 variables, Boolean):
//
//	ans ← a(S,X,X′,C,F) ∧ b(S,Y,Y′,C′,F′) ∧ c(C,C′,Z) ∧ d(X,Z)
//	    ∧ e(Y,Z) ∧ f(F,F′,Z′) ∧ g(X′,Z′) ∧ h(Y′,Z′) ∧ j(J,X,Y,X′,Y′)
func Q1() *Query {
	return MustParse(`ans :- a(S,X,X',C,F), b(S,Y,Y',C',F'), c(C,C',Z), d(X,Z),
		e(Y,Z), f(F,F',Z'), g(X',Z'), h(Y',Z'), j(J,X,Y,X',Y')`)
}

// Q2 matches the paper's description for Fig 8(B): 8 atoms, 9 distinct
// variables, Boolean, hypertree width 2. The paper does not print its text;
// this instance is a width-2 cyclic query with the stated signature (two
// interlocking cycles closed by binary atoms).
func Q2() *Query {
	return MustParse(`ans :- r1(A,B,C), r2(C,D,E), r3(E,F,G), r4(G,H,A),
		r5(B,F), r6(D,H), r7(A,E,I), r8(C,G,I)`)
}

// Q3 matches the paper's description for Fig 8(B): 9 atoms, 12 distinct
// variables, 4 output variables, hypertree width 2. As with Q2 the text is
// not printed in the paper; this instance is structurally isomorphic to Q1
// (whose shape the paper documents in full) with four output variables.
func Q3() *Query {
	return MustParse(`ans(A,Z,W,K) :- t1(A,X,P,C,F), t2(A,Y,Q,D,G), t3(C,D,Z), t4(X,Z),
		t5(Y,Z), t6(F,G,W), t7(P,W), t8(Q,W), t9(K,X,Y,P,Q)`)
}
