// Package cq implements conjunctive queries in datalog-rule form:
//
//	ans(X, Y) :- r(X, Z), s(Z, Y).
//
// with a lexer, parser, the query hypergraph H(Q) of the paper's
// Introduction, the fresh-variable augmentation used by cost-k-decomp to
// force complete decompositions (Section 6), and the paper's benchmark
// queries Q0–Q3.
//
// Self-joins are expressed by aliasing relations:
//
//	ans(X, Z) :- e AS e1(X, Y), e AS e2(Y, Z).
//
// An atom's alias names the atom (and its hyperedge in H(Q)); its predicate
// names the base relation whose statistics and tuples the atom binds to.
// Parse additionally auto-aliases bare duplicate predicates, so
// "e(X,Y), e(Y,Z)" is accepted and becomes "e AS e_1(X,Y), e AS e_2(Y,Z)".
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a query atom: a predicate over variables, optionally under an
// alias. Predicate names the base relation; Alias, when non-empty, names
// this particular use of it, which is what makes self-joins expressible —
// two atoms may share a Predicate as long as their Names differ.
type Atom struct {
	Predicate string
	Alias     string // optional; distinct per atom when set
	Vars      []string
}

// Name returns the atom's name: the alias when set, else the predicate.
// Atom names are what must be distinct within a query; they name the
// hyperedges of H(Q), the bound relations of the engine, and the
// per-atom estimates of the cost model.
func (a Atom) Name() string {
	if a.Alias != "" {
		return a.Alias
	}
	return a.Predicate
}

// String renders the atom as predicate(v1,...,vn), or
// "predicate AS alias(v1,...,vn)" when aliased.
func (a Atom) String() string {
	if a.Alias != "" && a.Alias != a.Predicate {
		return a.Predicate + " AS " + a.Alias + "(" + strings.Join(a.Vars, ",") + ")"
	}
	return a.Predicate + "(" + strings.Join(a.Vars, ",") + ")"
}

// Query is a conjunctive query: head output variables and body atoms. A
// Boolean query has no output variables.
type Query struct {
	Head  string   // head predicate name, usually "ans"
	Out   []string // output (head) variables
	Atoms []Atom
}

// String renders the query in parseable rule syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Head)
	b.WriteByte('(')
	b.WriteString(strings.Join(q.Out, ","))
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte('.')
	return b.String()
}

// IsBoolean reports whether the query has no output variables.
func (q *Query) IsBoolean() bool { return len(q.Out) == 0 }

// Variables returns all distinct body variables in first-appearance order.
func (q *Query) Variables() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Validate checks basic well-formedness: at least one atom, non-empty
// atoms, distinct atom names (aliases make self-joins legal: two atoms may
// share a predicate when their aliases differ), and head variables
// appearing in the body (safety).
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query has no atoms")
	}
	names := map[string]bool{}
	for _, a := range q.Atoms {
		if len(a.Vars) == 0 {
			return fmt.Errorf("cq: atom %s has no variables", a.Name())
		}
		n := a.Name()
		if names[n] {
			if a.Alias == "" {
				return fmt.Errorf("cq: duplicate predicate %s (self-joins need aliased relations: write %s AS %s_2(...), or call AutoAlias)", n, n, n)
			}
			return fmt.Errorf("cq: duplicate atom name %s (aliases must be distinct)", n)
		}
		names[n] = true
	}
	body := map[string]bool{}
	for _, v := range q.Variables() {
		body[v] = true
	}
	for _, v := range q.Out {
		if !body[v] {
			return fmt.Errorf("cq: head variable %s does not occur in the body", v)
		}
	}
	return nil
}

// AutoAlias assigns aliases, in place, to every bare occurrence of a
// predicate that appears more than once without one, choosing names
// pred_1, pred_2, ... that collide with no existing atom name or predicate.
// It is what lets Parse accept "e(X,Y), e(Y,Z)" — after AutoAlias the query
// reads "e AS e_1(X,Y), e AS e_2(Y,Z)" and validates. The assignment is
// deterministic (body order), so equal inputs alias identically.
func (q *Query) AutoAlias() {
	bare := map[string]int{}
	for _, a := range q.Atoms {
		if a.Alias == "" {
			bare[a.Predicate]++
		}
	}
	used := map[string]bool{}
	for _, a := range q.Atoms {
		used[a.Name()] = true
		used[a.Predicate] = true
	}
	counter := map[string]int{}
	for i := range q.Atoms {
		a := &q.Atoms[i]
		if a.Alias != "" || bare[a.Predicate] <= 1 {
			continue
		}
		for {
			counter[a.Predicate]++
			cand := fmt.Sprintf("%s_%d", a.Predicate, counter[a.Predicate])
			if !used[cand] {
				a.Alias = cand
				used[cand] = true
				break
			}
		}
	}
}

// AtomByPredicate returns the first atom with the given predicate, or nil.
// With self-joins a predicate may label several atoms; use AtomByName to
// address one unambiguously.
func (q *Query) AtomByPredicate(p string) *Atom {
	for i := range q.Atoms {
		if q.Atoms[i].Predicate == p {
			return &q.Atoms[i]
		}
	}
	return nil
}

// AtomByName returns the atom with the given name (alias, or predicate for
// unaliased atoms), or nil. Names are unique in a validated query.
func (q *Query) AtomByName(n string) *Atom {
	for i := range q.Atoms {
		if q.Atoms[i].Name() == n {
			return &q.Atoms[i]
		}
	}
	return nil
}

// SortedVars returns an atom's variables sorted (convenience for stable
// schema ordering).
func SortedVars(a Atom) []string {
	out := append([]string(nil), a.Vars...)
	sort.Strings(out)
	return out
}
