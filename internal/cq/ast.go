// Package cq implements conjunctive queries in datalog-rule form:
//
//	ans(X, Y) :- r(X, Z), s(Z, Y).
//
// with a lexer, parser, the query hypergraph H(Q) of the paper's
// Introduction, the fresh-variable augmentation used by cost-k-decomp to
// force complete decompositions (Section 6), and the paper's benchmark
// queries Q0–Q3.
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Atom is a query atom: a predicate over variables.
type Atom struct {
	Predicate string
	Vars      []string
}

// String renders the atom as predicate(v1,...,vn).
func (a Atom) String() string {
	return a.Predicate + "(" + strings.Join(a.Vars, ",") + ")"
}

// Query is a conjunctive query: head output variables and body atoms. A
// Boolean query has no output variables.
type Query struct {
	Head  string   // head predicate name, usually "ans"
	Out   []string // output (head) variables
	Atoms []Atom
}

// String renders the query in parseable rule syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Head)
	b.WriteByte('(')
	b.WriteString(strings.Join(q.Out, ","))
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte('.')
	return b.String()
}

// IsBoolean reports whether the query has no output variables.
func (q *Query) IsBoolean() bool { return len(q.Out) == 0 }

// Variables returns all distinct body variables in first-appearance order.
func (q *Query) Variables() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Validate checks basic well-formedness: at least one atom, non-empty
// atoms, distinct predicate names (the paper assumes one relation per
// atom), and head variables appearing in the body (safety).
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query has no atoms")
	}
	preds := map[string]bool{}
	for _, a := range q.Atoms {
		if len(a.Vars) == 0 {
			return fmt.Errorf("cq: atom %s has no variables", a.Predicate)
		}
		if preds[a.Predicate] {
			return fmt.Errorf("cq: duplicate predicate %s (self-joins need aliased relations)", a.Predicate)
		}
		preds[a.Predicate] = true
	}
	body := map[string]bool{}
	for _, v := range q.Variables() {
		body[v] = true
	}
	for _, v := range q.Out {
		if !body[v] {
			return fmt.Errorf("cq: head variable %s does not occur in the body", v)
		}
	}
	return nil
}

// AtomByPredicate returns the atom with the given predicate, or nil.
func (q *Query) AtomByPredicate(p string) *Atom {
	for i := range q.Atoms {
		if q.Atoms[i].Predicate == p {
			return &q.Atoms[i]
		}
	}
	return nil
}

// SortedVars returns an atom's variables sorted (convenience for stable
// schema ordering).
func SortedVars(a Atom) []string {
	out := append([]string(nil), a.Vars...)
	sort.Strings(out)
	return out
}
