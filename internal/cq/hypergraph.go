package cq

import (
	"repro/internal/hypergraph"
)

// Hypergraph builds H(Q): one vertex per body variable, one hyperedge per
// atom, named by the atom's name — its alias when set, else its predicate
// (Introduction of the paper). Two aliases of one base relation therefore
// contribute two distinct hyperedges, which is exactly how self-joins enter
// the structural side of the decomposition machinery.
func (q *Query) Hypergraph() (*hypergraph.Hypergraph, error) {
	b := hypergraph.NewBuilder()
	for _, a := range q.Atoms {
		if err := b.Edge(a.Name(), a.Vars...); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// FreshSuffix is appended to an atom's predicate to name its fresh variable
// in WithFreshVariables.
const FreshSuffix = "$fresh"

// WithFreshVariables returns a copy of the query where every atom gets one
// fresh private variable (Section 6): with fresh variables, every NF
// decomposition of the augmented hypergraph strongly covers every atom, so
// minimal decompositions translate directly to complete query plans. The
// fresh variable of atom p is named p's atom name + FreshSuffix, so two
// aliases of one base relation get distinct fresh variables.
func (q *Query) WithFreshVariables() *Query {
	out := &Query{Head: q.Head, Out: append([]string(nil), q.Out...)}
	for _, a := range q.Atoms {
		vars := append([]string(nil), a.Vars...)
		vars = append(vars, a.Name()+FreshSuffix)
		out.Atoms = append(out.Atoms, Atom{Predicate: a.Predicate, Alias: a.Alias, Vars: vars})
	}
	return out
}

// IsFreshVariable reports whether the variable name was introduced by
// WithFreshVariables.
func IsFreshVariable(name string) bool {
	return len(name) > len(FreshSuffix) && name[len(name)-len(FreshSuffix):] == FreshSuffix
}
