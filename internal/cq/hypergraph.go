package cq

import (
	"repro/internal/hypergraph"
)

// Hypergraph builds H(Q): one vertex per body variable, one hyperedge per
// atom, named by the atom's predicate (Introduction of the paper).
func (q *Query) Hypergraph() (*hypergraph.Hypergraph, error) {
	b := hypergraph.NewBuilder()
	for _, a := range q.Atoms {
		if err := b.Edge(a.Predicate, a.Vars...); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// FreshSuffix is appended to an atom's predicate to name its fresh variable
// in WithFreshVariables.
const FreshSuffix = "$fresh"

// WithFreshVariables returns a copy of the query where every atom gets one
// fresh private variable (Section 6): with fresh variables, every NF
// decomposition of the augmented hypergraph strongly covers every atom, so
// minimal decompositions translate directly to complete query plans. The
// fresh variable of atom p is named p + FreshSuffix.
func (q *Query) WithFreshVariables() *Query {
	out := &Query{Head: q.Head, Out: append([]string(nil), q.Out...)}
	for _, a := range q.Atoms {
		vars := append([]string(nil), a.Vars...)
		vars = append(vars, a.Predicate+FreshSuffix)
		out.Atoms = append(out.Atoms, Atom{Predicate: a.Predicate, Vars: vars})
	}
	return out
}

// IsFreshVariable reports whether the variable name was introduced by
// WithFreshVariables.
func IsFreshVariable(name string) bool {
	return len(name) > len(FreshSuffix) && name[len(name)-len(FreshSuffix):] == FreshSuffix
}
