package cq

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("ans(X,Y) :- r(X,Z), s(Z,Y).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Head != "ans" || len(q.Out) != 2 || len(q.Atoms) != 2 {
		t.Fatalf("parsed wrong shape: %+v", q)
	}
	if q.Atoms[0].Predicate != "r" || q.Atoms[1].Vars[1] != "Y" {
		t.Errorf("atoms wrong: %+v", q.Atoms)
	}
	if q.IsBoolean() {
		t.Error("query with outputs reported Boolean")
	}
}

func TestParseVariants(t *testing.T) {
	for _, text := range []string{
		"ans :- r(X,Z), s(Z,Y)",
		"ans() <- r(X,Z), s(Z,Y).",
		"ans ← r(X,Z) ∧ s(Z,Y)",
	} {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if !q.IsBoolean() || len(q.Atoms) != 2 {
			t.Errorf("%q: wrong shape %+v", text, q)
		}
	}
}

func TestParsePrimedVariables(t *testing.T) {
	q, err := Parse("ans :- a(X,X'), b(X',Y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Vars[1] != "X'" {
		t.Errorf("primed variable lost: %+v", q.Atoms[0])
	}
	vars := q.Variables()
	if len(vars) != 3 {
		t.Errorf("Variables = %v, want 3 distinct", vars)
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"ans",
		"ans :-",
		"ans :- r()",
		"ans :- r(X,Y) s(Y,Z)",   // missing comma
		"ans(W) :- r(X,Y)",       // unsafe head
		"ans :- r(X), r(Y)",      // duplicate predicate
		"ans :- r(X,Y) , ",       // dangling comma
		"ans :- r(X,Y). trailer", // trailing input
		"ans : r(X)",             // bad arrow
		"ans :- r(X,!)",          // bad char
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("%q: expected parse error", text)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	q := MustParse("ans(X) :- r(X,Z), s(Z,Y).")
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("round trip: %v (text %q)", err, q.String())
	}
	if q2.String() != q.String() {
		t.Errorf("round trip changed query: %q vs %q", q2.String(), q.String())
	}
}

func TestHypergraphOfQ0(t *testing.T) {
	h, err := Q0().Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 8 || h.NumVars() != 10 {
		t.Fatalf("H(Q0): %d edges %d vars, want 8/10", h.NumEdges(), h.NumVars())
	}
	w, _, err := core.HypertreeWidth(h, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("hw(H(Q0)) = %d, want 2", w)
	}
}

func TestPaperQueriesShape(t *testing.T) {
	q1 := Q1()
	if len(q1.Atoms) != 9 || len(q1.Variables()) != 12 || !q1.IsBoolean() {
		t.Errorf("Q1 shape wrong: %d atoms, %d vars", len(q1.Atoms), len(q1.Variables()))
	}
	q2 := Q2()
	if len(q2.Atoms) != 8 || len(q2.Variables()) != 9 || !q2.IsBoolean() {
		t.Errorf("Q2 shape wrong: %d atoms, %d vars", len(q2.Atoms), len(q2.Variables()))
	}
	q3 := Q3()
	if len(q3.Atoms) != 9 || len(q3.Variables()) != 12 || len(q3.Out) != 4 {
		t.Errorf("Q3 shape wrong: %d atoms, %d vars, %d out",
			len(q3.Atoms), len(q3.Variables()), len(q3.Out))
	}
}

// The paper's queries all have hypertree width 2.
func TestPaperQueriesWidth(t *testing.T) {
	for name, q := range map[string]*Query{"Q1": Q1(), "Q2": Q2(), "Q3": Q3()} {
		h, err := q.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		w, d, err := core.HypertreeWidth(h, 3, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w != 2 {
			t.Errorf("hw(H(%s)) = %d, want 2", name, w)
		}
		if err := d.ValidateNF(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestWithFreshVariables(t *testing.T) {
	q := Q0()
	f := q.WithFreshVariables()
	if len(f.Atoms) != len(q.Atoms) {
		t.Fatal("atom count changed")
	}
	for i, a := range f.Atoms {
		if len(a.Vars) != len(q.Atoms[i].Vars)+1 {
			t.Errorf("atom %s should gain exactly one variable", a.Predicate)
		}
		last := a.Vars[len(a.Vars)-1]
		if !IsFreshVariable(last) {
			t.Errorf("last variable %q not recognized as fresh", last)
		}
	}
	// Original untouched.
	if IsFreshVariable(q.Atoms[0].Vars[len(q.Atoms[0].Vars)-1]) {
		t.Error("WithFreshVariables mutated original")
	}
	// The augmented hypergraph still builds.
	if _, err := f.Hypergraph(); err != nil {
		t.Fatal(err)
	}
}

// Fresh variables force completeness (E11): in every NF decomposition of
// the augmented hypergraph, every edge is strongly covered, because each
// atom's private variable can only be covered by its own hyperedge.
func TestFreshVariableTrick(t *testing.T) {
	q := MustParse("ans :- r(A,B), s(B,C), t(C,A)") // triangle, hw 2
	f := q.WithFreshVariables()
	h, err := f.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.DecomposeK(h, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsComplete() {
		t.Errorf("decomposition of fresh-augmented query not complete:\n%s", d)
	}
}

func TestAtomByPredicate(t *testing.T) {
	q := Q0()
	if a := q.AtomByPredicate("s5"); a == nil || len(a.Vars) != 3 {
		t.Error("AtomByPredicate failed")
	}
	if q.AtomByPredicate("nope") != nil {
		t.Error("missing predicate should return nil")
	}
}

func TestQueryStringBoolean(t *testing.T) {
	s := Q0().String()
	if !strings.HasPrefix(s, "ans() :- s1(A,B,D)") {
		t.Errorf("unexpected rendering: %q", s)
	}
}
