package cq

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("ans(X,Y) :- r(X,Z), s(Z,Y).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Head != "ans" || len(q.Out) != 2 || len(q.Atoms) != 2 {
		t.Fatalf("parsed wrong shape: %+v", q)
	}
	if q.Atoms[0].Predicate != "r" || q.Atoms[1].Vars[1] != "Y" {
		t.Errorf("atoms wrong: %+v", q.Atoms)
	}
	if q.IsBoolean() {
		t.Error("query with outputs reported Boolean")
	}
}

func TestParseVariants(t *testing.T) {
	for _, text := range []string{
		"ans :- r(X,Z), s(Z,Y)",
		"ans() <- r(X,Z), s(Z,Y).",
		"ans ← r(X,Z) ∧ s(Z,Y)",
	} {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if !q.IsBoolean() || len(q.Atoms) != 2 {
			t.Errorf("%q: wrong shape %+v", text, q)
		}
	}
}

func TestParsePrimedVariables(t *testing.T) {
	q, err := Parse("ans :- a(X,X'), b(X',Y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Vars[1] != "X'" {
		t.Errorf("primed variable lost: %+v", q.Atoms[0])
	}
	vars := q.Variables()
	if len(vars) != 3 {
		t.Errorf("Variables = %v, want 3 distinct", vars)
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"ans",
		"ans :-",
		"ans :- r()",
		"ans :- r(X,Y) s(Y,Z)",        // missing comma
		"ans(W) :- r(X,Y)",            // unsafe head
		"ans :- r AS a(X), r AS a(Y)", // duplicate alias
		"ans :- r AS a(X), a(Y)",      // alias collides with atom name
		"ans :- r AS (X)",             // missing alias identifier
		"ans :- r(X,Y) , ",            // dangling comma
		"ans :- r(X,Y). trailer",      // trailing input
		"ans : r(X)",                  // bad arrow
		"ans :- r(X,!)",               // bad char
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("%q: expected parse error", text)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	q := MustParse("ans(X) :- r(X,Z), s(Z,Y).")
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("round trip: %v (text %q)", err, q.String())
	}
	if q2.String() != q.String() {
		t.Errorf("round trip changed query: %q vs %q", q2.String(), q.String())
	}
}

func TestHypergraphOfQ0(t *testing.T) {
	h, err := Q0().Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 8 || h.NumVars() != 10 {
		t.Fatalf("H(Q0): %d edges %d vars, want 8/10", h.NumEdges(), h.NumVars())
	}
	w, _, err := core.HypertreeWidth(h, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("hw(H(Q0)) = %d, want 2", w)
	}
}

func TestPaperQueriesShape(t *testing.T) {
	q1 := Q1()
	if len(q1.Atoms) != 9 || len(q1.Variables()) != 12 || !q1.IsBoolean() {
		t.Errorf("Q1 shape wrong: %d atoms, %d vars", len(q1.Atoms), len(q1.Variables()))
	}
	q2 := Q2()
	if len(q2.Atoms) != 8 || len(q2.Variables()) != 9 || !q2.IsBoolean() {
		t.Errorf("Q2 shape wrong: %d atoms, %d vars", len(q2.Atoms), len(q2.Variables()))
	}
	q3 := Q3()
	if len(q3.Atoms) != 9 || len(q3.Variables()) != 12 || len(q3.Out) != 4 {
		t.Errorf("Q3 shape wrong: %d atoms, %d vars, %d out",
			len(q3.Atoms), len(q3.Variables()), len(q3.Out))
	}
}

// The paper's queries all have hypertree width 2.
func TestPaperQueriesWidth(t *testing.T) {
	for name, q := range map[string]*Query{"Q1": Q1(), "Q2": Q2(), "Q3": Q3()} {
		h, err := q.Hypergraph()
		if err != nil {
			t.Fatal(err)
		}
		w, d, err := core.HypertreeWidth(h, 3, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w != 2 {
			t.Errorf("hw(H(%s)) = %d, want 2", name, w)
		}
		if err := d.ValidateNF(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestWithFreshVariables(t *testing.T) {
	q := Q0()
	f := q.WithFreshVariables()
	if len(f.Atoms) != len(q.Atoms) {
		t.Fatal("atom count changed")
	}
	for i, a := range f.Atoms {
		if len(a.Vars) != len(q.Atoms[i].Vars)+1 {
			t.Errorf("atom %s should gain exactly one variable", a.Predicate)
		}
		last := a.Vars[len(a.Vars)-1]
		if !IsFreshVariable(last) {
			t.Errorf("last variable %q not recognized as fresh", last)
		}
	}
	// Original untouched.
	if IsFreshVariable(q.Atoms[0].Vars[len(q.Atoms[0].Vars)-1]) {
		t.Error("WithFreshVariables mutated original")
	}
	// The augmented hypergraph still builds.
	if _, err := f.Hypergraph(); err != nil {
		t.Fatal(err)
	}
}

// Fresh variables force completeness (E11): in every NF decomposition of
// the augmented hypergraph, every edge is strongly covered, because each
// atom's private variable can only be covered by its own hyperedge.
func TestFreshVariableTrick(t *testing.T) {
	q := MustParse("ans :- r(A,B), s(B,C), t(C,A)") // triangle, hw 2
	f := q.WithFreshVariables()
	h, err := f.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.DecomposeK(h, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsComplete() {
		t.Errorf("decomposition of fresh-augmented query not complete:\n%s", d)
	}
}

func TestAtomByPredicate(t *testing.T) {
	q := Q0()
	if a := q.AtomByPredicate("s5"); a == nil || len(a.Vars) != 3 {
		t.Error("AtomByPredicate failed")
	}
	if q.AtomByPredicate("nope") != nil {
		t.Error("missing predicate should return nil")
	}
}

func TestParseAliases(t *testing.T) {
	q, err := Parse("ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z).")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Predicate != "e" || q.Atoms[0].Alias != "e1" || q.Atoms[1].Alias != "e2" {
		t.Fatalf("aliases wrong: %+v", q.Atoms)
	}
	if q.Atoms[0].Name() != "e1" || q.Atoms[1].Name() != "e2" {
		t.Errorf("Name() wrong: %s, %s", q.Atoms[0].Name(), q.Atoms[1].Name())
	}
	// Lower-case keyword accepted.
	if _, err := Parse("ans :- e as e1(X,Y), e as e2(Y,Z)"); err != nil {
		t.Errorf("lower-case as: %v", err)
	}
	// Aliases become distinct hyperedges.
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 || h.EdgeByName("e1") < 0 || h.EdgeByName("e2") < 0 {
		t.Errorf("hypergraph edges wrong: %d edges", h.NumEdges())
	}
	// Fresh variables are per-alias private.
	f := q.WithFreshVariables()
	f1 := f.Atoms[0].Vars[len(f.Atoms[0].Vars)-1]
	f2 := f.Atoms[1].Vars[len(f.Atoms[1].Vars)-1]
	if f1 == f2 || !IsFreshVariable(f1) || !IsFreshVariable(f2) {
		t.Errorf("fresh variables not per-alias: %q vs %q", f1, f2)
	}
}

func TestParseAutoAlias(t *testing.T) {
	q, err := Parse("ans :- e(X,Y), e(Y,Z), r(Z,W)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Atoms[0].Alias != "e_1" || q.Atoms[1].Alias != "e_2" {
		t.Fatalf("auto-alias wrong: %+v", q.Atoms)
	}
	if q.Atoms[2].Alias != "" {
		t.Errorf("unique predicate r should stay bare: %+v", q.Atoms[2])
	}
	// Auto-alias avoids occupied names.
	q2, err := Parse("ans :- e_1(A), e(X,Y), e(Y,Z)")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Atoms[1].Alias != "e_2" || q2.Atoms[2].Alias != "e_3" {
		t.Errorf("auto-alias should skip occupied e_1: %+v", q2.Atoms)
	}
	if err := q2.Validate(); err != nil {
		t.Errorf("auto-aliased query must validate: %v", err)
	}
}

func TestAliasStringRoundTrip(t *testing.T) {
	for _, text := range []string{
		"ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z).",
		"ans :- e(X,Y), e(Y,Z).", // auto-aliased form must re-parse
		"ans :- e AS e1(X,Y), e AS e2(Y,Z), e AS e3(Z,X).",
	} {
		q := MustParse(text)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("%q: round trip: %v (rendered %q)", text, err, q.String())
		}
		if q2.String() != q.String() {
			t.Errorf("%q: round trip changed query: %q vs %q", text, q2.String(), q.String())
		}
	}
}

func TestValidateDuplicateBarePredicate(t *testing.T) {
	// Programmatic construction without AutoAlias still gets the clear error.
	q := &Query{Head: "ans", Atoms: []Atom{
		{Predicate: "r", Vars: []string{"X"}},
		{Predicate: "r", Vars: []string{"Y"}},
	}}
	if err := q.Validate(); err == nil {
		t.Fatal("expected duplicate-predicate error")
	}
	q.AutoAlias()
	if err := q.Validate(); err != nil {
		t.Fatalf("after AutoAlias: %v", err)
	}
}

func TestAtomByName(t *testing.T) {
	q := MustParse("ans :- e AS e1(X,Y), e AS e2(Y,Z), r(Z)")
	if a := q.AtomByName("e2"); a == nil || a.Predicate != "e" {
		t.Error("AtomByName(e2) failed")
	}
	if a := q.AtomByName("r"); a == nil || a.Alias != "" {
		t.Error("AtomByName(r) failed")
	}
	if q.AtomByName("e") != nil {
		t.Error("aliased atoms should not answer to their predicate name")
	}
	if a := q.AtomByPredicate("e"); a == nil || a.Alias != "e1" {
		t.Error("AtomByPredicate should return the first e atom")
	}
}

func TestQueryStringBoolean(t *testing.T) {
	s := Q0().String()
	if !strings.HasPrefix(s, "ans() :- s1(A,B,D)") {
		t.Errorf("unexpected rendering: %q", s)
	}
}
