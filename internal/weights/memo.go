package weights

import (
	"sync"
	"sync/atomic"
)

// Memo is a lock-free-read memo table for evaluator caches whose entries
// are written once and read many times (cost-model estimates probed on
// every vertex/edge evaluation). It is an open-addressing hash table whose
// slots publish their value pointer with a release store; readers probe
// with acquire loads and never take a lock, never hash twice, and never
// touch a shared cache line — the RWMutex read path it replaces serializes
// readers on the lock's reader counter, which is exactly the contention
// that made level-parallel solves lose to sequential ones on memo-friendly
// TAFs. Writers serialize on one mutex; growth doubles the table and
// republishes it atomically, so insertion stays amortized O(1) with ≈2
// copies per entry over the table's lifetime.
//
// Entries are write-once: the first value recorded for a key wins and a
// later Put of the same key is ignored. Values for a given key must
// therefore be deterministic — racing writers may both compute an entry
// and either may be the one kept. A reader racing a table growth may probe
// the old table and miss an entry that only the new table holds; the
// caller then recomputes the same value and Put discards the duplicate.
//
// K must be hashed by the caller: New takes the hash function (a couple of
// integer multiplies for the solver's small integer keys, cheaper than a
// generic 12-byte runtime hash).
type Memo[K comparable, V any] struct {
	hash  func(K) uint64
	table atomic.Pointer[memoTable[K, V]]
	mu    sync.Mutex // writers only
	count int        // entries inserted; guarded by mu
}

// memoTable is one immutable-size open-addressing array. Slot keys are
// written before the value pointer is store-released, so a reader that
// acquires a non-nil value pointer sees the matching key.
type memoTable[K comparable, V any] struct {
	mask  uint64
	slots []memoSlot[K, V]
}

type memoSlot[K comparable, V any] struct {
	v   atomic.Pointer[V]
	key K
}

// NewMemo returns an empty memo using hash to place keys. Hash quality
// matters only for probe lengths; equality is always checked on the key.
func NewMemo[K comparable, V any](hash func(K) uint64) *Memo[K, V] {
	return &Memo[K, V]{hash: hash}
}

// Get returns the value recorded for k: one hash, one linear probe, no
// lock.
func (m *Memo[K, V]) Get(k K) *V {
	t := m.table.Load()
	if t == nil {
		return nil
	}
	h := m.hash(k)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		v := s.v.Load()
		if v == nil {
			return nil
		}
		if s.key == k {
			return v
		}
	}
}

// Put records k → v unless the key is already present (first value wins).
// The entry is immediately visible to concurrent Gets.
func (m *Memo[K, V]) Put(k K, v *V) {
	m.mu.Lock()
	t := m.table.Load()
	// Grow at 50% load so reader probes stay short.
	if t == nil || uint64(m.count+1) > uint64(len(t.slots))/2 {
		t = m.grow(t)
	}
	h := m.hash(k)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.v.Load() == nil {
			s.key = k
			s.v.Store(v) // release: publishes the key write above
			m.count++
			break
		}
		if s.key == k {
			break // write-once: keep the first value
		}
	}
	m.mu.Unlock()
}

// grow doubles the table (from a 64-slot floor), rehashes every entry, and
// publishes the new table. Readers concurrently probing the old table see
// a consistent (if slightly stale) view. Caller holds mu.
func (m *Memo[K, V]) grow(old *memoTable[K, V]) *memoTable[K, V] {
	n := 64
	if old != nil {
		n = len(old.slots) * 2
	}
	t := &memoTable[K, V]{mask: uint64(n - 1), slots: make([]memoSlot[K, V], n)}
	if old != nil {
		for i := range old.slots {
			v := old.slots[i].v.Load()
			if v == nil {
				continue
			}
			h := m.hash(old.slots[i].key)
			for j := h & t.mask; ; j = (j + 1) & t.mask {
				if t.slots[j].v.Load() == nil {
					t.slots[j].key = old.slots[i].key
					t.slots[j].v.Store(v)
					break
				}
			}
		}
	}
	m.table.Store(t)
	return t
}

// Len returns the number of entries recorded.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}
