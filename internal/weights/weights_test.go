package weights

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/hypertree"
)

func buildQ0() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.MustEdge("s1", "A", "B", "D")
	b.MustEdge("s2", "B", "C", "D")
	b.MustEdge("s3", "B", "E")
	b.MustEdge("s4", "D", "G")
	b.MustEdge("s5", "E", "F", "G")
	b.MustEdge("s6", "E", "H")
	b.MustEdge("s7", "F", "I")
	b.MustEdge("s8", "G", "J")
	return b.MustBuild()
}

func chi(h *hypergraph.Hypergraph, names ...string) hypergraph.Varset {
	s := h.NewVarset()
	for _, n := range names {
		s.Set(h.VarByName(n))
	}
	return s
}

func lam(h *hypergraph.Hypergraph, names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = h.EdgeByName(n)
	}
	return out
}

// buildHDPrime and buildHDSecond mirror the Fig 1 fixtures (profiles
// 4×w1+3×w2 and 6×w1+1×w2 respectively).
func buildHDPrime(h *hypergraph.Hypergraph) *hypertree.Decomposition {
	root := hypertree.NewNode(chi(h, "A", "B", "C", "D"), lam(h, "s1", "s2"))
	c := root.AddChild(hypertree.NewNode(chi(h, "B", "D", "E", "G"), lam(h, "s3", "s4")))
	d1 := c.AddChild(hypertree.NewNode(chi(h, "E", "F", "G", "I"), lam(h, "s5", "s7")))
	c.AddChild(hypertree.NewNode(chi(h, "E", "H"), lam(h, "s6")))
	c.AddChild(hypertree.NewNode(chi(h, "G", "J"), lam(h, "s8")))
	d1.AddChild(hypertree.NewNode(chi(h, "F", "I"), lam(h, "s7")))
	root.AddChild(hypertree.NewNode(chi(h, "A", "B", "D"), lam(h, "s1")))
	d := &hypertree.Decomposition{H: h, Root: root}
	d.Nodes()
	return d
}

func buildHDSecond(h *hypergraph.Hypergraph) *hypertree.Decomposition {
	root := hypertree.NewNode(chi(h, "B", "D", "E", "G"), lam(h, "s3", "s4"))
	root.AddChild(hypertree.NewNode(chi(h, "A", "B", "D"), lam(h, "s1")))
	root.AddChild(hypertree.NewNode(chi(h, "B", "C", "D"), lam(h, "s2")))
	c3 := root.AddChild(hypertree.NewNode(chi(h, "E", "F", "G"), lam(h, "s5")))
	root.AddChild(hypertree.NewNode(chi(h, "E", "H"), lam(h, "s6")))
	root.AddChild(hypertree.NewNode(chi(h, "G", "J"), lam(h, "s8")))
	c3.AddChild(hypertree.NewNode(chi(h, "F", "I"), lam(h, "s7")))
	d := &hypertree.Decomposition{H: h, Root: root}
	d.Nodes()
	return d
}

// Example 3.1: ω_lex(HD′) = 4·9⁰ + 3·9¹ = 31, ω_lex(HD″) = 6·9⁰ + 1·9¹ = 15,
// with B = |edges(H)| + 1 = 9.
func TestExample31Lex(t *testing.T) {
	h := buildQ0()
	hd1, hd2 := buildHDPrime(h), buildHDSecond(h)
	if w := LexWeight(hd1); w != 4+3*9 {
		t.Errorf("ω_lex(HD′) = %d, want %d", w, 4+3*9)
	}
	if w := LexWeight(hd2); w != 6+1*9 {
		t.Errorf("ω_lex(HD″) = %d, want %d", w, 6+1*9)
	}
	// HD″ is better than HD′ w.r.t. the lexicographic order.
	taf := LexTAF(2)
	v1, v2 := taf.Evaluate(hd1), taf.Evaluate(hd2)
	if !taf.Semiring.Less(v2, v1) {
		t.Errorf("LexTAF should prefer HD″: %v vs %v", v2, v1)
	}
}

func TestWidthTAF(t *testing.T) {
	h := buildQ0()
	taf := WidthTAF()
	for _, d := range []*hypertree.Decomposition{buildHDPrime(h), buildHDSecond(h)} {
		if got := taf.Evaluate(d); got != 2 {
			t.Errorf("WidthTAF = %v, want 2", got)
		}
		if OmegaW(d) != 2 {
			t.Errorf("OmegaW = %v, want 2", OmegaW(d))
		}
	}
}

func TestMaxSeparatorTAF(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	// Separators of HD″: children of root share 2 vars ({B,D} for s1/s2,
	// {E,G} for s5, {E} for s6, {G} for s8), and the s7 leaf shares {F}.
	if got := MaxSeparatorTAF().Evaluate(d); got != 2 {
		t.Errorf("max separator = %v, want 2", got)
	}
}

func TestLexSeparatorTAF(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	taf := LexSeparatorTAF(4)
	v := taf.Evaluate(d)
	// Six tree edges: sizes 2 ({B,D}), 2 ({E,G})... recount: s1:{B,D}=2,
	// s2:{B,D}=2, s5:{E,G}=2, s6:{E}=1, s8:{G}=1, s7 under s5:{F}=1.
	want := LexVec{0, 3, 3, 0, 0}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("lexsep = %v, want %v", v, want)
		}
	}
}

func TestCountVerticesTAF(t *testing.T) {
	h := buildQ0()
	if got := CountVerticesTAF().Evaluate(buildHDSecond(h)); got != 7 {
		t.Errorf("vertex count = %v, want 7", got)
	}
}

func TestVertexAggregation(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	// Λv with v(p) = |λ(p)| sums to 6·1 + 1·2 = 8.
	hwf := VertexAggregation(func(p NodeInfo) float64 { return float64(len(p.Lambda)) })
	if got := hwf(d); got != 8 {
		t.Errorf("Λ|λ| = %v, want 8", got)
	}
}

func TestHQueryDeviationVertex(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	// Every node of HD″ has χ = var(λ), widths ≤ 4, so deviation is 0.
	d.Walk(func(n, _ *hypertree.Node) {
		ni := NodeInfo{H: h, Lambda: n.Lambda, Chi: n.Chi}
		if HQueryDeviationVertex(ni) != 0 {
			t.Errorf("node %d deviation nonzero", n.ID)
		}
	})
	// A node with a hidden variable deviates.
	ni := NodeInfo{H: h, Lambda: lam(h, "s1"), Chi: chi(h, "A", "B")}
	if HQueryDeviationVertex(ni) != 1 { // D hidden
		t.Error("deviation should count hidden vars")
	}
}

func TestLexSemiringProperties(t *testing.T) {
	s := LexSemiring{Width: 3}
	a, b, c := LexVec{1, 0, 2}, LexVec{0, 3, 1}, LexVec{2, 2, 0}
	// Commutativity and associativity of ⊕.
	ab, ba := s.Combine(a, b), s.Combine(b, a)
	for i := range ab {
		if ab[i] != ba[i] {
			t.Fatal("⊕ not commutative")
		}
	}
	l := s.Combine(s.Combine(a, b), c)
	r := s.Combine(a, s.Combine(b, c))
	for i := range l {
		if l[i] != r[i] {
			t.Fatal("⊕ not associative")
		}
	}
	// Zero is neuter.
	z := s.Combine(a, s.Zero())
	for i := range z {
		if z[i] != a[i] {
			t.Fatal("⊥ not neuter")
		}
	}
	// Lexicographic order: highest index dominates.
	if !s.Less(LexVec{100, 100, 1}, LexVec{0, 0, 2}) {
		t.Error("lex order wrong")
	}
	if s.Less(a, a) {
		t.Error("Less not strict")
	}
}

// Property: min distributes over ⊕ for the lex semiring (the key semiring
// law the algorithm's correctness relies on): min(a⊕c, b⊕c) = min(a,b)⊕c.
func TestLexMinDistributesOverPlus(t *testing.T) {
	s := LexSemiring{Width: 4}
	rng := rand.New(rand.NewSource(5))
	vec := func() LexVec {
		v := make(LexVec, 4)
		for i := range v {
			v[i] = int64(rng.Intn(10))
		}
		return v
	}
	min := func(a, b LexVec) LexVec {
		if s.Less(b, a) {
			return b
		}
		return a
	}
	for trial := 0; trial < 500; trial++ {
		a, b, c := vec(), vec(), vec()
		l := min(s.Combine(a, c), s.Combine(b, c))
		r := s.Combine(min(a, b), c)
		for i := range l {
			if l[i] != r[i] {
				t.Fatalf("distributivity fails: a=%v b=%v c=%v", a, b, c)
			}
		}
	}
}

// Property (quick): SumFloat and MaxFloat semiring laws on random inputs.
func TestFloatSemiringLaws(t *testing.T) {
	check := func(s Semiring[float64]) func(x, y, z uint16) bool {
		return func(x, y, z uint16) bool {
			a, b, c := float64(x), float64(y), float64(z)
			if s.Combine(a, b) != s.Combine(b, a) {
				return false
			}
			if s.Combine(s.Combine(a, b), c) != s.Combine(a, s.Combine(b, c)) {
				return false
			}
			return s.Combine(a, s.Zero()) == a
		}
	}
	if err := quick.Check(check(SumFloat{}), nil); err != nil {
		t.Errorf("SumFloat: %v", err)
	}
	if err := quick.Check(check(MaxFloat{}), nil); err != nil {
		t.Errorf("MaxFloat: %v", err)
	}
}

func TestRadix(t *testing.T) {
	v := LexVec{4, 3}
	if v.Radix(9) != 31 {
		t.Errorf("Radix = %d, want 31", v.Radix(9))
	}
}

func TestNilVertexAndEdgeAreZero(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	taf := TAF[float64]{Semiring: SumFloat{}}
	if got := taf.Evaluate(d); got != 0 {
		t.Errorf("empty TAF should evaluate to 0, got %v", got)
	}
}
