package weights

import (
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
)

// MemoKey identifies a node's (λ, χ) labels with small integers: a
// generation number naming the structural index that interned them, plus
// dense IDs for the λ edge set and the χ varset. Two NodeInfos with equal
// valid keys have identical (λ, χ), so cost models can memoize per-node
// estimates on a three-int map key instead of serializing the sets to
// strings. The zero MemoKey (Gen 0) means "no key": evaluators must fall
// back to comparing the sets themselves.
type MemoKey struct {
	Gen, Lambda, Chi int32
}

// Valid reports whether the key identifies (λ, χ); the zero value does not.
func (k MemoKey) Valid() bool { return k.Gen != 0 }

// NodeInfo is the view of a decomposition vertex that vertex and edge
// evaluation functions see: its λ (edge indices), χ (variables), and — when
// produced by the candidate-graph algorithms — the component it decomposes.
// Component may be the zero Varset when weighting a free-standing
// hypertree, and Memo the zero MemoKey when no structural index stamped
// the node.
type NodeInfo struct {
	H         *hypergraph.Hypergraph
	Lambda    []int
	Chi       hypergraph.Varset
	Component hypergraph.Varset
	Memo      MemoKey
}

// LambdaVars returns var(λ(p)).
func (n NodeInfo) LambdaVars() hypergraph.Varset { return n.H.Vars(n.Lambda) }

// TAF is a tree aggregation function F(⊕,v,e) (Definition 4.1):
//
//	F(HD) = ⊕_{p∈N} ( v(p) ⊕ ⊕_{(p,p′)∈E} e(p,p′) )
//
// Vertex evaluates decomposition vertices; Edge evaluates tree edges, with
// the parent first. Either may be nil, meaning the constant ⊥.
//
// EdgeParentIndependent declares that Edge(p, c) does not depend on p. The
// minimal-k-decomp implementation uses this to cache per-subproblem minima
// (the ablation of experiment E13); it is an optimization contract only and
// must be set honestly.
type TAF[W any] struct {
	Semiring              Semiring[W]
	Vertex                func(p NodeInfo) W
	Edge                  func(parent, child NodeInfo) W
	EdgeParentIndependent bool
}

// VertexWeight returns v(p), treating a nil Vertex as the constant ⊥.
func (t TAF[W]) VertexWeight(p NodeInfo) W {
	if t.Vertex == nil {
		return t.Semiring.Zero()
	}
	return t.Vertex(p)
}

// EdgeWeight returns e(parent, child), treating a nil Edge as the constant ⊥.
func (t TAF[W]) EdgeWeight(parent, child NodeInfo) W {
	if t.Edge == nil {
		return t.Semiring.Zero()
	}
	return t.Edge(parent, child)
}

// nodeInfo builds the NodeInfo for a hypertree node (no component).
func nodeInfo(h *hypergraph.Hypergraph, n *hypertree.Node) NodeInfo {
	return NodeInfo{H: h, Lambda: n.Lambda, Chi: n.Chi}
}

// Evaluate computes F(⊕,v,e)(d) on a whole decomposition, folding v over
// all vertices and e over all tree edges with ⊕.
func (t TAF[W]) Evaluate(d *hypertree.Decomposition) W {
	acc := t.Semiring.Zero()
	d.Walk(func(n, parent *hypertree.Node) {
		acc = t.Semiring.Combine(acc, t.VertexWeight(nodeInfo(d.H, n)))
		if parent != nil {
			acc = t.Semiring.Combine(acc,
				t.EdgeWeight(nodeInfo(d.H, parent), nodeInfo(d.H, n)))
		}
	})
	return acc
}

// HWF is a general hypertree weighting function: any polynomial-time map
// from decompositions to R (Section 3). Every TAF induces one via Evaluate;
// arbitrary HWFs (e.g. the NP-hardness constructions of Theorem 3.3) do not
// factor through vertices and edges.
type HWF func(d *hypertree.Decomposition) float64

// VertexAggregation lifts a per-vertex function v into the HWF
// Λv(HD) = Σ_p v(p) (Section 3.1). It is the TAF (+, v, ⊥) as an HWF.
func VertexAggregation(v func(p NodeInfo) float64) HWF {
	t := TAF[float64]{Semiring: SumFloat{}, Vertex: v, EdgeParentIndependent: true}
	return t.Evaluate
}
