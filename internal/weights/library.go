package weights

import (
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
)

// The TAF library: the weighting functions used as examples in the paper.

// WidthTAF is F(max, v^w, ⊥) with v^w(p) = |λ(p)| (Example 4.2): its value
// on a decomposition is the width, so minimal decompositions are the
// minimum-width ones (the function ω_w of Section 3).
func WidthTAF() TAF[float64] {
	return TAF[float64]{
		Semiring:              MaxFloat{},
		Vertex:                func(p NodeInfo) float64 { return float64(len(p.Lambda)) },
		EdgeParentIndependent: true,
	}
}

// LexTAF is the lexicographic HWF ω_lex of Example 3.1 as a TAF over
// LexVec: vertex p contributes a unit at index |λ(p)|−1; vectors add and
// compare lexicographically (most significant = largest width). k bounds
// the width of weighted decompositions.
func LexTAF(k int) TAF[LexVec] {
	s := LexSemiring{Width: k}
	return TAF[LexVec]{
		Semiring: s,
		Vertex: func(p NodeInfo) LexVec {
			v := make(LexVec, k)
			if len(p.Lambda) >= 1 && len(p.Lambda) <= k {
				v[len(p.Lambda)-1] = 1
			}
			return v
		},
		EdgeParentIndependent: true,
	}
}

// LexWeight computes ω_lex(HD) as the paper's radix-B number with
// B = |edges(H)| + 1, for display and for the Example 3.1 check.
func LexWeight(d *hypertree.Decomposition) int64 {
	k := d.Width()
	v := LexTAF(k).Evaluate(d)
	return v.Radix(int64(d.H.NumEdges()) + 1)
}

// MaxSeparatorTAF is F(max, ⊥, e^sep) with e^sep(p,q) = |sep(p,q)| =
// |χ(p) ∩ χ(q)| (Example 4.2): its minimal decompositions minimize the
// largest vertex separator.
func MaxSeparatorTAF() TAF[float64] {
	return TAF[float64]{
		Semiring: MaxFloat{},
		Edge: func(parent, child NodeInfo) float64 {
			return float64(parent.Chi.Intersect(child.Chi).Count())
		},
	}
}

// LexSeparatorTAF is F(+, ⊥, e^lsep) of Example 4.2: separators of size s
// contribute a unit at vector index s−1, aggregated by element-wise sum and
// compared lexicographically, refining MaxSeparatorTAF the way LexTAF
// refines WidthTAF. maxSep bounds the separator size (use the hypergraph's
// variable count when unsure).
func LexSeparatorTAF(maxSep int) TAF[LexVec] {
	s := LexSemiring{Width: maxSep + 1}
	return TAF[LexVec]{
		Semiring: s,
		Edge: func(parent, child NodeInfo) LexVec {
			v := make(LexVec, maxSep+1)
			sz := parent.Chi.Intersect(child.Chi).Count()
			if sz > maxSep {
				sz = maxSep
			}
			v[sz] = 1
			return v
		},
	}
}

// CountVerticesTAF weights every vertex 1 under (+): minimal decompositions
// have the fewest vertices. Useful as a simple smooth TAF in tests.
func CountVerticesTAF() TAF[float64] {
	return TAF[float64]{
		Semiring:              SumFloat{},
		Vertex:                func(NodeInfo) float64 { return 1 },
		EdgeParentIndependent: true,
	}
}

// OmegaW is the simple HWF ω_w(HD) = max_p |λ(p)| of Section 3.
func OmegaW(d *hypertree.Decomposition) float64 { return float64(d.Width()) }

// OmegaLex is ω_lex as an HWF (Example 3.1), returning the radix-B value.
func OmegaLex(d *hypertree.Decomposition) float64 { return float64(LexWeight(d)) }

// HQueryDeviationVertex is the vertex evaluation function of Theorem 3.4's
// reduction: v(p) = max(|var(λ(p)) − χ(p)|, |λ(p)| − 4). Its vertex
// aggregation is 0 exactly on decompositions corresponding to width-≤4
// H-QUERY decompositions.
func HQueryDeviationVertex(p NodeInfo) float64 {
	dev := p.LambdaVars().Subtract(p.Chi).Count()
	excess := len(p.Lambda) - 4
	if dev >= excess {
		return float64(dev)
	}
	return float64(excess)
}

// SeparatorSet returns sep(p,q) for two hypertree nodes (convenience used
// by examples and tests).
func SeparatorSet(p, q *hypertree.Node) hypergraph.Varset {
	return hypertree.Separator(p, q)
}
