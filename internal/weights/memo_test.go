package weights

import (
	"sync"
	"testing"
)

func intHash(k int) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

func TestMemoGetPut(t *testing.T) {
	m := NewMemo[int, string](intHash)
	if m.Get(1) != nil {
		t.Fatal("empty memo reported a hit")
	}
	a := "a"
	m.Put(1, &a)
	if v := m.Get(1); v == nil || *v != "a" {
		t.Fatalf("entry not readable: %v", v)
	}
	b := "b"
	m.Put(2, &b)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	// Entries are write-once: re-putting a key neither overwrites nor
	// double-counts.
	a2 := "a2"
	m.Put(1, &a2)
	if m.Len() != 2 {
		t.Fatalf("Len after re-put = %d, want 2", m.Len())
	}
	if v := m.Get(1); v == nil || *v != "a" {
		t.Fatalf("re-put overwrote the first value, got %v", v)
	}
}

// Growth across several doublings must lose nothing, including under a
// degenerate hash that clusters every key (probe chains stay correct).
func TestMemoGrowth(t *testing.T) {
	m := NewMemo[int, int](intHash)
	vals := make([]int, 2000)
	for i := range vals {
		vals[i] = i * 7
		m.Put(i, &vals[i])
	}
	for i := range vals {
		if v := m.Get(i); v == nil || *v != i*7 {
			t.Fatalf("entry %d lost across growth (got %v)", i, v)
		}
	}
	if m.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", m.Len())
	}

	clustered := NewMemo[int, int](func(k int) uint64 { return uint64(k % 3) })
	for i := range vals {
		clustered.Put(i, &vals[i])
	}
	for i := range vals {
		if v := clustered.Get(i); v == nil || *v != i*7 {
			t.Fatalf("clustered entry %d lost (got %v)", i, v)
		}
	}
}

// Concurrent writers and readers racing table growth: run with -race (CI
// does). Keys determine their values, so any racing writer stores an
// equivalent entry; a reader either misses (caller would recompute) or
// sees the correct value — never a torn or foreign one.
func TestMemoConcurrent(t *testing.T) {
	m := NewMemo[int, int](intHash)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g*311 + i) % 509
				if v := m.Get(k); v != nil && *v != k*3 {
					t.Errorf("Get(%d) = %d, want %d", k, *v, k*3)
					return
				}
				v := k * 3
				m.Put(k, &v)
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < 509; k++ {
		if v := m.Get(k); v == nil || *v != k*3 {
			t.Fatalf("final Get(%d) = %v", k, v)
		}
	}
}
