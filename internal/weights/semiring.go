// Package weights implements the weighting framework of Sections 3–4 of the
// paper: hypertree weighting functions (HWFs), vertex aggregation functions,
// and tree aggregation functions (TAFs) defined over semirings
// ⟨R⁺, ⊕, min, ⊥, ∞⟩. Weights are generic: any type W with a commutative,
// associative, closed Combine (⊕) whose minimum distributes over it can be
// plugged in, matching the paper's footnote that all results generalize to
// arbitrary semirings.
package weights

// Semiring describes ⟨R⁺,⊕,min,⊥,∞⟩ for a weight type W: Combine is ⊕
// (commutative, associative, closed), Zero is ⊥ (the neuter of ⊕ and
// absorbing element of min), and Less induces min (total order; min
// distributes over ⊕).
type Semiring[W any] interface {
	// Combine returns a ⊕ b.
	Combine(a, b W) W
	// Less reports a < b in the order inducing min.
	Less(a, b W) bool
	// Zero returns ⊥, the neuter element of ⊕.
	Zero() W
}

// SumFloat is the semiring ⟨R⁺, +, min, 0, ∞⟩ used by the cost TAF and by
// vertex aggregation functions.
type SumFloat struct{}

// Combine returns a + b.
func (SumFloat) Combine(a, b float64) float64 { return a + b }

// Less reports a < b.
func (SumFloat) Less(a, b float64) bool { return a < b }

// Zero returns 0.
func (SumFloat) Zero() float64 { return 0 }

// MaxFloat is the semiring ⟨R⁺, max, min, 0, ∞⟩: min distributes over max,
// so bottleneck-style TAFs (width, largest separator) fit the framework.
type MaxFloat struct{}

// Combine returns max(a, b).
func (MaxFloat) Combine(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Less reports a < b.
func (MaxFloat) Less(a, b float64) bool { return a < b }

// Zero returns 0, the neuter of max on R⁺.
func (MaxFloat) Zero() float64 { return 0 }

// LexVec is a weight for lexicographic TAFs (Example 3.1): index i holds the
// number of decomposition vertices with |λ| = i+1 (or, for separator
// variants, |sep| = i+1). Vectors combine by element-wise addition and
// compare lexicographically from the highest index down, which is exactly
// comparing the radix-B numbers Σ count_i · B^{i-1} of the paper without
// overflow for any B larger than every count.
type LexVec []int64

// LexSemiring is ⟨LexVec, +elementwise, lex-min, 0, ∞⟩. Width is the fixed
// vector length (the bound k of the decomposition class).
type LexSemiring struct{ Width int }

// Combine adds vectors element-wise.
func (s LexSemiring) Combine(a, b LexVec) LexVec {
	out := make(LexVec, s.Width)
	for i := 0; i < s.Width; i++ {
		var x, y int64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		out[i] = x + y
	}
	return out
}

// Less compares lexicographically, most significant (largest width) first.
func (s LexSemiring) Less(a, b LexVec) bool {
	for i := s.Width - 1; i >= 0; i-- {
		var x, y int64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		if x != y {
			return x < y
		}
	}
	return false
}

// Zero returns the zero vector.
func (s LexSemiring) Zero() LexVec { return make(LexVec, s.Width) }

// Radix evaluates the vector as the paper's radix-B number Σ v_i · B^i.
// It is only used for display and for checking Example 3.1's arithmetic;
// callers must ensure no overflow (fine for the small examples).
func (v LexVec) Radix(b int64) int64 {
	var out, pow int64 = 0, 1
	for i := 0; i < len(v); i++ {
		out += v[i] * pow
		pow *= b
	}
	return out
}
