package weights_test

// Integration of the TAF library with the solver (external test package to
// use core without an import cycle): each library TAF drives minimal-k-
// decomp to the value the exhaustive enumeration predicts.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/weights"
)

func buildQ0() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.MustEdge("s1", "A", "B", "D")
	b.MustEdge("s2", "B", "C", "D")
	b.MustEdge("s3", "B", "E")
	b.MustEdge("s4", "D", "G")
	b.MustEdge("s5", "E", "F", "G")
	b.MustEdge("s6", "E", "H")
	b.MustEdge("s7", "F", "I")
	b.MustEdge("s8", "G", "J")
	return b.MustBuild()
}

func TestWidthTAFFindsHypertreeWidth(t *testing.T) {
	h := buildQ0()
	res, err := core.MinimalK(h, 4, weights.WidthTAF(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Minimal width over kNFD with k=4 is hw(Q0) = 2.
	if res.Weight != 2 {
		t.Errorf("minimal width = %v, want 2", res.Weight)
	}
	if res.Decomp.Width() != 2 {
		t.Errorf("returned decomposition has width %d", res.Decomp.Width())
	}
}

func TestMaxSeparatorMinimal(t *testing.T) {
	h := buildQ0()
	res, err := core.MinimalK(h, 2, weights.MaxSeparatorTAF(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, ok, err := core.MinWeightExhaustive(h, 2, 0, weights.MaxSeparatorTAF())
	if err != nil || !ok {
		t.Fatal(err)
	}
	if res.Weight != ex {
		t.Errorf("minimal max separator = %v, exhaustive %v", res.Weight, ex)
	}
}

func TestLexSeparatorMinimalAgrees(t *testing.T) {
	h := hypergraph.Cycle(5)
	taf := weights.LexSeparatorTAF(4)
	res, err := core.MinimalK(h, 2, taf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, ok, err := core.MinWeightExhaustive(h, 2, 0, taf)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if taf.Semiring.Less(res.Weight, ex) || taf.Semiring.Less(ex, res.Weight) {
		t.Errorf("lexsep minimal %v != exhaustive %v", res.Weight, ex)
	}
}

// The HWF view of a TAF agrees with the TAF on algorithm outputs.
func TestHWFAgreesWithTAF(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(4), 5, 3)
		d, err := core.DecomposeK(h, 2, core.Options{})
		if err != nil {
			continue
		}
		if weights.OmegaW(d) != weights.WidthTAF().Evaluate(d) {
			t.Error("OmegaW disagrees with WidthTAF")
		}
		lexHWF := weights.OmegaLex(d)
		lexDirect := float64(weights.LexWeight(d))
		if lexHWF != lexDirect {
			t.Error("OmegaLex disagrees with LexWeight")
		}
	}
}

// Threshold and Minimal agree across library TAFs on the triangle.
func TestThresholdAgreesAcrossLibrary(t *testing.T) {
	h := hypergraph.Cycle(3)
	tafs := map[string]weights.TAF[float64]{
		"width":  weights.WidthTAF(),
		"count":  weights.CountVerticesTAF(),
		"maxsep": weights.MaxSeparatorTAF(),
	}
	for name, taf := range tafs {
		res, err := core.MinimalK(h, 2, taf, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := core.Threshold(h, 2, taf, res.Weight, core.Options{})
		if err != nil || !ok {
			t.Errorf("%s: threshold at the minimum should hold (%v, %v)", name, ok, err)
		}
	}
}
