package cost_test

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
)

// TestPlanSearchFamilyConcurrentHammer drives one PlanSearchFamily from 8
// goroutines mixing width bounds, sequential and parallel solves, shared
// and private cost models — the family's lazy per-k contexts, the shared
// StructIndex/solStruct caches, and the model's lock-free memo tables all
// under fire at once. Run with -race (CI does); every plan must match the
// single-threaded reference bit for bit.
func TestPlanSearchFamilyConcurrentHammer(t *testing.T) {
	cat := bench.Fig5StatsCatalog()
	fam, err := cost.NewPlanSearchFamily(cq.Q1(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := cost.EdgeEstimates(fam.FQ, cat)
	if err != nil {
		t.Fatal(err)
	}

	// Single-threaded reference per k, computed on a private family.
	type ref struct {
		cost   float64
		decomp string
	}
	refs := map[int]ref{}
	for k := 2; k <= 3; k++ {
		plan, err := cost.CostKDecomp(cq.Q1(), cat, k, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		refs[k] = ref{cost: plan.EstimatedCost, decomp: plan.Decomp.String()}
	}

	shared := cost.NewModelFromEstimates(fam.FQ, ests)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				k := 2 + (g+i)%2
				ps, err := fam.At(k)
				if err != nil {
					errs <- err
					return
				}
				model := shared
				if i%2 == 1 {
					model = cost.NewModelFromEstimates(fam.FQ, ests)
				}
				var plan *cost.Plan
				if g%2 == 0 {
					plan, err = ps.Run(model, core.Options{})
				} else {
					plan, err = ps.RunParallel(model, core.ParallelOptions{Workers: 1 + g%4})
				}
				if err != nil {
					errs <- err
					return
				}
				want := refs[k]
				if plan.EstimatedCost != want.cost || plan.Decomp.String() != want.decomp {
					t.Errorf("goroutine %d k=%d: plan diverged from reference (cost %v vs %v)",
						g, k, plan.EstimatedCost, want.cost)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
