package cost

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/hypergraph"
	"repro/internal/weights"
)

// Model builds the cost TAF cost_H(Q) = F(+,v*,e*) of Example 4.3 for a
// query and its catalog statistics:
//
//	v*(p) = estimated cost of evaluating E(p) = π_χ(p)(⋈_{h∈λ(p)} rel(h))
//	e*(p,p′) = estimated cost of the semijoin E(p) ⋉ E(p′)
//
// The model caches E(p) estimates per (λ, χ) label, and the join estimate
// of ⋈_{h∈λ} rel(h) per λ alone (many solution nodes share a λ with
// different χ, and the join chain is the expensive part). Nodes produced by
// the candidate-graph solvers carry an integer MemoKey, so both caches are
// probed on small integer keys without serializing the sets; nodes without
// a key (free-standing hypertrees) fall back to string keys.
//
// It is safe for concurrent use, and the hot read path takes no lock at
// all: both memo caches are lock-free-read tables (weights.Memo) probed
// with one hash and an atomic slot load, and the estimates themselves are
// int-keyed (IEst, indexed by the hypergraph's variable ids), so a
// memoized vertex or edge evaluation allocates nothing, takes no lock, and
// writes no shared cache line — level-parallel solves scale instead of
// serializing on a reader counter.
type Model struct {
	query   *cq.Query
	edgeEst map[string]Est // per atom name: base-relation stats as query vars

	nodes *weights.Memo[weights.MemoKey, nodeEst] // nodes stamped by a solver
	joins *weights.Memo[[2]int32, joinEst]        // per (gen, λ ID) join estimates

	// Cold-path state behind one mutex: the per-hypergraph int-keyed base
	// estimates (built once per hypergraph on first miss) and the string-key
	// fallback caches for nodes without a MemoKey.
	mu        sync.Mutex
	tables    map[*hypergraph.Hypergraph]*edgeTable
	cache     map[string]*nodeEst
	joinCache map[string]*joinEst
}

type nodeEst struct {
	est  IEst
	cost float64
}

// joinEst is the memoized result of joining all relations of a λ.
type joinEst struct {
	est  IEst
	cost float64
}

// edgeTable holds the base-relation estimates of one hypergraph, indexed by
// edge id with variable-id keys — the int-keyed form every chain join and
// projection in the hot path consumes. A nil entry means the predicate has
// no estimate.
type edgeTable struct {
	byEdge []*IEst
}

// NewModel prepares a cost model for q over analyzed statistics in cat.
// Atoms whose last variable is fresh (cq.WithFreshVariables) get a
// synthetic key attribute with selectivity = cardinality, matching the
// row-id realization in the engine.
func NewModel(q *cq.Query, cat *db.Catalog) (*Model, error) {
	ests, err := EdgeEstimates(q, cat)
	if err != nil {
		return nil, err
	}
	return NewModelFromEstimates(q, ests), nil
}

// NewModelFromEstimates builds a cost model directly from per-predicate
// base-relation estimates (each Est keyed by q's variable names), bypassing
// the catalog. This is how a plan cache runs the search on a canonicalized
// query: it computes EdgeEstimates on the caller's query, renames the
// estimate keys to canonical variables, and feeds them here.
func NewModelFromEstimates(q *cq.Query, ests map[string]Est) *Model {
	return &Model{
		query:   q,
		edgeEst: ests,
		nodes:   weights.NewMemo[weights.MemoKey, nodeEst](hashMemoKey),
		joins: weights.NewMemo[[2]int32, joinEst](func(k [2]int32) uint64 {
			return mix64(uint64(uint32(k[0]))<<32 | uint64(uint32(k[1])))
		}),
		tables:    map[*hypergraph.Hypergraph]*edgeTable{},
		cache:     map[string]*nodeEst{},
		joinCache: map[string]*joinEst{},
	}
}

// hashMemoKey mixes a MemoKey's three small ints into well-spread table
// bits (cheaper than the runtime's generic 12-byte struct hash).
func hashMemoKey(k weights.MemoKey) uint64 {
	return mix64(uint64(uint32(k.Lambda))<<32 | uint64(uint32(k.Chi))*0x9e3779b9 ^ uint64(uint32(k.Gen)))
}

// mix64 is splitmix64's finalizer: full-avalanche mixing of a 64-bit word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// EdgeEstimates computes, per atom name (alias, or predicate when
// unaliased — the name of the atom's hyperedge in H(Q)), the estimated
// statistics of the atom's base relation with attributes renamed to the
// query's variables: exactly the quantitative input the cost TAF consumes.
// Every alias of a base relation resolves to that relation's cardinality
// and selectivities, under the alias's own variable naming. It fails if
// some atom's relation has no statistics (run cat.AnalyzeAll first).
func EdgeEstimates(q *cq.Query, cat *db.Catalog) (map[string]Est, error) {
	out := map[string]Est{}
	for _, a := range q.Atoms {
		st := cat.Stats(a.Predicate)
		if st == nil {
			return nil, fmt.Errorf("cost: relation %s not analyzed", a.Predicate)
		}
		rel := cat.Get(a.Predicate)
		vars := a.Vars
		fresh := len(vars) > 0 && cq.IsFreshVariable(vars[len(vars)-1])
		baseVars := vars
		if fresh {
			baseVars = vars[:len(vars)-1]
		}
		var attrs []string
		mapping := map[string]string{}
		switch {
		case rel != nil && len(rel.Attrs) == len(baseVars):
			attrs = rel.Attrs
			for i, col := range rel.Attrs {
				mapping[col] = baseVars[i]
			}
		default:
			// Stats-only catalogs (e.g. the published Fig 5 numbers) keyed
			// directly by query variable names.
			attrs = baseVars
		}
		e := FromStats(st, attrs, mapping)
		if fresh {
			e.V[vars[len(vars)-1]] = e.Card
		}
		out[a.Name()] = e
	}
	return out, nil
}

// tableFor returns the int-keyed base estimates for h, converting the
// string-keyed edgeEst once per hypergraph. Only cold (memo-miss) paths
// reach it, so the mutex is uncontended in the steady state.
func (m *Model) tableFor(h *hypergraph.Hypergraph) *edgeTable {
	m.mu.Lock()
	tab, ok := m.tables[h]
	if !ok {
		tab = &edgeTable{byEdge: make([]*IEst, h.NumEdges())}
		for e := 0; e < h.NumEdges(); e++ {
			if est, ok := m.edgeEst[h.EdgeName(e)]; ok {
				ie := ToIEst(est, h.VarByName)
				tab.byEdge[e] = &ie
			}
		}
		m.tables[h] = tab
	}
	m.mu.Unlock()
	return tab
}

// estOf returns the estimate and evaluation cost of E(p) for a
// decomposition node, memoized on its (λ, χ) labels — on the node's
// integer MemoKey when the solver stamped one, else on a string key.
func (m *Model) estOf(p weights.NodeInfo) (*nodeEst, error) {
	var skey string
	if p.Memo.Valid() {
		if ne := m.nodes.Get(p.Memo); ne != nil {
			return ne, nil
		}
	} else {
		skey = nodeKey(p)
		m.mu.Lock()
		ne, ok := m.cache[skey]
		m.mu.Unlock()
		if ok {
			return ne, nil
		}
	}
	je, err := m.joinOf(p)
	if err != nil {
		return nil, err
	}
	// ChainJoin's cost already accounts for reading the inputs and writing
	// the join output; projecting onto χ(p) happens while writing it.
	ne := &nodeEst{est: ProjectI(je.est, p.Chi), cost: je.cost}
	if p.Memo.Valid() {
		m.nodes.Put(p.Memo, ne)
	} else {
		m.mu.Lock()
		m.cache[skey] = ne
		m.mu.Unlock()
	}
	return ne, nil
}

// joinOf returns the memoized greedy join estimate of ⋈_{h∈λ(p)} rel(h),
// which depends on λ alone: solution nodes sharing a λ across components
// (and across width bounds in a sweep sharing one StructIndex) pay the
// chain-join estimation once.
func (m *Model) joinOf(p weights.NodeInfo) (*joinEst, error) {
	var ikey [2]int32
	var skey string
	if p.Memo.Valid() {
		ikey = [2]int32{p.Memo.Gen, p.Memo.Lambda}
		if je := m.joins.Get(ikey); je != nil {
			return je, nil
		}
	} else {
		skey = lambdaKey(p.Lambda)
		m.mu.Lock()
		je, ok := m.joinCache[skey]
		m.mu.Unlock()
		if ok {
			return je, nil
		}
	}
	tab := m.tableFor(p.H)
	inputs := make([]IEst, 0, len(p.Lambda))
	for _, e := range p.Lambda {
		ie := tab.byEdge[e]
		if ie == nil {
			return nil, fmt.Errorf("cost: no estimate for predicate %s", p.H.EdgeName(e))
		}
		inputs = append(inputs, *ie)
	}
	joined, joinCost, err := ChainJoinI(inputs)
	if err != nil {
		return nil, err
	}
	je := &joinEst{est: joined, cost: joinCost}
	if p.Memo.Valid() {
		m.joins.Put(ikey, je)
	} else {
		m.mu.Lock()
		m.joinCache[skey] = je
		m.mu.Unlock()
	}
	return je, nil
}

func nodeKey(p weights.NodeInfo) string {
	var b strings.Builder
	for _, e := range p.Lambda {
		b.WriteString(strconv.Itoa(e))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(p.Chi.Key())
	return b.String()
}

func lambdaKey(lambda []int) string {
	var b strings.Builder
	for _, e := range lambda {
		b.WriteString(strconv.Itoa(e))
		b.WriteByte(',')
	}
	return b.String()
}

// Vertex is v*(p): the estimated cost of computing E(p).
func (m *Model) Vertex(p weights.NodeInfo) float64 {
	ne, err := m.estOf(p)
	if err != nil {
		// TAFs are total functions; unknown predicates make the node
		// prohibitively expensive rather than failing mid-algorithm.
		return 1e30
	}
	return ne.cost
}

// Edge is e*(p,p′): the estimated cost of the semijoin E(p) ⋉ E(p′) —
// SemijoinCost, which reads both inputs and depends on the cardinalities
// alone.
func (m *Model) Edge(parent, child weights.NodeInfo) float64 {
	pe, err1 := m.estOf(parent)
	ce, err2 := m.estOf(child)
	if err1 != nil || err2 != nil {
		return 1e30
	}
	return pe.est.Card + ce.est.Card
}

// TAF returns cost_H(Q) as a weights.TAF ready for core.MinimalK.
func (m *Model) TAF() weights.TAF[float64] {
	return weights.TAF[float64]{
		Semiring: weights.SumFloat{},
		Vertex:   m.Vertex,
		Edge:     m.Edge,
	}
}

// EstimateOf exposes the estimated statistics of E(p) (used by reports and
// examples to annotate plans with the $-costs of Figs 6 and 7).
func (m *Model) EstimateOf(p weights.NodeInfo) (Est, float64, error) {
	ne, err := m.estOf(p)
	if err != nil {
		return Est{}, 0, err
	}
	return ne.est.ToEst(p.H.VarName), ne.cost, nil
}
