package cost

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/weights"
)

// Model builds the cost TAF cost_H(Q) = F(+,v*,e*) of Example 4.3 for a
// query and its catalog statistics:
//
//	v*(p) = estimated cost of evaluating E(p) = π_χ(p)(⋈_{h∈λ(p)} rel(h))
//	e*(p,p′) = estimated cost of the semijoin E(p) ⋉ E(p′)
//
// The model caches E(p) estimates per (λ, χ) label, and the join estimate
// of ⋈_{h∈λ} rel(h) per λ alone (many solution nodes share a λ with
// different χ, and the join chain is the expensive part). Nodes produced by
// the candidate-graph solvers carry an integer MemoKey, so both caches are
// probed on small integer keys without serializing the sets; nodes without
// a key (free-standing hypertrees) fall back to string keys. It is safe for
// concurrent use (core.ParallelMinimalK evaluates the TAF from many
// goroutines).
type Model struct {
	query   *cq.Query
	edgeEst map[string]Est // per predicate: atom relation stats as query vars

	mu        sync.RWMutex
	icache    map[weights.MemoKey]nodeEst // nodes stamped by a solver
	joins     map[[2]int32]joinEst        // per (gen, λ ID) join estimates
	cache     map[string]nodeEst          // fallback: nodes without a MemoKey
	joinCache map[string]joinEst          // fallback, keyed on the λ indices
}

type nodeEst struct {
	est  Est
	cost float64
}

// joinEst is the memoized result of joining all relations of a λ.
type joinEst struct {
	est  Est
	cost float64
}

// NewModel prepares a cost model for q over analyzed statistics in cat.
// Atoms whose last variable is fresh (cq.WithFreshVariables) get a
// synthetic key attribute with selectivity = cardinality, matching the
// row-id realization in the engine.
func NewModel(q *cq.Query, cat *db.Catalog) (*Model, error) {
	ests, err := EdgeEstimates(q, cat)
	if err != nil {
		return nil, err
	}
	return NewModelFromEstimates(q, ests), nil
}

// NewModelFromEstimates builds a cost model directly from per-predicate
// base-relation estimates (each Est keyed by q's variable names), bypassing
// the catalog. This is how a plan cache runs the search on a canonicalized
// query: it computes EdgeEstimates on the caller's query, renames the
// estimate keys to canonical variables, and feeds them here.
func NewModelFromEstimates(q *cq.Query, ests map[string]Est) *Model {
	return &Model{
		query:     q,
		edgeEst:   ests,
		icache:    map[weights.MemoKey]nodeEst{},
		joins:     map[[2]int32]joinEst{},
		cache:     map[string]nodeEst{},
		joinCache: map[string]joinEst{},
	}
}

// EdgeEstimates computes, per atom predicate, the estimated statistics of
// the atom's base relation with attributes renamed to the query's variables:
// exactly the quantitative input the cost TAF consumes. It fails if some
// atom's relation has no statistics (run cat.AnalyzeAll first).
func EdgeEstimates(q *cq.Query, cat *db.Catalog) (map[string]Est, error) {
	out := map[string]Est{}
	for _, a := range q.Atoms {
		st := cat.Stats(a.Predicate)
		if st == nil {
			return nil, fmt.Errorf("cost: relation %s not analyzed", a.Predicate)
		}
		rel := cat.Get(a.Predicate)
		vars := a.Vars
		fresh := len(vars) > 0 && cq.IsFreshVariable(vars[len(vars)-1])
		baseVars := vars
		if fresh {
			baseVars = vars[:len(vars)-1]
		}
		var attrs []string
		mapping := map[string]string{}
		switch {
		case rel != nil && len(rel.Attrs) == len(baseVars):
			attrs = rel.Attrs
			for i, col := range rel.Attrs {
				mapping[col] = baseVars[i]
			}
		default:
			// Stats-only catalogs (e.g. the published Fig 5 numbers) keyed
			// directly by query variable names.
			attrs = baseVars
		}
		e := FromStats(st, attrs, mapping)
		if fresh {
			e.V[vars[len(vars)-1]] = e.Card
		}
		out[a.Predicate] = e
	}
	return out, nil
}

// estOf returns the estimate and evaluation cost of E(p) for a
// decomposition node, memoized on its (λ, χ) labels — on the node's
// integer MemoKey when the solver stamped one, else on a string key.
func (m *Model) estOf(p weights.NodeInfo) (nodeEst, error) {
	var skey string
	if p.Memo.Valid() {
		m.mu.RLock()
		ne, ok := m.icache[p.Memo]
		m.mu.RUnlock()
		if ok {
			return ne, nil
		}
	} else {
		skey = nodeKey(p)
		m.mu.RLock()
		ne, ok := m.cache[skey]
		m.mu.RUnlock()
		if ok {
			return ne, nil
		}
	}
	je, err := m.joinOf(p)
	if err != nil {
		return nodeEst{}, err
	}
	chiNames := make([]string, 0, p.Chi.Count())
	for v := p.Chi.NextSet(0); v >= 0; v = p.Chi.NextSet(v + 1) {
		chiNames = append(chiNames, p.H.VarName(v))
	}
	projected := Project(je.est, chiNames)
	// ChainJoin's cost already accounts for reading the inputs and writing
	// the join output; projecting onto χ(p) happens while writing it.
	ne := nodeEst{est: projected, cost: je.cost}
	m.mu.Lock()
	if p.Memo.Valid() {
		m.icache[p.Memo] = ne
	} else {
		m.cache[skey] = ne
	}
	m.mu.Unlock()
	return ne, nil
}

// joinOf returns the memoized greedy join estimate of ⋈_{h∈λ(p)} rel(h),
// which depends on λ alone: solution nodes sharing a λ across components
// (and across width bounds in a sweep sharing one StructIndex) pay the
// chain-join estimation once.
func (m *Model) joinOf(p weights.NodeInfo) (joinEst, error) {
	var ikey [2]int32
	var skey string
	if p.Memo.Valid() {
		ikey = [2]int32{p.Memo.Gen, p.Memo.Lambda}
		m.mu.RLock()
		je, ok := m.joins[ikey]
		m.mu.RUnlock()
		if ok {
			return je, nil
		}
	} else {
		skey = lambdaKey(p.Lambda)
		m.mu.RLock()
		je, ok := m.joinCache[skey]
		m.mu.RUnlock()
		if ok {
			return je, nil
		}
	}
	inputs := make([]Est, 0, len(p.Lambda))
	for _, e := range p.Lambda {
		pred := p.H.EdgeName(e)
		est, ok := m.edgeEst[pred]
		if !ok {
			return joinEst{}, fmt.Errorf("cost: no estimate for predicate %s", pred)
		}
		inputs = append(inputs, est)
	}
	joined, joinCost, err := ChainJoin(inputs)
	if err != nil {
		return joinEst{}, err
	}
	je := joinEst{est: joined, cost: joinCost}
	m.mu.Lock()
	if p.Memo.Valid() {
		m.joins[ikey] = je
	} else {
		m.joinCache[skey] = je
	}
	m.mu.Unlock()
	return je, nil
}

func nodeKey(p weights.NodeInfo) string {
	var b strings.Builder
	for _, e := range p.Lambda {
		b.WriteString(strconv.Itoa(e))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(p.Chi.Key())
	return b.String()
}

func lambdaKey(lambda []int) string {
	var b strings.Builder
	for _, e := range lambda {
		b.WriteString(strconv.Itoa(e))
		b.WriteByte(',')
	}
	return b.String()
}

// Vertex is v*(p): the estimated cost of computing E(p).
func (m *Model) Vertex(p weights.NodeInfo) float64 {
	ne, err := m.estOf(p)
	if err != nil {
		// TAFs are total functions; unknown predicates make the node
		// prohibitively expensive rather than failing mid-algorithm.
		return 1e30
	}
	return ne.cost
}

// Edge is e*(p,p′): the estimated cost of the semijoin E(p) ⋉ E(p′).
func (m *Model) Edge(parent, child weights.NodeInfo) float64 {
	pe, err1 := m.estOf(parent)
	ce, err2 := m.estOf(child)
	if err1 != nil || err2 != nil {
		return 1e30
	}
	return SemijoinCost(pe.est, ce.est)
}

// TAF returns cost_H(Q) as a weights.TAF ready for core.MinimalK.
func (m *Model) TAF() weights.TAF[float64] {
	return weights.TAF[float64]{
		Semiring: weights.SumFloat{},
		Vertex:   m.Vertex,
		Edge:     m.Edge,
	}
}

// EstimateOf exposes the estimated statistics of E(p) (used by reports and
// examples to annotate plans with the $-costs of Figs 6 and 7).
func (m *Model) EstimateOf(p weights.NodeInfo) (Est, float64, error) {
	ne, err := m.estOf(p)
	return ne.est, ne.cost, err
}
