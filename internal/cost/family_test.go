package cost_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
)

// TestSweepMatchesPerKCostKDecomp checks the family-backed Sweep returns
// exactly what independent CostKDecomp runs return per k: shared
// structural caches and a shared cost model must not change any plan or
// cost.
func TestSweepMatchesPerKCostKDecomp(t *testing.T) {
	q := cq.Q1()
	cat := bench.Fig5StatsCatalog()
	entries, err := cost.Sweep(q, cat, 2, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	for _, e := range entries {
		direct, err := cost.CostKDecomp(q, cat, e.K, core.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", e.K, err)
		}
		if !e.Feasible {
			t.Fatalf("k=%d: sweep infeasible but direct run planned", e.K)
		}
		if e.EstimatedCost != direct.EstimatedCost {
			t.Errorf("k=%d: sweep cost %v != direct %v", e.K, e.EstimatedCost, direct.EstimatedCost)
		}
		if e.Plan.Decomp.String() != direct.Decomp.String() {
			t.Errorf("k=%d: sweep plan differs from direct plan", e.K)
		}
	}
}

// TestPlanSearchFamilyReusesIndex checks At() returns one context per k and
// that contexts share the family's StructIndex.
func TestPlanSearchFamilyReusesIndex(t *testing.T) {
	fam, err := cost.NewPlanSearchFamily(cq.Q1(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fam.At(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fam.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("At(2) rebuilt the PlanSearch instead of reusing it")
	}
	c, err := fam.At(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.SC.Index() != c.SC.Index() {
		t.Error("contexts at different k do not share the StructIndex")
	}
	if a.SC.NumKVertices() >= c.SC.NumKVertices() {
		t.Errorf("Ψ(k=2)=%d should be < Ψ(k=3)=%d", a.SC.NumKVertices(), c.SC.NumKVertices())
	}
}
