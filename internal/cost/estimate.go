// Package cost implements the quantitative half of Section 6: textbook
// cardinality estimation over relation statistics (Garcia-Molina, Ullman,
// Widom; Ioannidis — the paper's refs [12,25]), hash-join/semijoin cost
// estimates, and the tree aggregation function cost_H(Q) = F(+,v*,e*) of
// Example 4.3 whose minimal decompositions are optimal query plans.
package cost

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/hypergraph"
)

// Est summarizes the estimated statistics of a relational expression: its
// cardinality and the estimated number of distinct values per attribute.
type Est struct {
	Card float64
	V    map[string]float64
}

// FromStats converts ANALYZE statistics to an Est, renaming attributes via
// mapping (relation column → query variable). Attributes missing a distinct
// count default to the cardinality (key-like).
func FromStats(st *db.TableStats, attrs []string, mapping map[string]string) Est {
	e := Est{Card: float64(st.Card), V: map[string]float64{}}
	for _, a := range attrs {
		name := a
		if m, ok := mapping[a]; ok {
			name = m
		}
		d, ok := st.Distinct[a]
		if !ok || d <= 0 {
			d = st.Card
		}
		v := float64(d)
		if v < 1 {
			v = 1
		}
		e.V[name] = v
	}
	return e
}

// Attrs returns the attribute names in sorted order (deterministic
// iteration for caching and rendering).
func (e Est) Attrs() []string {
	out := make([]string, 0, len(e.V))
	for a := range e.V {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// clampV caps every distinct estimate at the cardinality and floors at 1.
func (e Est) clampV() Est {
	for a, v := range e.V {
		if v > e.Card && e.Card >= 1 {
			e.V[a] = e.Card
		} else if v < 1 {
			e.V[a] = 1
		}
	}
	return e
}

// Join estimates a ⋈ b with the classic formula
//
//	|a ⋈ b| = |a|·|b| / Π_{A shared} max(V(a,A), V(b,A))
//
// and V(out, A) = min over the inputs containing A, capped at the output
// cardinality. With no shared attribute it degenerates to the cross
// product. The divisions run in sorted attribute order: floating-point
// division is not associative-friendly, so map-iteration order would make
// the estimate (and every plan cost built on it) differ in the last ULP
// from run to run.
func Join(a, b Est) Est {
	card := a.Card * b.Card
	shared := make([]string, 0, len(a.V))
	for attr := range a.V {
		if _, ok := b.V[attr]; ok {
			shared = append(shared, attr)
		}
	}
	sort.Strings(shared)
	for _, attr := range shared {
		card /= math.Max(a.V[attr], b.V[attr])
	}
	if card < 0 {
		card = 0
	}
	out := Est{Card: card, V: map[string]float64{}}
	for attr, va := range a.V {
		out.V[attr] = va
		if vb, ok := b.V[attr]; ok && vb < va {
			out.V[attr] = vb
		}
	}
	for attr, vb := range b.V {
		if _, ok := out.V[attr]; !ok {
			out.V[attr] = vb
		}
	}
	return out.clampV()
}

// Project estimates the deduplicating projection π_keep(a): the output
// cardinality is min(|a|, Π V(A)) under attribute independence.
func Project(a Est, keep []string) Est {
	prod := 1.0
	out := Est{V: map[string]float64{}}
	for _, attr := range keep {
		v, ok := a.V[attr]
		if !ok {
			v = 1
		}
		out.V[attr] = v
		if prod < 1e18 { // avoid overflow on wide schemas
			prod *= v
		}
	}
	out.Card = math.Min(a.Card, prod)
	return out.clampV()
}

// Semijoin estimates a ⋉ b: |a| scaled by the probability a tuple of a has
// a partner in b, approximated per shared attribute by
// min(1, V(b,A)/V(a,A)).
func Semijoin(a, b Est) Est {
	frac := 1.0
	shared := make([]string, 0, len(a.V))
	for attr := range a.V {
		if _, ok := b.V[attr]; ok && a.V[attr] > 0 {
			shared = append(shared, attr)
		}
	}
	sort.Strings(shared) // deterministic ULP, as in Join
	for _, attr := range shared {
		frac *= math.Min(1, b.V[attr]/a.V[attr])
	}
	out := Est{Card: a.Card * frac, V: map[string]float64{}}
	for attr, va := range a.V {
		out.V[attr] = va
	}
	return out.clampV()
}

// JoinCost is the estimated execution cost of a hash join: read both
// inputs, write the output.
func JoinCost(a, b Est) float64 { return a.Card + b.Card + Join(a, b).Card }

// IEst is the hot-path representation of Est: distinct-value estimates
// keyed by the hypergraph's dense variable indices instead of name strings.
// Vars holds the ascending variable ids that have an estimate and Vals the
// matching values, so the merge-style operations below allocate two small
// slices where the string-keyed versions allocate a map plus a sorted key
// slice — the maps were ~60% of the allocations of a structure-warm,
// model-cold plan. Ascending-id iteration replaces sorted-name iteration as
// the deterministic order for the non-associative float folds.
type IEst struct {
	Card float64
	Vars []int32
	Vals []float64
}

// ToIEst converts a string-keyed estimate to the int-keyed form using the
// variable numbering of varByName (hypergraph.VarByName). Attributes unknown
// to the numbering are dropped — they cannot appear in any χ or shared-join
// attribute of that hypergraph.
func ToIEst(e Est, varByName func(string) int) IEst {
	out := IEst{Card: e.Card, Vars: make([]int32, 0, len(e.V)), Vals: make([]float64, 0, len(e.V))}
	for name, val := range e.V {
		if v := varByName(name); v >= 0 {
			out.Vars = append(out.Vars, int32(v))
			out.Vals = append(out.Vals, val)
		}
	}
	sort.Sort(byVarID(out))
	return out
}

// ToEst converts back to the string-keyed boundary form (for EstimateOf,
// reports, and plan annotations).
func (a IEst) ToEst(varName func(int) string) Est {
	e := Est{Card: a.Card, V: make(map[string]float64, len(a.Vars))}
	for i, v := range a.Vars {
		e.V[varName(int(v))] = a.Vals[i]
	}
	return e
}

// byVarID sorts an IEst's parallel slices by ascending variable id.
type byVarID IEst

func (s byVarID) Len() int { return len(s.Vars) }
func (s byVarID) Swap(i, j int) {
	s.Vars[i], s.Vars[j] = s.Vars[j], s.Vars[i]
	s.Vals[i], s.Vals[j] = s.Vals[j], s.Vals[i]
}
func (s byVarID) Less(i, j int) bool { return s.Vars[i] < s.Vars[j] }

// clamp caps every distinct estimate at the cardinality and floors at 1,
// like Est.clampV.
func (a IEst) clamp() IEst {
	for i, v := range a.Vals {
		if v > a.Card && a.Card >= 1 {
			a.Vals[i] = a.Card
		} else if v < 1 {
			a.Vals[i] = 1
		}
	}
	return a
}

// JoinI is Join over int-keyed estimates: one merge pass over the two
// ascending id lists computes the shared-attribute divisions (in ascending
// id order) and the element-wise min/union of the V estimates.
func JoinI(a, b IEst) IEst {
	card := a.Card * b.Card
	out := IEst{
		Vars: make([]int32, 0, len(a.Vars)+len(b.Vars)),
		Vals: make([]float64, 0, len(a.Vars)+len(b.Vars)),
	}
	i, j := 0, 0
	for i < len(a.Vars) && j < len(b.Vars) {
		switch {
		case a.Vars[i] == b.Vars[j]:
			card /= math.Max(a.Vals[i], b.Vals[j])
			out.Vars = append(out.Vars, a.Vars[i])
			out.Vals = append(out.Vals, math.Min(a.Vals[i], b.Vals[j]))
			i++
			j++
		case a.Vars[i] < b.Vars[j]:
			out.Vars = append(out.Vars, a.Vars[i])
			out.Vals = append(out.Vals, a.Vals[i])
			i++
		default:
			out.Vars = append(out.Vars, b.Vars[j])
			out.Vals = append(out.Vals, b.Vals[j])
			j++
		}
	}
	out.Vars = append(out.Vars, a.Vars[i:]...)
	out.Vals = append(out.Vals, a.Vals[i:]...)
	out.Vars = append(out.Vars, b.Vars[j:]...)
	out.Vals = append(out.Vals, b.Vals[j:]...)
	if card < 0 {
		card = 0
	}
	out.Card = card
	return out.clamp()
}

// ProjectI is Project with the projection set given as a variable bitset:
// exactly the χ(p) projection of the cost TAF, with no name materialization.
// One deliberate contract difference from Project: keep-variables absent
// from the input are dropped, not added with V = 1 — in the model's use
// χ(p) ⊆ var(λ(p)) and every λ variable carries an estimate, so the case
// never arises, and a dropped variable keeps later merges honest instead
// of injecting a fabricated distinct count.
func ProjectI(a IEst, keep hypergraph.Varset) IEst {
	prod := 1.0
	out := IEst{Vars: make([]int32, 0, len(a.Vars)), Vals: make([]float64, 0, len(a.Vars))}
	for i, v := range a.Vars {
		if !keep.Has(int(v)) {
			continue
		}
		out.Vars = append(out.Vars, v)
		out.Vals = append(out.Vals, a.Vals[i])
		if prod < 1e18 { // avoid overflow on wide schemas
			prod *= a.Vals[i]
		}
	}
	out.Card = math.Min(a.Card, prod)
	return out.clamp()
}

// ChainJoinI is ChainJoin over int-keyed estimates: greedy minimum-output
// join order, returning the final estimate and the accumulated execution
// cost. The pair iteration order matches ChainJoin, so ties in the greedy
// choice resolve identically.
func ChainJoinI(inputs []IEst) (IEst, float64, error) {
	if len(inputs) == 0 {
		return IEst{}, 0, fmt.Errorf("cost: empty join chain")
	}
	if len(inputs) == 1 {
		return inputs[0], inputs[0].Card, nil
	}
	work := append([]IEst(nil), inputs...)
	total := 0.0
	for len(work) > 1 {
		bi, bj, bCard := 0, 1, math.Inf(1)
		var bJoined IEst
		have := false
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				if joined := JoinI(work[i], work[j]); !have || joined.Card < bCard {
					bi, bj, bCard = i, j, joined.Card
					bJoined = joined
					have = true
				}
			}
		}
		total += work[bi].Card + work[bj].Card + bJoined.Card
		work[bi] = bJoined
		work = append(work[:bj], work[bj+1:]...)
	}
	return work[0], total, nil
}

// SemijoinCost is the estimated execution cost of a hash semijoin: read
// both inputs (the output is at most |a| and is absorbed in the constant).
func SemijoinCost(a, b Est) float64 { return a.Card + b.Card }

// ChainJoin estimates joining a set of expressions with a greedy
// minimum-output order, returning the final Est and the accumulated
// execution cost (Σ per-step JoinCost). A single input costs one scan.
func ChainJoin(inputs []Est) (Est, float64, error) {
	if len(inputs) == 0 {
		return Est{}, 0, fmt.Errorf("cost: empty join chain")
	}
	work := append([]Est(nil), inputs...)
	if len(work) == 1 {
		return work[0], work[0].Card, nil
	}
	total := 0.0
	for len(work) > 1 {
		bi, bj, bCard := 0, 1, math.Inf(1)
		var bJoined Est
		have := false
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				if joined := Join(work[i], work[j]); !have || joined.Card < bCard {
					bi, bj, bCard = i, j, joined.Card
					bJoined = joined
					have = true
				}
			}
		}
		total += work[bi].Card + work[bj].Card + bJoined.Card
		work[bi] = bJoined
		work = append(work[:bj], work[bj+1:]...)
	}
	return work[0], total, nil
}
