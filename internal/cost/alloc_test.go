package cost_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
)

// TestWarmPlanAllocationCeiling pins the cost-model share of a
// structure-warm, model-cold plan: the planner's steady state for a known
// structure with fresh statistics (every stats change builds a new Model
// over the cached PlanSearch). With int-keyed estimates (IEst) the model
// accounts for ≈3.9k allocations on Q1 at k=3; string-keyed Est maps put it
// at ≈6.2k. The ceiling sits between the two, so it catches a regression to
// string-keyed estimate maps while leaving ~15% headroom for noise.
func TestWarmPlanAllocationCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under the race detector")
	}
	cat := bench.Fig5StatsCatalog()
	ps, err := cost.NewPlanSearch(cq.Q1(), 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := cost.EdgeEstimates(ps.FQ, cat)
	if err != nil {
		t.Fatal(err)
	}
	modelCold := func() {
		m := cost.NewModelFromEstimates(ps.FQ, ests)
		if _, err := ps.Run(m, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	modelCold() // populate the shared structural caches
	cold := testing.AllocsPerRun(10, modelCold)

	warmModel := cost.NewModelFromEstimates(ps.FQ, ests)
	if _, err := ps.Run(warmModel, core.Options{}); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(10, func() {
		if _, err := ps.Run(warmModel, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})

	if modelShare := cold - warm; modelShare > 4500 {
		t.Errorf("cost model allocates %.0f per structure-warm plan (cold %.0f − solver %.0f), ceiling 4500",
			modelShare, cold, warm)
	}
}
