package cost

import (
	"math"
	"testing"

	"repro/internal/db"
	"repro/internal/hypergraph"
)

func est(card float64, v map[string]float64) Est {
	return Est{Card: card, V: v}
}

func TestFromStats(t *testing.T) {
	st := &db.TableStats{Card: 100, Distinct: map[string]int{"c0": 10, "c1": 5}}
	e := FromStats(st, []string{"c0", "c1"}, map[string]string{"c0": "X", "c1": "Y"})
	if e.Card != 100 || e.V["X"] != 10 || e.V["Y"] != 5 {
		t.Errorf("FromStats = %+v", e)
	}
	// Missing distinct defaults to card.
	e2 := FromStats(&db.TableStats{Card: 50, Distinct: map[string]int{}}, []string{"A"}, nil)
	if e2.V["A"] != 50 {
		t.Errorf("default selectivity = %v, want 50", e2.V["A"])
	}
}

func TestJoinFormula(t *testing.T) {
	a := est(1000, map[string]float64{"X": 10, "Y": 20})
	b := est(500, map[string]float64{"Y": 50, "Z": 5})
	j := Join(a, b)
	// |a⋈b| = 1000·500 / max(20,50) = 10000.
	if j.Card != 10000 {
		t.Errorf("join card = %v, want 10000", j.Card)
	}
	if j.V["Y"] != 20 { // min of the two
		t.Errorf("V(Y) = %v, want 20", j.V["Y"])
	}
	if j.V["X"] != 10 || j.V["Z"] != 5 {
		t.Errorf("inherited V wrong: %+v", j.V)
	}
}

func TestJoinCrossProduct(t *testing.T) {
	a := est(10, map[string]float64{"X": 10})
	b := est(20, map[string]float64{"Y": 4})
	j := Join(a, b)
	if j.Card != 200 {
		t.Errorf("cross card = %v, want 200", j.Card)
	}
}

func TestJoinVClamping(t *testing.T) {
	a := est(4, map[string]float64{"X": 4, "Y": 4})
	b := est(4, map[string]float64{"Y": 4, "Z": 4})
	j := Join(a, b) // card 4
	for attr, v := range j.V {
		if v > j.Card {
			t.Errorf("V(%s) = %v exceeds card %v", attr, v, j.Card)
		}
	}
}

func TestProjectEstimate(t *testing.T) {
	a := est(1000, map[string]float64{"X": 10, "Y": 20, "Z": 30})
	p := Project(a, []string{"X", "Y"})
	// min(1000, 10·20) = 200.
	if p.Card != 200 {
		t.Errorf("project card = %v, want 200", p.Card)
	}
	if _, ok := p.V["Z"]; ok {
		t.Error("projected-out attribute retained")
	}
	// Projection never exceeds input cardinality.
	p2 := Project(a, []string{"X", "Y", "Z"})
	if p2.Card > a.Card {
		t.Errorf("projection grew: %v > %v", p2.Card, a.Card)
	}
}

func TestSemijoinEstimate(t *testing.T) {
	a := est(1000, map[string]float64{"X": 100})
	b := est(50, map[string]float64{"X": 10})
	sj := Semijoin(a, b)
	// fraction = min(1, 10/100) = 0.1 → 100 tuples.
	if sj.Card != 100 {
		t.Errorf("semijoin card = %v, want 100", sj.Card)
	}
	// Semijoin by a superset domain keeps everything.
	sj2 := Semijoin(b, a)
	if sj2.Card != 50 {
		t.Errorf("semijoin card = %v, want 50", sj2.Card)
	}
}

func TestCosts(t *testing.T) {
	a := est(100, map[string]float64{"X": 10})
	b := est(200, map[string]float64{"X": 20})
	if got := SemijoinCost(a, b); got != 300 {
		t.Errorf("semijoin cost = %v, want 300", got)
	}
	jc := JoinCost(a, b)
	if jc != 100+200+Join(a, b).Card {
		t.Errorf("join cost = %v", jc)
	}
}

func TestChainJoin(t *testing.T) {
	if _, _, err := ChainJoin(nil); err == nil {
		t.Error("empty chain should fail")
	}
	single := est(42, map[string]float64{"X": 10})
	e, c, err := ChainJoin([]Est{single})
	if err != nil || e.Card != 42 || c != 42 {
		t.Errorf("single chain: %v %v %v", e, c, err)
	}
	// Three-way chain: greedy order is deterministic; final Est is
	// independent of order for these formulas.
	a := est(100, map[string]float64{"X": 10, "Y": 10})
	b := est(100, map[string]float64{"Y": 10, "Z": 10})
	cc := est(100, map[string]float64{"Z": 10, "W": 10})
	e1, cost1, err := ChainJoin([]Est{a, b, cc})
	if err != nil {
		t.Fatal(err)
	}
	e2, cost2, err := ChainJoin([]Est{cc, a, b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1.Card-e2.Card) > 1e-9 {
		t.Errorf("final card depends on input order: %v vs %v", e1.Card, e2.Card)
	}
	if cost1 <= 0 || cost2 <= 0 {
		t.Error("chain costs should be positive")
	}
}

func TestEstAttrsSorted(t *testing.T) {
	e := est(1, map[string]float64{"B": 1, "A": 1, "C": 1})
	attrs := e.Attrs()
	if len(attrs) != 3 || attrs[0] != "A" || attrs[2] != "C" {
		t.Errorf("Attrs = %v", attrs)
	}
}

// The int-keyed operations must agree with the string-keyed boundary API
// on cardinalities and per-attribute estimates (division/multiplication
// order may differ in the last ULP, so compare with a tight relative
// tolerance).
func TestIEstMatchesEst(t *testing.T) {
	names := []string{"A", "B", "C", "D", "E"}
	varByName := func(n string) int {
		for i, m := range names {
			if m == n {
				return i
			}
		}
		return -1
	}
	approx := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
	}
	checkSame := func(t *testing.T, what string, se Est, ie IEst) {
		t.Helper()
		if !approx(se.Card, ie.Card) {
			t.Errorf("%s: card %v (Est) vs %v (IEst)", what, se.Card, ie.Card)
		}
		back := ie.ToEst(func(v int) string { return names[v] })
		if len(back.V) != len(se.V) {
			t.Fatalf("%s: attrs %v vs %v", what, back.V, se.V)
		}
		for n, v := range se.V {
			if !approx(back.V[n], v) {
				t.Errorf("%s: V(%s) %v (Est) vs %v (IEst)", what, n, v, back.V[n])
			}
		}
	}

	a := est(1000, map[string]float64{"A": 50, "B": 200, "C": 10})
	b := est(400, map[string]float64{"B": 40, "C": 30, "D": 400})
	c := est(90, map[string]float64{"D": 90, "E": 3})
	ia := ToIEst(a, varByName)
	ib := ToIEst(b, varByName)
	ic := ToIEst(c, varByName)

	checkSame(t, "convert", a, ia)
	// Join mutates its inputs' clamp in place on the string side; work on
	// fresh copies per comparison.
	checkSame(t, "join", Join(est(1000, map[string]float64{"A": 50, "B": 200, "C": 10}),
		est(400, map[string]float64{"B": 40, "C": 30, "D": 400})), JoinI(ia, ib))

	keep := hypergraph.NewVarset(len(names))
	keep.Set(varByName("B"))
	keep.Set(varByName("D"))
	checkSame(t, "project", Project(Join(a, b), []string{"B", "D"}), ProjectI(JoinI(ia, ib), keep))

	se, sc, err := ChainJoin([]Est{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	ie, icost, err := ChainJoinI([]IEst{ia, ib, ic})
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, "chain join", se, ie)
	if !approx(sc, icost) {
		t.Errorf("chain join cost %v (Est) vs %v (IEst)", sc, icost)
	}

	// Unknown attributes are dropped by the conversion, not misindexed.
	odd := ToIEst(est(5, map[string]float64{"A": 2, "Z": 9}), varByName)
	if len(odd.Vars) != 1 || odd.Vars[0] != 0 {
		t.Errorf("unknown attr survived conversion: %+v", odd)
	}
}
