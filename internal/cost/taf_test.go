package cost_test

// External test package: exercises the cost TAF and cost-k-decomp through
// the bench workloads (Fig 5 statistics) without an import cycle.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/weights"
)

func TestModelRequiresAnalyzedStats(t *testing.T) {
	q := cq.MustParse("ans :- r(A,B)")
	cat := db.NewCatalog()
	r := db.NewRelation("r", "x", "y")
	cat.Put(r)
	if _, err := cost.NewModel(q, cat); err == nil {
		t.Error("unanalyzed catalog should fail")
	}
}

func TestModelVertexAndEdge(t *testing.T) {
	q := cq.MustParse("ans :- r(A,B), s(B,C)")
	cat := db.NewCatalog()
	rng := rand.New(rand.NewSource(71))
	cat.Put(db.MustGenerate(rng, db.Spec{Name: "r", Attrs: []string{"x", "y"}, Card: 100,
		Distinct: map[string]int{"x": 10, "y": 10}}))
	cat.Put(db.MustGenerate(rng, db.Spec{Name: "s", Attrs: []string{"x", "y"}, Card: 200,
		Distinct: map[string]int{"x": 10, "y": 20}}))
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	m, err := cost.NewModel(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	// Node with λ={r}, χ={A,B}: v* = scan cost = 100.
	chi := h.NewVarset()
	chi.Set(h.VarByName("A"))
	chi.Set(h.VarByName("B"))
	p := weights.NodeInfo{H: h, Lambda: []int{h.EdgeByName("r")}, Chi: chi}
	if v := m.Vertex(p); v != 100 {
		t.Errorf("v*(scan r) = %v, want 100", v)
	}
	// Node with λ={s}, χ={B,C}.
	chi2 := h.NewVarset()
	chi2.Set(h.VarByName("B"))
	chi2.Set(h.VarByName("C"))
	p2 := weights.NodeInfo{H: h, Lambda: []int{h.EdgeByName("s")}, Chi: chi2}
	// e*(p,p2) = |E(p)| + |E(p2)| = 100 + 200.
	if e := m.Edge(p, p2); e != 300 {
		t.Errorf("e* = %v, want 300", e)
	}
	est, c, err := m.EstimateOf(p)
	if err != nil || est.Card != 100 || c != 100 {
		t.Errorf("EstimateOf = %+v %v %v", est, c, err)
	}
}

func TestCostKDecompProducesExecutablePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	cat, err := bench.BuildQ1Catalog(rng, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	q := cq.Q1()
	plan, err := cost.CostKDecomp(q, cat, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Decomp.IsComplete() {
		t.Fatal("plan decomposition must be complete")
	}
	if plan.EstimatedCost <= 0 {
		t.Errorf("estimated cost = %v", plan.EstimatedCost)
	}
	res, err := engine.EvalDecomposition(plan.Decomp, plan.Query, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvalNaive(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Answer(res) != (want.Card() > 0) {
		t.Error("plan answer differs from naive answer")
	}
}

func TestCostKDecompInfeasibleWidth(t *testing.T) {
	// The fresh-augmented triangle still has width 2; k=1 must fail.
	rng := rand.New(rand.NewSource(73))
	q := cq.MustParse("ans :- r(A,B), s(B,C), t(C,A)")
	cat := db.NewCatalog()
	for _, a := range q.Atoms {
		cat.Put(db.MustGenerate(rng, db.Spec{Name: a.Predicate, Attrs: []string{"x", "y"},
			Card: 10, Distinct: map[string]int{"x": 3, "y": 3}}))
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	_, err := cost.CostKDecomp(q, cat, 1, core.Options{})
	if !errors.Is(err, core.ErrNoDecomposition) {
		t.Errorf("expected ErrNoDecomposition, got %v", err)
	}
}

// Sweep on the published Fig 5 statistics: larger k never yields a worse
// plan (the search space only grows), matching the Section 6 narrative.
func TestSweepMonotone(t *testing.T) {
	cat := bench.Fig5StatsCatalog()
	entries, err := cost.Sweep(cq.Q1(), cat, 2, 5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, e := range entries {
		if !e.Feasible {
			t.Fatalf("k=%d infeasible", e.K)
		}
		if i > 0 && e.EstimatedCost > prev+1e-9 {
			t.Errorf("cost increased from k=%d (%v) to k=%d (%v)",
				entries[i-1].K, prev, e.K, e.EstimatedCost)
		}
		prev = e.EstimatedCost
	}
}

// The TAF's reported weight equals re-evaluating the TAF on the returned
// decomposition (consistency of cost accounting end to end).
func TestCostWeightConsistent(t *testing.T) {
	cat := bench.Fig5StatsCatalog()
	q := cq.Q1().WithFreshVariables()
	m, err := cost.NewModel(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.MinimalK(h, 3, m.TAF(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fold order differs between the solver and Evaluate, so compare with a
	// relative tolerance (float addition is not associative).
	got := m.TAF().Evaluate(res.Decomp)
	if diff := math.Abs(got - res.Weight); diff > 1e-9*math.Max(got, res.Weight) {
		t.Errorf("Evaluate = %v, reported = %v", got, res.Weight)
	}
}
