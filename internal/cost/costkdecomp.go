package cost

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
)

// cost-k-decomp (Section 6): the specialization of minimal-k-decomp to the
// TAF cost_H(Q). It augments the query with fresh variables so that every
// minimal NF decomposition is complete and translates directly into an
// executable query plan.

// Plan is the output of cost-k-decomp: a complete hypertree decomposition
// of the fresh-augmented query, the augmented query itself (which the
// engine evaluates; its output variables are the original ones), the
// estimated cost of the plan under cost_H(Q), and per-vertex subtree cost
// estimates (the "$" annotations of the paper's Figs 6 and 7).
type Plan struct {
	Query         *cq.Query // fresh-augmented
	Decomp        *hypertree.Decomposition
	EstimatedCost float64
	NodeCosts     map[*hypertree.Node]float64
}

// FormatAnnotated renders the plan tree with the Figs 6/7 "$" subtree-cost
// labels.
func (p *Plan) FormatAnnotated() string {
	h := p.Decomp.H
	var b strings.Builder
	var rec func(n *hypertree.Node, depth int)
	rec = func(n *hypertree.Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "λ=%s χ=%s", h.EdgesNames(n.Lambda), h.VarsetNames(n.Chi))
		if c, ok := p.NodeCosts[n]; ok {
			fmt.Fprintf(&b, "  $%.0f", c)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(p.Decomp.Root, 0)
	return b.String()
}

// CostKDecomp computes a [cost_H(Q), kNFD]-minimal hypertree decomposition
// of the fresh-augmented q over the statistics in cat, i.e. an optimal
// width-≤k query plan under the cost model. It returns
// core.ErrNoDecomposition if the augmented query has no width-k NF
// decomposition.
func CostKDecomp(q *cq.Query, cat *db.Catalog, k int, opts core.Options) (*Plan, error) {
	ps, err := NewPlanSearch(q, k, opts)
	if err != nil {
		return nil, err
	}
	model, err := NewModel(ps.FQ, cat)
	if err != nil {
		return nil, err
	}
	return ps.Run(model, opts)
}

// CostKDecompParallel is CostKDecomp solved with the level-parallel solver
// (core.ParallelMinimalKCtx): the same plan and cost, with structural
// discovery and weight evaluation fanned out over opts.Workers goroutines.
// This is the cold path a plan service takes when Workers > 1.
func CostKDecompParallel(q *cq.Query, cat *db.Catalog, k int, opts core.ParallelOptions) (*Plan, error) {
	ps, err := NewPlanSearch(q, k, opts.Options)
	if err != nil {
		return nil, err
	}
	model, err := NewModel(ps.FQ, cat)
	if err != nil {
		return nil, err
	}
	return ps.RunParallel(model, opts)
}

// PlanSearch is the reusable structural half of cost-k-decomp for one
// (query structure, k): the fresh-augmented query, its hypergraph H(Q⁺),
// and the enumerated k-vertex search context. Building one is the dominant
// fixed cost of planning; Run can then be invoked repeatedly — with
// different cost models (catalogs, statistics snapshots) — without
// re-paying the per-call allocations. A PlanSearch is immutable after
// construction and safe for concurrent use.
type PlanSearch struct {
	FQ *cq.Query              // fresh-augmented query
	H  *hypergraph.Hypergraph // H(FQ)
	SC *core.SearchContext    // k-vertices of H(FQ) at width k
}

// NewPlanSearch augments q with fresh variables, builds its hypergraph, and
// enumerates the width-k candidate space once.
func NewPlanSearch(q *cq.Query, k int, opts core.Options) (*PlanSearch, error) {
	fam, err := NewPlanSearchFamily(q, opts)
	if err != nil {
		return nil, err
	}
	return fam.At(k)
}

// PlanSearchFamily is a set of PlanSearch contexts over one query at
// different width bounds, sharing the fresh-augmented query, its
// hypergraph, and one core.StructIndex — so the component-interning table
// (a property of the hypergraph alone, not of k) is populated once and
// every width's solver reuses it. Sweep plans a whole k-range over one
// family instead of rebuilding the query, hypergraph, and component tables
// per k. Safe for concurrent use.
type PlanSearchFamily struct {
	FQ *cq.Query              // fresh-augmented query
	H  *hypergraph.Hypergraph // H(FQ)

	idx  *core.StructIndex
	opts core.Options
	mu   sync.Mutex
	byK  map[int]*PlanSearch
}

// NewPlanSearchFamily augments q with fresh variables and builds the shared
// structural index; contexts per width are enumerated lazily by At.
func NewPlanSearchFamily(q *cq.Query, opts core.Options) (*PlanSearchFamily, error) {
	fq := q.WithFreshVariables()
	h, err := fq.Hypergraph()
	if err != nil {
		return nil, err
	}
	return &PlanSearchFamily{
		FQ:   fq,
		H:    h,
		idx:  core.NewStructIndex(h),
		opts: opts,
		byK:  map[int]*PlanSearch{},
	}, nil
}

// At returns the family's PlanSearch for width bound k, enumerating that
// width's k-vertex space on first use.
func (f *PlanSearchFamily) At(k int) (*PlanSearch, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ps, ok := f.byK[k]; ok {
		return ps, nil
	}
	// Chaos: stall the enumeration while holding the family lock, so
	// concurrent cold misses on this structure pile up behind it.
	chaos.Hit(chaos.CostFamilyAt, chaos.Delay)
	sc, err := core.NewSearchContextShared(f.idx, k, f.opts)
	if err != nil {
		return nil, err
	}
	ps := &PlanSearch{FQ: f.FQ, H: f.H, SC: sc}
	f.byK[k] = ps
	return ps, nil
}

// Run executes the minimal-k-decomp search over the prepared context with
// the given cost model. The model must have been built for ps.FQ (or a
// query with identical variable names), e.g. with NewModel or
// NewModelFromEstimates.
func (ps *PlanSearch) Run(model *Model, opts core.Options) (*Plan, error) {
	res, err := core.MinimalKCtx(ps.SC, model.TAF(), opts)
	return ps.planFromResult(res, err)
}

// RunParallel is Run evaluated with the level-parallel solver
// (core.ParallelMinimalKCtx). The cost model is safe for concurrent TAF
// evaluation, so this is the entry point for cold misses on structures
// large enough to be worth fanning out. opts.Workers ≤ 0 uses GOMAXPROCS.
func (ps *PlanSearch) RunParallel(model *Model, opts core.ParallelOptions) (*Plan, error) {
	res, err := core.ParallelMinimalKCtx(ps.SC, model.TAF(), opts)
	return ps.planFromResult(res, err)
}

func (ps *PlanSearch) planFromResult(res *core.Result[float64], err error) (*Plan, error) {
	if err != nil {
		return nil, err
	}
	if !res.Decomp.IsComplete() {
		// Guaranteed by the fresh-variable trick; guard against regressions.
		return nil, fmt.Errorf("cost: minimal decomposition unexpectedly incomplete")
	}
	return &Plan{Query: ps.FQ, Decomp: res.Decomp, EstimatedCost: res.Weight,
		NodeCosts: res.NodeWeights}, nil
}

// KSweep runs CostKDecomp for every k in [kMin, kMax] and reports the
// estimated cost per k (the Fig 7 / Section 6 sweep: 3 521 741 at k=2 down
// to 854 867 at k=4,5 on the paper's statistics). Entries are NaN-free:
// infeasible widths are reported with Feasible=false.
type SweepEntry struct {
	K             int
	Feasible      bool
	EstimatedCost float64
	Plan          *Plan
}

// Sweep computes SweepEntry for k = kMin..kMax. All widths share one
// PlanSearchFamily — one fresh augmentation, one hypergraph, one cost
// model, one component-interning table — so each k pays only its own
// k-vertex enumeration and solve, not a from-scratch CostKDecomp.
func Sweep(q *cq.Query, cat *db.Catalog, kMin, kMax int, opts core.Options) ([]SweepEntry, error) {
	fam, err := NewPlanSearchFamily(q, opts)
	if err != nil {
		return nil, err
	}
	model, err := NewModel(fam.FQ, cat)
	if err != nil {
		return nil, err
	}
	var out []SweepEntry
	for k := kMin; k <= kMax; k++ {
		ps, err := fam.At(k)
		if err != nil {
			return nil, err
		}
		p, err := ps.Run(model, opts)
		switch {
		case errors.Is(err, core.ErrNoDecomposition):
			out = append(out, SweepEntry{K: k})
		case err != nil:
			return nil, err
		default:
			out = append(out, SweepEntry{K: k, Feasible: true, EstimatedCost: p.EstimatedCost, Plan: p})
		}
	}
	return out, nil
}
