package cache

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
)

// In-place re-keying after a stats-only catalog delta. A plan key is
//
//	<structure> \x00 k<width> \x00 <atom stats> \x00 <atom stats> ...
//
// and a stats-only change leaves the structure — and therefore the cached
// canonical plan's validity — untouched: only the trailing statistics
// segments move. Rather than letting every warm entry go cold (the old
// wholesale-PUT behaviour), the planner can recompute just the statistics
// component of each resident key against the new catalog and alias the
// entry under its new key. The structural part is losslessly parseable —
// canonical variable v<N> is exactly integer id N in first-occurrence
// order, and predicate names can never contain '(', '#', or ';' — so no
// side table from keys to queries is needed.

// splitPlanKey splits a full plan-cache key into its canonical structural
// key and width bound, discarding the statistics segments.
func splitPlanKey(key string) (structKey string, k int, err error) {
	parts := strings.Split(key, "\x00")
	if len(parts) < 2 || !strings.HasPrefix(parts[1], "k") {
		return "", 0, fmt.Errorf("cache: not a plan key")
	}
	k, err = strconv.Atoi(parts[1][1:])
	if err != nil || k < 1 {
		return "", 0, fmt.Errorf("cache: bad width in plan key: %q", parts[1])
	}
	return parts[0], k, nil
}

// parseCanonQuery rebuilds the canonical query a structural key renders.
// It inverts CanonicalizeQuery's key renderer: atoms "pred(ids);" or
// "pred#ord(ids);" followed by "|out:ids", with canonical variable names
// v<id>.
func parseCanonQuery(structKey string) (*cq.Query, error) {
	body, out, ok := strings.Cut(structKey, "|out:")
	if !ok {
		return nil, fmt.Errorf("cache: structural key missing output marker")
	}
	q := &cq.Query{Head: "ans"}
	for _, seg := range strings.Split(body, ";") {
		if seg == "" {
			continue
		}
		name, rest, ok := strings.Cut(seg, "(")
		args, isAtom := strings.CutSuffix(rest, ")")
		if !ok || !isAtom || name == "" {
			return nil, fmt.Errorf("cache: malformed atom %q in structural key", seg)
		}
		a := cq.Atom{Predicate: name}
		if pred, ord, aliased := strings.Cut(name, "#"); aliased {
			if pred == "" || ord == "" {
				return nil, fmt.Errorf("cache: malformed alias %q in structural key", name)
			}
			a.Predicate, a.Alias = pred, name
		}
		if args != "" {
			for _, id := range strings.Split(args, ",") {
				if _, err := strconv.Atoi(id); err != nil {
					return nil, fmt.Errorf("cache: bad variable id %q in structural key", id)
				}
				a.Vars = append(a.Vars, "v"+id)
			}
		}
		q.Atoms = append(q.Atoms, a)
	}
	if len(q.Atoms) == 0 {
		return nil, fmt.Errorf("cache: structural key has no atoms")
	}
	if out != "" {
		for _, id := range strings.Split(out, ",") {
			if _, err := strconv.Atoi(id); err != nil {
				return nil, fmt.Errorf("cache: bad output id %q in structural key", id)
			}
			q.Out = append(q.Out, "v"+id)
		}
	}
	return q, nil
}

// PlanKeyRelations lists the distinct base relations a plan-cache key's
// structure references, in canonical atom order. This is what lets the
// serving tier classify derived artifacts by the relations a delta touched.
func PlanKeyRelations(key string) ([]string, error) {
	structKey, _, err := splitPlanKey(key)
	if err != nil {
		return nil, err
	}
	q, err := parseCanonQuery(structKey)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(q.Atoms))
	var out []string
	for _, a := range q.Atoms {
		if !seen[a.Predicate] {
			seen[a.Predicate] = true
			out = append(out, a.Predicate)
		}
	}
	return out, nil
}

// RestatPlanKey recomputes the statistics component of a plan-cache key
// against cat, keeping the structural component and width bound: the key
// the same canonical structure would probe under the new statistics. Every
// referenced relation must exist (and be analyzed) in cat.
func RestatPlanKey(key string, cat *db.Catalog) (string, error) {
	structKey, k, err := splitPlanKey(key)
	if err != nil {
		return "", err
	}
	q, err := parseCanonQuery(structKey)
	if err != nil {
		return "", err
	}
	qc, err := CanonicalizeQuery(q)
	if err != nil {
		return "", err
	}
	if qc.Key != structKey {
		// The parsed query must canonicalize back to the exact structural
		// key, or the recomputed statistics would attach to permuted atoms.
		return "", fmt.Errorf("cache: structural key %q is not a canonical fixpoint", structKey)
	}
	ests, err := cost.EdgeEstimates(q.WithFreshVariables(), cat)
	if err != nil {
		return "", err
	}
	return planKey(qc, k, canonicalizeEstimates(ests, qc)), nil
}

// RekeyPlans aliases resident plan entries onto the keys they answer to
// under cat's statistics, after a delta changed only the statistics of
// statsChanged. Entries whose structure references none of statsChanged
// keep their exact key (still warm, nothing to do); entries referencing a
// relation in dataChanged are skipped — their decomposition was optimized
// against data that no longer exists, so a fresh search is the right call
// and the stale entry simply ages out of the LRU. For the rest, the entry
// is added under its recomputed key while the old key is left to age out:
// in shared-planner deployments another tenant with the old statistics may
// still be probing it. An entry already resident at the new key wins over
// the alias (it was computed for exactly those statistics). Returns how
// many entries were re-keyed.
//
// The aliased plan is the canonical decomposition chosen under the old
// statistics: still a valid plan for the structure, possibly no longer the
// cost-optimal one. That is the point of the stats-only path — trading
// bounded cost staleness for fleet warmth instead of recomputing the world.
func (p *Planner) RekeyPlans(cat *db.Catalog, statsChanged, dataChanged []string) (rekeyed int) {
	if len(statsChanged) == 0 {
		return 0
	}
	statsSet := make(map[string]bool, len(statsChanged))
	for _, r := range statsChanged {
		statsSet[r] = true
	}
	dataSet := make(map[string]bool, len(dataChanged))
	for _, r := range dataChanged {
		dataSet[r] = true
	}
	for _, key := range p.plans.keys() {
		rels, err := PlanKeyRelations(key)
		if err != nil {
			continue
		}
		touchesStats, touchesData := false, false
		for _, r := range rels {
			touchesStats = touchesStats || statsSet[r]
			touchesData = touchesData || dataSet[r]
		}
		if !touchesStats || touchesData {
			continue
		}
		newKey, err := RestatPlanKey(key, cat)
		if err != nil || newKey == key {
			continue
		}
		if _, ok := p.plans.peek(newKey); ok {
			continue
		}
		v, ok := p.plans.peek(key)
		if !ok {
			continue
		}
		p.plans.add(newKey, v)
		rekeyed++
	}
	return rekeyed
}
