package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRU(2, 1)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok { // bump a to most-recent
		t.Fatal("a missing")
	}
	c.add("c", 3) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c should be resident")
	}
	st := c.stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

func TestLRUShardsClampedToCapacity(t *testing.T) {
	c := newLRU(2, 16) // tiny cache, default-ish shard count
	c.add("a", 1)
	c.add("b", 2)
	c.add("c", 3)
	if n := c.len(); n > 2 {
		t.Fatalf("entries = %d exceeds capacity 2 (shards not clamped)", n)
	}
	if c.stats().Evictions == 0 {
		t.Fatal("expected at least one eviction at capacity 2")
	}
}

func TestSingleflightPanicReleasesKey(t *testing.T) {
	var g flightGroup
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the computing caller")
			}
		}()
		g.do("k", func() (any, error) { panic("boom") })
	}()
	// The key must not be left registered to a dead flight: a fresh call
	// computes normally instead of blocking forever.
	v, _, err := g.do("k", func() (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("post-panic do = %v, %v; want 7, nil", v, err)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(4, 2)
	c.add("k", 1)
	c.add("k", 2)
	v, ok := c.get("k")
	if !ok || v.(int) != 2 {
		t.Fatalf("got %v,%v want 2,true", v, ok)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestLRUCountersConcurrent(t *testing.T) {
	const workers, iters = 8, 500
	c := newLRU(1024, 16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("key-%d", i%64)
				if _, ok := c.get(key); !ok {
					c.add(key, i)
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.stats()
	if st.Hits+st.Misses != workers*iters {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", st.Hits, st.Misses, st.Hits+st.Misses, workers*iters)
	}
	if st.Entries != 64 {
		t.Fatalf("entries = %d, want 64", st.Entries)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 (capacity ample)", st.Evictions)
	}
}

func TestSingleflightDedup(t *testing.T) {
	var g flightGroup
	var mu sync.Mutex
	runs := 0
	const callers = 16
	var ready, wg sync.WaitGroup
	ready.Add(callers)
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ready.Done()
			v, _, err := g.do("k", func() (any, error) {
				mu.Lock()
				runs++
				mu.Unlock()
				// Hold the flight open until every caller has launched and
				// had ample time to join it, so all 16 share this one run.
				ready.Wait()
				time.Sleep(50 * time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if runs != 1 {
		t.Fatalf("compute ran %d times, want 1", runs)
	}
	for i, v := range results {
		if v.(int) != 42 {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
}
