package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/hypergraph"
)

func mustParseQuery(t *testing.T, s string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return q
}

func TestCanonicalizeQueryRenamingInvariance(t *testing.T) {
	base := mustParseQuery(t, "ans(X,Z) :- r(X,Y), s(Y,Z), t(Z,X).")
	renamed := mustParseQuery(t, "ans(A,C) :- r(A,B), s(B,C), t(C,A).")
	reordered := mustParseQuery(t, "ans(Q1,Q3) :- t(Q3,Q1), r(Q1,Q2), s(Q2,Q3).")

	kb, err := CanonicalizeQuery(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*cq.Query{renamed, reordered} {
		kq, err := CanonicalizeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if kq.Key != kb.Key {
			t.Errorf("renamed query %s got key %q, want %q", q, kq.Key, kb.Key)
		}
	}

	// Round trip: FromCanon must invert ToCanon.
	for orig, canon := range kb.ToCanon {
		if kb.FromCanon[canon] != orig {
			t.Errorf("FromCanon[%q] = %q, want %q", canon, kb.FromCanon[canon], orig)
		}
	}
}

func TestCanonicalizeQueryDistinguishesStructure(t *testing.T) {
	base := mustParseQuery(t, "ans(X,Z) :- r(X,Y), s(Y,Z), t(Z,X).")
	variants := []*cq.Query{
		// Different join structure (path instead of triangle).
		mustParseQuery(t, "ans(X,Z) :- r(X,Y), s(Y,Z), t(Z,W)."),
		// Different predicate set.
		mustParseQuery(t, "ans(X,Z) :- r(X,Y), s(Y,Z), u(Z,X)."),
		// Different output variables.
		mustParseQuery(t, "ans(X) :- r(X,Y), s(Y,Z), t(Z,X)."),
		// Self-join pattern on r's columns.
		mustParseQuery(t, "ans(X,Z) :- r(X,X), s(X,Z), t(Z,X)."),
	}
	kb, err := CanonicalizeQuery(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range variants {
		kq, err := CanonicalizeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if kq.Key == kb.Key {
			t.Errorf("structurally different query %s collided with %s", q, base)
		}
	}
}

func TestCanonicalizeQueryRejectsDuplicatePredicates(t *testing.T) {
	q := &cq.Query{Head: "ans", Atoms: []cq.Atom{
		{Predicate: "r", Vars: []string{"X", "Y"}},
		{Predicate: "r", Vars: []string{"Y", "Z"}},
	}}
	if _, err := CanonicalizeQuery(q); err == nil {
		t.Fatal("want error for duplicate predicates")
	}
}

// renameHypergraph rebuilds h with variables renamed by an arbitrary
// bijection and edges inserted in a shuffled order.
func renameHypergraph(rng *rand.Rand, h *hypergraph.Hypergraph) *hypergraph.Hypergraph {
	names := make(map[int]string, h.NumVars())
	perm := rng.Perm(h.NumVars())
	for v := 0; v < h.NumVars(); v++ {
		names[v] = fmt.Sprintf("W%d", perm[v])
	}
	b := hypergraph.NewBuilder()
	for _, e := range rng.Perm(h.NumEdges()) {
		var vs []string
		h.EdgeVars(e).ForEach(func(v int) { vs = append(vs, names[v]) })
		// Shuffle within-edge order too; edges are sets.
		rng.Shuffle(len(vs), func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
		b.MustEdge(h.EdgeName(e), vs...)
	}
	return b.MustBuild()
}

func TestCanonicalizeHypergraphRenamingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	corpus := []*hypergraph.Hypergraph{
		hypergraph.Cycle(5),
		hypergraph.Path(6),
		hypergraph.Grid(3, 3),
		hypergraph.Clique(5),
	}
	for i := 0; i < 20; i++ {
		corpus = append(corpus, hypergraph.Random(rng, 4+rng.Intn(6), 8+rng.Intn(6), 2+rng.Intn(3)))
		corpus = append(corpus, hypergraph.RandomAcyclic(rng, 3+rng.Intn(6), 2+rng.Intn(4)))
	}
	for i, h := range corpus {
		want := CanonicalizeHypergraph(h).Key
		for trial := 0; trial < 3; trial++ {
			got := CanonicalizeHypergraph(renameHypergraph(rng, h)).Key
			if got != want {
				t.Fatalf("corpus[%d] trial %d: renamed copy changed canonical key\nwant %q\ngot  %q", i, trial, want, got)
			}
		}
	}
}

// TestCanonicalizeHypergraphCollisionSanity: across a generator corpus of
// pairwise structurally distinct hypergraphs, canonical keys never collide.
// (The key is a full serialization of the canonical form, so a collision
// would mean the canonicalization conflated two different structures.)
func TestCanonicalizeHypergraphCollisionSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var corpus []*hypergraph.Hypergraph
	for n := 3; n <= 12; n++ {
		corpus = append(corpus, hypergraph.Cycle(n), hypergraph.Path(n+1), hypergraph.Clique(min(n, 7)))
	}
	for r := 2; r <= 4; r++ {
		for c := 2; c <= 4; c++ {
			corpus = append(corpus, hypergraph.Grid(r, c))
		}
	}
	for i := 0; i < 30; i++ {
		corpus = append(corpus, hypergraph.Random(rng, 5+i%7, 10, 2+i%3))
	}
	seen := map[string]int{}
	for i, h := range corpus {
		key := CanonicalizeHypergraph(h).Key
		if j, dup := seen[key]; dup {
			// A collision is only acceptable if the canonical rebuilds are
			// genuinely identical structures (e.g. Clique(7) repeated above).
			if CanonicalizeHypergraph(corpus[j]).H.String() != CanonicalizeHypergraph(h).H.String() {
				t.Fatalf("corpus[%d] and corpus[%d] collided on key %q but differ structurally", j, i, key)
			}
			continue
		}
		seen[key] = i
	}
}

func TestCanonicalizeHypergraphMapsAreIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		h := hypergraph.Random(rng, 6, 9, 3)
		hc := CanonicalizeHypergraph(h)
		if hc.H.NumVars() != h.NumVars() || hc.H.NumEdges() != h.NumEdges() {
			t.Fatalf("canonical rebuild changed size: %d/%d vs %d/%d",
				hc.H.NumVars(), hc.H.NumEdges(), h.NumVars(), h.NumEdges())
		}
		// Every canonical edge must map to a caller edge with the same image
		// variable set under VarFromCanon.
		for ce := 0; ce < hc.H.NumEdges(); ce++ {
			e := hc.EdgeFromCanon[ce]
			if hc.H.EdgeName(ce) != h.EdgeName(e) {
				t.Fatalf("edge map broke names: %s vs %s", hc.H.EdgeName(ce), h.EdgeName(e))
			}
			want := h.EdgeVars(e)
			got := h.NewVarset()
			hc.H.EdgeVars(ce).ForEach(func(cv int) { got.Set(hc.VarFromCanon[cv]) })
			if !got.Equal(want) {
				t.Fatalf("edge %s: mapped varset %v != %v", h.EdgeName(e), got, want)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
