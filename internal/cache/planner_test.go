package cache

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/hypergraph"
)

// cycleCatalog builds an analyzed catalog for the 4-cycle query
// ans(A,C) :- r(A,B), s(B,C), t(C,D), u(D,A).
func cycleCatalog(t testing.TB, seed int64) *db.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	specs := []db.Spec{
		{Name: "r", Attrs: []string{"a", "b"}, Card: 40, Distinct: map[string]int{"a": 12, "b": 10}},
		{Name: "s", Attrs: []string{"b", "c"}, Card: 35, Distinct: map[string]int{"b": 10, "c": 9}},
		{Name: "t", Attrs: []string{"c", "d"}, Card: 30, Distinct: map[string]int{"c": 9, "d": 8}},
		{Name: "u", Attrs: []string{"d", "a"}, Card: 25, Distinct: map[string]int{"d": 8, "a": 12}},
	}
	cat, err := db.GenerateCatalog(rng, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func cycleQuery(t testing.TB, vars [4]string) *cq.Query {
	t.Helper()
	q, err := cq.Parse(fmt.Sprintf("ans(%s,%s) :- r(%s,%s), s(%s,%s), t(%s,%s), u(%s,%s).",
		vars[0], vars[2], vars[0], vars[1], vars[1], vars[2], vars[2], vars[3], vars[3], vars[0]))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestPlannerMatchesColdPath: a cached plan (first call: cold; second call:
// hit, remapped) must agree with cost.CostKDecomp in estimated cost, width,
// and — decisively — in the relation the engine computes from it.
func TestPlannerMatchesColdPath(t *testing.T) {
	cat := cycleCatalog(t, 1)
	q := cycleQuery(t, [4]string{"A", "B", "C", "D"})
	p := NewPlanner(Options{})

	direct, err := cost.CostKDecomp(q, cat, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // round 0 populates, round 1 hits
		cached, err := p.Plan(q, cat, 2)
		if err != nil {
			t.Fatal(err)
		}
		if cached.EstimatedCost != direct.EstimatedCost {
			t.Fatalf("round %d: estimated cost %v != direct %v", round, cached.EstimatedCost, direct.EstimatedCost)
		}
		if cached.Decomp.Width() != direct.Decomp.Width() {
			t.Fatalf("round %d: width %d != %d", round, cached.Decomp.Width(), direct.Decomp.Width())
		}
		if err := cached.Decomp.Validate(); err != nil {
			t.Fatalf("round %d: invalid decomposition: %v", round, err)
		}
		if !cached.Decomp.IsComplete() {
			t.Fatalf("round %d: decomposition not complete", round)
		}
		got, err := engine.EvalDecomposition(cached.Decomp, cached.Query, cat, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.EvalNaive(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("round %d: cached plan computed a different relation", round)
		}
	}
	st := p.Stats()
	if st.Plans.Hits != 1 || st.Plans.Misses != 1 || st.Plans.Computations != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 computation", st.Plans)
	}
}

// TestPlannerRenamedQueryHitsAndEvaluates: a variable-renamed copy of a
// cached structure must hit the cache, and the remapped plan must evaluate
// correctly under the *renamed* query's names.
func TestPlannerRenamedQueryHitsAndEvaluates(t *testing.T) {
	cat := cycleCatalog(t, 2)
	p := NewPlanner(Options{})
	if _, err := p.Plan(cycleQuery(t, [4]string{"A", "B", "C", "D"}), cat, 2); err != nil {
		t.Fatal(err)
	}
	renamed := cycleQuery(t, [4]string{"P", "Q", "R", "S"})
	plan, err := p.Plan(renamed, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Plans.Hits != 1 {
		t.Fatalf("renamed query missed the cache: %+v", st.Plans)
	}
	// The remapped plan must speak the renamed query's variables.
	for _, v := range plan.Query.Out {
		if v != "P" && v != "R" {
			t.Fatalf("remapped Out = %v, want [P R]", plan.Query.Out)
		}
	}
	got, err := engine.EvalDecomposition(plan.Decomp, plan.Query, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.EvalNaive(renamed, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("remapped plan computed a different relation than naive evaluation")
	}
}

// TestPlannerConcurrentStats: stats must stay exact under concurrent load —
// every call is a hit or a miss, and singleflight collapses the cold
// stampede for one structure into one computation.
func TestPlannerConcurrentStats(t *testing.T) {
	cat := cycleCatalog(t, 3)
	p := NewPlanner(Options{})
	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	costs := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker uses its own variable names: every request is a
			// distinct renaming of the same structure.
			vars := [4]string{
				fmt.Sprintf("A%d", w), fmt.Sprintf("B%d", w),
				fmt.Sprintf("C%d", w), fmt.Sprintf("D%d", w),
			}
			for i := 0; i < iters; i++ {
				plan, err := p.Plan(cycleQuery(t, vars), cat, 2)
				if err != nil {
					t.Error(err)
					return
				}
				costs[w] = plan.EstimatedCost
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	total := st.Plans.Hits + st.Plans.Misses
	if total != workers*iters {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", st.Plans.Hits, st.Plans.Misses, total, workers*iters)
	}
	if st.Plans.Computations != 1 {
		t.Fatalf("computations = %d, want 1 (singleflight + cache)", st.Plans.Computations)
	}
	if st.Plans.Hits < workers*(iters-1) {
		t.Fatalf("hits = %d, want ≥ %d", st.Plans.Hits, workers*(iters-1))
	}
	for w := 1; w < workers; w++ {
		if costs[w] != costs[0] {
			t.Fatalf("worker %d saw cost %v, worker 0 saw %v", w, costs[w], costs[0])
		}
	}
}

// TestPlannerStatsChangeInvalidates: statistics are part of the key, so
// re-ANALYZE-ing with different data must miss rather than serve stale
// plans.
func TestPlannerStatsChangeInvalidates(t *testing.T) {
	cat := cycleCatalog(t, 4)
	p := NewPlanner(Options{})
	q := cycleQuery(t, [4]string{"A", "B", "C", "D"})
	if _, err := p.Plan(q, cat, 2); err != nil {
		t.Fatal(err)
	}
	// Replace r with a much larger relation and re-analyze.
	rng := rand.New(rand.NewSource(99))
	bigger, err := db.Generate(rng, db.Spec{Name: "r", Attrs: []string{"a", "b"}, Card: 400,
		Distinct: map[string]int{"a": 120, "b": 100}})
	if err != nil {
		t.Fatal(err)
	}
	cat.Put(bigger)
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(q, cat, 2); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Plans.Misses != 2 || st.Plans.Hits != 0 {
		t.Fatalf("stats after stats-change = %+v, want 2 misses / 0 hits", st.Plans)
	}
	// The structural search context is shared between the two misses.
	if st.Searches.Computations != 1 {
		t.Fatalf("search contexts built = %d, want 1 (reused across catalogs)", st.Searches.Computations)
	}
}

// TestPlannerDecomposeCachedAndRemapped: Decompose must hit for renamed
// hypergraphs and return decompositions valid for the caller's hypergraph.
func TestPlannerDecomposeCachedAndRemapped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPlanner(Options{})
	h := hypergraph.Cycle(6)
	d1, err := p.Decompose(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Validate(); err != nil {
		t.Fatal(err)
	}
	if d1.Width() > 2 {
		t.Fatalf("width %d > 2", d1.Width())
	}
	for trial := 0; trial < 3; trial++ {
		h2 := renameHypergraph(rng, h)
		d2, err := p.Decompose(h2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if d2.H != h2 {
			t.Fatal("remapped decomposition does not reference the caller's hypergraph")
		}
		if err := d2.Validate(); err != nil {
			t.Fatalf("trial %d: remapped decomposition invalid: %v", trial, err)
		}
		if d2.Width() > 2 {
			t.Fatalf("trial %d: width %d > 2", trial, d2.Width())
		}
	}
	st := p.Stats()
	if st.Decompositions.Hits != 3 || st.Decompositions.Computations != 1 {
		t.Fatalf("decompose stats = %+v, want 3 hits / 1 computation", st.Decompositions)
	}
}

// TestPlannerNoDecomposition: infeasible widths surface the usual error and
// are not cached as successes.
func TestPlannerNoDecomposition(t *testing.T) {
	p := NewPlanner(Options{})
	h := hypergraph.Clique(6) // hw 3 as a graph; width 1 is infeasible
	if _, err := p.Decompose(h, 1); err == nil {
		t.Fatal("want ErrNoDecomposition")
	}
	if st := p.Stats(); st.Decompositions.Entries != 0 {
		t.Fatalf("failure was cached: %+v", st.Decompositions)
	}
}

// TestPlannerEviction: a capacity-bounded planner evicts and counts it.
func TestPlannerEviction(t *testing.T) {
	cat := cycleCatalog(t, 6)
	p := NewPlanner(Options{Capacity: 2, Shards: 1})
	// Three structurally different queries over subsets of the catalog.
	queries := []string{
		"ans(A) :- r(A,B), s(B,C).",
		"ans(A) :- r(A,B), t(B,C).",
		"ans(A) :- r(A,B), u(B,C).",
	}
	for _, s := range queries {
		q, err := cq.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Plan(q, cat, 2); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Plans.Evictions == 0 {
		t.Fatalf("no evictions at capacity 2 after 3 inserts: %+v", st.Plans)
	}
	if st.Plans.Entries > 2 {
		t.Fatalf("entries = %d exceeds capacity 2", st.Plans.Entries)
	}
}

// TestPlannerKeySeparatesK: the same structure at different k is a
// different cache entry (different optimum).
func TestPlannerKeySeparatesK(t *testing.T) {
	cat := cycleCatalog(t, 7)
	p := NewPlanner(Options{})
	q := cycleQuery(t, [4]string{"A", "B", "C", "D"})
	p2, err := p.Plan(q, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := p.Plan(q, cat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Plans.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (k participates in the key)", st.Plans.Misses)
	}
	if p3.EstimatedCost > p2.EstimatedCost {
		t.Fatalf("k=3 cost %v worse than k=2 cost %v", p3.EstimatedCost, p2.EstimatedCost)
	}
}

// TestPlannerDuplicatePredicateFallback: non-canonicalizable queries take
// the uncached path and surface the planner's usual error.
func TestPlannerDuplicatePredicateFallback(t *testing.T) {
	cat := cycleCatalog(t, 8)
	p := NewPlanner(Options{})
	q := &cq.Query{Head: "ans", Atoms: []cq.Atom{
		{Predicate: "r", Vars: []string{"X", "Y"}},
		{Predicate: "r", Vars: []string{"Y", "Z"}},
	}}
	_, err := p.Plan(q, cat, 2)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate-edge error from the direct path", err)
	}
}

// TestPlannerDecomposeWorkers: decompose requests honour Options.Workers
// (the parallel weightless path) and agree with the sequential result.
func TestPlannerDecomposeWorkers(t *testing.T) {
	h := hypergraph.Cycle(8)
	seq := NewPlanner(Options{})
	par := NewPlanner(Options{Workers: 4})
	d1, err := seq.Decompose(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := par.Decompose(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d1.String() != d2.String() {
		t.Errorf("parallel decompose differs from sequential:\n%s\nvs\n%s", d2, d1)
	}
	if st := par.Stats(); st.Decompositions.Computations != 1 {
		t.Errorf("parallel decompose stats = %+v, want 1 computation", st.Decompositions)
	}
}

// TestPlannerSearchFamilySharedAcrossK: planning one structure at two width
// bounds builds one search family (one augmentation + StructIndex), not two
// independent PlanSearch contexts.
func TestPlannerSearchFamilySharedAcrossK(t *testing.T) {
	cat := cycleCatalog(t, 9)
	p := NewPlanner(Options{})
	q := cycleQuery(t, [4]string{"A", "B", "C", "D"})
	if _, err := p.Plan(q, cat, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(q, cat, 3); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Searches.Computations != 1 {
		t.Errorf("search family computations = %d, want 1 (shared across k)", st.Searches.Computations)
	}
	if st.Plans.Computations != 2 {
		t.Errorf("plan computations = %d, want 2 (one per k)", st.Plans.Computations)
	}
}
