package cache

import (
	"reflect"
	"testing"

	"repro/internal/db"
)

func probeCycle(t *testing.T, p *Planner, cat *db.Catalog, vars [4]string) *PlanProbe {
	t.Helper()
	probe, err := p.ProbePlan(cycleQuery(t, vars), cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	return probe
}

func TestPlanKeyParsing(t *testing.T) {
	cat := cycleCatalog(t, 11)
	p := NewPlanner(Options{})
	probe := probeCycle(t, p, cat, [4]string{"A", "B", "C", "D"})

	structKey, k, err := splitPlanKey(probe.Key)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("width = %d, want 2", k)
	}
	q, err := parseCanonQuery(structKey)
	if err != nil {
		t.Fatal(err)
	}
	// The parsed query must be a canonical fixpoint: re-canonicalizing it
	// reproduces the structural key exactly.
	qc, err := CanonicalizeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if qc.Key != structKey {
		t.Fatalf("parsed query canonicalizes to %q, want %q", qc.Key, structKey)
	}
	rels, err := PlanKeyRelations(probe.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rels, []string{"r", "s", "t", "u"}) {
		t.Fatalf("PlanKeyRelations = %v", rels)
	}
	for _, bad := range []string{"", "nokey", "r(0);|out:0", probe.NegKey} {
		if _, err := PlanKeyRelations(bad); err == nil {
			t.Errorf("PlanKeyRelations(%q): no error", bad)
		}
	}
}

// RestatPlanKey against the same catalog must be the identity — the
// foundation of the rekey path's correctness.
func TestRestatPlanKeyIdentity(t *testing.T) {
	cat := cycleCatalog(t, 12)
	p := NewPlanner(Options{})
	probe := probeCycle(t, p, cat, [4]string{"A", "B", "C", "D"})
	got, err := RestatPlanKey(probe.Key, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got != probe.Key {
		t.Fatalf("RestatPlanKey changed an unchanged key:\n got %q\nwant %q", got, probe.Key)
	}
}

// Self-join aliases render as pred#ord atoms; the parser must invert them.
func TestRestatPlanKeyIdentityAliases(t *testing.T) {
	r := db.NewRelation("e", "x", "y")
	for _, tup := range [][2]int{{1, 2}, {2, 3}, {3, 1}, {1, 3}} {
		if err := r.Append(db.Value(tup[0]), db.Value(tup[1])); err != nil {
			t.Fatal(err)
		}
	}
	cat := db.NewCatalog()
	cat.Put(r)
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	q := mustParseQuery(t, "ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z).")
	p := NewPlanner(Options{})
	probe, err := p.ProbePlan(q, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestatPlanKey(probe.Key, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got != probe.Key {
		t.Fatalf("RestatPlanKey changed an unchanged aliased key:\n got %q\nwant %q", got, probe.Key)
	}
	rels, err := PlanKeyRelations(probe.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rels, []string{"e"}) {
		t.Fatalf("PlanKeyRelations = %v, want [e]", rels)
	}
}

// The acceptance criterion of the stats-only delta path: a warm plan —
// probed through a *renamed* variant — survives an ANALYZE override with
// zero new computations once RekeyPlans has aliased it under the new key.
func TestRekeyPlansStatsOnlyKeepsRenamedVariantWarm(t *testing.T) {
	cat := cycleCatalog(t, 13)
	p := NewPlanner(Options{})
	if _, err := p.Plan(cycleQuery(t, [4]string{"A", "B", "C", "D"}), cat, 2); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Plans.Computations != 1 {
		t.Fatalf("warmup computations = %d, want 1", st.Plans.Computations)
	}

	// Stats-only override of r, applied copy-on-write as the server does.
	cat2 := cat.Clone()
	cat2.SetStats("r", &db.TableStats{Card: 4000, Distinct: map[string]int{"a": 120, "b": 100}})

	renamed := cycleQuery(t, [4]string{"P", "Q", "R", "S"})
	probe, err := p.ProbePlan(renamed, cat2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := p.LookupPlan(probe); ok {
		t.Fatal("new-stats probe hit before rekey; stats change did not move the key")
	}

	if n := p.RekeyPlans(cat2, []string{"r"}, nil); n != 1 {
		t.Fatalf("RekeyPlans = %d, want 1", n)
	}
	plan, ok, err := p.LookupPlan(probe)
	if err != nil || !ok || plan == nil {
		t.Fatalf("renamed variant cold after rekey (ok=%v, err=%v)", ok, err)
	}
	if st := p.Stats(); st.Plans.Computations != 1 {
		t.Fatalf("computations = %d after rekey, want still 1", st.Plans.Computations)
	}
	// The rekeyed plan remaps onto the renamed query's variables.
	for _, v := range plan.Query.Out {
		if v != "P" && v != "R" {
			t.Fatalf("remapped Out = %v, want [P R]", plan.Query.Out)
		}
	}
	// Idempotent: running the same rekey again finds the entry resident.
	if n := p.RekeyPlans(cat2, []string{"r"}, nil); n != 0 {
		t.Fatalf("second RekeyPlans = %d, want 0", n)
	}
}

// Data-changed relations disqualify an entry from re-keying: its
// decomposition was optimized against data that no longer exists, so the
// entry must go cold and a fresh search run.
func TestRekeyPlansSkipsDataChanged(t *testing.T) {
	cat := cycleCatalog(t, 14)
	p := NewPlanner(Options{})
	if _, err := p.Plan(cycleQuery(t, [4]string{"A", "B", "C", "D"}), cat, 2); err != nil {
		t.Fatal(err)
	}
	cat2 := cat.Clone()
	cat2.SetStats("s", &db.TableStats{Card: 999, Distinct: map[string]int{"b": 5, "c": 5}})
	if n := p.RekeyPlans(cat2, []string{"s"}, []string{"r"}); n != 0 {
		t.Fatalf("RekeyPlans = %d for an entry referencing a data-changed relation, want 0", n)
	}
}

// Entries whose structure does not reference the changed relation keep
// their exact key — no aliasing needed, the probe still hits.
func TestRekeyPlansUntouchedStructureStaysWarm(t *testing.T) {
	cat := cycleCatalog(t, 15)
	extra := db.NewRelation("w", "p", "q")
	if err := extra.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	cat.Put(extra)
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(Options{})
	if _, err := p.Plan(cycleQuery(t, [4]string{"A", "B", "C", "D"}), cat, 2); err != nil {
		t.Fatal(err)
	}
	cat2 := cat.Clone()
	cat2.SetStats("w", &db.TableStats{Card: 777, Distinct: map[string]int{"p": 7, "q": 7}})
	if n := p.RekeyPlans(cat2, []string{"w"}, nil); n != 0 {
		t.Fatalf("RekeyPlans = %d for a delta not touching the cached structure, want 0", n)
	}
	probe := probeCycle(t, p, cat2, [4]string{"A", "B", "C", "D"})
	if _, ok, _ := p.LookupPlan(probe); !ok {
		t.Fatal("untouched structure went cold under a foreign stats delta")
	}
}
