// Package cache implements the canonical-form plan cache behind the
// Planner facade: variable-renaming-invariant canonicalization of queries
// and hypergraphs, a sharded concurrency-safe LRU with hit/miss/eviction
// counters, singleflight deduplication of concurrent identical searches,
// and the remapping that translates a cached canonical plan back onto a
// caller's variable names.
//
// The point: minimal-k-decomp / cost-k-decomp search effort depends only on
// the *structure* of H(Q) and the statistics of the referenced relations,
// never on what the variables are called. Canonicalizing before lookup
// makes r(X,Y),s(Y,Z) and r(A,B),s(B,C) share one cache entry, which is
// what amortizes planning cost under heavy traffic of structurally
// repetitive queries.
package cache

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cq"
	"repro/internal/hypergraph"
)

// QueryCanon is a conjunctive query reduced to canonical form: atoms sorted
// by base predicate (with a canonical order among same-predicate atoms —
// self-join aliases), body variables renamed v0, v1, ... in first-occurrence
// order over the sorted atoms, aliases renamed pred#1, pred#2, ..., the head
// normalized to "ans". Two queries have equal Key iff they are identical up
// to a renaming of variables and of aliases (and the head predicate's name):
// "e AS e1(X,Y), e AS e2(Y,Z)" and "e AS p(A,B), e AS q(B,C)" share a Key.
type QueryCanon struct {
	// Key is the canonical rendering; it fully determines the query up to
	// variable and alias renaming.
	Key string
	// Query is the canonicalized query itself.
	Query *cq.Query
	// ToCanon maps the caller's body variables to canonical names.
	ToCanon map[string]string
	// FromCanon maps canonical names back to the caller's variables.
	FromCanon map[string]string
	// AtomToCanon maps the caller's atom names (cq.Atom.Name) to canonical
	// atom names; identity entries for unaliased atoms are included.
	AtomToCanon map[string]string
	// AtomFromCanon maps canonical atom names back to the caller's.
	AtomFromCanon map[string]string
}

// CanonVarName translates a caller variable to its canonical name. Fresh
// variables (cq.WithFreshVariables, named after atoms) translate through the
// atom-name map; unknown names pass through unchanged.
func (qc *QueryCanon) CanonVarName(v string) string {
	if c, ok := qc.ToCanon[v]; ok {
		return c
	}
	if cq.IsFreshVariable(v) {
		base := strings.TrimSuffix(v, cq.FreshSuffix)
		return qc.CanonAtomName(base) + cq.FreshSuffix
	}
	return v
}

// CallerVarName is the inverse of CanonVarName.
func (qc *QueryCanon) CallerVarName(v string) string {
	if c, ok := qc.FromCanon[v]; ok {
		return c
	}
	if cq.IsFreshVariable(v) {
		base := strings.TrimSuffix(v, cq.FreshSuffix)
		return qc.CallerAtomName(base) + cq.FreshSuffix
	}
	return v
}

// CanonAtomName translates a caller atom name to its canonical name.
func (qc *QueryCanon) CanonAtomName(n string) string {
	if c, ok := qc.AtomToCanon[n]; ok {
		return c
	}
	return n
}

// CallerAtomName is the inverse of CanonAtomName.
func (qc *QueryCanon) CallerAtomName(n string) string {
	if c, ok := qc.AtomFromCanon[n]; ok {
		return c
	}
	return n
}

// permutationBudget bounds how many candidate atom orders CanonicalizeQuery
// renders while minimizing the key: the product of the permuted groups'
// factorials is kept ≤ this bound, admitting groups greedily in sorted
// order (5040 = 7! covers one 7-way fully symmetric self-join, or e.g. a
// 4-way and a 3-way together; two 5-way groups exceed it). Groups left out
// keep their refined order, which stays sound (equal keys still imply
// isomorphic queries) but may miss a cache hit on adversarially symmetric
// inputs.
const permutationBudget = 5040

// CanonicalizeQuery computes the canonical form of q. Atom order in the
// input never matters. Among atoms sharing a base predicate (self-join
// aliases) the canonical order is chosen to minimize the rendered key —
// first by a renaming-invariant refinement signature (arity, per-position
// self-join pattern, variable occurrence counts, output membership), then,
// for atoms the signature cannot split, by trying their permutations and
// keeping the lexicographically smallest key, so the result is invariant
// under both variable and alias renaming. It fails on duplicate atom names
// (such queries are not planneable: their hypergraphs have colliding edge
// names).
func CanonicalizeQuery(q *cq.Query) (*QueryCanon, error) {
	n := len(q.Atoms)
	names := make(map[string]bool, n)
	for _, a := range q.Atoms {
		if names[a.Name()] {
			return nil, fmt.Errorf("cache: duplicate atom name %s (self-joins need distinct aliases)", a.Name())
		}
		names[a.Name()] = true
	}

	// Renaming-invariant refinement: per-variable occurrence counts and
	// output membership, folded into a per-atom signature together with the
	// predicate, arity, and the atom's internal equality pattern.
	occ := map[string]int{}
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			occ[v]++
		}
	}
	outSet := map[string]bool{}
	for _, v := range q.Out {
		outSet[v] = true
	}
	sigs := make([]string, n)
	for i, a := range q.Atoms {
		var b strings.Builder
		b.WriteString(strconv.Itoa(len(a.Vars)))
		first := map[string]int{}
		for pos, v := range a.Vars {
			fp, ok := first[v]
			if !ok {
				fp = pos
				first[v] = pos
			}
			fmt.Fprintf(&b, ";%d,%d,%t", fp, occ[v], outSet[v])
		}
		sigs[i] = b.String()
	}

	// Base order: by (predicate, signature, input position). Runs of equal
	// (predicate, signature) are the only atoms a renaming could permute.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		i, j := order[x], order[y]
		if q.Atoms[i].Predicate != q.Atoms[j].Predicate {
			return q.Atoms[i].Predicate < q.Atoms[j].Predicate
		}
		if sigs[i] != sigs[j] {
			return sigs[i] < sigs[j]
		}
		return i < j
	})

	// Ambiguous runs: positions [start, end) in order with equal key.
	type run struct{ start, end int }
	var runs []run
	budget := permutationBudget
	for s := 0; s < n; {
		e := s + 1
		for e < n && q.Atoms[order[e]].Predicate == q.Atoms[order[s]].Predicate && sigs[order[e]] == sigs[order[s]] {
			e++
		}
		if e-s > 1 {
			f := factorial(e - s)
			if f > 0 && budget/f >= 1 {
				budget /= f
				runs = append(runs, run{s, e})
			}
		}
		s = e
	}

	// Canonical atom names are positional — pred when the predicate occurs
	// once, pred#1, pred#2, ... otherwise — so within-run permutations only
	// change variable numbering, and the key renderer below is what the
	// minimization compares.
	predCount := map[string]int{}
	for _, a := range q.Atoms {
		predCount[a.Predicate]++
	}
	canonName := func(pos int) (pred, alias string) {
		a := q.Atoms[order[pos]]
		if predCount[a.Predicate] == 1 {
			return a.Predicate, ""
		}
		ord := 1
		for p := pos - 1; p >= 0 && q.Atoms[order[p]].Predicate == a.Predicate; p-- {
			ord++
		}
		return a.Predicate, a.Predicate + "#" + strconv.Itoa(ord)
	}
	keyOf := func() string {
		var b strings.Builder
		ids := map[string]int{}
		id := func(v string) int {
			i, ok := ids[v]
			if !ok {
				i = len(ids)
				ids[v] = i
			}
			return i
		}
		for pos := 0; pos < n; pos++ {
			pred, alias := canonName(pos)
			b.WriteString(pred)
			if alias != "" {
				b.WriteByte('#')
				// The ordinal alone: the alias is pred#ordinal and pred was
				// just written.
				b.WriteString(alias[len(pred)+1:])
			}
			b.WriteByte('(')
			for vi, v := range q.Atoms[order[pos]].Vars {
				if vi > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(id(v)))
			}
			b.WriteString(");")
		}
		b.WriteString("|out:")
		for oi, v := range q.Out {
			if oi > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(id(v)))
		}
		return b.String()
	}

	// Minimize the key over the cartesian product of run permutations.
	bestKey := keyOf()
	bestOrder := append([]int(nil), order...)
	var permute func(ri int)
	permute = func(ri int) {
		if ri == len(runs) {
			if k := keyOf(); k < bestKey {
				bestKey = k
				bestOrder = append(bestOrder[:0], order...)
			}
			return
		}
		r := runs[ri]
		seg := order[r.start:r.end]
		var heap func(m int)
		heap = func(m int) {
			if m == 1 {
				permute(ri + 1)
				return
			}
			for i := 0; i < m; i++ {
				heap(m - 1)
				if m%2 == 0 {
					seg[i], seg[m-1] = seg[m-1], seg[i]
				} else {
					seg[0], seg[m-1] = seg[m-1], seg[0]
				}
			}
		}
		heap(len(seg))
	}
	if len(runs) > 0 {
		permute(0)
	}
	order = bestOrder

	// Rebuild the canonical query and the translation maps from the winning
	// order.
	qc := &QueryCanon{
		Key:           bestKey,
		ToCanon:       map[string]string{},
		FromCanon:     map[string]string{},
		AtomToCanon:   map[string]string{},
		AtomFromCanon: map[string]string{},
	}
	rename := func(v string) string {
		if c, ok := qc.ToCanon[v]; ok {
			return c
		}
		c := "v" + strconv.Itoa(len(qc.ToCanon))
		qc.ToCanon[v] = c
		qc.FromCanon[c] = v
		return c
	}
	canon := &cq.Query{Head: "ans"}
	for pos := 0; pos < n; pos++ {
		a := q.Atoms[order[pos]]
		pred, alias := canonName(pos)
		vars := make([]string, len(a.Vars))
		for i, v := range a.Vars {
			vars[i] = rename(v)
		}
		ca := cq.Atom{Predicate: pred, Alias: alias, Vars: vars}
		qc.AtomToCanon[a.Name()] = ca.Name()
		qc.AtomFromCanon[ca.Name()] = a.Name()
		canon.Atoms = append(canon.Atoms, ca)
	}
	for _, v := range q.Out {
		canon.Out = append(canon.Out, rename(v))
	}
	qc.Query = canon
	return qc, nil
}

// factorial returns m! for small m, saturating far above permutationBudget.
func factorial(m int) int {
	f := 1
	for i := 2; i <= m; i++ {
		f *= i
		if f > permutationBudget*8 {
			return permutationBudget * 8
		}
	}
	return f
}

// HypergraphCanon is a hypergraph reduced to canonical form. Edges keep
// their (distinct) names and are ordered by name; variables are renamed
// v0, v1, ... ordered by their incidence signature — the sorted set of
// canonical edge positions containing them. Because edge names are
// distinct, variables with equal signatures occur in exactly the same
// edges and are therefore interchangeable (automorphic), so any tie order
// yields the same Key: two hypergraphs have equal Key iff they are
// identical up to a renaming of variables.
type HypergraphCanon struct {
	// Key fully determines the hypergraph up to variable renaming.
	Key string
	// H is the canonical rebuild (edges in name order, variables v0..vn).
	H *hypergraph.Hypergraph
	// VarFromCanon maps canonical variable indices to the caller's.
	VarFromCanon []int
	// EdgeFromCanon maps canonical edge indices to the caller's.
	EdgeFromCanon []int
}

// CanonicalizeHypergraph computes the canonical form of h.
func CanonicalizeHypergraph(h *hypergraph.Hypergraph) *HypergraphCanon {
	ne, nv := h.NumEdges(), h.NumVars()

	// Canonical edge order: sort caller edge indices by edge name.
	edgeOrder := make([]int, ne) // canonical pos -> caller edge idx
	for i := range edgeOrder {
		edgeOrder[i] = i
	}
	sort.Slice(edgeOrder, func(i, j int) bool {
		return h.EdgeName(edgeOrder[i]) < h.EdgeName(edgeOrder[j])
	})
	edgePos := make([]int, ne) // caller edge idx -> canonical pos
	for pos, e := range edgeOrder {
		edgePos[e] = pos
	}

	// Variable signatures: sorted canonical positions of incident edges.
	sigs := make([][]int, nv)
	for v := 0; v < nv; v++ {
		es := h.VarEdges(v)
		sig := make([]int, len(es))
		for i, e := range es {
			sig[i] = edgePos[e]
		}
		sort.Ints(sig)
		sigs[v] = sig
	}
	varOrder := make([]int, nv) // canonical idx -> caller var idx
	for i := range varOrder {
		varOrder[i] = i
	}
	sort.Slice(varOrder, func(i, j int) bool {
		a, b := sigs[varOrder[i]], sigs[varOrder[j]]
		for x := 0; x < len(a) && x < len(b); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		// Equal signatures: the variables are automorphic; break the tie by
		// caller index for determinism (the Key is unaffected either way).
		return varOrder[i] < varOrder[j]
	})
	varIdx := make([]int, nv) // caller var idx -> canonical idx
	for ci, v := range varOrder {
		varIdx[v] = ci
	}

	// Canonical rebuild and key.
	b := hypergraph.NewBuilder()
	var key strings.Builder
	for _, e := range edgeOrder {
		ids := make([]int, 0, h.EdgeVars(e).Count())
		h.EdgeVars(e).ForEach(func(v int) { ids = append(ids, varIdx[v]) })
		sort.Ints(ids)
		names := make([]string, len(ids))
		key.WriteString(h.EdgeName(e))
		key.WriteByte('(')
		for i, id := range ids {
			names[i] = "v" + strconv.Itoa(id)
			if i > 0 {
				key.WriteByte(',')
			}
			key.WriteString(strconv.Itoa(id))
		}
		key.WriteString(")\n")
		b.MustEdge(h.EdgeName(e), names...)
	}
	ch := b.MustBuild()

	// The Builder interns variables in first-appearance order, which need
	// not match numeric order of the canonical ids; resolve by name.
	varFromCanon := make([]int, nv)
	for v := 0; v < nv; v++ {
		varFromCanon[ch.VarByName("v"+strconv.Itoa(varIdx[v]))] = v
	}
	edgeFromCanon := make([]int, ne)
	for e := 0; e < ne; e++ {
		edgeFromCanon[ch.EdgeByName(h.EdgeName(e))] = e
	}
	return &HypergraphCanon{Key: key.String(), H: ch, VarFromCanon: varFromCanon, EdgeFromCanon: edgeFromCanon}
}
