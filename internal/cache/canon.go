// Package cache implements the canonical-form plan cache behind the
// Planner facade: variable-renaming-invariant canonicalization of queries
// and hypergraphs, a sharded concurrency-safe LRU with hit/miss/eviction
// counters, singleflight deduplication of concurrent identical searches,
// and the remapping that translates a cached canonical plan back onto a
// caller's variable names.
//
// The point: minimal-k-decomp / cost-k-decomp search effort depends only on
// the *structure* of H(Q) and the statistics of the referenced relations,
// never on what the variables are called. Canonicalizing before lookup
// makes r(X,Y),s(Y,Z) and r(A,B),s(B,C) share one cache entry, which is
// what amortizes planning cost under heavy traffic of structurally
// repetitive queries.
package cache

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cq"
	"repro/internal/hypergraph"
)

// QueryCanon is a conjunctive query reduced to canonical form: atoms sorted
// by predicate name, body variables renamed v0, v1, ... in first-occurrence
// order over the sorted atoms, the head normalized to "ans". Two queries
// have equal Key iff they are identical up to a renaming of variables (and
// the head predicate's name).
type QueryCanon struct {
	// Key is the canonical rendering; it fully determines the query up to
	// variable renaming.
	Key string
	// Query is the canonicalized query itself.
	Query *cq.Query
	// ToCanon maps the caller's body variables to canonical names.
	ToCanon map[string]string
	// FromCanon maps canonical names back to the caller's variables.
	FromCanon map[string]string
}

// CanonicalizeQuery computes the canonical form of q. It fails on queries
// with duplicate predicates (planning rejects those anyway — the paper
// assumes one relation per atom) because sorting by predicate would then be
// ambiguous.
func CanonicalizeQuery(q *cq.Query) (*QueryCanon, error) {
	atoms := make([]cq.Atom, len(q.Atoms))
	copy(atoms, q.Atoms)
	sort.Slice(atoms, func(i, j int) bool { return atoms[i].Predicate < atoms[j].Predicate })
	for i := 1; i < len(atoms); i++ {
		if atoms[i].Predicate == atoms[i-1].Predicate {
			return nil, fmt.Errorf("cache: duplicate predicate %s", atoms[i].Predicate)
		}
	}
	qc := &QueryCanon{ToCanon: map[string]string{}, FromCanon: map[string]string{}}
	rename := func(v string) string {
		if c, ok := qc.ToCanon[v]; ok {
			return c
		}
		c := "v" + strconv.Itoa(len(qc.ToCanon))
		qc.ToCanon[v] = c
		qc.FromCanon[c] = v
		return c
	}
	canon := &cq.Query{Head: "ans"}
	for _, a := range atoms {
		vars := make([]string, len(a.Vars))
		for i, v := range a.Vars {
			vars[i] = rename(v)
		}
		canon.Atoms = append(canon.Atoms, cq.Atom{Predicate: a.Predicate, Vars: vars})
	}
	for _, v := range q.Out {
		canon.Out = append(canon.Out, rename(v))
	}
	qc.Query = canon
	qc.Key = canon.String()
	return qc, nil
}

// HypergraphCanon is a hypergraph reduced to canonical form. Edges keep
// their (distinct) names and are ordered by name; variables are renamed
// v0, v1, ... ordered by their incidence signature — the sorted set of
// canonical edge positions containing them. Because edge names are
// distinct, variables with equal signatures occur in exactly the same
// edges and are therefore interchangeable (automorphic), so any tie order
// yields the same Key: two hypergraphs have equal Key iff they are
// identical up to a renaming of variables.
type HypergraphCanon struct {
	// Key fully determines the hypergraph up to variable renaming.
	Key string
	// H is the canonical rebuild (edges in name order, variables v0..vn).
	H *hypergraph.Hypergraph
	// VarFromCanon maps canonical variable indices to the caller's.
	VarFromCanon []int
	// EdgeFromCanon maps canonical edge indices to the caller's.
	EdgeFromCanon []int
}

// CanonicalizeHypergraph computes the canonical form of h.
func CanonicalizeHypergraph(h *hypergraph.Hypergraph) *HypergraphCanon {
	ne, nv := h.NumEdges(), h.NumVars()

	// Canonical edge order: sort caller edge indices by edge name.
	edgeOrder := make([]int, ne) // canonical pos -> caller edge idx
	for i := range edgeOrder {
		edgeOrder[i] = i
	}
	sort.Slice(edgeOrder, func(i, j int) bool {
		return h.EdgeName(edgeOrder[i]) < h.EdgeName(edgeOrder[j])
	})
	edgePos := make([]int, ne) // caller edge idx -> canonical pos
	for pos, e := range edgeOrder {
		edgePos[e] = pos
	}

	// Variable signatures: sorted canonical positions of incident edges.
	sigs := make([][]int, nv)
	for v := 0; v < nv; v++ {
		es := h.VarEdges(v)
		sig := make([]int, len(es))
		for i, e := range es {
			sig[i] = edgePos[e]
		}
		sort.Ints(sig)
		sigs[v] = sig
	}
	varOrder := make([]int, nv) // canonical idx -> caller var idx
	for i := range varOrder {
		varOrder[i] = i
	}
	sort.Slice(varOrder, func(i, j int) bool {
		a, b := sigs[varOrder[i]], sigs[varOrder[j]]
		for x := 0; x < len(a) && x < len(b); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		// Equal signatures: the variables are automorphic; break the tie by
		// caller index for determinism (the Key is unaffected either way).
		return varOrder[i] < varOrder[j]
	})
	varIdx := make([]int, nv) // caller var idx -> canonical idx
	for ci, v := range varOrder {
		varIdx[v] = ci
	}

	// Canonical rebuild and key.
	b := hypergraph.NewBuilder()
	var key strings.Builder
	for _, e := range edgeOrder {
		ids := make([]int, 0, h.EdgeVars(e).Count())
		h.EdgeVars(e).ForEach(func(v int) { ids = append(ids, varIdx[v]) })
		sort.Ints(ids)
		names := make([]string, len(ids))
		key.WriteString(h.EdgeName(e))
		key.WriteByte('(')
		for i, id := range ids {
			names[i] = "v" + strconv.Itoa(id)
			if i > 0 {
				key.WriteByte(',')
			}
			key.WriteString(strconv.Itoa(id))
		}
		key.WriteString(")\n")
		b.MustEdge(h.EdgeName(e), names...)
	}
	ch := b.MustBuild()

	// The Builder interns variables in first-appearance order, which need
	// not match numeric order of the canonical ids; resolve by name.
	varFromCanon := make([]int, nv)
	for v := 0; v < nv; v++ {
		varFromCanon[ch.VarByName("v"+strconv.Itoa(varIdx[v]))] = v
	}
	edgeFromCanon := make([]int, ne)
	for e := 0; e < ne; e++ {
		edgeFromCanon[ch.EdgeByName(h.EdgeName(e))] = e
	}
	return &HypergraphCanon{Key: key.String(), H: ch, VarFromCanon: varFromCanon, EdgeFromCanon: edgeFromCanon}
}
