package cache

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
)

// This file is the distribution surface of the plan cache: the pieces the
// serving tier needs to shard the keyspace across replicas and to persist
// entries across restarts. A PlanProbe resolves a request to its stable
// cache coordinates (the byte key the consistent-hash ring shards on); a
// PlanRecord is the lossless wire/disk form of a canonical cached plan,
// importable on any replica. Plans fetched from a peer or loaded from disk
// go through exactly the remapping path locally computed plans do, so they
// are byte-identical to a local computation — the determinism oracle holds
// across the tier.

// ErrUncacheable marks queries the canonical-form cache cannot key
// (duplicate atom names — unaliased self-joins). Such requests bypass the
// cache, the ring, and the store.
var ErrUncacheable = errors.New("cache: query not canonicalizable")

// PlanProbe is a plan request resolved to its cache coordinates: the full
// plan key (canonical structure + width bound + canonicalized statistics —
// the shard key of the distributed tier) and the negative-cache key. Build
// with Planner.ProbePlan; pass to LookupPlan/ComputePlan of the same
// Planner.
type PlanProbe struct {
	// Key is the full plan-cache key. It is a stable byte string: two
	// replicas probing isomorphic queries over equal statistics compute
	// equal keys, which is what makes it the ring's shard key.
	Key string
	// NegKey is the negative-cache key (canonical structure + width).
	NegKey string
	// K is the width bound.
	K int

	qc        *QueryCanon
	canonEsts map[string]cost.Est
	q         *cq.Query
}

// ProbePlan canonicalizes q and resolves the statistics of its relations
// into the plan-cache coordinates, without touching any cache. Returns
// ErrUncacheable (wrapped) for queries the cache cannot key.
func (p *Planner) ProbePlan(q *cq.Query, cat *db.Catalog, k int) (*PlanProbe, error) {
	qc, err := CanonicalizeQuery(q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUncacheable, err)
	}
	fq := q.WithFreshVariables()
	ests, err := cost.EdgeEstimates(fq, cat)
	if err != nil {
		return nil, err
	}
	canonEsts := canonicalizeEstimates(ests, qc)
	return &PlanProbe{
		Key:       planKey(qc, k, canonEsts),
		NegKey:    planNegKey(qc.Key, k),
		K:         k,
		qc:        qc,
		canonEsts: canonEsts,
		q:         q,
	}, nil
}

// LookupPlan is the warm half of PlanCached: a negative-cache probe and a
// plan-cache probe, never a search. ok reports whether the request was
// answered (the error is core.ErrNoDecomposition on a negative hit); on
// (nil, false, nil) the caller decides between ComputePlan and a peer.
func (p *Planner) LookupPlan(probe *PlanProbe) (plan *cost.Plan, ok bool, err error) {
	if p.knownInfeasible(probe.NegKey) {
		return nil, true, core.ErrNoDecomposition
	}
	if v, lok := p.plans.get(probe.Key); lok {
		plan, err := remapPlan(v.(*cost.Plan), probe.qc, probe.q)
		return plan, true, err
	}
	return nil, false, nil
}

// ComputePlan is the cold half of PlanCached: singleflight-deduplicated
// search, negative-cache recording on infeasibility, LRU insert, and
// remapping onto the probing query's variable names. shared reports
// whether the result came from joining another goroutine's in-flight
// computation.
func (p *Planner) ComputePlan(probe *PlanProbe) (plan *cost.Plan, shared bool, err error) {
	v, shared, err := p.planFlight.do(probe.Key, func() (any, error) {
		p.plans.computations.Add(1)
		ps, err := p.searchFor(probe.qc, probe.K)
		if err != nil {
			return nil, err
		}
		model := cost.NewModelFromEstimates(ps.FQ, probe.canonEsts)
		var plan *cost.Plan
		if p.opts.Workers > 1 {
			plan, err = ps.RunParallel(model, core.ParallelOptions{Workers: p.opts.Workers})
		} else {
			plan, err = ps.Run(model, core.Options{})
		}
		if err != nil {
			if errors.Is(err, core.ErrNoDecomposition) {
				p.recordInfeasible(probe.NegKey)
			}
			return nil, err
		}
		p.plans.add(probe.Key, plan)
		return plan, nil
	})
	if err != nil {
		return nil, shared, err
	}
	plan, err = remapPlan(v.(*cost.Plan), probe.qc, probe.q)
	return plan, shared, err
}

// PlanRecord is the lossless wire/disk form of one canonical cached plan:
// the canonical fresh-augmented hypergraph (edges with their named
// variables) plus the decomposition tree with per-node subtree costs. It
// reuses the plan wire serialization (engine.PlanNode) the HTTP edge
// already speaks, so peers exchange the same representation clients see.
type PlanRecord struct {
	Edges         []RecordEdge     `json:"edges"`
	EstimatedCost float64          `json:"estimatedCost"`
	Root          *engine.PlanNode `json:"root"`
}

// RecordEdge is one hyperedge of the canonical hypergraph.
type RecordEdge struct {
	Name string   `json:"name"`
	Vars []string `json:"vars"`
}

// encodePlanRecord renders a canonical cached plan. Everything is by name:
// variable and edge indices are private to a Hypergraph instance, names
// are the cross-process contract.
func encodePlanRecord(canon *cost.Plan) *PlanRecord {
	h := canon.Decomp.H
	edges := make([]RecordEdge, h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		re := RecordEdge{Name: h.EdgeName(e)}
		h.EdgeVars(e).ForEach(func(v int) { re.Vars = append(re.Vars, h.VarName(v)) })
		edges[e] = re
	}
	return &PlanRecord{
		Edges:         edges,
		EstimatedCost: canon.EstimatedCost,
		Root:          engine.SerializeDecomposition(canon.Decomp, canon.NodeCosts),
	}
}

// decodePlanRecord rebuilds the canonical cached plan from a record.
// Records arrive from peers and disk, so every failure is an error, never
// a panic. The rebuilt plan's Query is nil: remapping onto a caller query
// reads only the hypergraph, the tree, and the costs.
func decodePlanRecord(rec *PlanRecord) (*cost.Plan, error) {
	if rec == nil || rec.Root == nil || len(rec.Edges) == 0 {
		return nil, errors.New("cache: empty plan record")
	}
	b := hypergraph.NewBuilder()
	for _, e := range rec.Edges {
		if err := b.Edge(e.Name, e.Vars...); err != nil {
			return nil, fmt.Errorf("cache: plan record edge %s: %w", e.Name, err)
		}
	}
	h, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cache: plan record hypergraph: %w", err)
	}
	nodeCosts := make(map[*hypertree.Node]float64)
	var rebuild func(pn *engine.PlanNode) (*hypertree.Node, error)
	rebuild = func(pn *engine.PlanNode) (*hypertree.Node, error) {
		chi := h.NewVarset()
		for _, name := range pn.Chi {
			v := h.VarByName(name)
			if v < 0 {
				return nil, fmt.Errorf("cache: plan record references unknown variable %s", name)
			}
			chi.Set(v)
		}
		lambda := make([]int, len(pn.Lambda))
		for i, name := range pn.Lambda {
			e := h.EdgeByName(name)
			if e < 0 {
				return nil, fmt.Errorf("cache: plan record references unknown edge %s", name)
			}
			lambda[i] = e
		}
		n := hypertree.NewNode(chi, lambda)
		if pn.Cost != nil {
			nodeCosts[n] = *pn.Cost
		}
		for _, c := range pn.Children {
			child, err := rebuild(c)
			if err != nil {
				return nil, err
			}
			n.AddChild(child)
		}
		return n, nil
	}
	root, err := rebuild(rec.Root)
	if err != nil {
		return nil, err
	}
	d := &hypertree.Decomposition{H: h, Root: root}
	d.Nodes()
	return &cost.Plan{Decomp: d, EstimatedCost: rec.EstimatedCost, NodeCosts: nodeCosts}, nil
}

// ExportPlan serializes the resident canonical entry for a full plan key,
// for peer serving and persistence. The probe bypasses the hit/miss
// counters so exports do not distort the workload's cache statistics.
func (p *Planner) ExportPlan(key string) (*PlanRecord, bool) {
	v, ok := p.plans.peek(key)
	if !ok {
		return nil, false
	}
	return encodePlanRecord(v.(*cost.Plan)), true
}

// ImportPlan validates and inserts a canonical plan record under the given
// full plan key — the peer warm-fill and the store warm-load both land
// here. Subsequent LookupPlan hits remap it exactly like a locally
// computed entry.
func (p *Planner) ImportPlan(key string, rec *PlanRecord) error {
	canon, err := decodePlanRecord(rec)
	if err != nil {
		return err
	}
	p.plans.add(key, canon)
	return nil
}

// ExportInfeasible reports whether negKey is a recorded infeasibility
// verdict (counter-free, like ExportPlan).
func (p *Planner) ExportInfeasible(negKey string) bool {
	_, ok := p.infeasible.peek(negKey)
	return ok
}

// ImportInfeasible records an infeasibility verdict learned from a peer or
// the store. Unlike recordInfeasible it does not count a computation: no
// local search ran.
func (p *Planner) ImportInfeasible(negKey string) {
	p.infeasible.add(negKey, struct{}{})
}
