package cache

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/hypergraph"
	"repro/internal/hypertree"
)

// Options tunes a Planner.
type Options struct {
	// Capacity bounds the entries per cache (plans, decompositions, and
	// search contexts each get their own). It is rounded up to a multiple
	// of Shards and enforced per shard, so under heavy key skew a shard
	// may evict before the global bound is reached. 0 means the default
	// of 1024.
	Capacity int
	// Shards is the number of lock shards per cache (clamped to
	// Capacity). 0 means 16.
	Shards int
	// MaxKVertices aborts searches whose candidate space Ψ exceeds the
	// bound, like core.Options.MaxKVertices. 0 means unlimited.
	MaxKVertices int
	// Workers, when > 1, evaluates cold plan and decompose misses with the
	// level-parallel solver (core.ParallelMinimalKCtx and
	// core.ParallelDecomposeKCtx) using that many workers; ≤ 1 keeps the
	// sequential solver. Cache hits are unaffected.
	Workers int
}

// Stats snapshots a Planner's cache counters. The JSON tags are the serving
// layer's wire contract (/v1/stats).
type Stats struct {
	// Plans counts cost-k-decomp plan lookups (Planner.Plan).
	Plans CacheStats `json:"plans"`
	// Decompositions counts unweighted decomposition lookups
	// (Planner.Decompose).
	Decompositions CacheStats `json:"decompositions"`
	// Searches counts reusable search families (one per canonical
	// structure; the width-specific contexts — k-vertex enumerations shared
	// between plan misses that differ only in statistics or in k — live
	// inside each family).
	Searches CacheStats `json:"searches"`
	// Infeasible counts the negative cache: Hits are requests answered
	// ErrNoDecomposition without a search, Misses are probes of structures
	// not known infeasible (most requests), Computations are infeasibility
	// results recorded.
	Infeasible CacheStats `json:"infeasible"`
}

// Add accumulates other into s field-wise (for aggregating a PlannerSet).
func (s Stats) Add(other Stats) Stats {
	s.Plans = s.Plans.add(other.Plans)
	s.Decompositions = s.Decompositions.add(other.Decompositions)
	s.Searches = s.Searches.add(other.Searches)
	s.Infeasible = s.Infeasible.add(other.Infeasible)
	return s
}

// Planner is a concurrent planning service: cost-k-decomp and k-decomp
// behind a canonical-form cache. Requests for structurally identical
// inputs — equal up to variable renaming — share one cache entry, and N
// concurrent requests for the same uncached structure run one search
// (singleflight). Cached results are stored in canonical form and remapped
// onto each caller's variable names, so callers never share mutable state.
//
// Statistics participate in the plan cache key: replacing or re-ANALYZE-ing
// a relation changes the key, so stale plans are never served; superseded
// entries simply age out of the LRU. All methods are safe for concurrent
// use.
type Planner struct {
	opts       Options
	plans      *lru
	decomps    *lru
	searches   *lru
	infeasible *lru

	planFlight   flightGroup
	decompFlight flightGroup
	searchFlight flightGroup
}

// NewPlanner returns a Planner with the given options.
func NewPlanner(opts Options) *Planner {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	return &Planner{
		opts:       opts,
		plans:      newLRU(opts.Capacity, opts.Shards),
		decomps:    newLRU(opts.Capacity, opts.Shards),
		searches:   newLRU(opts.Capacity, opts.Shards),
		infeasible: newLRU(opts.Capacity, opts.Shards),
	}
}

// Stats snapshots the cache counters. Hits + Misses equals the number of
// completed lookups; Computations counts searches actually executed, so
// Misses − Computations is the work saved by singleflight deduplication.
func (p *Planner) Stats() Stats {
	return Stats{
		Plans:          p.plans.stats(),
		Decompositions: p.decomps.stats(),
		Searches:       p.searches.stats(),
		Infeasible:     p.infeasible.stats(),
	}
}

// Negative-cache keys. Infeasibility at width k is a property of the
// canonical structure alone — feasibility of the candidate graph does not
// depend on the TAF or on statistics — so ErrNoDecomposition is cached per
// (canonical form, k) and short-circuits every later request for the same
// structure, whatever its statistics. Keys are namespaced so query and
// hypergraph canonical forms cannot collide in the shared LRU.
func planNegKey(canonKey string, k int) string {
	return "q\x00" + canonKey + "\x00k" + strconv.Itoa(k)
}

func decompNegKey(canonKey string, k int) string {
	return "h\x00" + canonKey + "\x00k" + strconv.Itoa(k)
}

// knownInfeasible probes the negative cache (counted as Infeasible hits and
// misses).
func (p *Planner) knownInfeasible(key string) bool {
	_, ok := p.infeasible.get(key)
	return ok
}

// recordInfeasible notes that a search returned ErrNoDecomposition.
func (p *Planner) recordInfeasible(key string) {
	p.infeasible.computations.Add(1)
	p.infeasible.add(key, struct{}{})
}

// Plan is the cached equivalent of cost.CostKDecomp: an optimal width-≤k
// query plan for q over cat's statistics. The cache key is the canonical
// form of q plus k plus the statistics of the referenced relations, so
// structurally identical queries over equivalent statistics share one
// entry regardless of variable names. Run cat.AnalyzeAll first.
func (p *Planner) Plan(q *cq.Query, cat *db.Catalog, k int) (*cost.Plan, error) {
	plan, _, err := p.PlanCached(q, cat, k)
	return plan, err
}

// PlanCached is Plan but additionally reports whether the result — or the
// ErrNoDecomposition outcome — was served without running a new search: a
// plan-cache or negative-cache hit, or a joined in-flight computation.
func (p *Planner) PlanCached(q *cq.Query, cat *db.Catalog, k int) (*cost.Plan, bool, error) {
	probe, err := p.ProbePlan(q, cat, k)
	if err != nil {
		if errors.Is(err, ErrUncacheable) {
			// Not canonicalizable (duplicate atom names — unaliased
			// self-joins): bypass the cache and let the direct path produce
			// its usual error (or, if planning such a query ever becomes
			// legal, its plan).
			plan, derr := cost.CostKDecomp(q, cat, k, core.Options{MaxKVertices: p.opts.MaxKVertices})
			return plan, false, derr
		}
		return nil, false, err
	}
	if plan, ok, err := p.LookupPlan(probe); ok {
		return plan, true, err
	}
	return p.ComputePlan(probe)
}

// Decompose is the cached equivalent of core.DecomposeK: some width-≤k
// normal-form hypertree decomposition of h, keyed on h's canonical form.
func (p *Planner) Decompose(h *hypergraph.Hypergraph, k int) (*hypertree.Decomposition, error) {
	d, _, err := p.DecomposeCached(h, k)
	return d, err
}

// DecomposeCached is Decompose with the served-without-a-search flag of
// PlanCached.
func (p *Planner) DecomposeCached(h *hypergraph.Hypergraph, k int) (*hypertree.Decomposition, bool, error) {
	hc := CanonicalizeHypergraph(h)
	if p.knownInfeasible(decompNegKey(hc.Key, k)) {
		return nil, true, core.ErrNoDecomposition
	}
	key := hc.Key + "\x00k" + strconv.Itoa(k)
	if v, ok := p.decomps.get(key); ok {
		return remapDecomposition(v.(*hypertree.Decomposition), hc, h), true, nil
	}
	v, shared, err := p.decompFlight.do(key, func() (any, error) {
		p.decomps.computations.Add(1)
		sc, err := core.NewSearchContext(hc.H, k, core.Options{MaxKVertices: p.opts.MaxKVertices})
		if err != nil {
			return nil, err
		}
		var d *hypertree.Decomposition
		if p.opts.Workers > 1 {
			// Decompose requests honour Workers like plan requests do.
			d, err = core.ParallelDecomposeKCtx(sc, core.ParallelOptions{Workers: p.opts.Workers})
		} else {
			d, err = core.DecomposeKCtx(sc, core.Options{})
		}
		if err != nil {
			if errors.Is(err, core.ErrNoDecomposition) {
				p.recordInfeasible(decompNegKey(hc.Key, k))
			}
			return nil, err
		}
		p.decomps.add(key, d)
		return d, nil
	})
	if err != nil {
		return nil, shared, err
	}
	return remapDecomposition(v.(*hypertree.Decomposition), hc, h), shared, nil
}

// searchFor returns the cached PlanSearch for (structure, k). Searches are
// cached as one cost.PlanSearchFamily per canonical structure, so requests
// for the same structure at different width bounds share the augmented
// query, the hypergraph, and the component-interning StructIndex; the
// family builds and reuses the width-specific context per k internally.
// The singleflight collapses concurrent cold misses whose plan keys differ
// (same structure, different statistics).
func (p *Planner) searchFor(qc *QueryCanon, k int) (*cost.PlanSearch, error) {
	if v, ok := p.searches.get(qc.Key); ok {
		return v.(*cost.PlanSearchFamily).At(k)
	}
	v, _, err := p.searchFlight.do(qc.Key, func() (any, error) {
		fam, err := cost.NewPlanSearchFamily(qc.Query, core.Options{MaxKVertices: p.opts.MaxKVertices})
		if err != nil {
			return nil, err
		}
		p.searches.computations.Add(1)
		p.searches.add(qc.Key, fam)
		return fam, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*cost.PlanSearchFamily).At(k)
}

// canonicalizeEstimates renames per-atom estimates to canonical names: the
// map keys (atom names — aliases canonicalize to pred#i) and the variable
// keys inside each estimate, including the fresh variables whose names
// derive from atom names.
func canonicalizeEstimates(ests map[string]cost.Est, qc *QueryCanon) map[string]cost.Est {
	out := make(map[string]cost.Est, len(ests))
	for name, e := range ests {
		v := make(map[string]float64, len(e.V))
		for vn, val := range e.V {
			v[qc.CanonVarName(vn)] = val
		}
		out[qc.CanonAtomName(name)] = cost.Est{Card: e.Card, V: v}
	}
	return out
}

// planKey builds the full plan-cache key: canonical structure, width bound,
// and the canonicalized quantitative input of the cost model (per-atom
// cardinality and per-variable selectivity). Two calls with equal keys are
// guaranteed to describe isomorphic search problems.
func planKey(qc *QueryCanon, k int, canonEsts map[string]cost.Est) string {
	var b strings.Builder
	b.WriteString(qc.Key)
	b.WriteString("\x00k")
	b.WriteString(strconv.Itoa(k))
	for _, a := range qc.Query.Atoms {
		e := canonEsts[a.Name()]
		b.WriteByte('\x00')
		b.WriteString(strconv.FormatFloat(e.Card, 'g', -1, 64))
		for _, v := range a.Vars {
			b.WriteByte(';')
			b.WriteString(strconv.FormatFloat(e.V[v], 'g', -1, 64))
		}
	}
	return b.String()
}

// remapPlan translates a canonical cached plan onto the caller's variable
// names, rebuilding the decomposition tree over the caller's augmented
// hypergraph. The result shares nothing mutable with the cache entry.
func remapPlan(canon *cost.Plan, qc *QueryCanon, q *cq.Query) (*cost.Plan, error) {
	fq := q.WithFreshVariables()
	h2, err := fq.Hypergraph()
	if err != nil {
		return nil, err
	}
	h1 := canon.Decomp.H
	varMap := make([]int, h1.NumVars())
	for i := 0; i < h1.NumVars(); i++ {
		// CallerVarName covers both renamed body variables and fresh
		// variables, whose names follow the (canonically renamed) atom names.
		name := qc.CallerVarName(h1.VarName(i))
		j := h2.VarByName(name)
		if j < 0 {
			return nil, fmt.Errorf("cache: remap lost variable %s", name)
		}
		varMap[i] = j
	}
	edgeMap := make([]int, h1.NumEdges())
	for e := 0; e < h1.NumEdges(); e++ {
		name := qc.CallerAtomName(h1.EdgeName(e))
		j := h2.EdgeByName(name)
		if j < 0 {
			return nil, fmt.Errorf("cache: remap lost edge %s", name)
		}
		edgeMap[e] = j
	}
	nodeCosts := make(map[*hypertree.Node]float64, len(canon.NodeCosts))
	var rec func(n *hypertree.Node) *hypertree.Node
	rec = func(n *hypertree.Node) *hypertree.Node {
		chi := h2.NewVarset()
		n.Chi.ForEach(func(v int) { chi.Set(varMap[v]) })
		lambda := make([]int, len(n.Lambda))
		for i, e := range n.Lambda {
			lambda[i] = edgeMap[e]
		}
		m := hypertree.NewNode(chi, lambda)
		if c, ok := canon.NodeCosts[n]; ok {
			nodeCosts[m] = c
		}
		for _, c := range n.Children {
			m.AddChild(rec(c))
		}
		return m
	}
	d := &hypertree.Decomposition{H: h2, Root: rec(canon.Decomp.Root)}
	d.Nodes()
	return &cost.Plan{Query: fq, Decomp: d, EstimatedCost: canon.EstimatedCost, NodeCosts: nodeCosts}, nil
}

// remapDecomposition translates a canonical cached decomposition onto the
// caller's hypergraph via the caller's canonicalization maps.
func remapDecomposition(d *hypertree.Decomposition, hc *HypergraphCanon, target *hypergraph.Hypergraph) *hypertree.Decomposition {
	var rec func(n *hypertree.Node) *hypertree.Node
	rec = func(n *hypertree.Node) *hypertree.Node {
		chi := target.NewVarset()
		n.Chi.ForEach(func(v int) { chi.Set(hc.VarFromCanon[v]) })
		lambda := make([]int, len(n.Lambda))
		for i, e := range n.Lambda {
			lambda[i] = hc.EdgeFromCanon[e]
		}
		m := hypertree.NewNode(chi, lambda)
		for _, c := range n.Children {
			m.AddChild(rec(c))
		}
		return m
	}
	out := &hypertree.Decomposition{H: target, Root: rec(d.Root)}
	out.Nodes()
	return out
}
