package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
)

// CacheStats is a point-in-time snapshot of one cache's counters. The JSON
// tags are the serving layer's wire contract (/v1/stats).
type CacheStats struct {
	Hits         uint64 `json:"hits"`         // lookups answered from the cache
	Misses       uint64 `json:"misses"`       // lookups that required a computation (or joined one)
	Evictions    uint64 `json:"evictions"`    // entries dropped by the LRU policy
	Computations uint64 `json:"computations"` // underlying searches actually executed (misses minus singleflight dedup)
	Entries      int    `json:"entries"`      // entries currently resident
}

// add returns the field-wise sum of s and other.
func (s CacheStats) add(other CacheStats) CacheStats {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Computations += other.Computations
	s.Entries += other.Entries
	return s
}

// lru is a sharded, concurrency-safe LRU map. Keys are hashed onto shards
// with FNV-1a so unrelated keys contend on different locks; each shard is a
// classic map + intrusive list under one mutex. Counters are process-wide
// atomics.
type lru struct {
	shards   []*lruShard
	perShard int

	hits, misses, evictions, computations atomic.Uint64
}

type lruShard struct {
	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRU returns an LRU holding at most ~capacity entries spread over the
// given number of shards (both floored at 1; shards are clamped to
// capacity so tiny caches are not silently inflated). Capacity is rounded
// up to a multiple of the shard count and enforced per shard, so a shard
// receiving a skewed share of keys evicts before the global capacity is
// reached.
func newLRU(capacity, shards int) *lru {
	if shards < 1 {
		shards = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	if shards > capacity {
		shards = capacity
	}
	per := (capacity + shards - 1) / shards
	c := &lru{shards: make([]*lruShard, shards), perShard: per}
	for i := range c.shards {
		c.shards[i] = &lruShard{ll: list.New(), items: map[string]*list.Element{}}
	}
	return c
}

func (c *lru) shardFor(key string) *lruShard {
	// Inline FNV-1a; no allocation.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return c.shards[h%uint64(len(c.shards))]
}

// get returns the cached value and bumps it to most-recently-used,
// recording a hit or miss.
func (c *lru) get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*lruEntry).val, true
}

// peek returns the cached value without touching the hit/miss counters:
// peer-serving and persistence probes must not distort the workload's
// cache statistics. Recency is still bumped — an exported entry is hot.
func (c *lru) peek(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return el.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) an entry, evicting the least recently used
// entry of the shard when over capacity.
func (c *lru) add(key string, val any) {
	// Chaos: Drop discards the entry instead of storing it — an instant
	// eviction. Correctness must not depend on an add being durable, so
	// under injection every insert may silently vanish; it is counted as
	// an eviction to keep the counter invariants honest.
	if chaos.Hit(chaos.CacheAdd, chaos.Drop)&chaos.Drop != 0 {
		c.evictions.Add(1)
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*lruEntry).val = val
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.ll.PushFront(&lruEntry{key: key, val: val})
	var evicted int
	for s.ll.Len() > c.perShard {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*lruEntry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// keys snapshots the resident keys without touching recency or counters.
// The snapshot is per-shard consistent, not globally atomic — concurrent
// adds and evictions may or may not appear, which is fine for maintenance
// sweeps like re-keying.
func (c *lru) keys() []string {
	var out []string
	for _, s := range c.shards {
		s.mu.Lock()
		for k := range s.items {
			out = append(out, k)
		}
		s.mu.Unlock()
	}
	return out
}

// len returns the number of resident entries.
func (c *lru) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// stats snapshots the counters.
func (c *lru) stats() CacheStats {
	return CacheStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		Computations: c.computations.Load(),
		Entries:      c.len(),
	}
}
