package cache

import (
	"sort"
	"sync"
)

// PlannerSet hands out Planner instances keyed by tenant. In the default
// shared mode every tenant receives the same Planner, so structurally
// identical queries from different tenants coalesce into one computation —
// the cache key already includes statistics, so tenants with different data
// never share a stale plan, only the search effort. In isolated mode each
// tenant gets a private Planner (own capacity, own counters), trading
// cross-tenant amortization for isolation.
//
// Safe for concurrent use.
type PlannerSet struct {
	opts     Options
	isolated bool

	mu       sync.RWMutex
	shared   *Planner
	byTenant map[string]*Planner
}

// NewPlannerSet returns a PlannerSet building Planners with opts.
func NewPlannerSet(opts Options, isolated bool) *PlannerSet {
	s := &PlannerSet{opts: opts, isolated: isolated, byTenant: map[string]*Planner{}}
	if !isolated {
		s.shared = NewPlanner(opts)
	}
	return s
}

// Isolated reports whether tenants get private Planner instances.
func (s *PlannerSet) Isolated() bool { return s.isolated }

// For returns the Planner serving the given tenant, creating it on first
// use in isolated mode.
func (s *PlannerSet) For(tenant string) *Planner {
	if !s.isolated {
		return s.shared
	}
	s.mu.RLock()
	p := s.byTenant[tenant]
	s.mu.RUnlock()
	if p != nil {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.byTenant[tenant]; p != nil {
		return p
	}
	p = NewPlanner(s.opts)
	s.byTenant[tenant] = p
	return p
}

// Tenants lists tenants with a materialized Planner, sorted. Empty in
// shared mode.
func (s *PlannerSet) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byTenant))
	for t := range s.byTenant {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// StatsByTenant snapshots per-tenant counters. In shared mode the single
// shared Planner is reported under the empty tenant name.
func (s *PlannerSet) StatsByTenant() map[string]Stats {
	if !s.isolated {
		return map[string]Stats{"": s.shared.Stats()}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]Stats, len(s.byTenant))
	for t, p := range s.byTenant {
		out[t] = p.Stats()
	}
	return out
}

// Aggregate sums the counters over all Planners of the set.
func (s *PlannerSet) Aggregate() Stats {
	if !s.isolated {
		return s.shared.Stats()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var agg Stats
	for _, p := range s.byTenant {
		agg = agg.Add(p.Stats())
	}
	return agg
}
