package cache

import (
	"fmt"
	"sync"

	"repro/internal/chaos"
)

// flightGroup deduplicates concurrent computations by key: while one
// goroutine runs fn for a key, later callers with the same key block and
// receive the same result instead of re-running the search. A minimal
// in-repo singleflight (the module is dependency-free by design).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// do runs fn once per concurrent set of callers sharing key. shared is true
// for callers that joined an in-flight computation instead of running fn.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Release waiters and deregister the flight even if fn panics;
	// otherwise every future request for this key would join a dead
	// flight and block forever. Waiters of a panicked flight receive an
	// error; the panic itself propagates in the computing goroutine.
	defer func() {
		r := recover()
		if r != nil {
			c.err = fmt.Errorf("cache: panic in singleflight compute: %v", r)
		}
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		if r != nil {
			panic(r)
		}
	}()
	// Chaos: the flight is registered, so every coalesced waiter is now
	// committed to this computation — an injected delay here makes waiters
	// race their cancellation paths, and an injected failure must propagate
	// to all of them without poisoning any cache (ErrInjected is never a
	// domain error, so nothing downstream records it).
	if chaos.Hit(chaos.CacheFlight, chaos.Delay|chaos.Fail)&chaos.Fail != 0 {
		c.err = chaos.ErrInjected
		return nil, false, c.err
	}
	c.val, c.err = fn()
	return c.val, false, c.err
}
