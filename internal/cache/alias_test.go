package cache

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
)

// Canonicalization must treat aliases as renameable: any two queries equal
// up to a renaming of variables AND aliases (and atom order) share a key.

func TestCanonicalizeQueryAliasInvariance(t *testing.T) {
	groups := [][]string{
		{ // two-step path self-join
			"ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z).",
			"ans(A,C) :- e AS p(A,B), e AS q(B,C).",
			"ans(A,C) :- e AS q(B,C), e AS p(A,B).", // atom order
			"ans(X,Z) :- e(X,Y), e(Y,Z).",           // auto-aliased
		},
		{ // triangle: fully symmetric, exercises the permutation search
			"ans :- e AS e1(X,Y), e AS e2(Y,Z), e AS e3(Z,X).",
			"ans :- e AS c(W,U), e AS a(U,V), e AS b(V,W).",
			"ans :- e(X,Y), e(Y,Z), e(Z,X).",
		},
		{ // self-join mixed with a second relation
			"ans(X) :- e AS e1(X,Y), e AS e2(Y,Z), r(Z,X).",
			"ans(P) :- r(Q,P), e AS b(R,Q), e AS a(P,R).",
		},
	}
	for gi, group := range groups {
		want := ""
		for qi, text := range group {
			qc, err := CanonicalizeQuery(mustParseQuery(t, text))
			if err != nil {
				t.Fatalf("group %d %q: %v", gi, text, err)
			}
			if qi == 0 {
				want = qc.Key
				continue
			}
			if qc.Key != want {
				t.Errorf("group %d: %q key %q != %q", gi, text, qc.Key, want)
			}
		}
	}
}

func TestCanonicalizeQueryAliasDistinguishes(t *testing.T) {
	base := mustParseQuery(t, "ans :- e AS e1(X,Y), e AS e2(Y,Z).")
	variants := []string{
		"ans :- e AS e1(X,Y), e AS e2(X,Y).", // parallel, not a path
		"ans :- e AS e1(X,Y), e AS e2(X,Z).", // fork
		"ans :- e AS e1(X,Y), f AS f1(Y,Z).", // different base relation
		"ans :- e AS e1(X,Y), e AS e2(Y,X).", // reversed column roles... same structure? no: occurrence pattern differs
		"ans(X) :- e AS e1(X,Y), e AS e2(Y,Z).",
	}
	kb, err := CanonicalizeQuery(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range variants {
		q := mustParseQuery(t, text)
		kq, err := CanonicalizeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if kq.Key == kb.Key {
			t.Errorf("%q collided with %q", text, base)
		}
	}
}

func TestCanonicalizeQueryAtomMaps(t *testing.T) {
	q := mustParseQuery(t, "ans(X) :- e AS foo(X,Y), e AS bar(Y,Z), r(Z,X).")
	qc, err := CanonicalizeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := qc.Query.Validate(); err != nil {
		t.Fatalf("canonical query invalid: %v", err)
	}
	for caller, canon := range qc.AtomToCanon {
		if qc.AtomFromCanon[canon] != caller {
			t.Errorf("AtomFromCanon[%q] = %q, want %q", canon, qc.AtomFromCanon[canon], caller)
		}
	}
	// Unaliased atoms keep their predicate as canonical name.
	if qc.CanonAtomName("r") != "r" {
		t.Errorf("unaliased atom renamed: %q", qc.CanonAtomName("r"))
	}
	// Aliased atoms canonicalize to pred#i, distinct per alias.
	cf, cb := qc.CanonAtomName("foo"), qc.CanonAtomName("bar")
	if cf == "foo" || cb == "bar" || cf == cb {
		t.Errorf("alias canonicalization wrong: foo→%q bar→%q", cf, cb)
	}
	// Fresh variables follow the atom-name maps in both directions.
	fresh := "foo" + cq.FreshSuffix
	if got := qc.CallerVarName(qc.CanonVarName(fresh)); got != fresh {
		t.Errorf("fresh variable round trip: %q", got)
	}
	// A single aliased use of a relation canonicalizes like the bare atom.
	solo := mustParseQuery(t, "ans :- e AS only(X,Y), r(Y,X).")
	bare := mustParseQuery(t, "ans :- e(X,Y), r(Y,X).")
	ks, err := CanonicalizeQuery(solo)
	if err != nil {
		t.Fatal(err)
	}
	kbq, err := CanonicalizeQuery(bare)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Key != kbq.Key {
		t.Errorf("solo alias should canonicalize like the bare atom: %q vs %q", ks.Key, kbq.Key)
	}
}

// selfJoinCatalog builds an analyzed catalog with one binary edge relation
// (for path/triangle self-joins) plus a helper relation r.
func selfJoinCatalog(t testing.TB, seed int64) *db.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cat, err := db.GenerateCatalog(rng, []db.Spec{
		{Name: "e", Attrs: []string{"src", "dst"}, Card: 30, Distinct: map[string]int{"src": 10, "dst": 10}},
		{Name: "r", Attrs: []string{"a", "b"}, Card: 20, Distinct: map[string]int{"a": 8, "b": 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestPlannerSelfJoinRenamedAliasHit: a self-join plans through the cache;
// re-planning it under fresh variable AND alias names is a cache hit, and
// the remapped plan evaluates to the same relation as naive evaluation of
// the renamed query.
func TestPlannerSelfJoinRenamedAliasHit(t *testing.T) {
	cat := selfJoinCatalog(t, 1)
	p := NewPlanner(Options{})
	for _, tc := range []struct{ name, base, renamed string }{
		{"path", "ans(X,Z) :- e AS e1(X,Y), e AS e2(Y,Z).",
			"ans(P,R) :- e AS walk1(P,Q), e AS walk2(Q,R)."},
		{"triangle", "ans(X,Y,Z) :- e AS e1(X,Y), e AS e2(Y,Z), e AS e3(Z,X).",
			"ans(U,V,W) :- e AS c(U,V), e AS a(V,W), e AS b(W,U)."},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := mustParseQuery(t, tc.base)
			renamed := mustParseQuery(t, tc.renamed)
			basePlan, hit, err := p.PlanCached(base, cat, 2)
			if err != nil {
				t.Fatal(err)
			}
			if hit {
				t.Fatal("first plan of the structure reported a cache hit")
			}
			plan, hit, err := p.PlanCached(renamed, cat, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Fatal("alias+variable-renamed self-join missed the cache")
			}
			if plan.EstimatedCost != basePlan.EstimatedCost {
				t.Fatalf("remapped cost %v != original %v", plan.EstimatedCost, basePlan.EstimatedCost)
			}
			got, err := engine.EvalDecomposition(plan.Decomp, plan.Query, cat, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.EvalNaive(renamed, cat)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatal("remapped self-join plan computed a different relation than naive evaluation")
			}
		})
	}
}

// TestPlannerSelfJoinMatchesColdPath: the cached path must agree with the
// direct cost.CostKDecomp result on an aliased query (cost bit-identical).
func TestPlannerSelfJoinMatchesColdPath(t *testing.T) {
	cat := selfJoinCatalog(t, 2)
	q := mustParseQuery(t, "ans(X) :- e AS e1(X,Y), e AS e2(Y,Z), r(Z,X).")
	direct, err := cost.CostKDecomp(q, cat, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(Options{})
	for call := 0; call < 2; call++ { // cold, then remapped hit
		plan, err := p.Plan(q, cat, 2)
		if err != nil {
			t.Fatal(err)
		}
		if plan.EstimatedCost != direct.EstimatedCost {
			t.Fatalf("call %d: cached cost %v != direct %v", call, plan.EstimatedCost, direct.EstimatedCost)
		}
	}
}
