package cache

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
)

// The 4-cycle query is cyclic, so no width-1 decomposition exists: planning
// at k=1 must fail with ErrNoDecomposition, and the second request must be
// answered from the negative cache without a new search.
func TestNegativeCachePlan(t *testing.T) {
	cat := cycleCatalog(t, 1)
	p := NewPlanner(Options{})

	for round := 0; round < 3; round++ {
		q := cycleQuery(t, [4]string{"A", "B", "C", "D"})
		if round == 2 {
			q = cycleQuery(t, [4]string{"W", "X", "Y", "Z"}) // renamed: same structure
		}
		plan, hit, err := p.PlanCached(q, cat, 1)
		if !errors.Is(err, core.ErrNoDecomposition) {
			t.Fatalf("round %d: want ErrNoDecomposition, got plan=%v err=%v", round, plan, err)
		}
		if wantHit := round > 0; hit != wantHit {
			t.Fatalf("round %d: hit=%v, want %v", round, hit, wantHit)
		}
	}
	st := p.Stats()
	if st.Infeasible.Computations != 1 {
		t.Fatalf("infeasible computations = %d, want 1", st.Infeasible.Computations)
	}
	if st.Infeasible.Hits != 2 {
		t.Fatalf("infeasible hits = %d, want 2", st.Infeasible.Hits)
	}
	if st.Plans.Computations != 1 {
		t.Fatalf("plan computations = %d, want 1 (negative hits must not re-search)", st.Plans.Computations)
	}

	// The negative entry must not poison feasible widths.
	if _, _, err := p.PlanCached(cycleQuery(t, [4]string{"A", "B", "C", "D"}), cat, 2); err != nil {
		t.Fatalf("k=2 after negative k=1: %v", err)
	}
}

func TestNegativeCacheDecompose(t *testing.T) {
	h, err := hypergraph.Parse("e1(A,B)\ne2(B,C)\ne3(C,A)\n")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(Options{})
	for round := 0; round < 2; round++ {
		_, hit, err := p.DecomposeCached(h, 1)
		if !errors.Is(err, core.ErrNoDecomposition) {
			t.Fatalf("round %d: want ErrNoDecomposition, got %v", round, err)
		}
		if wantHit := round > 0; hit != wantHit {
			t.Fatalf("round %d: hit=%v, want %v", round, hit, wantHit)
		}
	}
	st := p.Stats()
	if st.Infeasible.Computations != 1 || st.Infeasible.Hits != 1 {
		t.Fatalf("infeasible counters = %+v, want 1 computation, 1 hit", st.Infeasible)
	}
	if st.Decompositions.Computations != 1 {
		t.Fatalf("decomposition computations = %d, want 1", st.Decompositions.Computations)
	}
}

// Workers > 1 routes cold misses through the parallel solver; the result
// must agree with the sequential planner.
func TestPlannerWorkersParallelSolver(t *testing.T) {
	cat := cycleCatalog(t, 1)
	seq := NewPlanner(Options{})
	par := NewPlanner(Options{Workers: 4})

	q := cycleQuery(t, [4]string{"A", "B", "C", "D"})
	want, err := seq.Plan(q, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := par.PlanCached(q, cat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold miss reported as hit")
	}
	if got.EstimatedCost != want.EstimatedCost {
		t.Fatalf("parallel cost %v != sequential %v", got.EstimatedCost, want.EstimatedCost)
	}
	if got.Decomp.Width() != want.Decomp.Width() {
		t.Fatalf("parallel width %d != sequential %d", got.Decomp.Width(), want.Decomp.Width())
	}
	if err := got.Decomp.Validate(); err != nil {
		t.Fatal(err)
	}
	// And the cached copy remaps like any other entry.
	if _, hit, err := par.PlanCached(cycleQuery(t, [4]string{"P", "Q", "R", "S"}), cat, 2); err != nil || !hit {
		t.Fatalf("renamed lookup after parallel cold miss: hit=%v err=%v", hit, err)
	}
}

func TestPlannerSetSharedCoalesces(t *testing.T) {
	set := NewPlannerSet(Options{}, false)
	if set.For("alice") != set.For("bob") {
		t.Fatal("shared mode must hand every tenant the same Planner")
	}
	cat := cycleCatalog(t, 1)
	if _, _, err := set.For("alice").PlanCached(cycleQuery(t, [4]string{"A", "B", "C", "D"}), cat, 2); err != nil {
		t.Fatal(err)
	}
	_, hit, err := set.For("bob").PlanCached(cycleQuery(t, [4]string{"W", "X", "Y", "Z"}), cat, 2)
	if err != nil || !hit {
		t.Fatalf("cross-tenant structurally identical query: hit=%v err=%v", hit, err)
	}
	if got := set.Aggregate().Plans.Computations; got != 1 {
		t.Fatalf("computations = %d, want 1", got)
	}
}

func TestPlannerSetIsolated(t *testing.T) {
	set := NewPlannerSet(Options{}, true)
	if set.For("alice") == set.For("bob") {
		t.Fatal("isolated mode must hand tenants distinct Planners")
	}
	if set.For("alice") != set.For("alice") {
		t.Fatal("per-tenant Planner must be stable")
	}
	cat := cycleCatalog(t, 1)
	for _, tenant := range []string{"alice", "bob"} {
		if _, _, err := set.For(tenant).PlanCached(cycleQuery(t, [4]string{"A", "B", "C", "D"}), cat, 2); err != nil {
			t.Fatal(err)
		}
	}
	by := set.StatsByTenant()
	if len(by) != 2 || by["alice"].Plans.Computations != 1 || by["bob"].Plans.Computations != 1 {
		t.Fatalf("per-tenant stats = %+v, want one computation each", by)
	}
	if agg := set.Aggregate(); agg.Plans.Computations != 2 {
		t.Fatalf("aggregate computations = %d, want 2 (no cross-tenant sharing)", agg.Plans.Computations)
	}
	if got := set.Tenants(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("tenants = %v", got)
	}
}

// Concurrent For calls in isolated mode must race-safely intern one Planner
// per tenant.
func TestPlannerSetConcurrentFor(t *testing.T) {
	set := NewPlannerSet(Options{}, true)
	const goroutines = 16
	planners := make([]*Planner, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			planners[i] = set.For("tenant")
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if planners[i] != planners[0] {
			t.Fatal("concurrent For returned distinct Planners for one tenant")
		}
	}
}
