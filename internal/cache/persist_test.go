package cache

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/cq/cqgen"
	"repro/internal/db"
	"repro/internal/engine"
)

// q1Catalog builds an analyzed catalog for the Q1 fixture: one generated
// instance of Q1's relations at toy scale.
func q1Catalog(t *testing.T) *db.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var specs []db.Spec
	q := cq.Q1()
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		if seen[a.Predicate] {
			continue
		}
		seen[a.Predicate] = true
		attrs := make([]string, len(a.Vars))
		distinct := make(map[string]int, len(a.Vars))
		for i := range a.Vars {
			attrs[i] = string(rune('a' + i))
			distinct[attrs[i]] = 10
		}
		specs = append(specs, db.Spec{Name: a.Predicate, Attrs: attrs, Card: 30, Distinct: distinct})
	}
	cat, err := db.GenerateCatalog(rng, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func planJSON(t *testing.T, p *Planner, q *cq.Query, cat *db.Catalog, k int) []byte {
	t.Helper()
	plan, _, err := p.PlanCached(q, cat, k)
	if err != nil {
		t.Fatalf("PlanCached: %v", err)
	}
	raw, err := json.Marshal(engine.SerializeDecomposition(plan.Decomp, plan.NodeCosts))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestPlanRecordRoundTripByteIdentical is the determinism oracle of the
// distributed tier at the cache layer: exporting a canonical entry,
// shipping it through JSON (the wire and disk format), and importing it on
// a fresh Planner must serve byte-identical plans to a local computation —
// for renamed callers too.
func TestPlanRecordRoundTripByteIdentical(t *testing.T) {
	cat := q1Catalog(t)
	queries := []*cq.Query{cq.Q1()}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		cfg := cqgen.Config{Atoms: 3 + rng.Intn(3), MaxArity: 3, MaxCard: 10}
		if i%2 == 1 {
			cfg.SelfJoin = 0.5
		}
		inst := cqgen.MustGenerate(rng, cfg)
		if err := inst.Catalog.AnalyzeAll(); err != nil {
			t.Fatal(err)
		}
		queries = append(queries, inst.Query)
		t.Run("", func(t *testing.T) {
			roundTripOne(t, inst.Query, inst.Catalog, 3)
		})
	}
	roundTripOne(t, queries[0], cat, 3)
}

func roundTripOne(t *testing.T, q *cq.Query, cat *db.Catalog, k int) {
	t.Helper()
	src := NewPlanner(Options{})
	probe, err := src.ProbePlan(q, cat, k)
	if err != nil {
		t.Fatalf("ProbePlan: %v", err)
	}
	want := planJSON(t, src, q, cat, k)

	rec, ok := src.ExportPlan(probe.Key)
	if !ok {
		t.Fatalf("ExportPlan: computed entry not resident under its probe key")
	}
	wire, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var decoded PlanRecord
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}

	dst := NewPlanner(Options{})
	if err := dst.ImportPlan(probe.Key, &decoded); err != nil {
		t.Fatalf("ImportPlan: %v", err)
	}
	// The import must be a warm answer: LookupPlan, not a search.
	dprobe, err := dst.ProbePlan(q, cat, k)
	if err != nil {
		t.Fatal(err)
	}
	if dprobe.Key != probe.Key {
		t.Fatalf("probe keys diverge across planners:\n  %q\n  %q", dprobe.Key, probe.Key)
	}
	plan, ok, err := dst.LookupPlan(dprobe)
	if err != nil || !ok {
		t.Fatalf("LookupPlan after import: ok=%v err=%v", ok, err)
	}
	got, err := json.Marshal(engine.SerializeDecomposition(plan.Decomp, plan.NodeCosts))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("imported plan deviates from local computation:\n  got  %s\n  want %s", got, want)
	}
	if st := dst.Stats(); st.Plans.Computations != 0 {
		t.Fatalf("import triggered a search: %+v", st.Plans)
	}

	// A variable-renamed caller hits the imported entry too, byte-for-byte
	// against the source planner's answer for the same renamed query.
	ren := cqgen.Renamed(q, "rt")
	wantRen := planJSON(t, src, ren, cat, k)
	gotRen := planJSON(t, dst, ren, cat, k)
	if !bytes.Equal(gotRen, wantRen) {
		t.Fatalf("renamed caller deviates after import:\n  got  %s\n  want %s", gotRen, wantRen)
	}
}

func TestProbeLookupComputeMatchesPlanCached(t *testing.T) {
	cat := q1Catalog(t)
	q := cq.Q1()
	p := NewPlanner(Options{})
	probe, err := p.ProbePlan(q, cat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := p.LookupPlan(probe); ok || err != nil {
		t.Fatalf("cold lookup: ok=%v err=%v", ok, err)
	}
	plan, shared, err := p.ComputePlan(probe)
	if err != nil || shared {
		t.Fatalf("ComputePlan: shared=%v err=%v", shared, err)
	}
	plan2, ok, err := p.LookupPlan(probe)
	if !ok || err != nil {
		t.Fatalf("warm lookup: ok=%v err=%v", ok, err)
	}
	a, _ := json.Marshal(engine.SerializeDecomposition(plan.Decomp, plan.NodeCosts))
	b, _ := json.Marshal(engine.SerializeDecomposition(plan2.Decomp, plan2.NodeCosts))
	if !bytes.Equal(a, b) {
		t.Fatalf("lookup deviates from compute:\n  %s\n  %s", a, b)
	}
}

func TestNegativeImportExport(t *testing.T) {
	// The triangle at k=1 is genuinely infeasible.
	q := cq.MustParse("ans(X) :- r0(X,Y), r1(Y,Z), r2(Z,X).")
	rng := rand.New(rand.NewSource(5))
	cat, err := db.GenerateCatalog(rng, []db.Spec{
		{Name: "r0", Attrs: []string{"a", "b"}, Card: 6, Distinct: map[string]int{"a": 4, "b": 4}},
		{Name: "r1", Attrs: []string{"a", "b"}, Card: 6, Distinct: map[string]int{"a": 4, "b": 4}},
		{Name: "r2", Attrs: []string{"a", "b"}, Card: 6, Distinct: map[string]int{"a": 4, "b": 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	src := NewPlanner(Options{})
	probe, err := src.ProbePlan(q, cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := src.ComputePlan(probe); !errors.Is(err, core.ErrNoDecomposition) {
		t.Fatalf("triangle at k=1: %v", err)
	}
	if !src.ExportInfeasible(probe.NegKey) {
		t.Fatal("infeasibility verdict not exported")
	}
	dst := NewPlanner(Options{})
	dst.ImportInfeasible(probe.NegKey)
	if _, ok, err := dst.LookupPlan(probe); !ok || !errors.Is(err, core.ErrNoDecomposition) {
		t.Fatalf("imported verdict not honored: ok=%v err=%v", ok, err)
	}
	if st := dst.Stats(); st.Infeasible.Computations != 0 {
		t.Fatalf("import counted a computation: %+v", st.Infeasible)
	}
}

func TestImportRejectsCorruptRecords(t *testing.T) {
	p := NewPlanner(Options{})
	cases := []*PlanRecord{
		nil,
		{},
		{Edges: []RecordEdge{{Name: "e", Vars: []string{"X"}}}}, // no root
		{Edges: []RecordEdge{{Name: "e", Vars: []string{"X"}}},
			Root: &engine.PlanNode{Lambda: []string{"missing"}, Chi: []string{"X"}}},
		{Edges: []RecordEdge{{Name: "e", Vars: []string{"X"}}},
			Root: &engine.PlanNode{Lambda: []string{"e"}, Chi: []string{"Y"}}},
		{Edges: []RecordEdge{{Name: "e", Vars: []string{"X"}}, {Name: "e", Vars: []string{"X"}}},
			Root: &engine.PlanNode{Lambda: []string{"e"}, Chi: []string{"X"}}},
	}
	for i, rec := range cases {
		if err := p.ImportPlan("key", rec); err == nil {
			t.Fatalf("case %d: corrupt record imported without error", i)
		}
	}
	if st := p.Stats(); st.Plans.Entries != 0 {
		t.Fatalf("corrupt import left entries: %+v", st.Plans)
	}
}

func TestUncacheableProbe(t *testing.T) {
	p := NewPlanner(Options{})
	// Duplicate atom names cannot be canonicalized.
	q := &cq.Query{Head: "ans", Atoms: []cq.Atom{
		{Predicate: "r", Vars: []string{"X", "Y"}},
		{Predicate: "r", Vars: []string{"Y", "Z"}},
	}}
	if _, err := p.ProbePlan(q, db.NewCatalog(), 2); !errors.Is(err, ErrUncacheable) {
		t.Fatalf("duplicate atoms: got %v, want ErrUncacheable", err)
	}
}
