package chaos

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Rule is one fault: at Point, with probability Prob per hit, perform
// Effect. Decisions are a pure function of (schedule seed, point, rule
// index, per-point hit index), so a schedule replays the same fault
// pattern for the same interleaving-independent hit counts — the whole
// harness reproduces from the seed plus the printed schedule.
type Rule struct {
	Point  Point
	Prob   float64       // firing probability per hit; >= 1 fires always
	Effect Effect        // effects attempted when fired (masked by the site)
	Delay  time.Duration // base sleep when Effect includes Delay
	Jitter time.Duration // extra deterministic pseudo-random sleep in [0, Jitter)
	After  int           // skip the first After hits of the point
	Limit  int           // max fires of this rule; 0 = unlimited
}

func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s p=%g eff=%s", r.Point, r.Prob, r.Effect)
	if r.Delay > 0 {
		fmt.Fprintf(&b, " delay=%s", r.Delay)
	}
	if r.Jitter > 0 {
		fmt.Fprintf(&b, " jitter=%s", r.Jitter)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, " after=%d", r.After)
	}
	if r.Limit > 0 {
		fmt.Fprintf(&b, " limit=%d", r.Limit)
	}
	return b.String()
}

// Schedule is a deterministic Injector: a seed plus a rule list. Safe for
// concurrent use; all mutable state is atomic counters.
type Schedule struct {
	Seed  int64
	Rules []Rule

	hits  [numPoints]atomic.Uint64
	fires []atomic.Uint64
}

// NewSchedule builds a Schedule over the given rules.
func NewSchedule(seed int64, rules ...Rule) *Schedule {
	return &Schedule{Seed: seed, Rules: rules, fires: make([]atomic.Uint64, len(rules))}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, allocation-free,
// statistically solid hash from a counter to a uniform 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Act implements Injector. Delay is slept here; Panic is raised here (after
// all matching rules ran, so one hit can both delay and panic); Fail and
// Drop are returned for the site.
func (s *Schedule) Act(p Point, allowed Effect) Effect {
	n := s.hits[p].Add(1) - 1
	var fired Effect
	var sleep time.Duration
	for i := range s.Rules {
		r := &s.Rules[i]
		if r.Point != p || n < uint64(r.After) {
			continue
		}
		x := splitmix64(uint64(s.Seed)<<16 ^ uint64(p)<<8 ^ uint64(i) ^ n<<24)
		if r.Prob < 1 && float64(x>>11)/(1<<53) >= r.Prob {
			continue
		}
		if r.Limit > 0 && s.fires[i].Add(1) > uint64(r.Limit) {
			continue
		}
		ef := r.Effect & allowed
		fired |= ef
		if ef&Delay != 0 {
			sleep += r.Delay
			if r.Jitter > 0 {
				sleep += time.Duration(splitmix64(x) % uint64(r.Jitter))
			}
		}
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fired&Panic != 0 {
		panic(injectedPanic{p})
	}
	return fired
}

// Hits returns how many times point p was consulted.
func (s *Schedule) Hits(p Point) uint64 { return s.hits[p].Load() }

// TotalHits sums the hit counters over all points.
func (s *Schedule) TotalHits() uint64 {
	var total uint64
	for i := range s.hits {
		total += s.hits[i].Load()
	}
	return total
}

// String renders the replay line printed with every harness failure:
// the seed plus every rule, enough to reconstruct the schedule exactly.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.Seed)
	for _, r := range s.Rules {
		b.WriteString(" [")
		b.WriteString(r.String())
		b.WriteByte(']')
	}
	return b.String()
}
