// Package chaos is the deterministic fault-injection layer behind the
// resilience harness: named injection points threaded through the planner
// (parallel search waves), the cache (singleflight computes, LRU inserts),
// and the serving layer (handlers, the micro-batcher, catalog publication,
// shutdown), plus a seed-reproducible fault Schedule that decides, per hit,
// whether to delay, panic, fail, or drop.
//
// The design contract is zero cost on the hot path: every hook site calls
// Hit, and with no injector registered Hit is one atomic pointer load and a
// branch — no allocation, no lock, no time syscall. The standing
// allocation-ceiling tests and the CI bench-regression gate pin this.
//
// Faults are requested by sites, not forced on them: a site passes the set
// of effects it can honor safely (e.g. the parallel weigh wave allows
// Delay|Panic because re-weighing a chunk is idempotent; structural
// discovery allows Delay only because interning appends are not), and the
// injector's answer is masked by that set. Injected panics carry a sentinel
// recognized by IsInjected, so recovery paths never swallow a genuine bug.
package chaos

import (
	"errors"
	"sync/atomic"
)

// Point names an injection site. Sites are stable identifiers: a failing
// seed + schedule reproduces only if the set of points and their hit sites
// stay put, so new points are appended, never renumbered.
type Point uint8

const (
	// CoreWeighWave fires in each phase-2 weigh worker, at the start and
	// midpoint of its chunk. Allows Delay and Panic (chunks re-weigh).
	CoreWeighWave Point = iota
	// CoreDiscoverWave fires in each phase-1 discovery worker before it
	// expands its frontier chunk. Delay only: interning is not idempotent.
	CoreDiscoverWave
	// CostFamilyAt fires inside PlanSearchFamily.At before a width's
	// k-vertex enumeration, widening the race window between concurrent
	// cold misses on one structure.
	CostFamilyAt
	// CacheFlight fires inside the singleflight compute, after the flight
	// is registered and before the search runs — coalesced waiters race
	// cancellation against the injected latency. Allows Delay and Fail.
	CacheFlight
	// CacheAdd fires on LRU insert. Drop discards the entry instead of
	// storing it (an instant eviction), forcing recomputation under load.
	CacheAdd
	// ServerHandler fires per admitted HTTP request, before the handler —
	// injected latency holds an admission slot and starves the limiter.
	ServerHandler
	// ServerBatch fires in each batch-group goroutine before planning.
	ServerBatch
	// ServerCatalogPut fires between catalog analysis and publication,
	// widening the window a catalog PUT races in-flight plans.
	ServerCatalogPut
	// ServerShutdown fires on the graceful-shutdown path before the HTTP
	// server begins draining.
	ServerShutdown
	// ClusterPeerRPC fires in the peer RPC client before each call to
	// another replica. Delay injects inter-node latency; Fail simulates a
	// network partition (the call errors without touching the wire), so
	// peer fetches must fall back to the local cold path.
	ClusterPeerRPC
	// StoreAppend fires in the persistent plan store before each record
	// append. Delay stalls the write; Drop tears it — only a prefix of the
	// record reaches the segment and the store behaves as crashed (all
	// later appends fail), so recovery-on-reopen is the only way forward.
	StoreAppend
	// ClusterPeerBreaker fires when a peer's circuit breaker would admit a
	// half-open probe after its cooldown. Fail denies the probe — the
	// breaker stays open, modelling a flapping link that keeps failing
	// health probes while real traffic would succeed. Delay stalls the
	// admission decision.
	ClusterPeerBreaker
	// ServerHintDrain fires in the hinted-handoff drainer before each
	// queued hint is replayed toward its owner. Delay stalls the drain;
	// Fail fails the replay attempt (the hint stays queued for the next
	// pass), so convergence after a heal must tolerate a lossy drain path.
	ServerHintDrain
	// EngineBatch fires in the streaming evaluator at the top of every
	// batch pull — after the stream has been established and, typically,
	// after some row frames are already on the wire. Delay stalls the
	// stream mid-flight; Fail aborts it, which the serving layer must
	// surface as a well-formed error trailer, never a silently truncated
	// success.
	EngineBatch

	numPoints = int(EngineBatch) + 1
)

var pointNames = [numPoints]string{
	"core.weigh.wave",
	"core.discover.wave",
	"cost.family.at",
	"cache.flight",
	"cache.add",
	"server.handler",
	"server.batch",
	"server.catalog.put",
	"server.shutdown",
	"cluster.peer.rpc",
	"store.append",
	"cluster.peer.breaker",
	"server.hint.drain",
	"engine.batch",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "chaos.point.unknown"
}

// NumPoints is the number of defined injection points.
func NumPoints() int { return numPoints }

// Effect is a bitmask of fault effects. Delay and Panic are performed by
// the injector inside Hit (sleep; panic with an IsInjected sentinel); Fail
// and Drop are returned to the site, which honors them in a site-specific
// way (fail the computation with ErrInjected; discard the artifact).
type Effect uint8

const (
	Delay Effect = 1 << iota
	Panic
	Fail
	Drop
)

func (e Effect) String() string {
	if e == 0 {
		return "none"
	}
	var s string
	add := func(bit Effect, name string) {
		if e&bit != 0 {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(Delay, "delay")
	add(Panic, "panic")
	add(Fail, "fail")
	add(Drop, "drop")
	return s
}

// ErrInjected is the failure a site reports when the injector answers Fail.
// It is deliberately not core.ErrNoDecomposition or any other domain error:
// injected failures must never be mistaken for (or cached as) real results.
var ErrInjected = errors.New("chaos: injected failure")

// injectedPanic is the value an injected Panic carries.
type injectedPanic struct{ p Point }

func (ip injectedPanic) String() string { return "chaos: injected panic at " + ip.p.String() }

// IsInjected reports whether a recovered panic value was injected by this
// package. Recovery paths must re-panic anything else.
func IsInjected(r any) bool {
	_, ok := r.(injectedPanic)
	return ok
}

// Injector decides faults at injection points. Act is called concurrently
// from every hooked goroutine; implementations must be safe for concurrent
// use and must only perform effects present in allowed.
type Injector interface {
	Act(p Point, allowed Effect) Effect
}

// holder wraps the interface so it can live in an atomic.Pointer.
type holder struct{ inj Injector }

var active atomic.Pointer[holder]

// Register installs inj as the process-wide injector and returns the
// deregistration function. At most one injector may be active; Register
// panics on a second concurrent registration — chaos runs are sequential
// by construction (a shared fault plane cannot serve two experiments).
func Register(inj Injector) (unregister func()) {
	h := &holder{inj: inj}
	if !active.CompareAndSwap(nil, h) {
		panic("chaos: injector already registered")
	}
	return func() { active.CompareAndSwap(h, nil) }
}

// Active reports whether an injector is registered. Sites with non-trivial
// fault scaffolding (e.g. a recover wrapper) branch on it so the scaffold
// itself is skipped on the hot path.
func Active() bool { return active.Load() != nil }

// Hit consults the registered injector at point p, offering the effects the
// site can honor. With no injector registered it is a no-op returning 0.
// Delay (sleep) and Panic happen inside the call; Fail and Drop are
// returned for the site to honor.
func Hit(p Point, allowed Effect) Effect {
	h := active.Load()
	if h == nil {
		return 0
	}
	return h.inj.Act(p, allowed) & allowed
}
