package chaos

import (
	"fmt"
	"runtime"
	"time"
)

// CurrentGoroutines returns the live goroutine count — the baseline to
// capture before starting a system whose shutdown VerifyNoGoroutineLeak
// will check.
func CurrentGoroutines() int { return runtime.NumGoroutine() }

// VerifyNoGoroutineLeak waits until the process goroutine count is back at
// (or below) base, polling until the deadline. On timeout it returns an
// error carrying a full stack dump — the shutdown-drains-cleanly invariant
// of the harness. base is typically runtime.NumGoroutine() captured before
// the system under test was started.
func VerifyNoGoroutineLeak(base int, within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("chaos: goroutine leak: %d live, baseline %d\n%s", n, base, buf)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
