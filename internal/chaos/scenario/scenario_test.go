package scenario

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestChaosScenarios runs the standing chaos suite. Every failure message
// embeds (scenario, seed, schedule); replay a failure with
//
//	CHAOS_SEED=<seed> go test -race -run 'TestChaosScenarios/<scenario>' ./internal/chaos/scenario/
//
// CHAOS_SEEDS widens the sweep (nightly soak runs many seeds); when
// CHAOS_FAIL_FILE is set, the reproduction lines of failing runs are
// appended there so CI can upload them as an artifact.
func TestChaosScenarios(t *testing.T) {
	baseSeed := envInt64(t, "CHAOS_SEED", 1)
	seeds := envInt64(t, "CHAOS_SEEDS", 1)
	for _, sc := range Scenarios() {
		for seed := baseSeed; seed < baseSeed+seeds; seed++ {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed=%d", sc.Name, seed), func(t *testing.T) {
				opt := Options{Seed: seed, Logf: t.Logf}
				if testing.Short() {
					opt.Requests = 40
					opt.Queries = 6
				}
				if err := Run(sc, opt); err != nil {
					recordFailure(t, err)
					t.Error(err)
				}
			})
		}
	}
}

func envInt64(t *testing.T, name string, def int64) int64 {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad %s=%q: %v", name, s, err)
	}
	return v
}

// recordFailure appends the reproduction line to $CHAOS_FAIL_FILE (CI
// uploads the file as an artifact on failure).
func recordFailure(t *testing.T, err error) {
	path := os.Getenv("CHAOS_FAIL_FILE")
	if path == "" {
		return
	}
	f, ferr := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if ferr != nil {
		t.Logf("CHAOS_FAIL_FILE: %v", ferr)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", err)
}
