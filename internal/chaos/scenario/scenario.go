// Package scenario is the chaos e2e harness: it replays seeded
// cqgen-generated workloads against a live planserver while a
// chaos.Schedule injects faults — worker crashes and stalls mid-search,
// singleflight delays and failures, instant cache evictions, handler
// latency that starves the admission limiter, catalog churn racing
// in-flight plans, and mid-flight shutdown — and asserts that the repo's
// standing invariants hold anyway:
//
//   - determinism oracle: every 200 plan response is byte-identical to the
//     chaos-free baseline plan (same serialized tree, same cost bits);
//   - cache-hit correctness: repeated and evicted-then-recomputed requests
//     return those same bytes, hit or miss;
//   - negative-cache soundness: 422 if and only if the structure is truly
//     infeasible at that width, under races and injected failures;
//   - limiter conservation: every offered request is accounted for exactly
//     once (served, rejected, failed-by-injection, or cancelled) and no
//     admission slot leaks;
//   - shutdown drains: the server exits within its timeout and the process
//     returns to its goroutine baseline (leak check with stack dump).
//
// Everything is deterministic per (scenario, seed): a failure message
// carries the scenario name, the seed, and the fault schedule — the triple
// reproduces the run.
package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/cq/cqgen"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/server"
)

// Options tunes a harness run. The zero value is normalized to a small,
// CI-sized run.
type Options struct {
	Seed        int64 // workload + schedule seed (default 1)
	Queries     int   // distinct cqgen queries in the workload (default 10)
	Requests    int   // total HTTP requests offered (default 80)
	Concurrency int   // client workers (default 8)
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Queries <= 0 {
		o.Queries = 10
	}
	if o.Requests <= 0 {
		o.Requests = 80
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Scenario is one named fault experiment: a schedule generator plus the
// server tuning and run shape it needs.
type Scenario struct {
	Name        string
	Description string
	// Rules builds the seeded fault schedule.
	Rules func(seed int64) []chaos.Rule
	// Tune adjusts the server config (limits, batching, workers).
	Tune func(cfg *server.Config)
	// TuneCluster adjusts each replica's cluster config (breaker windows,
	// hint-drain cadence); only consulted when Cluster is set.
	TuneCluster func(cfg *server.ClusterConfig)
	// Require names the points that must have been consulted by the end of
	// the run; a scenario whose faults never fire is a broken scenario.
	Require []chaos.Point
	// ClientCancelEvery cancels every Nth request client-side after
	// ClientCancelAfter, racing cancellation against in-flight coalesced
	// work. 0 disables.
	ClientCancelEvery int
	ClientCancelAfter time.Duration
	// Churn runs concurrent catalog PUTs against every tenant for the
	// duration of the load.
	Churn bool
	// MidShutdown cancels the server context halfway through the offered
	// load; connection errors past that point are expected.
	MidShutdown bool
	// AllowInjectedFailures permits 400 responses whose body names the
	// injected failure (scenarios with Fail rules).
	AllowInjectedFailures bool
	// StreamExecute routes the execute share of the load through the
	// streaming POST /v2/execute instead of the buffered v1 shim, and
	// validates the NDJSON framing: a complete stream must end in an "ok"
	// trailer matching ground truth, and a faulted stream must end in a
	// well-formed "error" trailer — never a silently truncated 200.
	StreamExecute bool
	// WantEvictions requires the planner caches to have recorded evictions
	// (scenarios whose point is surviving cache loss).
	WantEvictions bool
	// Want429 requires at least one 429 (limiter-starvation scenarios).
	Want429 bool
	// Cluster boots a 2-replica distributed tier (consistent-hash sharded,
	// store-backed) and round-robins the load across both replicas.
	Cluster bool
	// WantConverge requires, after the load, that hinted handoff actually
	// engaged (hints were queued) and fully converged (every queued hint
	// replayed, none pending) — the partition-heal invariant.
	WantConverge bool
}

// Scenarios returns the standing suite, in execution order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "worker-storm",
			Description: "parallel search workers stall and crash mid-wave; plans must stay byte-identical",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.CoreWeighWave, Prob: 0.5, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
					{Point: chaos.CoreWeighWave, Prob: 0.2, Effect: chaos.Panic},
					{Point: chaos.CoreDiscoverWave, Prob: 0.5, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
					{Point: chaos.CacheAdd, Prob: 0.5, Effect: chaos.Drop},
				}
			},
			Tune: func(cfg *server.Config) {
				cfg.Planner.Workers = 4
			},
			Require:       []chaos.Point{chaos.CoreWeighWave, chaos.CacheAdd},
			WantEvictions: true,
		},
		{
			Name:        "flight-cancel",
			Description: "singleflight computes are delayed while waiters cancel; peers must still get correct plans",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.CacheFlight, Prob: 0.6, Effect: chaos.Delay, Delay: 15 * time.Millisecond, Jitter: 10 * time.Millisecond},
					{Point: chaos.ServerBatch, Prob: 0.4, Effect: chaos.Delay, Jitter: 5 * time.Millisecond},
					{Point: chaos.CostFamilyAt, Prob: 0.5, Effect: chaos.Delay, Jitter: 3 * time.Millisecond},
				}
			},
			Tune: func(cfg *server.Config) {
				cfg.BatchWindow = time.Millisecond
			},
			Require:           []chaos.Point{chaos.CacheFlight, chaos.ServerBatch},
			ClientCancelEvery: 3,
			ClientCancelAfter: 8 * time.Millisecond,
		},
		{
			Name:        "limiter-starve",
			Description: "handler latency under a tiny admission limit forces 429s; accepted + rejected must equal offered",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.ServerHandler, Prob: 0.8, Effect: chaos.Delay, Delay: 3 * time.Millisecond, Jitter: 5 * time.Millisecond},
				}
			},
			Tune: func(cfg *server.Config) {
				cfg.MaxInFlight = 2
			},
			Require: []chaos.Point{chaos.ServerHandler},
			Want429: true,
		},
		{
			Name:        "catalog-churn",
			Description: "catalog PUTs race in-flight plans on the same tenants; versions stay monotonic, plans stay correct",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.ServerCatalogPut, Prob: 0.7, Effect: chaos.Delay, Jitter: 3 * time.Millisecond},
					{Point: chaos.ServerBatch, Prob: 0.5, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
					{Point: chaos.CacheFlight, Prob: 0.3, Effect: chaos.Delay, Jitter: 3 * time.Millisecond},
				}
			},
			Tune: func(cfg *server.Config) {
				cfg.BatchWindow = time.Millisecond
			},
			Require: []chaos.Point{chaos.ServerCatalogPut},
			Churn:   true,
		},
		{
			Name:        "evict-fail",
			Description: "cache inserts vanish and singleflights fail by injection; retries recompute, nothing is poisoned",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.CacheAdd, Prob: 0.6, Effect: chaos.Drop},
					{Point: chaos.CacheFlight, Prob: 0.25, Effect: chaos.Fail},
					{Point: chaos.CostFamilyAt, Prob: 0.4, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
				}
			},
			Require:               []chaos.Point{chaos.CacheAdd, chaos.CacheFlight},
			AllowInjectedFailures: true,
			WantEvictions:         true,
		},
		{
			Name:        "shutdown-storm",
			Description: "abrupt shutdown with requests in flight; the server drains within its timeout and leaks nothing",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.ServerShutdown, Prob: 1, Effect: chaos.Delay, Delay: 30 * time.Millisecond},
					{Point: chaos.ServerHandler, Prob: 0.5, Effect: chaos.Delay, Jitter: 8 * time.Millisecond},
					{Point: chaos.ServerBatch, Prob: 0.5, Effect: chaos.Delay, Jitter: 5 * time.Millisecond},
				}
			},
			Tune: func(cfg *server.Config) {
				cfg.BatchWindow = time.Millisecond
				cfg.ShutdownTimeout = 2 * time.Second
			},
			Require:     []chaos.Point{chaos.ServerHandler, chaos.ServerShutdown},
			MidShutdown: true,
		},
		{
			Name:        "stream-fault",
			Description: "the streaming engine fails and stalls mid-batch; every /v2 stream ends in a well-formed trailer (ok matching ground truth, or a structured error), never a truncated 200",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.EngineBatch, Prob: 0.35, Effect: chaos.Fail},
					{Point: chaos.EngineBatch, Prob: 0.3, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
					{Point: chaos.ServerHandler, Prob: 0.3, Effect: chaos.Delay, Jitter: 3 * time.Millisecond},
				}
			},
			Require:               []chaos.Point{chaos.EngineBatch},
			AllowInjectedFailures: true,
			StreamExecute:         true,
		},
		{
			Name:        "peer-partition",
			Description: "peer RPCs stall and partition mid-plan while the store lags; replicas fall back to local search and plans stay byte-identical",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.ClusterPeerRPC, Prob: 0.4, Effect: chaos.Delay, Jitter: 5 * time.Millisecond},
					{Point: chaos.ClusterPeerRPC, Prob: 0.3, Effect: chaos.Fail},
					{Point: chaos.StoreAppend, Prob: 0.3, Effect: chaos.Delay, Jitter: 2 * time.Millisecond},
				}
			},
			Require: []chaos.Point{chaos.ClusterPeerRPC, chaos.StoreAppend},
			Cluster: true,
		},
		{
			Name:        "partition-heal-converge",
			Description: "a hard partition severs the peers, then heals; pushes park as hints and the drainer replays every one — the healed cluster converges",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					// The first 40 peer RPCs fail outright: breakers trip,
					// fills fall back to local search, pushes park as hints.
					// Then the link heals for good.
					{Point: chaos.ClusterPeerRPC, Prob: 1, Effect: chaos.Fail, Limit: 40},
					// The first replays fail too — hints must survive a failed
					// drain pass and be retried, not dropped.
					{Point: chaos.ServerHintDrain, Prob: 1, Effect: chaos.Fail, Limit: 2},
				}
			},
			TuneCluster: func(cfg *server.ClusterConfig) {
				// No retries: each injected fault is a failed call, so the
				// partition actually bites instead of being ridden out.
				cfg.Client.Retries = -1
				cfg.Client.Breaker = cluster.BreakerOptions{Window: 4, MinSamples: 2, ErrorRate: 0.5, Cooldown: 15 * time.Millisecond}
				cfg.HintDrainInterval = 10 * time.Millisecond
			},
			Require:      []chaos.Point{chaos.ClusterPeerRPC, chaos.ServerHintDrain},
			Cluster:      true,
			WantConverge: true,
		},
		{
			Name:        "breaker-flap",
			Description: "a flapping link fails peer RPCs at random and denies half the half-open probes; breakers cycle while every answer stays local-or-correct",
			Rules: func(seed int64) []chaos.Rule {
				return []chaos.Rule{
					{Point: chaos.ClusterPeerRPC, Prob: 0.4, Effect: chaos.Fail},
					{Point: chaos.ClusterPeerRPC, Prob: 0.3, Effect: chaos.Delay, Jitter: 4 * time.Millisecond},
					{Point: chaos.ClusterPeerBreaker, Prob: 0.5, Effect: chaos.Fail},
				}
			},
			TuneCluster: func(cfg *server.ClusterConfig) {
				cfg.Client.Retries = -1
				cfg.Client.Breaker = cluster.BreakerOptions{Window: 4, MinSamples: 2, ErrorRate: 0.5, Cooldown: 10 * time.Millisecond}
				cfg.HintDrainInterval = 10 * time.Millisecond
			},
			Require: []chaos.Point{chaos.ClusterPeerRPC, chaos.ClusterPeerBreaker},
			Cluster: true,
		},
	}
}

// workloadItem is one query of the workload plus its chaos-free ground
// truth: the canonical serialized plan bytes, the cost bits, and the row
// count — or the fact that the structure is infeasible at k.
type workloadItem struct {
	tenant      string
	text        string
	k           int
	catalogText string
	infeasible  bool
	planJSON    []byte
	cost        float64
	rows        int  // answer rows (0 for a Boolean query)
	boolean     bool // the query is Boolean; verdict is the answer
	verdict     bool
}

// buildWorkload generates the seeded workload and computes ground truth
// through the exact pipeline the server uses: the catalog is round-tripped
// through the wire format and re-analyzed, the query re-parsed from text.
// No injector may be registered while ground truth is computed.
func buildWorkload(opt Options, plannerOpts cache.Options) ([]workloadItem, error) {
	if chaos.Active() {
		return nil, errors.New("scenario: injector registered during baseline computation")
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	baseline := cache.NewPlanner(plannerOpts)
	var items []workloadItem
	for i := 0; i < opt.Queries; i++ {
		cfg := cqgen.Config{Atoms: 3 + rng.Intn(3), MaxArity: 3, MaxCard: 12}
		switch i % 3 {
		case 1:
			cfg.Cyclic = true
		case 2:
			cfg.SelfJoin = 0.5
		}
		inst := cqgen.MustGenerate(rng, cfg)
		// Widths 1..3: width 1 on cyclic shapes yields genuinely infeasible
		// structures, exercising the negative cache under chaos.
		k := 1 + rng.Intn(3)
		item, err := groundTruth(baseline, fmt.Sprintf("t%d", i), inst.Query.String(), k, inst.Catalog)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	// A pinned infeasible structure, so every seed exercises the negative
	// cache: the triangle has hypertree width 2, so k=1 cannot succeed.
	tri := cq.MustParse("ans(X) :- r0(X,Y), r1(Y,Z), r2(Z,X).")
	triCat, err := db.GenerateCatalog(rng, []db.Spec{
		{Name: "r0", Attrs: []string{"a", "b"}, Card: 6, Distinct: map[string]int{"a": 4, "b": 4}},
		{Name: "r1", Attrs: []string{"a", "b"}, Card: 6, Distinct: map[string]int{"a": 4, "b": 4}},
		{Name: "r2", Attrs: []string{"a", "b"}, Card: 6, Distinct: map[string]int{"a": 4, "b": 4}},
	})
	if err != nil {
		return nil, err
	}
	item, err := groundTruth(baseline, fmt.Sprintf("t%d", len(items)), tri.String(), 1, triCat)
	if err != nil {
		return nil, err
	}
	if !item.infeasible {
		return nil, errors.New("scenario: triangle at k=1 unexpectedly feasible")
	}
	return append(items, item), nil
}

func groundTruth(baseline *cache.Planner, tenant, text string, k int, cat *db.Catalog) (workloadItem, error) {
	var buf bytes.Buffer
	if err := db.WriteCatalog(&buf, cat); err != nil {
		return workloadItem{}, err
	}
	item := workloadItem{tenant: tenant, text: text, k: k, catalogText: buf.String()}
	wireCat, err := db.ReadCatalog(strings.NewReader(item.catalogText))
	if err != nil {
		return workloadItem{}, err
	}
	if err := wireCat.AnalyzeAll(); err != nil {
		return workloadItem{}, err
	}
	q, err := cq.Parse(text)
	if err != nil {
		return workloadItem{}, err
	}
	plan, _, err := baseline.PlanCached(q, wireCat, k)
	if errors.Is(err, core.ErrNoDecomposition) {
		item.infeasible = true
		return item, nil
	}
	if err != nil {
		return workloadItem{}, fmt.Errorf("scenario: baseline plan %s k=%d: %w", text, k, err)
	}
	item.planJSON, err = json.Marshal(engine.SerializeDecomposition(plan.Decomp, plan.NodeCosts))
	if err != nil {
		return workloadItem{}, err
	}
	item.cost = plan.EstimatedCost
	var m engine.Metrics
	res, err := engine.EvalDecomposition(plan.Decomp, plan.Query, wireCat, &m)
	if err != nil {
		return workloadItem{}, fmt.Errorf("scenario: baseline eval %s: %w", text, err)
	}
	if q.IsBoolean() {
		item.boolean = true
		item.verdict = engine.Answer(res)
	} else {
		item.rows = res.Card()
	}
	return item, nil
}

// tally is the request-accounting ledger behind the conservation invariant.
type tally struct {
	mu        sync.Mutex
	byCode    map[int]int
	cancelled int
	connErr   int
	failures  []string
}

func (t *tally) fail(format string, args ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.failures) < 12 {
		t.failures = append(t.failures, fmt.Sprintf(format, args...))
	}
}

func (t *tally) code(c int) {
	t.mu.Lock()
	t.byCode[c]++
	t.mu.Unlock()
}

// Run executes one scenario at one seed and returns the first invariant
// violations as an error whose message embeds the scenario, the seed, and
// the schedule — everything needed to replay the failure.
func Run(sc Scenario, opt Options) error {
	opt = opt.withDefaults()
	baseGoroutines := chaos.CurrentGoroutines()

	cfg := server.Config{
		RequestTimeout:  10 * time.Second,
		ShutdownTimeout: 3 * time.Second,
	}
	if sc.Tune != nil {
		sc.Tune(&cfg)
	}
	plannerOpts := cfg.Planner
	if plannerOpts.MaxKVertices == 0 {
		plannerOpts.MaxKVertices = server.DefaultMaxPsi
	}

	items, err := buildWorkload(opt, plannerOpts)
	if err != nil {
		return fmt.Errorf("scenario %q seed %d: %w", sc.Name, opt.Seed, err)
	}

	sched := chaos.NewSchedule(opt.Seed, sc.Rules(opt.Seed)...)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q seed %d [%s]: %s", sc.Name, opt.Seed, sched, fmt.Sprintf(format, args...))
	}

	// Serve on real listeners through the full lifecycle path, so the
	// shutdown drain is the one production takes. A cluster scenario boots
	// two replicas with pre-bound peer listeners and a store each, and the
	// load round-robins across them.
	nodes := 1
	var members []cluster.Member
	var peerLns []net.Listener
	if sc.Cluster {
		nodes = 2
		for i := 0; i < nodes; i++ {
			ln, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				return fail("peer listener: %v", lerr)
			}
			members = append(members, cluster.Member{ID: fmt.Sprintf("node-%d", i), Addr: ln.Addr().String()})
			peerLns = append(peerLns, ln)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	servers := make([]*server.Server, nodes)
	serveErr := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		ncfg := cfg
		if sc.Cluster {
			dir, derr := os.MkdirTemp("", "chaos-store-*")
			if derr != nil {
				return fail("store dir: %v", derr)
			}
			defer os.RemoveAll(dir)
			ncfg.DataDir = dir
			ncfg.Cluster = &server.ClusterConfig{
				NodeID:       members[i].ID,
				Members:      members,
				PeerListener: peerLns[i],
			}
			if sc.TuneCluster != nil {
				sc.TuneCluster(ncfg.Cluster)
			}
		}
		s, serr := server.Open(ncfg)
		if serr != nil {
			return fail("open replica %d: %v", i, serr)
		}
		servers[i] = s
		go func(s *server.Server) { serveErr <- s.ListenAndServe(ctx, "127.0.0.1:0") }(s)
	}
	bases := make([]string, nodes)
	bindDeadline := time.Now().Add(5 * time.Second)
	for i, s := range servers {
		for s.Addr() == nil {
			if time.Now().After(bindDeadline) {
				return fail("server never bound")
			}
			time.Sleep(time.Millisecond)
		}
		bases[i] = "http://" + s.Addr().String()
	}
	client := &http.Client{Timeout: 15 * time.Second}
	defer client.CloseIdleConnections()

	// Upload every tenant's catalog to every replica before faults start
	// (catalogs are replica-local; plan keys derive from the statistics, so
	// they match across replicas).
	for _, it := range items {
		for _, base := range bases {
			if _, err := putCatalog(client, base, it.tenant, it.catalogText); err != nil {
				return fail("catalog upload %s: %v", it.tenant, err)
			}
		}
	}

	unregister := chaos.Register(sched)
	defer unregister()
	opt.Logf("scenario %s seed %d: %d queries, %d requests [%s]", sc.Name, opt.Seed, len(items), opt.Requests, sched)

	tal := &tally{byCode: map[int]int{}}
	var completed atomic.Int64
	var shutdownAt atomic.Int64 // ns timestamp of the mid-flight cancel
	var churnStop chan struct{}
	var churnDone sync.WaitGroup

	if sc.Churn {
		churnStop = make(chan struct{})
		for _, it := range items {
			churnDone.Add(1)
			go func(it workloadItem) {
				defer churnDone.Done()
				last := uint64(0)
				for {
					select {
					case <-churnStop:
						return
					default:
					}
					v, err := putCatalog(client, bases[0], it.tenant, it.catalogText)
					if err != nil {
						// Tolerated: churn may race shutdown.
						return
					}
					if v <= last {
						tal.fail("tenant %s: catalog version regressed %d -> %d", it.tenant, last, v)
						return
					}
					last = v
				}
			}(it)
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Concurrency)
	for i := 0; i < opt.Requests; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				done := completed.Add(1)
				if sc.MidShutdown && done == int64(opt.Requests/2) {
					shutdownAt.Store(time.Now().UnixNano())
					cancel()
				}
			}()
			it := items[i%len(items)]
			execute := i%4 == 3
			cancelled := sc.ClientCancelEvery > 0 && i%sc.ClientCancelEvery == 0
			fireRequest(client, bases[i%len(bases)], it, execute, cancelled, sc, tal)
		}(i)
	}
	wg.Wait()
	if sc.Churn {
		close(churnStop)
		churnDone.Wait()
	}

	// Conservation: every offered request landed in exactly one bucket.
	tal.mu.Lock()
	accounted := tal.cancelled + tal.connErr
	counts := make(map[int]int, len(tal.byCode))
	for c, n := range tal.byCode {
		accounted += n
		counts[c] = n
	}
	tal.mu.Unlock()
	var failures []string
	if accounted != opt.Requests {
		failures = append(failures, fmt.Sprintf("conservation: accounted %d of %d offered (codes %v, cancelled %d, connErr %d)",
			accounted, opt.Requests, counts, tal.cancelled, tal.connErr))
	}
	if sc.Want429 && counts[http.StatusTooManyRequests] == 0 {
		failures = append(failures, "limiter never rejected: want at least one 429")
	}
	if sc.MidShutdown && counts[http.StatusOK] == 0 {
		failures = append(failures, "no request succeeded before mid-flight shutdown")
	}

	// Post-load invariants on the still-running servers.
	if !sc.MidShutdown {
		// A cancelled client returns before its server handler does, so the
		// handler may legitimately hold its admission slot a little longer;
		// the invariant is that every slot is eventually released.
		for _, s := range servers {
			for end := time.Now().Add(3 * time.Second); s.LimiterInUse() != 0 && time.Now().Before(end); {
				time.Sleep(5 * time.Millisecond)
			}
			if n := s.LimiterInUse(); n != 0 {
				failures = append(failures, fmt.Sprintf("limiter leak: %d slots still held after drain", n))
			}
		}
		if sc.WantEvictions {
			st := servers[0].PlannerStats()
			if st.Plans.Evictions+st.Decompositions.Evictions+st.Searches.Evictions+st.Infeasible.Evictions == 0 {
				failures = append(failures, "eviction scenario recorded no evictions")
			}
		}
		if sc.WantConverge {
			failures = append(failures, awaitConvergence(client, bases)...)
		}
		// Verification pass with chaos off: every replica answers every
		// query's ground truth — injected evictions recomputed correctly,
		// injected failures retried cleanly, the negative cache poisoned
		// nothing, and peer-filled or store-persisted plans deviate nowhere.
		unregister()
		for _, it := range items {
			for _, base := range bases {
				verifyOnce(client, base, it, tal)
			}
		}
	}

	// Shutdown drains within its timeout, then the goroutine baseline is
	// restored (no leaked workers, batch groups, or handlers).
	cancel()
	start := time.Now()
	if t := shutdownAt.Load(); t != 0 {
		start = time.Unix(0, t)
	}
	// Keep flushing the client's connection pool while the server drains:
	// a pooled keep-alive connection the client never used again would
	// otherwise hold Shutdown until the server's read-header timeout.
	drained := make(chan struct{})
	go func() {
		for {
			client.CloseIdleConnections()
			select {
			case <-drained:
				return
			case <-time.After(25 * time.Millisecond):
			}
		}
	}()
	for i := 0; i < nodes; i++ {
		select {
		case err := <-serveErr:
			if err != nil {
				failures = append(failures, fmt.Sprintf("shutdown did not drain cleanly: Serve returned %v", err))
			}
		case <-time.After(cfg.ShutdownTimeout + 5*time.Second):
			failures = append(failures, "Serve did not return after shutdown")
		}
	}
	close(drained)
	if el := time.Since(start); el > cfg.ShutdownTimeout+3*time.Second {
		failures = append(failures, fmt.Sprintf("shutdown took %v, bound %v", el, cfg.ShutdownTimeout))
	}
	unregister()
	client.CloseIdleConnections()
	if err := chaos.VerifyNoGoroutineLeak(baseGoroutines, 5*time.Second); err != nil {
		failures = append(failures, err.Error())
	}

	// Faults must actually have been exercised (checked after shutdown so
	// the Serve goroutine's own injection point has settled).
	for _, p := range sc.Require {
		if sched.Hits(p) == 0 {
			failures = append(failures, fmt.Sprintf("injection point %s was never consulted", p))
		}
	}

	// Fold in the per-request failures collected by the workers.
	tal.mu.Lock()
	failures = dedupe(append(failures, tal.failures...))
	tal.mu.Unlock()

	if len(failures) > 0 {
		return fail("%d invariant violations:\n  - %s", len(failures), strings.Join(failures, "\n  - "))
	}
	opt.Logf("scenario %s seed %d: ok (%d chaos hits, codes %v)", sc.Name, opt.Seed, sched.TotalHits(), counts)
	return nil
}

// fireRequest issues one plan or execute call and validates the response
// against the item's ground truth, filing failures into the tally.
func fireRequest(client *http.Client, base string, it workloadItem, execute, cancelled bool, sc Scenario, tal *tally) {
	path, body := "/v1/plan", server.PlanRequest{Tenant: it.tenant, Query: it.text, K: it.k}
	payload, _ := json.Marshal(body)
	if execute {
		path = "/v1/execute"
		if sc.StreamExecute {
			path = "/v2/execute"
		}
	}
	ctx := context.Background()
	if cancelled {
		var cancelCtx context.CancelFunc
		ctx, cancelCtx = context.WithTimeout(ctx, sc.ClientCancelAfter)
		defer cancelCtx()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(payload))
	if err != nil {
		tal.fail("build request: %v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		switch {
		case cancelled && errors.Is(err, context.DeadlineExceeded):
			tal.mu.Lock()
			tal.cancelled++
			tal.mu.Unlock()
		case sc.MidShutdown:
			tal.mu.Lock()
			tal.connErr++
			tal.mu.Unlock()
		default:
			tal.mu.Lock()
			tal.connErr++
			tal.mu.Unlock()
			tal.fail("%s %s k=%d: transport error outside shutdown: %v", path, it.tenant, it.k, err)
		}
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tal.code(resp.StatusCode)
		if !sc.MidShutdown && !cancelled {
			tal.fail("%s %s: body read: %v", path, it.tenant, err)
		}
		return
	}
	tal.code(resp.StatusCode)
	if execute && sc.StreamExecute {
		verifyStream(path, it, resp.StatusCode, raw, sc, tal)
		return
	}
	verifyResponse(path, it, execute, resp.StatusCode, raw, sc, tal)
}

// verifyStream validates a /v2/execute NDJSON response: pre-stream
// failures are plain JSON errors handled like any endpoint's; a 200 must
// be a header frame, optional row frames, and exactly one trailer — "ok"
// matching ground truth, or a structured error naming the injected fault.
// A 200 with no trailer is the cardinal sin: a silently truncated answer.
func verifyStream(path string, it workloadItem, code int, raw []byte, sc Scenario, tal *tally) {
	if code != http.StatusOK {
		verifyResponse(path, it, false, code, raw, sc, tal)
		return
	}
	if it.infeasible {
		tal.fail("%s %s k=%d: 200 for an infeasible structure", path, it.tenant, it.k)
		return
	}
	var trailer *server.ExecStreamTrailer
	sawHeader, rows := false, 0
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if trailer != nil {
			tal.fail("%s %s: frame after trailer: %s", path, it.tenant, line)
			return
		}
		var probe struct {
			Frame string `json:"frame"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			tal.fail("%s %s: bad frame %q: %v", path, it.tenant, line, err)
			return
		}
		switch probe.Frame {
		case "header":
			sawHeader = true
		case "rows":
			if !sawHeader {
				tal.fail("%s %s: rows before header", path, it.tenant)
				return
			}
			var rf server.ExecStreamRows
			if err := json.Unmarshal(line, &rf); err != nil {
				tal.fail("%s %s: bad rows frame: %v", path, it.tenant, err)
				return
			}
			rows += len(rf.Rows)
		case "trailer":
			var tr server.ExecStreamTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				tal.fail("%s %s: bad trailer: %v", path, it.tenant, err)
				return
			}
			trailer = &tr
		default:
			tal.fail("%s %s: unknown frame %q", path, it.tenant, probe.Frame)
			return
		}
	}
	if !sawHeader || trailer == nil {
		tal.fail("%s %s k=%d: truncated 200 stream (header=%v, trailer=%v) — a fault must surface as an error trailer",
			path, it.tenant, it.k, sawHeader, trailer != nil)
		return
	}
	switch trailer.Status {
	case "ok":
		if it.boolean {
			if trailer.Boolean == nil || *trailer.Boolean != it.verdict {
				tal.fail("%s %s k=%d: stream boolean %v, baseline %v", path, it.tenant, it.k, trailer.Boolean, it.verdict)
			}
		} else if trailer.RowCount != it.rows || rows != it.rows {
			tal.fail("%s %s k=%d: stream rows %d (trailer %d), baseline %d", path, it.tenant, it.k, rows, trailer.RowCount, it.rows)
		}
	case "error":
		if trailer.Error == nil {
			tal.fail("%s %s: error trailer without an error object", path, it.tenant)
			return
		}
		if !sc.AllowInjectedFailures || !strings.Contains(trailer.Error.Message, "injected") {
			tal.fail("%s %s k=%d: unexpected stream error: %+v", path, it.tenant, it.k, trailer.Error)
		}
	default:
		tal.fail("%s %s: trailer status %q", path, it.tenant, trailer.Status)
	}
}

// verifyResponse checks one response against ground truth and the
// scenario's allowed failure modes.
func verifyResponse(path string, it workloadItem, execute bool, code int, raw []byte, sc Scenario, tal *tally) {
	switch code {
	case http.StatusOK:
		if it.infeasible {
			tal.fail("%s %s k=%d: 200 for an infeasible structure (negative-cache unsoundness)", path, it.tenant, it.k)
			return
		}
		if execute {
			var er server.ExecuteResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				tal.fail("%s %s: bad body: %v", path, it.tenant, err)
				return
			}
			if it.boolean {
				if er.Boolean == nil || *er.Boolean != it.verdict {
					tal.fail("%s %s k=%d: boolean %v, baseline %v", path, it.tenant, it.k, er.Boolean, it.verdict)
				}
			} else if er.RowCount != it.rows {
				tal.fail("%s %s k=%d: rowCount %d, baseline %d", path, it.tenant, it.k, er.RowCount, it.rows)
			}
			if er.EstimatedCost != it.cost {
				tal.fail("%s %s k=%d: cost %v, baseline %v", path, it.tenant, it.k, er.EstimatedCost, it.cost)
			}
		} else {
			var pr server.PlanResponse
			if err := json.Unmarshal(raw, &pr); err != nil {
				tal.fail("%s %s: bad body: %v", path, it.tenant, err)
				return
			}
			got, err := json.Marshal(pr.Plan)
			if err != nil {
				tal.fail("%s %s: re-marshal: %v", path, it.tenant, err)
				return
			}
			if !bytes.Equal(got, it.planJSON) {
				tal.fail("%s %s k=%d: plan deviates from chaos-free baseline:\n  got  %s\n  want %s",
					path, it.tenant, it.k, got, it.planJSON)
			}
			if pr.EstimatedCost != it.cost {
				tal.fail("%s %s k=%d: cost %v, baseline %v", path, it.tenant, it.k, pr.EstimatedCost, it.cost)
			}
		}
	case http.StatusUnprocessableEntity:
		if !it.infeasible {
			tal.fail("%s %s k=%d: 422 for a feasible structure (negative-cache poisoned): %s", path, it.tenant, it.k, raw)
		}
	case http.StatusTooManyRequests:
		// Admission rejection: always legitimate under chaos load.
	case http.StatusServiceUnavailable:
		if !sc.MidShutdown {
			tal.fail("%s %s k=%d: unexpected 503 outside shutdown: %s", path, it.tenant, it.k, raw)
		}
	case http.StatusBadRequest:
		if !sc.AllowInjectedFailures || !bytes.Contains(raw, []byte("injected")) {
			tal.fail("%s %s k=%d: unexpected 400: %s", path, it.tenant, it.k, raw)
		}
	default:
		tal.fail("%s %s k=%d: unexpected status %d: %s", path, it.tenant, it.k, code, raw)
	}
}

// verifyOnce re-requests one item with chaos off; the answer must match
// ground truth exactly.
func verifyOnce(client *http.Client, base string, it workloadItem, tal *tally) {
	payload, _ := json.Marshal(server.PlanRequest{Tenant: it.tenant, Query: it.text, K: it.k})
	resp, err := client.Post(base+"/v1/plan", "application/json", bytes.NewReader(payload))
	if err != nil {
		tal.fail("verify %s: %v", it.tenant, err)
		return
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	switch {
	case it.infeasible && resp.StatusCode != http.StatusUnprocessableEntity:
		tal.fail("verify %s k=%d: status %d for infeasible structure: %s", it.tenant, it.k, resp.StatusCode, raw)
	case !it.infeasible && resp.StatusCode != http.StatusOK:
		tal.fail("verify %s k=%d: status %d after chaos ended: %s", it.tenant, it.k, resp.StatusCode, raw)
	case !it.infeasible:
		var pr server.PlanResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			tal.fail("verify %s: bad body: %v", it.tenant, err)
			return
		}
		got, _ := json.Marshal(pr.Plan)
		if !bytes.Equal(got, it.planJSON) {
			tal.fail("verify %s k=%d: cached state poisoned, plan deviates:\n  got  %s\n  want %s", it.tenant, it.k, got, it.planJSON)
		}
	}
}

// awaitConvergence polls every replica's cluster stats until hinted
// handoff has fully drained, then asserts it actually engaged: a
// partition-heal scenario where no push ever needed a hint is a broken
// scenario, and a pending hint after the deadline means the healed
// cluster never converged.
func awaitConvergence(client *http.Client, bases []string) []string {
	var queued, replayed uint64
	deadline := time.Now().Add(8 * time.Second)
	for {
		queued, replayed = 0, 0
		pending := 0
		ok := true
		for _, base := range bases {
			st, err := fetchStats(client, base)
			if err != nil || st.Cluster == nil {
				ok = false
				break
			}
			queued += st.Cluster.HintsQueued
			replayed += st.Cluster.HintsReplayed
			pending += st.Cluster.HintsPending
		}
		if ok && pending == 0 && queued > 0 {
			break
		}
		if time.Now().After(deadline) {
			return []string{fmt.Sprintf("hinted handoff did not converge: queued=%d replayed=%d pending=%d", queued, replayed, pending)}
		}
		time.Sleep(20 * time.Millisecond)
	}
	var failures []string
	if replayed == 0 {
		failures = append(failures, "hints drained without a single replay")
	}
	return failures
}

func fetchStats(client *http.Client, base string) (server.StatsResponse, error) {
	var st server.StatsResponse
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	return st, json.Unmarshal(raw, &st)
}

func putCatalog(client *http.Client, base, tenant, text string) (uint64, error) {
	req, err := http.NewRequest(http.MethodPut, base+"/v1/catalogs/"+tenant, strings.NewReader(text))
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("PUT %s: status %d: %s", tenant, resp.StatusCode, raw)
	}
	var ack server.CatalogResponse
	if err := json.Unmarshal(raw, &ack); err != nil {
		return 0, err
	}
	return ack.Version, nil
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// RunAll runs every scenario of the standing suite at the given seed,
// returning the first failure (scenarios are cheap; later ones still run so
// the report is complete).
func RunAll(opt Options) error {
	var errs []string
	for _, sc := range Scenarios() {
		if err := Run(sc, opt); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return errors.New(strings.Join(errs, "\n"))
	}
	return nil
}
