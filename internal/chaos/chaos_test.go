package chaos

import (
	"strings"
	"testing"
	"time"
)

// With no injector registered, Hit must be a true no-op: zero effects and
// zero allocations. This is the hot-path contract every hook site relies on.
func TestHitNoInjectorIsFree(t *testing.T) {
	if Active() {
		t.Fatal("injector unexpectedly active")
	}
	if got := Hit(CoreWeighWave, Delay|Panic); got != 0 {
		t.Fatalf("Hit with no injector = %v, want 0", got)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		Hit(CacheFlight, Delay|Fail)
		Hit(CacheAdd, Drop)
		Hit(ServerHandler, Delay)
	})
	if allocs != 0 {
		t.Fatalf("unregistered Hit allocates %.1f/op, want 0", allocs)
	}
}

// Register is exclusive, and unregister restores the no-op state.
func TestRegisterExclusive(t *testing.T) {
	un := Register(NewSchedule(1))
	if !Active() {
		t.Fatal("not active after Register")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second Register did not panic")
			}
		}()
		Register(NewSchedule(2))
	}()
	un()
	if Active() {
		t.Fatal("still active after unregister")
	}
	un() // idempotent
}

// Equal seeds make identical decisions; different seeds diverge. The
// decision for hit n is independent of interleaving by construction.
func TestScheduleDeterministic(t *testing.T) {
	rules := []Rule{{Point: CacheFlight, Prob: 0.5, Effect: Fail}}
	run := func(seed int64) []Effect {
		s := NewSchedule(seed, rules...)
		out := make([]Effect, 64)
		for i := range out {
			out[i] = s.Act(CacheFlight, Fail)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d: seed 7 decided %v then %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical decision streams")
	}
	fails := 0
	for _, e := range a {
		if e&Fail != 0 {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; decision hash looks broken", fails, len(a))
	}
}

// The site's allowed mask filters effects: a rule asking for Panic at a
// site that only allows Delay must not panic.
func TestAllowedMaskFilters(t *testing.T) {
	s := NewSchedule(3, Rule{Point: CoreDiscoverWave, Prob: 1, Effect: Panic | Fail})
	un := Register(s)
	defer un()
	if got := Hit(CoreDiscoverWave, Delay); got != 0 {
		t.Fatalf("masked Hit = %v, want 0", got)
	}
	if got := Hit(CoreDiscoverWave, Fail); got != Fail {
		t.Fatalf("Hit = %v, want Fail", got)
	}
}

// Injected panics carry the sentinel; foreign panics are not claimed.
func TestInjectedPanicSentinel(t *testing.T) {
	s := NewSchedule(4, Rule{Point: CoreWeighWave, Prob: 1, Effect: Panic})
	un := Register(s)
	defer un()
	func() {
		defer func() {
			r := recover()
			if r == nil || !IsInjected(r) {
				t.Fatalf("recover() = %v, want injected sentinel", r)
			}
		}()
		Hit(CoreWeighWave, Panic)
	}()
	if IsInjected("boom") || IsInjected(nil) {
		t.Fatal("IsInjected claimed a foreign panic value")
	}
}

// Limit and After bound when and how often a rule fires.
func TestLimitAndAfter(t *testing.T) {
	s := NewSchedule(5, Rule{Point: CacheAdd, Prob: 1, Effect: Drop, After: 2, Limit: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if s.Act(CacheAdd, Drop)&Drop != 0 {
			fired++
			if i < 2 {
				t.Fatalf("rule fired at hit %d despite After=2", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("rule fired %d times, want Limit=3", fired)
	}
	if s.Hits(CacheAdd) != 10 {
		t.Fatalf("Hits = %d, want 10", s.Hits(CacheAdd))
	}
}

// Delay rules actually sleep, and the schedule String carries everything
// needed for replay.
func TestDelayAndString(t *testing.T) {
	s := NewSchedule(6,
		Rule{Point: ServerHandler, Prob: 1, Effect: Delay, Delay: 10 * time.Millisecond},
		Rule{Point: CacheFlight, Prob: 0.25, Effect: Fail, Limit: 2},
	)
	start := time.Now()
	if s.Act(ServerHandler, Delay)&Delay == 0 {
		t.Fatal("delay rule did not fire")
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("slept %v, want >= 10ms", el)
	}
	str := s.String()
	for _, want := range []string{"seed=6", "server.handler", "delay=10ms", "cache.flight", "p=0.25", "limit=2"} {
		if !strings.Contains(str, want) {
			t.Fatalf("schedule string %q missing %q", str, want)
		}
	}
}

func TestVerifyNoGoroutineLeak(t *testing.T) {
	if err := VerifyNoGoroutineLeak(1<<30, time.Second); err != nil {
		t.Fatalf("impossible leak reported: %v", err)
	}
	stop := make(chan struct{})
	go func() { <-stop }()
	err := VerifyNoGoroutineLeak(0, 50*time.Millisecond)
	if err == nil {
		t.Fatal("leak not detected")
	}
	if !strings.Contains(err.Error(), "goroutine leak") {
		t.Fatalf("unexpected error: %v", err)
	}
	close(stop)
}
