// Package hypertree implements hypertrees and hypertree decompositions
// ⟨T,χ,λ⟩ (Definition 2.1 of the paper), the normal form of Definition 2.2,
// widths, strong covers and complete decompositions, the completion
// transform of Section 6, and interop with join trees of acyclic
// hypergraphs.
package hypertree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hypergraph"
)

// Node is a vertex of a hypertree: χ (variables) and λ (edge indices into
// the source hypergraph), plus children. Lambda is kept sorted.
type Node struct {
	ID       int
	Chi      hypergraph.Varset
	Lambda   []int
	Children []*Node
}

// Decomposition is a rooted hypertree for a hypergraph.
type Decomposition struct {
	H    *hypergraph.Hypergraph
	Root *Node
}

// NewNode returns a node with the given labels; Lambda is copied and sorted.
func NewNode(chi hypergraph.Varset, lambda []int) *Node {
	l := append([]int(nil), lambda...)
	sort.Ints(l)
	return &Node{Chi: chi, Lambda: l}
}

// AddChild appends c to n's children and returns c.
func (n *Node) AddChild(c *Node) *Node {
	n.Children = append(n.Children, c)
	return c
}

// Walk calls f on every node in pre-order.
func (d *Decomposition) Walk(f func(n *Node, parent *Node)) {
	var rec func(n, p *Node)
	rec = func(n, p *Node) {
		f(n, p)
		for _, c := range n.Children {
			rec(c, n)
		}
	}
	if d.Root != nil {
		rec(d.Root, nil)
	}
}

// Nodes returns all nodes in pre-order and assigns sequential IDs.
func (d *Decomposition) Nodes() []*Node {
	var out []*Node
	d.Walk(func(n, _ *Node) {
		n.ID = len(out)
		out = append(out, n)
	})
	return out
}

// NumNodes returns the number of vertices of the decomposition tree.
func (d *Decomposition) NumNodes() int {
	n := 0
	d.Walk(func(*Node, *Node) { n++ })
	return n
}

// Width returns max_p |λ(p)|.
func (d *Decomposition) Width() int {
	w := 0
	d.Walk(func(n, _ *Node) {
		if len(n.Lambda) > w {
			w = len(n.Lambda)
		}
	})
	return w
}

// ChiOfSubtree returns χ(T_n) = ∪ over the subtree rooted at n.
func ChiOfSubtree(h *hypergraph.Hypergraph, n *Node) hypergraph.Varset {
	s := h.NewVarset()
	var rec func(m *Node)
	rec = func(m *Node) {
		s.UnionWith(m.Chi)
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return s
}

// Separator returns sep(p,q) = χ(p) ∩ χ(q) (Example 4.2).
func Separator(p, q *Node) hypergraph.Varset {
	return p.Chi.Intersect(q.Chi)
}

// LambdaVars returns var(λ(n)).
func (d *Decomposition) LambdaVars(n *Node) hypergraph.Varset {
	return d.H.Vars(n.Lambda)
}

// Clone returns a deep copy of the decomposition (sharing the hypergraph).
func (d *Decomposition) Clone() *Decomposition {
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		m := &Node{ID: n.ID, Chi: n.Chi.Clone(), Lambda: append([]int(nil), n.Lambda...)}
		for _, c := range n.Children {
			m.Children = append(m.Children, rec(c))
		}
		return m
	}
	out := &Decomposition{H: d.H}
	if d.Root != nil {
		out.Root = rec(d.Root)
	}
	return out
}

// String renders the decomposition tree, one node per line, indented, with
// λ and χ labels using hypergraph names.
func (d *Decomposition) String() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "λ=%s χ=%s\n", d.H.EdgesNames(n.Lambda), d.H.VarsetNames(n.Chi))
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if d.Root != nil {
		rec(d.Root, 0)
	}
	return b.String()
}
