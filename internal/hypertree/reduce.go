package hypertree

// Reduce removes redundant vertices, in the spirit of the reduced normal
// form of Harvey and Ghose (the paper's reference [24], discussed at the
// end of Section 5): a vertex whose χ label is contained in its parent's χ
// contributes nothing to coverage that the parent does not already provide,
// so it is spliced out and its children are re-attached to the parent.
// Leaves added by Complete for strong covering are exactly of this kind, so
// Reduce(Complete(d)) == d-shaped trees; call it only when completeness is
// not required downstream.
//
// The input is not modified; the result is a valid decomposition whenever
// the input is (coverage only moves up to a superset χ; connectedness is
// preserved because the parent's χ contains the removed vertex's χ).
func (d *Decomposition) Reduce() *Decomposition {
	out := d.Clone()
	changed := true
	for changed {
		changed = false
		var rec func(n *Node)
		rec = func(n *Node) {
			var kept []*Node
			for _, c := range n.Children {
				if c.Chi.SubsetOf(n.Chi) {
					// Splice: adopt the grandchildren.
					kept = append(kept, c.Children...)
					changed = true
				} else {
					kept = append(kept, c)
				}
			}
			n.Children = kept
			for _, c := range n.Children {
				rec(c)
			}
		}
		rec(out.Root)
	}
	// Root-direction reduction: if the root's χ is contained in its only
	// child's χ, the child can become the root.
	for len(out.Root.Children) == 1 && out.Root.Chi.SubsetOf(out.Root.Children[0].Chi) {
		out.Root = out.Root.Children[0]
	}
	out.Nodes()
	return out
}

// IsReduced reports whether no vertex's χ is contained in its parent's χ
// (and, symmetrically for the root, in its single child's χ).
func (d *Decomposition) IsReduced() bool {
	ok := true
	d.Walk(func(n, parent *Node) {
		if parent != nil && n.Chi.SubsetOf(parent.Chi) {
			ok = false
		}
	})
	if len(d.Root.Children) == 1 && d.Root.Chi.SubsetOf(d.Root.Children[0].Chi) {
		ok = false
	}
	return ok
}
