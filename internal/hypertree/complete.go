package hypertree

import (
	"repro/internal/hypergraph"
)

// Complete returns a complete hypertree decomposition of the same width
// derived from d (Section 6 remark): for each edge h covered by some vertex
// r but not strongly covered anywhere, a child s of r is added with
// λ(s) = {h} and χ(s) = var(h). The input is not modified.
//
// The result is generally NOT in normal form (the new leaves satisfy
// χ(s) ⊆ χ(r)), but it is a valid decomposition (Definition 2.1) and is
// complete, which is what query evaluation needs.
func (d *Decomposition) Complete() *Decomposition {
	out := d.Clone()
	h := out.H
	strongly := make([]bool, h.NumEdges())
	out.Walk(func(n, _ *Node) {
		for _, e := range n.Lambda {
			if h.EdgeVars(e).SubsetOf(n.Chi) {
				strongly[e] = true
			}
		}
	})
	for e := 0; e < h.NumEdges(); e++ {
		if strongly[e] {
			continue
		}
		// Find a covering vertex; Validate guarantees one exists for valid
		// decompositions. Attach the strong-cover leaf under the first found.
		var host *Node
		out.Walk(func(n, _ *Node) {
			if host == nil && h.EdgeVars(e).SubsetOf(n.Chi) {
				host = n
			}
		})
		if host == nil {
			continue // invalid decomposition; leave as is, Validate will flag
		}
		leaf := NewNode(h.EdgeVars(e).Clone(), []int{e})
		host.AddChild(leaf)
	}
	out.Nodes() // renumber
	return out
}

// FromJoinTree converts a join tree of an acyclic hypergraph into the
// corresponding width-1 complete hypertree decomposition: one node per edge
// h with λ = {h}, χ = var(h), connected as in the join tree.
func FromJoinTree(h *hypergraph.Hypergraph, jt hypergraph.JoinTree) *Decomposition {
	nodes := make([]*Node, h.NumEdges())
	for e := 0; e < h.NumEdges(); e++ {
		nodes[e] = NewNode(h.EdgeVars(e).Clone(), []int{e})
	}
	for e := 0; e < h.NumEdges(); e++ {
		for _, k := range jt.Kids[e] {
			nodes[e].AddChild(nodes[k])
		}
	}
	d := &Decomposition{H: h, Root: nodes[jt.Root]}
	d.Nodes()
	return d
}

// ToJoinTree converts a width-1 complete decomposition into a join tree.
// It returns false if the decomposition has width > 1 or is not complete.
func (d *Decomposition) ToJoinTree() (hypergraph.JoinTree, bool) {
	if d.Width() != 1 || !d.IsComplete() {
		return hypergraph.JoinTree{}, false
	}
	h := d.H
	parent := make([]int, h.NumEdges())
	for i := range parent {
		parent[i] = -1
	}
	kids := make([][]int, h.NumEdges())
	// Map each decomposition node to its λ edge; then project the node tree
	// onto edges. Multiple nodes may carry the same edge (duplicates); we use
	// the first occurrence as the representative and splice the rest out.
	rep := make(map[int]*Node)
	d.Walk(func(n, _ *Node) {
		e := n.Lambda[0]
		if _, ok := rep[e]; !ok {
			rep[e] = n
		}
	})
	root := -1
	var rec func(n *Node, parentEdge int)
	rec = func(n *Node, parentEdge int) {
		e := n.Lambda[0]
		if rep[e] == n {
			if parentEdge == -1 {
				root = e
			} else if e != parentEdge {
				parent[e] = parentEdge
				kids[parentEdge] = append(kids[parentEdge], e)
			}
			parentEdge = e
		}
		for _, c := range n.Children {
			rec(c, parentEdge)
		}
	}
	rec(d.Root, -1)
	if root == -1 {
		return hypergraph.JoinTree{}, false
	}
	return hypergraph.JoinTree{Root: root, Parent: parent, Kids: kids}, true
}
