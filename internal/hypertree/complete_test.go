package hypertree

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

func TestCompleteAddsStrongCovers(t *testing.T) {
	h := buildQ0()
	// An incomplete width-2 decomposition: s3 and s4 are covered by the
	// root's χ but never appear in a λ with full χ coverage.
	root := NewNode(chi(h, "B", "D", "E", "G"), lam(h, "s3", "s4"))
	root.Chi = chi(h, "B", "D", "E", "G")
	root.AddChild(NewNode(chi(h, "A", "B", "D"), lam(h, "s1")))
	root.AddChild(NewNode(chi(h, "B", "C", "D"), lam(h, "s2")))
	c3 := root.AddChild(NewNode(chi(h, "E", "F", "G"), lam(h, "s5")))
	root.AddChild(NewNode(chi(h, "E", "H"), lam(h, "s6")))
	root.AddChild(NewNode(chi(h, "G", "J"), lam(h, "s8")))
	c3.AddChild(NewNode(chi(h, "F", "I"), lam(h, "s7")))
	// Make it incomplete: replace root λ by {s3,s4} but shrink χ of the s5
	// node so s5 is still strongly covered; drop strong cover of s4 by
	// removing it from root λ and covering {D,G} via χ only... Simpler: use
	// a fresh decomposition where root λ={s1,s5} covers s3,s4 by χ alone.
	root2 := NewNode(chi(h, "A", "B", "D", "E", "F", "G"), lam(h, "s1", "s5"))
	root2.AddChild(NewNode(chi(h, "B", "C", "D"), lam(h, "s2")))
	root2.AddChild(NewNode(chi(h, "E", "H"), lam(h, "s6")))
	root2.AddChild(NewNode(chi(h, "F", "I"), lam(h, "s7")))
	root2.AddChild(NewNode(chi(h, "G", "J"), lam(h, "s8")))
	d := &Decomposition{H: h, Root: root2}
	d.Nodes()
	if err := d.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	if d.IsComplete() {
		t.Fatal("fixture should be incomplete (s3, s4 not strongly covered)")
	}
	cd := d.Complete()
	if err := cd.Validate(); err != nil {
		t.Fatalf("completed decomposition invalid: %v", err)
	}
	if !cd.IsComplete() {
		t.Fatal("Complete() did not produce a complete decomposition")
	}
	if cd.Width() != d.Width() {
		t.Errorf("completion changed width: %d -> %d", d.Width(), cd.Width())
	}
	// Original untouched.
	if d.IsComplete() {
		t.Error("Complete() mutated its receiver")
	}
	// Exactly two leaves added (for s3 and s4).
	if cd.NumNodes() != d.NumNodes()+2 {
		t.Errorf("completed has %d nodes, want %d", cd.NumNodes(), d.NumNodes()+2)
	}
}

func TestFromJoinTreeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		h := hypergraph.RandomAcyclic(rng, 2+rng.Intn(10), 4)
		jt, ok := h.JoinTree()
		if !ok {
			t.Fatal("acyclic hypergraph without join tree")
		}
		d := FromJoinTree(h, jt)
		if err := d.Validate(); err != nil {
			t.Fatalf("join-tree decomposition invalid: %v\n%s", err, h)
		}
		if d.Width() != 1 {
			t.Fatalf("join-tree decomposition width %d", d.Width())
		}
		if !d.IsComplete() {
			t.Fatal("join-tree decomposition should be complete")
		}
		jt2, ok := d.ToJoinTree()
		if !ok {
			t.Fatal("ToJoinTree failed on width-1 complete decomposition")
		}
		if jt2.Root != jt.Root {
			t.Errorf("round trip changed root: %d -> %d", jt.Root, jt2.Root)
		}
		for e := range jt.Parent {
			if jt.Parent[e] != jt2.Parent[e] {
				t.Errorf("round trip changed parent of %d", e)
			}
		}
	}
}

func TestToJoinTreeRejectsWide(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	if _, ok := d.ToJoinTree(); ok {
		t.Error("ToJoinTree should reject width-2 decompositions")
	}
}

func TestTreeCompRoot(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	tc, err := d.TreeComp()
	if err != nil {
		t.Fatal(err)
	}
	if !tc[d.Root].Equal(h.AllVars()) {
		t.Error("treecomp(root) should be var(H)")
	}
	// For the s5 child: its component is {F,I}.
	var s5Node *Node
	d.Walk(func(n, _ *Node) {
		if len(n.Lambda) == 1 && h.EdgeName(n.Lambda[0]) == "s5" {
			s5Node = n
		}
	})
	if got := h.VarsetNames(tc[s5Node]); got != "{F,I}" {
		t.Errorf("treecomp(s5 node) = %s, want {F,I}", got)
	}
}
