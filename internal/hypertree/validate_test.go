package hypertree

import (
	"strings"
	"testing"
)

func TestFig1HDPrime(t *testing.T) {
	h := buildQ0()
	d := buildHDPrime(h)
	if err := d.Validate(); err != nil {
		t.Fatalf("HD′ invalid: %v", err)
	}
	if w := d.Width(); w != 2 {
		t.Errorf("width(HD′) = %d, want 2", w)
	}
	if n := d.NumNodes(); n != 7 {
		t.Errorf("|HD′| = %d, want 7", n)
	}
	if !d.IsComplete() {
		t.Error("HD′ should be complete")
	}
	if err := d.ValidateNF(); err == nil {
		t.Error("HD′ should NOT be in normal form (contains redundant vertices)")
	}
	// Profile: 3 nodes of width 2, 4 of width 1 (Example 3.1).
	counts := map[int]int{}
	d.Walk(func(n, _ *Node) { counts[len(n.Lambda)]++ })
	if counts[2] != 3 || counts[1] != 4 {
		t.Errorf("HD′ profile = %v, want 4×w1, 3×w2", counts)
	}
}

func TestFig1HDSecond(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	if err := d.Validate(); err != nil {
		t.Fatalf("HD″ invalid: %v", err)
	}
	if w := d.Width(); w != 2 {
		t.Errorf("width(HD″) = %d, want 2", w)
	}
	if n := d.NumNodes(); n != 7 {
		t.Errorf("|HD″| = %d, want 7", n)
	}
	if !d.IsComplete() {
		t.Error("HD″ should be complete")
	}
	if err := d.ValidateNF(); err != nil {
		t.Errorf("HD″ should be in normal form: %v", err)
	}
	counts := map[int]int{}
	d.Walk(func(n, _ *Node) { counts[len(n.Lambda)]++ })
	if counts[2] != 1 || counts[1] != 6 {
		t.Errorf("HD″ profile = %v, want 6×w1, 1×w2", counts)
	}
}

func TestValidateCatchesCondition1(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	// Remove the s7 leaf: edge s7 = {F,I} is no longer covered.
	d.Walk(func(n, _ *Node) {
		var kept []*Node
		for _, c := range n.Children {
			if len(c.Lambda) != 1 || h.EdgeName(c.Lambda[0]) != "s7" {
				kept = append(kept, c)
			}
		}
		n.Children = kept
	})
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "condition 1") {
		t.Errorf("expected condition 1 violation, got %v", err)
	}
}

func TestValidateCatchesCondition2(t *testing.T) {
	h := buildQ0()
	// Start from the valid HD″ and move the s2 node (χ={B,C,D}) under the
	// s5 node (χ={E,F,G}): B and D then occur in two disconnected subtrees.
	// All χ labels are unchanged, so condition 1 still holds.
	d := buildHDSecond(h)
	var s2Node, s5Node *Node
	d.Walk(func(n, _ *Node) {
		if len(n.Lambda) != 1 {
			return
		}
		switch h.EdgeName(n.Lambda[0]) {
		case "s2":
			s2Node = n
		case "s5":
			s5Node = n
		}
	})
	var kept []*Node
	for _, c := range d.Root.Children {
		if c != s2Node {
			kept = append(kept, c)
		}
	}
	d.Root.Children = kept
	s5Node.AddChild(s2Node)
	d.Nodes()
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "condition 2") {
		t.Errorf("expected condition 2 violation, got %v", err)
	}
}

func TestValidateCatchesCondition3(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	// Add a variable to root's χ that is not in var(λ(root)).
	d.Root.Chi = d.Root.Chi.Clone()
	d.Root.Chi.Set(h.VarByName("A"))
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "condition 3") {
		t.Errorf("expected condition 3 violation, got %v", err)
	}
}

func TestValidateCatchesCondition4(t *testing.T) {
	h := buildQ0()
	// Start from HD″ and add s7 to the λ of the s5 node while keeping its
	// χ = {E,F,G}: then var(λ) ∩ χ(T_p) contains I (from the {F,I} child)
	// but χ(p) does not, violating condition 4. Coverage and connectedness
	// are unchanged.
	d := buildHDSecond(h)
	d.Walk(func(n, _ *Node) {
		if len(n.Lambda) == 1 && h.EdgeName(n.Lambda[0]) == "s5" {
			n.Lambda = lam(h, "s5", "s7")
		}
	})
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "condition 4") {
		t.Errorf("expected condition 4 violation, got %v", err)
	}
}

func TestWidthAndNodes(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	nodes := d.Nodes()
	if len(nodes) != 7 {
		t.Fatalf("Nodes returned %d, want 7", len(nodes))
	}
	for i, n := range nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	c := d.Clone()
	c.Root.Chi.Clear(h.VarByName("B"))
	c.Root.Lambda = c.Root.Lambda[:1]
	if d.Root.Chi.Count() != 4 || len(d.Root.Lambda) != 2 {
		t.Error("Clone aliases original")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("original damaged by clone mutation: %v", err)
	}
}

func TestSeparator(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	root := d.Root
	var s5Node *Node
	d.Walk(func(n, _ *Node) {
		if len(n.Lambda) == 1 && h.EdgeName(n.Lambda[0]) == "s5" {
			s5Node = n
		}
	})
	sep := Separator(root, s5Node)
	if h.VarsetNames(sep) != "{E,G}" {
		t.Errorf("sep(root, s5) = %s, want {E,G}", h.VarsetNames(sep))
	}
}

func TestStringRendering(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	s := d.String()
	if !strings.Contains(s, "λ={s3,s4}") {
		t.Errorf("String missing root λ: %q", s)
	}
	if !strings.Contains(s, "χ={B,D,E,G}") {
		t.Errorf("String missing root χ: %q", s)
	}
}
