package hypertree

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

func TestMarshalsWinOnFig1(t *testing.T) {
	h := buildQ0()
	for _, d := range []*Decomposition{buildHDSecond(h), buildHDPrime(h)} {
		if !d.MarshalsWin() {
			t.Errorf("marshals should win with a valid decomposition:\n%s", d)
		}
	}
}

func TestMarshalsLoseWithHole(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	// Remove the s7 subtree: the robber escapes into {I}.
	var s5 *Node
	d.Walk(func(n, _ *Node) {
		if len(n.Lambda) == 1 && h.EdgeName(n.Lambda[0]) == "s5" {
			s5 = n
		}
	})
	s5.Children = nil
	if d.MarshalsWin() {
		t.Error("marshals should lose after removing a subtree")
	}
	if _, err := d.PlayGame(nil); err == nil {
		t.Error("PlayGame should report the robber escaping")
	}
}

func TestPlayGameCaptures(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	steps, err := d.PlayGame(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps recorded")
	}
	last := steps[len(steps)-1]
	if !last.Component.Empty() {
		t.Error("final step should have an empty escape component")
	}
	// Monotonicity: escape components strictly shrink.
	for i := 1; i < len(steps); i++ {
		prev, cur := steps[i-1].Component, steps[i].Component
		if prev.Empty() {
			break
		}
		if !cur.SubsetOf(prev) || cur.Equal(prev) {
			t.Errorf("step %d: component did not strictly shrink", i)
		}
	}
	// Width bound: never more than width(d) marshals.
	for _, s := range steps {
		if len(s.Marshals) > d.Width() {
			t.Errorf("used %d marshals, width is %d", len(s.Marshals), d.Width())
		}
	}
}

// Every robber strategy loses against a valid decomposition: exercise all
// single-choice adversaries via random play.
func TestPlayGameRandomRobbers(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		robber := func(comps []hypergraph.Varset) int { return rng.Intn(len(comps)) }
		steps, err := d.PlayGame(robber)
		if err != nil {
			t.Fatal(err)
		}
		if !steps[len(steps)-1].Component.Empty() {
			t.Fatal("robber not captured")
		}
	}
}

func TestLargestComponent(t *testing.T) {
	h := buildQ0()
	a := h.NewVarset()
	a.Set(0)
	b := h.NewVarset()
	b.Set(1)
	b.Set(2)
	if LargestComponent([]hypergraph.Varset{a, b}) != 1 {
		t.Error("should pick the larger component")
	}
}
