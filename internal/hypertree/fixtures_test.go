package hypertree

import "repro/internal/hypergraph"

// Q0 is the paper's running example (Introduction):
//
//	ans ← s1(A,B,D) ∧ s2(B,C,D) ∧ s3(B,E) ∧ s4(D,G) ∧ s5(E,F,G)
//	      ∧ s6(E,H) ∧ s7(F,I) ∧ s8(G,J)
func buildQ0() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.MustEdge("s1", "A", "B", "D")
	b.MustEdge("s2", "B", "C", "D")
	b.MustEdge("s3", "B", "E")
	b.MustEdge("s4", "D", "G")
	b.MustEdge("s5", "E", "F", "G")
	b.MustEdge("s6", "E", "H")
	b.MustEdge("s7", "F", "I")
	b.MustEdge("s8", "G", "J")
	return b.MustBuild()
}

// chi builds a Varset from variable names.
func chi(h *hypergraph.Hypergraph, names ...string) hypergraph.Varset {
	s := h.NewVarset()
	for _, n := range names {
		s.Set(h.VarByName(n))
	}
	return s
}

// lam converts edge names to indices.
func lam(h *hypergraph.Hypergraph, names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = h.EdgeByName(n)
	}
	return out
}

// buildHDPrime is a width-2 decomposition of Q0 in the spirit of Fig 1's
// HD′: seven vertices, three of width 2 and four of width 1, so that
// ω_lex(HD′) = 4·9⁰ + 3·9¹ as in Example 3.1. It is a valid decomposition
// but not in normal form (it contains redundant strong-cover children).
func buildHDPrime(h *hypergraph.Hypergraph) *Decomposition {
	root := NewNode(chi(h, "A", "B", "C", "D"), lam(h, "s1", "s2"))
	c := root.AddChild(NewNode(chi(h, "B", "D", "E", "G"), lam(h, "s3", "s4")))
	d1 := c.AddChild(NewNode(chi(h, "E", "F", "G", "I"), lam(h, "s5", "s7")))
	c.AddChild(NewNode(chi(h, "E", "H"), lam(h, "s6")))
	c.AddChild(NewNode(chi(h, "G", "J"), lam(h, "s8")))
	d1.AddChild(NewNode(chi(h, "F", "I"), lam(h, "s7")))
	root.AddChild(NewNode(chi(h, "A", "B", "D"), lam(h, "s1")))
	d := &Decomposition{H: h, Root: root}
	d.Nodes()
	return d
}

// buildHDSecond is the width-2 NF decomposition matching Fig 1's HD″:
// seven vertices, one of width 2 and six of width 1, so that
// ω_lex(HD″) = 6·9⁰ + 1·9¹.
func buildHDSecond(h *hypergraph.Hypergraph) *Decomposition {
	root := NewNode(chi(h, "B", "D", "E", "G"), lam(h, "s3", "s4"))
	root.AddChild(NewNode(chi(h, "A", "B", "D"), lam(h, "s1")))
	root.AddChild(NewNode(chi(h, "B", "C", "D"), lam(h, "s2")))
	c3 := root.AddChild(NewNode(chi(h, "E", "F", "G"), lam(h, "s5")))
	root.AddChild(NewNode(chi(h, "E", "H"), lam(h, "s6")))
	root.AddChild(NewNode(chi(h, "G", "J"), lam(h, "s8")))
	c3.AddChild(NewNode(chi(h, "F", "I"), lam(h, "s7")))
	d := &Decomposition{H: h, Root: root}
	d.Nodes()
	return d
}
