package hypertree

import (
	"fmt"

	"repro/internal/hypergraph"
)

// Validate checks the four conditions of Definition 2.1 and returns a
// descriptive error naming the first violated condition, or nil if the
// hypertree is a hypertree decomposition of d.H.
func (d *Decomposition) Validate() error {
	h := d.H
	if d.Root == nil {
		return fmt.Errorf("hypertree: empty decomposition")
	}
	nodes := d.Nodes()

	// Condition (1): every edge is covered by some χ(p).
	for e := 0; e < h.NumEdges(); e++ {
		covered := false
		for _, n := range nodes {
			if h.EdgeVars(e).SubsetOf(n.Chi) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("hypertree: condition 1: edge %s covered by no χ label", h.EdgeName(e))
		}
	}

	// Condition (2): for each variable, the nodes whose χ contains it induce
	// a connected subtree (checked top-down: once a variable disappears on a
	// root-to-leaf path it may not reappear, and it must not appear in two
	// disjoint subtrees unless present in their common ancestor).
	if err := d.checkConnectedness(); err != nil {
		return err
	}

	// Condition (3): χ(p) ⊆ var(λ(p)).
	for _, n := range nodes {
		if !n.Chi.SubsetOf(h.Vars(n.Lambda)) {
			return fmt.Errorf("hypertree: condition 3: node %d has χ ⊄ var(λ)", n.ID)
		}
	}

	// Condition (4): var(λ(p)) ∩ χ(T_p) ⊆ χ(p).
	for _, n := range nodes {
		sub := ChiOfSubtree(h, n)
		lv := h.Vars(n.Lambda)
		lv.IntersectWith(sub)
		if !lv.SubsetOf(n.Chi) {
			return fmt.Errorf("hypertree: condition 4: node %d has var(λ)∩χ(T_p) ⊄ χ(p)", n.ID)
		}
	}
	return nil
}

// checkConnectedness verifies condition (2) of Definition 2.1 for every
// variable: {p | Y ∈ χ(p)} induces a connected subtree.
func (d *Decomposition) checkConnectedness() error {
	h := d.H
	// A single DFS counts, per variable, the maximal χ-containing subtree
	// roots: nodes containing the variable whose parent does not. The
	// variable's occurrence set is connected iff there is exactly one.
	roots := make([]int, h.NumVars()) // number of "appearance roots" per var
	var rec func(n *Node, above hypergraph.Varset)
	rec = func(n *Node, above hypergraph.Varset) {
		n.Chi.ForEach(func(v int) {
			if !above.Has(v) {
				roots[v]++
			}
		})
		for _, c := range n.Children {
			rec(c, n.Chi)
		}
	}
	rec(d.Root, h.NewVarset())
	for v := 0; v < h.NumVars(); v++ {
		if roots[v] > 1 {
			return fmt.Errorf("hypertree: condition 2: variable %s appears in %d disconnected subtrees",
				h.VarName(v), roots[v])
		}
	}
	return nil
}

// StronglyCovers reports whether node p strongly covers edge e:
// var(e) ⊆ χ(p) and e ∈ λ(p).
func (d *Decomposition) StronglyCovers(p *Node, e int) bool {
	if !d.H.EdgeVars(e).SubsetOf(p.Chi) {
		return false
	}
	for _, le := range p.Lambda {
		if le == e {
			return true
		}
	}
	return false
}

// IsComplete reports whether every edge of H is strongly covered in d.
func (d *Decomposition) IsComplete() bool {
	covered := make([]bool, d.H.NumEdges())
	d.Walk(func(n, _ *Node) {
		for _, e := range n.Lambda {
			if d.H.EdgeVars(e).SubsetOf(n.Chi) {
				covered[e] = true
			}
		}
	})
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// TreeComp computes treecomp(s) for every node (Section 7): var(H) for the
// root; for a child s of r, the unique [r]-component C_r with
// χ(T_s) = C_r ∪ (χ(s) ∩ χ(r)). Returns a map from node to component, or an
// error if some child has no unique such component (i.e., the decomposition
// violates NF condition (1)).
func (d *Decomposition) TreeComp() (map[*Node]hypergraph.Varset, error) {
	h := d.H
	out := make(map[*Node]hypergraph.Varset)
	out[d.Root] = h.AllVars().Clone()
	var err error
	d.Walk(func(n, parent *Node) {
		if parent == nil || err != nil {
			return
		}
		sub := ChiOfSubtree(h, n)
		want := sub.Subtract(n.Chi.Intersect(parent.Chi))
		comps := h.Components(parent.Chi)
		var found hypergraph.Varset
		matches := 0
		for _, c := range comps {
			if c.Union(n.Chi.Intersect(parent.Chi)).Equal(sub) {
				found = c
				matches++
			}
		}
		if matches != 1 {
			err = fmt.Errorf("hypertree: NF condition 1: node %d has %d matching [parent]-components (χ(T_s)−sep = %s)",
				n.ID, matches, h.VarsetNames(want))
			return
		}
		out[n] = found
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateNF checks the four normal-form conditions of Definition 2.2 (on
// top of Validate). Returns nil iff d is an NF hypertree decomposition.
func (d *Decomposition) ValidateNF() error {
	if err := d.Validate(); err != nil {
		return err
	}
	h := d.H
	tc, err := d.TreeComp()
	if err != nil {
		return err
	}
	var vErr error
	d.Walk(func(s, r *Node) {
		if r == nil || vErr != nil {
			return
		}
		cr := tc[s] // the [r]-component satisfying condition (1)
		// Condition (2): χ(s) ∩ C_r ≠ ∅.
		if !s.Chi.Intersects(cr) {
			vErr = fmt.Errorf("hypertree: NF condition 2: node %d has χ(s)∩C_r = ∅", s.ID)
			return
		}
		// Condition (3): every h ∈ λ(s) meets var(edges(C_r)).
		bound := h.VarsOfEdgesOf(cr)
		for _, e := range s.Lambda {
			if !h.EdgeVars(e).Intersects(bound) {
				vErr = fmt.Errorf("hypertree: NF condition 3: node %d has useless λ edge %s",
					s.ID, h.EdgeName(e))
				return
			}
		}
		// Condition (4): χ(s) = var(edges(C_r)) ∩ var(λ(s)).
		want := bound.Intersect(h.Vars(s.Lambda))
		if !s.Chi.Equal(want) {
			vErr = fmt.Errorf("hypertree: NF condition 4: node %d has χ = %s, want %s",
				s.ID, h.VarsetNames(s.Chi), h.VarsetNames(want))
			return
		}
	})
	return vErr
}
