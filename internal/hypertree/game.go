package hypertree

import (
	"fmt"

	"repro/internal/hypergraph"
)

// The robber-and-marshals game (Gottlob, Leone, Scarcello, "Robbers,
// marshals, and guards", JCSS 2003 — the paper's reference [19], used in
// the Theorem 2.3 proof to argue monotone shrinkage of components). k
// marshals occupy up to k hyperedges; the robber stands on a variable and
// may run along paths of variables not blocked by the marshals. A width-k
// NF hypertree decomposition is exactly a monotone winning strategy for k
// marshals: play λ(root), then descend into the child whose component
// contains the robber.

// GameStep records one move of a played game.
type GameStep struct {
	Marshals  []int             // hyperedges occupied (λ of the current node)
	Component hypergraph.Varset // robber's escape space after the move
}

// MarshalsWin verifies that the decomposition encodes a winning marshal
// strategy: for every reachable (node, component) state, every robber
// escape component is covered by some child. For valid NF decompositions
// this always holds; it returns false (with no error) when the hypertree
// has a hole a robber can exploit.
func (d *Decomposition) MarshalsWin() bool {
	h := d.H
	var win func(n *Node, space hypergraph.Varset) bool
	win = func(n *Node, space hypergraph.Varset) bool {
		lv := h.Vars(n.Lambda)
		// Robber options: [var(λ(n))]-components inside the current space.
		for _, c := range h.ComponentsWithin(lv, space) {
			caught := false
			for _, child := range n.Children {
				sub := ChiOfSubtree(h, child)
				if c.SubsetOf(sub) && win(child, c) {
					caught = true
					break
				}
			}
			if !caught {
				return false
			}
		}
		return true
	}
	if d.Root == nil {
		return false
	}
	return win(d.Root, h.AllVars().Clone())
}

// Robber picks the robber's next escape component among the non-empty
// options (indices into comps). LargestComponent is the default adversary.
type Robber func(comps []hypergraph.Varset) int

// LargestComponent is the greedy adversary: always flee into the biggest
// remaining escape space.
func LargestComponent(comps []hypergraph.Varset) int {
	best, bestSize := 0, -1
	for i, c := range comps {
		if n := c.Count(); n > bestSize {
			best, bestSize = i, n
		}
	}
	return best
}

// PlayGame simulates the marshal strategy encoded by the decomposition
// against the given robber (nil = LargestComponent). The robber is tracked
// as its escape component — the set of positions it could occupy. It
// returns the marshal moves until capture (final step has an empty
// component), or an error if the robber escapes, which indicates an
// invalid decomposition.
func (d *Decomposition) PlayGame(robber Robber) ([]GameStep, error) {
	if robber == nil {
		robber = LargestComponent
	}
	h := d.H
	var steps []GameStep
	node := d.Root
	space := h.AllVars().Clone()
	for guard := 0; ; guard++ {
		if guard > d.NumNodes()+1 {
			return nil, fmt.Errorf("hypertree: game did not terminate (invalid decomposition)")
		}
		lv := h.Vars(node.Lambda)
		comps := h.ComponentsWithin(lv, space)
		if len(comps) == 0 {
			// The marshals block every remaining position: captured.
			steps = append(steps, GameStep{Marshals: node.Lambda, Component: h.NewVarset()})
			return steps, nil
		}
		choice := robber(comps)
		if choice < 0 || choice >= len(comps) {
			return nil, fmt.Errorf("hypertree: robber chose component %d of %d", choice, len(comps))
		}
		cur := comps[choice]
		steps = append(steps, GameStep{Marshals: node.Lambda, Component: cur})
		// Marshals descend into the child whose subtree covers the
		// robber's component.
		var next *Node
		for _, child := range node.Children {
			if cur.SubsetOf(ChiOfSubtree(h, child)) {
				next = child
				break
			}
		}
		if next == nil {
			return nil, fmt.Errorf("hypertree: robber escapes at node %d (invalid decomposition)", node.ID)
		}
		node = next
		space = cur
	}
}

// GameWidth returns the number of marshals the strategy uses: the width of
// the decomposition.
func (d *Decomposition) GameWidth() int { return d.Width() }
