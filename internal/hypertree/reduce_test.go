package hypertree

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

func TestReduceRemovesRedundantLeaves(t *testing.T) {
	h := buildQ0()
	d := buildHDPrime(h) // has two redundant strong-cover leaves
	if d.IsReduced() {
		t.Fatal("HD′ should not be reduced")
	}
	r := d.Reduce()
	if err := r.Validate(); err != nil {
		t.Fatalf("reduced decomposition invalid: %v", err)
	}
	if !r.IsReduced() {
		t.Errorf("Reduce did not reach a reduced tree:\n%s", r)
	}
	if r.NumNodes() != d.NumNodes()-2 {
		t.Errorf("reduced to %d nodes, want %d", r.NumNodes(), d.NumNodes()-2)
	}
	if r.Width() > d.Width() {
		t.Error("Reduce increased width")
	}
	// Original untouched.
	if d.NumNodes() != 7 {
		t.Error("Reduce mutated its receiver")
	}
}

func TestReduceIdempotent(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	r1 := d.Reduce()
	r2 := r1.Reduce()
	if r1.NumNodes() != r2.NumNodes() {
		t.Error("Reduce not idempotent")
	}
}

func TestReduceUndoesCompletion(t *testing.T) {
	h := buildQ0()
	d := buildHDSecond(h)
	cd := d.Complete()
	if cd.NumNodes() < d.NumNodes() {
		t.Skip("completion added nothing")
	}
	r := cd.Reduce()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() > d.NumNodes() {
		t.Errorf("Reduce(Complete(d)) has %d nodes, original %d", r.NumNodes(), d.NumNodes())
	}
}

func TestReduceRootSwap(t *testing.T) {
	h := buildQ0()
	// Root χ={B,E} under a child with χ={B,D,E,G}: root is redundant.
	root := NewNode(chi(h, "B", "E"), lam(h, "s3"))
	c := root.AddChild(NewNode(chi(h, "B", "D", "E", "G"), lam(h, "s3", "s4")))
	c.AddChild(NewNode(chi(h, "A", "B", "D"), lam(h, "s1")))
	c.AddChild(NewNode(chi(h, "B", "C", "D"), lam(h, "s2")))
	c5 := c.AddChild(NewNode(chi(h, "E", "F", "G"), lam(h, "s5")))
	c.AddChild(NewNode(chi(h, "E", "H"), lam(h, "s6")))
	c.AddChild(NewNode(chi(h, "G", "J"), lam(h, "s8")))
	c5.AddChild(NewNode(chi(h, "F", "I"), lam(h, "s7")))
	d := &Decomposition{H: h, Root: root}
	d.Nodes()
	if err := d.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	r := d.Reduce()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Root.Lambda) != 2 {
		t.Errorf("root should be the {s3,s4} node after reduction:\n%s", r)
	}
}

// Property: on random valid width-1 decompositions (join trees of random
// acyclic hypergraphs), Reduce preserves validity and never grows.
func TestReduceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		h := hypergraph.RandomAcyclic(rng, 2+rng.Intn(10), 4)
		jt, ok := h.JoinTree()
		if !ok {
			t.Fatal("acyclic without join tree")
		}
		d := FromJoinTree(h, jt)
		r := d.Reduce()
		if err := r.Validate(); err != nil {
			t.Fatalf("reduced invalid: %v\n%s", err, h)
		}
		if r.NumNodes() > d.NumNodes() {
			t.Error("Reduce grew the tree")
		}
		if !r.IsReduced() {
			t.Error("not reduced after Reduce")
		}
	}
}
