// Package structural implements the competing structural decomposition
// methods the paper positions HYPERTREE against (Section 1.1): tree
// decompositions of the primal graph (Robertson–Seymour treewidth, here via
// the min-fill heuristic) and Freuder's biconnected-components method. They
// exist to reproduce the paper's comparison claims — e.g., that hypertree
// width strongly generalizes both: hw(H) ≤ tw(H)+1 always, while tw is
// unbounded on acyclic hypergraphs with large hyperedges where hw = 1.
package structural

import (
	"fmt"
	"sort"

	"repro/internal/hypergraph"
)

// TreeDecomposition is a tree decomposition of the primal graph: bags of
// variables arranged in a tree (parent index per bag, -1 for the root).
type TreeDecomposition struct {
	Bags   []hypergraph.Varset
	Parent []int
}

// Width returns max |bag| − 1.
func (td *TreeDecomposition) Width() int {
	w := 0
	for _, b := range td.Bags {
		if c := b.Count(); c > w {
			w = c
		}
	}
	return w - 1
}

// Validate checks the three tree-decomposition conditions against the
// hypergraph's primal graph: every vertex in some bag, every primal edge
// inside some bag, and connectedness of each vertex's bag set.
func (td *TreeDecomposition) Validate(h *hypergraph.Hypergraph) error {
	if len(td.Bags) == 0 || len(td.Bags) != len(td.Parent) {
		return fmt.Errorf("structural: malformed tree decomposition")
	}
	// Vertex coverage.
	all := h.NewVarset()
	for _, b := range td.Bags {
		all.UnionWith(b)
	}
	if !h.AllVars().SubsetOf(all) {
		return fmt.Errorf("structural: some variable is in no bag")
	}
	// Edge coverage: every pair of co-occurring variables shares a bag.
	for e := 0; e < h.NumEdges(); e++ {
		vs := h.EdgeVars(e).Elements()
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				found := false
				for _, b := range td.Bags {
					if b.Has(vs[i]) && b.Has(vs[j]) {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("structural: primal edge {%s,%s} in no bag",
						h.VarName(vs[i]), h.VarName(vs[j]))
				}
			}
		}
	}
	// Connectedness per variable.
	kids := make([][]int, len(td.Bags))
	root := -1
	for i, p := range td.Parent {
		if p == -1 {
			root = i
		} else {
			kids[p] = append(kids[p], i)
		}
	}
	if root == -1 {
		return fmt.Errorf("structural: no root bag")
	}
	for v := 0; v < h.NumVars(); v++ {
		if !h.AllVars().Has(v) {
			continue
		}
		roots := 0
		var rec func(i int, above bool)
		rec = func(i int, above bool) {
			has := td.Bags[i].Has(v)
			if has && !above {
				roots++
			}
			for _, k := range kids[i] {
				rec(k, has)
			}
		}
		rec(root, false)
		if roots != 1 {
			return fmt.Errorf("structural: variable %s occurs in %d disconnected bag subtrees",
				h.VarName(v), roots)
		}
	}
	return nil
}

// TreewidthMinFill computes a tree decomposition of the primal graph with
// the classic min-fill elimination heuristic (an upper bound on treewidth;
// exact on chordal graphs).
func TreewidthMinFill(h *hypergraph.Hypergraph) *TreeDecomposition {
	n := h.NumVars()
	// Adjacency as varsets, mutated during elimination.
	adj := make([]hypergraph.Varset, n)
	for v := 0; v < n; v++ {
		adj[v] = h.NewVarset()
	}
	for e := 0; e < h.NumEdges(); e++ {
		vs := h.EdgeVars(e).Elements()
		for _, x := range vs {
			for _, y := range vs {
				if x != y {
					adj[x].Set(y)
				}
			}
		}
	}
	alive := h.AllVars().Clone()
	type elim struct {
		v   int
		bag hypergraph.Varset
	}
	var order []elim
	for !alive.Empty() {
		// Pick the vertex whose elimination adds the fewest fill edges.
		best, bestFill, bestDeg := -1, 1<<30, 1<<30
		alive.ForEach(func(v int) {
			nbrs := adj[v].Intersect(alive)
			fill := 0
			els := nbrs.Elements()
			for i := 0; i < len(els); i++ {
				for j := i + 1; j < len(els); j++ {
					if !adj[els[i]].Has(els[j]) {
						fill++
					}
				}
			}
			deg := len(els)
			if fill < bestFill || (fill == bestFill && deg < bestDeg) {
				best, bestFill, bestDeg = v, fill, deg
			}
		})
		nbrs := adj[best].Intersect(alive)
		// Fill: connect the neighborhood into a clique.
		els := nbrs.Elements()
		for i := 0; i < len(els); i++ {
			for j := 0; j < len(els); j++ {
				if i != j {
					adj[els[i]].Set(els[j])
				}
			}
		}
		bag := nbrs.Clone()
		bag.Set(best)
		order = append(order, elim{v: best, bag: bag})
		alive.Clear(best)
	}
	// Build the tree: bag i's parent is the bag of the first vertex of
	// bag_i − {v_i} eliminated after v_i (standard construction).
	pos := make([]int, n)
	for i, e := range order {
		pos[e.v] = i
	}
	td := &TreeDecomposition{Parent: make([]int, len(order))}
	for i, e := range order {
		td.Bags = append(td.Bags, e.bag)
		parent := -1
		bestPos := 1 << 30
		e.bag.ForEach(func(u int) {
			if u != e.v && pos[u] > i && pos[u] < bestPos {
				bestPos = pos[u]
				parent = pos[u]
			}
		})
		td.Parent[i] = parent
	}
	// Multiple roots can remain (disconnected primal graph or the last
	// elimination); chain extra roots under the final bag.
	last := len(order) - 1
	for i := range td.Parent {
		if td.Parent[i] == -1 && i != last {
			td.Parent[i] = last
		}
	}
	return td
}

// BicompWidth computes the width of Freuder's biconnected-components
// method: the size of the largest biconnected component (block) of the
// primal graph. Queries are tractable when this is bounded; it is the
// weakest of the structural methods compared in the paper.
func BicompWidth(h *hypergraph.Hypergraph) int {
	n := h.NumVars()
	adj := h.PrimalGraph()
	// Hopcroft–Tarjan block decomposition via DFS with an edge stack.
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	type edge struct{ u, v int }
	var stack []edge
	timer := 0
	maxBlock := 0
	measure := func(top int) {
		// Pop edges up to and including the marker; count distinct vertices.
		seen := map[int]bool{}
		for len(stack) > top {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			seen[e.u] = true
			seen[e.v] = true
		}
		if len(seen) > maxBlock {
			maxBlock = len(seen)
		}
	}
	var dfs func(u, parent int)
	dfs = func(u, parent int) {
		disc[u] = timer
		low[u] = timer
		timer++
		for _, v := range adj[u] {
			if v == parent {
				continue
			}
			if disc[v] == -1 {
				top := len(stack)
				stack = append(stack, edge{u, v})
				dfs(v, u)
				if low[v] < low[u] {
					low[u] = low[v]
				}
				if low[v] >= disc[u] {
					measure(top)
				}
			} else if disc[v] < disc[u] {
				stack = append(stack, edge{u, v})
				if disc[v] < low[u] {
					low[u] = disc[v]
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if disc[v] == -1 && h.AllVars().Has(v) {
			dfs(v, -1)
			measure(0)
		}
	}
	if maxBlock == 0 && n > 0 {
		maxBlock = 1 // isolated vertices
	}
	return maxBlock
}

// CoverNumber returns the minimum number of hyperedges needed to cover the
// variable set s (exact by branch and bound; s is small — a bag). It is
// how a tree decomposition converts into a hypertree decomposition bound:
// hw(H) ≤ max over bags of CoverNumber(bag).
func CoverNumber(h *hypergraph.Hypergraph, s hypergraph.Varset) int {
	// Candidate edges: those intersecting s, deduplicated by footprint.
	var cands []hypergraph.Varset
	seen := map[string]bool{}
	for e := 0; e < h.NumEdges(); e++ {
		fp := h.EdgeVars(e).Intersect(s)
		if fp.Empty() {
			continue
		}
		if key := fp.Key(); !seen[key] {
			seen[key] = true
			cands = append(cands, fp)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Count() > cands[j].Count() })
	best := len(cands) + 1
	var rec func(rem hypergraph.Varset, used, from int)
	rec = func(rem hypergraph.Varset, used, from int) {
		if used >= best {
			return
		}
		if rem.Empty() {
			best = used
			return
		}
		// Branch on the first uncovered variable.
		v := rem.Elements()[0]
		for i := from; i < len(cands); i++ {
			if cands[i].Has(v) {
				rec(rem.Subtract(cands[i]), used+1, 0)
			}
		}
	}
	rec(s.Clone(), 0, 0)
	if best > len(cands) {
		return -1 // uncoverable (variable in no edge; cannot happen for bags)
	}
	return best
}

// GeneralizedHypertreeWidthFromTD converts a tree decomposition into a
// (generalized) hypertree width upper bound: the maximum cover number over
// bags. This realizes the textbook inequality hw ≤ ghw ≤ tw+1.
func GeneralizedHypertreeWidthFromTD(h *hypergraph.Hypergraph, td *TreeDecomposition) int {
	w := 0
	for _, b := range td.Bags {
		if c := CoverNumber(h, b); c > w {
			w = c
		}
	}
	return w
}
