package structural

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
)

func TestHingePath(t *testing.T) {
	h := hypergraph.Path(6) // chain of 5 binary edges
	ht := HingeDecomposition(h)
	if !ht.Validate(h) {
		t.Fatal("invalid hinge tree")
	}
	// A chain splits down to blocks of two adjacent edges.
	if got := ht.Width(); got != 2 {
		t.Errorf("hinge width of path = %d, want 2", got)
	}
}

func TestHingeCycleIsOneBlock(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		h := hypergraph.Cycle(n)
		ht := HingeDecomposition(h)
		if !ht.Validate(h) {
			t.Fatal("invalid hinge tree")
		}
		if len(ht.Blocks) != 1 || ht.Width() != n {
			t.Errorf("cycle %d: %d blocks width %d, want 1 block width %d",
				n, len(ht.Blocks), ht.Width(), n)
		}
	}
}

func TestHingeSeparatesFromHypertreeWidth(t *testing.T) {
	// Cycles: hinge width n, hypertree width 2 — the unbounded gap the
	// paper cites when claiming HYPERTREE strongly generalizes HINGE.
	h := hypergraph.Cycle(9)
	ht := HingeDecomposition(h)
	hw, _, err := core.HypertreeWidth(h, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ht.Width() != 9 || hw != 2 {
		t.Errorf("cycle9: hinge %d vs hw %d, want 9 vs 2", ht.Width(), hw)
	}
}

func TestHingeTwoTriangles(t *testing.T) {
	// Two triangles sharing one edge split into two 3-blocks.
	b := hypergraph.NewBuilder()
	b.MustEdge("e1", "A", "B")
	b.MustEdge("e2", "B", "C")
	b.MustEdge("e3", "C", "A")
	b.MustEdge("e4", "A", "D")
	b.MustEdge("e5", "D", "B")
	h := b.MustBuild()
	ht := HingeDecomposition(h)
	if !ht.Validate(h) {
		t.Fatal("invalid hinge tree")
	}
	if ht.Width() != 3 || len(ht.Blocks) != 2 {
		t.Errorf("got %d blocks, width %d; want 2 blocks of width 3 (blocks %v)",
			len(ht.Blocks), ht.Width(), ht.Blocks)
	}
}

// Property: hinge trees are valid and hw ≤ hinge width (with a small search
// cap) on random hypergraphs.
func TestHingeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(6), 5+rng.Intn(6), 3)
		ht := HingeDecomposition(h)
		if !ht.Validate(h) {
			t.Fatalf("invalid hinge tree for\n%s", h)
		}
		cap := ht.Width()
		if cap > 4 {
			cap = 4
		}
		hw, _, err := core.HypertreeWidth(h, cap, core.Options{})
		if err != nil {
			// hw > cap ≤ hinge width is impossible: hw ≤ hinge width always.
			if cap == ht.Width() {
				t.Fatalf("hw > hinge width on\n%s", h)
			}
			continue
		}
		if hw > ht.Width() {
			t.Fatalf("hw %d > hinge width %d on\n%s", hw, ht.Width(), h)
		}
	}
}
