package structural

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
)

func TestTreewidthKnownValues(t *testing.T) {
	cases := []struct {
		name string
		h    *hypergraph.Hypergraph
		want int // min-fill is exact on these families
	}{
		{"path5", hypergraph.Path(5), 1},
		{"cycle4", hypergraph.Cycle(4), 2},
		{"cycle9", hypergraph.Cycle(9), 2},
		{"clique5", hypergraph.Clique(5), 4},
		{"grid3x3", hypergraph.Grid(3, 3), 3},
	}
	for _, c := range cases {
		td := TreewidthMinFill(c.h)
		if err := td.Validate(c.h); err != nil {
			t.Fatalf("%s: invalid tree decomposition: %v", c.name, err)
		}
		if got := td.Width(); got != c.want {
			t.Errorf("%s: treewidth = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTreewidthValidOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(8), 5+rng.Intn(8), 4)
		td := TreewidthMinFill(h)
		if err := td.Validate(h); err != nil {
			t.Fatalf("invalid tree decomposition: %v\n%s", err, h)
		}
	}
}

func TestBicompWidthKnownValues(t *testing.T) {
	cases := []struct {
		name string
		h    *hypergraph.Hypergraph
		want int
	}{
		{"path5", hypergraph.Path(5), 2},     // every block is one edge
		{"cycle6", hypergraph.Cycle(6), 6},   // the cycle is one block
		{"clique4", hypergraph.Clique(4), 4}, // the clique is one block
	}
	for _, c := range cases {
		if got := BicompWidth(c.h); got != c.want {
			t.Errorf("%s: bicomp width = %d, want %d", c.name, got, c.want)
		}
	}
	// Two triangles sharing a cut vertex: blocks of size 3.
	b := hypergraph.NewBuilder()
	b.MustEdge("e1", "A", "B")
	b.MustEdge("e2", "B", "C")
	b.MustEdge("e3", "C", "A")
	b.MustEdge("e4", "C", "D")
	b.MustEdge("e5", "D", "E")
	b.MustEdge("e6", "E", "C")
	if got := BicompWidth(b.MustBuild()); got != 3 {
		t.Errorf("two triangles: bicomp width = %d, want 3", got)
	}
}

func TestCoverNumber(t *testing.T) {
	h := hypergraph.Cycle(4) // binary edges X0X1, X1X2, X2X3, X3X0
	all := h.AllVars().Clone()
	if got := CoverNumber(h, all); got != 2 {
		t.Errorf("cover of all 4 cycle vars = %d, want 2", got)
	}
	single := h.NewVarset()
	single.Set(0)
	if got := CoverNumber(h, single); got != 1 {
		t.Errorf("cover of one var = %d, want 1", got)
	}
	empty := h.NewVarset()
	if got := CoverNumber(h, empty); got != 0 {
		t.Errorf("cover of ∅ = %d, want 0", got)
	}
}

// The paper's comparison claims (Section 1.1): hw ≤ ghw-from-td ≤ tw+1 on
// every instance, and acyclic hypergraphs with large hyperedges separate
// the methods (hw = 1, tw = arity−1).
func TestMethodHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		h := hypergraph.Random(rng, 3+rng.Intn(4), 5+rng.Intn(4), 3)
		td := TreewidthMinFill(h)
		ghw := GeneralizedHypertreeWidthFromTD(h, td)
		if ghw > td.Width()+1 {
			t.Errorf("ghw %d > tw+1 %d", ghw, td.Width()+1)
		}
		hw, _, err := core.HypertreeWidth(h, 5, core.Options{})
		if err != nil {
			continue // width > 5; skip the expensive confirmation
		}
		if hw > ghw {
			t.Errorf("hw %d > ghw-from-td %d\n%s", hw, ghw, h)
		}
	}
}

func TestHypertreeStronglyGeneralizesTreewidth(t *testing.T) {
	// One big hyperedge over n variables: acyclic (hw = 1) but the primal
	// graph is a clique (tw = n−1). The gap is unbounded.
	for _, n := range []int{5, 8, 12} {
		b := hypergraph.NewBuilder()
		vars := make([]string, n)
		for i := range vars {
			vars[i] = fmt.Sprintf("X%d", i)
		}
		b.MustEdge("big", vars...)
		b.MustEdge("side", vars[0], vars[1])
		h := b.MustBuild()
		hw, _, err := core.HypertreeWidth(h, 2, core.Options{})
		if err != nil || hw != 1 {
			t.Fatalf("n=%d: hw = %d (%v), want 1", n, hw, err)
		}
		td := TreewidthMinFill(h)
		if td.Width() != n-1 {
			t.Errorf("n=%d: tw = %d, want %d", n, td.Width(), n-1)
		}
		if ghw := GeneralizedHypertreeWidthFromTD(h, td); ghw != 1 {
			t.Errorf("n=%d: ghw from td = %d, want 1", n, ghw)
		}
		if bw := BicompWidth(h); bw != n {
			t.Errorf("n=%d: bicomp width = %d, want %d", n, bw, n)
		}
	}
}
