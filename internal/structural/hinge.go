package structural

import (
	"sort"

	"repro/internal/hypergraph"
)

// Hinge decompositions (Gyssens, Jeavons, Cohen — the paper's reference
// [23], the third structural method of the Section 1.1 comparison). A
// hinge tree partitions the hyperedges into overlapping blocks ("hinges")
// such that adjacent blocks share the variables of a single connecting
// edge; the method's width is the largest block size. Hypertree width
// generalizes it: hw(H) ≤ hinge-width(H) for every hypergraph.

// HingeTree is a tree of edge blocks. Parent[i] = -1 for the root.
type HingeTree struct {
	Blocks [][]int // hyperedge indices per block, sorted
	Parent []int
}

// Width returns the size of the largest block (the hinge width bound).
func (ht *HingeTree) Width() int {
	w := 0
	for _, b := range ht.Blocks {
		if len(b) > w {
			w = len(b)
		}
	}
	return w
}

// HingeDecomposition computes the (unique, minimal) hinge tree by
// repeatedly splitting blocks: a block K splits at an edge e ∈ K when the
// edges of K−{e} fall into ≥2 groups connected via variables outside
// var(e); each group keeps a copy of e as the connector.
func HingeDecomposition(h *hypergraph.Hypergraph) *HingeTree {
	all := make([]int, h.NumEdges())
	for i := range all {
		all[i] = i
	}
	ht := &HingeTree{Blocks: [][]int{all}, Parent: []int{-1}}
	for {
		split := false
		for bi := 0; bi < len(ht.Blocks) && !split; bi++ {
			block := ht.Blocks[bi]
			if len(block) < 2 {
				continue
			}
			for _, e := range block {
				groups := splitAt(h, block, e)
				if len(groups) < 2 {
					continue
				}
				// Build the fragments {e} ∪ G_i. The fragment that keeps
				// bi's index (and hence its link to bi's parent) must be
				// one containing an edge shared with that parent; e itself
				// is in every fragment, so when the connector is e any
				// fragment qualifies.
				frags := make([][]int, len(groups))
				for gi, g := range groups {
					f := append([]int{e}, g...)
					sort.Ints(f)
					frags[gi] = f
				}
				keep := 0
				if p := ht.Parent[bi]; p != -1 {
					for gi, f := range frags {
						if len(intersectInts(f, ht.Blocks[p])) > 0 {
							keep = gi
							break
						}
					}
				}
				newIdx := []int{bi}
				ht.Blocks[bi] = frags[keep]
				for gi, f := range frags {
					if gi == keep {
						continue
					}
					newIdx = append(newIdx, len(ht.Blocks))
					ht.Blocks = append(ht.Blocks, f)
					ht.Parent = append(ht.Parent, bi)
				}
				// Re-attach bi's previous children to whichever fragment
				// holds their connector edges (e itself lives in every
				// fragment, so any fragment sharing an edge works).
				for j := range ht.Parent {
					if j == bi || ht.Parent[j] != bi || containsInt(newIdx, j) {
						continue
					}
					for _, ni := range newIdx {
						if len(intersectInts(ht.Blocks[j], ht.Blocks[ni])) > 0 {
							ht.Parent[j] = ni
							break
						}
					}
				}
				split = true
				break
			}
		}
		if !split {
			return ht
		}
	}
}

// splitAt groups block−{e} by connectivity through variables not in
// var(e): two edges are together when they share such a variable,
// transitively.
func splitAt(h *hypergraph.Hypergraph, block []int, e int) [][]int {
	ev := h.EdgeVars(e)
	var rest []int
	for _, f := range block {
		if f != e {
			rest = append(rest, f)
		}
	}
	// Union-find over rest.
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, f := range rest {
		parent[f] = f
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for i := 0; i < len(rest); i++ {
		for j := i + 1; j < len(rest); j++ {
			shared := h.EdgeVars(rest[i]).Intersect(h.EdgeVars(rest[j]))
			shared.SubtractWith(ev)
			if !shared.Empty() {
				union(rest[i], rest[j])
			}
		}
	}
	byRoot := map[int][]int{}
	for _, f := range rest {
		r := find(f)
		byRoot[r] = append(byRoot[r], f)
	}
	var roots []int
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out [][]int
	for _, r := range roots {
		g := byRoot[r]
		sort.Ints(g)
		out = append(out, g)
	}
	return out
}

// Validate checks the hinge-tree invariants: every hyperedge occurs in
// some block, adjacent blocks share exactly the edges... in the minimal
// tree, a child shares its connector edge with the parent, and every
// variable shared between a child's subtree and the rest is covered by the
// connector.
func (ht *HingeTree) Validate(h *hypergraph.Hypergraph) bool {
	covered := make([]bool, h.NumEdges())
	for _, b := range ht.Blocks {
		for _, e := range b {
			covered[e] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	// Each non-root block shares at least one edge with its parent, and
	// the shared edges' variables separate the block from the parent side.
	for i, p := range ht.Parent {
		if p == -1 {
			continue
		}
		shared := intersectInts(ht.Blocks[i], ht.Blocks[p])
		if len(shared) == 0 {
			return false
		}
		sepVars := h.NewVarset()
		for _, e := range shared {
			sepVars.UnionWith(h.EdgeVars(e))
		}
		// Vars of the block's exclusive edges that also occur in the
		// parent's exclusive edges must lie in the connector.
		blockVars := h.NewVarset()
		for _, e := range ht.Blocks[i] {
			if !containsInt(shared, e) {
				blockVars.UnionWith(h.EdgeVars(e))
			}
		}
		parentVars := h.NewVarset()
		for _, e := range ht.Blocks[p] {
			if !containsInt(shared, e) {
				parentVars.UnionWith(h.EdgeVars(e))
			}
		}
		cross := blockVars.Intersect(parentVars)
		if !cross.SubsetOf(sepVars) {
			return false
		}
	}
	return true
}

func intersectInts(a, b []int) []int {
	in := map[int]bool{}
	for _, x := range a {
		in[x] = true
	}
	var out []int
	for _, y := range b {
		if in[y] {
			out = append(out, y)
		}
	}
	return out
}

func containsInt(a []int, x int) bool {
	for _, y := range a {
		if y == x {
			return true
		}
	}
	return false
}
