// Package store is the disk-backed canonical plan store behind a
// planserver replica: an append-only log of checksummed records, split
// into bounded segments, that survives crashes mid-write. A restarted
// replica replays the log to warm-load its plan LRU and its negative
// cache, so it answers hot instead of re-searching — the persistence half
// of the distributed plan tier (the consistent-hash ring in
// internal/cluster is the other half).
//
// Records are opaque (key, value) pairs tagged with a Kind: the cache
// layer stores the canonical plan key with a serialized cache.PlanRecord
// as the value, and negative-cache keys with an empty value. The store
// never interprets either.
//
// Crash safety is torn-write tolerance, not synchronous durability: a
// record is framed as
//
//	[kind 1B][key-len uvarint][key][val-len uvarint][val][crc32c 4B]
//
// and recovery on Open scans each segment sequentially, stops at the
// first frame that fails its checksum or runs past the end of the file,
// and truncates the tail segment back to the last valid record. A crash
// (or an injected chaos.StoreAppend tear) therefore loses at most the
// record being written; everything before it replays intact. Set
// Options.Sync for fsync-per-append when durability matters more than
// append latency.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/chaos"
)

// Kind tags a record's meaning for the replay callback.
type Kind uint8

const (
	// KindPlan records carry a serialized canonical plan keyed by the full
	// plan-cache key.
	KindPlan Kind = 1
	// KindNegative records carry an infeasibility verdict: the key is a
	// negative-cache key, the value is empty.
	KindNegative Kind = 2
)

// Record is one replayed entry.
type Record struct {
	Kind Kind
	Key  string
	Val  []byte
}

// Options tunes a Store. The zero value selects defaults.
type Options struct {
	// SegmentBytes rolls the active segment once it reaches this size
	// (default 4 MiB).
	SegmentBytes int64
	// MaxSegments prunes the oldest segments beyond this count (default
	// 64; negative disables pruning). Pruned records are the coldest —
	// newer appends of the same key override older ones at replay.
	MaxSegments int
	// Sync fsyncs after every append (durable, slow). Off by default: the
	// store's contract is torn-write tolerance, not power-loss durability.
	Sync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxSegments == 0 {
		o.MaxSegments = 64
	}
	return o
}

// Stats is a point-in-time snapshot of the store's shape, exposed through
// /v1/stats and the Prometheus exposition.
type Stats struct {
	Segments       int   `json:"segments"`
	Bytes          int64 `json:"bytes"`
	Records        int64 `json:"records"`        // replayed at open + appended since
	TruncatedBytes int64 `json:"truncatedBytes"` // torn tail dropped by recovery
	PrunedSegments int   `json:"prunedSegments"` // segments removed by the retention cap
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("store: closed")

// errTorn marks a store that took an injected torn write: like a crashed
// process, it accepts no further appends — reopening (which runs recovery)
// is the only way forward.
var errTorn = errors.New("store: torn write; reopen to recover")

const (
	segPrefix = "seg-"
	segSuffix = ".log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Store is an append-only segmented record log. Safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu         sync.Mutex
	active     *os.File
	activeSeq  int
	activeSize int64
	segments   []segment // completed segments + the active one, oldest first
	records    int64
	truncated  int64
	pruned     int
	closed     bool
	torn       bool
}

type segment struct {
	seq  int
	size int64
}

func segName(seq int) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// Open opens (creating if needed) the store in dir, replaying every valid
// record — oldest segment first, so later records for a key supersede
// earlier ones — through replay before returning. A torn or corrupt tail
// is truncated back to the last valid record; appends continue from there.
func Open(dir string, opts Options, replay func(Record)) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		var seq int
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &seq); err == nil &&
			name == segName(seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)

	s := &Store{dir: dir, opts: opts}
	for i, seq := range seqs {
		size, n, err := s.replaySegment(seq, i == len(seqs)-1, replay)
		if err != nil {
			return nil, err
		}
		s.records += n
		s.segments = append(s.segments, segment{seq: seq, size: size})
	}

	nextSeq := 1
	if n := len(s.segments); n > 0 {
		last := s.segments[n-1]
		if last.size < opts.SegmentBytes {
			// Reopen the tail segment for append (recovery already truncated
			// any torn bytes).
			f, err := os.OpenFile(filepath.Join(dir, segName(last.seq)), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			s.active = f
			s.activeSeq = last.seq
			s.activeSize = last.size
			return s, nil
		}
		nextSeq = last.seq + 1
	}
	if err := s.roll(nextSeq); err != nil {
		return nil, err
	}
	return s, nil
}

// replaySegment scans one segment, invoking replay per valid record, and
// returns the valid byte length and record count. When tail is set, the
// file is truncated back to the valid length (torn-write recovery).
func (s *Store) replaySegment(seq int, tail bool, replay func(Record)) (int64, int64, error) {
	path := filepath.Join(s.dir, segName(seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var off int64
	var n int64
	for {
		rec, next, ok := decodeRecord(data, off)
		if !ok {
			break
		}
		if replay != nil {
			replay(rec)
		}
		n++
		off = next
	}
	if off < int64(len(data)) {
		s.truncated += int64(len(data)) - off
		if tail {
			if err := os.Truncate(path, off); err != nil {
				return 0, 0, fmt.Errorf("store: truncating torn tail of %s: %w", segName(seq), err)
			}
		}
		// A non-tail segment with trailing garbage keeps its length on disk
		// (it is never appended to again); the invalid suffix is simply not
		// replayed.
	}
	return off, n, nil
}

// decodeRecord parses one frame at off. ok is false on any truncation,
// overrun, or checksum mismatch — recovery treats all three as "the log
// ends here".
func decodeRecord(data []byte, off int64) (Record, int64, bool) {
	p := data[off:]
	if len(p) < 1 {
		return Record{}, 0, false
	}
	kind := Kind(p[0])
	i := 1
	klen, n := binary.Uvarint(p[i:])
	if n <= 0 || klen > uint64(len(p)) {
		return Record{}, 0, false
	}
	i += n
	if uint64(len(p)-i) < klen {
		return Record{}, 0, false
	}
	key := p[i : i+int(klen)]
	i += int(klen)
	vlen, n := binary.Uvarint(p[i:])
	if n <= 0 || vlen > uint64(len(p)) {
		return Record{}, 0, false
	}
	i += n
	if uint64(len(p)-i) < vlen+4 {
		return Record{}, 0, false
	}
	val := p[i : i+int(vlen)]
	i += int(vlen)
	sum := binary.LittleEndian.Uint32(p[i:])
	if crc32.Checksum(p[:i], crcTable) != sum {
		return Record{}, 0, false
	}
	i += 4
	out := Record{Kind: kind, Key: string(key)}
	if vlen > 0 {
		out.Val = append([]byte(nil), val...)
	}
	return out, off + int64(i), true
}

// encodeRecord renders the full frame including the trailing checksum.
func encodeRecord(kind Kind, key string, val []byte) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(key)+len(val)+4)
	buf = append(buf, byte(kind))
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	buf = append(buf, val...)
	sum := crc32.Checksum(buf, crcTable)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// Append writes one record. It is torn-write tolerant, not atomic: a
// crash mid-write loses only this record. Under an injected
// chaos.StoreAppend tear, a prefix of the frame reaches disk and the
// store refuses all further appends, modelling the crash the tear stands
// in for; Open recovers.
func (s *Store) Append(kind Kind, key string, val []byte) error {
	buf := encodeRecord(kind, key, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.torn:
		return errTorn
	}
	// Chaos: Delay stalls the append (holding the store lock, as a slow disk
	// would serialize writers); Drop tears the frame.
	if chaos.Hit(chaos.StoreAppend, chaos.Delay|chaos.Drop)&chaos.Drop != 0 {
		s.torn = true
		if _, err := s.active.Write(buf[:len(buf)/2]); err != nil {
			return err
		}
		return chaos.ErrInjected
	}
	if _, err := s.active.Write(buf); err != nil {
		return err
	}
	if s.opts.Sync {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	s.activeSize += int64(len(buf))
	s.records++
	s.segments[len(s.segments)-1].size = s.activeSize
	if s.activeSize >= s.opts.SegmentBytes {
		if err := s.roll(s.activeSeq + 1); err != nil {
			return err
		}
		s.prune()
	}
	return nil
}

// roll closes the active segment (if any) and starts a new one. Caller
// holds s.mu (or is Open, pre-publication).
func (s *Store) roll(seq int) error {
	if s.active != nil {
		if err := s.active.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(s.dir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.active = f
	s.activeSeq = seq
	s.activeSize = 0
	s.segments = append(s.segments, segment{seq: seq})
	return nil
}

// prune enforces MaxSegments by deleting the oldest completed segments.
// Caller holds s.mu.
func (s *Store) prune() {
	if s.opts.MaxSegments < 0 {
		return
	}
	for len(s.segments) > s.opts.MaxSegments {
		old := s.segments[0]
		if err := os.Remove(filepath.Join(s.dir, segName(old.seq))); err != nil && !os.IsNotExist(err) {
			return // keep the segment; retry on the next roll
		}
		s.segments = s.segments[1:]
		s.pruned++
	}
}

// Reset discards every record and segment and starts an empty log. It is
// the compaction primitive for queue-shaped uses of the store (the hinted-
// handoff log): an append-only log cannot delete individual records, so a
// queue that fully drains resets the log instead of replaying settled
// hints forever. A reset store accepts appends again even after an
// injected torn write — the torn segment is deleted with the rest.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.active != nil {
		if err := s.active.Close(); err != nil {
			return err
		}
		s.active = nil
	}
	next := 1
	for _, seg := range s.segments {
		if err := os.Remove(filepath.Join(s.dir, segName(seg.seq))); err != nil && !os.IsNotExist(err) {
			return err
		}
		next = seg.seq + 1
	}
	s.segments = nil
	s.records = 0
	s.torn = false
	return s.roll(next)
}

// Stats snapshots the store's shape.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:       len(s.segments),
		Records:        s.records,
		TruncatedBytes: s.truncated,
		PrunedSegments: s.pruned,
	}
	for _, seg := range s.segments {
		st.Bytes += seg.size
	}
	return st
}

// Close flushes and closes the active segment. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}
