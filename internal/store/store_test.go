package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
)

func collect(t *testing.T, dir string, opts Options) (*Store, []Record) {
	t.Helper()
	var recs []Record
	s, err := Open(dir, opts, func(r Record) { recs = append(recs, r) })
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, recs := collect(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh store replayed %d records", len(recs))
	}
	want := []Record{
		{Kind: KindPlan, Key: "k1", Val: []byte(`{"plan":1}`)},
		{Kind: KindNegative, Key: "neg\x00key", Val: nil},
		{Kind: KindPlan, Key: "k2", Val: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, r := range want {
		if err := s.Append(r.Kind, r.Key, r.Val); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := s.Stats(); st.Records != 3 || st.Segments != 1 {
		t.Fatalf("stats after append: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, got := collect(t, dir, Options{})
	defer s2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Kind != want[i].Kind || r.Key != want[i].Key || !bytes.Equal(r.Val, want[i].Val) {
			t.Fatalf("record %d: got %+v want %+v", i, r, want[i])
		}
	}
	if st := s2.Stats(); st.Records != 3 || st.TruncatedBytes != 0 {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := collect(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Append(KindPlan, fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	s.Close()

	// Tear the tail: chop bytes off the last record.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recs := collect(t, dir, Options{})
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4 (last torn)", len(recs))
	}
	if st := s2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("recovery truncated nothing: %+v", st)
	}
	// Appends continue from the recovered offset and survive another cycle.
	if err := s2.Append(KindPlan, "k5", []byte("after-recovery")); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	s2.Close()
	s3, recs := collect(t, dir, Options{})
	defer s3.Close()
	if len(recs) != 5 || recs[4].Key != "k5" {
		t.Fatalf("after recovery+append, replayed %d records (last %+v)", len(recs), recs[len(recs)-1])
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := collect(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Append(KindPlan, fmt.Sprintf("k%d", i), []byte("vvvv")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Flip a payload byte of the middle record: replay must stop before it
	// rather than serve a record whose checksum lies.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(data) / 3
	data[recLen+recLen/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, recs := collect(t, dir, Options{})
	defer s2.Close()
	if len(recs) != 1 || recs[0].Key != "k0" {
		t.Fatalf("replayed %d records past a corrupt frame (first %+v)", len(recs), recs)
	}
}

func TestSegmentRollAndPrune(t *testing.T) {
	dir := t.TempDir()
	s, _ := collect(t, dir, Options{SegmentBytes: 256, MaxSegments: 3})
	val := bytes.Repeat([]byte{'x'}, 100)
	for i := 0; i < 20; i++ {
		if err := s.Append(KindPlan, fmt.Sprintf("key-%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments > 3 {
		t.Fatalf("retention cap ignored: %d segments", st.Segments)
	}
	if st.PrunedSegments == 0 {
		t.Fatalf("expected pruning: %+v", st)
	}
	s.Close()
	// Replay yields only the retained (newest) records, in order.
	s2, recs := collect(t, dir, Options{SegmentBytes: 256, MaxSegments: 3})
	defer s2.Close()
	if len(recs) == 0 || len(recs) >= 20 {
		t.Fatalf("replayed %d records, want a pruned non-empty subset", len(recs))
	}
	if last := recs[len(recs)-1].Key; last != "key-19" {
		t.Fatalf("newest record lost by pruning: last key %s", last)
	}
}

// tornInjector answers Drop on the nth StoreAppend hit.
type tornInjector struct{ n, hits int }

func (ti *tornInjector) Act(p chaos.Point, allowed chaos.Effect) chaos.Effect {
	if p != chaos.StoreAppend {
		return 0
	}
	ti.hits++
	if ti.hits == ti.n {
		return chaos.Drop & allowed
	}
	return 0
}

func TestInjectedTornWriteRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _ := collect(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := s.Append(KindPlan, fmt.Sprintf("k%d", i), []byte("vvvv")); err != nil {
			t.Fatal(err)
		}
	}
	unregister := chaos.Register(&tornInjector{n: 1})
	err := s.Append(KindPlan, "torn", []byte("half of me is missing"))
	unregister()
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("torn append: got %v, want ErrInjected", err)
	}
	// The store models a crash: no appends after a tear.
	if err := s.Append(KindPlan, "after", nil); !errors.Is(err, errTorn) {
		t.Fatalf("append after tear: got %v, want errTorn", err)
	}
	s.Close()

	s2, recs := collect(t, dir, Options{})
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want the 3 before the tear", len(recs))
	}
	if st := s2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("tear left no truncated bytes: %+v", st)
	}
	// The recovered store appends cleanly again.
	if err := s2.Append(KindNegative, "neg", nil); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, recs := collect(t, dir, Options{})
	defer s3.Close()
	if len(recs) != 4 || recs[3].Kind != KindNegative {
		t.Fatalf("post-recovery append lost: %d records", len(recs))
	}
}

func TestCloseIdempotentAndErrClosed(t *testing.T) {
	dir := t.TempDir()
	s, _ := collect(t, dir, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Append(KindPlan, "k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
}
