package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/cq"
	"repro/internal/db"
)

// Solver benchmark: the machine-readable perf trajectory of the
// candidate-graph hot path (BENCH_solver.json). Each row measures one
// fixture query at one width bound: cold planning (CostKDecomp from
// scratch — augmentation, k-vertex enumeration, structural discovery, cost
// evaluation), warm planning (MinimalKCtx over a prepared SearchContext
// with populated structural caches), and the candidate-graph size the
// solver explored (Theorem 4.5's quantities). CI runs this on every push
// and uploads the artifact, so regressions in ns/op or allocs/op are
// visible across the commit history.

// SolverBenchRow is one (fixture, k, workers) measurement.
type SolverBenchRow struct {
	Fixture string `json:"fixture"`
	K       int    `json:"k"`
	// Workers is the solver pool size the row was measured with: 1 is the
	// sequential solver, anything larger the level-parallel one. Rows from
	// the solver-bench/1 schema carry no workers field and decode as 0;
	// normalize to 1 when comparing (they measured sequential solves).
	Workers int `json:"workers"`
	// Feasible is false when the fixture has no width-k NF decomposition;
	// timings then measure the cost of discovering infeasibility.
	Feasible      bool    `json:"feasible"`
	EstimatedCost float64 `json:"estimated_cost,omitempty"`

	ColdNsPerOp     int64 `json:"cold_ns_per_op"`
	ColdAllocsPerOp int64 `json:"cold_allocs_per_op"`
	ColdBytesPerOp  int64 `json:"cold_bytes_per_op"`
	WarmNsPerOp     int64 `json:"warm_ns_per_op"`
	WarmAllocsPerOp int64 `json:"warm_allocs_per_op"`
	WarmBytesPerOp  int64 `json:"warm_bytes_per_op"`

	Psi         int `json:"psi"`         // Ψ, k-vertices enumerated
	Components  int `json:"components"`  // distinct components interned
	Solutions   int `json:"solutions"`   // solution nodes materialized
	Subproblems int `json:"subproblems"` // subproblem nodes materialized
}

// SolverBenchReport is the BENCH_solver.json document.
type SolverBenchReport struct {
	Schema string           `json:"schema"` // bumped when row fields change
	Rows   []SolverBenchRow `json:"rows"`
}

// solverFixture is one benchmark workload: a query plus a stats catalog.
type solverFixture struct {
	name string
	q    *cq.Query
	cat  *db.Catalog
	ks   []int
}

// WarehouseAuditQuery returns the cross-source consistency audit of
// examples/warehouse: structurally the paper's Q1 under a data-warehouse
// schema (cyclic, low-selectivity m:n joins).
func WarehouseAuditQuery() *cq.Query {
	return cq.MustParse(`audit :-
		orders(Src, Ox, Rx, Cc, Fc),
		invoices(Src, Oy, Ry, Cd, Fd),
		recon(Cc, Cd, Batch),
		ship_x(Ox, Batch),
		ship_y(Oy, Batch),
		pay(Fc, Fd, Window),
		route_x(Rx, Window),
		route_y(Ry, Window),
		links(Ledger, Ox, Oy, Rx, Ry)`)
}

// WarehouseAuditCatalog returns a stats-only catalog for the audit query:
// the Fig 5 statistics at 40% scale, renamed positionally onto the audit
// schema (the audit atoms are listed in Q1's atom order, so attribute i of
// Fig 5 relation i maps to variable i of audit atom i).
func WarehouseAuditCatalog() *db.Catalog {
	specs := ScaleSpecs(Fig5Specs(), 0.4)
	q := WarehouseAuditQuery()
	cat := db.NewCatalog()
	for i, s := range specs {
		atom := q.Atoms[i]
		st := &db.TableStats{Card: s.Card, Distinct: map[string]int{}}
		for j, a := range s.Attrs {
			st.Distinct[atom.Vars[j]] = s.Distinct[a]
		}
		cat.SetStats(atom.Predicate, st)
	}
	return cat
}

// solverFixtures returns the benchmark corpus: Q1 over the published Fig 5
// statistics, Q2/Q3 over their synthetic workloads (statistics only; no
// tuples are generated), and the warehouse audit fixture.
func solverFixtures() []solverFixture {
	statsOnly := func(specs []db.Spec) *db.Catalog {
		cat := db.NewCatalog()
		for _, s := range specs {
			st := &db.TableStats{Card: s.Card, Distinct: map[string]int{}}
			for a, d := range s.Distinct {
				st.Distinct[a] = d
			}
			cat.SetStats(s.Name, st)
		}
		return cat
	}
	return []solverFixture{
		{name: "Q1-fig5", q: cq.Q1(), cat: Fig5StatsCatalog(), ks: []int{2, 3, 4}},
		{name: "Q2", q: cq.Q2(), cat: statsOnly(Q2Specs(1500)), ks: []int{2, 3}},
		{name: "Q3", q: cq.Q3(), cat: statsOnly(Q3Specs(1500)), ks: []int{2, 3}},
		{name: "warehouse-audit", q: WarehouseAuditQuery(), cat: WarehouseAuditCatalog(), ks: []int{2, 3, 4}},
	}
}

// BenchWorkers returns the worker counts every fixture × k is measured at:
// 1 (the sequential baseline), 4, and NumCPU, deduplicated and ascending —
// so the artifact makes the parallel solver's speedup (or the lack of one)
// visible per commit.
func BenchWorkers() []int {
	ws := []int{1, 4, runtime.NumCPU()}
	sort.Ints(ws)
	out := ws[:1]
	for _, w := range ws[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// RunSolverBench measures every fixture × k × workers and returns the report.
func RunSolverBench() (*SolverBenchReport, error) {
	rep := &SolverBenchReport{Schema: "solver-bench/2"}
	for _, fx := range solverFixtures() {
		for _, k := range fx.ks {
			for _, workers := range BenchWorkers() {
				row, err := runSolverRow(fx, k, workers)
				if err != nil {
					return nil, fmt.Errorf("%s k=%d workers=%d: %w", fx.name, k, workers, err)
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

func runSolverRow(fx solverFixture, k, workers int) (SolverBenchRow, error) {
	row := SolverBenchRow{Fixture: fx.name, K: k, Workers: workers}
	popts := core.ParallelOptions{Workers: workers}

	// Candidate-graph statistics and feasibility (one instrumented solve).
	ps, err := cost.NewPlanSearch(fx.q, k, core.Options{})
	if err != nil {
		return row, err
	}
	model, err := cost.NewModel(ps.FQ, fx.cat)
	if err != nil {
		return row, err
	}
	res, st, err := core.MinimalKWithStats(ps.H, k, model.TAF(), core.Options{})
	switch {
	case errors.Is(err, core.ErrNoDecomposition):
	case err != nil:
		return row, err
	default:
		row.Feasible = true
		row.EstimatedCost = res.Weight
	}
	row.Psi = st.KVertices
	row.Components = st.Components
	row.Solutions = st.Solutions
	row.Subproblems = st.Subproblems

	// Cold: the full plan path per op, as a service cold miss pays it —
	// sequential CostKDecomp at workers = 1, the level-parallel solver above.
	cold := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if workers == 1 {
				_, err = cost.CostKDecomp(fx.q, fx.cat, k, core.Options{})
			} else {
				_, err = cost.CostKDecompParallel(fx.q, fx.cat, k, popts)
			}
			if err != nil && !errors.Is(err, core.ErrNoDecomposition) {
				b.Fatal(err)
			}
		}
	})
	row.ColdNsPerOp = cold.NsPerOp()
	row.ColdAllocsPerOp = cold.AllocsPerOp()
	row.ColdBytesPerOp = cold.AllocedBytesPerOp()

	// Warm: repeat solves over one SearchContext and one cost model, i.e.
	// the steady state of a plan service re-planning a known structure.
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if workers == 1 {
				_, err = core.MinimalKCtx(ps.SC, model.TAF(), core.Options{})
			} else {
				_, err = core.ParallelMinimalKCtx(ps.SC, model.TAF(), popts)
			}
			if err != nil && !errors.Is(err, core.ErrNoDecomposition) {
				b.Fatal(err)
			}
		}
	})
	row.WarmNsPerOp = warm.NsPerOp()
	row.WarmAllocsPerOp = warm.AllocsPerOp()
	row.WarmBytesPerOp = warm.AllocedBytesPerOp()
	return row, nil
}

// WriteSolverBenchJSON writes the report to path (pretty-printed, stable
// field order) for CI artifact upload.
func WriteSolverBenchJSON(path string, rep *SolverBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatSolverBench renders the report as a console table.
func FormatSolverBench(rep *SolverBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %2s %3s %5s %10s %12s %10s %12s %6s %6s %6s %6s\n",
		"fixture", "k", "w", "feas", "cold ns", "cold allocs", "warm ns", "warm allocs", "Ψ", "comps", "sols", "subs")
	for _, r := range rep.Rows {
		feas := "yes"
		if !r.Feasible {
			feas = "no"
		}
		fmt.Fprintf(&b, "%-16s %2d %3d %5s %10d %12d %10d %12d %6d %6d %6d %6d\n",
			r.Fixture, r.K, r.Workers, feas, r.ColdNsPerOp, r.ColdAllocsPerOp,
			r.WarmNsPerOp, r.WarmAllocsPerOp, r.Psi, r.Components, r.Solutions, r.Subproblems)
	}
	return b.String()
}
