package bench

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cq"
)

// E4: the generated Q1 database reproduces Fig 5's statistics exactly.
func TestFig5Stats(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cat, err := BuildQ1Catalog(rng, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range Fig5Specs() {
		st := cat.Stats(spec.Name)
		if st == nil {
			t.Fatalf("no stats for %s", spec.Name)
		}
		if st.Card != spec.Card {
			t.Errorf("|%s| = %d, want %d", spec.Name, st.Card, spec.Card)
		}
		for a, d := range spec.Distinct {
			if st.Distinct[a] != d {
				t.Errorf("selectivity %s.%s = %d, want %d", spec.Name, a, st.Distinct[a], d)
			}
		}
	}
	table, err := RunFig5(rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"|a| = 4606", "|j| = 4234", "SELECTIVITY S"} {
		if !strings.Contains(table, frag) {
			t.Errorf("stats table missing %q", frag)
		}
	}
}

// E5/E6: the k-sweep reproduces the paper's shape — costs strictly decrease
// from k=2 to k=4 and are flat from 4 to 5 (Section 6: "for both k = 4 and
// k = 5 we obtain 854 867").
func TestCostKSweepShape(t *testing.T) {
	rows, err := RunFig67()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("sweep rows = %d, want 4", len(rows))
	}
	byK := map[int]Fig7Row{}
	for _, r := range rows {
		if !r.Feasible {
			t.Fatalf("k=%d infeasible; Q1 has hypertree width 2", r.K)
		}
		byK[r.K] = r
	}
	if !(byK[2].EstimatedCost > byK[3].EstimatedCost) {
		t.Errorf("cost(k=2)=%.0f should exceed cost(k=3)=%.0f",
			byK[2].EstimatedCost, byK[3].EstimatedCost)
	}
	if !(byK[3].EstimatedCost >= byK[4].EstimatedCost) {
		t.Errorf("cost(k=3)=%.0f should be ≥ cost(k=4)=%.0f",
			byK[3].EstimatedCost, byK[4].EstimatedCost)
	}
	if d := math.Abs(byK[4].EstimatedCost - byK[5].EstimatedCost); d > 1e-6*byK[4].EstimatedCost {
		t.Errorf("cost(k=4)=%.0f should equal cost(k=5)=%.0f",
			byK[4].EstimatedCost, byK[5].EstimatedCost)
	}
	out := FormatFig7(rows)
	if !strings.Contains(out, "854867") {
		t.Logf("sweep table:\n%s", out) // informational; absolute match not required
	}
}

// E7 at reduced scale: the structural plan and the baseline agree on the
// answer, and the ratio is computable. (The full-scale timing run lives in
// cmd/benchrun and bench_test.go.)
func TestFig8AComparisonSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	q1cat, err := BuildQ1Catalog(rng, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := runComparison(cq.Q1(), q1cat, []int{2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Agree {
			t.Errorf("k=%d: structural and baseline answers disagree", r.K)
		}
		if r.Ratio <= 0 {
			t.Errorf("k=%d: ratio %v not positive", r.K, r.Ratio)
		}
	}
	if s := FormatFig8A(rows); !strings.Contains(s, "ratio") {
		t.Error("Fig8A table missing header")
	}
}

// E8 at reduced scale.
func TestFig8BComparisonSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	rows, err := RunFig8BScaled(rng, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Query != "Q2" || rows[1].Query != "Q3" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if !r.Agree {
			t.Errorf("%s: answers disagree", r.Query)
		}
	}
	if s := FormatFig8B(rows); !strings.Contains(s, "Q3") {
		t.Error("Fig8B table missing Q3")
	}
}

func TestPsiTable(t *testing.T) {
	rows := RunPsiTable()
	if rows[0].Psi != 25 || rows[0].NtoK != 125 {
		t.Errorf("Ψ(5,3) row wrong: %+v", rows[0])
	}
	if rows[1].Psi != 385 || rows[1].NtoK != 10000 {
		t.Errorf("Ψ(10,4) row wrong: %+v", rows[1])
	}
	if s := FormatPsi(rows); !strings.Contains(s, "385") {
		t.Error("Psi table missing 385")
	}
}

// E14: the Section 1.1 hierarchy holds on every family: hw ≤ ghw ≤ tw+1,
// and the big-edge family separates hw from tw unboundedly.
func TestMethodComparison(t *testing.T) {
	rows := RunMethodComparison()
	byName := map[string]MethodRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Hw < 0 {
			continue
		}
		if r.Hw > r.GhwTD {
			t.Errorf("%s: hw %d > ghw %d", r.Name, r.Hw, r.GhwTD)
		}
		if r.GhwTD > r.Tw+1 {
			t.Errorf("%s: ghw %d > tw+1 %d", r.Name, r.GhwTD, r.Tw+1)
		}
	}
	if r := byName["bigedge12"]; r.Hw != 1 || r.Tw != 11 {
		t.Errorf("bigedge12 should separate hw (=1) from tw (=11): %+v", r)
	}
	if r := byName["H(Q1)"]; r.Hw != 2 {
		t.Errorf("hw(H(Q1)) = %d, want 2", r.Hw)
	}
	if s := FormatMethods(rows); !strings.Contains(s, "bigedge12") {
		t.Error("table missing bigedge12")
	}
}

func TestScaleSpecs(t *testing.T) {
	scaled := ScaleSpecs(Fig5Specs(), 0.01)
	for _, s := range scaled {
		if s.Card < 1 {
			t.Errorf("%s card %d", s.Name, s.Card)
		}
		for a, d := range s.Distinct {
			if d > s.Card {
				t.Errorf("%s.%s distinct %d > card %d", s.Name, a, d, s.Card)
			}
			if d < 1 {
				t.Errorf("%s.%s distinct %d", s.Name, a, d)
			}
		}
	}
}
