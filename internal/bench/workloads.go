// Package bench implements the experiment harness: workload builders
// matching the paper's Section 6 setup (the Fig 5 statistics for Q1, random
// 1500-tuple databases for Q2 and Q3) and runners that regenerate every
// table and figure of the evaluation (experiments E3–E8 of DESIGN.md).
package bench

import (
	"math/rand"

	"repro/internal/db"
)

// Fig5Specs returns the paper's Fig 5 statistics for query Q1 as generator
// specs: per relation, the cardinality and per-attribute selectivity
// (number of distinct values). Attribute names equal the query variables.
// Note: the paper's table header for atom c prints Z′, but the atom is
// c(C,C′,Z); the variable is Z.
func Fig5Specs() []db.Spec {
	return []db.Spec{
		{Name: "a", Attrs: []string{"S", "X", "X'", "C", "F"}, Card: 4606,
			Distinct: map[string]int{"S": 14, "X": 24, "X'": 16, "C": 21, "F": 15}},
		{Name: "b", Attrs: []string{"S", "Y", "Y'", "C'", "F'"}, Card: 2808,
			Distinct: map[string]int{"S": 17, "Y": 5, "Y'": 12, "C'": 20, "F'": 7}},
		{Name: "c", Attrs: []string{"C", "C'", "Z"}, Card: 1748,
			Distinct: map[string]int{"C": 18, "C'": 7, "Z": 19}},
		{Name: "d", Attrs: []string{"X", "Z"}, Card: 3756,
			Distinct: map[string]int{"X": 18, "Z": 7}},
		{Name: "e", Attrs: []string{"Y", "Z"}, Card: 3554,
			Distinct: map[string]int{"Y": 21, "Z": 13}},
		{Name: "f", Attrs: []string{"F", "F'", "Z'"}, Card: 2892,
			Distinct: map[string]int{"F": 20, "F'": 7, "Z'": 6}},
		{Name: "g", Attrs: []string{"X'", "Z'"}, Card: 4573,
			Distinct: map[string]int{"X'": 22, "Z'": 16}},
		{Name: "h", Attrs: []string{"Y'", "Z'"}, Card: 3390,
			Distinct: map[string]int{"Y'": 15, "Z'": 12}},
		{Name: "j", Attrs: []string{"J", "X", "Y", "X'", "Y'"}, Card: 4234,
			Distinct: map[string]int{"J": 18, "X": 8, "Y": 18, "X'": 22, "Y'": 10}},
	}
}

// ScaleSpecs shrinks (or grows) the cardinalities of specs by factor,
// clamping distinct counts at the new cardinality. Used to run the Fig 8
// timing experiments at the paper's "database of 1500 tuples" scale and the
// unit tests at toy scale.
func ScaleSpecs(specs []db.Spec, factor float64) []db.Spec {
	out := make([]db.Spec, len(specs))
	for i, s := range specs {
		card := int(float64(s.Card) * factor)
		if card < 1 {
			card = 1
		}
		dist := make(map[string]int, len(s.Distinct))
		for a, d := range s.Distinct {
			if d > card {
				d = card
			}
			dist[a] = d
		}
		out[i] = db.Spec{Name: s.Name, Attrs: s.Attrs, Card: card, Distinct: dist}
	}
	return out
}

// Fig5StatsCatalog returns a stats-only catalog carrying exactly the
// published Fig 5 numbers (no tuples). The cost-model experiments (Figs 6
// and 7) run the planner against these statistics, independent of any
// generated data.
func Fig5StatsCatalog() *db.Catalog {
	cat := db.NewCatalog()
	for _, s := range Fig5Specs() {
		st := &db.TableStats{Card: s.Card, Distinct: map[string]int{}}
		for a, d := range s.Distinct {
			st.Distinct[a] = d
		}
		cat.SetStats(s.Name, st)
	}
	return cat
}

// BuildQ1Catalog generates and analyzes a database for Q1 whose statistics
// match Fig 5 scaled by factor (1.0 = the paper's cardinalities).
func BuildQ1Catalog(rng *rand.Rand, factor float64) (*db.Catalog, error) {
	return db.GenerateCatalog(rng, ScaleSpecs(Fig5Specs(), factor))
}

// Q2Specs returns a synthetic workload for Q2 (8 atoms, 9 variables): the
// paper used randomly generated data over 1500-tuple relations. Domains are
// card/50 per variable (≈30 at full scale), in the small-selectivity regime
// of Fig 5: single-variable joins blow up intermediates while the frequent
// two-variable joins shrink them, so left-deep orders must pass through
// large intermediates but the Boolean answer is cheap to certify.
func Q2Specs(card int) []db.Spec {
	mk := func(name string, vars []string) db.Spec {
		dist := map[string]int{}
		for _, v := range vars {
			// Floor of 12 keeps scaled-down runs non-degenerate (tiny
			// domains make every join a near cross product).
			dist[v] = clampDistinct(max(12, card/50), card)
		}
		return db.Spec{Name: name, Attrs: vars, Card: card, Distinct: dist}
	}
	return []db.Spec{
		mk("r1", []string{"A", "B", "C"}),
		mk("r2", []string{"C", "D", "E"}),
		mk("r3", []string{"E", "F", "G"}),
		mk("r4", []string{"G", "H", "A"}),
		mk("r5", []string{"B", "F"}),
		mk("r6", []string{"D", "H"}),
		mk("r7", []string{"A", "E", "I"}),
		mk("r8", []string{"C", "G", "I"}),
	}
}

// Q3Specs returns a synthetic workload for Q3 (9 atoms, 12 variables,
// 4 output variables). Q3 is isomorphic to Q1, so its workload mirrors the
// Fig 5 selectivity regime (small per-attribute domains independent of
// cardinality), scaled to the requested per-relation cardinality.
func Q3Specs(card int) []db.Spec {
	mk := func(name string, vars []string, ds []int) db.Spec {
		dist := map[string]int{}
		for i, v := range vars {
			dist[v] = clampDistinct(ds[i], card)
		}
		return db.Spec{Name: name, Attrs: vars, Card: card, Distinct: dist}
	}
	return []db.Spec{
		mk("t1", []string{"A", "X", "P", "C", "F"}, []int{14, 24, 16, 21, 15}),
		mk("t2", []string{"A", "Y", "Q", "D", "G"}, []int{17, 5, 12, 20, 7}),
		mk("t3", []string{"C", "D", "Z"}, []int{18, 7, 19}),
		mk("t4", []string{"X", "Z"}, []int{18, 7}),
		mk("t5", []string{"Y", "Z"}, []int{21, 13}),
		mk("t6", []string{"F", "G", "W"}, []int{20, 7, 6}),
		mk("t7", []string{"P", "W"}, []int{22, 16}),
		mk("t8", []string{"Q", "W"}, []int{15, 12}),
		mk("t9", []string{"K", "X", "Y", "P", "Q"}, []int{18, 8, 18, 22, 10}),
	}
}

func clampDistinct(d, card int) int {
	if d > card {
		return card
	}
	return d
}
